package eagletree

// Ablation benchmarks for the design decisions DESIGN.md singles out: write
// allocation policy, GC victim selection, OS scheduling policy, the
// battery-backed write buffer, and the flash cell technology. Each swaps one
// module and reports the headline metric, quantifying what that choice is
// worth on a fixed workload.

import (
	"fmt"
	"testing"

	"eagletree/internal/experiment"
	"eagletree/internal/workload"
)

func ablBase() Config {
	cfg := SmallConfig()
	cfg.Seed = 7
	return cfg
}

func ablPrepare(s *Stack) []*Handle {
	n := int64(s.LogicalPages())
	seq := s.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: 32})
	age := s.Add(&workload.RandomWriter{From: 0, Space: n, Count: n, Depth: 32}, seq)
	return []*Handle{age}
}

func ablOverwrite(s *Stack, after *Handle) {
	n := int64(s.LogicalPages())
	s.Add(&workload.RandomWriter{From: 0, Space: n, Count: 2 * n, Depth: 32}, after)
}

func runAblation(b *testing.B, def experiment.Definition, metric Metric) experiment.Results {
	b.Helper()
	var res experiment.Results
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.Run(def)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(metric.F(row.Report), row.Label)
	}
	return res
}

// BenchmarkAblationAllocator: write placement is a scheduling decision for
// page-mapped FTLs. Least-loaded and round-robin keep the array busy;
// striped placement (LPN mod N) forfeits that freedom — the paper's example
// of a mapping constraint restricting the scheduler.
func BenchmarkAblationAllocator(b *testing.B) {
	def := experiment.Definition{
		Name: "ablation-allocator",
		Base: ablBase,
		Variants: []Variant{
			{Label: "leastloaded", Mutate: func(c *Config) { c.Controller.Alloc = AllocLeastLoaded{} }},
			{Label: "roundrobin", Mutate: func(c *Config) { c.Controller.Alloc = &AllocRoundRobin{} }},
			{Label: "striped", Mutate: func(c *Config) { c.Controller.Alloc = AllocStriped{} }},
		},
		Prepare:  ablPrepare,
		Workload: ablOverwrite,
	}
	res := runAblation(b, def, MetricThroughput)
	st := res.Rows[2].Report.Throughput
	ll := res.Rows[0].Report.Throughput
	if st >= ll {
		b.Fatalf("striped (%.0f) not slower than least-loaded (%.0f)", st, ll)
	}
}

// BenchmarkAblationGCPolicy: victim selection. Greedy minimizes migration
// per reclaim; cost-benefit spares young blocks; random is the floor.
func BenchmarkAblationGCPolicy(b *testing.B) {
	def := experiment.Definition{
		Name: "ablation-gc-policy",
		Base: ablBase,
		Variants: []Variant{
			{Label: "greedy", Mutate: func(c *Config) { c.Controller.GCPolicy = GCGreedy{} }},
			{Label: "costbenefit", Mutate: func(c *Config) { c.Controller.GCPolicy = GCCostBenefit{} }},
			{Label: "random", Mutate: func(c *Config) { c.Controller.GCPolicy = &GCRandom{} }},
		},
		Prepare:  ablPrepare,
		Workload: ablOverwrite,
	}
	res := runAblation(b, def, MetricWA)
	greedy := res.Rows[0].Report.WriteAmplification
	random := res.Rows[2].Report.WriteAmplification
	if greedy >= random {
		b.Fatalf("greedy WA %.2f not below random %.2f", greedy, random)
	}
}

// BenchmarkAblationOSPolicy: the OS-level scheduling strategy question from
// §2.1, over a thread mix of a flooding writer and a latency-bound reader.
func BenchmarkAblationOSPolicy(b *testing.B) {
	def := experiment.Definition{
		Name: "ablation-os-policy",
		Base: func() Config {
			cfg := ablBase()
			cfg.OS.QueueDepth = 4 // shallow: the OS pool ordering matters
			return cfg
		},
		Variants: []Variant{
			{Label: "fifo", Mutate: func(c *Config) { c.OS.Policy = &OSFIFO{} }},
			{Label: "prio-reads", Mutate: func(c *Config) { c.OS.Policy = &OSPrio{ReadsFirst: true} }},
			{Label: "cfq", Mutate: func(c *Config) { c.OS.Policy = &OSCFQ{Quantum: 4} }},
		},
		Prepare: ablPrepare,
		Workload: func(s *Stack, after *Handle) {
			n := int64(s.LogicalPages())
			s.Add(&workload.RandomWriter{From: 0, Space: n, Count: 3000, Depth: 32}, after)
			s.Add(&workload.RandomReader{From: 0, Space: n, Count: 1000, Depth: 2}, after)
		},
	}
	res := runAblation(b, def, MetricReadMean)
	fifo := res.Rows[0].Report.ReadLatency.Mean
	prio := res.Rows[1].Report.ReadLatency.Mean
	if prio >= fifo {
		b.Fatalf("OS reads-first mean %v not below FIFO %v", prio, fifo)
	}
}

// BenchmarkAblationWriteBuffer: the battery-backed-RAM write buffer module.
// Application-visible write latency collapses to the RAM store; flash work
// continues underneath (same WA).
func BenchmarkAblationWriteBuffer(b *testing.B) {
	size := func(pages int) Variant {
		return Variant{
			Label:  fmt.Sprintf("buffer=%d", pages),
			X:      float64(pages),
			Mutate: func(c *Config) { c.Controller.WriteBufferPages = pages },
		}
	}
	def := experiment.Definition{
		Name:     "ablation-write-buffer",
		Base:     ablBase,
		Variants: []Variant{size(0), size(16), size(64), size(256)},
		Prepare:  ablPrepare,
		Workload: func(s *Stack, after *Handle) {
			n := int64(s.LogicalPages())
			s.Add(&workload.RandomWriter{From: 0, Space: n, Count: n, Depth: 16}, after)
		},
	}
	res := runAblation(b, def, MetricWriteMean)
	none := res.Rows[0].Report.WriteLatency.Mean
	big := res.Rows[3].Report.WriteLatency.Mean
	if big >= none {
		b.Fatalf("256-page buffer write mean %v not below unbuffered %v", big, none)
	}
}

// BenchmarkAblationCellType: SLC vs MLC chip timings through the whole
// stack; MLC's slower program and erase compound under GC.
func BenchmarkAblationCellType(b *testing.B) {
	def := experiment.Definition{
		Name: "ablation-cell-type",
		Base: ablBase,
		Variants: []Variant{
			{Label: "slc", Mutate: func(c *Config) { c.Controller.Timing = TimingSLC() }},
			{Label: "mlc", Mutate: func(c *Config) { c.Controller.Timing = TimingMLC() }},
		},
		Prepare:  ablPrepare,
		Workload: ablOverwrite,
	}
	res := runAblation(b, def, MetricThroughput)
	slc := res.Rows[0].Report.Throughput
	mlc := res.Rows[1].Report.Throughput
	b.ReportMetric(slc/mlc, "slc_over_mlc")
	if mlc >= slc {
		b.Fatal("MLC not slower than SLC")
	}
}

// BenchmarkAblationElevator: the disk scheduler that made HDDs fast does
// nothing on an SSD — random reads cost the same regardless of address
// order, so C-SCAN's reordering buys no throughput. This is the paper's
// opening claim ("SSDs do not respect the HDD performance contract")
// expressed as a scheduler ablation.
func BenchmarkAblationElevator(b *testing.B) {
	def := experiment.Definition{
		Name: "ablation-elevator",
		Base: ablBase,
		Variants: []Variant{
			{Label: "os-fifo", Mutate: func(c *Config) { c.OS.Policy = &OSFIFO{} }},
			{Label: "os-elevator", Mutate: func(c *Config) { c.OS.Policy = &OSElevator{} }},
		},
		Prepare: func(s *Stack) []*Handle {
			n := int64(s.LogicalPages())
			return []*Handle{s.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: 32})}
		},
		Workload: func(s *Stack, after *Handle) {
			n := int64(s.LogicalPages())
			s.Add(&workload.RandomReader{From: 0, Space: n, Count: 4000, Depth: 64}, after)
		},
	}
	res := runAblation(b, def, MetricThroughput)
	fifo := res.Rows[0].Report.Throughput
	elev := res.Rows[1].Report.Throughput
	b.ReportMetric(elev/fifo, "elevator_over_fifo")
	// On an SSD the elevator must NOT win meaningfully — that is the point.
	if elev > fifo*1.05 {
		b.Fatalf("elevator won on an SSD (%.0f vs %.0f): address order should not matter", elev, fifo)
	}
}

// BenchmarkAblationPatternAware: placement decided at write time fixes the
// parallelism available at read time. Writing one sequential stream through
// least-loaded placement clusters a quiet period's run on few LUNs; the
// pattern-aware allocator stripes detected runs so the later sequential
// read-back fans out over the whole array.
func BenchmarkAblationPatternAware(b *testing.B) {
	def := experiment.Definition{
		Name: "ablation-pattern-aware",
		Base: func() Config {
			cfg := ablBase()
			// Interleaving lifts the channel ceiling so read-back
			// parallelism is LUN-bound, the effect under test.
			cfg.Controller.Features = Features{Interleaving: true}
			return cfg
		},
		Variants: []Variant{
			{Label: "leastloaded", Mutate: func(c *Config) { c.Controller.Alloc = AllocLeastLoaded{} }},
			{Label: "pattern-aware", Mutate: func(c *Config) {
				c.Controller.Alloc = &AllocPatternAware{Detector: &PatternDetector{}}
			}},
		},
		Prepare: func(s *Stack) []*Handle {
			n := int64(s.LogicalPages())
			// The sequential stream is written while a random writer
			// perturbs the array: load-based placement then parks
			// consecutive run pages on whichever LUNs happen to be idle,
			// clustering stretches of the run.
			seq := s.Add(&workload.SequentialWriter{From: 0, Count: n / 2, Depth: 2})
			noise := s.Add(&workload.RandomWriter{From: LPN(n / 2), Space: n / 2, Count: n, Depth: 8})
			return []*Handle{seq, noise}
		},
		Workload: func(s *Stack, after *Handle) {
			n := int64(s.LogicalPages())
			s.Add(&workload.SequentialReader{From: 0, Count: n / 2, Depth: 16}, after)
		},
	}
	res := runAblation(b, def, MetricThroughput)
	ll := res.Rows[0].Report.Throughput
	pa := res.Rows[1].Report.Throughput
	b.ReportMetric(pa/ll, "readback_speedup")
}

// BenchmarkAblationDeterminism: the single-threaded DES core's determinism
// invariant — the whole point of simulation-based design-space exploration —
// measured as the cost of one full fixed-seed run.
func BenchmarkAblationDeterminism(b *testing.B) {
	var first Report
	for i := 0; i < b.N; i++ {
		s, err := New(ablBase())
		if err != nil {
			b.Fatal(err)
		}
		n := int64(s.LogicalPages())
		s.Add(&workload.RandomWriter{From: 0, Space: n, Count: n, Depth: 32})
		s.Run()
		rep := s.Report()
		if i == 0 {
			first = rep
		} else if rep != first {
			b.Fatal("identical seeds diverged across runs")
		}
	}
}
