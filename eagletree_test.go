package eagletree

import (
	"strings"
	"testing"
)

// TestQuickstartFlow mirrors the package doc-comment quickstart end to end
// through the public facade only.
func TestQuickstartFlow(t *testing.T) {
	cfg := SmallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(s.LogicalPages())
	if n <= 0 {
		t.Fatal("no logical capacity")
	}
	prep := s.Add(&SequentialWriter{From: 0, Count: n, Depth: 32})
	barrier := s.AddBarrier(prep)
	s.Add(&RandomWriter{From: 0, Space: n, Count: n, Depth: 32}, barrier)
	s.Run()
	rep := s.Report()
	if rep.WriteLatency.Count != uint64(n) {
		t.Fatalf("measured %d writes, want %d", rep.WriteLatency.Count, n)
	}
	if !strings.Contains(rep.String(), "throughput") {
		t.Fatal("report rendering broken")
	}
}

func TestDefaultConfigIsValid(t *testing.T) {
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("DefaultConfig rejected: %v", err)
	}
	if _, err := New(SmallConfig()); err != nil {
		t.Fatalf("SmallConfig rejected: %v", err)
	}
}

func TestFacadeExperiment(t *testing.T) {
	def := Experiment{
		Name: "facade-sweep",
		Base: SmallConfig,
		Variants: []Variant{
			{Label: "qd=1", X: 1, Mutate: func(c *Config) { c.OS.QueueDepth = 1 }},
			{Label: "qd=16", X: 16, Mutate: func(c *Config) { c.OS.QueueDepth = 16 }},
		},
		Workload: func(s *Stack, after *Handle) {
			n := int64(s.LogicalPages())
			s.Add(&RandomWriter{From: 0, Space: n, Count: 500, Depth: 16}, after)
		},
	}
	res, err := RunExperiment(def)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.Best(MetricThroughput).Label != "qd=16" {
		t.Fatalf("deeper queue lost the throughput sweep: best=%q", res.Best(MetricThroughput).Label)
	}
}

// TestCustomThreadThroughFacade exercises the Thread extension point: a
// user-defined read-after-write verifier built only on exported API.
func TestCustomThreadThroughFacade(t *testing.T) {
	type verifier struct {
		FuncThread
	}
	var wrote, read int
	v := &FuncThread{}
	v.F = func(ctx *Ctx) {
		for i := LPN(0); i < 16; i++ {
			ctx.Write(i)
		}
	}
	v.OnDone = func(ctx *Ctx, r *Request) {
		switch r.Type {
		case WriteIO:
			wrote++
			ctx.Read(r.LPN)
		case ReadIO:
			read++
		}
		if ctx.InFlight() == 0 {
			ctx.Finish()
		}
	}
	_ = verifier{}

	s, err := New(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Add(v)
	s.Run()
	if wrote != 16 || read != 16 {
		t.Fatalf("wrote=%d read=%d, want 16/16", wrote, read)
	}
}

func TestOpenInterfaceThroughFacade(t *testing.T) {
	cfg := SmallConfig()
	cfg.Controller.OpenInterface = true
	cfg.Controller.Policy = &SSDPriority{UseTags: true}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	published := false
	s.Add(&FuncThread{F: func(ctx *Ctx) {
		published = ctx.Publish(PriorityHint{Thread: 0, Priority: PriorityHigh})
		ctx.Write(1)
	}})
	s.Run()
	if !published {
		t.Fatal("open bus did not deliver the hint")
	}
}

func TestTimingPresets(t *testing.T) {
	slc, mlc := TimingSLC(), TimingMLC()
	if mlc.PageWrite <= slc.PageWrite {
		t.Fatal("MLC programs faster than SLC")
	}
	if mlc.EnduranceLimit >= slc.EnduranceLimit {
		t.Fatal("MLC endures more than SLC")
	}
	if err := slc.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := mlc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsExtractValues(t *testing.T) {
	s, err := New(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := int64(s.LogicalPages())
	s.Add(&SequentialWriter{From: 0, Count: n, Depth: 16})
	s.Run()
	rep := s.Report()
	for _, m := range []Metric{
		MetricThroughput, MetricWriteMean, MetricWriteP99, MetricWriteStd, MetricWA,
	} {
		if v := m.F(rep); v < 0 {
			t.Errorf("%s = %f, want >= 0", m.Name, v)
		}
	}
	if MetricThroughput.F(rep) == 0 {
		t.Fatal("zero throughput on a full fill")
	}
}

// TestMLCSlowerThanSLC is an end-to-end sanity check of the timing model
// through the whole stack.
func TestMLCSlowerThanSLC(t *testing.T) {
	run := func(timing Timing) float64 {
		cfg := SmallConfig()
		cfg.Controller.Timing = timing
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := int64(s.LogicalPages())
		s.Add(&SequentialWriter{From: 0, Count: n, Depth: 32})
		s.Run()
		return s.Report().Throughput
	}
	slc, mlc := run(TimingSLC()), run(TimingMLC())
	if mlc >= slc {
		t.Fatalf("MLC throughput %.0f >= SLC %.0f", mlc, slc)
	}
}

func TestBloomDetectorFacade(t *testing.T) {
	// Hot means "written in enough recent decay windows": hammer one page
	// across several windows (default window = 1024 writes) among unique
	// cold traffic.
	d := NewBloomDetector()
	for i := 0; i < 3000; i++ {
		if i%2 == 0 {
			d.RecordWrite(7)
		} else {
			d.RecordWrite(LPN(1000 + i))
		}
	}
	if d.Classify(7) != TempHot {
		t.Fatal("hammered page not classified hot")
	}
	if d.Classify(999999) == TempHot {
		t.Fatal("never-written page classified hot")
	}
}
