package ftl

import (
	"eagletree/internal/flash"
	"eagletree/internal/iface"
)

// PageMap is the most flexible mapping scheme: a full page-level map held
// entirely in controller RAM. Any logical page can be bound to any physical
// page, and accesses never touch flash for metadata.
type PageMap struct {
	geo     flash.Geometry
	forward []int32 // LPN -> dense page index, -1 if unmapped
	reverse []int64 // dense page index -> LPN, -1 if none
	mapped  int
}

// NewPageMap builds an empty page map for nLPNs logical pages over geometry
// geo. nLPNs is the exported (logical) capacity, smaller than the physical
// page count by the overprovisioning factor.
func NewPageMap(geo flash.Geometry, nLPNs int) *PageMap {
	pm := &PageMap{
		geo:     geo,
		forward: make([]int32, nLPNs),
		reverse: make([]int64, geo.Pages()),
	}
	for i := range pm.forward {
		pm.forward[i] = -1
	}
	for i := range pm.reverse {
		pm.reverse[i] = -1
	}
	return pm
}

// Name implements Mapper.
func (pm *PageMap) Name() string { return "pagemap" }

// LPNs returns the logical capacity in pages.
func (pm *PageMap) LPNs() int { return len(pm.forward) }

// Mapped returns how many logical pages currently have a physical binding.
func (pm *PageMap) Mapped() int { return pm.mapped }

// Access implements Mapper: RAM-resident, so no metadata flash ops.
func (pm *PageMap) Access(iface.LPN, bool) []TransOp { return nil }

// Lookup implements Mapper.
//
//eagletree:hotpath
func (pm *PageMap) Lookup(lpn iface.LPN) (flash.PPA, bool) {
	if lpn < 0 || int(lpn) >= len(pm.forward) {
		return flash.PPA{}, false
	}
	idx := pm.forward[lpn]
	if idx < 0 {
		return flash.PPA{}, false
	}
	return pm.geo.PPAOf(int(idx)), true
}

// Map implements Mapper. Remapping an LPN onto the physical page it already
// occupies reports no old binding: the page holds the fresh data, so there is
// nothing to invalidate.
//
//eagletree:hotpath
func (pm *PageMap) Map(lpn iface.LPN, ppa flash.PPA) (flash.PPA, bool) {
	newIdx := pm.geo.Index(ppa)
	oldIdx := pm.forward[lpn]
	if int(oldIdx) == newIdx {
		return flash.PPA{}, false
	}
	pm.forward[lpn] = int32(newIdx)
	pm.reverse[newIdx] = int64(lpn)
	if oldIdx < 0 {
		pm.mapped++
		return flash.PPA{}, false
	}
	pm.reverse[oldIdx] = -1
	return pm.geo.PPAOf(int(oldIdx)), true
}

// Unmap implements Mapper.
//
//eagletree:hotpath
func (pm *PageMap) Unmap(lpn iface.LPN) (flash.PPA, bool) {
	if lpn < 0 || int(lpn) >= len(pm.forward) {
		return flash.PPA{}, false
	}
	oldIdx := pm.forward[lpn]
	if oldIdx < 0 {
		return flash.PPA{}, false
	}
	pm.forward[lpn] = -1
	pm.reverse[oldIdx] = -1
	pm.mapped--
	return pm.geo.PPAOf(int(oldIdx)), true
}

// LPNAt implements Mapper.
//
//eagletree:hotpath
func (pm *PageMap) LPNAt(ppa flash.PPA) (iface.LPN, bool) {
	lpn := pm.reverse[pm.geo.Index(ppa)]
	if lpn < 0 {
		return 0, false
	}
	return iface.LPN(lpn), true
}

// RAMBytes implements Mapper: 4 bytes per forward entry plus 8 per reverse
// entry — the cost the paper contrasts against DFTL's cached table.
func (pm *PageMap) RAMBytes() int64 {
	return int64(len(pm.forward))*4 + int64(len(pm.reverse))*8
}
