package ftl

import (
	"container/list"
	"fmt"
	"sort"

	"eagletree/internal/flash"
	"eagletree/internal/iface"
)

// This file implements device-state snapshots for the FTL layer: the full
// mapping tables (page map, or DFTL with CMT contents, GTD and translation
// ring) and the block manager's allocation state (free pools and open write
// frontiers). Snapshots are taken at quiescent points — no translation chain
// in flight — so no transient per-request state appears here.

// PageMapState is the serializable state of a RAM page map.
type PageMapState struct {
	Forward []int32
	Reverse []int64
	Mapped  int
}

// State deep-copies the page map for a snapshot.
func (pm *PageMap) State() PageMapState {
	return PageMapState{
		Forward: append([]int32(nil), pm.forward...),
		Reverse: append([]int64(nil), pm.reverse...),
		Mapped:  pm.mapped,
	}
}

// RestoreState overwrites the page map with a snapshot. The snapshot's
// logical and physical sizes must match the map's.
func (pm *PageMap) RestoreState(st PageMapState) error {
	if len(st.Forward) != len(pm.forward) {
		return fmt.Errorf("%w: snapshot page map has %d LPNs, map has %d", ErrStateMismatch, len(st.Forward), len(pm.forward))
	}
	if len(st.Reverse) != len(pm.reverse) {
		return fmt.Errorf("%w: snapshot page map has %d physical pages, map has %d", ErrStateMismatch, len(st.Reverse), len(pm.reverse))
	}
	copy(pm.forward, st.Forward)
	copy(pm.reverse, st.Reverse)
	pm.mapped = st.Mapped
	return nil
}

// CMTEntryState is one cached mapping entry, in LRU order.
type CMTEntryState struct {
	LPN   iface.LPN
	Dirty bool
}

// GTDEntryState binds one translation virtual page to its flash location.
type GTDEntryState struct {
	TVPN int
	PPA  flash.PPA
}

// RingBlockState is one translation-log block's state.
type RingBlockState struct {
	ID       flash.BlockID
	WritePtr int
	Live     int
	TVPNs    []int32
}

// DFTLState is the serializable state of a DFTL mapper: the authoritative
// map, the CMT contents in exact LRU order (front first), the global
// translation directory, and the translation ring.
type DFTLState struct {
	Truth PageMapState
	CMT   []CMTEntryState
	GTD   []GTDEntryState
	Ring  []RingBlockState
	Cur   int
	Stats DFTLStats
}

// State deep-copies the DFTL for a snapshot. CMT entries are recorded from
// most to least recently used; GTD entries are sorted by TVPN so snapshots of
// identical state are byte-identical.
func (d *DFTL) State() DFTLState {
	st := DFTLState{
		Truth: d.truth.State(),
		Cur:   d.cur,
		Stats: d.stats,
	}
	for el := d.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cmtEntry)
		st.CMT = append(st.CMT, CMTEntryState{LPN: e.lpn, Dirty: e.dirty})
	}
	st.GTD = make([]GTDEntryState, 0, len(d.gtd))
	for tvpn, ppa := range d.gtd {
		st.GTD = append(st.GTD, GTDEntryState{TVPN: tvpn, PPA: ppa})
	}
	sort.Slice(st.GTD, func(i, j int) bool { return st.GTD[i].TVPN < st.GTD[j].TVPN })
	st.Ring = make([]RingBlockState, len(d.ring))
	for i := range d.ring {
		rb := &d.ring[i]
		st.Ring[i] = RingBlockState{
			ID:       rb.id,
			WritePtr: rb.writePtr,
			Live:     rb.live,
			TVPNs:    append([]int32(nil), rb.tvpns...),
		}
	}
	return st
}

// RestoreState overwrites the DFTL with a snapshot. The snapshot must fit
// the mapper's shape: same truth-map sizes, same ring layout, and a CMT no
// larger than the configured capacity.
func (d *DFTL) RestoreState(st DFTLState) error {
	if err := d.truth.RestoreState(st.Truth); err != nil {
		return err
	}
	if len(st.CMT) > d.capacity {
		return fmt.Errorf("%w: snapshot CMT holds %d entries, capacity is %d", ErrStateMismatch, len(st.CMT), d.capacity)
	}
	if len(st.Ring) != len(d.ring) {
		return fmt.Errorf("%w: snapshot has %d translation blocks, ring has %d", ErrStateMismatch, len(st.Ring), len(d.ring))
	}
	if st.Cur < 0 || st.Cur >= len(d.ring) {
		return fmt.Errorf("%w: snapshot ring frontier %d out of range", ErrStateMismatch, st.Cur)
	}
	d.lru.Init()
	d.cmt = make(map[iface.LPN]*list.Element, len(st.CMT))
	for i := len(st.CMT) - 1; i >= 0; i-- {
		e := st.CMT[i]
		d.cmt[e.LPN] = d.lru.PushFront(&cmtEntry{lpn: e.LPN, dirty: e.Dirty})
	}
	d.gtd = make(map[int]flash.PPA, len(st.GTD))
	for _, e := range st.GTD {
		d.gtd[e.TVPN] = e.PPA
	}
	for i := range d.ring {
		rb := &d.ring[i]
		src := st.Ring[i]
		if src.ID != rb.id {
			return fmt.Errorf("%w: snapshot ring block %d is %v, ring has %v", ErrStateMismatch, i, src.ID, rb.id)
		}
		if len(src.TVPNs) != len(rb.tvpns) {
			return fmt.Errorf("%w: snapshot ring block %v has %d pages, ring has %d", ErrStateMismatch, src.ID, len(src.TVPNs), len(rb.tvpns))
		}
		rb.writePtr = src.WritePtr
		rb.live = src.Live
		copy(rb.tvpns, src.TVPNs)
	}
	d.cur = st.Cur
	d.stats = st.Stats
	return nil
}

// OpenBlockState is one open write frontier: the stream it serves, the block
// it fills and the next page to program.
type OpenBlockState struct {
	Stream uint8
	Block  int
	Next   int
}

// LUNAllocState is one LUN's allocation state: the free pool in exact order
// (age-aware allocation pops from either end, so order is behavior) and the
// open frontiers.
type LUNAllocState struct {
	Free []int
	Open []OpenBlockState
}

// BlockManagerState is the serializable allocation state of the data region.
type BlockManagerState struct {
	LUNs []LUNAllocState
}

// State deep-copies the block manager's allocation state for a snapshot.
// The free pool is flattened to the single young→old list the previous flat
// representation kept, so the encoding is independent of the in-memory
// structure (FIFO ring or erase-count buckets).
func (bm *BlockManager) State() BlockManagerState {
	st := BlockManagerState{LUNs: make([]LUNAllocState, len(bm.luns))}
	for lun := range bm.luns {
		ls := &bm.luns[lun]
		out := LUNAllocState{Free: make([]int, 0, ls.freeN)}
		if bm.ageAware {
			for bi := range ls.buckets {
				bkt := &ls.buckets[bi]
				out.Free = append(out.Free, bkt.blocks[bkt.head:]...)
			}
		} else {
			out.Free = append(out.Free, ls.freeq[ls.freeHead:]...)
		}
		for s := range ls.open {
			if ls.open[s].active {
				out.Open = append(out.Open, OpenBlockState{Stream: uint8(s), Block: ls.open[s].block, Next: ls.open[s].next})
			}
		}
		st.LUNs[lun] = out
	}
	return st
}

// RestoreState overwrites the block manager's allocation state. The array
// must already hold the matching snapshot: an age-aware pool re-buckets the
// flat free list by the blocks' restored erase counts.
func (bm *BlockManager) RestoreState(st BlockManagerState) error {
	if len(st.LUNs) != len(bm.luns) {
		return fmt.Errorf("%w: snapshot has %d LUN alloc states, manager has %d", ErrStateMismatch, len(st.LUNs), len(bm.luns))
	}
	cols := bm.array.Columns()
	for lun := range bm.luns {
		ls := &bm.luns[lun]
		src := st.LUNs[lun]
		ls.freeq = append(ls.freeq[:0], src.Free...)
		ls.freeHead = 0
		ls.buckets = ls.buckets[:0]
		ls.freeN = len(src.Free)
		if bm.ageAware {
			ls.freeq = ls.freeq[:0]
			base := lun * bm.geo.BlocksPerLUN
			for _, b := range src.Free {
				ls.bucketAppend(cols.EraseCount[base+b], b)
			}
		}
		ls.open = [NumStreams]openBlock{}
		ls.openCount = 0
		for w := range ls.openMask {
			ls.openMask[w] = 0
		}
		for _, ob := range src.Open {
			if int(ob.Stream) >= NumStreams {
				return fmt.Errorf("%w: snapshot open block on unknown stream %d", ErrStateMismatch, ob.Stream)
			}
			if ls.open[ob.Stream].active {
				return fmt.Errorf("%w: snapshot has two open blocks on lun %d stream %d", ErrStateMismatch, lun, ob.Stream)
			}
			ls.open[ob.Stream] = openBlock{block: ob.Block, next: ob.Next, active: true}
			ls.openCount++
			ls.openMask[ob.Block>>6] |= 1 << (uint(ob.Block) & 63)
		}
	}
	return nil
}
