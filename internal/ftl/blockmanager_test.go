package ftl

import (
	"errors"
	"testing"

	"eagletree/internal/flash"
)

func newBM(t *testing.T, reserved, gcReserve int, ageAware bool) (*BlockManager, *flash.Array) {
	t.Helper()
	a := flash.NewArray(ftlGeo(), flash.TimingSLC(), flash.Features{})
	return NewBlockManager(a, reserved, gcReserve, ageAware), a
}

func TestBlockManagerAllocFillsBlockSequentially(t *testing.T) {
	bm, _ := newBM(t, 0, 1, false)
	g := ftlGeo()
	var prev flash.PPA
	for i := 0; i < g.PagesPerBlock; i++ {
		ppa, err := bm.Alloc(0, StreamDefault)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if ppa.Block != prev.Block || ppa.Page != prev.Page+1 {
				t.Fatalf("non-sequential alloc: %v after %v", ppa, prev)
			}
		}
		prev = ppa
	}
	// Next alloc opens a new block.
	ppa, err := bm.Alloc(0, StreamDefault)
	if err != nil {
		t.Fatal(err)
	}
	if ppa.Block == prev.Block {
		t.Fatal("full block was not retired")
	}
	if ppa.Page != 0 {
		t.Fatalf("new block did not start at page 0: %v", ppa)
	}
}

func TestBlockManagerStreamsGetSeparateBlocks(t *testing.T) {
	bm, _ := newBM(t, 0, 1, false)
	a, err := bm.Alloc(0, StreamDefault)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bm.Alloc(0, StreamHot)
	if err != nil {
		t.Fatal(err)
	}
	if a.Block == b.Block {
		t.Fatal("two streams share one open block")
	}
	if bm.OpenStreams(0) != 2 {
		t.Fatalf("OpenStreams = %d", bm.OpenStreams(0))
	}
}

func TestBlockManagerGCReserve(t *testing.T) {
	g := ftlGeo()
	bm, _ := newBM(t, 0, 2, false)
	// Drain the LUN with app writes until the reserve stops us.
	allocated := 0
	for {
		_, err := bm.Alloc(0, StreamDefault)
		if errors.Is(err, ErrOutOfSpace) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if allocated++; allocated > g.PagesPerLUN() {
			t.Fatal("reserve never engaged")
		}
	}
	if bm.FreeCount(0) != 2 {
		t.Fatalf("reserve left %d free blocks, want 2", bm.FreeCount(0))
	}
	if bm.CanAlloc(0, StreamDefault) {
		t.Fatal("CanAlloc(app) true at reserve floor")
	}
	// Internal streams may still allocate.
	if !bm.CanAlloc(0, StreamGC) {
		t.Fatal("CanAlloc(gc) false with reserve blocks free")
	}
	if _, err := bm.Alloc(0, StreamGC); err != nil {
		t.Fatalf("GC alloc inside reserve: %v", err)
	}
}

func TestBlockManagerExhaustion(t *testing.T) {
	g := ftlGeo()
	bm, _ := newBM(t, 0, 1, false)
	for i := 0; i < g.PagesPerLUN(); i++ {
		if _, err := bm.Alloc(0, StreamGC); err != nil {
			if !errors.Is(err, ErrNoFreeBlock) {
				t.Fatalf("unexpected error: %v", err)
			}
			return
		}
	}
	if _, err := bm.Alloc(0, StreamGC); !errors.Is(err, ErrNoFreeBlock) {
		t.Fatalf("exhausted LUN returned %v, want ErrNoFreeBlock", err)
	}
}

func TestBlockManagerReleaseRecycles(t *testing.T) {
	bm, a := newBM(t, 0, 1, false)
	g := ftlGeo()
	// Fill one block through the array so erase is legal, then release it.
	var ppas []flash.PPA
	for i := 0; i < g.PagesPerBlock; i++ {
		ppa, err := bm.Alloc(0, StreamDefault)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.ScheduleWrite(ppa, 0); err != nil {
			t.Fatal(err)
		}
		ppas = append(ppas, ppa)
	}
	before := bm.FreeCount(0)
	for _, p := range ppas {
		if err := a.Invalidate(p); err != nil {
			t.Fatal(err)
		}
	}
	blk := ppas[0].BlockOf()
	if _, err := a.ScheduleErase(blk, 0); err != nil {
		t.Fatal(err)
	}
	bm.Release(blk)
	if bm.FreeCount(0) != before+1 {
		t.Fatalf("FreeCount after release = %d, want %d", bm.FreeCount(0), before+1)
	}
}

func TestBlockManagerTranslationRegionExcluded(t *testing.T) {
	bm, _ := newBM(t, 2, 1, false)
	g := ftlGeo()
	if bm.DataBlocksPerLUN() != g.BlocksPerLUN-2 {
		t.Fatalf("DataBlocksPerLUN = %d", bm.DataBlocksPerLUN())
	}
	if bm.DataPages() != (g.BlocksPerLUN-2)*g.PagesPerBlock*g.LUNs() {
		t.Fatalf("DataPages = %d", bm.DataPages())
	}
	seen := map[int]bool{}
	for {
		ppa, err := bm.Alloc(0, StreamGC)
		if err != nil {
			break
		}
		seen[ppa.Block] = true
	}
	for blk := range seen {
		if blk < 2 {
			t.Fatalf("allocated from reserved translation block %d", blk)
		}
	}
}

func TestBlockManagerAgeAwareAllocation(t *testing.T) {
	bm, a := newBM(t, 0, 1, true)
	g := ftlGeo()
	// Age block 5 of LUN 0 by erasing it three times.
	for i := 0; i < 3; i++ {
		if _, err := a.ScheduleErase(flash.BlockID{LUN: 0, Block: 5}, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Rebuild the manager so its free list reflects erase counts.
	bm = NewBlockManager(a, 0, 1, true)
	// Sorted-insertion path: release order must not matter, so force a
	// release round-trip for the aged block.
	cold, err := bm.Alloc(0, StreamCold)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Block != 5 {
		t.Fatalf("cold stream got block %d, want the oldest (5)", cold.Block)
	}
	hot, err := bm.Alloc(0, StreamHot)
	if err != nil {
		t.Fatal(err)
	}
	if a.Block(flash.BlockID{LUN: 0, Block: hot.Block}).EraseCount != 0 {
		t.Fatalf("hot stream got an aged block %d", hot.Block)
	}
	_ = g
}

func TestBlockManagerVictimCandidates(t *testing.T) {
	bm, a := newBM(t, 1, 1, false)
	g := ftlGeo()
	// Fill two blocks completely and leave one open.
	var full []flash.BlockID
	for i := 0; i < 2*g.PagesPerBlock; i++ {
		ppa, err := bm.Alloc(1, StreamDefault)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.ScheduleWrite(ppa, 0); err != nil {
			t.Fatal(err)
		}
		if ppa.Page == g.PagesPerBlock-1 {
			full = append(full, ppa.BlockOf())
		}
	}
	open, err := bm.Alloc(1, StreamDefault) // opens a third block
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ScheduleWrite(open, 0); err != nil {
		t.Fatal(err)
	}
	var got []flash.BlockID
	bm.VictimCandidates(1, func(b flash.BlockID, meta flash.BlockMeta) {
		got = append(got, b)
	})
	if len(got) != len(full) {
		t.Fatalf("candidates = %v, want %v (open/free/translation excluded)", got, full)
	}
	for i := range got {
		if got[i] != full[i] {
			t.Fatalf("candidates = %v, want %v", got, full)
		}
	}
}

func TestStreamHelpers(t *testing.T) {
	if !StreamGC.internal() || !StreamWL.internal() || StreamDefault.internal() {
		t.Error("internal() wrong")
	}
	if !StreamCold.cold() || !StreamWL.cold() || StreamHot.cold() {
		t.Error("cold() wrong")
	}
	if LocalityStream(0) == LocalityStream(1) {
		t.Error("adjacent locality groups collide")
	}
	if LocalityStream(3) != LocalityStream(3+MaxLocalityStreams) {
		t.Error("locality stream hashing not modular")
	}
	if LocalityStream(-2) < numBaseStreams {
		t.Error("negative group mapped onto a base stream")
	}
	if StreamGC.String() != "gc" || LocalityStream(1).String() == "" {
		t.Error("stream String() wrong")
	}
}
