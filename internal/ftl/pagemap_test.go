package ftl

import (
	"testing"
	"testing/quick"

	"eagletree/internal/flash"
	"eagletree/internal/iface"
)

func ftlGeo() flash.Geometry {
	return flash.Geometry{Channels: 2, LUNsPerChannel: 2, BlocksPerLUN: 8, PagesPerBlock: 4, PageSize: 4096}
}

func TestPageMapLifecycle(t *testing.T) {
	g := ftlGeo()
	pm := NewPageMap(g, 64)
	if pm.Name() != "pagemap" {
		t.Errorf("Name = %q", pm.Name())
	}
	if _, ok := pm.Lookup(5); ok {
		t.Fatal("unmapped LPN resolved")
	}
	p1 := flash.PPA{LUN: 0, Block: 1, Page: 2}
	if old, had := pm.Map(5, p1); had {
		t.Fatalf("first Map returned old %v", old)
	}
	if got, ok := pm.Lookup(5); !ok || got != p1 {
		t.Fatalf("Lookup = %v %v", got, ok)
	}
	if lpn, ok := pm.LPNAt(p1); !ok || lpn != 5 {
		t.Fatalf("LPNAt = %v %v", lpn, ok)
	}
	p2 := flash.PPA{LUN: 3, Block: 7, Page: 3}
	old, had := pm.Map(5, p2)
	if !had || old != p1 {
		t.Fatalf("remap returned %v %v", old, had)
	}
	if _, ok := pm.LPNAt(p1); ok {
		t.Fatal("stale reverse mapping survived remap")
	}
	if pm.Mapped() != 1 {
		t.Fatalf("Mapped = %d", pm.Mapped())
	}
	gone, had := pm.Unmap(5)
	if !had || gone != p2 {
		t.Fatalf("Unmap returned %v %v", gone, had)
	}
	if pm.Mapped() != 0 {
		t.Fatalf("Mapped after Unmap = %d", pm.Mapped())
	}
	if _, had := pm.Unmap(5); had {
		t.Fatal("double Unmap reported a binding")
	}
}

func TestPageMapOutOfRangeLookups(t *testing.T) {
	pm := NewPageMap(ftlGeo(), 10)
	if _, ok := pm.Lookup(-1); ok {
		t.Error("negative LPN resolved")
	}
	if _, ok := pm.Lookup(10); ok {
		t.Error("past-end LPN resolved")
	}
	if _, had := pm.Unmap(-1); had {
		t.Error("negative Unmap reported binding")
	}
}

func TestPageMapAccessIsFree(t *testing.T) {
	pm := NewPageMap(ftlGeo(), 10)
	if ops := pm.Access(3, true); ops != nil {
		t.Fatalf("RAM page map produced translation ops: %v", ops)
	}
	if pm.RAMBytes() <= 0 {
		t.Fatal("RAMBytes not accounted")
	}
}

// Property: forward and reverse maps stay mutually consistent under random
// map/unmap traffic.
func TestPageMapConsistencyProperty(t *testing.T) {
	g := ftlGeo()
	f := func(ops []uint32) bool {
		pm := NewPageMap(g, 32)
		model := map[iface.LPN]flash.PPA{}
		used := map[int]iface.LPN{}
		for _, op := range ops {
			lpn := iface.LPN(op % 32)
			if op%3 == 0 {
				if old, had := pm.Unmap(lpn); had {
					delete(used, g.Index(old))
				}
				delete(model, lpn)
				continue
			}
			idx := int(op) % g.Pages()
			if owner, taken := used[idx]; taken && owner != lpn {
				continue // a real allocator never double-books a page
			}
			ppa := g.PPAOf(idx)
			if old, had := pm.Map(lpn, ppa); had {
				delete(used, g.Index(old))
			}
			model[lpn] = ppa
			used[idx] = lpn
		}
		for lpn, want := range model {
			got, ok := pm.Lookup(lpn)
			if !ok || got != want {
				return false
			}
			back, ok := pm.LPNAt(want)
			if !ok || back != lpn {
				return false
			}
		}
		return pm.Mapped() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
