package ftl

import (
	"testing"

	"eagletree/internal/flash"
	"eagletree/internal/iface"
)

// transExecutor applies TransOps to a real array, enforcing the same rules
// the controller does. It proves DFTL's op sequences are executable NAND
// programs (ordering, program-order, erase-only-dead constraints).
type transExecutor struct {
	t     *testing.T
	array *flash.Array
}

func (e *transExecutor) exec(ops []TransOp) {
	e.t.Helper()
	for _, op := range ops {
		switch op.Kind {
		case TransRead:
			if _, err := e.array.ScheduleRead(op.PPA, 0); err != nil {
				e.t.Fatalf("trans read %v: %v", op.PPA, err)
			}
		case TransWrite:
			if _, err := e.array.ScheduleWrite(op.PPA, 0); err != nil {
				e.t.Fatalf("trans write %v: %v", op.PPA, err)
			}
			if op.HasStale {
				if err := e.array.Invalidate(op.Stale); err != nil {
					e.t.Fatalf("invalidate stale %v: %v", op.Stale, err)
				}
			}
		case TransErase:
			if _, err := e.array.ScheduleErase(op.Block, 0); err != nil {
				e.t.Fatalf("trans erase %v: %v", op.Block, err)
			}
		}
	}
}

func TestDFTLHitNoOps(t *testing.T) {
	g := ftlGeo()
	d := NewDFTL(g, 64, 4, 2)
	if ops := d.Access(1, true); len(ops) != 0 {
		t.Fatalf("first access (virgin translation page) produced ops: %v", ops)
	}
	if ops := d.Access(1, false); len(ops) != 0 {
		t.Fatalf("hit produced ops: %v", ops)
	}
	s := d.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDFTLCleanEvictionIsFree(t *testing.T) {
	g := ftlGeo()
	d := NewDFTL(g, 1024, 2, 2)
	// Fill the CMT with clean (read) entries from distinct translation pages.
	epp := g.PageSize / 8
	d.Access(iface.LPN(0*epp), false)
	d.Access(iface.LPN(1*epp), false)
	ops := d.Access(iface.LPN(2*epp), false) // evicts the clean LRU entry
	if len(ops) != 0 {
		t.Fatalf("clean eviction of a virgin page produced ops: %v", ops)
	}
	if d.Stats().CleanEvicts != 1 {
		t.Fatalf("stats = %+v", d.Stats())
	}
	if d.CMTLen() != 2 {
		t.Fatalf("CMTLen = %d, want capacity 2", d.CMTLen())
	}
}

func TestDFTLDirtyEvictionWritesTranslationPage(t *testing.T) {
	g := ftlGeo()
	a := flash.NewArray(g, flash.TimingSLC(), flash.Features{})
	ex := &transExecutor{t: t, array: a}
	d := NewDFTL(g, 1024, 1, 2)

	ex.exec(d.Access(5, true)) // dirty entry, virgin translation page: no ops
	ops := d.Access(9999, false)
	// Evicting the dirty entry must write its translation page.
	var writes int
	for _, op := range ops {
		if op.Kind == TransWrite {
			writes++
		}
	}
	if writes != 1 {
		t.Fatalf("dirty eviction ops = %v, want exactly one translation write", ops)
	}
	ex.exec(ops)
	if d.Stats().DirtyEvicts != 1 || d.Stats().TransWrites != 1 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestDFTLMissReadsExistingTranslationPage(t *testing.T) {
	g := ftlGeo()
	a := flash.NewArray(g, flash.TimingSLC(), flash.Features{})
	ex := &transExecutor{t: t, array: a}
	d := NewDFTL(g, 1024, 1, 2)

	ex.exec(d.Access(5, true))     // tvpn 0 entry, dirty
	ex.exec(d.Access(9999, false)) // evict -> tvpn 0 written to flash
	ops := d.Access(5, false)      // miss on tvpn 0, which now exists
	var reads int
	for _, op := range ops {
		if op.Kind == TransRead {
			reads++
		}
	}
	if reads != 1 {
		t.Fatalf("re-access ops = %v, want one translation read", ops)
	}
	ex.exec(ops)
}

func TestDFTLMapMarksDirty(t *testing.T) {
	g := ftlGeo()
	d := NewDFTL(g, 1024, 2, 2)
	d.Access(7, false) // clean
	d.Map(7, flash.PPA{LUN: 0, Block: 2, Page: 0})
	d.Access(1000, false)        // fills CMT
	ops := d.Access(2000, false) // evicts LPN 7, which Map dirtied
	var writes int
	for _, op := range ops {
		if op.Kind == TransWrite {
			writes++
		}
	}
	if writes != 1 {
		t.Fatalf("eviction after Map produced %d writes, want 1", writes)
	}
}

func TestDFTLRingWrapsAndStaysExecutable(t *testing.T) {
	// Tiny geometry: ring of 2 blocks/LUN x 1 LUN x 4 pages = 8 translation
	// pages; hammer far more dirty evictions than that so the ring wraps and
	// cleans repeatedly, validating every op against the array.
	g := flash.Geometry{Channels: 1, LUNsPerChannel: 1, BlocksPerLUN: 8, PagesPerBlock: 4, PageSize: 64}
	a := flash.NewArray(g, flash.TimingSLC(), flash.Features{})
	ex := &transExecutor{t: t, array: a}
	epp := g.PageSize / 8 // 8 entries per translation page
	d := NewDFTL(g, g.Pages()*epp, 1, 3)

	for i := 0; i < 200; i++ {
		lpn := iface.LPN((i % 5) * epp) // 5 distinct translation pages
		ex.exec(d.Access(lpn, true))
	}
	s := d.Stats()
	if s.TransErases == 0 {
		t.Fatal("translation ring never wrapped; test ineffective")
	}
	if s.TransWrites < s.DirtyEvicts {
		t.Fatalf("stats inconsistent: %+v", s)
	}
}

func TestDFTLUnmapDropsCMTEntry(t *testing.T) {
	g := ftlGeo()
	d := NewDFTL(g, 1024, 4, 2)
	d.Access(3, true)
	d.Map(3, flash.PPA{LUN: 1, Block: 3, Page: 0})
	if _, had := d.Unmap(3); !had {
		t.Fatal("Unmap lost the binding")
	}
	if d.CMTLen() != 0 {
		t.Fatalf("CMTLen after Unmap = %d", d.CMTLen())
	}
	if _, ok := d.Lookup(3); ok {
		t.Fatal("Lookup after Unmap resolved")
	}
}

func TestDFTLDelegatesMapping(t *testing.T) {
	g := ftlGeo()
	d := NewDFTL(g, 1024, 4, 2)
	p := flash.PPA{LUN: 2, Block: 4, Page: 1}
	d.Access(11, true)
	d.Map(11, p)
	if got, ok := d.Lookup(11); !ok || got != p {
		t.Fatalf("Lookup = %v %v", got, ok)
	}
	if lpn, ok := d.LPNAt(p); !ok || lpn != 11 {
		t.Fatalf("LPNAt = %v %v", lpn, ok)
	}
	if d.Name() != "dftl" {
		t.Errorf("Name = %q", d.Name())
	}
	if d.RAMBytes() <= 0 {
		t.Error("RAMBytes not accounted")
	}
}

func TestDFTLRAMSmallerThanPageMap(t *testing.T) {
	g := flash.Geometry{Channels: 4, LUNsPerChannel: 2, BlocksPerLUN: 64, PagesPerBlock: 64, PageSize: 4096}
	n := g.Pages() * 3 / 4
	pm := NewPageMap(g, n)
	d := NewDFTL(g, n, 256, 2)
	if d.RAMBytes() >= pm.RAMBytes() {
		t.Fatalf("DFTL RAM %d not below page map RAM %d — the scheme's whole point", d.RAMBytes(), pm.RAMBytes())
	}
}
