// Package ftl implements the flash translation layer building blocks: the
// logical-to-physical mapping schemes (a full page map held in RAM, and DFTL
// with its cached mapping table), and the block manager that hands out
// physical pages to write streams.
//
// Mapping schemes impose constraints on writes and may themselves generate
// flash traffic (DFTL's translation-page reads and writes). Those internal
// IOs are returned to the controller as TransOps so they compete for the
// flash array through the same scheduler as everything else — which is
// exactly the interference the paper sets out to study.
//
//eagletree:typederrors
package ftl

import (
	"errors"

	"eagletree/internal/flash"
	"eagletree/internal/iface"
)

// TransKind enumerates translation-metadata flash operations.
type TransKind int

const (
	TransRead TransKind = iota
	TransWrite
	TransErase
)

func (k TransKind) String() string {
	switch k {
	case TransRead:
		return "trans-read"
	case TransWrite:
		return "trans-write"
	case TransErase:
		return "trans-erase"
	default:
		return "trans-?"
	}
}

// TransOp is one flash operation a mapping scheme needs executed before a
// data access can proceed. Ops must be executed in slice order: the
// translation log precomputes physical addresses, so reordering would violate
// NAND program-order constraints.
type TransOp struct {
	Kind  TransKind
	PPA   flash.PPA     // for TransRead / TransWrite
	Block flash.BlockID // for TransErase

	// Stale, when HasStale is set on a TransWrite, is the superseded copy of
	// the translation page; the executor must invalidate it on the array so
	// the ring block can later be erased.
	Stale    flash.PPA
	HasStale bool
}

// Mapper is the mapping-scheme interface the controller drives.
//
// The call protocol per data access is: Access (returns metadata ops the
// controller must execute first), then Lookup for reads or Map for writes.
type Mapper interface {
	// Name identifies the scheme in reports.
	Name() string
	// Access prepares the mapping entry for lpn and returns the metadata
	// flash operations this access incurs (nil for RAM-resident schemes).
	Access(lpn iface.LPN, write bool) []TransOp
	// Lookup translates lpn. ok is false if the LPN was never written or
	// was trimmed.
	Lookup(lpn iface.LPN) (ppa flash.PPA, ok bool)
	// Map binds lpn to ppa and returns the previous binding, which the
	// caller must invalidate on flash.
	Map(lpn iface.LPN, ppa flash.PPA) (old flash.PPA, hadOld bool)
	// Unmap removes the binding (trim), returning the stale PPA if any.
	Unmap(lpn iface.LPN) (old flash.PPA, hadOld bool)
	// LPNAt reverse-translates a physical page; garbage collection uses it
	// to find whose data lives in a victim block.
	LPNAt(ppa flash.PPA) (lpn iface.LPN, ok bool)
	// RAMBytes reports the controller RAM this scheme occupies, for the
	// memory manager.
	RAMBytes() int64
}

// Errors shared by mapping schemes and the block manager.
var (
	ErrNoFreeBlock = errors.New("ftl: no free block available")
	ErrOutOfSpace  = errors.New("ftl: LUN out of space for external writes (GC reserve reached)")
	ErrRingFull    = errors.New("ftl: translation ring too small for translation working set")
	// ErrStateMismatch wraps every shape mismatch between a snapshot and
	// the mapper or block manager it is restored into.
	ErrStateMismatch = errors.New("ftl: snapshot does not match mapper shape")
)
