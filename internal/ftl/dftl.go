package ftl

import (
	"container/list"
	"fmt"

	"eagletree/internal/flash"
	"eagletree/internal/iface"
)

// DFTLStats counts cache and translation-log activity, for experiment
// reports comparing DFTL against the RAM-resident page map.
type DFTLStats struct {
	Hits        uint64
	Misses      uint64
	CleanEvicts uint64
	DirtyEvicts uint64
	TransReads  uint64
	TransWrites uint64
	TransErases uint64
}

type cmtEntry struct {
	lpn   iface.LPN
	dirty bool
}

// ringBlock is one translation block in the circular translation log.
type ringBlock struct {
	id       flash.BlockID
	writePtr int
	live     int
	tvpns    []int32 // page index -> tvpn stored there, -1 if stale/empty
}

// DFTL implements the demand-based FTL of Gupta et al. (ASPLOS 2009): the
// full page map lives on flash in translation pages, and only a cached
// subset (the CMT) is held in RAM. Misses read translation pages; dirty
// evictions write them. Translation pages live in a circular log over blocks
// reserved in every LUN, cleaned by migrating still-live translation pages
// forward — so mapping metadata competes for the flash array exactly like
// data does.
type DFTL struct {
	geo            flash.Geometry
	truth          *PageMap // authoritative map, standing in for flash-resident content
	entriesPerPage int

	cmt      map[iface.LPN]*list.Element
	lru      *list.List // front = most recent
	capacity int

	gtd  map[int]flash.PPA // tvpn -> current translation page location
	ring []ringBlock
	cur  int

	stats DFTLStats
}

// NewDFTL builds a DFTL over geometry geo with nLPNs logical pages, a CMT
// holding cmtEntries cached mappings, and reservedTrans translation blocks
// per LUN forming the translation ring. The ring is ordered across LUNs
// round-robin so translation load spreads over channels.
func NewDFTL(geo flash.Geometry, nLPNs, cmtEntries, reservedTrans int) *DFTL {
	if cmtEntries < 1 {
		panic("ftl: DFTL needs a CMT of at least 1 entry")
	}
	if reservedTrans < 2 {
		panic("ftl: DFTL translation ring needs at least 2 blocks per LUN")
	}
	d := &DFTL{
		geo:            geo,
		truth:          NewPageMap(geo, nLPNs),
		entriesPerPage: geo.PageSize / 8,
		cmt:            make(map[iface.LPN]*list.Element, cmtEntries),
		lru:            list.New(),
		capacity:       cmtEntries,
		gtd:            make(map[int]flash.PPA),
	}
	for blk := 0; blk < reservedTrans; blk++ {
		for lun := 0; lun < geo.LUNs(); lun++ {
			rb := ringBlock{
				id:    flash.BlockID{LUN: lun, Block: blk},
				tvpns: make([]int32, geo.PagesPerBlock),
			}
			for i := range rb.tvpns {
				rb.tvpns[i] = -1
			}
			d.ring = append(d.ring, rb)
		}
	}
	return d
}

// Name implements Mapper.
func (d *DFTL) Name() string { return "dftl" }

// Stats returns cache and translation-log counters.
func (d *DFTL) Stats() DFTLStats { return d.stats }

// CMTLen returns the current number of cached mapping entries.
func (d *DFTL) CMTLen() int { return d.lru.Len() }

func (d *DFTL) tvpn(lpn iface.LPN) int { return int(lpn) / d.entriesPerPage }

// Access implements Mapper. On a CMT hit it returns nil; on a miss it
// returns the translation ops (possible dirty-eviction write with ring
// maintenance, then the translation-page read) the controller must execute
// before the data IO.
func (d *DFTL) Access(lpn iface.LPN, write bool) []TransOp {
	if el, ok := d.cmt[lpn]; ok {
		d.stats.Hits++
		d.lru.MoveToFront(el)
		if write {
			el.Value.(*cmtEntry).dirty = true
		}
		return nil
	}
	d.stats.Misses++
	var ops []TransOp
	if d.lru.Len() >= d.capacity {
		back := d.lru.Back()
		victim := back.Value.(*cmtEntry)
		d.lru.Remove(back)
		delete(d.cmt, victim.lpn)
		if victim.dirty {
			d.stats.DirtyEvicts++
			ops = d.appendTranslationWrite(ops, d.tvpn(victim.lpn))
		} else {
			d.stats.CleanEvicts++
		}
	}
	if ppa, ok := d.gtd[d.tvpn(lpn)]; ok {
		d.stats.TransReads++
		ops = append(ops, TransOp{Kind: TransRead, PPA: ppa})
	}
	d.cmt[lpn] = d.lru.PushFront(&cmtEntry{lpn: lpn, dirty: write})
	return ops
}

// appendTranslationWrite appends the ops for writing one translation page:
// any ring maintenance (migrating live translation pages out of the next
// victim and erasing it), then the write itself.
func (d *DFTL) appendTranslationWrite(ops []TransOp, tvpn int) []TransOp {
	ops, ppa, old, hadOld := d.allocTransPage(ops, tvpn)
	d.stats.TransWrites++
	return append(ops, TransOp{Kind: TransWrite, PPA: ppa, Stale: old, HasStale: hadOld})
}

// allocTransPage finds the next translation-log page, advancing and cleaning
// the ring as needed, and records tvpn as its occupant. It returns the
// superseded copy's location, if one existed, so the executor can invalidate
// it on the array.
func (d *DFTL) allocTransPage(ops []TransOp, tvpn int) ([]TransOp, flash.PPA, flash.PPA, bool) {
	guard := 0
	for d.ring[d.cur].writePtr >= d.geo.PagesPerBlock {
		if guard++; guard > len(d.ring) {
			panic(fmt.Sprintf("%v: %d blocks cannot hold %d live translation pages",
				ErrRingFull, len(d.ring), len(d.gtd)))
		}
		ops = d.advanceRing(ops)
	}
	rb := &d.ring[d.cur]
	ppa := flash.PPA{LUN: rb.id.LUN, Block: rb.id.Block, Page: rb.writePtr}
	old, hadOld := d.bindTrans(rb, tvpn, ppa)
	return ops, ppa, old, hadOld
}

// bindTrans records that ppa now holds tvpn's translation page, returning
// the prior location (now stale) if one existed.
func (d *DFTL) bindTrans(rb *ringBlock, tvpn int, ppa flash.PPA) (flash.PPA, bool) {
	old, hadOld := d.gtd[tvpn]
	if hadOld {
		for i := range d.ring {
			orb := &d.ring[i]
			if orb.id.LUN == old.LUN && orb.id.Block == old.Block {
				if orb.tvpns[old.Page] == int32(tvpn) {
					orb.tvpns[old.Page] = -1
					orb.live--
				}
				break
			}
		}
	}
	d.gtd[tvpn] = ppa
	rb.tvpns[ppa.Page] = int32(tvpn)
	rb.live++
	rb.writePtr++
	return old, hadOld
}

// advanceRing moves the write frontier to the next (pre-erased) ring block
// and restores the invariant that the block after the frontier is erased:
// live translation pages in it are migrated forward, then it is erased.
func (d *DFTL) advanceRing(ops []TransOp) []TransOp {
	n := len(d.ring)
	d.cur = (d.cur + 1) % n
	victim := &d.ring[(d.cur+1)%n]
	if victim.writePtr == 0 {
		return ops // never written; already erased
	}
	for page := 0; page < d.geo.PagesPerBlock; page++ {
		tv := victim.tvpns[page]
		if tv < 0 {
			continue
		}
		src := flash.PPA{LUN: victim.id.LUN, Block: victim.id.Block, Page: page}
		d.stats.TransReads++
		ops = append(ops, TransOp{Kind: TransRead, PPA: src})
		cur := &d.ring[d.cur]
		if cur.writePtr >= d.geo.PagesPerBlock {
			// The frontier filled up mid-migration; this cannot happen while
			// the victim's live pages fit in an empty block, which they
			// always do (live <= PagesPerBlock and the frontier was erased).
			panic("ftl: translation ring frontier overflow during migration")
		}
		dst := flash.PPA{LUN: cur.id.LUN, Block: cur.id.Block, Page: cur.writePtr}
		old, hadOld := d.bindTrans(cur, int(tv), dst)
		d.stats.TransWrites++
		ops = append(ops, TransOp{Kind: TransWrite, PPA: dst, Stale: old, HasStale: hadOld})
	}
	d.stats.TransErases++
	ops = append(ops, TransOp{Kind: TransErase, Block: victim.id})
	victim.writePtr = 0
	victim.live = 0
	for i := range victim.tvpns {
		victim.tvpns[i] = -1
	}
	return ops
}

// Lookup implements Mapper.
//
//eagletree:hotpath
func (d *DFTL) Lookup(lpn iface.LPN) (flash.PPA, bool) { return d.truth.Lookup(lpn) }

// Map implements Mapper. The entry must have been brought into the CMT by a
// preceding Access call; mapping marks it dirty.
//
//eagletree:hotpath
func (d *DFTL) Map(lpn iface.LPN, ppa flash.PPA) (flash.PPA, bool) {
	if el, ok := d.cmt[lpn]; ok {
		el.Value.(*cmtEntry).dirty = true
	}
	return d.truth.Map(lpn, ppa)
}

// Unmap implements Mapper. Trimmed entries leave the CMT.
//
//eagletree:hotpath
func (d *DFTL) Unmap(lpn iface.LPN) (flash.PPA, bool) {
	if el, ok := d.cmt[lpn]; ok {
		d.lru.Remove(el)
		delete(d.cmt, lpn)
	}
	return d.truth.Unmap(lpn)
}

// LPNAt implements Mapper.
//
//eagletree:hotpath
func (d *DFTL) LPNAt(ppa flash.PPA) (iface.LPN, bool) { return d.truth.LPNAt(ppa) }

// RAMBytes implements Mapper: the CMT (two words per entry) plus the GTD
// (one PPA per translation page). The full map the simulator keeps as ground
// truth is *not* counted — on a real device it lives in the translation
// pages on flash.
func (d *DFTL) RAMBytes() int64 {
	return int64(d.capacity)*16 + int64(len(d.gtd))*8
}
