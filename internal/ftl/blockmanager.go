package ftl

import (
	"fmt"
	"sort"

	"eagletree/internal/flash"
)

// Stream identifies a write frontier. Each (LUN, stream) pair fills its own
// open block, so pages written through one stream land together — the
// mechanism behind hot/cold separation, GC isolation and update-locality
// grouping.
type Stream uint8

// Base streams. Locality groups map to dedicated streams above these.
const (
	StreamDefault Stream = iota // untagged application writes
	StreamGC                    // garbage-collection migrations, temperature unknown
	StreamWL                    // wear-leveling migrations (cold by definition)
	StreamHot                   // data known or detected hot
	StreamCold                  // data known or detected cold
	StreamGCHot                 // GC migrations of known-hot pages
	StreamGCCold                // GC migrations of known-cold pages
	numBaseStreams
)

// MaxLocalityStreams bounds how many concurrent update-locality groups get
// their own write frontier; groups hash onto these.
const MaxLocalityStreams = 8

// NumStreams is the total number of distinct stream values (base streams
// plus locality streams) — the size of dense per-stream arrays.
const NumStreams = int(numBaseStreams) + MaxLocalityStreams

// LocalityStream returns the stream for an update-locality group.
func LocalityStream(group int) Stream {
	if group < 0 {
		group = -group
	}
	return numBaseStreams + Stream(group%MaxLocalityStreams)
}

func (s Stream) String() string {
	switch s {
	case StreamDefault:
		return "default"
	case StreamGC:
		return "gc"
	case StreamWL:
		return "wl"
	case StreamHot:
		return "hot"
	case StreamCold:
		return "cold"
	case StreamGCHot:
		return "gc-hot"
	case StreamGCCold:
		return "gc-cold"
	default:
		return fmt.Sprintf("loc%d", int(s-numBaseStreams))
	}
}

// internal reports whether the stream belongs to the controller itself.
// Internal streams may dig into the GC reserve; application streams may not,
// otherwise GC could find no free block to migrate into and deadlock.
func (s Stream) internal() bool {
	return s == StreamGC || s == StreamWL || s == StreamGCHot || s == StreamGCCold
}

// cold reports whether the stream should prefer old (high-erase-count)
// blocks under dynamic wear leveling.
func (s Stream) cold() bool { return s == StreamCold || s == StreamWL || s == StreamGCCold }

type openBlock struct {
	block  int // block index within the LUN
	next   int // next page to program
	active bool
}

// ecBucket holds the free blocks of one erase-count class in FIFO order:
// live entries are blocks[head:], Release appends at the back, the young
// end pops the front and the old end pops the back. Together with the
// ascending-ec bucket list this reproduces exactly the order of a single
// flat pool kept sorted young → old with equal-count ties broken by
// insertion order — but Release is O(1) amortized instead of an O(pool)
// sorted insert.
type ecBucket struct {
	ec     int32
	head   int
	blocks []int
}

func (b *ecBucket) empty() bool { return b.head >= len(b.blocks) }

type lunState struct {
	// Free pool. Exactly one representation is live: a FIFO ring (freeq
	// with freeHead as the pop index) when allocation is age-blind, or the
	// erase-count buckets when ageAware. freeN counts live entries in
	// either.
	freeq    []int
	freeHead int
	buckets  []ecBucket
	freeN    int

	// open is indexed by Stream: a dense value array instead of a map,
	// because CanAlloc probes it on every write-readiness check in the
	// dispatch hot path.
	open      [NumStreams]openBlock
	openCount int

	// openMask mirrors open as a bitset of LUN-local block indexes, so
	// victim scans test frontier membership in O(1) instead of probing all
	// NumStreams entries. An open block belongs to exactly one stream, so
	// closing a frontier clears its bit unconditionally.
	openMask []uint64
}

// BlockManager owns physical space allocation for the data region: per-LUN
// free block pools and one open block per active write stream. The first
// ReservedTrans blocks of every LUN are carved out for the mapping scheme's
// translation log and never appear in the data pools.
type BlockManager struct {
	array         *flash.Array
	geo           flash.Geometry
	reservedTrans int
	gcReserve     int
	ageAware      bool
	luns          []lunState

	// bWords is the per-LUN bitset width in uint64 words; dataMask has the
	// data-region block bits set (shared by every LUN); scratch is the
	// reusable eligibility mask for bucketed victim queries.
	bWords   int
	dataMask []uint64
	scratch  []uint64
}

// NewBlockManager carves the array into translation and data regions and
// fills the free pools. gcReserve free blocks per LUN are kept back from
// application streams so internal migrations always find space; ageAware
// enables dynamic wear leveling (young blocks to hot streams, old to cold).
func NewBlockManager(array *flash.Array, reservedTrans, gcReserve int, ageAware bool) *BlockManager {
	geo := array.Geometry()
	if reservedTrans < 0 || reservedTrans >= geo.BlocksPerLUN {
		panic(fmt.Sprintf("ftl: reservedTrans %d out of range for %d blocks/LUN", reservedTrans, geo.BlocksPerLUN))
	}
	if gcReserve < 1 {
		gcReserve = 1
	}
	bWords := array.BucketWords()
	bm := &BlockManager{
		array:         array,
		geo:           geo,
		reservedTrans: reservedTrans,
		gcReserve:     gcReserve,
		ageAware:      ageAware,
		luns:          make([]lunState, geo.LUNs()),
		bWords:        bWords,
		dataMask:      make([]uint64, bWords),
		scratch:       make([]uint64, bWords),
	}
	for b := reservedTrans; b < geo.BlocksPerLUN; b++ {
		bm.dataMask[b>>6] |= 1 << (uint(b) & 63)
	}
	cols := array.Columns()
	for lun := range bm.luns {
		st := &bm.luns[lun]
		st.openMask = make([]uint64, bWords)
		base := lun * geo.BlocksPerLUN
		free := make([]int, 0, geo.BlocksPerLUN-reservedTrans)
		for b := reservedTrans; b < geo.BlocksPerLUN; b++ {
			if cols.Bad[base+b] {
				continue // factory bad block: never part of any pool
			}
			free = append(free, b)
		}
		if ageAware {
			sort.SliceStable(free, func(i, j int) bool {
				return cols.EraseCount[base+free[i]] < cols.EraseCount[base+free[j]]
			})
			for _, b := range free {
				st.bucketAppend(cols.EraseCount[base+b], b)
			}
		} else {
			st.freeq = free
		}
		st.freeN = len(free)
	}
	return bm
}

// bucketAppend adds a block at the back of its erase-count bucket, creating
// the bucket in ascending-ec position when absent.
func (ls *lunState) bucketAppend(ec int32, block int) {
	pos := sort.Search(len(ls.buckets), func(i int) bool { return ls.buckets[i].ec >= ec })
	if pos < len(ls.buckets) && ls.buckets[pos].ec == ec {
		ls.buckets[pos].blocks = append(ls.buckets[pos].blocks, block)
		return
	}
	ls.buckets = append(ls.buckets, ecBucket{})
	copy(ls.buckets[pos+1:], ls.buckets[pos:])
	ls.buckets[pos] = ecBucket{ec: ec, blocks: []int{block}}
}

// ReservedTrans returns the number of translation blocks per LUN.
func (bm *BlockManager) ReservedTrans() int { return bm.reservedTrans }

// GCReserve returns the per-LUN free-block floor kept for internal streams.
func (bm *BlockManager) GCReserve() int { return bm.gcReserve }

// LUNs returns the number of LUNs the manager spans.
func (bm *BlockManager) LUNs() int { return len(bm.luns) }

// PagesPerBlock returns the page count of one erase block.
func (bm *BlockManager) PagesPerBlock() int { return bm.geo.PagesPerBlock }

// DataBlocksPerLUN returns the block count of the data region per LUN,
// including any bad blocks.
func (bm *BlockManager) DataBlocksPerLUN() int { return bm.geo.BlocksPerLUN - bm.reservedTrans }

// DataPages returns the total usable physical page count of the data region
// (bad blocks excluded) — the basis for the exported logical capacity.
func (bm *BlockManager) DataPages() int {
	pages := 0
	for lun := range bm.luns {
		bm.DataBlocks(lun, func(flash.BlockID, flash.BlockMeta) { pages += bm.geo.PagesPerBlock })
	}
	return pages
}

// FreeCount returns the number of fully free data blocks in a LUN (open
// blocks being filled do not count).
func (bm *BlockManager) FreeCount(lun int) int { return bm.luns[lun].freeN }

// Alloc returns the next physical page for a write on the given LUN and
// stream. It returns ErrOutOfSpace if only the GC reserve remains and the
// stream is external, or ErrNoFreeBlock if the LUN is exhausted entirely.
func (bm *BlockManager) Alloc(lun int, stream Stream) (flash.PPA, error) {
	st := &bm.luns[lun]
	ob := &st.open[stream]
	if !ob.active {
		b, err := bm.takeFree(lun, stream)
		if err != nil {
			return flash.PPA{}, err
		}
		*ob = openBlock{block: b, active: true}
		st.openCount++
		st.openMask[b>>6] |= 1 << (uint(b) & 63)
	}
	ppa := flash.PPA{LUN: lun, Block: ob.block, Page: ob.next}
	ob.next++
	if ob.next >= bm.geo.PagesPerBlock {
		st.openMask[ob.block>>6] &^= 1 << (uint(ob.block) & 63)
		ob.active = false
		st.openCount--
	}
	return ppa, nil
}

// CanAlloc reports whether Alloc would succeed for the stream on this LUN.
func (bm *BlockManager) CanAlloc(lun int, stream Stream) bool {
	st := &bm.luns[lun]
	if st.open[stream].active {
		return true
	}
	if stream.internal() {
		return st.freeN > 0
	}
	return st.freeN > bm.gcReserve
}

func (bm *BlockManager) takeFree(lun int, stream Stream) (int, error) {
	st := &bm.luns[lun]
	if st.freeN == 0 {
		return 0, fmt.Errorf("%w: lun %d stream %v", ErrNoFreeBlock, lun, stream)
	}
	if !stream.internal() && st.freeN <= bm.gcReserve {
		return 0, fmt.Errorf("%w: lun %d stream %v (%d free)", ErrOutOfSpace, lun, stream, st.freeN)
	}
	st.freeN--
	if !bm.ageAware {
		b := st.freeq[st.freeHead]
		st.freeHead++
		if st.freeHead == len(st.freeq) {
			st.freeq = st.freeq[:0]
			st.freeHead = 0
		}
		return b, nil
	}
	var b int
	if stream.cold() {
		// Oldest block for cold data: back of the highest-count bucket.
		bkt := &st.buckets[len(st.buckets)-1]
		b = bkt.blocks[len(bkt.blocks)-1]
		bkt.blocks = bkt.blocks[:len(bkt.blocks)-1]
		if bkt.empty() {
			st.buckets = st.buckets[:len(st.buckets)-1]
		}
	} else {
		// Youngest block: front of the lowest-count bucket.
		bkt := &st.buckets[0]
		b = bkt.blocks[bkt.head]
		bkt.head++
		if bkt.empty() {
			st.buckets = append(st.buckets[:0], st.buckets[1:]...)
		}
	}
	return b, nil
}

// Release returns an erased block to the free pool. The controller calls it
// after an erase completes.
func (bm *BlockManager) Release(b flash.BlockID) {
	st := &bm.luns[b.LUN]
	st.freeN++
	if !bm.ageAware {
		st.freeq = append(st.freeq, b.Block)
		return
	}
	// The bucket list keeps the pool ordered young -> old by erase count so
	// dynamic wear leveling can pick from either end.
	ec := bm.array.Columns().EraseCount[bm.geo.BlockIndex(b)]
	st.bucketAppend(ec, b.Block)
}

// Condemn removes a retiring block from the manager's books: an open write
// frontier pointing at it is closed (the stream opens a fresh block on its
// next allocation) and a free-pool entry is dropped. The controller calls it
// when a block grows bad mid-run — the pool shrinks, and the block never
// circulates again. Blocks the manager no longer tracks (a GC victim between
// selection and release) condemn to a no-op.
func (bm *BlockManager) Condemn(b flash.BlockID) {
	st := &bm.luns[b.LUN]
	for s := range st.open {
		ob := &st.open[s]
		if ob.active && ob.block == b.Block {
			st.openMask[b.Block>>6] &^= 1 << (uint(b.Block) & 63)
			ob.active = false
			st.openCount--
		}
	}
	if !bm.ageAware {
		for i := st.freeHead; i < len(st.freeq); i++ {
			if st.freeq[i] == b.Block {
				st.freeq = append(st.freeq[:i], st.freeq[i+1:]...)
				st.freeN--
				break
			}
		}
		return
	}
	for bi := range st.buckets {
		bkt := &st.buckets[bi]
		for i := bkt.head; i < len(bkt.blocks); i++ {
			if bkt.blocks[i] == b.Block {
				bkt.blocks = append(bkt.blocks[:i], bkt.blocks[i+1:]...)
				st.freeN--
				if bkt.empty() {
					st.buckets = append(st.buckets[:bi], st.buckets[bi+1:]...)
				}
				return
			}
		}
	}
}

// IsOpen reports whether the block is currently an open write frontier.
func (bm *BlockManager) IsOpen(b flash.BlockID) bool {
	return bm.luns[b.LUN].openMask[b.Block>>6]&(1<<(uint(b.Block)&63)) != 0
}

// OpenStreams returns how many streams have an open block on the LUN.
func (bm *BlockManager) OpenStreams(lun int) int { return bm.luns[lun].openCount }

// DataBlocks calls fn for every non-bad data-region block in the LUN,
// including free ones. Wear statistics are computed over this set: free
// blocks carry erase cycles too. The scan walks the array's metadata
// columns directly instead of assembling BlockMeta for skipped blocks.
func (bm *BlockManager) DataBlocks(lun int, fn func(b flash.BlockID, meta flash.BlockMeta)) {
	cols := bm.array.Columns()
	base := lun * bm.geo.BlocksPerLUN
	for blk := bm.reservedTrans; blk < bm.geo.BlocksPerLUN; blk++ {
		i := base + blk
		if cols.Bad[i] {
			continue
		}
		fn(flash.BlockID{LUN: lun, Block: blk}, flash.BlockMeta{
			EraseCount: int(cols.EraseCount[i]),
			LastErase:  cols.LastErase[i],
			ValidPages: int(cols.ValidPages[i]),
			WritePtr:   int(cols.WritePtr[i]),
			Bad:        false,
		})
	}
}

// WearStats returns the non-bad data-region block count and the sum of
// their erase counts — the wear-leveling scan's first pass, computed as one
// pure column walk.
func (bm *BlockManager) WearStats(lun int) (blocks, eraseSum int) {
	cols := bm.array.Columns()
	base := lun * bm.geo.BlocksPerLUN
	for blk := bm.reservedTrans; blk < bm.geo.BlocksPerLUN; blk++ {
		if cols.Bad[base+blk] {
			continue
		}
		blocks++
		eraseSum += int(cols.EraseCount[base+blk])
	}
	return blocks, eraseSum
}

// VictimCandidates calls fn for every data-region block in the LUN that is
// eligible as a GC or WL victim: programmed at least partially, not free,
// not bad, and not an open write frontier. Frontier membership is one bit
// test against the open mask.
func (bm *BlockManager) VictimCandidates(lun int, fn func(b flash.BlockID, meta flash.BlockMeta)) {
	cols := bm.array.Columns()
	st := &bm.luns[lun]
	base := lun * bm.geo.BlocksPerLUN
	for blk := bm.reservedTrans; blk < bm.geo.BlocksPerLUN; blk++ {
		i := base + blk
		if cols.Bad[i] || cols.WritePtr[i] == 0 || st.openMask[blk>>6]&(1<<(uint(blk)&63)) != 0 {
			continue
		}
		fn(flash.BlockID{LUN: lun, Block: blk}, flash.BlockMeta{
			EraseCount: int(cols.EraseCount[i]),
			LastErase:  cols.LastErase[i],
			ValidPages: int(cols.ValidPages[i]),
			WritePtr:   int(cols.WritePtr[i]),
			Bad:        false,
		})
	}
}

// MinValidVictim returns the GC victim a greedy linear scan over
// VictimCandidates would pick: the candidate with the fewest valid pages,
// ties toward the lowest block index, refusing blocks whose every page is
// live. It answers from the array's (LUN, valid-count) bucket bitsets in
// O(pagesPerBlock · words) instead of touching every block.
func (bm *BlockManager) MinValidVictim(lun int) (flash.BlockID, int, bool) {
	st := &bm.luns[lun]
	for w := 0; w < bm.bWords; w++ {
		bm.scratch[w] = bm.dataMask[w] &^ st.openMask[w]
	}
	blk, valid, ok := bm.array.MinValidBlock(lun, bm.scratch, bm.geo.PagesPerBlock)
	if !ok {
		return flash.BlockID{}, 0, false
	}
	return flash.BlockID{LUN: lun, Block: blk}, valid, true
}
