package ftl

import (
	"fmt"
	"sort"

	"eagletree/internal/flash"
)

// Stream identifies a write frontier. Each (LUN, stream) pair fills its own
// open block, so pages written through one stream land together — the
// mechanism behind hot/cold separation, GC isolation and update-locality
// grouping.
type Stream uint8

// Base streams. Locality groups map to dedicated streams above these.
const (
	StreamDefault Stream = iota // untagged application writes
	StreamGC                    // garbage-collection migrations, temperature unknown
	StreamWL                    // wear-leveling migrations (cold by definition)
	StreamHot                   // data known or detected hot
	StreamCold                  // data known or detected cold
	StreamGCHot                 // GC migrations of known-hot pages
	StreamGCCold                // GC migrations of known-cold pages
	numBaseStreams
)

// MaxLocalityStreams bounds how many concurrent update-locality groups get
// their own write frontier; groups hash onto these.
const MaxLocalityStreams = 8

// NumStreams is the total number of distinct stream values (base streams
// plus locality streams) — the size of dense per-stream arrays.
const NumStreams = int(numBaseStreams) + MaxLocalityStreams

// LocalityStream returns the stream for an update-locality group.
func LocalityStream(group int) Stream {
	if group < 0 {
		group = -group
	}
	return numBaseStreams + Stream(group%MaxLocalityStreams)
}

func (s Stream) String() string {
	switch s {
	case StreamDefault:
		return "default"
	case StreamGC:
		return "gc"
	case StreamWL:
		return "wl"
	case StreamHot:
		return "hot"
	case StreamCold:
		return "cold"
	case StreamGCHot:
		return "gc-hot"
	case StreamGCCold:
		return "gc-cold"
	default:
		return fmt.Sprintf("loc%d", int(s-numBaseStreams))
	}
}

// internal reports whether the stream belongs to the controller itself.
// Internal streams may dig into the GC reserve; application streams may not,
// otherwise GC could find no free block to migrate into and deadlock.
func (s Stream) internal() bool {
	return s == StreamGC || s == StreamWL || s == StreamGCHot || s == StreamGCCold
}

// cold reports whether the stream should prefer old (high-erase-count)
// blocks under dynamic wear leveling.
func (s Stream) cold() bool { return s == StreamCold || s == StreamWL || s == StreamGCCold }

type openBlock struct {
	block int // block index within the LUN
	next  int // next page to program
}

type lunState struct {
	free []int // free data-region block indices, sorted young -> old when ageAware
	// open is indexed by Stream: a dense array instead of a map, because
	// CanAlloc probes it on every write-readiness check in the dispatch
	// hot path.
	open      [NumStreams]*openBlock
	openCount int
}

// BlockManager owns physical space allocation for the data region: per-LUN
// free block pools and one open block per active write stream. The first
// ReservedTrans blocks of every LUN are carved out for the mapping scheme's
// translation log and never appear in the data pools.
type BlockManager struct {
	array         *flash.Array
	geo           flash.Geometry
	reservedTrans int
	gcReserve     int
	ageAware      bool
	luns          []lunState
}

// NewBlockManager carves the array into translation and data regions and
// fills the free pools. gcReserve free blocks per LUN are kept back from
// application streams so internal migrations always find space; ageAware
// enables dynamic wear leveling (young blocks to hot streams, old to cold).
func NewBlockManager(array *flash.Array, reservedTrans, gcReserve int, ageAware bool) *BlockManager {
	geo := array.Geometry()
	if reservedTrans < 0 || reservedTrans >= geo.BlocksPerLUN {
		panic(fmt.Sprintf("ftl: reservedTrans %d out of range for %d blocks/LUN", reservedTrans, geo.BlocksPerLUN))
	}
	if gcReserve < 1 {
		gcReserve = 1
	}
	bm := &BlockManager{
		array:         array,
		geo:           geo,
		reservedTrans: reservedTrans,
		gcReserve:     gcReserve,
		ageAware:      ageAware,
		luns:          make([]lunState, geo.LUNs()),
	}
	for lun := range bm.luns {
		st := &bm.luns[lun]
		st.free = make([]int, 0, geo.BlocksPerLUN-reservedTrans)
		for b := reservedTrans; b < geo.BlocksPerLUN; b++ {
			if array.Block(flash.BlockID{LUN: lun, Block: b}).Bad {
				continue // factory bad block: never part of any pool
			}
			st.free = append(st.free, b)
		}
		if ageAware {
			lun := lun
			sort.SliceStable(st.free, func(i, j int) bool {
				ei := array.Block(flash.BlockID{LUN: lun, Block: st.free[i]}).EraseCount
				ej := array.Block(flash.BlockID{LUN: lun, Block: st.free[j]}).EraseCount
				return ei < ej
			})
		}
	}
	return bm
}

// ReservedTrans returns the number of translation blocks per LUN.
func (bm *BlockManager) ReservedTrans() int { return bm.reservedTrans }

// GCReserve returns the per-LUN free-block floor kept for internal streams.
func (bm *BlockManager) GCReserve() int { return bm.gcReserve }

// LUNs returns the number of LUNs the manager spans.
func (bm *BlockManager) LUNs() int { return len(bm.luns) }

// PagesPerBlock returns the page count of one erase block.
func (bm *BlockManager) PagesPerBlock() int { return bm.geo.PagesPerBlock }

// DataBlocksPerLUN returns the block count of the data region per LUN,
// including any bad blocks.
func (bm *BlockManager) DataBlocksPerLUN() int { return bm.geo.BlocksPerLUN - bm.reservedTrans }

// DataPages returns the total usable physical page count of the data region
// (bad blocks excluded) — the basis for the exported logical capacity.
func (bm *BlockManager) DataPages() int {
	pages := 0
	for lun := range bm.luns {
		bm.DataBlocks(lun, func(flash.BlockID, flash.BlockMeta) { pages += bm.geo.PagesPerBlock })
	}
	return pages
}

// FreeCount returns the number of fully free data blocks in a LUN (open
// blocks being filled do not count).
func (bm *BlockManager) FreeCount(lun int) int { return len(bm.luns[lun].free) }

// Alloc returns the next physical page for a write on the given LUN and
// stream. It returns ErrOutOfSpace if only the GC reserve remains and the
// stream is external, or ErrNoFreeBlock if the LUN is exhausted entirely.
func (bm *BlockManager) Alloc(lun int, stream Stream) (flash.PPA, error) {
	st := &bm.luns[lun]
	ob := st.open[stream]
	if ob == nil {
		b, err := bm.takeFree(lun, stream)
		if err != nil {
			return flash.PPA{}, err
		}
		ob = &openBlock{block: b}
		st.open[stream] = ob
		st.openCount++
	}
	ppa := flash.PPA{LUN: lun, Block: ob.block, Page: ob.next}
	ob.next++
	if ob.next >= bm.geo.PagesPerBlock {
		st.open[stream] = nil
		st.openCount--
	}
	return ppa, nil
}

// CanAlloc reports whether Alloc would succeed for the stream on this LUN.
func (bm *BlockManager) CanAlloc(lun int, stream Stream) bool {
	st := &bm.luns[lun]
	if st.open[stream] != nil {
		return true
	}
	if stream.internal() {
		return len(st.free) > 0
	}
	return len(st.free) > bm.gcReserve
}

func (bm *BlockManager) takeFree(lun int, stream Stream) (int, error) {
	st := &bm.luns[lun]
	if len(st.free) == 0 {
		return 0, fmt.Errorf("%w: lun %d stream %v", ErrNoFreeBlock, lun, stream)
	}
	if !stream.internal() && len(st.free) <= bm.gcReserve {
		return 0, fmt.Errorf("%w: lun %d stream %v (%d free)", ErrOutOfSpace, lun, stream, len(st.free))
	}
	idx := 0
	if bm.ageAware && stream.cold() {
		idx = len(st.free) - 1 // oldest block for cold data
	}
	b := st.free[idx]
	st.free = append(st.free[:idx], st.free[idx+1:]...)
	return b, nil
}

// Release returns an erased block to the free pool. The controller calls it
// after an erase completes.
func (bm *BlockManager) Release(b flash.BlockID) {
	st := &bm.luns[b.LUN]
	if !bm.ageAware {
		st.free = append(st.free, b.Block)
		return
	}
	// Keep the pool sorted young -> old by erase count so dynamic wear
	// leveling can pick from either end.
	ec := bm.array.Block(b).EraseCount
	pos := sort.Search(len(st.free), func(i int) bool {
		return bm.array.Block(flash.BlockID{LUN: b.LUN, Block: st.free[i]}).EraseCount > ec
	})
	st.free = append(st.free, 0)
	copy(st.free[pos+1:], st.free[pos:])
	st.free[pos] = b.Block
}

// Condemn removes a retiring block from the manager's books: an open write
// frontier pointing at it is closed (the stream opens a fresh block on its
// next allocation) and a free-pool entry is dropped. The controller calls it
// when a block grows bad mid-run — the pool shrinks, and the block never
// circulates again. Blocks the manager no longer tracks (a GC victim between
// selection and release) condemn to a no-op.
func (bm *BlockManager) Condemn(b flash.BlockID) {
	st := &bm.luns[b.LUN]
	for s, ob := range st.open {
		if ob != nil && ob.block == b.Block {
			st.open[s] = nil
			st.openCount--
		}
	}
	for i, blk := range st.free {
		if blk == b.Block {
			st.free = append(st.free[:i], st.free[i+1:]...)
			break
		}
	}
}

// IsOpen reports whether the block is currently an open write frontier.
func (bm *BlockManager) IsOpen(b flash.BlockID) bool {
	for _, ob := range bm.luns[b.LUN].open {
		if ob != nil && ob.block == b.Block {
			return true
		}
	}
	return false
}

// OpenStreams returns how many streams have an open block on the LUN.
func (bm *BlockManager) OpenStreams(lun int) int { return bm.luns[lun].openCount }

// DataBlocks calls fn for every non-bad data-region block in the LUN,
// including free ones. Wear statistics are computed over this set: free
// blocks carry erase cycles too.
func (bm *BlockManager) DataBlocks(lun int, fn func(b flash.BlockID, meta flash.BlockMeta)) {
	for blk := bm.reservedTrans; blk < bm.geo.BlocksPerLUN; blk++ {
		id := flash.BlockID{LUN: lun, Block: blk}
		meta := bm.array.Block(id)
		if meta.Bad {
			continue
		}
		fn(id, meta)
	}
}

// VictimCandidates calls fn for every data-region block in the LUN that is
// eligible as a GC or WL victim: programmed at least partially, not free,
// not bad, and not an open write frontier.
func (bm *BlockManager) VictimCandidates(lun int, fn func(b flash.BlockID, meta flash.BlockMeta)) {
	for blk := bm.reservedTrans; blk < bm.geo.BlocksPerLUN; blk++ {
		id := flash.BlockID{LUN: lun, Block: blk}
		meta := bm.array.Block(id)
		if meta.Bad || meta.Free() || bm.IsOpen(id) {
			continue
		}
		fn(id, meta)
	}
}
