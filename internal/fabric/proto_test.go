package fabric

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"eagletree/internal/experiment"
)

// sampleMsgs covers every message type with every field its type uses.
func sampleMsgs() []Msg {
	return []Msg{
		{Type: MsgHello, Version: ProtoVersion, Spec: []byte(`{"version":1}`), SeriesBucket: 20_000_000},
		{Type: MsgReady, Version: ProtoVersion, Count: 9, Sum: "ab12"},
		{Type: MsgLease, Index: 0, Key: "spec1|{}"},
		{Type: MsgLease, Index: 3, Key: "spec1|{\"geometry\":{}}"},
		{Type: MsgEvent, Kind: experiment.EventVariantQueued, Index: 0, Variant: "ch=1", Variants: 8},
		{Type: MsgEvent, Kind: experiment.EventPrepareMiss, Index: 2, Variant: "ch=4", Variants: 8, Key: "spec1|{}", Wall: 1_234_567},
		{Type: MsgResult, Index: 2, Key: "spec1|{}", Wall: 77, Row: &experiment.Row{Label: "ch=4", X: 4, Timeline: "▁▂▃"}},
		{Type: MsgFailed, Index: 5, Variant: "ch=32", Error: "boom", Panic: true, Wall: 3},
		{Type: MsgFetch, Key: "spec1|{}"},
		{Type: MsgState, Key: "spec1|{}", Data: []byte{1, 2, 3, 0xff}},
		{Type: MsgState, Key: "spec1|{}", Miss: true},
		{Type: MsgPut, Key: "spec1|{}", Data: []byte("EGTSNAP...")},
		{Type: MsgShutdown, Error: "sweep complete"},
	}
}

// TestCodecRoundTrip sends every sample message through a pipe buffer and
// requires the decoded value to match field for field — including the zero
// event kind and index zero, the classic omitempty casualties.
func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf, &buf)
	for _, m := range sampleMsgs() {
		if err := c.Send(m); err != nil {
			t.Fatalf("send %s: %v", m.Type, err)
		}
	}
	for _, want := range sampleMsgs() {
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %s: %v", want.Type, err)
		}
		// Spec survives as semantically equal JSON; compare it separately.
		if string(got.Spec) != string(want.Spec) {
			t.Fatalf("%s: spec %s, want %s", want.Type, got.Spec, want.Spec)
		}
		got.Spec, want.Spec = nil, nil
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round trip:\ngot  %#v\nwant %#v", want.Type, got, want)
		}
	}
	if _, err := c.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("after drain: %v, want io.EOF", err)
	}
}

// TestCodecNDJSONFraming pins the wire shape: one message per line, no
// indentation — the property that lets a human tail a session transcript.
func TestCodecNDJSONFraming(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(nil, &buf)
	for _, m := range sampleMsgs() {
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(sampleMsgs()) {
		t.Fatalf("%d lines for %d messages", len(lines), len(sampleMsgs()))
	}
	for i, ln := range lines {
		if strings.ContainsAny(ln, "\n\r") || !strings.HasPrefix(ln, `{"type":`) {
			t.Fatalf("line %d is not a compact NDJSON object: %q", i, ln)
		}
	}
}

// TestRecvTypedErrors maps the codec's failure modes onto its typed errors.
func TestRecvTypedErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  error
	}{
		{"clean EOF", "", io.EOF},
		{"truncated object", `{"type":"lease","index"`, ErrTruncated},
		{"not JSON", "EGTSNAP\x01\x02", ErrMalformed},
		{"wrong JSON shape", `{"type":["lease"]}`, ErrMalformed},
		{"bad base64 state", `{"type":"state","data":"!!!"}`, ErrMalformed},
	}
	for _, tc := range cases {
		c := NewCodec(strings.NewReader(tc.input), nil)
		_, err := c.Recv()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	c := NewCodec(strings.NewReader(`{"type":"gossip"}`), nil)
	_, err := c.Recv()
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Errorf("unknown type: got %v, want *ProtocolError", err)
	}
}

// FuzzRecv pins the codec's robustness contract, mirroring the snapshot
// codec's FuzzDecode: arbitrary input yields a message or one of the typed
// errors — never a panic, never an untyped failure.
func FuzzRecv(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(`{"type":"lease","index":3,"key":"spec1|{}"}`))
	f.Add([]byte(`{"type":"state","data":"AQID"}{"type":"shutdown"}`))
	f.Add([]byte(`{"type":"lease"`))
	f.Add([]byte("\x00\x01\x02"))
	f.Add([]byte(`{"type":"event","kind":"prepare-hit","index":1}`))
	f.Add([]byte(`{"type":"event","kind":"sideways"}`))
	var buf bytes.Buffer
	enc := NewCodec(nil, &buf)
	for _, m := range sampleMsgs() {
		if err := enc.Send(m); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCodec(bytes.NewReader(data), nil)
		for i := 0; i < 64; i++ { // bounded: corrupt input must not loop forever
			_, err := c.Recv()
			if err == nil {
				continue
			}
			var pe *ProtocolError
			switch {
			case errors.Is(err, io.EOF),
				errors.Is(err, ErrTruncated),
				errors.Is(err, ErrMalformed),
				errors.As(err, &pe):
				return
			default:
				t.Fatalf("untyped error %T from Recv: %v", err, err)
			}
		}
	})
}

// TestKeyDigestPositional: permuting the key list must change the digest —
// leases are positional, so a digest that ignored order would let two
// processes agree while disagreeing about which variant is which.
func TestKeyDigestPositional(t *testing.T) {
	a := KeyDigest([]string{"k1", "k2"})
	b := KeyDigest([]string{"k2", "k1"})
	if a == b {
		t.Fatal("digest ignores key order")
	}
	if KeyDigest([]string{"ab", "c"}) == KeyDigest([]string{"a", "bc"}) {
		t.Fatal("digest ignores key boundaries")
	}
	if a != KeyDigest([]string{"k1", "k2"}) {
		t.Fatal("digest is not deterministic")
	}
}
