package fabric

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"time"

	"eagletree/internal/experiment"
	"eagletree/internal/sim"
	"eagletree/internal/snapshot"
	"eagletree/internal/spec"
)

// WorkerOptions configures one worker session.
type WorkerOptions struct {
	// Cache is the worker's local state cache (disk-backed when the worker
	// was started with one); nil means a private in-memory cache per
	// session. The session wires the coordinator in as the cache's remote
	// store, so prepared states flow: local memory, local disk, the wire,
	// and only then a local build (published back).
	Cache *experiment.StateCache
	// Logf, when non-nil, receives worker-side progress lines (stderr in
	// the CLI).
	Logf func(format string, args ...any)
}

// Serve runs one worker session over a byte stream: handshake, then a
// lease-execute-report loop until the coordinator sends shutdown or the
// stream ends. It returns nil on an orderly shutdown and the transport or
// protocol error otherwise.
func Serve(ctx context.Context, r io.Reader, w io.Writer, opts WorkerOptions) error {
	s := &workerSession{
		codec: NewCodec(r, w),
		logf:  opts.Logf,
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}

	hello, err := s.codec.Recv()
	if err != nil {
		if errors.Is(err, io.EOF) {
			// The coordinator hung up before speaking — its crash, not ours.
			return nil
		}
		return fmt.Errorf("fabric: worker handshake: %w", err)
	}
	if hello.Type != MsgHello {
		return &ProtocolError{Reason: fmt.Sprintf("expected hello, got %q", hello.Type)}
	}
	if hello.Version != ProtoVersion {
		return &ProtocolError{Reason: fmt.Sprintf("protocol version %d, want %d", hello.Version, ProtoVersion)}
	}
	doc, err := spec.Decode(hello.Spec)
	if err != nil {
		return fmt.Errorf("fabric: worker: decoding spec document: %w", err)
	}
	def, err := experiment.FromSpec(doc)
	if err != nil {
		return fmt.Errorf("fabric: worker: compiling %q: %w", doc.Name, err)
	}
	if hello.SeriesBucket > 0 {
		def.SeriesBucket = sim.Duration(hello.SeriesBucket)
	}
	keys, err := doc.VariantKeys()
	if err != nil {
		return fmt.Errorf("fabric: worker: variant keys for %q: %w", doc.Name, err)
	}
	if err := s.codec.Send(Msg{Type: MsgReady, Version: ProtoVersion,
		Count: len(keys), Sum: KeyDigest(keys)}); err != nil {
		return err
	}
	s.logf("worker: serving %q (%d variants)", doc.Name, len(keys))

	cache := opts.Cache
	if cache == nil {
		cache = experiment.NewStateCache("")
	}
	cache.SetRemote(s.remoteFetch, s.publish)
	runner := experiment.New(experiment.Options{
		Workers:  1,
		Cache:    cache,
		Observer: experiment.ObserverFunc(s.forwardEvent),
	})

	for {
		m, err := s.codec.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				// A vanished coordinator is not the worker's failure.
				return nil
			}
			return err
		}
		switch m.Type {
		case MsgShutdown:
			s.logf("worker: shutdown (%s)", m.Error)
			return nil
		case MsgLease:
			if err := s.runLease(ctx, runner, def, keys, m); err != nil {
				return err
			}
		default:
			return &ProtocolError{Reason: fmt.Sprintf("unexpected %q from coordinator", m.Type)}
		}
	}
}

// workerSession is one Serve invocation's shared state. The session
// goroutine is the codec's only reader: leases are granted one at a time,
// and the fetch round-trip inside a lease reads its own reply inline — the
// coordinator sends nothing else mid-lease.
type workerSession struct {
	codec *Codec
	logf  func(string, ...any)
}

// runLease validates and executes one lease, sending result or failed. The
// variant runs on the session goroutine: the protocol grants one lease at a
// time, and the fetch round-trip inside it is a plain send/receive pair.
func (s *workerSession) runLease(ctx context.Context, runner *experiment.Runner, def experiment.Definition, keys []string, m Msg) error {
	if m.Index < 0 || m.Index >= len(keys) {
		return &ProtocolError{Reason: fmt.Sprintf("lease index %d out of range [0,%d)", m.Index, len(keys))}
	}
	if m.Key != keys[m.Index] {
		// The two processes resolved different configurations for the same
		// grid position — registry or version skew. Running anyway would
		// merge silently wrong rows; refuse the lease instead.
		return &ProtocolError{Reason: fmt.Sprintf("lease %d key mismatch: coordinator and worker resolve different configurations (version skew?)", m.Index)}
	}
	start := time.Now() //lint:wallclock per-lease wall-time telemetry
	row, err := runner.RunVariant(ctx, def, m.Index)
	wall := time.Since(start)
	if err != nil {
		if ctx.Err() != nil {
			// This process is being stopped (SIGTERM on a TCP worker host),
			// not the variant failing: drop the session so the coordinator
			// sees a dead worker and re-issues the lease to a survivor,
			// rather than recording a permanent variant failure.
			s.logf("worker: abandoning variant %d after %v: %v", m.Index, wall.Round(time.Millisecond), ctx.Err())
			return fmt.Errorf("fabric: worker stopping: lease %d abandoned: %w", m.Index, context.Cause(ctx))
		}
		var ve *experiment.VariantError
		isPanic := errors.As(err, &ve)
		s.logf("worker: variant %d failed after %v: %v", m.Index, wall.Round(time.Millisecond), err)
		return s.codec.Send(Msg{Type: MsgFailed, Index: m.Index, Key: m.Key,
			Variant: def.Variants[m.Index].Label, Error: err.Error(), Panic: isPanic,
			Wall: int64(wall)})
	}
	s.logf("worker: variant %d (%s) done in %v", m.Index, row.Label, wall.Round(time.Millisecond))
	return s.codec.Send(Msg{Type: MsgResult, Index: m.Index, Key: m.Key,
		Row: &row, Wall: int64(wall)})
}

// remoteFetch asks the coordinator's cache for a prepared state. (nil, nil)
// is a remote miss — the build is delegated to this worker. Every payload is
// verified before it is trusted: a transport that corrupts a snapshot must
// surface as a typed error here, not as a diverging simulation later.
func (s *workerSession) remoteFetch(key string) ([]byte, error) {
	if err := s.codec.Send(Msg{Type: MsgFetch, Key: key}); err != nil {
		return nil, err
	}
	m, err := s.codec.Recv()
	if err != nil {
		return nil, err
	}
	if m.Type != MsgState {
		return nil, &ProtocolError{Reason: fmt.Sprintf("expected state reply, got %q", m.Type)}
	}
	if m.Key != key {
		return nil, &ProtocolError{Reason: fmt.Sprintf("state reply for key %q, want %q", m.Key, key)}
	}
	if m.Miss {
		return nil, nil
	}
	if err := snapshot.Verify(m.Data); err != nil {
		return nil, fmt.Errorf("fabric: fetched state for %q: %w", key, err)
	}
	return m.Data, nil
}

// publish mirrors a locally built state to the coordinator, best-effort: a
// failed publish costs other workers a rebuild, never this variant.
func (s *workerSession) publish(key string, data []byte) {
	_ = s.codec.Send(Msg{Type: MsgPut, Key: key, Data: data})
}

// forwardEvent streams a runner event to the coordinator. Rows ride in the
// result message, not the event stream, so EventVariantDone is forwarded
// without its row copy.
func (s *workerSession) forwardEvent(ev experiment.Event) {
	m := Msg{Type: MsgEvent, Kind: ev.Kind, Index: ev.Index,
		Variant: ev.Variant, Variants: ev.Variants, Key: ev.CacheKey,
		Wall: int64(ev.Wall)}
	if ev.Err != nil {
		m.Error = ev.Err.Error()
	}
	_ = s.codec.Send(m)
}

// KeyDigest condenses a variant-key list into a short hex digest. The
// handshake compares digests instead of shipping every canonical
// configuration string twice; indices are mixed in so a permutation cannot
// collide.
func KeyDigest(keys []string) string {
	h := sha256.New()
	var idx [8]byte
	for i, k := range keys {
		binary.LittleEndian.PutUint64(idx[:], uint64(i))
		h.Write(idx[:])
		io.WriteString(h, k)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
