package fabric

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"eagletree/internal/experiment"
	"eagletree/internal/resultstore"
	"eagletree/internal/spec"
)

// suiteDoc fetches one predefined small-scale suite document by id prefix.
func suiteDoc(t testing.TB, id string) spec.Experiment {
	t.Helper()
	for _, e := range experiment.SuiteSpecs(experiment.Small) {
		if strings.HasPrefix(e.Name, id+"-") {
			return e
		}
	}
	t.Fatalf("no suite experiment %s", id)
	return spec.Experiment{}
}

// startWorkers launches n in-process worker sessions over synchronous pipes
// and returns the coordinator-side transports. Worker errors fail the test
// unless the worker's transport was deliberately killed.
func startWorkers(t *testing.T, n int, cache func(int) *experiment.StateCache) ([]io.ReadWriteCloser, *sync.WaitGroup) {
	t.Helper()
	var wg sync.WaitGroup
	conns := make([]io.ReadWriteCloser, n)
	for i := 0; i < n; i++ {
		coordSide, workerSide := net.Pipe()
		conns[i] = coordSide
		wg.Add(1)
		go func(id int, conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			var c *experiment.StateCache
			if cache != nil {
				c = cache(id)
			}
			err := Serve(context.Background(), conn, conn, WorkerOptions{Cache: c})
			// A severed transport (the kill test) surfaces as a closed pipe
			// or a stream truncated mid-message; both are the simulated
			// crash, not a worker bug.
			if err != nil && !errors.Is(err, io.ErrClosedPipe) && !errors.Is(err, ErrTruncated) {
				t.Errorf("worker %d: %v", id, err)
			}
		}(i, workerSide)
	}
	return conns, &wg
}

// sequentialResults runs the document in-process, single worker — the golden
// the distributed merge must reproduce bit for bit.
func sequentialResults(t *testing.T, doc spec.Experiment) experiment.Results {
	t.Helper()
	def, err := experiment.FromSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiment.New(experiment.Options{Workers: 1}).Run(context.Background(), def)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// dump renders results the way the full-scale golden does: every row's exact
// field values, so a single flipped bit anywhere fails the comparison.
func dump(res experiment.Results) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", res.Name)
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%#v\n", r)
	}
	return b.String()
}

// TestDistributedMatchesSequential shards an aged-device sweep (E2: four
// policy variants over one shared prepared state) across two workers and
// requires the merged Results to be identical — bit for bit — to the
// sequential run. This exercises the whole fabric: handshake, leases, the
// delegated preparation build, the put/fetch state flow, and ordered merge.
func TestDistributedMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full small-scale experiments")
	}
	doc := suiteDoc(t, "E2")
	want := dump(sequentialResults(t, doc))

	conns, wg := startWorkers(t, 2, nil)
	var events []experiment.Event
	res, err := Run(context.Background(), doc, Options{
		Conns: conns,
		Observer: experiment.ObserverFunc(func(ev experiment.Event) {
			events = append(events, ev)
		}),
	})
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	wg.Wait()
	if got := dump(res); got != want {
		t.Errorf("distributed rows diverge from sequential:\n--- distributed\n%s--- sequential\n%s", got, want)
	}

	// The merged event stream keeps the runner's contract: one queued and
	// one done event per variant, one terminal experiment event.
	counts := map[experiment.EventKind]int{}
	for _, ev := range events {
		counts[ev.Kind]++
	}
	n := len(res.Rows)
	if counts[experiment.EventVariantQueued] != n || counts[experiment.EventVariantDone] != n {
		t.Errorf("event counts %v, want %d queued and %d done", counts, n, n)
	}
	if counts[experiment.EventExperimentDone] != 1 {
		t.Errorf("%d experiment-done events, want 1", counts[experiment.EventExperimentDone])
	}
	if counts[experiment.EventPrepareHit]+counts[experiment.EventPrepareMiss] != n {
		t.Errorf("prepare events %v, want %d across hit+miss", counts, n)
	}
}

// TestDistributedSharesPreparedState: with a shared coordinator cache, the
// preparation for an aged-device sweep is built exactly once — the first
// worker's miss is delegated, published, and every later variant on either
// worker restores from the wire or local memory.
func TestDistributedSharesPreparedState(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full small-scale experiments")
	}
	doc := suiteDoc(t, "E2")
	cache := experiment.NewStateCache("")
	conns, wg := startWorkers(t, 2, nil)
	res, err := Run(context.Background(), doc, Options{Conns: conns, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if n := cache.Len(); n != 1 {
		t.Errorf("coordinator cache holds %d states, want 1 (E2 shares one prepared device)", n)
	}
}

// killableConn wraps a transport so the test can sever it mid-session,
// simulating a worker crash from the coordinator's point of view.
type killableConn struct {
	io.ReadWriteCloser
	once sync.Once
}

func (k *killableConn) kill() { k.once.Do(func() { k.ReadWriteCloser.Close() }) }

// TestWorkerKillLeaseReissue kills one of two workers as soon as its first
// variant completes; its outstanding lease must be re-issued to the
// survivor and the merged Results must still be byte-identical to the
// sequential run — the fabric's crash-tolerance contract.
func TestWorkerKillLeaseReissue(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full small-scale experiments")
	}
	doc := suiteDoc(t, "E1") // 8 variants: plenty of leases left to lose
	want := dump(sequentialResults(t, doc))

	conns, wg := startWorkers(t, 2, nil)
	victim := &killableConn{ReadWriteCloser: conns[0]}
	conns[0] = victim

	var mu sync.Mutex
	done := 0
	res, err := Run(context.Background(), doc, Options{
		Conns: conns,
		Observer: experiment.ObserverFunc(func(ev experiment.Event) {
			if ev.Kind != experiment.EventVariantDone {
				return
			}
			mu.Lock()
			done++
			first := done == 1
			mu.Unlock()
			if first {
				victim.kill()
			}
		}),
	})
	if err != nil {
		t.Fatalf("distributed run with killed worker: %v", err)
	}
	wg.Wait()
	if got := dump(res); got != want {
		t.Errorf("rows diverge after worker kill:\n--- distributed\n%s--- sequential\n%s", got, want)
	}
}

// TestFailedBuildFailsOver pins the delegated-build failover contract: a
// worker that owns a preparation build and then ends its lease without
// publishing (a failed or canceled local build sends no put) must hand the
// build over, or every waiter — including the owner itself on a later lease —
// blocks forever on the never-closed ready channel.
func TestFailedBuildFailsOver(t *testing.T) {
	c := &coordinator{
		keys:    []string{"k0", "k1"},
		labels:  []string{"v0", "v1"},
		state:   make([]leaseState, 2),
		rows:    make([]experiment.Row, 2),
		errs:    make([]error, 2),
		started: make([]time.Time, 2),
		flagged: make([]bool, 2),
		builds:  make(map[string]*buildState),
		cache:   experiment.NewStateCache(""),
	}
	c.cond = sync.NewCond(&c.mu)
	c.opts.Logf = func(string, ...any) {}
	ctx := context.Background()

	// Worker 0 misses the prep key: the build is delegated to it.
	data, err := c.serveFetch(ctx, 0, "prep")
	if err != nil || data != nil {
		t.Fatalf("first fetch = (%v, %v), want delegated miss (nil, nil)", data, err)
	}

	// Worker 1 asks for the same key and must wait on worker 0's build.
	got := make(chan []byte, 1)
	go func() {
		d, err := c.serveFetch(ctx, 1, "prep")
		if err != nil {
			t.Errorf("waiter fetch: %v", err)
		}
		got <- d
	}()

	// Worker 0's lease ends in failure — its build will never be published.
	c.complete(0, 0, experiment.Row{}, errors.New("prep failed"), 0)

	select {
	case d := <-got:
		// The waiter retried and was handed ownership (a fresh miss).
		if d != nil {
			t.Fatalf("waiter got %d bytes, want delegated miss", len(d))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter still blocked after the build owner's lease failed")
	}

	// Ownership really moved: worker 1 now holds the in-flight build.
	c.mu.Lock()
	b, ok := c.builds["prep"]
	c.mu.Unlock()
	if !ok || b.owner != 1 {
		t.Fatalf("build entry = %+v (present %v), want owner 1", b, ok)
	}

	// And the former owner is not wedged either: its next fetch for the same
	// key waits on worker 1 rather than deadlocking on its own stale entry.
	ctx2, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	reissued := make(chan error, 1)
	go func() {
		_, err := c.serveFetch(ctx2, 0, "prep")
		reissued <- err
	}()
	c.complete(1, 1, experiment.Row{}, errors.New("prep failed again"), 0)
	if err := <-reissued; err != nil {
		t.Fatalf("former owner's re-fetch: %v (self-deadlock would time out)", err)
	}
}

// TestCanceledWorkerDropsSession: a worker whose own context is canceled
// mid-lease (SIGTERM on its host) must drop the session — so the coordinator
// re-issues the lease as on a crash — instead of reporting MsgFailed, which
// would record a permanent variant failure from a graceful stop.
func TestCanceledWorkerDropsSession(t *testing.T) {
	doc := suiteDoc(t, "E2")
	docJSON, err := spec.Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := doc.VariantKeys()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coordSide, workerSide := net.Pipe()
	defer coordSide.Close()
	serveErr := make(chan error, 1)
	go func() {
		err := Serve(ctx, workerSide, workerSide, WorkerOptions{})
		workerSide.Close()
		serveErr <- err
	}()
	codec := NewCodec(coordSide, coordSide)
	if err := codec.Send(Msg{Type: MsgHello, Version: ProtoVersion, Spec: docJSON}); err != nil {
		t.Fatal(err)
	}
	if m, err := codec.Recv(); err != nil || m.Type != MsgReady {
		t.Fatalf("handshake: %v %v", m, err)
	}
	if err := codec.Send(Msg{Type: MsgLease, Index: 0, Key: keys[0]}); err != nil {
		t.Fatal(err)
	}
	cancel()
	// The worker may stream events or fetches before noticing the cancel; it
	// must never turn the canceled lease into a MsgFailed.
	for {
		m, err := codec.Recv()
		if err != nil {
			break // session dropped — the coordinator would re-issue
		}
		switch m.Type {
		case MsgFailed:
			t.Fatalf("canceled worker reported permanent failure: %q", m.Error)
		case MsgFetch:
			if err := codec.Send(Msg{Type: MsgState, Key: m.Key, Miss: true}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := <-serveErr; err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v, want the canceled-context error", err)
	}
}

// fakeWorker answers the handshake with a wrong variant digest — the
// signature of a worker binary whose component registry resolves different
// configurations. The coordinator must refuse to lease it anything.
func TestHandshakeSkewRejected(t *testing.T) {
	doc := suiteDoc(t, "E2")
	coordSide, workerSide := net.Pipe()
	go func() {
		codec := NewCodec(workerSide, workerSide)
		if m, err := codec.Recv(); err != nil || m.Type != MsgHello {
			return
		}
		_ = codec.Send(Msg{Type: MsgReady, Version: ProtoVersion, Count: 1, Sum: "deadbeef"})
		// Read until the coordinator hangs up; it must never send a lease.
		for {
			m, err := codec.Recv()
			if err != nil {
				return
			}
			if m.Type == MsgLease {
				panic("coordinator leased to a skewed worker")
			}
		}
	}()
	_, err := Run(context.Background(), doc, Options{Conns: []io.ReadWriteCloser{coordSide}})
	if err == nil {
		t.Fatal("skewed handshake accepted")
	}
	if !strings.Contains(err.Error(), "no live workers") {
		t.Errorf("error %v does not report worker exhaustion", err)
	}
}

// TestRunVariantOutOfRange pins the worker-side lease validation path.
func TestLeaseIndexValidation(t *testing.T) {
	doc := suiteDoc(t, "E2")
	docJSON, err := spec.Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := doc.VariantKeys()
	if err != nil {
		t.Fatal(err)
	}
	coordSide, workerSide := net.Pipe()
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- Serve(context.Background(), workerSide, workerSide, WorkerOptions{})
	}()
	codec := NewCodec(coordSide, coordSide)
	if err := codec.Send(Msg{Type: MsgHello, Version: ProtoVersion, Spec: docJSON}); err != nil {
		t.Fatal(err)
	}
	if m, err := codec.Recv(); err != nil || m.Type != MsgReady {
		t.Fatalf("handshake: %v %v", m, err)
	}
	// A lease whose key does not match the worker's own resolution of that
	// grid position must be refused as a protocol error.
	if err := codec.Send(Msg{Type: MsgLease, Index: 0, Key: keys[0] + "-skew"}); err != nil {
		t.Fatal(err)
	}
	err = <-serveErr
	var pe *ProtocolError
	if !errors.As(err, &pe) || !strings.Contains(err.Error(), "key mismatch") {
		t.Fatalf("worker accepted a skewed lease: %v", err)
	}
	coordSide.Close()
}

// TestStoreRowsDistributedBitIdentical pins the persistence acceptance bar:
// the rows a result-store sink captures from a distributed 4-worker run must
// be bit-identical — same encoded segment bytes — to the rows it captures
// from the sequential runner for the same document. The sink only listens to
// the terminal event stream, so this holds exactly when the coordinator's
// merged events reproduce the sequential runner's.
func TestStoreRowsDistributedBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full small-scale experiments")
	}
	doc := suiteDoc(t, "E2")

	seqSink, err := resultstore.NewSink(nil, doc, "pin")
	if err != nil {
		t.Fatal(err)
	}
	def, err := experiment.FromSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := experiment.New(experiment.Options{Workers: 1, Observer: seqSink}).Run(context.Background(), def); err != nil {
		t.Fatal(err)
	}

	distSink, err := resultstore.NewSink(nil, doc, "pin")
	if err != nil {
		t.Fatal(err)
	}
	conns, wg := startWorkers(t, 4, nil)
	if _, err := Run(context.Background(), doc, Options{Conns: conns, Observer: distSink}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	seqRows, distRows := seqSink.Rows(), distSink.Rows()
	if len(seqRows) == 0 || len(seqRows) != len(distRows) {
		t.Fatalf("row counts: sequential %d, distributed %d", len(seqRows), len(distRows))
	}
	seqSeg := resultstore.EncodeSegment(seqRows)
	distSeg := resultstore.EncodeSegment(distRows)
	if !bytes.Equal(seqSeg, distSeg) {
		t.Fatalf("persisted rows diverge between sequential and distributed runs:\n--- sequential\n%#v\n--- distributed\n%#v", seqRows, distRows)
	}
}
