package fabric

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os/exec"
	"sync"
	"time"

	"eagletree/internal/experiment"
	"eagletree/internal/sim"
	"eagletree/internal/snapshot"
	"eagletree/internal/spec"
)

// Options configures a distributed sweep.
type Options struct {
	// Workers is how many local worker subprocesses to launch with Command.
	Workers int
	// Command is the argv launching one worker subprocess speaking the
	// stdio transport (the CLI passes the running binary's own
	// `worker -serve stdio`). Required when Workers > 0.
	Command []string
	// Connect lists TCP addresses of already-running workers
	// (`eagletree worker -listen`); each contributes one session alongside
	// the subprocesses.
	Connect []string
	// Conns supplies pre-established transports (tests, custom fabrics).
	Conns []io.ReadWriteCloser
	// Cache is the coordinator's content-addressed state store; nil means a
	// private in-memory cache for this sweep.
	Cache *experiment.StateCache
	// Observer receives the merged event stream: queue admission up front,
	// workers' live prepare provenance, one terminal event per variant, one
	// EventExperimentDone. Calls are serialized.
	Observer experiment.Observer
	// Logf, when non-nil, receives coordinator progress lines: lease
	// grants, worker deaths and re-issues, straggler warnings, per-worker
	// wall-clock accounting.
	Logf func(format string, args ...any)
	// SeriesBucket, when positive, overrides the document's completion
	// time-series bucket on every worker (the CLI's -timeline flag).
	SeriesBucket sim.Duration
	// WorkerStderr receives subprocess workers' stderr; nil discards it.
	WorkerStderr io.Writer
	// StragglerFactor flags an outstanding lease as a straggler once its
	// age exceeds this multiple of the mean completed variant wall clock;
	// 0 means the default of 4.
	StragglerFactor float64
}

// Run executes a spec document's variant grid across worker processes and
// merges the rows back by grid position. The merged Results are byte-for-byte
// identical to a sequential run of the same document: every variant executes
// in a fully isolated stack on some worker, and assembly is by index, exactly
// as the in-process Runner assembles. Workers that crash mid-lease lose only
// that lease — it is re-issued to a surviving worker; completed rows stand.
func Run(ctx context.Context, doc spec.Experiment, opts Options) (experiment.Results, error) {
	res := experiment.Results{Name: doc.Name}
	if err := doc.Validate(); err != nil {
		return res, err
	}
	keys, err := doc.VariantKeys()
	if err != nil {
		return res, err
	}
	variants, err := doc.ExpandVariants()
	if err != nil {
		return res, err
	}
	if len(variants) == 0 {
		variants = []spec.Variant{{Label: "run"}}
	}
	docJSON, err := spec.Encode(doc)
	if err != nil {
		return res, err
	}

	c := &coordinator{
		doc:      doc,
		docJSON:  docJSON,
		keys:     keys,
		labels:   make([]string, len(variants)),
		opts:     opts,
		state:    make([]leaseState, len(keys)),
		rows:     make([]experiment.Row, len(keys)),
		errs:     make([]error, len(keys)),
		started:  make([]time.Time, len(keys)),
		flagged:  make([]bool, len(keys)),
		builds:   make(map[string]*buildState),
		cache:    opts.Cache,
		begun:    time.Now(), //lint:wallclock sweep wall-time telemetry
		deadline: opts.StragglerFactor,
	}
	for i, v := range variants {
		c.labels[i] = v.Label
	}
	if c.cache == nil {
		c.cache = experiment.NewStateCache("")
	}
	if c.deadline <= 0 {
		c.deadline = 4
	}
	c.cond = sync.NewCond(&c.mu)
	if c.opts.Logf == nil {
		c.opts.Logf = func(string, ...any) {}
	}

	for i := range keys {
		c.emit(experiment.Event{Kind: experiment.EventVariantQueued, Experiment: doc.Name,
			Variant: c.labels[i], Index: i, Variants: len(keys)})
	}

	conns, cleanup, err := c.dialWorkers(ctx)
	if err != nil {
		// A partial dial failure has already started subprocesses; close and
		// reap them instead of leaking workers blocked on their stdin.
		cleanup()
		return res, err
	}
	defer cleanup()
	if len(conns) == 0 {
		return res, fmt.Errorf("%w: set Workers (with Command), Connect or Conns", ErrNoWorkers)
	}

	// A canceled context unblocks every session: claims stop, and closing
	// the transports kicks workers out of blocking reads.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
			cleanup()
		case <-stop:
		}
	}()

	var wg sync.WaitGroup
	workerErrs := make([]error, len(conns))
	for i, conn := range conns {
		wg.Add(1)
		go func(id int, conn io.ReadWriteCloser) {
			defer wg.Done()
			workerErrs[id] = c.serve(ctx, id, conn)
			if workerErrs[id] != nil {
				c.opts.Logf("fabric: worker %d: %v", id, workerErrs[id])
			}
			c.mu.Lock()
			c.cond.Broadcast() // a dead worker's lease may need re-issuing
			c.mu.Unlock()
		}(i, conn)
	}
	wg.Wait()

	c.accounting(len(conns))
	return c.assemble(ctx, workerErrs)
}

// leaseState tracks one variant through the sweep.
type leaseState int8

const (
	leasePending leaseState = iota
	leaseOut
	leaseDone
)

// coordinator is one Run invocation's shared state.
type coordinator struct {
	doc     spec.Experiment
	docJSON []byte
	keys    []string
	labels  []string
	opts    Options
	cache   *experiment.StateCache
	begun   time.Time

	mu      sync.Mutex
	cond    *sync.Cond
	state   []leaseState
	rows    []experiment.Row
	errs    []error
	started []time.Time // lease grant time, per variant
	flagged []bool      // straggler already reported

	// deadline is the resolved straggler factor.
	deadline float64

	// Per-worker accounting.
	busy   []time.Duration
	leases []int

	// builds singleflights preparation across workers: the first worker to
	// miss a key owns its build; others wait for the owner's put.
	builds map[string]*buildState

	// wallSum/wallN feed the straggler threshold.
	wallSum time.Duration
	wallN   int

	emitMu sync.Mutex
}

// buildState is one delegated preparation build in flight.
type buildState struct {
	owner int
	ready chan struct{} // closed on put or owner death
	data  []byte        // nil after close means: owner died, retry
}

// dialWorkers establishes every transport: Conns as given, subprocesses via
// Command, TCP sessions via Connect.
func (c *coordinator) dialWorkers(ctx context.Context) ([]io.ReadWriteCloser, func(), error) {
	var conns []io.ReadWriteCloser
	var procs []*exec.Cmd
	// Once-guarded: the context-cancel goroutine and Run's deferred call may
	// both clean up, and exec.Cmd.Wait is not safe to call concurrently.
	var once sync.Once
	cleanup := func() {
		once.Do(func() {
			for _, conn := range conns {
				conn.Close()
			}
			for _, p := range procs {
				// CommandContext kills on context cancel; reap regardless.
				_ = p.Wait()
			}
		})
	}
	conns = append(conns, c.opts.Conns...)
	if c.opts.Workers > 0 && len(c.opts.Command) == 0 {
		return nil, cleanup, errors.New("fabric: Workers set without a worker Command")
	}
	for i := 0; i < c.opts.Workers; i++ {
		cmd := exec.CommandContext(ctx, c.opts.Command[0], c.opts.Command[1:]...)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, cleanup, fmt.Errorf("fabric: worker %d: %w", i, err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, cleanup, fmt.Errorf("fabric: worker %d: %w", i, err)
		}
		cmd.Stderr = c.opts.WorkerStderr
		if err := cmd.Start(); err != nil {
			return nil, cleanup, fmt.Errorf("fabric: starting worker %d: %w", i, err)
		}
		procs = append(procs, cmd)
		conns = append(conns, &procConn{in: stdin, out: stdout})
	}
	for _, addr := range c.opts.Connect {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, cleanup, fmt.Errorf("fabric: connecting %s: %w", addr, err)
		}
		conns = append(conns, conn)
	}
	return conns, cleanup, nil
}

// procConn adapts a subprocess's stdin/stdout pipe pair to one transport.
type procConn struct {
	in  io.WriteCloser
	out io.ReadCloser
}

func (p *procConn) Read(b []byte) (int, error)  { return p.out.Read(b) }
func (p *procConn) Write(b []byte) (int, error) { return p.in.Write(b) }
func (p *procConn) Close() error {
	p.in.Close()
	return p.out.Close()
}

// serve drives one worker session: handshake, then lease/collect until the
// grid is exhausted. Transport errors release the worker's lease for
// re-issue and end only this session.
func (c *coordinator) serve(ctx context.Context, id int, conn io.ReadWriteCloser) error {
	codec := NewCodec(conn, conn)
	if err := codec.Send(Msg{Type: MsgHello, Version: ProtoVersion,
		Spec: c.docJSON, SeriesBucket: int64(c.opts.SeriesBucket)}); err != nil {
		return err
	}
	ready, err := codec.Recv()
	if err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	if ready.Type != MsgReady {
		return &ProtocolError{Reason: fmt.Sprintf("expected ready, got %q", ready.Type)}
	}
	if ready.Version != ProtoVersion {
		return &ProtocolError{Reason: fmt.Sprintf("worker speaks protocol %d, want %d", ready.Version, ProtoVersion)}
	}
	if ready.Count != len(c.keys) || ready.Sum != KeyDigest(c.keys) {
		return &ProtocolError{Reason: fmt.Sprintf(
			"worker resolves %d variants (digest %s), coordinator %d (digest %s) — mismatched binaries?",
			ready.Count, ready.Sum, len(c.keys), KeyDigest(c.keys))}
	}

	for {
		idx, ok := c.claim(ctx, id)
		if !ok {
			_ = codec.Send(Msg{Type: MsgShutdown, Error: "sweep complete"})
			return nil
		}
		c.opts.Logf("fabric: worker %d ← variant %d (%s)", id, idx, c.labels[idx])
		if err := codec.Send(Msg{Type: MsgLease, Index: idx, Key: c.keys[idx]}); err != nil {
			c.release(idx, id)
			return err
		}
		if err := c.collect(ctx, id, idx, codec); err != nil {
			c.release(idx, id)
			return err
		}
	}
}

// claim hands out the lowest pending variant index, waiting while every
// remaining variant is leased to another worker (so a crashed worker's
// re-issued lease always finds a taker). It returns false when the grid is
// done or the context canceled.
func (c *coordinator) claim(ctx context.Context, id int) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return 0, false
		}
		outstanding := false
		for i, st := range c.state {
			switch st {
			case leasePending:
				c.state[i] = leaseOut
				c.started[i] = time.Now() //lint:wallclock straggler detection telemetry
				c.flagged[i] = false
				return i, true
			case leaseOut:
				outstanding = true
			}
		}
		if !outstanding {
			return 0, false
		}
		c.cond.Wait()
	}
}

// release returns a lease to the pending pool (worker death) and fails over
// any preparation builds the dead worker owned.
func (c *coordinator) release(idx, worker int) {
	c.mu.Lock()
	if c.state[idx] == leaseOut {
		c.state[idx] = leasePending
		c.opts.Logf("fabric: re-issuing variant %d (%s) after worker %d died", idx, c.labels[idx], worker)
	}
	c.failoverBuildsLocked(worker)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// failoverBuildsLocked abandons every preparation build the worker still
// owns. A failed or canceled local build never publishes a put, so without
// this the builds entry would outlive the lease: waiters would block forever
// on ready, and the owner itself would self-deadlock re-fetching the key in a
// later lease. Waiters see a closed channel with no data and retry, racing to
// become the next owner. Called with c.mu held, on lease completion and on
// worker death.
func (c *coordinator) failoverBuildsLocked(worker int) {
	for key, b := range c.builds {
		if b.owner == worker {
			close(b.ready)
			delete(c.builds, key)
		}
	}
}

// collect reads one lease's message stream — events, state fetches, puts —
// until its result or failure arrives.
func (c *coordinator) collect(ctx context.Context, id, idx int, codec *Codec) error {
	for {
		m, err := codec.Recv()
		if err != nil {
			return err
		}
		switch m.Type {
		case MsgEvent:
			c.forwardEvent(m)
		case MsgFetch:
			data, err := c.serveFetch(ctx, id, m.Key)
			if err != nil {
				return err
			}
			reply := Msg{Type: MsgState, Key: m.Key, Miss: data == nil, Data: data}
			if err := codec.Send(reply); err != nil {
				return err
			}
		case MsgPut:
			c.handlePut(id, m)
		case MsgResult:
			if m.Index != idx || m.Row == nil {
				return &ProtocolError{Reason: fmt.Sprintf("result for variant %d during lease %d", m.Index, idx)}
			}
			c.complete(id, idx, *m.Row, nil, time.Duration(m.Wall))
			return nil
		case MsgFailed:
			if m.Index != idx {
				return &ProtocolError{Reason: fmt.Sprintf("failure for variant %d during lease %d", m.Index, idx)}
			}
			ferr := error(&workerVariantError{experiment: c.doc.Name,
				variant: c.labels[idx], index: idx, text: m.Error, panicked: m.Panic})
			c.complete(id, idx, experiment.Row{}, ferr, time.Duration(m.Wall))
			return nil
		default:
			return &ProtocolError{Reason: fmt.Sprintf("unexpected %q from worker", m.Type)}
		}
	}
}

// serveFetch answers a worker's state fetch: a cache hit serves the bytes; a
// miss delegates the build to the asking worker, singleflighted — workers
// asking for a key already being built wait for the owner's put, and an
// owner that dies mid-build hands ownership to the first retrying waiter.
func (c *coordinator) serveFetch(ctx context.Context, worker int, key string) ([]byte, error) {
	for {
		if data, ok := c.cache.Peek(key); ok {
			return data, nil
		}
		c.mu.Lock()
		b, inFlight := c.builds[key]
		if !inFlight {
			c.builds[key] = &buildState{owner: worker, ready: make(chan struct{})}
			c.mu.Unlock()
			c.opts.Logf("fabric: delegating preparation build to worker %d", worker)
			return nil, nil // miss: the worker builds and publishes
		}
		c.mu.Unlock()
		select {
		case <-b.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if b.data != nil {
			return b.data, nil
		}
		// The owner died before publishing; loop and contend for ownership.
	}
}

// handlePut admits a worker-built state to the cache and releases any
// workers waiting on its build. An unverifiable payload is dropped and the
// build failed over, exactly like an owner death.
func (c *coordinator) handlePut(worker int, m Msg) {
	verified := snapshot.Verify(m.Data) == nil
	if verified {
		c.cache.Put(m.Key, m.Data)
	} else {
		c.opts.Logf("fabric: dropping unverifiable state from worker %d", worker)
	}
	c.mu.Lock()
	if b, ok := c.builds[m.Key]; ok {
		if verified {
			b.data = m.Data
		}
		close(b.ready)
		delete(c.builds, m.Key)
	}
	c.mu.Unlock()
}

// complete records a finished lease and its accounting, and emits the
// variant's terminal event.
func (c *coordinator) complete(worker, idx int, row experiment.Row, err error, wall time.Duration) {
	c.mu.Lock()
	c.state[idx] = leaseDone
	c.rows[idx] = row
	c.errs[idx] = err
	for len(c.busy) <= worker {
		c.busy = append(c.busy, 0)
		c.leases = append(c.leases, 0)
	}
	c.busy[worker] += wall
	c.leases[worker]++
	c.wallSum += wall
	c.wallN++
	// The lease is over: any build this worker still owns will never be
	// published (its put would have arrived before the result on the ordered
	// stream), so hand ownership to whoever asks next.
	c.failoverBuildsLocked(worker)
	c.checkStragglersLocked()
	c.cond.Broadcast()
	c.mu.Unlock()

	ev := experiment.Event{Kind: experiment.EventVariantDone, Experiment: c.doc.Name,
		Variant: c.labels[idx], Index: idx, Variants: len(c.keys), Wall: wall, Err: err}
	if err != nil {
		var wve *workerVariantError
		if errors.As(err, &wve) && wve.panicked {
			ev.Kind = experiment.EventVariantFailed
		}
	} else {
		r := row
		ev.Row = &r
	}
	c.emit(ev)
}

// checkStragglersLocked flags outstanding leases that have outlived the mean
// completed wall clock by the straggler factor — the sweeps' long tail made
// visible while it is still running. Called with c.mu held.
func (c *coordinator) checkStragglersLocked() {
	if c.wallN == 0 {
		return
	}
	mean := c.wallSum / time.Duration(c.wallN)
	if mean <= 0 {
		return
	}
	limit := time.Duration(float64(mean) * c.deadline)
	for i, st := range c.state {
		if st != leaseOut || c.flagged[i] {
			continue
		}
		if age := time.Since(c.started[i]); age > limit {
			c.flagged[i] = true
			c.opts.Logf("fabric: straggler: variant %d (%s) running %v, mean is %v",
				i, c.labels[i], age.Round(time.Millisecond), mean.Round(time.Millisecond))
		}
	}
}

// forwardEvent relays a worker's live event stream. Queue admission and
// terminal variant events are synthesized by the coordinator itself, so only
// the in-flight observations — prepare provenance — pass through.
func (c *coordinator) forwardEvent(m Msg) {
	switch m.Kind {
	case experiment.EventPrepareHit, experiment.EventPrepareMiss:
	default:
		return
	}
	c.emit(experiment.Event{Kind: m.Kind, Experiment: c.doc.Name, Variant: m.Variant,
		Index: m.Index, Variants: len(c.keys), CacheKey: m.Key, Wall: time.Duration(m.Wall)})
}

// emit delivers one event to the observer, serialized across sessions.
func (c *coordinator) emit(ev experiment.Event) {
	if c.opts.Observer == nil {
		return
	}
	c.emitMu.Lock()
	defer c.emitMu.Unlock()
	c.opts.Observer.OnEvent(ev)
}

// accounting logs each worker's share of the sweep.
func (c *coordinator) accounting(workers int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for w := 0; w < workers; w++ {
		var busy time.Duration
		var n int
		if w < len(c.busy) {
			busy, n = c.busy[w], c.leases[w]
		}
		c.opts.Logf("fabric: worker %d: %d variants, busy %v", w, n, busy.Round(time.Millisecond))
	}
}

// assemble merges rows by grid position with the in-process Runner's exact
// semantics: rows in definition order up to the first variant that produced
// none; a cancellation reports the completed prefix under a typed
// *CanceledError, a failure reports the earliest failed variant's error.
func (c *coordinator) assemble(ctx context.Context, workerErrs []error) (experiment.Results, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res := experiment.Results{Name: c.doc.Name}
	var err error
	for i := range c.keys {
		if c.state[i] != leaseDone {
			if ctx.Err() != nil {
				cause := context.Cause(ctx)
				err = &experiment.CanceledError{Experiment: c.doc.Name,
					Completed: len(res.Rows), Total: len(c.keys), Cause: cause}
			} else {
				err = fmt.Errorf("fabric: variant %d (%s) unfinished: no live workers: %w",
					i, c.labels[i], firstErr(workerErrs))
			}
			break
		}
		if c.errs[i] != nil {
			err = c.errs[i]
			break
		}
		res.Rows = append(res.Rows, c.rows[i])
	}
	c.emit(experiment.Event{Kind: experiment.EventExperimentDone, Experiment: c.doc.Name,
		Index: -1, Variants: len(c.keys), Wall: time.Since(c.begun), Err: err})
	return res, err
}

func firstErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return errors.New("workers exited early")
}

// workerVariantError is a variant failure reported over the wire. The typed
// error chain does not cross process boundaries, so the worker's rendered
// message and its panic/error discrimination are what survive.
type workerVariantError struct {
	experiment, variant, text string
	index                     int
	panicked                  bool
}

func (e *workerVariantError) Error() string { return e.text }
