// Package fabric implements the distributed sweep fabric: a coordinator that
// shards a spec document's variant grid across worker processes and merges
// their rows back deterministically.
//
// The wire protocol is line-oriented NDJSON — one JSON message per line —
// carried over any byte stream: a worker subprocess's stdin/stdout, or a TCP
// connection to `eagletree worker -listen`. The coordinator hands out
// (canonical-config-key, variant-index) leases one at a time per worker;
// workers execute each lease through the experiment Runner's lease-granular
// entry, stream its lifecycle events back live, and return the finished Row.
// Rows merge by grid position, so the assembled Results are byte-identical to
// a sequential sweep regardless of worker count, lease order, or mid-run
// worker crashes (a lost lease is re-issued; completed rows stand).
//
// Device preparation stays content-addressed: a worker first consults the
// coordinator's StateCache by canonical key, and only encoded snapshots ever
// cross the wire. A miss delegates the build to the requesting worker, whose
// published result then serves every other worker waiting on the same key.
//
// Truncated, corrupted or out-of-protocol input surfaces as this package's
// typed errors — never a panic, matching the snapshot codec's fuzz contract.
//
//eagletree:typederrors
package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"eagletree/internal/experiment"
)

// ProtoVersion is the wire protocol version; both ends must agree exactly.
// The handshake rejects a mismatch before any lease is granted.
const ProtoVersion = 1

// Errors reported by the codec. Wrapped with detail; match with errors.Is.
var (
	// ErrTruncated marks a message cut off mid-value — a dying peer.
	ErrTruncated = errors.New("fabric: truncated message")
	// ErrMalformed marks bytes that do not parse as a protocol message.
	ErrMalformed = errors.New("fabric: malformed message")
)

// ErrNoWorkers reports a Run with no transport to lease variants over.
var ErrNoWorkers = errors.New("fabric: no workers")

// ProtocolError reports a well-formed message that violates the protocol:
// an unknown message type, a version mismatch, a lease for a variant the
// worker computed a different canonical key for.
type ProtocolError struct {
	Reason string
}

func (e *ProtocolError) Error() string { return "fabric: protocol error: " + e.Reason }

// Message types. The coordinator sends hello, lease, state and shutdown; a
// worker sends ready, event, fetch, put, result and failed.
const (
	// MsgHello opens a session: protocol version, the spec document the
	// sweep runs, and an optional series-bucket override.
	MsgHello = "hello"
	// MsgReady answers hello: the worker compiled the document and reports
	// its variant count and canonical-key digest for skew detection.
	MsgReady = "ready"
	// MsgLease grants one variant: its grid index and canonical key.
	MsgLease = "lease"
	// MsgEvent streams one runner lifecycle event back to the coordinator.
	MsgEvent = "event"
	// MsgResult returns a finished variant's row.
	MsgResult = "result"
	// MsgFailed returns a variant whose execution errored or panicked.
	MsgFailed = "failed"
	// MsgFetch asks the coordinator's state cache for a prepared snapshot.
	MsgFetch = "fetch"
	// MsgState answers fetch: the encoded snapshot, or a miss delegating
	// the build to the asking worker.
	MsgState = "state"
	// MsgPut publishes a locally built snapshot to the coordinator's cache.
	MsgPut = "put"
	// MsgShutdown ends the session; the worker exits its serve loop.
	MsgShutdown = "shutdown"
)

// Msg is the wire envelope: one NDJSON line per message, the unused fields
// of each type left empty. A single envelope keeps the codec trivially
// fuzzable — any well-formed JSON object decodes, and validation happens at
// the protocol layer where the reply can say what was wrong.
type Msg struct {
	Type string `json:"type"`

	// Handshake (hello/ready).
	Version      int             `json:"version,omitempty"`
	Spec         json.RawMessage `json:"spec,omitempty"`
	SeriesBucket int64           `json:"series_bucket,omitempty"` // ns
	Count        int             `json:"count,omitempty"`
	Sum          string          `json:"sum,omitempty"`

	// Lease identity (lease/result/failed/event).
	Index int    `json:"index"`
	Key   string `json:"key,omitempty"` // also fetch/state/put

	// Event payload. Kind is never omitempty: EventVariantQueued is the
	// zero kind and must survive the round trip.
	Kind     experiment.EventKind `json:"kind"`
	Variant  string               `json:"variant,omitempty"`
	Variants int                  `json:"variants,omitempty"`
	Wall     int64                `json:"wall,omitempty"` // ns; also result

	// Failure payload (failed; also event error text).
	Error string `json:"error,omitempty"`
	Panic bool   `json:"panic,omitempty"`

	// Result payload.
	Row *experiment.Row `json:"row,omitempty"`

	// State transfer (state/put). JSON base64-encodes the snapshot bytes.
	Miss bool   `json:"miss,omitempty"`
	Data []byte `json:"data,omitempty"`
}

// knownTypes gates Recv: a type outside the protocol is a ProtocolError.
var knownTypes = map[string]bool{
	MsgHello: true, MsgReady: true, MsgLease: true, MsgEvent: true,
	MsgResult: true, MsgFailed: true, MsgFetch: true, MsgState: true,
	MsgPut: true, MsgShutdown: true,
}

// Codec frames Msg values as NDJSON over a byte stream. Sends are serialized
// by an internal mutex so a worker's variant goroutine and its reply paths
// can share one connection; Recv is single-consumer.
type Codec struct {
	dec *json.Decoder
	wmu sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

// NewCodec wraps a read and a write stream (often the same connection).
func NewCodec(r io.Reader, w io.Writer) *Codec {
	return &Codec{dec: json.NewDecoder(r), w: w, enc: json.NewEncoder(w)}
}

// Send writes one message as a single NDJSON line.
func (c *Codec) Send(m Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.enc.Encode(&m); err != nil {
		return fmt.Errorf("fabric: send %s: %w", m.Type, err)
	}
	return nil
}

// Recv reads the next message. A clean end of stream is io.EOF; a stream
// ending mid-message is ErrTruncated; bytes that do not parse are
// ErrMalformed; a parsed message of unknown type is a *ProtocolError. No
// input can make Recv panic — the fuzz tests pin that contract.
func (c *Codec) Recv() (Msg, error) {
	var m Msg
	if err := c.dec.Decode(&m); err != nil {
		switch {
		case errors.Is(err, io.EOF):
			return m, io.EOF
		case errors.Is(err, io.ErrUnexpectedEOF):
			return m, fmt.Errorf("%w: %v", ErrTruncated, err)
		default:
			return m, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
	}
	if !knownTypes[m.Type] {
		return m, &ProtocolError{Reason: fmt.Sprintf("unknown message type %q", m.Type)}
	}
	return m, nil
}
