package fabric

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
)

// BenchmarkDistributedSweepE2 measures the fabric's end-to-end budget for one
// distributed sweep: handshake, every lease round-trip, the delegated
// preparation build with its put/fetch state transfers, and the ordered
// merge. One in-process worker over a synchronous pipe keeps the measurement
// deterministic (no scheduling-dependent lease placement), so it prices the
// coordination overhead itself — the quantity the benchgate budget guards —
// not parallel speedup.
func BenchmarkDistributedSweepE2(b *testing.B) {
	doc := suiteDoc(b, "E2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		coordSide, workerSide := net.Pipe()
		done := make(chan error, 1)
		go func() {
			done <- Serve(context.Background(), workerSide, workerSide, WorkerOptions{})
		}()
		if _, err := Run(context.Background(), doc, Options{Conns: []io.ReadWriteCloser{coordSide}}); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil && !errors.Is(err, io.ErrClosedPipe) {
			b.Fatal(err)
		}
		workerSide.Close()
	}
}
