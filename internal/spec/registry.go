// Package spec makes EagleTree experiments data instead of code: it defines
// a named registry of every pluggable component in the stack (SSD and OS
// scheduling policies, write allocators, GC victim policies, wear-leveling
// modes, hot/cold detectors, mapping schemes, flash timings and workload
// thread types), a serializable mirror of core.Config built from named
// component references, and a versioned JSON codec for whole experiments —
// base configuration, device preparation, workload graph and variant grid.
//
// Two consequences follow. First, new points in the design space need a spec
// file, not a recompile: the CLIs load and run documents that reference
// components by name. Second, configurations gain a canonical encoding —
// every registered component can be described back into its name and typed
// parameters — which the experiment layer uses as the snapshot-cache key for
// prepared device states. Unknown components are a typed error there, never
// a silent key collision.
//
//eagletree:canonical
//eagletree:typederrors
package spec

import (
	"fmt"
	"sort"
	"sync"
)

// Kind partitions the registry by the slot a component plugs into.
type Kind string

const (
	// KindPolicy is the SSD controller's IO scheduling policy (sched.Policy).
	KindPolicy Kind = "policy"
	// KindAllocator is the write allocator (sched.Allocator).
	KindAllocator Kind = "alloc"
	// KindGCPolicy is the GC victim policy (gc.VictimPolicy).
	KindGCPolicy Kind = "gc"
	// KindWL is the wear-leveling mode (wl.Config preset).
	KindWL Kind = "wl"
	// KindDetector is the hot/cold detector (hotcold.Detector).
	KindDetector Kind = "detector"
	// KindMapping is the FTL mapping scheme.
	KindMapping Kind = "mapping"
	// KindTiming is the flash timing set.
	KindTiming Kind = "timing"
	// KindFault is the runtime fault-injection model (fault.Model).
	KindFault Kind = "fault"
	// KindOSPolicy is the OS scheduler policy (osched.Policy).
	KindOSPolicy Kind = "os"
	// KindThread is a workload thread type (workload.Thread).
	KindThread Kind = "thread"
)

// ParamType is the declared type of one component parameter.
type ParamType int

const (
	// TInt is a plain integer.
	TInt ParamType = iota
	// TExpr is an integer that may also be written as an expression string
	// over the workload environment (n, ppb, qd, f, i).
	TExpr
	// TFloat is a floating-point number.
	TFloat
	// TBool is a boolean.
	TBool
	// TString is an enumerated or free string.
	TString
	// TDuration is a virtual-time duration, written as "2ms"-style strings
	// (or a plain number of nanoseconds).
	TDuration
	// TInts is a list of integers.
	TInts
	// TComponent is a nested component reference of the declared Kind.
	TComponent
)

func (t ParamType) String() string {
	switch t {
	case TInt:
		return "int"
	case TExpr:
		return "int|expr"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	case TString:
		return "string"
	case TDuration:
		return "duration"
	case TInts:
		return "[]int"
	case TComponent:
		return "component"
	default:
		return fmt.Sprintf("ParamType(%d)", int(t))
	}
}

// Param declares one typed parameter of a component.
type Param struct {
	// Name is the JSON field name (lower snake case).
	Name string
	// Type is the accepted value type.
	Type ParamType
	// Of is the nested component kind when Type is TComponent.
	Of Kind
	// Doc is a one-line description for generated documentation.
	Doc string
}

// Component is one registered, named factory: it can build its component
// from typed parameters and describe a live instance back into them. The
// pair is what makes configurations serializable and canonically keyable.
type Component struct {
	Kind Kind
	Name string
	// Doc is a one-line description for -list style output.
	Doc string
	// Params declares the accepted parameters; any other field in a
	// reference is an *UnknownFieldError.
	Params []Param
	// Make builds the component. Read parameters through the typed Params
	// accessors; accumulated access errors fail the build.
	Make func(p *Params) (any, error)
	// Describe reverse-maps a live value into its parameter set, reporting
	// ok=false when the value is not this component's type. Components that
	// cannot appear inside a core.Config (workload threads) may leave it
	// nil.
	Describe func(v any) (map[string]any, bool)
}

func (c *Component) param(name string) (Param, bool) {
	for _, p := range c.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// UnknownComponentError reports a reference to a name the registry does not
// hold for that kind.
type UnknownComponentError struct {
	Kind Kind
	Name string
}

func (e *UnknownComponentError) Error() string {
	return fmt.Sprintf("spec: unknown %s component %q (have %v)", e.Kind, e.Name, Names(e.Kind))
}

// UnknownFieldError reports a parameter (or document field) no declaration
// accepts.
type UnknownFieldError struct {
	// Context names where the field appeared ("policy \"priority\"",
	// "document").
	Context string
	Field   string
}

func (e *UnknownFieldError) Error() string {
	return fmt.Sprintf("spec: %s: unknown field %q", e.Context, e.Field)
}

// ParamError reports a parameter present but unusable (wrong type, bad
// expression, out-of-range value).
type ParamError struct {
	Context string
	Param   string
	Err     error
}

func (e *ParamError) Error() string {
	return fmt.Sprintf("spec: %s: parameter %q: %v", e.Context, e.Param, e.Err)
}

func (e *ParamError) Unwrap() error { return e.Err }

var (
	regMu    sync.RWMutex
	registry = map[Kind]map[string]*Component{}
	regOrder = map[Kind][]string{}
)

// Register adds a component to the registry. Registering a (kind, name)
// twice panics: names are the API surface of spec files and must be unique.
// Packages register their components from init, so anything importing spec
// sees the full catalogue.
func Register(c Component) {
	if c.Name == "" || c.Kind == "" {
		panic("spec: Register needs a kind and a name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	byName := registry[c.Kind]
	if byName == nil {
		byName = map[string]*Component{}
		registry[c.Kind] = byName
	}
	if _, dup := byName[c.Name]; dup {
		panic(fmt.Sprintf("spec: duplicate %s component %q", c.Kind, c.Name))
	}
	cc := c
	byName[c.Name] = &cc
	regOrder[c.Kind] = append(regOrder[c.Kind], c.Name)
}

// Lookup returns the registered component, or an *UnknownComponentError.
func Lookup(kind Kind, name string) (*Component, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	c := registry[kind][name]
	if c == nil {
		return nil, &UnknownComponentError{Kind: kind, Name: name}
	}
	return c, nil
}

// Names returns the registered names of one kind, sorted.
func Names(kind Kind) []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := append([]string(nil), regOrder[kind]...)
	sort.Strings(out)
	return out
}

// Catalogue returns the registered components of one kind in registration
// order, for documentation generators.
func Catalogue(kind Kind) []*Component {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Component, 0, len(regOrder[kind]))
	for _, name := range regOrder[kind] {
		out = append(out, registry[kind][name])
	}
	return out
}

// Make resolves a reference into a live component: the factory is looked up
// by name, every provided parameter is checked against the declaration
// (unknown fields and type mismatches are typed errors), and the factory
// builds the value.
func Make(kind Kind, ref Ref, env Env) (any, error) {
	c, err := Lookup(kind, ref.Name)
	if err != nil {
		return nil, err
	}
	p := &Params{comp: c, vals: ref.Params, env: env}
	for _, field := range sortedKeys(ref.Params) {
		if _, ok := c.param(field); !ok {
			return nil, &UnknownFieldError{Context: p.context(), Field: field}
		}
	}
	v, err := c.Make(p)
	if err != nil {
		return nil, err
	}
	if p.err != nil {
		return nil, p.err
	}
	return v, nil
}

// ValidateRef checks a reference without building it: the name must be
// registered, every parameter declared, and every value coercible to its
// declared type. Factories with side effects (file-reading replay threads,
// trace-capturing workloads) are never invoked, which makes this the right
// gate for load-time validation.
func ValidateRef(kind Kind, ref Ref, env Env) error {
	c, err := Lookup(kind, ref.Name)
	if err != nil {
		return err
	}
	ctx := fmt.Sprintf("%s %q", c.Kind, c.Name)
	for _, field := range sortedKeys(ref.Params) {
		val := ref.Params[field]
		par, ok := c.param(field)
		if !ok {
			return &UnknownFieldError{Context: ctx, Field: field}
		}
		if err := checkValue(ctx, par, val, env); err != nil {
			return err
		}
	}
	return nil
}

func checkValue(ctx string, par Param, val any, env Env) error {
	perr := func(err error) error {
		return &ParamError{Context: ctx, Param: par.Name, Err: err}
	}
	switch par.Type {
	case TInt:
		if _, err := coerceInt(val); err != nil {
			return perr(err)
		}
	case TExpr:
		if s, ok := val.(string); ok {
			if _, err := Eval(s, env); err != nil {
				return perr(err)
			}
		} else if _, err := coerceInt(val); err != nil {
			return perr(err)
		}
	case TFloat:
		if _, err := coerceFloat(val); err != nil {
			return perr(err)
		}
	case TBool:
		if _, ok := val.(bool); !ok {
			return perr(fmt.Errorf("cannot use %T as a bool", val))
		}
	case TString:
		if _, ok := val.(string); !ok {
			return perr(fmt.Errorf("cannot use %T as a string", val))
		}
	case TDuration:
		if _, err := coerceDuration(val); err != nil {
			return perr(err)
		}
	case TInts:
		switch t := val.(type) {
		case []int, []float64:
		case []any:
			for _, e := range t {
				if _, err := coerceInt(e); err != nil {
					return perr(err)
				}
			}
		default:
			return perr(fmt.Errorf("cannot use %T as an integer list", val))
		}
	case TComponent:
		if val == nil {
			return nil
		}
		ref, err := coerceRef(val)
		if err != nil {
			return perr(err)
		}
		return ValidateRef(par.Of, ref, env)
	}
	return nil
}

// Describe reverse-maps a live component value into a reference. Every
// configurable knob of a registered component — including ones held in
// unexported state, like the multi-bloom detector's effective configuration
// — round-trips through the returned parameters; a value of an unregistered
// type is an *UnknownComponentError (with an empty name), never a lossy
// answer. That guarantee is what makes Describe safe to build cache keys on.
func Describe(kind Kind, v any) (Ref, error) {
	// Iterate over a snapshot: a component's Describe may itself call
	// Describe (the deadline policy describes its nested fallback), and a
	// recursive RLock deadlocks against any concurrently pending writer.
	for _, c := range Catalogue(kind) {
		if c.Describe == nil {
			continue
		}
		if params, ok := c.Describe(v); ok {
			return Ref{Name: c.Name, Params: params}, nil
		}
	}
	return Ref{}, &UnknownComponentError{Kind: kind, Name: fmt.Sprintf("%T", v)}
}
