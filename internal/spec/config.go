package spec

import (
	"encoding/json"
	"fmt"

	"eagletree/internal/controller"
	"eagletree/internal/core"
	"eagletree/internal/fault"
	"eagletree/internal/flash"
	"eagletree/internal/gc"
	"eagletree/internal/hotcold"
	"eagletree/internal/osched"
	"eagletree/internal/sched"
	"eagletree/internal/wl"
)

// Config is the serializable mirror of core.Config: every structural and
// behavioral knob of the stack, with pluggable components referenced by
// registered name instead of held as live Go values. A zero field means
// "the stack's default" — Resolve leaves the corresponding core.Config
// field zero and the runtime default fill-in applies, exactly as it would
// for a hand-built configuration.
//
// Runtime-only wiring (completion callbacks, trace sinks, capture hooks) has
// no mirror here: a spec describes a configuration, not a live process.
type Config struct {
	Geometry      Geometry        `json:"geometry"`
	Timing        Ref             `json:"timing,omitempty"`
	Features      Features        `json:"features,omitempty"`
	Mapping       Ref             `json:"mapping,omitempty"`
	Overprovision float64         `json:"overprovision,omitempty"`
	GC            GCSpec          `json:"gc,omitempty"`
	WL            Ref             `json:"wl,omitempty"`
	Policy        Ref             `json:"policy,omitempty"`
	Alloc         Ref             `json:"alloc,omitempty"`
	Detector      Ref             `json:"detector,omitempty"`
	OpenInterface bool            `json:"open_interface,omitempty"`
	WriteBuffer   WriteBufferSpec `json:"write_buffer,omitempty"`
	RAM           RAMSpec         `json:"ram,omitempty"`
	BadBlocks     BadBlockSpec    `json:"bad_blocks,omitempty"`
	// Fault is a pointer so the no-fault default serializes as an absent
	// field: existing specs and cache keys stay byte-stable.
	Fault        *Ref     `json:"fault,omitempty"`
	OS           OSSpec   `json:"os,omitempty"`
	Seed         uint64   `json:"seed,omitempty"`
	SeriesBucket Duration `json:"series_bucket,omitempty"`
	TraceCap     int      `json:"trace_cap,omitempty"`
	LockBus      bool     `json:"lock_bus,omitempty"`
}

// Geometry mirrors flash.Geometry.
type Geometry struct {
	Channels       int `json:"channels"`
	LUNsPerChannel int `json:"luns_per_channel"`
	BlocksPerLUN   int `json:"blocks_per_lun"`
	PagesPerBlock  int `json:"pages_per_block"`
	PageSize       int `json:"page_size"`
}

// Features mirrors flash.Features.
type Features struct {
	Copyback     bool `json:"copyback,omitempty"`
	Interleaving bool `json:"interleaving,omitempty"`
}

// GCSpec groups garbage-collection knobs: the victim policy plus the
// controller-level greediness and copyback flags.
type GCSpec struct {
	Policy     Ref  `json:"policy,omitempty"`
	Greediness int  `json:"greediness,omitempty"`
	Copyback   bool `json:"copyback,omitempty"`
}

// WriteBufferSpec mirrors the battery-backed RAM write buffer knobs.
type WriteBufferSpec struct {
	Pages   int      `json:"pages,omitempty"`
	Latency Duration `json:"latency,omitempty"`
}

// RAMSpec mirrors the controller memory budgets.
type RAMSpec struct {
	Bytes     int64 `json:"bytes,omitempty"`
	SafeBytes int64 `json:"safe_bytes,omitempty"`
}

// BadBlockSpec mirrors the factory bad-block model.
type BadBlockSpec struct {
	Fraction float64 `json:"fraction,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
}

// OSSpec mirrors osched.Config.
type OSSpec struct {
	Policy     Ref `json:"policy,omitempty"`
	QueueDepth int `json:"queue_depth,omitempty"`
}

// Resolve builds the live core.Config: every component reference is
// constructed through the registry (fresh instances on every call — policies
// and detectors are stateful, so resolved configurations are never shared).
// Unset references stay nil and pick up the stack's runtime defaults.
func (c Config) Resolve() (core.Config, error) {
	var cfg core.Config
	cfg.Seed = c.Seed
	cfg.SeriesBucket = c.SeriesBucket.D()
	cfg.TraceCap = c.TraceCap
	cfg.LockBus = c.LockBus

	ctl := &cfg.Controller
	ctl.Geometry = flash.Geometry{
		Channels:       c.Geometry.Channels,
		LUNsPerChannel: c.Geometry.LUNsPerChannel,
		BlocksPerLUN:   c.Geometry.BlocksPerLUN,
		PagesPerBlock:  c.Geometry.PagesPerBlock,
		PageSize:       c.Geometry.PageSize,
	}
	ctl.Features = flash.Features{Copyback: c.Features.Copyback, Interleaving: c.Features.Interleaving}
	ctl.Overprovision = c.Overprovision
	ctl.GCGreediness = c.GC.Greediness
	ctl.GCCopyback = c.GC.Copyback
	ctl.OpenInterface = c.OpenInterface
	ctl.WriteBufferPages = c.WriteBuffer.Pages
	ctl.WriteBufferLatency = c.WriteBuffer.Latency.D()
	ctl.RAMBytes = c.RAM.Bytes
	ctl.SafeRAMBytes = c.RAM.SafeBytes
	ctl.BadBlockFraction = c.BadBlocks.Fraction
	ctl.BadBlockSeed = c.BadBlocks.Seed
	cfg.OS.QueueDepth = c.OS.QueueDepth

	var env Env // configurations carry no workload expressions
	if !c.Timing.None() {
		v, err := Make(KindTiming, c.Timing, env)
		if err != nil {
			return cfg, fmt.Errorf("spec: timing: %w", err)
		}
		ctl.Timing = v.(flash.Timing)
	}
	if !c.Mapping.None() {
		v, err := Make(KindMapping, c.Mapping, env)
		if err != nil {
			return cfg, fmt.Errorf("spec: mapping: %w", err)
		}
		m := v.(MappingChoice)
		ctl.Mapping = m.Scheme
		ctl.CMTEntries = m.CMTEntries
		ctl.ReservedTransBlocks = m.ReservedTransBlocks
	}
	if !c.GC.Policy.None() {
		v, err := Make(KindGCPolicy, c.GC.Policy, env)
		if err != nil {
			return cfg, fmt.Errorf("spec: gc policy: %w", err)
		}
		ctl.GCPolicy = v.(gc.VictimPolicy)
	}
	if !c.WL.None() {
		v, err := Make(KindWL, c.WL, env)
		if err != nil {
			return cfg, fmt.Errorf("spec: wear leveling: %w", err)
		}
		ctl.WL = v.(wl.Config)
	}
	if !c.Policy.None() {
		v, err := Make(KindPolicy, c.Policy, env)
		if err != nil {
			return cfg, fmt.Errorf("spec: scheduling policy: %w", err)
		}
		ctl.Policy = v.(sched.Policy)
	}
	if !c.Alloc.None() {
		v, err := Make(KindAllocator, c.Alloc, env)
		if err != nil {
			return cfg, fmt.Errorf("spec: allocator: %w", err)
		}
		ctl.Alloc = v.(sched.Allocator)
	}
	if !c.Detector.None() {
		v, err := Make(KindDetector, c.Detector, env)
		if err != nil {
			return cfg, fmt.Errorf("spec: detector: %w", err)
		}
		ctl.Detector = v.(hotcold.Detector)
	}
	if c.Fault != nil && !c.Fault.None() {
		v, err := Make(KindFault, *c.Fault, env)
		if err != nil {
			return cfg, fmt.Errorf("spec: fault model: %w", err)
		}
		if v != nil { // the "none" model resolves to no injector at all
			ctl.Fault = v.(fault.Model)
		}
	}
	if !c.OS.Policy.None() {
		v, err := Make(KindOSPolicy, c.OS.Policy, env)
		if err != nil {
			return cfg, fmt.Errorf("spec: os policy: %w", err)
		}
		cfg.OS.Policy = v.(osched.Policy)
	}
	return cfg, nil
}

// FromConfig describes a live configuration back into its serializable
// mirror. Every component is reverse-mapped through the registry — a value
// of an unregistered type is an *UnknownComponentError, never a silently
// lossy description — and defaulted fields are normalized to their effective
// values (nil policy describes as "fifo", zero greediness as 2, …), so two
// configurations the stack would run identically describe identically.
//
// Runtime wiring (OnComplete, OS trace and capture hooks) is outside the
// description; callers keying caches must account for it separately if it
// can change behavior.
func FromConfig(cfg core.Config) (Config, error) {
	ctl := cfg.Controller
	out := Config{
		Geometry: Geometry{
			Channels:       ctl.Geometry.Channels,
			LUNsPerChannel: ctl.Geometry.LUNsPerChannel,
			BlocksPerLUN:   ctl.Geometry.BlocksPerLUN,
			PagesPerBlock:  ctl.Geometry.PagesPerBlock,
			PageSize:       ctl.Geometry.PageSize,
		},
		Features:      Features{Copyback: ctl.Features.Copyback, Interleaving: ctl.Features.Interleaving},
		Overprovision: ctl.Overprovision,
		OpenInterface: ctl.OpenInterface,
		WriteBuffer:   WriteBufferSpec{Pages: ctl.WriteBufferPages, Latency: Duration(ctl.WriteBufferLatency)},
		RAM:           RAMSpec{Bytes: ctl.RAMBytes, SafeBytes: ctl.SafeRAMBytes},
		BadBlocks:     BadBlockSpec{Fraction: ctl.BadBlockFraction, Seed: ctl.BadBlockSeed},
		Seed:          cfg.Seed,
		SeriesBucket:  Duration(cfg.SeriesBucket),
		TraceCap:      cfg.TraceCap,
		LockBus:       cfg.LockBus,
	}

	// Normalization mirrors the runtime default fill-in (core.New and the
	// controller/OS withDefaults), so a configuration relying on defaults
	// and one spelling them out describe — and cache-key — identically.
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Overprovision == 0 {
		out.Overprovision = 0.1
	}
	timing := ctl.Timing
	if timing.Cmd == 0 {
		timing = flash.TimingSLC()
	}
	gcPolicy := ctl.GCPolicy
	if gcPolicy == nil {
		gcPolicy = gc.Greedy{}
	}
	out.GC.Greediness = ctl.GCGreediness
	if out.GC.Greediness == 0 {
		out.GC.Greediness = 2
	}
	out.GC.Copyback = ctl.GCCopyback
	policy := ctl.Policy
	if policy == nil {
		policy = &sched.FIFO{}
	}
	alloc := ctl.Alloc
	if alloc == nil {
		alloc = sched.LeastLoaded{}
	}
	detector := ctl.Detector
	if detector == nil {
		detector = hotcold.None{}
	}
	mapping := MappingChoice{Scheme: ctl.Mapping, CMTEntries: ctl.CMTEntries, ReservedTransBlocks: ctl.ReservedTransBlocks}
	if mapping.Scheme == controller.MapDFTL {
		if mapping.CMTEntries == 0 {
			mapping.CMTEntries = 4096
		}
		if mapping.ReservedTransBlocks == 0 {
			mapping.ReservedTransBlocks = 2
		}
	} else {
		mapping.CMTEntries, mapping.ReservedTransBlocks = 0, 0
	}
	wlCfg := ctl.WL
	if wlCfg.CheckInterval == 0 {
		wlCfg.CheckInterval = wl.DefaultConfig().CheckInterval
	}
	if out.WriteBuffer.Pages > 0 && out.WriteBuffer.Latency == 0 {
		out.WriteBuffer.Latency = Duration(5000) // 5us, the controller default
	} else if out.WriteBuffer.Pages == 0 {
		out.WriteBuffer.Latency = 0
	}
	osPolicy := cfg.OS.Policy
	if osPolicy == nil {
		osPolicy = &osched.FIFO{}
	}
	out.OS.QueueDepth = cfg.OS.QueueDepth
	if out.OS.QueueDepth == 0 {
		out.OS.QueueDepth = 32
	}

	var err error
	if out.Timing, err = Describe(KindTiming, timing); err != nil {
		return out, fmt.Errorf("spec: timing: %w", err)
	}
	if out.Mapping, err = Describe(KindMapping, mapping); err != nil {
		return out, fmt.Errorf("spec: mapping: %w", err)
	}
	if out.GC.Policy, err = Describe(KindGCPolicy, gcPolicy); err != nil {
		return out, fmt.Errorf("spec: gc policy: %w", err)
	}
	if out.WL, err = Describe(KindWL, wlCfg); err != nil {
		return out, fmt.Errorf("spec: wear leveling: %w", err)
	}
	if out.Policy, err = Describe(KindPolicy, policy); err != nil {
		return out, fmt.Errorf("spec: scheduling policy: %w", err)
	}
	if out.Alloc, err = Describe(KindAllocator, alloc); err != nil {
		return out, fmt.Errorf("spec: allocator: %w", err)
	}
	if out.Detector, err = Describe(KindDetector, detector); err != nil {
		return out, fmt.Errorf("spec: detector: %w", err)
	}
	if out.OS.Policy, err = Describe(KindOSPolicy, osPolicy); err != nil {
		return out, fmt.Errorf("spec: os policy: %w", err)
	}
	if ctl.Fault != nil {
		ref, err := Describe(KindFault, ctl.Fault)
		if err != nil {
			return out, fmt.Errorf("spec: fault model: %w", err)
		}
		out.Fault = &ref
	}
	return out, nil
}

// CanonKey renders a configuration as a canonical string: the registry-
// described mirror, JSON-encoded (struct fields in declaration order, map
// keys sorted — deterministic across processes). Configurations holding an
// unregistered component are a typed error, which is the point: the
// reflective printer this replaces silently produced colliding keys for
// components configured through unexported state.
func CanonKey(cfg core.Config) (string, error) {
	cs, err := FromConfig(cfg)
	if err != nil {
		return "", err
	}
	data, err := json.Marshal(cs)
	if err != nil {
		return "", fmt.Errorf("spec: canonical encoding: %w", err)
	}
	return "spec1|" + string(data), nil
}
