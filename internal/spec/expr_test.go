package spec

import (
	"errors"
	"testing"
)

func TestEval(t *testing.T) {
	env := Env{N: 8192, PPB: 32, QD: 16, F: 8}
	cases := []struct {
		expr string
		want int64
	}{
		{"0", 0},
		{"42", 42},
		{"n", 8192},
		{"ppb", 32},
		{"qd", 16},
		{"f", 8},
		{"2*n", 16384},
		{"n/2", 4096},
		{"2000*f", 16000},
		// Left-associative truncated division, exactly like the Go code the
		// suite used to hard-wire: ((n*3)/4)/4.
		{"n*3/4/4", 1536},
		{"4*n*f/2", 131072},
		{"(n+1)/2", 4096},
		{"-3+5", 2},
		{"10%3", 1},
		{" 2 * ( 3 + 4 ) ", 14},
	}
	for _, c := range cases {
		got, err := Eval(c.expr, env)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.expr, err)
		}
		if got != c.want {
			t.Errorf("Eval(%q) = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestEvalZeroFactorReadsAsOne(t *testing.T) {
	got, err := Eval("100*f", Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("100*f with zero factor = %d, want 100", got)
	}
}

func TestEvalReplicaIndex(t *testing.T) {
	for i := int64(0); i < 4; i++ {
		got, err := Eval("i*(n*3/4/4)", Env{N: 8192, I: i})
		if err != nil {
			t.Fatal(err)
		}
		if want := i * 1536; got != want {
			t.Fatalf("i=%d: got %d, want %d", i, got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []string{
		"", "n+", "x", "1/0", "5%0", "(1+2", "1 2", "n $ 2", "1.5",
	}
	for _, expr := range bad {
		if _, err := Eval(expr, Env{N: 10}); err == nil {
			t.Errorf("Eval(%q) succeeded, want error", expr)
		} else {
			var ee *ExprError
			if !errors.As(err, &ee) {
				t.Errorf("Eval(%q) error %T, want *ExprError", expr, err)
			}
		}
	}
}
