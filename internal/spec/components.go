package spec

import (
	"fmt"

	"eagletree/internal/controller"
	"eagletree/internal/fault"
	"eagletree/internal/flash"
	"eagletree/internal/gc"
	"eagletree/internal/hotcold"
	"eagletree/internal/iface"
	"eagletree/internal/osched"
	"eagletree/internal/sched"
	"eagletree/internal/sim"
	"eagletree/internal/wl"
)

// MappingChoice is the resolved value of a mapping reference: the scheme
// plus its DFTL sizing. Mapping is not an interface in the controller
// configuration, so the registry trades in this small carrier struct.
type MappingChoice struct {
	Scheme              controller.MappingScheme
	CMTEntries          int
	ReservedTransBlocks int
}

func prefString(p sched.Preference) string {
	switch p {
	case sched.PreferReads:
		return "reads"
	case sched.PreferWrites:
		return "writes"
	default:
		return "none"
	}
}

func internalString(o sched.InternalOrder) string {
	switch o {
	case sched.InternalLast:
		return "last"
	case sched.InternalFirst:
		return "first"
	default:
		return "equal"
	}
}

func init() {
	registerPolicies()
	registerAllocators()
	registerGCPolicies()
	registerWLModes()
	registerDetectors()
	registerMappings()
	registerTimings()
	registerFaultModels()
	registerOSPolicies()
}

func registerPolicies() {
	Register(Component{
		Kind: KindPolicy, Name: "fifo",
		Doc:  "dispatch strictly in arrival order (baseline)",
		Make: func(p *Params) (any, error) { return &sched.FIFO{}, nil },
		Describe: func(v any) (map[string]any, bool) {
			_, ok := v.(*sched.FIFO)
			return map[string]any{}, ok
		},
	})
	Register(Component{
		Kind: KindPolicy, Name: "priority",
		Doc: "score by tag, read/write preference and internal-IO order",
		Params: []Param{
			{Name: "prefer", Type: TString, Doc: "none | reads | writes"},
			{Name: "internal", Type: TString, Doc: "equal | last | first (GC/WL/mapping IOs vs app IOs)"},
			{Name: "use_tags", Type: TBool, Doc: "honor the open-interface priority tag"},
		},
		Make: func(p *Params) (any, error) {
			pol := &sched.Priority{UseTags: p.Bool("use_tags", false)}
			switch p.Enum("prefer", "none", "none", "reads", "writes") {
			case "reads":
				pol.Prefer = sched.PreferReads
			case "writes":
				pol.Prefer = sched.PreferWrites
			}
			switch p.Enum("internal", "equal", "equal", "last", "first") {
			case "last":
				pol.Internal = sched.InternalLast
			case "first":
				pol.Internal = sched.InternalFirst
			}
			return pol, nil
		},
		Describe: func(v any) (map[string]any, bool) {
			pol, ok := v.(*sched.Priority)
			if !ok {
				return nil, false
			}
			return map[string]any{
				"prefer":   prefString(pol.Prefer),
				"internal": internalString(pol.Internal),
				"use_tags": pol.UseTags,
			}, true
		},
	})
	Register(Component{
		Kind: KindPolicy, Name: "deadline",
		Doc: "overdue requests first (starvation guard), fallback order otherwise",
		Params: []Param{
			{Name: "read_deadline", Type: TDuration, Doc: "read deadline from submission (0 = never)"},
			{Name: "write_deadline", Type: TDuration, Doc: "write deadline from submission (0 = never)"},
			{Name: "internal_deadline", Type: TDuration, Doc: "internal-IO deadline (0 = never)"},
			{Name: "max_consecutive_overdue", Type: TInt, Doc: "bound on overdue preemption (0 = unbounded)"},
			{Name: "fallback", Type: TComponent, Of: KindPolicy, Doc: "ordering when nothing is overdue (default FIFO)"},
		},
		Make: func(p *Params) (any, error) {
			d := &sched.Deadline{
				ReadDeadline:          p.Dur("read_deadline", 0),
				WriteDeadline:         p.Dur("write_deadline", 0),
				InternalDeadline:      p.Dur("internal_deadline", 0),
				MaxConsecutiveOverdue: p.Int("max_consecutive_overdue", 0),
			}
			if fb := p.Component("fallback", KindPolicy); fb != nil {
				d.Fallback = fb.(sched.Policy)
			}
			return d, nil
		},
		Describe: func(v any) (map[string]any, bool) {
			d, ok := v.(*sched.Deadline)
			if !ok {
				return nil, false
			}
			params := map[string]any{
				"read_deadline":           durString(d.ReadDeadline),
				"write_deadline":          durString(d.WriteDeadline),
				"internal_deadline":       durString(d.InternalDeadline),
				"max_consecutive_overdue": d.MaxConsecutiveOverdue,
			}
			if d.Fallback != nil {
				ref, err := Describe(KindPolicy, d.Fallback)
				if err != nil {
					return nil, false
				}
				params["fallback"] = ref
			}
			return params, true
		},
	})
	Register(Component{
		Kind: KindPolicy, Name: "fair",
		Doc: "weighted round-robin across IO sources",
		Params: []Param{
			{Name: "weights", Type: TInts, Doc: "per-source weights indexed by iface.Source (missing = 1)"},
		},
		Make: func(p *Params) (any, error) {
			f := &sched.Fair{}
			w := p.Ints("weights")
			if len(w) > len(f.Weights) {
				return nil, &ParamError{Context: p.context(), Param: "weights",
					Err: fmt.Errorf("%d weights for %d sources", len(w), len(f.Weights))}
			}
			copy(f.Weights[:], w)
			return f, nil
		},
		Describe: func(v any) (map[string]any, bool) {
			f, ok := v.(*sched.Fair)
			if !ok {
				return nil, false
			}
			return map[string]any{"weights": append([]int(nil), f.Weights[:]...)}, true
		},
	})
}

func registerAllocators() {
	Register(Component{
		Kind: KindAllocator, Name: "leastloaded",
		Doc:  "pick the allocatable idle LUN whose reservations drain soonest",
		Make: func(p *Params) (any, error) { return sched.LeastLoaded{}, nil },
		Describe: func(v any) (map[string]any, bool) {
			switch v.(type) {
			case sched.LeastLoaded, *sched.LeastLoaded:
				return map[string]any{}, true
			}
			return nil, false
		},
	})
	Register(Component{
		Kind: KindAllocator, Name: "roundrobin",
		Doc:  "rotate writes across LUNs",
		Make: func(p *Params) (any, error) { return &sched.RoundRobin{}, nil },
		Describe: func(v any) (map[string]any, bool) {
			_, ok := v.(*sched.RoundRobin)
			return map[string]any{}, ok
		},
	})
	Register(Component{
		Kind: KindAllocator, Name: "striped",
		Doc:  "statically map LPN mod N to a LUN (RAID-like layout)",
		Make: func(p *Params) (any, error) { return sched.Striped{}, nil },
		Describe: func(v any) (map[string]any, bool) {
			switch v.(type) {
			case sched.Striped, *sched.Striped:
				return map[string]any{}, true
			}
			return nil, false
		},
	})
	Register(Component{
		Kind: KindAllocator, Name: "patternaware",
		Doc: "stripe detected sequential runs, least-loaded otherwise",
		Params: []Param{
			{Name: "min_run", Type: TInt, Doc: "run length at which a stream counts as sequential (0 = 8)"},
		},
		Make: func(p *Params) (any, error) {
			return &sched.PatternAware{Detector: &sched.PatternDetector{MinRun: p.Int("min_run", 0)}}, nil
		},
		Describe: func(v any) (map[string]any, bool) {
			a, ok := v.(*sched.PatternAware)
			if !ok {
				return nil, false
			}
			minRun := 0
			if a.Detector != nil {
				minRun = a.Detector.MinRun
			}
			return map[string]any{"min_run": minRun}, true
		},
	})
}

func registerGCPolicies() {
	Register(Component{
		Kind: KindGCPolicy, Name: "greedy",
		Doc:  "victim with the fewest live pages",
		Make: func(p *Params) (any, error) { return gc.Greedy{}, nil },
		Describe: func(v any) (map[string]any, bool) {
			switch v.(type) {
			case gc.Greedy, *gc.Greedy:
				return map[string]any{}, true
			}
			return nil, false
		},
	})
	Register(Component{
		Kind: KindGCPolicy, Name: "costbenefit",
		Doc:  "(1-u)/(2u) * age cost-benefit score",
		Make: func(p *Params) (any, error) { return gc.CostBenefit{}, nil },
		Describe: func(v any) (map[string]any, bool) {
			switch v.(type) {
			case gc.CostBenefit, *gc.CostBenefit:
				return map[string]any{}, true
			}
			return nil, false
		},
	})
	Register(Component{
		Kind: KindGCPolicy, Name: "random",
		Doc:  "uniformly random non-full victim (baseline); fixed-seed RNG",
		Make: func(p *Params) (any, error) { return &gc.Random{}, nil },
		Describe: func(v any) (map[string]any, bool) {
			_, ok := v.(*gc.Random)
			return map[string]any{}, ok
		},
	})
}

// wlParams are the tuning knobs shared by every wear-leveling mode.
var wlParams = []Param{
	{Name: "check_interval", Type: TDuration, Doc: "static-scan period in virtual time"},
	{Name: "age_slack", Type: TInt, Doc: "erases below average for a block to count as young"},
	{Name: "idle_factor", Type: TFloat, Doc: "average erase intervals without an erase to count as idle"},
	{Name: "max_migrations_per_scan", Type: TInt, Doc: "victim blocks one static scan may queue"},
}

func registerWLModes() {
	mode := func(name, doc string, static, dynamic bool) {
		Register(Component{
			Kind: KindWL, Name: name, Doc: doc,
			Params: wlParams,
			Make: func(p *Params) (any, error) {
				cfg := wl.DefaultConfig()
				cfg.Static, cfg.Dynamic = static, dynamic
				cfg.CheckInterval = p.Dur("check_interval", cfg.CheckInterval)
				cfg.AgeSlack = p.Int("age_slack", cfg.AgeSlack)
				cfg.IdleFactor = p.Float("idle_factor", cfg.IdleFactor)
				cfg.MaxMigrationsPerScan = p.Int("max_migrations_per_scan", cfg.MaxMigrationsPerScan)
				return cfg, nil
			},
			Describe: func(v any) (map[string]any, bool) {
				cfg, ok := v.(wl.Config)
				if !ok || cfg.Static != static || cfg.Dynamic != dynamic {
					return nil, false
				}
				return map[string]any{
					"check_interval":          durString(cfg.CheckInterval),
					"age_slack":               cfg.AgeSlack,
					"idle_factor":             cfg.IdleFactor,
					"max_migrations_per_scan": cfg.MaxMigrationsPerScan,
				}, true
			},
		})
	}
	mode("off", "no wear leveling", false, false)
	mode("static", "periodic static scans only", true, false)
	mode("dynamic", "age-aware allocation only", false, true)
	mode("full", "static scans plus age-aware allocation", true, true)
}

func registerDetectors() {
	Register(Component{
		Kind: KindDetector, Name: "none",
		Doc:  "classify nothing (always unknown)",
		Make: func(p *Params) (any, error) { return hotcold.None{}, nil },
		Describe: func(v any) (map[string]any, bool) {
			switch v.(type) {
			case hotcold.None, *hotcold.None:
				return map[string]any{}, true
			}
			return nil, false
		},
	})
	Register(Component{
		Kind: KindDetector, Name: "mbf",
		Doc: "multiple-bloom-filter hot-data identifier (Park & Du, MSST'11)",
		Params: []Param{
			{Name: "filters", Type: TInt, Doc: "number of bloom filters (V)"},
			{Name: "bits_per_filter", Type: TInt, Doc: "bits per filter (m)"},
			{Name: "hashes", Type: TInt, Doc: "hash functions (k)"},
			{Name: "decay_window", Type: TInt, Doc: "writes between filter rotations"},
			{Name: "hot_fraction", Type: TFloat, Doc: "fraction of filters that must match for hot"},
		},
		Make: func(p *Params) (any, error) {
			def := hotcold.DefaultMBFConfig()
			return hotcold.NewMBF(hotcold.MBFConfig{
				Filters:     p.Int("filters", def.Filters),
				BitsPerFilt: p.Int("bits_per_filter", def.BitsPerFilt),
				Hashes:      p.Int("hashes", def.Hashes),
				DecayWindow: p.Int("decay_window", def.DecayWindow),
				HotFraction: p.Float("hot_fraction", def.HotFraction),
			}), nil
		},
		Describe: func(v any) (map[string]any, bool) {
			m, ok := v.(*hotcold.MBF)
			if !ok {
				return nil, false
			}
			// Config() is the detector's *effective* configuration: the
			// behavior-relevant state the old reflective cache key could not
			// see (and special-cased).
			cfg := m.Config()
			return map[string]any{
				"filters":         cfg.Filters,
				"bits_per_filter": cfg.BitsPerFilt,
				"hashes":          cfg.Hashes,
				"decay_window":    cfg.DecayWindow,
				"hot_fraction":    cfg.HotFraction,
			}, true
		},
	})
	Register(Component{
		Kind: KindDetector, Name: "oracle",
		Doc: "perfect knowledge: LPNs below a bound are hot",
		Params: []Param{
			{Name: "hot_below", Type: TExpr, Doc: "LPNs below this are hot"},
		},
		Make: func(p *Params) (any, error) {
			return hotcold.Oracle{HotBelow: iface.LPN(p.Int64("hot_below", 0))}, nil
		},
		Describe: func(v any) (map[string]any, bool) {
			switch o := v.(type) {
			case hotcold.Oracle:
				return map[string]any{"hot_below": int64(o.HotBelow)}, true
			case *hotcold.Oracle:
				return map[string]any{"hot_below": int64(o.HotBelow)}, true
			}
			return nil, false
		},
	})
}

func registerMappings() {
	Register(Component{
		Kind: KindMapping, Name: "pagemap",
		Doc:  "full page map in controller RAM",
		Make: func(p *Params) (any, error) { return MappingChoice{Scheme: controller.MapPageRAM}, nil },
		Describe: func(v any) (map[string]any, bool) {
			m, ok := v.(MappingChoice)
			if !ok || m.Scheme != controller.MapPageRAM {
				return nil, false
			}
			return map[string]any{}, true
		},
	})
	Register(Component{
		Kind: KindMapping, Name: "dftl",
		Doc: "demand-cached mapping; the full table lives on flash",
		Params: []Param{
			{Name: "cmt", Type: TInt, Doc: "cached mapping table entries (0 = 4096)"},
			{Name: "trans_blocks", Type: TInt, Doc: "reserved translation blocks per LUN (0 = 2)"},
		},
		Make: func(p *Params) (any, error) {
			return MappingChoice{
				Scheme:              controller.MapDFTL,
				CMTEntries:          p.Int("cmt", 0),
				ReservedTransBlocks: p.Int("trans_blocks", 0),
			}, nil
		},
		Describe: func(v any) (map[string]any, bool) {
			m, ok := v.(MappingChoice)
			if !ok || m.Scheme != controller.MapDFTL {
				return nil, false
			}
			return map[string]any{"cmt": m.CMTEntries, "trans_blocks": m.ReservedTransBlocks}, true
		},
	})
}

var timingParams = []Param{
	{Name: "cell", Type: TString, Doc: "slc | mlc (endurance/reporting class)"},
	{Name: "cmd", Type: TDuration, Doc: "command/address cycle on the channel"},
	{Name: "transfer", Type: TDuration, Doc: "one page of data on the channel"},
	{Name: "page_read", Type: TDuration, Doc: "array sense time (tR)"},
	{Name: "page_write", Type: TDuration, Doc: "array program time (tPROG)"},
	{Name: "block_erase", Type: TDuration, Doc: "block erase time (tBERS)"},
	{Name: "endurance_limit", Type: TInt, Doc: "nominal P/E cycle budget per block"},
}

func registerTimings() {
	preset := func(name, doc string, t flash.Timing) {
		Register(Component{
			Kind: KindTiming, Name: name, Doc: doc,
			Make: func(p *Params) (any, error) { return t, nil },
			Describe: func(v any) (map[string]any, bool) {
				got, ok := v.(flash.Timing)
				if !ok || got != t {
					return nil, false
				}
				return map[string]any{}, true
			},
		})
	}
	preset("slc", "ONFI-class SLC timings (tR 25us, tPROG 200us)", flash.TimingSLC())
	preset("mlc", "MLC timings (tR 50us, tPROG 900us)", flash.TimingMLC())
	Register(Component{
		Kind: KindTiming, Name: "custom",
		Doc:    "explicit per-operation latencies",
		Params: timingParams,
		Make: func(p *Params) (any, error) {
			t := flash.Timing{
				Cmd:            p.Dur("cmd", 0),
				Transfer:       p.Dur("transfer", 0),
				PageRead:       p.Dur("page_read", 0),
				PageWrite:      p.Dur("page_write", 0),
				BlockErase:     p.Dur("block_erase", 0),
				EnduranceLimit: p.Int("endurance_limit", 0),
			}
			if p.Enum("cell", "slc", "slc", "mlc") == "mlc" {
				t.Cell = flash.MLC
			}
			return t, nil
		},
		Describe: func(v any) (map[string]any, bool) {
			t, ok := v.(flash.Timing)
			if !ok {
				return nil, false
			}
			cell := "slc"
			if t.Cell == flash.MLC {
				cell = "mlc"
			}
			return map[string]any{
				"cell":            cell,
				"cmd":             durString(t.Cmd),
				"transfer":        durString(t.Transfer),
				"page_read":       durString(t.PageRead),
				"page_write":      durString(t.PageWrite),
				"block_erase":     durString(t.BlockErase),
				"endurance_limit": t.EnduranceLimit,
			}, true
		},
	})
}

func registerFaultModels() {
	Register(Component{
		Kind: KindFault, Name: "none",
		Doc:  "no runtime faults (default): the idealized device",
		Make: func(p *Params) (any, error) { return nil, nil },
		Describe: func(v any) (map[string]any, bool) {
			return map[string]any{}, v == nil
		},
	})
	Register(Component{
		Kind: KindFault, Name: "random",
		Doc: "fixed per-operation failure probabilities, seeded RNG",
		Params: []Param{
			{Name: "program_fail", Type: TFloat, Doc: "per-program failure probability"},
			{Name: "erase_fail", Type: TFloat, Doc: "per-erase failure probability (retires the block)"},
			{Name: "grown_bad", Type: TFloat, Doc: "conditional probability a failed program retires the block"},
			{Name: "seed", Type: TInt, Doc: "fault RNG seed (0 = 1)"},
		},
		Make: func(p *Params) (any, error) {
			seed := uint64(p.Int("seed", 0))
			if seed == 0 {
				seed = 1
			}
			return fault.NewRandom(p.Float("program_fail", 0), p.Float("erase_fail", 0),
				p.Float("grown_bad", 0), seed), nil
		},
		Describe: func(v any) (map[string]any, bool) {
			m, ok := v.(*fault.Random)
			if !ok {
				return nil, false
			}
			// Configuration identity only: the model's RNG position is
			// runtime state and lives in device snapshots, not in specs.
			return map[string]any{
				"program_fail": m.PFail,
				"erase_fail":   m.EFail,
				"grown_bad":    m.PGrown,
				"seed":         int(m.Seed),
			}, true
		},
	})
	Register(Component{
		Kind: KindFault, Name: "wearout",
		Doc: "endurance-derived failure curve keyed on block erase counts",
		Params: []Param{
			{Name: "endurance", Type: TInt, Doc: "erase-count knee; align with the timing set's endurance_limit"},
			{Name: "shape", Type: TFloat, Doc: "curve exponent (higher = failures cluster at the limit)"},
			{Name: "program_factor", Type: TFloat, Doc: "program-failure probability as a fraction of the erase curve"},
			{Name: "seed", Type: TInt, Doc: "fault RNG seed (0 = 1)"},
		},
		Make: func(p *Params) (any, error) {
			seed := uint64(p.Int("seed", 0))
			if seed == 0 {
				seed = 1
			}
			shape := p.Float("shape", 0)
			if shape == 0 {
				shape = 4
			}
			return fault.NewWearout(p.Int("endurance", 0), shape,
				p.Float("program_factor", 0), seed), nil
		},
		Describe: func(v any) (map[string]any, bool) {
			m, ok := v.(*fault.Wearout)
			if !ok {
				return nil, false
			}
			return map[string]any{
				"endurance":      m.Endurance,
				"shape":          m.Shape,
				"program_factor": m.ProgramFactor,
				"seed":           int(m.Seed),
			}, true
		},
	})
	Register(Component{
		Kind: KindFault, Name: "at",
		Doc: "one deterministic fault at an erase-count or virtual-time threshold",
		Params: []Param{
			{Name: "at_erase_count", Type: TInt, Doc: "trigger at this block erase count (0 = off)"},
			{Name: "at_time", Type: TDuration, Doc: "trigger at this virtual time (0 = off)"},
			{Name: "op", Type: TString, Doc: "program | erase (which operation the fault hits)"},
			{Name: "grown", Type: TBool, Doc: "a triggered program failure also retires the block"},
		},
		Make: func(p *Params) (any, error) {
			return &fault.At{
				AtEraseCount: p.Int("at_erase_count", 0),
				AtTime:       sim.Time(p.Dur("at_time", 0)),
				OnErase:      p.Enum("op", "program", "program", "erase") == "erase",
				Grown:        p.Bool("grown", false),
			}, nil
		},
		Describe: func(v any) (map[string]any, bool) {
			m, ok := v.(*fault.At)
			if !ok {
				return nil, false
			}
			op := "program"
			if m.OnErase {
				op = "erase"
			}
			return map[string]any{
				"at_erase_count": m.AtEraseCount,
				"at_time":        durString(sim.Duration(m.AtTime)),
				"op":             op,
				"grown":          m.Grown,
			}, true
		},
	})
}

func registerOSPolicies() {
	Register(Component{
		Kind: KindOSPolicy, Name: "fifo",
		Doc:  "issue in submission order (default)",
		Make: func(p *Params) (any, error) { return &osched.FIFO{}, nil },
		Describe: func(v any) (map[string]any, bool) {
			_, ok := v.(*osched.FIFO)
			return map[string]any{}, ok
		},
	})
	Register(Component{
		Kind: KindOSPolicy, Name: "prio",
		Doc: "highest priority tag first, optionally reads before writes",
		Params: []Param{
			{Name: "reads_first", Type: TBool, Doc: "break priority ties in favor of reads"},
		},
		Make: func(p *Params) (any, error) {
			return &osched.Prio{ReadsFirst: p.Bool("reads_first", false)}, nil
		},
		Describe: func(v any) (map[string]any, bool) {
			pr, ok := v.(*osched.Prio)
			if !ok {
				return nil, false
			}
			return map[string]any{"reads_first": pr.ReadsFirst}, true
		},
	})
	Register(Component{
		Kind: KindOSPolicy, Name: "elevator",
		Doc:  "ascending-LPN sweeps (C-SCAN), the broken-HDD-contract contrast",
		Make: func(p *Params) (any, error) { return &osched.Elevator{}, nil },
		Describe: func(v any) (map[string]any, bool) {
			_, ok := v.(*osched.Elevator)
			return map[string]any{}, ok
		},
	})
	Register(Component{
		Kind: KindOSPolicy, Name: "cfq",
		Doc: "round-robin threads with a quantum",
		Params: []Param{
			{Name: "quantum", Type: TInt, Doc: "consecutive IOs per thread turn (0 = 4)"},
		},
		Make: func(p *Params) (any, error) {
			return &osched.CFQ{Quantum: p.Int("quantum", 0)}, nil
		},
		Describe: func(v any) (map[string]any, bool) {
			c, ok := v.(*osched.CFQ)
			if !ok {
				return nil, false
			}
			return map[string]any{"quantum": c.Quantum}, true
		},
	})
}
