package spec

import "fmt"

// VariantKeys returns one canonical configuration key per expanded variant,
// in grid order — the stable identity a distributed sweep leases by. Each key
// is CanonKey of the variant's fully resolved configuration, so two processes
// holding the same document (and the same component registry) compute the
// same list independently; a coordinator compares digests of these lists
// before handing out (key, index) leases, turning registry or version skew
// between binaries into a handshake error instead of silently divergent rows.
//
// An empty expansion yields one key (the implicit "run" variant), mirroring
// the runner's single-run fallback, so indices always align with the compiled
// Definition's variant list.
func (e Experiment) VariantKeys() ([]string, error) {
	variants, err := e.ExpandVariants()
	if err != nil {
		return nil, err
	}
	if len(variants) == 0 {
		variants = []Variant{{Label: "run"}}
	}
	keys := make([]string, len(variants))
	for i, v := range variants {
		cfg, err := e.ConfigFor(v)
		if err != nil {
			return nil, err
		}
		resolved, err := cfg.Resolve()
		if err != nil {
			return nil, fmt.Errorf("spec: variant %q: %w", v.Label, err)
		}
		key, err := CanonKey(resolved)
		if err != nil {
			return nil, fmt.Errorf("spec: variant %q: %w", v.Label, err)
		}
		keys[i] = key
	}
	return keys, nil
}
