package spec

import (
	"errors"
	"path/filepath"
	"testing"

	"eagletree/internal/iface"
	"eagletree/internal/trace"
)

// TestReplayProvenance: a replay thread spec pinning a sha256 builds when
// the file's stream matches and fails with the trace package's typed
// mismatch error when it does not; the capture_spec provenance note is
// accepted alongside.
func TestReplayProvenance(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{
		{At: 0, Thread: 1, Op: iface.Write, LPN: 3, Size: 1},
		{At: 90, Thread: 1, Op: iface.Read, LPN: 3, Size: 1},
	}}
	path := filepath.Join(t.TempDir(), "prov.etb")
	if err := trace.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	hash, err := tr.Hash()
	if err != nil {
		t.Fatal(err)
	}

	env := Env{N: 1 << 10, PPB: 16, QD: 8}
	good := Thread{Type: "replay", Params: map[string]any{
		"path": path, "sha256": hash, "capture_spec": "spec1|{...capturing config...}",
	}}
	if _, err := MakeThread(good, env); err != nil {
		t.Fatalf("matching provenance rejected: %v", err)
	}

	bad := Thread{Type: "replay", Params: map[string]any{
		"path": path, "sha256": "0000000000000000000000000000000000000000000000000000000000000000",
	}}
	_, err = MakeThread(bad, env)
	if err == nil {
		t.Fatal("mismatched provenance accepted")
	}
	var mm *trace.MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("err = %v (%T), want to wrap *trace.MismatchError", err, err)
	}
	if mm.Path != path || mm.Got != hash {
		t.Fatalf("mismatch error carries wrong provenance: %+v", mm)
	}
	var pe *ParamError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want the spec layer's *ParamError context", err)
	}
}
