package spec

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"eagletree/internal/sim"
)

// sortedKeys returns the map's keys in sorted order. Validation walks
// parameter maps through this so the first-reported error is deterministic
// regardless of Go's randomized map iteration.
func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //lint:ordered keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Ref names a registered component, optionally with parameters. In JSON a
// bare string is shorthand for a parameterless reference:
//
//	"policy": "fifo"
//	"policy": {"name": "priority", "params": {"prefer": "reads"}}
type Ref struct {
	Name   string         `json:"name"`
	Params map[string]any `json:"params,omitempty"`
}

// NamedRef returns a parameterless reference.
func NamedRef(name string) Ref { return Ref{Name: name} }

// ParamRef returns a reference with parameters.
func ParamRef(name string, params map[string]any) Ref { return Ref{Name: name, Params: params} }

// None reports whether the reference is unset (component left to the
// stack's runtime default).
func (r Ref) None() bool { return r.Name == "" }

// MarshalJSON writes the shorthand string form when there are no parameters.
func (r Ref) MarshalJSON() ([]byte, error) {
	if len(r.Params) == 0 {
		return json.Marshal(r.Name)
	}
	type plain Ref
	return json.Marshal(plain(r))
}

// UnmarshalJSON accepts both the string shorthand and the object form.
func (r *Ref) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		return json.Unmarshal(data, &r.Name)
	}
	type plain Ref
	return json.Unmarshal(data, (*plain)(r))
}

// coerceRef converts a raw parameter value (string shorthand, decoded JSON
// object, or an authored Ref) into a Ref.
func coerceRef(v any) (Ref, error) {
	switch t := v.(type) {
	case Ref:
		return t, nil
	case string:
		return Ref{Name: t}, nil
	case map[string]any:
		name, _ := t["name"].(string)
		if name == "" {
			return Ref{}, fmt.Errorf("component reference needs a %q field", "name")
		}
		for _, k := range sortedKeys(t) {
			if k != "name" && k != "params" {
				return Ref{}, fmt.Errorf("component reference has unknown field %q", k)
			}
		}
		params, _ := t["params"].(map[string]any)
		return Ref{Name: name, Params: params}, nil
	default:
		return Ref{}, fmt.Errorf("cannot use %T as a component reference", v)
	}
}

// Duration is sim.Duration with a human-readable JSON form: it marshals as
// a Go duration string ("2ms") and unmarshals from either that form or a
// plain number of nanoseconds.
type Duration sim.Duration

// D converts to the simulator's duration type.
func (d Duration) D() sim.Duration { return sim.Duration(d) }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var raw any
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	v, err := coerceDuration(raw)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

func coerceDuration(v any) (sim.Duration, error) {
	switch t := v.(type) {
	case string:
		td, err := time.ParseDuration(t)
		if err != nil {
			return 0, fmt.Errorf("bad duration %q: %v", t, err)
		}
		return sim.Duration(td.Nanoseconds()), nil
	case float64:
		return sim.Duration(int64(t)), nil
	case int:
		return sim.Duration(t), nil
	case int64:
		return sim.Duration(t), nil
	case Duration:
		return t.D(), nil
	case sim.Duration:
		return t, nil
	case time.Duration:
		return sim.Duration(t.Nanoseconds()), nil
	default:
		return 0, fmt.Errorf("cannot use %T as a duration", v)
	}
}

// durString renders a duration in the canonical parameter form.
func durString(d sim.Duration) string { return time.Duration(d).String() }

// Params is a component's typed view of its raw parameter map. Accessors
// coerce JSON-decoded values (or Go-authored literals) to the declared type
// and record the first failure; Make surfaces it as a *ParamError.
type Params struct {
	comp *Component
	vals map[string]any
	env  Env
	err  error
}

func (p *Params) context() string {
	return fmt.Sprintf("%s %q", p.comp.Kind, p.comp.Name)
}

func (p *Params) fail(name string, err error) {
	if p.err == nil {
		p.err = &ParamError{Context: p.context(), Param: name, Err: err}
	}
}

func (p *Params) raw(name string) (any, bool) {
	v, ok := p.vals[name]
	return v, ok
}

// Env returns the evaluation environment the component is being built in.
func (p *Params) Env() Env { return p.env }

// Int reads an integer parameter.
func (p *Params) Int(name string, def int) int {
	return int(p.Int64(name, int64(def)))
}

// Int64 reads an integer parameter. Declared TExpr parameters additionally
// accept expression strings evaluated against the environment.
func (p *Params) Int64(name string, def int64) int64 {
	v, ok := p.raw(name)
	if !ok {
		return def
	}
	switch t := v.(type) {
	case float64:
		if t != float64(int64(t)) {
			p.fail(name, fmt.Errorf("%v is not an integer", t))
			return def
		}
		return int64(t)
	case int:
		return int64(t)
	case int64:
		return t
	case string:
		n, err := Eval(t, p.env)
		if err != nil {
			p.fail(name, err)
			return def
		}
		return n
	default:
		p.fail(name, fmt.Errorf("cannot use %T as an integer", v))
		return def
	}
}

// Uint64 reads a non-negative integer parameter.
func (p *Params) Uint64(name string, def uint64) uint64 {
	v := p.Int64(name, int64(def))
	if v < 0 {
		p.fail(name, fmt.Errorf("%d is negative", v))
		return def
	}
	return uint64(v)
}

// Float reads a floating-point parameter.
func (p *Params) Float(name string, def float64) float64 {
	v, ok := p.raw(name)
	if !ok {
		return def
	}
	switch t := v.(type) {
	case float64:
		return t
	case int:
		return float64(t)
	case int64:
		return float64(t)
	default:
		p.fail(name, fmt.Errorf("cannot use %T as a float", v))
		return def
	}
}

// Bool reads a boolean parameter.
func (p *Params) Bool(name string, def bool) bool {
	v, ok := p.raw(name)
	if !ok {
		return def
	}
	b, ok := v.(bool)
	if !ok {
		p.fail(name, fmt.Errorf("cannot use %T as a bool", v))
		return def
	}
	return b
}

// Str reads a string parameter.
func (p *Params) Str(name, def string) string {
	v, ok := p.raw(name)
	if !ok {
		return def
	}
	s, ok := v.(string)
	if !ok {
		p.fail(name, fmt.Errorf("cannot use %T as a string", v))
		return def
	}
	return s
}

// Enum reads a string parameter restricted to the allowed values.
func (p *Params) Enum(name, def string, allowed ...string) string {
	s := p.Str(name, def)
	for _, a := range allowed {
		if s == a {
			return s
		}
	}
	p.fail(name, fmt.Errorf("%q is not one of %v", s, allowed))
	return def
}

// Dur reads a duration parameter ("2ms" or nanoseconds).
func (p *Params) Dur(name string, def sim.Duration) sim.Duration {
	v, ok := p.raw(name)
	if !ok {
		return def
	}
	d, err := coerceDuration(v)
	if err != nil {
		p.fail(name, err)
		return def
	}
	return d
}

// Ints reads an integer-list parameter.
func (p *Params) Ints(name string) []int {
	v, ok := p.raw(name)
	if !ok {
		return nil
	}
	switch t := v.(type) {
	case []int:
		return append([]int(nil), t...)
	case []any:
		out := make([]int, 0, len(t))
		for _, e := range t {
			f, ok := e.(float64)
			if !ok || f != float64(int64(f)) {
				p.fail(name, fmt.Errorf("element %v is not an integer", e))
				return nil
			}
			out = append(out, int(f))
		}
		return out
	case []float64:
		out := make([]int, 0, len(t))
		for _, f := range t {
			out = append(out, int(f))
		}
		return out
	default:
		p.fail(name, fmt.Errorf("cannot use %T as an integer list", v))
		return nil
	}
}

// Component reads a nested component parameter of the given kind, building
// it through the registry. Absent (or null) means nil.
func (p *Params) Component(name string, kind Kind) any {
	v, ok := p.raw(name)
	if !ok || v == nil {
		return nil
	}
	ref, err := coerceRef(v)
	if err != nil {
		p.fail(name, err)
		return nil
	}
	c, err := Make(kind, ref, p.env)
	if err != nil {
		p.fail(name, err)
		return nil
	}
	return c
}
