package spec

import (
	"errors"
	"reflect"
	"testing"

	"eagletree/internal/controller"
	"eagletree/internal/core"
	"eagletree/internal/flash"
	"eagletree/internal/gc"
	"eagletree/internal/hotcold"
	"eagletree/internal/iface"
	"eagletree/internal/osched"
	"eagletree/internal/sched"
	"eagletree/internal/sim"
	"eagletree/internal/wl"
)

func canonBase() core.Config {
	return core.Config{
		Controller: controller.Config{
			Geometry:      flash.Geometry{Channels: 2, LUNsPerChannel: 2, BlocksPerLUN: 64, PagesPerBlock: 32, PageSize: 4096},
			Timing:        flash.TimingSLC(),
			Overprovision: 0.15,
			GCGreediness:  2,
			WL:            controller.WLOff(),
		},
		OS:   osched.Config{QueueDepth: 32},
		Seed: 7,
	}
}

// TestCanonKeyDistinguishesEveryComponent is the collision-hazard
// regression the registry exists for: every registered component, varied
// through each of its knobs — including knobs held in unexported state,
// like the MBF detector's effective configuration — must produce a distinct
// canonical key. The old reflective printer collapsed exactly these cases.
func TestCanonKeyDistinguishesEveryComponent(t *testing.T) {
	type tc struct {
		label string
		mut   func(*core.Config)
	}
	cases := []tc{
		{"base", nil},

		// SSD scheduling policies.
		{"policy=fifo-explicit", func(c *core.Config) { c.Controller.Policy = &sched.FIFO{} }},
		{"policy=priority", func(c *core.Config) { c.Controller.Policy = &sched.Priority{} }},
		{"policy=priority-reads", func(c *core.Config) { c.Controller.Policy = &sched.Priority{Prefer: sched.PreferReads} }},
		{"policy=priority-writes", func(c *core.Config) { c.Controller.Policy = &sched.Priority{Prefer: sched.PreferWrites} }},
		{"policy=priority-internal-last", func(c *core.Config) { c.Controller.Policy = &sched.Priority{Internal: sched.InternalLast} }},
		{"policy=priority-tags", func(c *core.Config) { c.Controller.Policy = &sched.Priority{UseTags: true} }},
		{"policy=deadline", func(c *core.Config) {
			c.Controller.Policy = &sched.Deadline{ReadDeadline: 2 * sim.Millisecond, WriteDeadline: 20 * sim.Millisecond}
		}},
		{"policy=deadline-tighter", func(c *core.Config) {
			c.Controller.Policy = &sched.Deadline{ReadDeadline: 1 * sim.Millisecond, WriteDeadline: 20 * sim.Millisecond}
		}},
		{"policy=deadline-capped", func(c *core.Config) {
			c.Controller.Policy = &sched.Deadline{ReadDeadline: 2 * sim.Millisecond, WriteDeadline: 20 * sim.Millisecond, MaxConsecutiveOverdue: 4}
		}},
		{"policy=deadline-fallback", func(c *core.Config) {
			c.Controller.Policy = &sched.Deadline{
				ReadDeadline: 2 * sim.Millisecond, WriteDeadline: 20 * sim.Millisecond,
				Fallback: &sched.Priority{Prefer: sched.PreferReads},
			}
		}},
		{"policy=fair", func(c *core.Config) { c.Controller.Policy = &sched.Fair{} }},
		{"policy=fair-weighted", func(c *core.Config) {
			f := &sched.Fair{}
			f.Weights[0], f.Weights[1] = 3, 1
			c.Controller.Policy = f
		}},

		// Write allocators.
		{"alloc=roundrobin", func(c *core.Config) { c.Controller.Alloc = &sched.RoundRobin{} }},
		{"alloc=striped", func(c *core.Config) { c.Controller.Alloc = sched.Striped{} }},
		{"alloc=patternaware", func(c *core.Config) {
			c.Controller.Alloc = &sched.PatternAware{Detector: &sched.PatternDetector{}}
		}},
		{"alloc=patternaware-minrun", func(c *core.Config) {
			c.Controller.Alloc = &sched.PatternAware{Detector: &sched.PatternDetector{MinRun: 16}}
		}},

		// GC victim policies.
		{"gc=costbenefit", func(c *core.Config) { c.Controller.GCPolicy = gc.CostBenefit{} }},
		{"gc=random", func(c *core.Config) { c.Controller.GCPolicy = &gc.Random{} }},

		// Wear-leveling modes, including knobs behind the mode flags.
		{"wl=static", func(c *core.Config) {
			cfg := wl.DefaultConfig()
			cfg.Dynamic = false
			c.Controller.WL = cfg
		}},
		{"wl=dynamic", func(c *core.Config) {
			cfg := wl.DefaultConfig()
			cfg.Static = false
			c.Controller.WL = cfg
		}},
		{"wl=full", func(c *core.Config) { c.Controller.WL = wl.DefaultConfig() }},
		{"wl=full-fast", func(c *core.Config) {
			cfg := wl.DefaultConfig()
			cfg.CheckInterval = 5 * sim.Millisecond
			c.Controller.WL = cfg
		}},
		{"wl=full-slack", func(c *core.Config) {
			cfg := wl.DefaultConfig()
			cfg.AgeSlack = 5
			c.Controller.WL = cfg
		}},
		{"wl=full-migrations", func(c *core.Config) {
			cfg := wl.DefaultConfig()
			cfg.MaxMigrationsPerScan = 4
			c.Controller.WL = cfg
		}},

		// Detectors — the MBF's knobs live in unexported state, the exact
		// case the reflective printer had to special-case.
		{"detector=mbf", func(c *core.Config) { c.Controller.Detector = hotcold.NewMBF(hotcold.DefaultMBFConfig()) }},
		{"detector=mbf-8filters", func(c *core.Config) {
			cfg := hotcold.DefaultMBFConfig()
			cfg.Filters = 8
			c.Controller.Detector = hotcold.NewMBF(cfg)
		}},
		{"detector=mbf-window", func(c *core.Config) {
			cfg := hotcold.DefaultMBFConfig()
			cfg.DecayWindow = 4096
			c.Controller.Detector = hotcold.NewMBF(cfg)
		}},
		{"detector=oracle", func(c *core.Config) { c.Controller.Detector = hotcold.Oracle{HotBelow: 100} }},
		{"detector=oracle-wider", func(c *core.Config) { c.Controller.Detector = hotcold.Oracle{HotBelow: iface.LPN(200)} }},

		// Mapping schemes.
		{"mapping=dftl", func(c *core.Config) { c.Controller.Mapping = controller.MapDFTL }},
		{"mapping=dftl-cmt", func(c *core.Config) {
			c.Controller.Mapping = controller.MapDFTL
			c.Controller.CMTEntries = 128
		}},
		{"mapping=dftl-trans", func(c *core.Config) {
			c.Controller.Mapping = controller.MapDFTL
			c.Controller.ReservedTransBlocks = 8
		}},

		// Timings.
		{"timing=mlc", func(c *core.Config) { c.Controller.Timing = flash.TimingMLC() }},
		{"timing=custom", func(c *core.Config) {
			tm := flash.TimingSLC()
			tm.PageWrite = 300 * sim.Microsecond
			c.Controller.Timing = tm
		}},

		// OS policies.
		{"os=prio", func(c *core.Config) { c.OS.Policy = &osched.Prio{} }},
		{"os=prio-reads", func(c *core.Config) { c.OS.Policy = &osched.Prio{ReadsFirst: true} }},
		{"os=elevator", func(c *core.Config) { c.OS.Policy = &osched.Elevator{} }},
		{"os=cfq", func(c *core.Config) { c.OS.Policy = &osched.CFQ{} }},
		{"os=cfq-quantum", func(c *core.Config) { c.OS.Policy = &osched.CFQ{Quantum: 8} }},

		// Non-component knobs that shape the aged state.
		{"seed", func(c *core.Config) { c.Seed = 99 }},
		{"geometry", func(c *core.Config) { c.Controller.Geometry.BlocksPerLUN = 128 }},
		{"overprovision", func(c *core.Config) { c.Controller.Overprovision = 0.3 }},
		{"greediness", func(c *core.Config) { c.Controller.GCGreediness = 8 }},
		{"gc-copyback", func(c *core.Config) { c.Controller.GCCopyback = true; c.Controller.Features.Copyback = true }},
		{"interleaving", func(c *core.Config) { c.Controller.Features.Interleaving = true }},
		{"writebuffer", func(c *core.Config) { c.Controller.WriteBufferPages = 16 }},
		{"badblocks", func(c *core.Config) { c.Controller.BadBlockFraction = 0.01; c.Controller.BadBlockSeed = 3 }},
		{"open", func(c *core.Config) { c.Controller.OpenInterface = true }},
		{"queue-depth", func(c *core.Config) { c.OS.QueueDepth = 4 }},
	}

	keys := map[string]string{}
	covered := map[Kind]map[string]bool{}
	cover := func(kind Kind, ref Ref) {
		if covered[kind] == nil {
			covered[kind] = map[string]bool{}
		}
		covered[kind][ref.Name] = true
		if fb, ok := ref.Params["fallback"]; ok {
			if fbr, err := coerceRef(fb); err == nil {
				covered[kind][fbr.Name] = true
			}
		}
	}
	for _, c := range cases {
		cfg := canonBase()
		if c.mut != nil {
			c.mut(&cfg)
		}
		key, err := CanonKey(cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.label, err)
		}
		if prev, dup := keys[key]; dup {
			// "fifo explicit vs default" is the one intentional equivalence:
			// normalization maps both onto the same behavior, hence key.
			if c.label == "policy=fifo-explicit" && prev == "base" {
				continue
			}
			t.Fatalf("canonical key collision: %q and %q share\n%s", prev, c.label, key)
		}
		keys[key] = c.label

		cs, err := FromConfig(cfg)
		if err != nil {
			t.Fatalf("%s: FromConfig: %v", c.label, err)
		}
		cover(KindPolicy, cs.Policy)
		cover(KindAllocator, cs.Alloc)
		cover(KindGCPolicy, cs.GC.Policy)
		cover(KindWL, cs.WL)
		cover(KindDetector, cs.Detector)
		cover(KindMapping, cs.Mapping)
		cover(KindTiming, cs.Timing)
		cover(KindOSPolicy, cs.OS.Policy)
	}

	// Completeness: every registered component of every config-visible kind
	// must have appeared in the table above — a newly registered component
	// fails here until it gets collision coverage.
	for _, kind := range []Kind{KindPolicy, KindAllocator, KindGCPolicy, KindWL, KindDetector, KindMapping, KindTiming, KindOSPolicy} {
		for _, name := range Names(kind) {
			if !covered[kind][name] {
				t.Errorf("registered %s component %q has no canonical-key coverage; add cases varying each of its knobs", kind, name)
			}
		}
	}
}

// TestCanonKeyNormalizesDefaults: a configuration relying on runtime
// defaults and one spelling them out must share a key — that is what lets
// the compiled-in suite and a spec-driven run hit the same snapshot cache
// entries.
func TestCanonKeyNormalizesDefaults(t *testing.T) {
	implicit := canonBase()
	explicit := canonBase()
	explicit.Controller.Policy = &sched.FIFO{}
	explicit.Controller.Alloc = sched.LeastLoaded{}
	explicit.Controller.GCPolicy = gc.Greedy{}
	explicit.Controller.Detector = hotcold.None{}
	explicit.OS.Policy = &osched.FIFO{}

	k1, err := CanonKey(implicit)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CanonKey(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("defaulted and explicit configurations key differently:\n%s\n%s", k1, k2)
	}
}

// TestFromConfigResolveRoundTrip: describing a configuration and resolving
// the description must reach a fixed point — the second description equals
// the first. This is the stability property cache keys depend on.
func TestFromConfigResolveRoundTrip(t *testing.T) {
	cfg := canonBase()
	cfg.Controller.Policy = &sched.Deadline{
		ReadDeadline: 2 * sim.Millisecond, WriteDeadline: 20 * sim.Millisecond,
		Fallback: &sched.Priority{Prefer: sched.PreferWrites, UseTags: true},
	}
	cfg.Controller.Detector = hotcold.NewMBF(hotcold.MBFConfig{Filters: 6, DecayWindow: 2048})
	cfg.Controller.Mapping = controller.MapDFTL
	cfg.Controller.CMTEntries = 256
	cfg.Controller.WL = wl.DefaultConfig()
	cfg.OS.Policy = &osched.CFQ{Quantum: 6}

	first, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := first.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	second, err := FromConfig(resolved)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("describe∘resolve is not a fixed point:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// unregisteredPolicy is a policy type the registry has never heard of.
type unregisteredPolicy struct{ sched.FIFO }

// TestCanonKeyUnknownComponent: a configuration holding an unregistered
// component must be a typed error — the old reflective printer silently
// produced colliding keys here.
func TestCanonKeyUnknownComponent(t *testing.T) {
	cfg := canonBase()
	cfg.Controller.Policy = &unregisteredPolicy{}
	_, err := CanonKey(cfg)
	var uc *UnknownComponentError
	if !errors.As(err, &uc) {
		t.Fatalf("error %v, want *UnknownComponentError", err)
	}
	if uc.Kind != KindPolicy {
		t.Fatalf("kind %q, want %q", uc.Kind, KindPolicy)
	}
}
