package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// Env supplies the variables workload expressions may reference. Expressions
// are what let one spec file describe a workload for any device size: a
// count of "2*n" scales with the stack it finally runs on instead of baking
// in one geometry's page count.
type Env struct {
	// N is the stack's logical capacity in pages.
	N int64
	// PPB is the geometry's pages per erase block.
	PPB int64
	// QD is the OS queue depth of the (variant-mutated) configuration.
	QD int64
	// F is the experiment's scale factor (spec field "factor"; 0 reads as 1).
	F int64
	// I is the zero-based replica index of a repeated thread.
	I int64
}

func (e Env) lookup(name string) (int64, bool) {
	switch name {
	case "n":
		return e.N, true
	case "ppb":
		return e.PPB, true
	case "qd":
		return e.QD, true
	case "f":
		if e.F <= 0 {
			return 1, true
		}
		return e.F, true
	case "i":
		return e.I, true
	}
	return 0, false
}

// ExprError reports a malformed or unevaluable expression.
type ExprError struct {
	Expr string
	Msg  string
}

func (e *ExprError) Error() string {
	return fmt.Sprintf("spec: expression %q: %s", e.Expr, e.Msg)
}

// Eval evaluates an integer expression over the environment. The grammar is
// deliberately tiny — integer literals, the variables n, ppb, qd, f and i,
// the operators + - * / %, unary minus, and parentheses — and division is
// Go's truncated integer division evaluated left to right, so an expression
// like "n*3/4/4" computes exactly what the equivalent Go code would.
func Eval(expr string, env Env) (int64, error) {
	p := exprParser{src: expr, env: env}
	v, err := p.parseSum()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, p.errf("trailing input at offset %d", p.pos)
	}
	return v, nil
}

type exprParser struct {
	src string
	pos int
	env Env
}

func (p *exprParser) errf(format string, args ...any) error {
	return &ExprError{Expr: p.src, Msg: fmt.Sprintf(format, args...)}
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *exprParser) parseSum() (int64, error) {
	v, err := p.parseProduct()
	if err != nil {
		return 0, err
	}
	for {
		switch p.peek() {
		case '+':
			p.pos++
			w, err := p.parseProduct()
			if err != nil {
				return 0, err
			}
			v += w
		case '-':
			p.pos++
			w, err := p.parseProduct()
			if err != nil {
				return 0, err
			}
			v -= w
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseProduct() (int64, error) {
	v, err := p.parseFactor()
	if err != nil {
		return 0, err
	}
	for {
		op := p.peek()
		if op != '*' && op != '/' && op != '%' {
			return v, nil
		}
		p.pos++
		w, err := p.parseFactor()
		if err != nil {
			return 0, err
		}
		switch op {
		case '*':
			v *= w
		case '/':
			if w == 0 {
				return 0, p.errf("division by zero")
			}
			v /= w
		case '%':
			if w == 0 {
				return 0, p.errf("modulo by zero")
			}
			v %= w
		}
	}
}

func (p *exprParser) parseFactor() (int64, error) {
	switch c := p.peek(); {
	case c == '-':
		p.pos++
		v, err := p.parseFactor()
		return -v, err
	case c == '(':
		p.pos++
		v, err := p.parseSum()
		if err != nil {
			return 0, err
		}
		if p.peek() != ')' {
			return 0, p.errf("missing closing parenthesis")
		}
		p.pos++
		return v, nil
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		v, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
		if err != nil {
			return 0, p.errf("bad integer literal %q", p.src[start:p.pos])
		}
		return v, nil
	case c >= 'a' && c <= 'z':
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= 'a' && p.src[p.pos] <= 'z' {
			p.pos++
		}
		name := p.src[start:p.pos]
		v, ok := p.env.lookup(name)
		if !ok {
			return 0, p.errf("unknown variable %q (have n, ppb, qd, f, i)", name)
		}
		return v, nil
	case c == 0:
		return 0, p.errf("unexpected end of expression")
	default:
		return 0, p.errf("unexpected character %q", string(p.src[p.pos]))
	}
}

// looksLikeExpr reports whether a string parameter value should be treated
// as an expression (anything non-empty qualifies; the parser produces the
// precise error if it is not one).
func looksLikeExpr(s string) bool { return strings.TrimSpace(s) != "" }
