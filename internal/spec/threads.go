package spec

import (
	"fmt"

	"eagletree/internal/iface"
	"eagletree/internal/trace"
	"eagletree/internal/workload"
)

// Workload thread registrations. Integer-shaped parameters are declared
// TExpr, so spec files can size them relative to the stack they finally run
// on ("space": "n", "count": "2*n*f") instead of baking in one geometry.

func tagsOf(p *Params) iface.Tags {
	return iface.Tags{Priority: iface.Priority(p.Int("priority", 0))}
}

var prioParam = Param{Name: "priority", Type: TInt, Doc: "open-interface priority tag (-1 | 0 | 1)"}

func init() {
	registerGenerators()
	registerAppThreads()
}

func registerGenerators() {
	Register(Component{
		Kind: KindThread, Name: "seqwrite",
		Doc: "write [from, from+count) in ascending order",
		Params: []Param{
			{Name: "from", Type: TExpr, Doc: "first LPN"},
			{Name: "count", Type: TExpr, Doc: "pages per pass"},
			{Name: "loops", Type: TInt, Doc: "passes over the range (0 = 1)"},
			{Name: "depth", Type: TExpr, Doc: "IOs in flight"},
			prioParam,
		},
		Make: func(p *Params) (any, error) {
			return &workload.SequentialWriter{
				From:  iface.LPN(p.Int64("from", 0)),
				Count: p.Int64("count", 0),
				Loops: p.Int("loops", 0),
				Depth: int(p.Int64("depth", 32)),
				Tags:  tagsOf(p),
			}, nil
		},
	})
	Register(Component{
		Kind: KindThread, Name: "seqread",
		Doc: "read [from, from+count) in ascending order",
		Params: []Param{
			{Name: "from", Type: TExpr, Doc: "first LPN"},
			{Name: "count", Type: TExpr, Doc: "pages per pass"},
			{Name: "loops", Type: TInt, Doc: "passes over the range (0 = 1)"},
			{Name: "depth", Type: TExpr, Doc: "IOs in flight"},
			prioParam,
		},
		Make: func(p *Params) (any, error) {
			return &workload.SequentialReader{
				From:  iface.LPN(p.Int64("from", 0)),
				Count: p.Int64("count", 0),
				Loops: p.Int("loops", 0),
				Depth: int(p.Int64("depth", 32)),
				Tags:  tagsOf(p),
			}, nil
		},
	})
	Register(Component{
		Kind: KindThread, Name: "randwrite",
		Doc: "uniform random writes over [from, from+space)",
		Params: []Param{
			{Name: "from", Type: TExpr, Doc: "first LPN of the range"},
			{Name: "space", Type: TExpr, Doc: "range size in pages"},
			{Name: "count", Type: TExpr, Doc: "total writes"},
			{Name: "depth", Type: TExpr, Doc: "IOs in flight"},
			prioParam,
		},
		Make: func(p *Params) (any, error) {
			return &workload.RandomWriter{
				From:  iface.LPN(p.Int64("from", 0)),
				Space: p.Int64("space", 0),
				Count: p.Int64("count", 0),
				Depth: int(p.Int64("depth", 32)),
				Tags:  tagsOf(p),
			}, nil
		},
	})
	Register(Component{
		Kind: KindThread, Name: "randread",
		Doc: "uniform random reads over [from, from+space)",
		Params: []Param{
			{Name: "from", Type: TExpr, Doc: "first LPN of the range"},
			{Name: "space", Type: TExpr, Doc: "range size in pages"},
			{Name: "count", Type: TExpr, Doc: "total reads"},
			{Name: "depth", Type: TExpr, Doc: "IOs in flight"},
			prioParam,
		},
		Make: func(p *Params) (any, error) {
			return &workload.RandomReader{
				From:  iface.LPN(p.Int64("from", 0)),
				Space: p.Int64("space", 0),
				Count: p.Int64("count", 0),
				Depth: int(p.Int64("depth", 32)),
				Tags:  tagsOf(p),
			}, nil
		},
	})
	Register(Component{
		Kind: KindThread, Name: "zipf",
		Doc: "Zipf-skewed writes (hot/cold workload)",
		Params: []Param{
			{Name: "from", Type: TExpr, Doc: "first LPN of the range"},
			{Name: "space", Type: TExpr, Doc: "range size in pages"},
			{Name: "count", Type: TExpr, Doc: "total writes"},
			{Name: "exponent", Type: TFloat, Doc: "Zipf exponent (0 = 1.1)"},
			{Name: "depth", Type: TExpr, Doc: "IOs in flight"},
			{Name: "tag_temperature", Type: TBool, Doc: "publish oracle temperature tags"},
			{Name: "hot_fraction", Type: TFloat, Doc: "fraction of the space tagged hot (0 = 0.2)"},
			{Name: "scramble", Type: TBool, Doc: "permute popularity ranks over the address space"},
			prioParam,
		},
		Make: func(p *Params) (any, error) {
			return &workload.ZipfWriter{
				From:           iface.LPN(p.Int64("from", 0)),
				Space:          p.Int64("space", 0),
				Count:          p.Int64("count", 0),
				Exponent:       p.Float("exponent", 0),
				Depth:          int(p.Int64("depth", 32)),
				TagTemperature: p.Bool("tag_temperature", false),
				HotFraction:    p.Float("hot_fraction", 0),
				Scramble:       p.Bool("scramble", false),
				Tags:           tagsOf(p),
			}, nil
		},
	})
	Register(Component{
		Kind: KindThread, Name: "mix",
		Doc: "uniform read/write mix over [from, from+space)",
		Params: []Param{
			{Name: "from", Type: TExpr, Doc: "first LPN of the range"},
			{Name: "space", Type: TExpr, Doc: "range size in pages"},
			{Name: "count", Type: TExpr, Doc: "total IOs"},
			{Name: "read_fraction", Type: TFloat, Doc: "probability an IO is a read"},
			{Name: "depth", Type: TExpr, Doc: "IOs in flight"},
			prioParam,
		},
		Make: func(p *Params) (any, error) {
			tags := tagsOf(p)
			return &workload.ReadWriteMix{
				From:         iface.LPN(p.Int64("from", 0)),
				Space:        p.Int64("space", 0),
				Count:        p.Int64("count", 0),
				ReadFraction: p.Float("read_fraction", 0),
				Depth:        int(p.Int64("depth", 32)),
				ReadTags:     tags,
				WriteTags:    tags,
			}, nil
		},
	})
	Register(Component{
		Kind: KindThread, Name: "trim",
		Doc: "trim [from, from+count) sequentially",
		Params: []Param{
			{Name: "from", Type: TExpr, Doc: "first LPN"},
			{Name: "count", Type: TExpr, Doc: "pages to trim"},
			{Name: "depth", Type: TExpr, Doc: "IOs in flight"},
		},
		Make: func(p *Params) (any, error) {
			return &workload.Trimmer{
				From:  iface.LPN(p.Int64("from", 0)),
				Count: p.Int64("count", 0),
				Depth: int(p.Int64("depth", 32)),
			}, nil
		},
	})
}

func registerAppThreads() {
	Register(Component{
		Kind: KindThread, Name: "fs",
		Doc: "file-system churn: create/overwrite/delete extents",
		Params: []Param{
			{Name: "from", Type: TExpr, Doc: "first LPN of the FS space"},
			{Name: "space", Type: TExpr, Doc: "FS space in pages"},
			{Name: "ops", Type: TExpr, Doc: "total file operations"},
			{Name: "depth", Type: TExpr, Doc: "IOs in flight"},
			{Name: "mean_file_pages", Type: TExpr, Doc: "average file size in pages (0 = 16)"},
			{Name: "create_weight", Type: TInt, Doc: "op-mix weight (all zero = 4/4/1)"},
			{Name: "overwrite_weight", Type: TInt, Doc: "op-mix weight"},
			{Name: "delete_weight", Type: TInt, Doc: "op-mix weight"},
			{Name: "tag_locality", Type: TBool, Doc: "publish per-file update-locality hints"},
		},
		Make: func(p *Params) (any, error) {
			return &workload.FileSystem{
				From:            iface.LPN(p.Int64("from", 0)),
				Space:           p.Int64("space", 0),
				Ops:             p.Int64("ops", 0),
				Depth:           int(p.Int64("depth", 32)),
				MeanFilePages:   int(p.Int64("mean_file_pages", 0)),
				CreateWeight:    p.Int("create_weight", 0),
				OverwriteWeight: p.Int("overwrite_weight", 0),
				DeleteWeight:    p.Int("delete_weight", 0),
				TagLocality:     p.Bool("tag_locality", false),
			}, nil
		},
	})
	Register(Component{
		Kind: KindThread, Name: "gracejoin",
		Doc: "Grace hash join IO pattern (partition R and S, probe)",
		Params: []Param{
			{Name: "r_from", Type: TExpr, Doc: "first LPN of relation R"},
			{Name: "r_pages", Type: TExpr, Doc: "pages of R"},
			{Name: "s_from", Type: TExpr, Doc: "first LPN of relation S"},
			{Name: "s_pages", Type: TExpr, Doc: "pages of S"},
			{Name: "part_from", Type: TExpr, Doc: "first LPN of the partition area"},
			{Name: "partitions", Type: TInt, Doc: "bucket count"},
			{Name: "depth", Type: TExpr, Doc: "IOs in flight"},
		},
		Make: func(p *Params) (any, error) {
			return &workload.GraceJoin{
				RFrom:      iface.LPN(p.Int64("r_from", 0)),
				RPages:     p.Int64("r_pages", 0),
				SFrom:      iface.LPN(p.Int64("s_from", 0)),
				SPages:     p.Int64("s_pages", 0),
				PartFrom:   iface.LPN(p.Int64("part_from", 0)),
				Partitions: p.Int("partitions", 0),
				Depth:      int(p.Int64("depth", 32)),
			}, nil
		},
	})
	Register(Component{
		Kind: KindThread, Name: "lsm",
		Doc: "LSM-tree insertion IO pattern (WAL, flushes, compactions)",
		Params: []Param{
			{Name: "from", Type: TExpr, Doc: "first LPN of the tree's space"},
			{Name: "space", Type: TExpr, Doc: "space in pages"},
			{Name: "inserts", Type: TExpr, Doc: "total inserted pages"},
			{Name: "memtable_pages", Type: TExpr, Doc: "flush threshold (0 = 64)"},
			{Name: "fanout", Type: TInt, Doc: "L0 runs per compaction (0 = 4)"},
			{Name: "depth", Type: TExpr, Doc: "IOs in flight"},
			{Name: "tag_priority", Type: TBool, Doc: "mark WAL appends high priority"},
		},
		Make: func(p *Params) (any, error) {
			return &workload.LSMInsert{
				From:          iface.LPN(p.Int64("from", 0)),
				Space:         p.Int64("space", 0),
				Inserts:       p.Int64("inserts", 0),
				MemtablePages: p.Int64("memtable_pages", 0),
				Fanout:        p.Int("fanout", 0),
				Depth:         int(p.Int64("depth", 32)),
				TagPriority:   p.Bool("tag_priority", false),
			}, nil
		},
	})
	Register(Component{
		Kind: KindThread, Name: "extsort",
		Doc: "external merge sort IO pattern (run formation, merge)",
		Params: []Param{
			{Name: "from", Type: TExpr, Doc: "first LPN of the input"},
			{Name: "input_pages", Type: TExpr, Doc: "input size in pages"},
			{Name: "scratch_from", Type: TExpr, Doc: "first LPN of the scratch area"},
			{Name: "run_pages", Type: TExpr, Doc: "in-memory chunk size (0 = 64)"},
			{Name: "depth", Type: TExpr, Doc: "IOs in flight"},
		},
		Make: func(p *Params) (any, error) {
			return &workload.ExternalSort{
				From:        iface.LPN(p.Int64("from", 0)),
				InputPages:  p.Int64("input_pages", 0),
				ScratchFrom: iface.LPN(p.Int64("scratch_from", 0)),
				RunPages:    p.Int64("run_pages", 0),
				Depth:       int(p.Int64("depth", 32)),
			}, nil
		},
	})
	Register(Component{
		Kind: KindThread, Name: "replay",
		Doc: "replay a block-trace file through the stack",
		Params: []Param{
			{Name: "path", Type: TString, Doc: "trace file (.etb binary or text)"},
			{Name: "mode", Type: TString, Doc: "closed | open | dependent"},
			{Name: "time_scale", Type: TFloat, Doc: "trace time stretch for open/dependent (0 = 1)"},
			{Name: "depth", Type: TExpr, Doc: "IOs in flight (closed loop)"},
			{Name: "sha256", Type: TString, Doc: "pinned content hash of the trace; replay fails with a typed mismatch error when the file's stream differs"},
			{Name: "capture_spec", Type: TString, Doc: "canonical key of the configuration that captured the trace, when known (provenance record, not validated)"},
		},
		Make: func(p *Params) (any, error) {
			path := p.Str("path", "")
			if path == "" {
				return nil, &ParamError{Context: p.context(), Param: "path", Err: fmt.Errorf("required")}
			}
			tr, err := trace.ReadFile(path)
			if err != nil {
				return nil, &ParamError{Context: p.context(), Param: "path", Err: err}
			}
			if want := p.Str("sha256", ""); want != "" {
				got, err := tr.Hash()
				if err != nil {
					return nil, &ParamError{Context: p.context(), Param: "sha256", Err: err}
				}
				if got != want {
					return nil, &ParamError{Context: p.context(), Param: "sha256",
						Err: &trace.MismatchError{Path: path, Want: want, Got: got}}
				}
			}
			mode, err := workload.ParseReplayMode(p.Enum("mode", "closed", "closed", "open", "dependent"))
			if err != nil {
				return nil, &ParamError{Context: p.context(), Param: "mode", Err: err}
			}
			return &workload.Replay{
				Trace:     tr,
				Mode:      mode,
				TimeScale: p.Float("time_scale", 0),
				Depth:     int(p.Int64("depth", 32)),
			}, nil
		},
	})
}
