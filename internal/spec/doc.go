package spec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"eagletree/internal/workload"
)

// Version is the spec document format version this package reads and
// writes. Documents carrying any other version are a *VersionError.
const Version = 1

// VersionError reports a document written in a format version this build
// does not speak.
type VersionError struct {
	Got, Want int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("spec: document version %d, this build reads version %d", e.Got, e.Want)
}

// ErrTruncated reports a document that ends mid-value — a partial download
// or a torn write, distinguished from a well-formed document with bad
// content.
var ErrTruncated = errors.New("spec: truncated document")

// ErrExperiment wraps every structural validation failure of an Experiment
// (missing name, empty grid axes, conflicting variant declarations, ...).
var ErrExperiment = errors.New("spec: invalid experiment")

// Experiment is a complete, serializable experiment: the base
// configuration, the device preparation, the measured workload, and the
// variant grid — everything the runner needs, with no compiled code in the
// loop. The suite's E1–E13 are values of this type; user experiments are
// JSON documents decoding into it.
type Experiment struct {
	// Version is the format version; Encode stamps it, Decode checks it.
	Version int `json:"version"`
	// Name identifies the experiment in reports ("E3-gc-greediness").
	Name string `json:"name"`
	// Doc is the paper hook: one line on what the experiment shows.
	Doc string `json:"doc,omitempty"`
	// Varies names the swept dimension for index listings.
	Varies string `json:"varies,omitempty"`
	// Factor is the workload scale factor, exposed to expressions as f
	// (0 reads as 1).
	Factor int64 `json:"factor,omitempty"`
	// Base is the configuration shared by all variants.
	Base Config `json:"base"`
	// Prep declares device preparation (sequential fill + random aging).
	Prep *Prep `json:"prepare,omitempty"`
	// Workload is the measured thread list.
	Workload []Thread `json:"workload"`
	// Variants is the sweep list; empty means one unmodified run (unless
	// Grid declares the sweep instead).
	Variants []Variant `json:"variants,omitempty"`
	// Grid declares the sweep as a cross-product of axes instead of an
	// explicit variant list: every combination of one variant per axis
	// becomes one run, labels joined with "," and override sets merged.
	// Mutually exclusive with Variants; expanded by ExpandVariants.
	Grid []Axis `json:"grid,omitempty"`
	// SeriesBucket, when positive, records a completion time series per
	// variant with this bucket width.
	SeriesBucket Duration `json:"series_bucket,omitempty"`
}

// Axis is one dimension of a grid sweep: a list of variant fragments, each
// contributing its label and configuration overrides to every combination it
// participates in. Axis fragments may only set configuration paths —
// preparation and workload overrides do not compose across axes and are
// rejected at expansion.
type Axis struct {
	// Name documents the swept dimension ("prefer", "greediness").
	Name string `json:"name,omitempty"`
	// Variants are the axis's points.
	Variants []Variant `json:"variants"`
}

// ExpandVariants resolves the experiment's effective variant list: the
// explicit Variants, or the cross-product of the Grid axes (first axis
// outermost, so the last axis varies fastest). Combination labels join the
// fragments' labels with ","; their override sets merge, and two axes
// setting the same path is an error — axes must be independent dimensions.
func (e Experiment) ExpandVariants() ([]Variant, error) {
	if len(e.Grid) == 0 {
		return e.Variants, nil
	}
	if len(e.Variants) > 0 {
		return nil, fmt.Errorf("%w: %q declares both variants and grid; use one", ErrExperiment, e.Name)
	}
	combos := []Variant{{}}
	for ai, axis := range e.Grid {
		axisName := axis.Name
		if axisName == "" {
			axisName = fmt.Sprintf("#%d", ai)
		}
		if len(axis.Variants) == 0 {
			return nil, fmt.Errorf("%w: %q: grid axis %s has no variants", ErrExperiment, e.Name, axisName)
		}
		for _, f := range axis.Variants {
			if f.Prep != nil || len(f.Workload) > 0 {
				return nil, fmt.Errorf("%w: %q: grid axis %s variant %q overrides preparation or workload; axes may only set configuration paths",
					ErrExperiment, e.Name, axisName, f.Label)
			}
		}
		next := make([]Variant, 0, len(combos)*len(axis.Variants))
		for _, base := range combos {
			for _, f := range axis.Variants {
				v, err := mergeFragment(base, f)
				if err != nil {
					return nil, fmt.Errorf("spec: experiment %q: grid axis %s variant %q: %w", e.Name, axisName, f.Label, err)
				}
				next = append(next, v)
			}
		}
		combos = next
	}
	return combos, nil
}

// mergeFragment folds one axis fragment into an accumulated combination.
func mergeFragment(base, frag Variant) (Variant, error) {
	out := Variant{Label: base.Label, X: base.X}
	switch {
	case out.Label == "":
		out.Label = frag.Label
	case frag.Label != "":
		out.Label += "," + frag.Label
	}
	if frag.X != 0 {
		// Like Set paths, the x coordinate must come from exactly one axis —
		// silently keeping one of two values would mislabel every chart.
		if out.X != 0 {
			return out, fmt.Errorf("x coordinate is set by more than one axis")
		}
		out.X = frag.X
	}
	if len(base.Set)+len(frag.Set) > 0 {
		out.Set = make(map[string]any, len(base.Set)+len(frag.Set))
		for k, v := range base.Set { //lint:ordered writes land in a keyed map
			out.Set[k] = v
		}
		//lint:ordered dup check is against base.Set only; frag keys are unique
		for k, v := range frag.Set {
			if _, dup := out.Set[k]; dup {
				return out, fmt.Errorf("path %q is set by more than one axis", k)
			}
			out.Set[k] = v
		}
	}
	return out, nil
}

// Prep mirrors the experiment layer's declarative device preparation.
type Prep struct {
	// FillDepth is the IO depth of the sequential fill over the whole
	// logical space; zero disables preparation.
	FillDepth int `json:"fill_depth,omitempty"`
	// AgePasses is how many random-overwrite passes follow the fill.
	AgePasses int64 `json:"age_passes,omitempty"`
	// AgeDepth is the IO depth of the aging passes; zero means FillDepth.
	AgeDepth int `json:"age_depth,omitempty"`
}

// Thread is one measured workload thread: a registered thread type plus its
// parameters. Integer parameters may be expression strings over n (logical
// pages), ppb (pages per block), qd (queue depth), f (scale factor) and i
// (replica index).
type Thread struct {
	Type   string         `json:"type"`
	Params map[string]any `json:"params,omitempty"`
	// Repeat registers the thread this many times (expression; 0 = 1); each
	// replica resolves its parameters with its own index i.
	Repeat any `json:"repeat,omitempty"`
}

// Variant is one point of the sweep grid: a label, an optional numeric x
// coordinate, and a set of configuration overrides addressed by path.
type Variant struct {
	Label string  `json:"label"`
	X     float64 `json:"x,omitempty"`
	// Set maps configuration paths ("gc.greediness", "policy",
	// "geometry.channels") to override values; component paths take a
	// reference (string shorthand or {"name","params"}).
	Set map[string]any `json:"set,omitempty"`
	// Prep overrides the experiment's preparation for this variant; a
	// present-but-zero value disables preparation (fresh device).
	Prep *Prep `json:"prepare,omitempty"`
	// Workload replaces the experiment's measured thread list.
	Workload []Thread `json:"workload,omitempty"`
}

// Encode renders the experiment as indented, versioned JSON — the canonical
// on-disk form (golden spec files are byte-compared against it).
func Encode(e Experiment) ([]byte, error) {
	e.Version = Version
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: encode: %w", err)
	}
	return append(data, '\n'), nil
}

// Decode parses a spec document, strictly: unknown document fields, wrong
// versions and truncated input are typed errors. Component names and
// parameters are validated later, at resolve time, where the registry and
// environment are in hand.
func Decode(data []byte) (Experiment, error) {
	var e Experiment
	// Version first, leniently: a version-1 reader must not demand that a
	// version-7 document have today's shape before refusing it.
	var header struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &header); err != nil {
		return e, decodeErr(err)
	}
	if header.Version != Version {
		return e, &VersionError{Got: header.Version, Want: Version}
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return e, decodeErr(err)
	}
	return e, nil
}

// decodeErr maps encoding/json failures onto the codec's typed errors.
func decodeErr(err error) error {
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	var syn *json.SyntaxError
	if errors.As(err, &syn) && strings.Contains(syn.Error(), "unexpected end") {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if field, ok := strings.CutPrefix(err.Error(), `json: unknown field `); ok {
		return &UnknownFieldError{Context: "document", Field: strings.Trim(field, `"`)}
	}
	return fmt.Errorf("spec: decode: %w", err)
}

// ReadFile loads and decodes a spec document.
func ReadFile(path string) (Experiment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Experiment{}, err
	}
	e, err := Decode(data)
	if err != nil {
		return e, fmt.Errorf("%s: %w", path, err)
	}
	return e, nil
}

// WriteFile encodes and writes a spec document.
func WriteFile(path string, e Experiment) error {
	data, err := Encode(e)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ConfigFor returns the experiment's configuration with one variant's
// overrides applied. The base is copied; the returned Config shares no
// mutable state with it.
func (e Experiment) ConfigFor(v Variant) (Config, error) {
	cfg := e.Base
	if err := cfg.Apply(v.Set); err != nil {
		return cfg, fmt.Errorf("spec: variant %q: %w", v.Label, err)
	}
	return cfg, nil
}

// Apply writes a variant-style override set into the configuration. Paths
// are applied in sorted order (Go maps are unordered) so the result is
// deterministic even if two paths overlap. Overrides replace whole values
// (a component reference swaps the component); they never mutate maps
// shared with another Config, so applying to a shallow copy is safe.
func (c *Config) Apply(set map[string]any) error {
	paths := make([]string, 0, len(set))
	for p := range set { //lint:ordered keys are sorted before use
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := applySet(c, p, set[p]); err != nil {
			return err
		}
	}
	return nil
}

// applySet writes one override into the configuration mirror. The path set
// is explicit — the supported knobs are the API — and unknown paths are an
// *UnknownFieldError.
func applySet(c *Config, path string, val any) error {
	fail := func(err error) error {
		return fmt.Errorf("set %q: %w", path, err)
	}
	setInt := func(dst *int) error {
		n, err := coerceInt(val)
		if err != nil {
			return fail(err)
		}
		*dst = int(n)
		return nil
	}
	setInt64 := func(dst *int64) error {
		n, err := coerceInt(val)
		if err != nil {
			return fail(err)
		}
		*dst = n
		return nil
	}
	setUint64 := func(dst *uint64) error {
		n, err := coerceInt(val)
		if err != nil {
			return fail(err)
		}
		if n < 0 {
			return fail(fmt.Errorf("%d is negative", n))
		}
		*dst = uint64(n)
		return nil
	}
	setFloat := func(dst *float64) error {
		f, err := coerceFloat(val)
		if err != nil {
			return fail(err)
		}
		*dst = f
		return nil
	}
	setBool := func(dst *bool) error {
		b, ok := val.(bool)
		if !ok {
			return fail(fmt.Errorf("cannot use %T as a bool", val))
		}
		*dst = b
		return nil
	}
	setRef := func(dst *Ref) error {
		r, err := coerceRef(val)
		if err != nil {
			return fail(err)
		}
		*dst = r
		return nil
	}
	setDur := func(dst *Duration) error {
		d, err := coerceDuration(val)
		if err != nil {
			return fail(err)
		}
		*dst = Duration(d)
		return nil
	}

	switch path {
	case "geometry.channels":
		return setInt(&c.Geometry.Channels)
	case "geometry.luns_per_channel":
		return setInt(&c.Geometry.LUNsPerChannel)
	case "geometry.blocks_per_lun":
		return setInt(&c.Geometry.BlocksPerLUN)
	case "geometry.pages_per_block":
		return setInt(&c.Geometry.PagesPerBlock)
	case "geometry.page_size":
		return setInt(&c.Geometry.PageSize)
	case "timing":
		return setRef(&c.Timing)
	case "features.copyback":
		return setBool(&c.Features.Copyback)
	case "features.interleaving":
		return setBool(&c.Features.Interleaving)
	case "mapping":
		return setRef(&c.Mapping)
	case "overprovision":
		return setFloat(&c.Overprovision)
	case "gc.policy":
		return setRef(&c.GC.Policy)
	case "gc.greediness":
		return setInt(&c.GC.Greediness)
	case "gc.copyback":
		return setBool(&c.GC.Copyback)
	case "wl":
		return setRef(&c.WL)
	case "policy":
		return setRef(&c.Policy)
	case "alloc":
		return setRef(&c.Alloc)
	case "detector":
		return setRef(&c.Detector)
	case "fault":
		// Fault is a pointer so the no-fault default serializes as an absent
		// field; "none" maps back to nil for the same reason.
		r, err := coerceRef(val)
		if err != nil {
			return fail(err)
		}
		if r.None() || r.Name == "none" {
			c.Fault = nil
		} else {
			c.Fault = &r
		}
		return nil
	case "open_interface":
		return setBool(&c.OpenInterface)
	case "write_buffer.pages":
		return setInt(&c.WriteBuffer.Pages)
	case "write_buffer.latency":
		return setDur(&c.WriteBuffer.Latency)
	case "ram.bytes":
		return setInt64(&c.RAM.Bytes)
	case "ram.safe_bytes":
		return setInt64(&c.RAM.SafeBytes)
	case "bad_blocks.fraction":
		return setFloat(&c.BadBlocks.Fraction)
	case "bad_blocks.seed":
		return setUint64(&c.BadBlocks.Seed)
	case "os.policy":
		return setRef(&c.OS.Policy)
	case "os.queue_depth":
		return setInt(&c.OS.QueueDepth)
	case "seed":
		return setUint64(&c.Seed)
	case "series_bucket":
		return setDur(&c.SeriesBucket)
	case "trace_cap":
		return setInt(&c.TraceCap)
	case "lock_bus":
		return setBool(&c.LockBus)
	default:
		if ref, param, ok := componentAt(c, path); ok {
			if ref.None() {
				return fail(fmt.Errorf("no named component at %q to parameterize", path[:len(path)-len(param)-1]))
			}
			// Never mutate a params map shared with another Config: overrides
			// apply to shallow copies.
			params := make(map[string]any, len(ref.Params)+1)
			for k, v := range ref.Params { //lint:ordered writes land in a keyed map
				params[k] = v
			}
			params[param] = val
			ref.Params = params
			return nil
		}
		return &UnknownFieldError{Context: "variant set", Field: path}
	}
}

// componentAt resolves a "slot.param" override path — one parameter of the
// component currently referenced at a slot ("policy.internal",
// "mapping.cmt", "gc.policy.<param>") — to the slot's reference and the
// parameter name. Whether the component accepts the parameter is checked at
// resolve time, where the registry declaration is in hand.
func componentAt(c *Config, path string) (ref *Ref, param string, ok bool) {
	slots := []struct {
		prefix string
		ref    *Ref
	}{
		{"gc.policy.", &c.GC.Policy},
		{"os.policy.", &c.OS.Policy},
		{"timing.", &c.Timing},
		{"mapping.", &c.Mapping},
		{"wl.", &c.WL},
		{"policy.", &c.Policy},
		{"alloc.", &c.Alloc},
		{"detector.", &c.Detector},
	}
	for _, s := range slots {
		rest, found := strings.CutPrefix(path, s.prefix)
		if found && rest != "" && !strings.Contains(rest, ".") {
			return s.ref, rest, true
		}
	}
	// The fault slot is a pointer (absent by default), so it cannot sit in
	// the value-slot table above: clone before handing out a mutable
	// reference — shallow Config copies share the pointee — and materialize
	// an empty reference when absent so the caller reports "no named
	// component" instead of "unknown field".
	if rest, found := strings.CutPrefix(path, "fault."); found && rest != "" && !strings.Contains(rest, ".") {
		if c.Fault == nil {
			c.Fault = &Ref{}
		} else {
			clone := *c.Fault
			c.Fault = &clone
		}
		return c.Fault, rest, true
	}
	return nil, "", false
}

func coerceInt(v any) (int64, error) {
	switch t := v.(type) {
	case float64:
		if t != float64(int64(t)) {
			return 0, fmt.Errorf("%v is not an integer", t)
		}
		return int64(t), nil
	case int:
		return int64(t), nil
	case int64:
		return t, nil
	case uint64:
		return int64(t), nil
	default:
		return 0, fmt.Errorf("cannot use %T as an integer", v)
	}
}

func coerceFloat(v any) (float64, error) {
	switch t := v.(type) {
	case float64:
		return t, nil
	case int:
		return float64(t), nil
	case int64:
		return float64(t), nil
	default:
		return 0, fmt.Errorf("cannot use %T as a float", v)
	}
}

// MakeThread resolves one thread declaration into a live workload thread.
func MakeThread(t Thread, env Env) (workload.Thread, error) {
	v, err := Make(KindThread, Ref{Name: t.Type, Params: t.Params}, env)
	if err != nil {
		return nil, err
	}
	return v.(workload.Thread), nil
}

// RepeatCount evaluates a thread's replica count (0 or absent = 1).
func (t Thread) RepeatCount(env Env) (int, error) {
	if t.Repeat == nil {
		return 1, nil
	}
	var n int64
	switch r := t.Repeat.(type) {
	case string:
		var err error
		n, err = Eval(r, env)
		if err != nil {
			return 0, err
		}
	default:
		var err error
		n, err = coerceInt(r)
		if err != nil {
			return 0, fmt.Errorf("spec: thread %q repeat: %w", t.Type, err)
		}
	}
	if n <= 0 {
		n = 1
	}
	return int(n), nil
}

// Validate resolves everything resolvable without a live stack: the base
// configuration, every variant's configuration, and every thread type and
// parameter set (against a placeholder environment). It is the cheap,
// typed-error gate the CLIs run before committing to a simulation.
func (e Experiment) Validate() error {
	if e.Name == "" {
		return fmt.Errorf("%w: experiment has no name", ErrExperiment)
	}
	if _, err := e.Base.Resolve(); err != nil {
		return fmt.Errorf("spec: base: %w", err)
	}
	env := Env{N: 1 << 16, PPB: 32, QD: 32, F: e.Factor}
	check := func(where string, threads []Thread) error {
		for _, t := range threads {
			if _, err := t.RepeatCount(env); err != nil {
				return fmt.Errorf("spec: %s: %w", where, err)
			}
			if err := ValidateRef(KindThread, Ref{Name: t.Type, Params: t.Params}, env); err != nil {
				return fmt.Errorf("spec: %s: %w", where, err)
			}
		}
		return nil
	}
	if err := check("workload", e.Workload); err != nil {
		return err
	}
	variants, err := e.ExpandVariants()
	if err != nil {
		return err
	}
	for _, v := range variants {
		cfg, err := e.ConfigFor(v)
		if err != nil {
			return err
		}
		if _, err := cfg.Resolve(); err != nil {
			return fmt.Errorf("spec: variant %q: %w", v.Label, err)
		}
		if len(v.Workload) > 0 {
			if err := check(fmt.Sprintf("variant %q workload", v.Label), v.Workload); err != nil {
				return err
			}
		}
	}
	if len(e.Workload) == 0 {
		for _, v := range variants {
			if len(v.Workload) == 0 {
				return fmt.Errorf("%w: %q: variant %q has no workload", ErrExperiment, e.Name, v.Label)
			}
		}
		if len(variants) == 0 {
			return fmt.Errorf("%w: %q has no workload", ErrExperiment, e.Name)
		}
	}
	return nil
}
