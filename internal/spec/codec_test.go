package spec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// sampleExperiment returns a document exercising every corner of the
// format: refs with and without parameters, nested components, expressions,
// repeats, variant overrides of every flavor.
func sampleExperiment() Experiment {
	return Experiment{
		Name:   "sample",
		Doc:    "codec exercise",
		Varies: "everything",
		Factor: 2,
		Base: Config{
			Geometry:      Geometry{Channels: 2, LUNsPerChannel: 2, BlocksPerLUN: 64, PagesPerBlock: 32, PageSize: 4096},
			Timing:        NamedRef("slc"),
			Mapping:       ParamRef("dftl", map[string]any{"cmt": 512, "trans_blocks": 4}),
			Overprovision: 0.15,
			GC:            GCSpec{Policy: NamedRef("costbenefit"), Greediness: 4, Copyback: true},
			WL:            ParamRef("full", map[string]any{"check_interval": "5ms"}),
			Policy: ParamRef("deadline", map[string]any{
				"read_deadline":  "2ms",
				"write_deadline": "20ms",
				"fallback":       ParamRef("priority", map[string]any{"prefer": "reads"}),
			}),
			Alloc:         NamedRef("roundrobin"),
			Detector:      ParamRef("mbf", map[string]any{"filters": 6}),
			OpenInterface: true,
			WriteBuffer:   WriteBufferSpec{Pages: 16, Latency: Duration(5000)},
			OS:            OSSpec{Policy: ParamRef("cfq", map[string]any{"quantum": 8}), QueueDepth: 16},
			Seed:          7,
		},
		Prep: &Prep{FillDepth: 32, AgePasses: 1},
		Workload: []Thread{
			{Type: "mix", Params: map[string]any{"from": 0, "space": "n", "count": "1000*f", "read_fraction": 0.5, "depth": 16}},
			{Type: "fs", Repeat: 4, Params: map[string]any{"from": "i*(n/8)", "space": "n/8", "ops": 100, "depth": 8}},
		},
		Variants: []Variant{
			{Label: "a"},
			{Label: "b", X: 2, Set: map[string]any{"gc.greediness": 8, "policy": "fifo"}},
			{Label: "c", Prep: &Prep{}, Workload: []Thread{
				{Type: "randread", Params: map[string]any{"from": 0, "space": "n", "count": 500, "depth": 4}},
			}},
		},
	}
}

// TestCodecRoundTrip: Encode then Decode must reproduce the document, and
// re-encoding the decoded document must be byte-identical (the canonical
// form is a fixed point).
func TestCodecRoundTrip(t *testing.T) {
	e := sampleExperiment()
	data, err := Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != e.Name || got.Factor != e.Factor || len(got.Variants) != len(e.Variants) {
		t.Fatalf("decoded document lost structure: %+v", got)
	}
	again, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encoding is not a fixed point:\nfirst:  %s\nsecond: %s", data, again)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("decoded sample does not validate: %v", err)
	}
}

// TestCodecResolvesIdentically: the decoded document must resolve to the
// same live configuration as the authored one (JSON numbers arrive as
// float64, Go literals as int — the resolver must not care).
func TestCodecResolvesIdentically(t *testing.T) {
	e := sampleExperiment()
	data, err := Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Base.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Base.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	wantKey, err := CanonKey(want)
	if err != nil {
		t.Fatal(err)
	}
	haveKey, err := CanonKey(have)
	if err != nil {
		t.Fatal(err)
	}
	if wantKey != haveKey {
		t.Fatalf("authored and decoded documents resolve differently:\n%s\n%s", wantKey, haveKey)
	}
}

func TestDecodeWrongVersion(t *testing.T) {
	e := sampleExperiment()
	data, err := Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 2, 99} {
		mangled := bytes.Replace(data, []byte(`"version": 1`), []byte(fmt.Sprintf(`"version": %d`, v)), 1)
		_, err := Decode(mangled)
		var ve *VersionError
		if !errors.As(err, &ve) {
			t.Fatalf("version %d: error %v, want *VersionError", v, err)
		}
		if ve.Got != v || ve.Want != Version {
			t.Fatalf("version error %+v, want Got=%d Want=%d", ve, v, Version)
		}
	}
}

func TestDecodeUnknownField(t *testing.T) {
	data := []byte(`{"version": 1, "name": "x", "base": {"geometry": {"channels": 1}}, "wobble": 3}`)
	_, err := Decode(data)
	var ue *UnknownFieldError
	if !errors.As(err, &ue) {
		t.Fatalf("error %v, want *UnknownFieldError", err)
	}
	if ue.Field != "wobble" {
		t.Fatalf("unknown field %q, want wobble", ue.Field)
	}
}

// TestDecodeTruncated: every prefix of a valid document must fail with
// ErrTruncated (or, for a prefix that happens to be valid JSON — like the
// empty object prefix "{}" region — a version error), never succeed and
// never panic.
func TestDecodeTruncated(t *testing.T) {
	data, err := Encode(sampleExperiment())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		cut := 1 + rng.Intn(len(data)-2)
		_, err := Decode(data[:cut])
		if err == nil {
			t.Fatalf("decoding %d-byte prefix succeeded", cut)
		}
		var ve *VersionError
		if !errors.Is(err, ErrTruncated) && !errors.As(err, &ve) {
			t.Fatalf("prefix %d: error %v, want ErrTruncated (or VersionError for short valid prefixes)", cut, err)
		}
	}
}

// TestDecodeGarbage: random corruption must produce an error, never a
// panic; flipped bytes that keep the JSON valid may still decode.
func TestDecodeGarbage(t *testing.T) {
	data, err := Encode(sampleExperiment())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		mangled := append([]byte(nil), data...)
		for i := 0; i < 3; i++ {
			mangled[rng.Intn(len(mangled))] = byte(rng.Intn(256))
		}
		e, err := Decode(mangled)
		if err == nil {
			// Valid JSON after corruption: it must still validate or fail
			// with a typed resolve error, not crash.
			_ = e.Validate()
		}
	}
}

func TestValidateUnknownComponent(t *testing.T) {
	e := sampleExperiment()
	e.Base.Policy = NamedRef("quantum-scheduler")
	err := e.Validate()
	var uc *UnknownComponentError
	if !errors.As(err, &uc) {
		t.Fatalf("error %v, want *UnknownComponentError", err)
	}
	if uc.Kind != KindPolicy || uc.Name != "quantum-scheduler" {
		t.Fatalf("unexpected error detail: %+v", uc)
	}
}

func TestValidateUnknownParam(t *testing.T) {
	e := sampleExperiment()
	e.Base.Detector = ParamRef("mbf", map[string]any{"filterz": 4})
	err := e.Validate()
	var ue *UnknownFieldError
	if !errors.As(err, &ue) {
		t.Fatalf("error %v, want *UnknownFieldError", err)
	}
	if ue.Field != "filterz" {
		t.Fatalf("field %q, want filterz", ue.Field)
	}
}

func TestValidateBadParamType(t *testing.T) {
	e := sampleExperiment()
	e.Workload = []Thread{{Type: "randwrite", Params: map[string]any{"count": true}}}
	err := e.Validate()
	var pe *ParamError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v, want *ParamError", err)
	}
}

func TestValidateBadExpression(t *testing.T) {
	e := sampleExperiment()
	e.Workload = []Thread{{Type: "randwrite", Params: map[string]any{"count": "2*zz"}}}
	err := e.Validate()
	var pe *ParamError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v, want *ParamError", err)
	}
	var ee *ExprError
	if !errors.As(err, &ee) {
		t.Fatalf("error %v does not wrap *ExprError", err)
	}
}

func TestValidateUnknownSetPath(t *testing.T) {
	e := sampleExperiment()
	e.Variants = append(e.Variants, Variant{Label: "bad", Set: map[string]any{"gc.eagerness": 3}})
	err := e.Validate()
	var ue *UnknownFieldError
	if !errors.As(err, &ue) {
		t.Fatalf("error %v, want *UnknownFieldError", err)
	}
	if ue.Field != "gc.eagerness" {
		t.Fatalf("field %q, want gc.eagerness", ue.Field)
	}
}

// TestRefShorthand: a bare string and the object form decode to the same
// reference; parameterless refs marshal back to the shorthand.
func TestRefShorthand(t *testing.T) {
	var r Ref
	if err := json.Unmarshal([]byte(`"fifo"`), &r); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, Ref{Name: "fifo"}) {
		t.Fatalf("shorthand decoded to %+v", r)
	}
	var r2 Ref
	if err := json.Unmarshal([]byte(`{"name":"fifo"}`), &r2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, r2) {
		t.Fatalf("object form decoded to %+v", r2)
	}
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `"fifo"` {
		t.Fatalf("parameterless ref marshaled to %s", out)
	}
}

func TestDurationForms(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"2ms"`), &d); err != nil {
		t.Fatal(err)
	}
	if d.D() != 2_000_000 {
		t.Fatalf(`"2ms" = %d ns`, d)
	}
	if err := json.Unmarshal([]byte(`1500`), &d); err != nil {
		t.Fatal(err)
	}
	if d.D() != 1500 {
		t.Fatalf("1500 = %d ns", d)
	}
	out, err := json.Marshal(Duration(2_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `"2ms"` {
		t.Fatalf("2ms marshaled to %s", out)
	}
}
