package spec

import (
	"errors"
	"strings"
	"testing"
)

func gridBase() Config {
	return Config{
		Geometry: Geometry{Channels: 1, LUNsPerChannel: 2, BlocksPerLUN: 32, PagesPerBlock: 16, PageSize: 4096},
		Policy:   ParamRef("priority", map[string]any{"prefer": "none"}),
	}
}

// TestGridExpansion: axes cross-product in order (first axis outermost),
// labels join with ",", and override sets merge.
func TestGridExpansion(t *testing.T) {
	e := Experiment{
		Name: "grid",
		Base: gridBase(),
		Workload: []Thread{
			{Type: "randwrite", Params: map[string]any{"from": 0, "space": "n", "count": 10, "depth": 4}},
		},
		Grid: []Axis{
			{Name: "greediness", Variants: []Variant{
				{Label: "g=1", X: 1, Set: map[string]any{"gc.greediness": 1}},
				{Label: "g=4", X: 4, Set: map[string]any{"gc.greediness": 4}},
			}},
			{Name: "internal", Variants: []Variant{
				{Label: "internal=equal", Set: map[string]any{"policy.internal": "equal"}},
				{Label: "internal=last", Set: map[string]any{"policy.internal": "last"}},
				{Label: "internal=first", Set: map[string]any{"policy.internal": "first"}},
			}},
		},
	}
	variants, err := e.ExpandVariants()
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 6 {
		t.Fatalf("expanded %d variants, want 6", len(variants))
	}
	wantLabels := []string{
		"g=1,internal=equal", "g=1,internal=last", "g=1,internal=first",
		"g=4,internal=equal", "g=4,internal=last", "g=4,internal=first",
	}
	for i, v := range variants {
		if v.Label != wantLabels[i] {
			t.Errorf("variant %d label %q, want %q", i, v.Label, wantLabels[i])
		}
		if len(v.Set) != 2 {
			t.Errorf("variant %d merged %d overrides, want 2: %v", i, len(v.Set), v.Set)
		}
	}
	if variants[0].X != 1 || variants[3].X != 4 {
		t.Errorf("combination X not taken from the axis fragment: %v, %v", variants[0].X, variants[3].X)
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("grid document does not validate: %v", err)
	}
}

// TestGridParamPathOverride: a "slot.param" path overrides one parameter of
// the component currently referenced at the slot, without mutating the
// shared base params map.
func TestGridParamPathOverride(t *testing.T) {
	base := gridBase()
	cfg := base
	if err := cfg.Apply(map[string]any{"policy.internal": "last"}); err != nil {
		t.Fatal(err)
	}
	if got := cfg.Policy.Params["internal"]; got != "last" {
		t.Fatalf("policy.internal not applied: %v", cfg.Policy.Params)
	}
	if got := cfg.Policy.Params["prefer"]; got != "none" {
		t.Fatalf("existing params lost: %v", cfg.Policy.Params)
	}
	if _, leaked := base.Policy.Params["internal"]; leaked {
		t.Fatal("override mutated the shared base params map")
	}
	if _, err := cfg.Resolve(); err != nil {
		t.Fatalf("overridden config does not resolve: %v", err)
	}
}

// TestGridParamPathErrors: parameterizing an empty slot fails, an unknown
// parameter name surfaces as the registry's typed error at resolve time, and
// a path that names no slot stays an UnknownFieldError.
func TestGridParamPathErrors(t *testing.T) {
	cfg := gridBase()
	cfg.Detector = Ref{}
	if err := cfg.Apply(map[string]any{"detector.filters": 4}); err == nil ||
		!strings.Contains(err.Error(), "no named component") {
		t.Fatalf("parameterizing an empty slot: err = %v", err)
	}

	cfg = gridBase()
	if err := cfg.Apply(map[string]any{"policy.bogus": 1}); err != nil {
		t.Fatalf("apply stage rejected the path early: %v", err)
	}
	var ufe *UnknownFieldError
	if _, err := cfg.Resolve(); !errors.As(err, &ufe) {
		t.Fatalf("unknown component parameter: err = %v, want *UnknownFieldError", err)
	}

	cfg = gridBase()
	var ufe2 *UnknownFieldError
	if err := cfg.Apply(map[string]any{"nonsense.param": 1}); !errors.As(err, &ufe2) {
		t.Fatalf("unknown slot path: err = %v, want *UnknownFieldError", err)
	}
}

// TestGridRejectsConflicts: two axes setting the same path, an axis variant
// carrying a workload or preparation override, and mixing grid with an
// explicit variant list are all errors.
func TestGridRejectsConflicts(t *testing.T) {
	wl := []Thread{{Type: "randwrite", Params: map[string]any{"from": 0, "space": "n", "count": 10, "depth": 4}}}
	overlap := Experiment{
		Name: "overlap", Base: gridBase(), Workload: wl,
		Grid: []Axis{
			{Variants: []Variant{{Label: "a", Set: map[string]any{"gc.greediness": 1}}}},
			{Variants: []Variant{{Label: "b", Set: map[string]any{"gc.greediness": 2}}}},
		},
	}
	if _, err := overlap.ExpandVariants(); err == nil || !strings.Contains(err.Error(), "more than one axis") {
		t.Fatalf("overlapping axes: err = %v", err)
	}

	workload := Experiment{
		Name: "axis-workload", Base: gridBase(), Workload: wl,
		Grid: []Axis{{Variants: []Variant{{Label: "a", Workload: wl}}}},
	}
	if _, err := workload.ExpandVariants(); err == nil || !strings.Contains(err.Error(), "configuration paths") {
		t.Fatalf("axis workload override: err = %v", err)
	}

	mixed := Experiment{
		Name: "mixed", Base: gridBase(), Workload: wl,
		Variants: []Variant{{Label: "v"}},
		Grid:     []Axis{{Variants: []Variant{{Label: "a"}}}},
	}
	if _, err := mixed.ExpandVariants(); err == nil || !strings.Contains(err.Error(), "both variants and grid") {
		t.Fatalf("variants+grid: err = %v", err)
	}

	empty := Experiment{
		Name: "empty-axis", Base: gridBase(), Workload: wl,
		Grid: []Axis{{Name: "hollow"}},
	}
	if _, err := empty.ExpandVariants(); err == nil || !strings.Contains(err.Error(), "no variants") {
		t.Fatalf("empty axis: err = %v", err)
	}

	xClash := Experiment{
		Name: "x-clash", Base: gridBase(), Workload: wl,
		Grid: []Axis{
			{Variants: []Variant{{Label: "a", X: 1, Set: map[string]any{"gc.greediness": 1}}}},
			{Variants: []Variant{{Label: "b", X: 2, Set: map[string]any{"os.queue_depth": 8}}}},
		},
	}
	if _, err := xClash.ExpandVariants(); err == nil || !strings.Contains(err.Error(), "more than one axis") {
		t.Fatalf("two axes setting x: err = %v", err)
	}
}

// TestGridCodecRoundTrip: grid documents survive the codec with the grid
// intact (not pre-expanded), so the on-disk form stays the authored one.
func TestGridCodecRoundTrip(t *testing.T) {
	e := Experiment{
		Name: "grid-codec", Base: gridBase(),
		Workload: []Thread{{Type: "randwrite", Params: map[string]any{"from": 0, "space": "n", "count": 10, "depth": 4}}},
		Grid: []Axis{
			{Name: "axis", Variants: []Variant{
				{Label: "g=1", Set: map[string]any{"gc.greediness": 1}},
				{Label: "g=2", Set: map[string]any{"gc.greediness": 2}},
			}},
		},
	}
	data, err := Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Grid) != 1 || len(got.Grid[0].Variants) != 2 || len(got.Variants) != 0 {
		t.Fatalf("grid lost in round trip: %+v", got)
	}
	again, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatalf("re-encoding is not a fixed point:\nfirst:  %s\nsecond: %s", data, again)
	}
}
