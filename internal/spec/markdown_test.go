package spec

import (
	"strings"
	"testing"
)

// TestMarkdownCoversEveryRegisteredKind: kindSections is a hand-ordered
// list, so a newly introduced component kind would silently fall out of the
// generated SPEC.md (as the fault kind once did). Every kind with at least
// one registered component must have a section, and every registered
// component must appear in the rendered page.
func TestMarkdownCoversEveryRegisteredKind(t *testing.T) {
	sectioned := make(map[Kind]bool, len(kindSections))
	for _, sec := range kindSections {
		if sectioned[sec.Kind] {
			t.Errorf("kind %q has two sections", sec.Kind)
		}
		sectioned[sec.Kind] = true
	}
	regMu.RLock()
	kinds := make([]Kind, 0, len(regOrder))
	for kind := range regOrder {
		kinds = append(kinds, kind)
	}
	regMu.RUnlock()
	page := Markdown()
	for _, kind := range kinds {
		if !sectioned[kind] {
			t.Errorf("registered kind %q has no kindSections entry; SPEC.md omits it", kind)
			continue
		}
		for _, name := range Names(kind) {
			if !strings.Contains(page, "### `"+name+"`") {
				t.Errorf("%s component %q missing from generated markdown", kind, name)
			}
		}
	}
}
