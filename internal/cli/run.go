package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"eagletree/internal/core"
	"eagletree/internal/experiment"
	"eagletree/internal/sim"
	"eagletree/internal/snapshot"
	"eagletree/internal/spec"
	"eagletree/internal/trace"
	"eagletree/internal/workload"
)

// workloadFlags shape the measured workload of run/record/replay.
type workloadFlags struct {
	workload *string
	count    *int64
	depth    *int
	readFrac *float64
	oracle   *bool
	prepare  *bool
}

func addWorkloadFlags(fs *flag.FlagSet) *workloadFlags {
	w := &workloadFlags{}
	w.workload = fs.String("workload", "randwrite",
		"workload thread type: "+kindHelp(spec.KindThread)+" — parameters as name:key=val,… (see SPEC.md)")
	w.count = fs.Int64("count", 10000, "workload IO count (ops for fs, inserts for lsm)")
	w.depth = fs.Int("depth", 32, "workload IO depth")
	w.readFrac = fs.Float64("read-frac", 0.5, "read fraction for -workload mix")
	w.oracle = fs.Bool("oracle-temp", false, "zipf workload publishes oracle temperature tags (needs -open)")
	w.prepare = fs.Bool("prepare", false, "prepare the device first (sequential fill + random overwrite), measure only the workload")
	return w
}

// reportFlags shape what a single run prints.
type reportFlags struct {
	series *bool
	mem    *bool
	traceN *int
}

func addReportFlags(fs *flag.FlagSet) *reportFlags {
	r := &reportFlags{}
	r.series = fs.Bool("series", false, "print the completion time series sparkline")
	r.mem = fs.Bool("mem", false, "print the controller memory report")
	r.traceN = fs.Int("trace", 0, "record an IO trace and print its last N events")
	return r
}

// buildDocument renders the flag selection as a single-run experiment
// document — the same document -dump-spec writes and `eagletree spec` runs,
// so the flag mode and the document mode cannot drift: the flags ARE a
// document.
func buildDocument(cfgF *configFlags, wlF *workloadFlags, repF *reportFlags, thread *spec.Thread) (spec.Experiment, error) {
	base := cfgF.configSpec()
	if *repF.series {
		base.SeriesBucket = spec.Duration(10 * sim.Millisecond)
	}
	if *repF.traceN > 0 {
		base.TraceCap = *repF.traceN
	}
	doc := spec.Experiment{
		Doc:  "dumped from eagletree command-line flags",
		Base: base,
	}
	if thread != nil {
		doc.Name = "cli-replay"
		doc.Workload = []spec.Thread{*thread}
	} else {
		t, name, err := flagThread(base, wlF)
		if err != nil {
			return doc, err
		}
		doc.Name = "cli-" + name
		doc.Workload = []spec.Thread{t}
	}
	if *wlF.prepare {
		doc.Prep = &spec.Prep{FillDepth: 32, AgePasses: 1}
	}
	if err := doc.Validate(); err != nil {
		return doc, err
	}
	return doc, nil
}

// flagThread builds the workload thread declaration from the sugar flags
// (-count, -depth, -read-frac, …) plus any name:key=val parameters, which
// override the sugar. Sizes the flag mode derives from device capacity are
// written as expressions over n, so a dumped document stays meaningful if
// its geometry is edited later.
func flagThread(base spec.Config, wlF *workloadFlags) (spec.Thread, string, error) {
	sel := *wlF.workload
	name, _, _ := strings.Cut(sel, ":")
	if _, err := spec.Lookup(spec.KindThread, name); err != nil {
		return spec.Thread{}, "", err
	}

	// The flag mode caps sequential passes at the device's logical capacity;
	// resolve n once to preserve that exact arithmetic in the document. The
	// probe stack is the one authoritative source of exported capacity (the
	// block manager's data pages net of reserved translation blocks and bad
	// blocks, scaled by overprovisioning) — building it once per invocation
	// beats duplicating that derivation here.
	cfg, err := base.Resolve()
	if err != nil {
		return spec.Thread{}, "", err
	}
	probe, err := core.New(cfg)
	if err != nil {
		return spec.Thread{}, "", err
	}
	n := int64(probe.LogicalPages())

	count, depth := *wlF.count, *wlF.depth
	open := base.OpenInterface
	var params map[string]any
	switch name {
	case "seqwrite", "seqread":
		cnt := any(count)
		if count >= n {
			cnt = "n"
		}
		params = map[string]any{"from": 0, "count": cnt, "depth": depth}
	case "randread", "randwrite":
		params = map[string]any{"from": 0, "space": "n", "count": count, "depth": depth}
	case "zipf":
		params = map[string]any{"from": 0, "space": "n", "count": count, "depth": depth,
			"tag_temperature": *wlF.oracle, "hot_fraction": 0.2}
	case "mix":
		params = map[string]any{"from": 0, "space": "n", "count": count,
			"read_fraction": *wlF.readFrac, "depth": depth}
	case "fs":
		params = map[string]any{"from": 0, "space": "n", "ops": count, "depth": depth,
			"tag_locality": open}
	case "gracejoin":
		params = map[string]any{"r_from": 0, "r_pages": "n/8", "s_from": "n/8", "s_pages": "2*(n/8)",
			"part_from": "3*(n/8)", "partitions": 8, "depth": depth}
	case "lsm":
		params = map[string]any{"from": 0, "space": "n", "inserts": count, "depth": depth,
			"tag_priority": open}
	case "extsort":
		params = map[string]any{"from": 0, "input_pages": "n/3", "scratch_from": "n/3", "depth": depth}
	default:
		// A thread type the sugar flags don't know (trim, e13replay, an
		// application registration): its parameters come entirely from the
		// name:key=val syntax — automatically, straight off the registry.
		params = map[string]any{}
	}

	// Explicit name:key=val parameters override the sugar.
	ref, err := parseRef(spec.KindThread, sel)
	if err != nil {
		return spec.Thread{}, "", err
	}
	for k, v := range ref.Params { //lint:ordered writes land in a keyed map
		params[k] = v
	}
	if len(params) == 0 {
		params = nil
	}
	return spec.Thread{Type: name, Params: params}, name, nil
}

// runtimeOpts are the file-backed runtime operations a document cannot
// express: restoring a saved device state and capturing a trace.
type runtimeOpts struct {
	loadState string
	capture   *trace.Capture
}

// executeSingle drives one single-run document to completion on a live
// stack — the identical path for `run` flags, `record`, `replay` and a
// single-variant `spec FILE`, so they cannot drift — and prints the report.
func executeSingle(doc spec.Experiment, variant spec.Variant, rt runtimeOpts, repF *reportFlags, header string, stdout, stderr io.Writer) int {
	cs := doc.Base
	if err := cs.Apply(variant.Set); err != nil {
		return fail(stderr, err)
	}
	cfg, err := cs.Resolve()
	if err != nil {
		return fail(stderr, err)
	}
	if rt.capture != nil {
		cfg.OS.Capture = rt.capture
	}

	var st *core.Stack
	if rt.loadState != "" {
		ds, err := snapshot.ReadFile(rt.loadState)
		if err != nil {
			return fail(stderr, err)
		}
		st, err = core.Restore(cfg, ds)
		if err != nil {
			return fail(stderr, err)
		}
		st.MarkMeasurement()
		if rt.capture != nil {
			rt.capture.Start(st.Engine.Now())
		}
	} else {
		st, err = core.New(cfg)
		if err != nil {
			return fail(stderr, err)
		}
	}

	var hook func(*workload.Handle) *workload.Handle
	if rt.capture != nil {
		hook = func(barrier *workload.Handle) *workload.Handle {
			if barrier == nil {
				return nil
			}
			return st.Add(&workload.Func{F: func(ctx *workload.Ctx) {
				rt.capture.Start(ctx.Now())
			}}, barrier)
		}
	}
	if err := experiment.RegisterRunHook(doc, variant, st, hook); err != nil {
		return fail(stderr, err)
	}

	end := st.Run()
	if !st.Runner.Done() {
		werr := fmt.Errorf("%d threads never finished (workload deadlock)", st.Runner.Active())
		if herr := st.Controller.Health(); herr != nil {
			werr = fmt.Errorf("%d threads never finished: %w", st.Runner.Active(), herr)
		}
		return fail(stderr, werr)
	}
	fmt.Fprintln(stdout, header)
	fmt.Fprintf(stdout, "simulated %v of device time\n\n", end)
	fmt.Fprint(stdout, st.Report())
	if repF != nil && *repF.series {
		if ts := st.Stats.Series(); ts != nil {
			fmt.Fprintf(stdout, "\ncompletions over time (%d buckets):\n%s\n", ts.Len(), ts.Sparkline())
		}
	}
	if repF != nil && *repF.mem {
		fmt.Fprintf(stdout, "\ncontroller memory:\n%s", st.Controller.Memory().Report())
	}
	if repF != nil && *repF.traceN > 0 {
		tr := st.Stats.Trace()
		fmt.Fprintf(stdout, "\nIO trace (last %d of %d events):\n%s", len(tr.Events()), tr.Total(), tr.Dump())
	}
	return 0
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "eagletree:", err)
	return 1
}

// cmdRun simulates one flag-selected configuration and workload.
func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eagletree run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfgF := addConfigFlags(fs)
	wlF := addWorkloadFlags(fs)
	repF := addReportFlags(fs)
	loadState := fs.String("load-state", "", "restore a prepared device state saved by 'eagletree state save' and run the workload on it (replaces -prepare)")
	dumpSpec := fs.String("dump-spec", "", "write the flag selection as a spec document and exit; re-run it with 'eagletree spec FILE'")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := prof.start(); err != nil {
		return fail(stderr, err)
	}
	defer prof.stop(stderr)
	if fs.NArg() > 0 {
		return fail(stderr, fmt.Errorf("run takes no arguments (got %q)", fs.Arg(0)))
	}
	if *loadState != "" && *wlF.prepare {
		return fail(stderr, fmt.Errorf("-load-state already provides a prepared device; drop -prepare"))
	}
	doc, err := buildDocument(cfgF, wlF, repF, nil)
	if err != nil {
		return fail(stderr, err)
	}
	if *dumpSpec != "" {
		if *loadState != "" {
			return fail(stderr, fmt.Errorf("-load-state is a runtime file operation a spec cannot express; drop it for -dump-spec"))
		}
		if err := spec.WriteFile(*dumpSpec, doc); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "eagletree: wrote spec %q %s; run it with: eagletree spec %s\n", doc.Name, *dumpSpec, *dumpSpec)
		return 0
	}
	header := fmt.Sprintf("eagletree: run %s (%dx%d LUNs, policy=%s, qd=%d)",
		doc.Name, *cfgF.channels, *cfgF.luns, cfgF.policy.ref.Name, *cfgF.qd)
	return executeSingle(doc, spec.Variant{Label: "run"}, runtimeOpts{loadState: *loadState}, repF, header, stdout, stderr)
}

// cmdRecord is run plus trace capture: the app-level IO stream of the
// measured window lands in -o, and the command prints the trace's content
// hash and the capturing configuration's canonical key — the provenance a
// replay spec pins.
func cmdRecord(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eagletree record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfgF := addConfigFlags(fs)
	wlF := addWorkloadFlags(fs)
	repF := addReportFlags(fs)
	out := fs.String("o", "", "trace output file (.etb = binary; required)")
	loadState := fs.String("load-state", "", "restore a prepared device state and capture against it")
	specOut := fs.String("spec-out", "", "also write a ready-made replay spec pinning the trace's content hash and capture provenance")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		return fail(stderr, fmt.Errorf("record needs -o FILE for the captured trace"))
	}
	if *loadState != "" && *wlF.prepare {
		return fail(stderr, fmt.Errorf("-load-state already provides a prepared device; drop -prepare"))
	}
	doc, err := buildDocument(cfgF, wlF, repF, nil)
	if err != nil {
		return fail(stderr, err)
	}
	capture := trace.NewCapture()
	if *wlF.prepare || *loadState != "" {
		capture.Stop() // re-armed once the measured window starts
	}
	header := fmt.Sprintf("eagletree: record %s -> %s", doc.Name, *out)
	if code := executeSingle(doc, spec.Variant{Label: "run"}, runtimeOpts{loadState: *loadState, capture: capture}, repF, header, stdout, stderr); code != 0 {
		return code
	}
	tr := capture.Trace()
	if err := trace.WriteFile(*out, tr); err != nil {
		return fail(stderr, err)
	}
	hash, err := tr.Hash()
	if err != nil {
		return fail(stderr, err)
	}
	cfg, err := doc.Base.Resolve()
	if err != nil {
		return fail(stderr, err)
	}
	captureKey, err := spec.CanonKey(cfg)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "\nrecorded %d IOs spanning %v to %s\n", tr.Len(), tr.Duration(), *out)
	fmt.Fprintf(stdout, "sha256: %s\n", hash)
	if *specOut != "" {
		replayDoc := spec.Experiment{
			Name: doc.Name + "-replay",
			Doc:  "replay of " + *out + ", recorded by 'eagletree record' (provenance pinned)",
			Base: doc.Base,
			Workload: []spec.Thread{{Type: "replay", Params: map[string]any{
				"path": *out, "mode": "closed", "depth": *wlF.depth,
				"sha256": hash, "capture_spec": captureKey,
			}}},
		}
		if err := spec.WriteFile(*specOut, replayDoc); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "replay spec with pinned provenance: %s\n", *specOut)
	}
	return 0
}

// cmdReplay replays a trace file instead of a synthetic workload.
func cmdReplay(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 || len(args[0]) == 0 || args[0][0] == '-' {
		fmt.Fprintln(stderr, "usage: eagletree replay FILE [flags] (trace file first; -h lists flags)")
		return 2
	}
	file, rest := args[0], args[1:]
	fs := flag.NewFlagSet("eagletree replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfgF := addConfigFlags(fs)
	repF := addReportFlags(fs)
	mode := fs.String("mode", "closed", "trace replay pacing: closed | open | dependent")
	scale := fs.Float64("scale", 1, "trace time scale for open/dependent replay (2 = half rate, 0.5 = double rate)")
	depth := fs.Int("depth", 32, "IOs in flight (closed loop)")
	sha := fs.String("sha256", "", "pinned content hash; replay fails with a typed mismatch error when the file's stream differs")
	prepare := fs.Bool("prepare", false, "prepare the device first, measure only the replay")
	loadState := fs.String("load-state", "", "restore a prepared device state and replay against it")
	if err := fs.Parse(rest); err != nil {
		return 2
	}
	if *loadState != "" && *prepare {
		return fail(stderr, fmt.Errorf("-load-state already provides a prepared device; drop -prepare"))
	}
	params := map[string]any{"path": file, "mode": *mode, "time_scale": *scale, "depth": *depth}
	if *sha != "" {
		params["sha256"] = *sha
	}
	thread := spec.Thread{Type: "replay", Params: params}
	doc, err := buildDocument(cfgF, &workloadFlags{prepare: prepare}, repF, &thread)
	if err != nil {
		return fail(stderr, err)
	}
	header := fmt.Sprintf("eagletree: replay %s (mode=%s, scale=%g, policy=%s)", file, *mode, *scale, cfgF.policy.ref.Name)
	return executeSingle(doc, spec.Variant{Label: "run"}, runtimeOpts{loadState: *loadState}, repF, header, stdout, stderr)
}

// cmdState prepares and saves device states (state save FILE) and inspects
// saved ones (state info FILE).
func cmdState(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: eagletree state save FILE [flags] | eagletree state info FILE")
		return 2
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "save":
		return cmdStateSave(rest, stdout, stderr)
	case "info":
		if len(rest) != 1 {
			fmt.Fprintln(stderr, "usage: eagletree state info FILE")
			return 2
		}
		ds, err := snapshot.ReadFile(rest[0])
		if err != nil {
			return fail(stderr, err)
		}
		m := ds.Meta
		fmt.Fprintf(stdout, "%s: %dx%d LUNs, %d blocks/LUN x %d pages, mapping=%s, %d logical pages, seed=%d, device time %v\n",
			rest[0], m.Geometry.Channels, m.Geometry.LUNsPerChannel, m.Geometry.BlocksPerLUN,
			m.Geometry.PagesPerBlock, m.Mapping, m.LogicalPages, m.Seed, ds.Engine.Now)
		return 0
	default:
		fmt.Fprintf(stderr, "eagletree state: unknown verb %q (save | info)\n", verb)
		return 2
	}
}

// cmdStateSave prepares a device (sequential fill + one random overwrite
// pass) under the flag configuration and saves the drained stack, so whole
// sweeps can start from the identical aged device instantly.
func cmdStateSave(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 || args[0] == "" || args[0][0] == '-' {
		fmt.Fprintln(stderr, "usage: eagletree state save FILE [flags]")
		return 2
	}
	file, rest := args[0], args[1:]
	fs := flag.NewFlagSet("eagletree state save", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfgF := addConfigFlags(fs)
	if err := fs.Parse(rest); err != nil {
		return 2
	}
	cfg, err := cfgF.configSpec().Resolve()
	if err != nil {
		return fail(stderr, err)
	}
	st, err := core.New(cfg)
	if err != nil {
		return fail(stderr, err)
	}
	n := int64(st.LogicalPages())
	seq := st.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: 32})
	st.Add(&workload.RandomWriter{From: 0, Space: n, Count: n, Depth: 32}, seq)
	end := st.Run()
	ds, err := st.Snapshot()
	if err == nil {
		err = snapshot.WriteFile(file, ds)
	}
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "eagletree: prepared device (%d logical pages, %v of device time) saved to %s\n", n, end, file)
	return 0
}
