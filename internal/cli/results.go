package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"eagletree/internal/query"
	"eagletree/internal/resultstore"
)

// defaultSelect is the query projection when -select is not given: enough
// provenance to identify a row plus the headline metrics. "-select all"
// yields every stored column.
var defaultSelect = []string{
	"experiment", "commit", "seed", "label", "x",
	"throughput_iops", "write_mean_ns", "write_amp", "effective_op",
}

// defaultDiffMetrics is the regression surface 'results diff' checks when
// -metrics is not given.
var defaultDiffMetrics = []string{
	"throughput_iops", "read_mean_ns", "write_mean_ns",
	"read_p99_ns", "write_p99_ns", "write_amp", "effective_op",
}

// multiFlag collects a repeatable string flag in order.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, " && ") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// cmdResults queries a result store written by 'sweep -results': ls lists
// its segments and contents, query filters/projects/aggregates rows, diff
// compares two stored sweeps and flags regressions.
func cmdResults(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		fmt.Fprintln(stderr, "usage: eagletree results <ls|query|diff> -store DIR [flags]")
		fmt.Fprintln(stderr, "run 'eagletree results <subcommand> -h' for that subcommand's flags")
		return 2
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "ls":
		return cmdResultsLS(rest, stdout, stderr)
	case "query":
		return cmdResultsQuery(rest, stdout, stderr)
	case "diff":
		return cmdResultsDiff(rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "eagletree results: unknown subcommand %q (want ls, query or diff)\n", sub)
		return 2
	}
}

// loadRows opens the store and reads every row, canonically ordered by
// (experiment, commit, seed, index) so downstream output never depends on
// segment append order.
func loadRows(dir string, stderr io.Writer) (*query.Table, int) {
	if dir == "" {
		return nil, fail(stderr, fmt.Errorf("-store is required (the directory given to 'sweep -results')"))
	}
	st, err := resultstore.Open(dir)
	if err != nil {
		return nil, fail(stderr, err)
	}
	rows, err := st.Rows()
	if err != nil {
		return nil, fail(stderr, err)
	}
	tab, err := query.FromRows(rows).Sort([]string{"experiment", "commit", "seed", "index"})
	if err != nil {
		return nil, fail(stderr, err)
	}
	return tab, 0
}

func cmdResultsLS(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eagletree results ls", flag.ContinueOnError)
	fs.SetOutput(stderr)
	storeDir := fs.String("store", "", "result store directory")
	csv := fs.Bool("csv", false, "print CSV instead of an aligned table")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	tab, code := loadRows(*storeDir, stderr)
	if code != 0 {
		return code
	}
	// One line per stored sweep side: which experiment, under which label,
	// over which seeds, how many rows.
	g, err := tab.GroupBy([]string{"experiment", "commit"}, []query.Agg{
		{Fn: "count"},
		{Fn: "min", Col: "seed"},
		{Fn: "max", Col: "seed"},
	})
	if err != nil {
		return fail(stderr, err)
	}
	render(stdout, g, *csv)
	return 0
}

func cmdResultsQuery(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eagletree results query", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var wheres multiFlag
	var (
		storeDir = fs.String("store", "", "result store directory")
		sel      = fs.String("select", "", "comma-separated columns to print (default headline set; \"all\" = every column)")
		by       = fs.String("by", "", "comma-separated group-by key columns")
		agg      = fs.String("agg", "", "comma-separated aggregates for -by: count | mean(col) | std(col) | ci95(col) | min(col) | max(col) | sum(col)")
		sortBy   = fs.String("sort", "", "comma-separated sort columns applied to the output (prefix - for descending)")
		csv      = fs.Bool("csv", false, "print CSV instead of an aligned table")
	)
	fs.Var(&wheres, "where", "filter clause \"col OP value\" (repeatable; OP: = != < <= > >= ~)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	tab, code := loadRows(*storeDir, stderr)
	if code != 0 {
		return code
	}

	preds := make([]query.Predicate, 0, len(wheres))
	for _, w := range wheres {
		p, err := query.ParsePredicate(w)
		if err != nil {
			return fail(stderr, err)
		}
		preds = append(preds, p)
	}
	tab, err := tab.Filter(preds)
	if err != nil {
		return fail(stderr, err)
	}

	switch {
	case *by != "":
		if *agg == "" {
			return fail(stderr, fmt.Errorf("-by needs -agg (e.g. -agg 'count,mean(throughput_iops),ci95(throughput_iops)')"))
		}
		var aggs []query.Agg
		for _, a := range splitList(*agg) {
			parsed, err := query.ParseAgg(a)
			if err != nil {
				return fail(stderr, err)
			}
			aggs = append(aggs, parsed)
		}
		if tab, err = tab.GroupBy(splitList(*by), aggs); err != nil {
			return fail(stderr, err)
		}
	case *sel == "all":
		// full schema, no projection
	case *sel != "":
		if tab, err = tab.Project(splitList(*sel)); err != nil {
			return fail(stderr, err)
		}
	default:
		if tab, err = tab.Project(defaultSelect); err != nil {
			return fail(stderr, err)
		}
	}

	if *sortBy != "" {
		if tab, err = tab.Sort(splitList(*sortBy)); err != nil {
			return fail(stderr, err)
		}
	}
	render(stdout, tab, *csv)
	return 0
}

func cmdResultsDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eagletree results diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		storeDir = fs.String("store", "", "result store directory")
		a        = fs.String("a", "", "baseline side: a -label value stored in the commit column")
		b        = fs.String("b", "", "candidate side: a -label value stored in the commit column")
		metrics  = fs.String("metrics", "", "comma-separated metric columns to compare (default: "+strings.Join(defaultDiffMetrics, ",")+")")
		csv      = fs.Bool("csv", false, "print CSV instead of an aligned table")
		failOn   = fs.Bool("fail-on-regress", false, "exit 1 when any comparison regresses")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *a == "" || *b == "" {
		return fail(stderr, fmt.Errorf("diff needs both sides: -a LABEL -b LABEL"))
	}
	if *storeDir == "" {
		return fail(stderr, fmt.Errorf("-store is required (the directory given to 'sweep -results')"))
	}
	st, err := resultstore.Open(*storeDir)
	if err != nil {
		return fail(stderr, err)
	}
	rows, err := st.Rows()
	if err != nil {
		return fail(stderr, err)
	}
	ms := defaultDiffMetrics
	if *metrics != "" {
		ms = splitList(*metrics)
	}
	tbl, sum, err := query.Diff(rows, *a, *b, ms)
	if err != nil {
		return fail(stderr, err)
	}
	render(stdout, tbl, *csv)
	fmt.Fprintln(stdout, sum)
	if *failOn && sum.Regressions > 0 {
		fmt.Fprintf(stderr, "eagletree: %d regression(s) from %q to %q\n", sum.Regressions, *a, *b)
		return 1
	}
	return 0
}

func render(w io.Writer, t *query.Table, csv bool) {
	if csv {
		fmt.Fprint(w, t.CSV())
		return
	}
	fmt.Fprint(w, t.Text())
}
