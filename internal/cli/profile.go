package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags wires -cpuprofile and -memprofile into a command. The
// profiles cover the whole command — device preparation, the measured
// window, report generation — which is what performance work wants: the
// full-scale sweeps in this repo were tuned from exactly these profiles.
type profileFlags struct {
	cpu *string
	mem *string

	cpuFile *os.File
}

func addProfileFlags(fs *flag.FlagSet) *profileFlags {
	p := &profileFlags{}
	p.cpu = fs.String("cpuprofile", "", "write a CPU profile to this file (inspect with `go tool pprof`)")
	p.mem = fs.String("memprofile", "", "write an allocation profile, taken at exit, to this file")
	return p
}

// start begins CPU profiling when -cpuprofile was given. The caller must
// arrange for stop to run on every exit path (defer it right after start).
func (p *profileFlags) start() error {
	if *p.cpu == "" {
		return nil
	}
	f, err := os.Create(*p.cpu)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// stop finishes the CPU profile and writes the allocation profile. Profile
// write failures are reported but do not change the command's exit code:
// the simulation's results already printed and remain valid.
func (p *profileFlags) stop(stderr io.Writer) {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			fmt.Fprintln(stderr, "eagletree: cpuprofile:", err)
		}
		p.cpuFile = nil
	}
	if *p.mem == "" {
		return
	}
	f, err := os.Create(*p.mem)
	if err != nil {
		fmt.Fprintln(stderr, "eagletree: memprofile:", err)
		return
	}
	runtime.GC() // settle the heap so the profile shows live allocations
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		fmt.Fprintln(stderr, "eagletree: memprofile:", err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(stderr, "eagletree: memprofile:", err)
	}
}
