package cli

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eagletree/internal/spec"
)

var updateGolden = flag.Bool("update-cli-golden", false, "rewrite the CLI help golden files")

// checkGolden compares got against testdata/name, rewriting the file when the
// test binary runs with -args -update-cli-golden.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v — regenerate with -args -update-cli-golden", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s — regenerate with -args -update-cli-golden\ngot:\n%s", path, got)
	}
}

// TestRunHelpGolden pins the generated `eagletree run` help text — the
// component choices and docs rendered from the registry — to a golden file.
// Registering a new component (or editing a doc string) changes the help, so
// this test fails until the golden is regenerated with
//
//	go test ./internal/cli -run TestRunHelpGolden -args -update-cli-golden
//
// which is exactly the reminder that the CLI surface is registry-generated.
func TestRunHelpGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"run", "-h"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run -h exited %d, want 2 (flag.ErrHelp)", code)
	}
	checkGolden(t, "help-run.golden", stderr.String())
}

// TestUsageGolden pins the top-level command index, and TestSweepHelpGolden /
// TestWorkerHelpGolden pin the distributed-sweep flag surfaces, so a flag
// rename or help-text edit is a reviewed diff rather than a silent drift.
func TestUsageGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"help"}, &stdout, &stderr); code != 0 {
		t.Fatalf("help exited %d, want 0", code)
	}
	checkGolden(t, "help-usage.golden", stdout.String())
}

func TestSweepHelpGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"sweep", "-h"}, &stdout, &stderr); code != 2 {
		t.Fatalf("sweep -h exited %d, want 2 (flag.ErrHelp)", code)
	}
	checkGolden(t, "help-sweep.golden", stderr.String())
}

func TestWorkerHelpGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"worker", "-h"}, &stdout, &stderr); code != 2 {
		t.Fatalf("worker -h exited %d, want 2 (flag.ErrHelp)", code)
	}
	checkGolden(t, "help-worker.golden", stderr.String())
}

// TestResultsHelpGolden pins the result-store query surface: the query and
// diff flag sets are the public contract of the persisted-rows feature.
func TestResultsHelpGolden(t *testing.T) {
	var all bytes.Buffer
	for _, sub := range []string{"ls", "query", "diff"} {
		var stdout, stderr bytes.Buffer
		if code := Main([]string{"results", sub, "-h"}, &stdout, &stderr); code != 2 {
			t.Fatalf("results %s -h exited %d, want 2 (flag.ErrHelp)", sub, code)
		}
		all.WriteString(stderr.String())
	}
	checkGolden(t, "help-results.golden", all.String())
}

// TestRunHelpCoversRegistry: every registered component name of every kind
// the run flags expose appears in the generated help — automatically, with
// no CLI edit.
func TestRunHelpCoversRegistry(t *testing.T) {
	var stdout, stderr bytes.Buffer
	Main([]string{"run", "-h"}, &stdout, &stderr)
	help := stderr.String()
	for _, kind := range []spec.Kind{
		spec.KindPolicy, spec.KindAllocator, spec.KindGCPolicy, spec.KindWL,
		spec.KindDetector, spec.KindMapping, spec.KindTiming, spec.KindOSPolicy,
		spec.KindThread,
	} {
		for _, name := range spec.Names(kind) {
			if !strings.Contains(help, name) {
				t.Errorf("registered %s component %q missing from generated run help", kind, name)
			}
		}
	}
}

// TestSpecMarkdownFresh: the committed SPEC.md is exactly what the generator
// renders from the live registry (the CI gate regenerates and diffs; this is
// the same check as a test).
func TestSpecMarkdownFresh(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("..", "..", "SPEC.md"))
	if err != nil {
		t.Fatalf("%v — regenerate with: go run ./cmd/eagletree doc -o SPEC.md", err)
	}
	if got := spec.Markdown(); got != string(want) {
		t.Error("SPEC.md is stale — regenerate with: go run ./cmd/eagletree doc -o SPEC.md")
	}
}

// TestParseRef: the compact component syntax parses typed parameters per the
// registry declaration and rejects unknown names and fields with the spec
// package's typed errors.
func TestParseRef(t *testing.T) {
	ref, err := parseRef(spec.KindPolicy, "deadline:read_deadline=2ms,max_consecutive_overdue=4,fallback=priority")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Params["read_deadline"] != "2ms" {
		t.Errorf("duration param: %#v", ref.Params["read_deadline"])
	}
	if ref.Params["max_consecutive_overdue"] != int64(4) {
		t.Errorf("int param: %#v", ref.Params["max_consecutive_overdue"])
	}
	if _, err := parseRef(spec.KindPolicy, "nonsense"); err == nil {
		t.Error("unknown component accepted")
	}
	if _, err := parseRef(spec.KindPolicy, "priority:bogus=1"); err == nil {
		t.Error("unknown parameter accepted")
	}
	if _, err := parseRef(spec.KindThread, "randwrite:count=2*n,depth=8"); err != nil {
		t.Errorf("expression parameter rejected: %v", err)
	}

	// Enum values are checked when the component is built, not at flag parse
	// (ValidateRef never invokes side-effectful factories): a bad value still
	// fails before any simulation, at document validation.
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"run", "-policy", "priority:prefer=sideways", "-blocks", "32", "-pages", "16",
		"-dump-spec", filepath.Join(t.TempDir(), "x.json")}, &stdout, &stderr); code == 0 {
		t.Error("bad enum value survived document validation")
	} else if !strings.Contains(stderr.String(), "prefer") {
		t.Errorf("enum failure lacks context: %s", stderr.String())
	}
}

// TestOpenImpliesTagHonoring: with the open interface on, the historical
// flag semantics hold — no -policy means the tag-honoring priority policy,
// and an explicit priority policy gets use_tags defaulted on unless the user
// spelled it out.
func TestOpenImpliesTagHonoring(t *testing.T) {
	build := func(args ...string) map[string]any {
		fs := flag.NewFlagSet("t", flag.PanicOnError)
		cfgF := addConfigFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		cs := cfgF.configSpec()
		if cs.Policy.Name != "priority" {
			t.Fatalf("args %v: policy %q, want priority", args, cs.Policy.Name)
		}
		return cs.Policy.Params
	}
	if p := build("-open"); p["use_tags"] != true {
		t.Errorf("-open default policy: use_tags = %v", p["use_tags"])
	}
	if p := build("-open", "-policy", "priority:prefer=reads"); p["use_tags"] != true {
		t.Errorf("-open with explicit priority policy: use_tags = %v, want defaulted true", p["use_tags"])
	}
	if p := build("-open", "-policy", "priority:prefer=reads,use_tags=false"); p["use_tags"] != false {
		t.Errorf("explicit use_tags=false overridden: %v", p["use_tags"])
	}
}

// TestCLIDumpSpecRoundTrip: `run -dump-spec` then `spec FILE` reproduces the
// run bit for bit past the header line — by construction, since both drive
// the identical document path.
func TestCLIDumpSpecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	specFile := filepath.Join(dir, "run.json")
	flags := []string{"-blocks", "32", "-pages", "16", "-workload", "mix", "-count", "500", "-prepare"}

	var direct, dump, fromSpec bytes.Buffer
	var stderr bytes.Buffer
	if code := Main(append([]string{"run"}, flags...), &direct, &stderr); code != 0 {
		t.Fatalf("run failed (%d): %s", code, stderr.String())
	}
	if code := Main(append([]string{"run"}, append(flags, "-dump-spec", specFile)...), &dump, &stderr); code != 0 {
		t.Fatalf("dump-spec failed (%d): %s", code, stderr.String())
	}
	if code := Main([]string{"spec", specFile}, &fromSpec, &stderr); code != 0 {
		t.Fatalf("spec run failed (%d): %s", code, stderr.String())
	}
	tail := func(s string) string {
		if i := strings.IndexByte(s, '\n'); i >= 0 {
			return s[i+1:]
		}
		return s
	}
	if tail(direct.String()) != tail(fromSpec.String()) {
		t.Errorf("spec-driven run differs from flag-driven run:\nflags:\n%s\nspec:\n%s", direct.String(), fromSpec.String())
	}
}

// TestListIncludesGridCounts: the index prints expanded variant counts, so
// the E12 grid document shows its 9 combinations.
func TestListIncludesGridCounts(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("list failed: %s", stderr.String())
	}
	for _, row := range strings.Split(stdout.String(), "\n") {
		if strings.HasPrefix(row, "E12") && !strings.Contains(row, " 9 ") {
			t.Errorf("E12 grid not expanded in the index: %q", row)
		}
	}
}
