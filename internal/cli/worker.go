package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"

	"eagletree/internal/experiment"
	"eagletree/internal/fabric"
)

// cmdWorker runs one sweep-fabric worker: a process that executes variant
// leases handed to it by `eagletree sweep -distribute/-connect` over the
// NDJSON wire protocol. The default transport is stdio (the coordinator
// launches workers as subprocesses); -listen serves the same protocol over
// TCP for workers on other machines.
func cmdWorker(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eagletree worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		serve    = fs.String("serve", "stdio", "transport: stdio (coordinator subprocess) — protocol messages on stdin/stdout, logs on stderr")
		listen   = fs.String("listen", "", "serve the worker protocol on this TCP address (host:port) instead of stdio, one coordinator session at a time")
		cacheDir = fs.String("state-cache", "", "persist prepared device states under this directory, shared with other local workers")
		quiet    = fs.Bool("quiet", false, "suppress per-lease progress logs on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logf := func(format string, args ...any) { fmt.Fprintf(stderr, format+"\n", args...) }
	if *quiet {
		logf = nil
	}
	opts := fabric.WorkerOptions{Logf: logf}
	if *cacheDir != "" {
		opts.Cache = experiment.NewStateCache(*cacheDir)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		cancel()
	}()

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return fail(stderr, err)
		}
		defer ln.Close()
		go func() {
			<-ctx.Done()
			ln.Close()
		}()
		fmt.Fprintf(stderr, "eagletree worker: listening on %s\n", ln.Addr())
		for {
			conn, err := ln.Accept()
			if err != nil {
				if ctx.Err() != nil {
					return 0
				}
				return fail(stderr, err)
			}
			// One coordinator session at a time: a worker is a single
			// simulation slot, and concurrent sweeps would fight for it.
			if err := fabric.Serve(ctx, conn, conn, opts); err != nil {
				fmt.Fprintf(stderr, "eagletree worker: session: %v\n", err)
			}
			conn.Close()
		}
	}

	if *serve != "stdio" {
		return fail(stderr, fmt.Errorf("unknown transport %q (want stdio, or use -listen)", *serve))
	}
	// stdout carries the protocol; logs go to stderr only.
	if err := fabric.Serve(ctx, os.Stdin, stdout, opts); err != nil {
		return fail(stderr, err)
	}
	return 0
}
