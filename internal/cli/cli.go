// Package cli implements the eagletree subcommand binary.
//
//eagletree:canonical
package cli

import (
	"fmt"
	"io"
)

// Main dispatches one eagletree invocation; argv excludes the program name.
// It returns the process exit code instead of calling os.Exit, so shims and
// tests can drive it.
func Main(argv []string, stdout, stderr io.Writer) int {
	if len(argv) == 0 {
		usage(stderr)
		return 2
	}
	cmd, args := argv[0], argv[1:]
	switch cmd {
	case "run":
		return cmdRun(args, stdout, stderr)
	case "record":
		return cmdRecord(args, stdout, stderr)
	case "replay":
		return cmdReplay(args, stdout, stderr)
	case "state":
		return cmdState(args, stdout, stderr)
	case "sweep":
		return cmdSweep(args, stdout, stderr)
	case "worker":
		return cmdWorker(args, stdout, stderr)
	case "list":
		return cmdList(args, stdout, stderr)
	case "spec":
		return cmdSpec(args, stdout, stderr)
	case "results":
		return cmdResults(args, stdout, stderr)
	case "doc":
		return cmdDoc(args, stdout, stderr)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "eagletree: unknown command %q\n\n", cmd)
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `eagletree — explore the design space of SSD-based algorithms (PVLDB'13)

Usage: eagletree <command> [flags] [args]

Commands:
  run      simulate one configuration under one workload and print the report
  record   run and capture the app-level IO stream to a trace file
  replay   replay a captured trace file instead of a synthetic workload
  state    prepare a device and save its state (state save), or inspect one (state info)
  sweep    run predefined design-space experiments (E1–E14) or a spec file
  worker   serve sweep variant leases to a distributing coordinator (stdio or TCP)
  list     print the experiment index from the suite's spec data
  spec     run any experiment spec document (single runs and variant grids)
  results  query a result store written by 'sweep -results' (ls, query, diff)
  doc      render the component registry as the SPEC.md reference page

Component flags (-policy, -alloc, -gc, -wl, -detector, -mapping, -timing,
-faults, -os-policy) and workload types are generated from the component registry:
"name" or "name:key=val,key=val". 'eagletree doc' lists every choice and
parameter; 'eagletree <command> -h' shows a command's flags.

Examples:
  eagletree run -workload mix -count 20000 -policy deadline:read_deadline=2ms,write_deadline=20ms
  eagletree run -workload zipf -open -oracle-temp -series
  eagletree record -o fs.etb -workload fs -prepare
  eagletree replay fs.etb -mode open -policy priority:prefer=reads
  eagletree state save aged.state
  eagletree run -load-state aged.state -workload mix
  eagletree sweep -run e3,e11 -workers 4
  eagletree sweep -run e4 -scale full -distribute 4 -state-cache ~/.cache/et-states
  eagletree worker -listen :9313 & eagletree sweep -run e4 -connect localhost:9313
  eagletree spec specs/e12.json
  eagletree sweep -run e2 -seeds 7,12345 -results results/ -label HEAD
  eagletree results diff -store results/ -a main -b HEAD -fail-on-regress
  eagletree doc -o SPEC.md
`)
}
