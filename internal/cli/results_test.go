package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinySpec is a deliberately small two-variant grid: enough structure to
// exercise the result pipeline (variants, seeds, provenance) while running in
// well under a second.
const tinySpec = `{
  "version": 1,
  "name": "T1-tiny",
  "base": {
    "geometry": {"channels": 1, "luns_per_channel": 1, "blocks_per_lun": 24, "pages_per_block": 16, "page_size": 4096},
    "timing": "slc",
    "mapping": "pagemap",
    "overprovision": 0.15,
    "gc": {"policy": "greedy", "greediness": 2},
    "wl": "off",
    "policy": "fifo",
    "alloc": "leastloaded",
    "os": {"policy": "fifo", "queue_depth": 8},
    "seed": 7
  },
  "workload": [
    {"type": "randwrite", "params": {"count": "600", "depth": 8, "from": 0, "space": "n"}}
  ],
  "variants": [
    {"label": "qd=8", "x": 8},
    {"label": "qd=2", "x": 2, "set": {"os.queue_depth": 2}}
  ]
}`

func writeTinySpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tiny.json")
	if err := os.WriteFile(path, []byte(tinySpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCLI drives Main and fails the test on an unexpected exit code.
func runCLI(t *testing.T, wantCode int, args ...string) (string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := Main(args, &stdout, &stderr); code != wantCode {
		t.Fatalf("eagletree %s exited %d, want %d\nstderr:\n%s", strings.Join(args, " "), code, wantCode, stderr.String())
	}
	return stdout.String(), stderr.String()
}

// TestSweepResultsStoreAndQuery is the end-to-end pass over the new result
// pipeline: sweep two seeds into a store under two labels, then drive every
// results subcommand against it.
func TestSweepResultsStoreAndQuery(t *testing.T) {
	spec := writeTinySpec(t)
	store := filepath.Join(t.TempDir(), "results")

	sweep := func(label string) {
		runCLI(t, 0, "sweep", "-spec", spec, "-seeds", "7,12345", "-results", store,
			"-label", label, "-progress=false", "-chart=false")
	}
	sweep("main")
	sweep("candidate")

	// ls: one line per (experiment, label) side, 4 rows each (2 seeds × 2
	// variants), seed range visible.
	ls, _ := runCLI(t, 0, "results", "ls", "-store", store, "-csv")
	for _, want := range []string{
		"experiment,commit,count,min(seed),max(seed)",
		"T1-tiny,main,4,7,12345",
		"T1-tiny,candidate,4,7,12345",
	} {
		if !strings.Contains(ls, want) {
			t.Fatalf("results ls missing %q:\n%s", want, ls)
		}
	}

	// query: filter + project + deterministic bytes across invocations.
	q1, _ := runCLI(t, 0, "results", "query", "-store", store,
		"-where", "commit = main", "-where", "seed = 7",
		"-select", "experiment,label,seed,throughput_iops", "-csv")
	q2, _ := runCLI(t, 0, "results", "query", "-store", store,
		"-where", "commit = main", "-where", "seed = 7",
		"-select", "experiment,label,seed,throughput_iops", "-csv")
	if q1 != q2 {
		t.Fatal("results query is not byte-stable across invocations")
	}
	if lines := strings.Split(strings.TrimRight(q1, "\n"), "\n"); len(lines) != 3 {
		t.Fatalf("query returned %d lines, want header + 2 variants:\n%s", len(lines), q1)
	}

	// group/aggregate: replicate count per variant.
	g, _ := runCLI(t, 0, "results", "query", "-store", store,
		"-where", "commit = main", "-by", "label", "-agg", "count,mean(throughput_iops),ci95(throughput_iops)", "-csv")
	if !strings.Contains(g, "label,count,mean(throughput_iops),ci95(throughput_iops)") {
		t.Fatalf("aggregate header missing:\n%s", g)
	}
	for _, line := range strings.Split(strings.TrimRight(g, "\n"), "\n")[1:] {
		if !strings.Contains(line, ",2,") {
			t.Fatalf("each variant should have 2 replicates: %q", line)
		}
	}

	// diff: the same binary produced both sides, so the simulator's
	// determinism must show up as zero regressions — and -fail-on-regress
	// must exit 0.
	d, _ := runCLI(t, 0, "results", "diff", "-store", store, "-a", "main", "-b", "candidate", "-fail-on-regress")
	if !strings.Contains(d, "0 regressions") {
		t.Fatalf("identical sweeps must diff clean:\n%s", d)
	}
	if !strings.Contains(d, "=") {
		t.Fatalf("diff verdicts missing:\n%s", d)
	}
}

// TestSweepResultsDoesNotChangeStdout pins the satellite guarantee: adding
// -results (single seed) leaves the sweep's stdout byte-identical.
func TestSweepResultsDoesNotChangeStdout(t *testing.T) {
	spec := writeTinySpec(t)
	plain, _ := runCLI(t, 0, "sweep", "-spec", spec, "-progress=false")
	stored, _ := runCLI(t, 0, "sweep", "-spec", spec, "-progress=false",
		"-results", filepath.Join(t.TempDir(), "results"))
	if plain != stored {
		t.Fatalf("-results changed sweep stdout:\n--- plain ---\n%s\n--- stored ---\n%s", plain, stored)
	}
	// A single explicit seed equal to the document's seed is also identical:
	// no replication summary, same rendering.
	seeded, _ := runCLI(t, 0, "sweep", "-spec", spec, "-progress=false", "-seeds", "7")
	if plain != seeded {
		t.Fatalf("-seeds 7 (the document seed) changed sweep stdout:\n%s", seeded)
	}
}

// TestSweepMultiSeedPrintsReplicationSummary: more than one seed appends the
// CI table after the per-seed results.
func TestSweepMultiSeedPrintsReplicationSummary(t *testing.T) {
	spec := writeTinySpec(t)
	out, _ := runCLI(t, 0, "sweep", "-spec", spec, "-progress=false", "-chart=false", "-seeds", "7,12345")
	if !strings.Contains(out, "replication summary (mean and 95% CI half-width across seeds):") {
		t.Fatalf("missing replication summary:\n%s", out)
	}
	if !strings.Contains(out, "ci95(throughput_iops)") {
		t.Fatalf("missing CI column:\n%s", out)
	}
}

func TestSweepSeedsFlagErrors(t *testing.T) {
	spec := writeTinySpec(t)
	for _, seeds := range []string{"x", "0", "7,7"} {
		var stdout, stderr bytes.Buffer
		if code := Main([]string{"sweep", "-spec", spec, "-seeds", seeds}, &stdout, &stderr); code == 0 {
			t.Fatalf("-seeds %s should fail", seeds)
		}
	}
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"sweep", "-spec", spec, "-label", "x"}, &stdout, &stderr); code == 0 {
		t.Fatal("-label without -results should fail")
	}
}

func TestResultsBadArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"results"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bare results exited %d, want 2", code)
	}
	stderr.Reset()
	if code := Main([]string{"results", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown subcommand exited %d, want 2", code)
	}
	stderr.Reset()
	if code := Main([]string{"results", "query"}, &stdout, &stderr); code == 0 {
		t.Fatal("query without -store should fail")
	}
	stderr.Reset()
	if code := Main([]string{"results", "diff", "-store", "x"}, &stdout, &stderr); code == 0 {
		t.Fatal("diff without sides should fail")
	}
}
