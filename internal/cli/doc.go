package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"eagletree/internal/spec"
)

// cmdDoc renders the component registry — every kind, component and typed
// parameter — as the SPEC.md reference page. The output is deterministic, so
// CI regenerates it and diffs against the committed file: SPEC.md can never
// silently drift from the code, the way a hand-maintained component list
// does.
func cmdDoc(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eagletree doc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write to this file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	md := spec.Markdown()
	if *out == "" {
		fmt.Fprint(stdout, md)
		return 0
	}
	if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "eagletree: wrote component reference to %s\n", *out)
	return 0
}
