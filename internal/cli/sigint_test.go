package cli

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"eagletree/internal/controller"
	"eagletree/internal/core"
	"eagletree/internal/experiment"
	"eagletree/internal/flash"
	"eagletree/internal/osched"
	"eagletree/internal/workload"
)

// sigintChildMarker is printed by the child once its hanging variant is
// running, so the parent knows signals will land inside runDefinitions.
const sigintChildMarker = "SIGINT-CHILD-READY"

// runSigintChild drives runDefinitions over a variant that blocks forever in
// its preparation hook — a variant that can never drain, so only the
// second-interrupt hard exit can end the process.
func runSigintChild() {
	def := experiment.Definition{
		Name: "hang",
		Base: func() core.Config {
			return core.Config{
				Controller: controller.Config{
					Geometry:      flash.Geometry{Channels: 1, LUNsPerChannel: 1, BlocksPerLUN: 16, PagesPerBlock: 8, PageSize: 4096},
					Mapping:       controller.MapPageRAM,
					Overprovision: 0.15,
					GCGreediness:  2,
					WL:            controller.WLOff(),
				},
				OS:   osched.Config{QueueDepth: 8},
				Seed: 1,
			}
		},
		Variants: []experiment.Variant{{
			Label: "hang",
			Prepare: func(s *core.Stack) []*workload.Handle {
				fmt.Fprintln(os.Stderr, sigintChildMarker)
				select {}
			},
		}},
		Workload: func(s *core.Stack, after *workload.Handle) {},
	}
	no := false
	out := &sweepOutput{csv: &no, chart: &no, timeline: &no}
	os.Exit(runDefinitions([]experiment.Definition{def}, experiment.Options{Workers: 1}, out, false, os.Stdout, os.Stderr))
}

// TestSweepSecondInterruptHardExits re-execs the test binary into a sweep
// whose only variant hangs forever, sends it two interrupts, and asserts the
// process hard-exits with code 130: the first ^C cancels gracefully (useless
// against a wedged variant), the second must always get the user their shell
// back.
func TestSweepSecondInterruptHardExits(t *testing.T) {
	if os.Getenv("EAGLETREE_SIGINT_CHILD") == "1" {
		runSigintChild()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestSweepSecondInterruptHardExits$")
	cmd.Env = append(os.Environ(), "EAGLETREE_SIGINT_CHILD=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	ready := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if strings.Contains(sc.Text(), sigintChildMarker) {
				ready <- nil
				break
			}
		}
		if err := sc.Err(); err != nil {
			ready <- err
		}
		// Keep draining so the child never blocks on a full stderr pipe.
		for sc.Scan() {
		}
	}()
	select {
	case err := <-ready:
		if err != nil {
			t.Fatalf("reading child stderr: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("child never reported its hanging variant as running")
	}

	// Two interrupts, spaced so both are delivered rather than coalesced.
	// The child's variant ignores the first (it cannot drain); the second
	// must hard-exit. Keep nudging in case a signal lands before the
	// handler is installed.
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	deadline := time.After(30 * time.Second)
	for {
		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			break // process already gone
		}
		select {
		case err := <-waitErr:
			var ee *exec.ExitError
			if !errors.As(err, &ee) {
				t.Fatalf("child exit: %v, want an exit error with code 130", err)
			}
			if code := ee.ExitCode(); code != 130 {
				t.Fatalf("child exited %d, want 130", code)
			}
			return
		case <-deadline:
			t.Fatal("child survived repeated interrupts; second ^C must hard-exit")
		case <-time.After(200 * time.Millisecond):
		}
	}
	if err := <-waitErr; err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 130 {
			t.Fatalf("child exit: %v, want code 130", err)
		}
	}
}
