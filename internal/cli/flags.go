// Package cli implements the eagletree command: one subcommand binary —
// run, sweep, spec, record, replay, state, list, doc — whose component
// flags, enumerated choices and help text are generated from the component
// registry (spec.Catalogue). A newly registered policy, allocator, detector
// or workload thread type surfaces in the CLI (and in SPEC.md) with no CLI
// change at all.
package cli

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"eagletree/internal/spec"
)

// refValue is a flag whose value is a component reference in the CLI's
// compact syntax: a registered name, optionally followed by typed
// parameters — "deadline:read_deadline=2ms,write_deadline=20ms". Parameter
// values are parsed against the registry declaration (ints, floats, bools,
// durations, expressions; integer lists separate elements with ';'), and
// the whole reference is validated at parse time, so typos fail before any
// simulation starts.
type refValue struct {
	kind spec.Kind
	ref  spec.Ref
	set  bool
}

func (r *refValue) String() string {
	if r == nil || r.ref.None() {
		return ""
	}
	if len(r.ref.Params) == 0 {
		return r.ref.Name
	}
	return r.ref.Name + ":…"
}

func (r *refValue) Set(s string) error {
	ref, err := parseRef(r.kind, s)
	if err != nil {
		return err
	}
	r.ref = ref
	r.set = true
	return nil
}

// parseRef parses "name" or "name:key=val,key=val" into a validated
// reference of the given kind.
func parseRef(kind spec.Kind, s string) (spec.Ref, error) {
	name, rest, hasParams := strings.Cut(s, ":")
	if name == "" {
		return spec.Ref{}, fmt.Errorf("empty %s component name (choices: %s)", kind, strings.Join(spec.Names(kind), " | "))
	}
	c, err := spec.Lookup(kind, name)
	if err != nil {
		return spec.Ref{}, err
	}
	ref := spec.Ref{Name: name}
	if hasParams && rest != "" {
		ref.Params = map[string]any{}
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok || k == "" {
				return spec.Ref{}, fmt.Errorf("%s %q: parameter %q is not key=value", kind, name, kv)
			}
			val, err := parseParamValue(c, k, v)
			if err != nil {
				return spec.Ref{}, fmt.Errorf("%s %q: parameter %q: %w", kind, name, k, err)
			}
			ref.Params[k] = val
		}
	}
	if err := spec.ValidateRef(kind, ref, parseEnv()); err != nil {
		return spec.Ref{}, err
	}
	return ref, nil
}

// parseEnv is a plausible placeholder environment for validating expression
// parameters at flag-parse time; the real stack environment applies at run.
func parseEnv() spec.Env { return spec.Env{N: 1 << 16, PPB: 32, QD: 32, F: 1} }

// parseParamValue converts one flag-syntax parameter value to the declared
// type. Unknown parameter names pass through as strings so ValidateRef
// reports them with its typed UnknownFieldError.
func parseParamValue(c *spec.Component, name, raw string) (any, error) {
	var decl *spec.Param
	for i := range c.Params {
		if c.Params[i].Name == name {
			decl = &c.Params[i]
			break
		}
	}
	if decl == nil {
		return raw, nil
	}
	switch decl.Type {
	case spec.TInt:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%q is not an integer", raw)
		}
		return n, nil
	case spec.TExpr:
		if n, err := strconv.ParseInt(raw, 10, 64); err == nil {
			return n, nil
		}
		return raw, nil // expression string; ValidateRef checks it
	case spec.TFloat:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("%q is not a number", raw)
		}
		return f, nil
	case spec.TBool:
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return nil, fmt.Errorf("%q is not a bool", raw)
		}
		return b, nil
	case spec.TInts:
		var out []any
		for _, e := range strings.Split(raw, ";") {
			n, err := strconv.ParseInt(strings.TrimSpace(e), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("list element %q is not an integer (separate with ';')", e)
			}
			out = append(out, n)
		}
		return out, nil
	case spec.TComponent:
		return spec.Ref{Name: raw}, nil // nested refs by bare name; use a spec file for nested params
	default: // TString, TDuration: the codec's coercions handle strings
		return raw, nil
	}
}

// refFlag registers a component-reference flag whose help text — the
// enumerated choices and their one-line docs — is generated from the
// registry.
func refFlag(fs *flag.FlagSet, name string, kind spec.Kind, def, intro string) *refValue {
	rv := &refValue{kind: kind, ref: spec.NamedRef(def)}
	fs.Var(rv, name, intro+": "+kindHelp(kind)+" — parameters as name:key=val,… (see SPEC.md)")
	return rv
}

// kindHelp renders one kind's registered choices for a flag's help text.
func kindHelp(kind spec.Kind) string {
	var parts []string
	for _, c := range spec.Catalogue(kind) {
		parts = append(parts, fmt.Sprintf("%s (%s)", c.Name, c.Doc))
	}
	return strings.Join(parts, " | ")
}

// configFlags are the stack-configuration flags shared by run, record,
// replay and state save: scalar knobs declared by hand, component slots
// generated from the registry.
type configFlags struct {
	channels, luns, blocks, pages *int
	copyback, interleaving        *bool
	op                            *float64
	greediness                    *int
	qd                            *int
	open                          *bool
	seed                          *uint64

	timing, mapping, gcpol, wl, policy, alloc, detector, faults, ospol *refValue
}

// addConfigFlags registers the shared configuration flags on fs.
func addConfigFlags(fs *flag.FlagSet) *configFlags {
	c := &configFlags{}
	c.channels = fs.Int("channels", 2, "number of channels")
	c.luns = fs.Int("luns", 2, "LUNs per channel")
	c.blocks = fs.Int("blocks", 128, "blocks per LUN")
	c.pages = fs.Int("pages", 32, "pages per block")
	c.copyback = fs.Bool("copyback", false, "enable the copyback chip command (and copyback GC)")
	c.interleaving = fs.Bool("interleaving", false, "enable channel interleaving")
	c.op = fs.Float64("op", 0.15, "overprovisioning fraction")
	c.greediness = fs.Int("greediness", 2, "GC greediness (free-block target per LUN)")
	c.qd = fs.Int("qd", 32, "OS queue depth")
	c.open = fs.Bool("open", false, "open interface: honor priority/locality/temperature tags")
	c.seed = fs.Uint64("seed", 1, "deterministic simulation seed")

	c.timing = refFlag(fs, "timing", spec.KindTiming, "slc", "flash timing set")
	c.mapping = refFlag(fs, "mapping", spec.KindMapping, "pagemap", "FTL mapping scheme")
	c.gcpol = refFlag(fs, "gc", spec.KindGCPolicy, "greedy", "GC victim policy")
	c.wl = refFlag(fs, "wl", spec.KindWL, "off", "wear-leveling mode")
	c.policy = refFlag(fs, "policy", spec.KindPolicy, "fifo", "SSD scheduling policy")
	c.alloc = refFlag(fs, "alloc", spec.KindAllocator, "leastloaded", "write allocator")
	c.detector = refFlag(fs, "detector", spec.KindDetector, "none", "hot/cold detector")
	c.faults = refFlag(fs, "faults", spec.KindFault, "none", "runtime fault-injection model")
	c.ospol = refFlag(fs, "os-policy", spec.KindOSPolicy, "fifo", "OS scheduling policy")
	return c
}

// configSpec assembles the flag values into the serializable configuration
// mirror. With the open interface on, the scheduler defaults to honoring
// priority tags (the historical flag-CLI semantics): no explicit -policy
// swaps in the tag-honoring priority policy, and an explicit priority
// policy that doesn't spell use_tags gets it set — an explicit
// use_tags=false still wins.
func (c *configFlags) configSpec() spec.Config {
	policy := c.policy.ref
	if *c.open {
		if !c.policy.set {
			policy = spec.ParamRef("priority", map[string]any{"use_tags": true})
		} else if policy.Name == "priority" {
			if _, explicit := policy.Params["use_tags"]; !explicit {
				params := map[string]any{"use_tags": true}
				for k, v := range policy.Params { //lint:ordered writes land in a keyed map
					params[k] = v
				}
				policy = spec.ParamRef("priority", params)
			}
		}
	}
	cfg := spec.Config{
		Geometry: spec.Geometry{
			Channels: *c.channels, LUNsPerChannel: *c.luns,
			BlocksPerLUN: *c.blocks, PagesPerBlock: *c.pages, PageSize: 4096,
		},
		Timing:        c.timing.ref,
		Features:      spec.Features{Copyback: *c.copyback, Interleaving: *c.interleaving},
		Mapping:       c.mapping.ref,
		Overprovision: *c.op,
		GC:            spec.GCSpec{Policy: c.gcpol.ref, Greediness: *c.greediness, Copyback: *c.copyback},
		WL:            c.wl.ref,
		Policy:        policy,
		Alloc:         c.alloc.ref,
		Detector:      c.detector.ref,
		OpenInterface: *c.open,
		OS:            spec.OSSpec{Policy: c.ospol.ref, QueueDepth: *c.qd},
		Seed:          *c.seed,
	}
	// The fault slot is a pointer: "none" (the default) stays an absent
	// field, so dumped documents from fault-free flag runs are byte-identical
	// to what they were before faults existed.
	if c.faults.set && c.faults.ref.Name != "none" {
		ref := c.faults.ref
		cfg.Fault = &ref
	}
	return cfg
}
