package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"eagletree/internal/experiment"
	"eagletree/internal/fabric"
	"eagletree/internal/query"
	"eagletree/internal/resultstore"
	"eagletree/internal/sim"
	"eagletree/internal/spec"
)

// progressObserver renders the runner's event stream as live per-variant
// progress lines on stderr — queue admission, snapshot-cache provenance,
// per-variant wall clock — without touching stdout (tables and CSV stay
// byte-stable for diffing).
type progressObserver struct {
	w io.Writer
}

func (p progressObserver) OnEvent(ev experiment.Event) {
	wall := ev.Wall.Round(time.Millisecond)
	switch ev.Kind {
	case experiment.EventPrepareHit:
		fmt.Fprintf(p.w, "[%s %d/%d] %s: prepared state restored (cache hit, %v)\n",
			ev.Experiment, ev.Index+1, ev.Variants, ev.Variant, wall)
	case experiment.EventPrepareMiss:
		fmt.Fprintf(p.w, "[%s %d/%d] %s: device aged from scratch (cache miss, %v)\n",
			ev.Experiment, ev.Index+1, ev.Variants, ev.Variant, wall)
	case experiment.EventVariantDone:
		status := "done"
		if ev.Err != nil {
			status = "FAILED: " + ev.Err.Error()
		}
		fmt.Fprintf(p.w, "[%s %d/%d] %s: %s (%v)\n",
			ev.Experiment, ev.Index+1, ev.Variants, ev.Variant, status, wall)
	case experiment.EventVariantCanceled:
		fmt.Fprintf(p.w, "[%s %d/%d] %s: canceled\n", ev.Experiment, ev.Index+1, ev.Variants, ev.Variant)
	case experiment.EventVariantFailed:
		fmt.Fprintf(p.w, "[%s %d/%d] %s: PANIC: %v (%v)\n",
			ev.Experiment, ev.Index+1, ev.Variants, ev.Variant, ev.Err, wall)
	case experiment.EventExperimentDone:
		if ev.Err != nil {
			fmt.Fprintf(p.w, "[%s] %v\n", ev.Experiment, ev.Err)
		} else {
			fmt.Fprintf(p.w, "[%s] complete (%v)\n", ev.Experiment, wall)
		}
	}
}

// sweepOutput controls result rendering shared by sweep and spec.
type sweepOutput struct {
	csv, chart, timeline *bool
}

func addSweepOutput(fs *flag.FlagSet) *sweepOutput {
	o := &sweepOutput{}
	o.csv = fs.Bool("csv", false, "also print CSV")
	o.chart = fs.Bool("chart", true, "print throughput chart per experiment")
	o.timeline = fs.Bool("timeline", false, "record and print completions-over-time sparklines")
	return o
}

// interruptContext returns a context canceled by the first interrupt; a
// second interrupt hard-exits with code 130 — the escape hatch when a sweep
// refuses to drain. The returned stop func releases the signal handler.
func interruptContext(stderr io.Writer) (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case <-sigc:
			cancel()
		case <-done:
			return
		}
		select {
		case <-sigc:
			fmt.Fprintln(stderr, "eagletree: second interrupt, exiting immediately")
			os.Exit(130)
		case <-done:
		}
	}()
	var once sync.Once
	return ctx, func() {
		once.Do(func() {
			cancel()
			signal.Stop(sigc)
			close(done)
		})
	}
}

// renderResults prints one experiment's result set: table, chart, timelines,
// the E12 game score, CSV. The in-process and distributed sweeps share this
// renderer, so their stdout is comparable byte for byte.
func renderResults(stdout io.Writer, res experiment.Results, out *sweepOutput) {
	fmt.Fprintln(stdout, res.Table())
	if *out.chart {
		fmt.Fprintln(stdout, res.Chart(experiment.MetricThroughput, 40))
	}
	if *out.timeline {
		fmt.Fprintln(stdout, res.Timelines())
	}
	if res.Name == "E12-game" {
		printGame(stdout, res)
	}
	if *out.csv {
		fmt.Fprintln(stdout, res.CSV())
	}
}

// sweepJob is one execution of one document under one seed. Jobs are grouped
// per selected experiment: a multi-seed sweep runs the group's jobs in seed
// order, then prints one replication summary over the group's captured rows.
type sweepJob struct {
	doc  spec.Experiment
	def  experiment.Definition // compiled for the in-process path only
	sink *resultstore.Sink     // nil when rows are not being captured
}

// jobObserver composes the live progress stream with the job's result sink.
func jobObserver(j sweepJob, progress bool, stderr io.Writer) experiment.Observer {
	var obs []experiment.Observer
	if progress {
		obs = append(obs, progressObserver{w: stderr})
	}
	if j.sink != nil {
		obs = append(obs, j.sink)
	}
	return experiment.MultiObserver(obs...)
}

// finishJob persists and collects one completed job's captured rows.
func finishJob(j sweepJob, persist bool, collected *[]resultstore.Row, stderr io.Writer) int {
	if j.sink == nil {
		return 0
	}
	if persist {
		if err := j.sink.Flush(); err != nil {
			return fail(stderr, err)
		}
	}
	*collected = append(*collected, j.sink.Rows()...)
	return 0
}

// runDefinitions executes compiled definitions under an interrupt-aware
// context through the streaming Runner and renders their results. The first
// ^C cancels mid-sweep: workers drain, the partial row prefix prints, and the
// process exits non-zero.
func runDefinitions(defs []experiment.Definition, opts experiment.Options, out *sweepOutput, progress bool, stdout, stderr io.Writer) int {
	groups := make([][]sweepJob, len(defs))
	for i, def := range defs {
		groups[i] = []sweepJob{{def: def}}
	}
	return runSweepGroups(groups, false, opts, out, progress, stdout, stderr)
}

// runSweepGroups executes job groups through the in-process Runner: each
// job's rows flow through its sink, and a group that replicated over several
// seeds closes with a confidence-interval summary.
func runSweepGroups(groups [][]sweepJob, persist bool, opts experiment.Options, out *sweepOutput, progress bool, stdout, stderr io.Writer) int {
	ctx, stop := interruptContext(stderr)
	defer stop()
	for _, jobs := range groups {
		var collected []resultstore.Row
		for _, j := range jobs {
			o := opts
			o.Observer = jobObserver(j, progress, stderr)
			res, err := experiment.New(o).Run(ctx, j.def)
			if err != nil {
				if errors.Is(err, experiment.ErrCanceled) {
					if len(res.Rows) > 0 {
						fmt.Fprintln(stdout, res.Table())
					}
					fmt.Fprintf(stderr, "eagletree: %v\n", err)
					return 130
				}
				return fail(stderr, err)
			}
			if code := finishJob(j, persist, &collected, stderr); code != 0 {
				return code
			}
			renderResults(stdout, res, out)
		}
		if len(jobs) > 1 {
			if code := printReplication(stdout, stderr, collected); code != 0 {
				return code
			}
		}
	}
	return 0
}

// runDistributed shards each job's variant grid over worker processes —
// -distribute N local subprocesses of this same binary, and/or -connect'ed
// TCP workers — and renders the deterministically merged results through the
// same renderer as the in-process path. The coordinator is the single store
// writer: workers stream rows back, the merge orders them, and each job's
// sink persists exactly what a sequential run would have.
func runDistributed(groups [][]sweepJob, persist bool, distribute int, connect, cacheDir string, timeline bool, out *sweepOutput, progress bool, stdout, stderr io.Writer) int {
	ctx, stop := interruptContext(stderr)
	defer stop()
	base := fabric.Options{
		Connect:      splitList(connect),
		WorkerStderr: stderr,
	}
	if distribute > 0 {
		exe, err := os.Executable()
		if err != nil {
			return fail(stderr, fmt.Errorf("resolving worker binary: %w", err))
		}
		argv := []string{exe, "worker", "-serve=stdio", "-quiet"}
		if cacheDir != "" {
			argv = append(argv, "-state-cache", cacheDir)
		}
		base.Workers = distribute
		base.Command = argv
	}
	if cacheDir != "" {
		base.Cache = experiment.NewStateCache(cacheDir)
	}
	if timeline {
		base.SeriesBucket = 20 * sim.Millisecond
	}
	if progress {
		base.Logf = func(format string, args ...any) { fmt.Fprintf(stderr, format+"\n", args...) }
	}
	for _, jobs := range groups {
		var collected []resultstore.Row
		for _, j := range jobs {
			opts := base
			opts.Observer = jobObserver(j, progress, stderr)
			res, err := fabric.Run(ctx, j.doc, opts)
			if err != nil {
				if errors.Is(err, experiment.ErrCanceled) {
					if len(res.Rows) > 0 {
						fmt.Fprintln(stdout, res.Table())
					}
					fmt.Fprintf(stderr, "eagletree: %v\n", err)
					return 130
				}
				return fail(stderr, err)
			}
			if code := finishJob(j, persist, &collected, stderr); code != 0 {
				return code
			}
			renderResults(stdout, res, out)
		}
		if len(jobs) > 1 {
			if code := printReplication(stdout, stderr, collected); code != 0 {
				return code
			}
		}
	}
	return 0
}

// printReplication renders the cross-seed replication summary: per variant,
// mean ± 95% confidence half-width of the headline metrics over the sweep's
// seeds. Group order follows the variant grid (rows are collected in grid
// order per seed), so the summary lines up with the per-seed tables above it.
func printReplication(stdout, stderr io.Writer, rows []resultstore.Row) int {
	if len(rows) == 0 {
		return 0
	}
	tab := query.FromRows(rows)
	g, err := tab.GroupBy([]string{"experiment", "label"}, []query.Agg{
		{Fn: "count"},
		{Fn: "mean", Col: "throughput_iops"}, {Fn: "ci95", Col: "throughput_iops"},
		{Fn: "mean", Col: "write_mean_ns"}, {Fn: "ci95", Col: "write_mean_ns"},
		{Fn: "mean", Col: "write_amp"}, {Fn: "ci95", Col: "write_amp"},
	})
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintln(stdout, "replication summary (mean and 95% CI half-width across seeds):")
	fmt.Fprintln(stdout, g.Text())
	return 0
}

// parseSeeds parses the -seeds list. Seed 0 is rejected rather than accepted:
// the runtime normalizes 0 to 1, so an explicit 0 would silently collide with
// an explicit 1 in the store.
func parseSeeds(s string) ([]uint64, error) {
	parts := splitList(s)
	seeds := make([]uint64, 0, len(parts))
	seen := make(map[uint64]bool, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-seeds: %q is not an unsigned integer seed", p)
		}
		if v == 0 {
			return nil, fmt.Errorf("-seeds: seed 0 is the runtime default alias for 1; say 1 explicitly")
		}
		if seen[v] {
			return nil, fmt.Errorf("-seeds: seed %d repeats", v)
		}
		seen[v] = true
		seeds = append(seeds, v)
	}
	return seeds, nil
}

// splitList parses a comma-separated flag value, dropping empty elements.
func splitList(s string) []string {
	var parts []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

// cmdSweep runs the predefined design-space experiments (E1–E14) — or any
// spec document via -spec — and prints their result tables and charts.
func cmdSweep(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eagletree sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		run      = fs.String("run", "all", "experiments to run: e1..e14, comma-separated | all")
		specFile = fs.String("spec", "", "run an experiment spec file instead of the predefined suite")
		scale    = fs.String("scale", "small", "workload scale: small | full")
		workers  = fs.Int("workers", 0, "parallel variant workers (0 = GOMAXPROCS, 1 = sequential)")
		cacheDir = fs.String("state-cache", "", "persist prepared device states under this directory; repeated sweeps restore instead of re-aging")
		fresh    = fs.Bool("fresh", false, "disable prepared-state reuse: every variant ages its own device (the slow reference path)")
		progress = fs.Bool("progress", true, "stream live per-variant progress (cache provenance, timings) to stderr")

		distribute = fs.Int("distribute", 0, "shard variants across N worker subprocesses of this binary (0 = run in-process)")
		connect    = fs.String("connect", "", "also lease variants to remote workers at these comma-separated host:port addresses (see 'eagletree worker -listen')")

		seeds      = fs.String("seeds", "", "replicate the sweep under these comma-separated seeds; more than one adds a 95%-CI replication summary")
		resultsDir = fs.String("results", "", "append every completed variant's row to the result store in this directory (see 'eagletree results')")
		label      = fs.String("label", "", "provenance label stored with -results rows, e.g. a commit hash (default \"unlabeled\")")
	)
	out := addSweepOutput(fs)
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := prof.start(); err != nil {
		return fail(stderr, err)
	}
	defer prof.stop(stderr)

	sc := experiment.Small
	if *scale == "full" {
		sc = experiment.Full
	}
	opts := experiment.Options{Workers: *workers, NoPrepareCache: *fresh}
	if *cacheDir != "" && !*fresh {
		// One cache across the whole invocation: experiments sharing a
		// prepared state (same geometry, preparation and seed) reuse it, and
		// the directory carries it to the next invocation.
		opts.Cache = experiment.NewStateCache(*cacheDir)
	}

	var selected []spec.Experiment
	if *specFile != "" {
		// A spec document carries its own selection and scale; silently
		// ignoring -run/-scale would let "sweep -spec x.json -scale full"
		// print small-scale numbers under a full-scale belief.
		var conflict string
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "run" || f.Name == "scale" {
				conflict = f.Name
			}
		})
		if conflict != "" {
			return fail(stderr, fmt.Errorf("-%s does not apply to -spec (the document is self-contained)", conflict))
		}
		doc, err := spec.ReadFile(*specFile)
		if err == nil {
			err = doc.Validate()
		}
		if err != nil {
			return fail(stderr, err)
		}
		selected = []spec.Experiment{doc}
	} else {
		suite := experiment.SuiteSpecs(sc)
		sels := strings.Split(*run, ",")
		match := func(e spec.Experiment) bool {
			id := strings.SplitN(e.Name, "-", 2)[0] // "E3"
			for _, sel := range sels {
				sel = strings.TrimSpace(sel)
				if strings.EqualFold(sel, "all") || strings.EqualFold(id, sel) || strings.EqualFold(e.Name, sel) {
					return true
				}
			}
			return false
		}
		for _, e := range suite {
			if match(e) {
				selected = append(selected, e)
			}
		}
		if len(selected) == 0 {
			return fail(stderr, fmt.Errorf("no experiment matches %q (try 'eagletree list')", *run))
		}
	}

	seedList, err := parseSeeds(*seeds)
	if err != nil {
		return fail(stderr, err)
	}
	var store *resultstore.Store
	commit := *label
	if *resultsDir != "" {
		if store, err = resultstore.Open(*resultsDir); err != nil {
			return fail(stderr, err)
		}
		if commit == "" {
			commit = "unlabeled"
		}
	} else if commit != "" {
		return fail(stderr, fmt.Errorf("-label labels stored rows; it needs -results"))
	}

	// Rows are captured whenever they are persisted or summarized; a plain
	// sweep skips the sinks entirely and its output is byte-identical to a
	// sweep predating them.
	capture := store != nil || len(seedList) > 1
	runSeeds := seedList
	if len(runSeeds) == 0 {
		runSeeds = []uint64{0} // the document's own seed
	}
	groups := make([][]sweepJob, 0, len(selected))
	for _, e := range selected {
		jobs := make([]sweepJob, 0, len(runSeeds))
		for _, seed := range runSeeds {
			doc := e
			if seed != 0 {
				doc.Base.Seed = seed
			}
			j := sweepJob{doc: doc}
			if capture {
				if j.sink, err = resultstore.NewSink(store, doc, commit); err != nil {
					return fail(stderr, err)
				}
			}
			jobs = append(jobs, j)
		}
		groups = append(groups, jobs)
	}

	if *distribute > 0 || *connect != "" {
		// The fabric hands workers the spec documents themselves; flags that
		// tune the in-process runner have no meaning there, and ignoring them
		// would run something other than what was asked for.
		var conflict string
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "workers" || f.Name == "fresh" {
				conflict = f.Name
			}
		})
		if conflict != "" {
			return fail(stderr, fmt.Errorf("-%s does not apply to a distributed sweep (each worker runs one variant at a time)", conflict))
		}
		return runDistributed(groups, store != nil, *distribute, *connect, *cacheDir, *out.timeline, out, *progress, stdout, stderr)
	}

	for gi := range groups {
		for ji := range groups[gi] {
			def, err := experiment.FromSpec(groups[gi][ji].doc)
			if err != nil {
				return fail(stderr, err)
			}
			if *out.timeline {
				def.SeriesBucket = 20 * sim.Millisecond
			}
			groups[gi][ji].def = def
		}
	}
	return runSweepGroups(groups, store != nil, opts, out, *progress, stdout, stderr)
}

// cmdList prints the experiment index straight from the suite's spec data,
// including each experiment's expanded variant count.
func cmdList(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eagletree list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.String("scale", "small", "workload scale: small | full")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sc := experiment.Small
	if *scale == "full" {
		sc = experiment.Full
	}
	fmt.Fprintf(stdout, "%-4s %-22s %8s %-42s %s\n", "ID", "NAME", "VARIANTS", "VARIES", "SHOWS")
	for _, e := range experiment.SuiteSpecs(sc) {
		id := strings.SplitN(e.Name, "-", 2)[0]
		variants, err := e.ExpandVariants()
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "%-4s %-22s %8d %-42s %s\n", id, e.Name, len(variants), e.Varies, e.Doc)
	}
	return 0
}

// cmdSpec runs experiment spec documents: a single-run document prints the
// run report through the exact flag-mode flow (bit-identical to the flags
// that dumped it), a variant grid runs through the experiment pipeline and
// prints its table.
func cmdSpec(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eagletree spec", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workers  = fs.Int("workers", 0, "parallel variant workers for grids (0 = GOMAXPROCS)")
		cacheDir = fs.String("state-cache", "", "persist prepared device states under this directory")
		fresh    = fs.Bool("fresh", false, "disable prepared-state reuse")
		progress = fs.Bool("progress", true, "stream live per-variant progress to stderr (grids)")
		validate = fs.Bool("validate", false, "validate the documents and exit without running")
	)
	out := addSweepOutput(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: eagletree spec [flags] FILE...")
		return 2
	}
	for _, path := range fs.Args() {
		// flag.Parse stops at the first positional, so a trailing flag would
		// silently be read as a file name.
		if strings.HasPrefix(path, "-") {
			return fail(stderr, fmt.Errorf("flags must precede FILE arguments (got %q after a file)", path))
		}
	}
	opts := experiment.Options{Workers: *workers, NoPrepareCache: *fresh}
	if *cacheDir != "" && !*fresh {
		opts.Cache = experiment.NewStateCache(*cacheDir)
	}
	for _, path := range fs.Args() {
		doc, err := spec.ReadFile(path)
		if err == nil {
			err = doc.Validate()
		}
		if err != nil {
			return fail(stderr, err)
		}
		if *validate {
			variants, err := doc.ExpandVariants()
			if err != nil {
				return fail(stderr, err)
			}
			n := len(variants)
			if n == 0 {
				n = 1
			}
			fmt.Fprintf(stdout, "%s: %s valid (%d variant(s))\n", path, doc.Name, n)
			continue
		}
		variants, err := doc.ExpandVariants()
		if err != nil {
			return fail(stderr, err)
		}
		if len(variants) > 1 {
			def, err := experiment.FromSpec(doc)
			if err != nil {
				return fail(stderr, err)
			}
			if *out.timeline {
				def.SeriesBucket = 20 * sim.Millisecond
			}
			fmt.Fprintf(stdout, "eagletree: spec %s: experiment %s (%d variants)\n\n", path, doc.Name, len(variants))
			if code := runDefinitions([]experiment.Definition{def}, opts, out, *progress, stdout, stderr); code != 0 {
				return code
			}
			continue
		}
		variant := spec.Variant{Label: "run"}
		if len(variants) == 1 {
			variant = variants[0]
		}
		header := fmt.Sprintf("eagletree: spec %s: %s / %s", path, doc.Name, variant.Label)
		if code := executeSingle(doc, variant, runtimeOpts{}, nil, header, stdout, stderr); code != 0 {
			return code
		}
	}
	return 0
}

func printGame(w io.Writer, res experiment.Results) {
	if len(res.Rows) == 0 {
		fmt.Fprintln(w, "game: no result rows to score")
		return
	}
	weights := experiment.DefaultGameWeights()
	best := res.Rows[0]
	bestScore := weights.Score(best.Report)
	for _, r := range res.Rows {
		score := weights.Score(r.Report)
		fmt.Fprintf(w, "  score %10.1f  %s\n", score, r.Label)
		if score > bestScore {
			best, bestScore = r, score
		}
	}
	fmt.Fprintf(w, "optimal combination: %s\n\n", best.Label)
}
