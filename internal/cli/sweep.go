package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"eagletree/internal/experiment"
	"eagletree/internal/fabric"
	"eagletree/internal/sim"
	"eagletree/internal/spec"
)

// progressObserver renders the runner's event stream as live per-variant
// progress lines on stderr — queue admission, snapshot-cache provenance,
// per-variant wall clock — without touching stdout (tables and CSV stay
// byte-stable for diffing).
type progressObserver struct {
	w io.Writer
}

func (p progressObserver) OnEvent(ev experiment.Event) {
	wall := ev.Wall.Round(time.Millisecond)
	switch ev.Kind {
	case experiment.EventPrepareHit:
		fmt.Fprintf(p.w, "[%s %d/%d] %s: prepared state restored (cache hit, %v)\n",
			ev.Experiment, ev.Index+1, ev.Variants, ev.Variant, wall)
	case experiment.EventPrepareMiss:
		fmt.Fprintf(p.w, "[%s %d/%d] %s: device aged from scratch (cache miss, %v)\n",
			ev.Experiment, ev.Index+1, ev.Variants, ev.Variant, wall)
	case experiment.EventVariantDone:
		status := "done"
		if ev.Err != nil {
			status = "FAILED: " + ev.Err.Error()
		}
		fmt.Fprintf(p.w, "[%s %d/%d] %s: %s (%v)\n",
			ev.Experiment, ev.Index+1, ev.Variants, ev.Variant, status, wall)
	case experiment.EventVariantCanceled:
		fmt.Fprintf(p.w, "[%s %d/%d] %s: canceled\n", ev.Experiment, ev.Index+1, ev.Variants, ev.Variant)
	case experiment.EventVariantFailed:
		fmt.Fprintf(p.w, "[%s %d/%d] %s: PANIC: %v (%v)\n",
			ev.Experiment, ev.Index+1, ev.Variants, ev.Variant, ev.Err, wall)
	case experiment.EventExperimentDone:
		if ev.Err != nil {
			fmt.Fprintf(p.w, "[%s] %v\n", ev.Experiment, ev.Err)
		} else {
			fmt.Fprintf(p.w, "[%s] complete (%v)\n", ev.Experiment, wall)
		}
	}
}

// sweepOutput controls result rendering shared by sweep and spec.
type sweepOutput struct {
	csv, chart, timeline *bool
}

func addSweepOutput(fs *flag.FlagSet) *sweepOutput {
	o := &sweepOutput{}
	o.csv = fs.Bool("csv", false, "also print CSV")
	o.chart = fs.Bool("chart", true, "print throughput chart per experiment")
	o.timeline = fs.Bool("timeline", false, "record and print completions-over-time sparklines")
	return o
}

// interruptContext returns a context canceled by the first interrupt; a
// second interrupt hard-exits with code 130 — the escape hatch when a sweep
// refuses to drain. The returned stop func releases the signal handler.
func interruptContext(stderr io.Writer) (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case <-sigc:
			cancel()
		case <-done:
			return
		}
		select {
		case <-sigc:
			fmt.Fprintln(stderr, "eagletree: second interrupt, exiting immediately")
			os.Exit(130)
		case <-done:
		}
	}()
	var once sync.Once
	return ctx, func() {
		once.Do(func() {
			cancel()
			signal.Stop(sigc)
			close(done)
		})
	}
}

// renderResults prints one experiment's result set: table, chart, timelines,
// the E12 game score, CSV. The in-process and distributed sweeps share this
// renderer, so their stdout is comparable byte for byte.
func renderResults(stdout io.Writer, res experiment.Results, out *sweepOutput) {
	fmt.Fprintln(stdout, res.Table())
	if *out.chart {
		fmt.Fprintln(stdout, res.Chart(experiment.MetricThroughput, 40))
	}
	if *out.timeline {
		fmt.Fprintln(stdout, res.Timelines())
	}
	if res.Name == "E12-game" {
		printGame(stdout, res)
	}
	if *out.csv {
		fmt.Fprintln(stdout, res.CSV())
	}
}

// runDefinitions executes compiled definitions under an interrupt-aware
// context through the streaming Runner and renders their results. The first
// ^C cancels mid-sweep: workers drain, the partial row prefix prints, and the
// process exits non-zero.
func runDefinitions(defs []experiment.Definition, opts experiment.Options, out *sweepOutput, progress bool, stdout, stderr io.Writer) int {
	ctx, stop := interruptContext(stderr)
	defer stop()
	if progress {
		opts.Observer = progressObserver{w: stderr}
	}
	runner := experiment.New(opts)
	for _, def := range defs {
		res, err := runner.Run(ctx, def)
		if err != nil {
			if errors.Is(err, experiment.ErrCanceled) {
				if len(res.Rows) > 0 {
					fmt.Fprintln(stdout, res.Table())
				}
				fmt.Fprintf(stderr, "eagletree: %v\n", err)
				return 130
			}
			return fail(stderr, err)
		}
		renderResults(stdout, res, out)
	}
	return 0
}

// runDistributed shards each document's variant grid over worker processes —
// -distribute N local subprocesses of this same binary, and/or -connect'ed
// TCP workers — and renders the deterministically merged results through the
// same renderer as the in-process path.
func runDistributed(docs []spec.Experiment, distribute int, connect, cacheDir string, timeline bool, out *sweepOutput, progress bool, stdout, stderr io.Writer) int {
	ctx, stop := interruptContext(stderr)
	defer stop()
	opts := fabric.Options{
		Connect:      splitList(connect),
		WorkerStderr: stderr,
	}
	if distribute > 0 {
		exe, err := os.Executable()
		if err != nil {
			return fail(stderr, fmt.Errorf("resolving worker binary: %w", err))
		}
		argv := []string{exe, "worker", "-serve=stdio", "-quiet"}
		if cacheDir != "" {
			argv = append(argv, "-state-cache", cacheDir)
		}
		opts.Workers = distribute
		opts.Command = argv
	}
	if cacheDir != "" {
		opts.Cache = experiment.NewStateCache(cacheDir)
	}
	if timeline {
		opts.SeriesBucket = 20 * sim.Millisecond
	}
	if progress {
		opts.Observer = progressObserver{w: stderr}
		opts.Logf = func(format string, args ...any) { fmt.Fprintf(stderr, format+"\n", args...) }
	}
	for _, doc := range docs {
		res, err := fabric.Run(ctx, doc, opts)
		if err != nil {
			if errors.Is(err, experiment.ErrCanceled) {
				if len(res.Rows) > 0 {
					fmt.Fprintln(stdout, res.Table())
				}
				fmt.Fprintf(stderr, "eagletree: %v\n", err)
				return 130
			}
			return fail(stderr, err)
		}
		renderResults(stdout, res, out)
	}
	return 0
}

// splitList parses a comma-separated flag value, dropping empty elements.
func splitList(s string) []string {
	var parts []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

// cmdSweep runs the predefined design-space experiments (E1–E14) — or any
// spec document via -spec — and prints their result tables and charts.
func cmdSweep(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eagletree sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		run      = fs.String("run", "all", "experiments to run: e1..e14, comma-separated | all")
		specFile = fs.String("spec", "", "run an experiment spec file instead of the predefined suite")
		scale    = fs.String("scale", "small", "workload scale: small | full")
		workers  = fs.Int("workers", 0, "parallel variant workers (0 = GOMAXPROCS, 1 = sequential)")
		cacheDir = fs.String("state-cache", "", "persist prepared device states under this directory; repeated sweeps restore instead of re-aging")
		fresh    = fs.Bool("fresh", false, "disable prepared-state reuse: every variant ages its own device (the slow reference path)")
		progress = fs.Bool("progress", true, "stream live per-variant progress (cache provenance, timings) to stderr")

		distribute = fs.Int("distribute", 0, "shard variants across N worker subprocesses of this binary (0 = run in-process)")
		connect    = fs.String("connect", "", "also lease variants to remote workers at these comma-separated host:port addresses (see 'eagletree worker -listen')")
	)
	out := addSweepOutput(fs)
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := prof.start(); err != nil {
		return fail(stderr, err)
	}
	defer prof.stop(stderr)

	sc := experiment.Small
	if *scale == "full" {
		sc = experiment.Full
	}
	opts := experiment.Options{Workers: *workers, NoPrepareCache: *fresh}
	if *cacheDir != "" && !*fresh {
		// One cache across the whole invocation: experiments sharing a
		// prepared state (same geometry, preparation and seed) reuse it, and
		// the directory carries it to the next invocation.
		opts.Cache = experiment.NewStateCache(*cacheDir)
	}

	var selected []spec.Experiment
	if *specFile != "" {
		// A spec document carries its own selection and scale; silently
		// ignoring -run/-scale would let "sweep -spec x.json -scale full"
		// print small-scale numbers under a full-scale belief.
		var conflict string
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "run" || f.Name == "scale" {
				conflict = f.Name
			}
		})
		if conflict != "" {
			return fail(stderr, fmt.Errorf("-%s does not apply to -spec (the document is self-contained)", conflict))
		}
		doc, err := spec.ReadFile(*specFile)
		if err == nil {
			err = doc.Validate()
		}
		if err != nil {
			return fail(stderr, err)
		}
		selected = []spec.Experiment{doc}
	} else {
		suite := experiment.SuiteSpecs(sc)
		sels := strings.Split(*run, ",")
		match := func(e spec.Experiment) bool {
			id := strings.SplitN(e.Name, "-", 2)[0] // "E3"
			for _, sel := range sels {
				sel = strings.TrimSpace(sel)
				if strings.EqualFold(sel, "all") || strings.EqualFold(id, sel) || strings.EqualFold(e.Name, sel) {
					return true
				}
			}
			return false
		}
		for _, e := range suite {
			if match(e) {
				selected = append(selected, e)
			}
		}
		if len(selected) == 0 {
			return fail(stderr, fmt.Errorf("no experiment matches %q (try 'eagletree list')", *run))
		}
	}

	if *distribute > 0 || *connect != "" {
		// The fabric hands workers the spec documents themselves; flags that
		// tune the in-process runner have no meaning there, and ignoring them
		// would run something other than what was asked for.
		var conflict string
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "workers" || f.Name == "fresh" {
				conflict = f.Name
			}
		})
		if conflict != "" {
			return fail(stderr, fmt.Errorf("-%s does not apply to a distributed sweep (each worker runs one variant at a time)", conflict))
		}
		return runDistributed(selected, *distribute, *connect, *cacheDir, *out.timeline, out, *progress, stdout, stderr)
	}

	var defs []experiment.Definition
	for _, e := range selected {
		def, err := experiment.FromSpec(e)
		if err != nil {
			return fail(stderr, err)
		}
		if *out.timeline {
			def.SeriesBucket = 20 * sim.Millisecond
		}
		defs = append(defs, def)
	}
	return runDefinitions(defs, opts, out, *progress, stdout, stderr)
}

// cmdList prints the experiment index straight from the suite's spec data,
// including each experiment's expanded variant count.
func cmdList(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eagletree list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.String("scale", "small", "workload scale: small | full")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sc := experiment.Small
	if *scale == "full" {
		sc = experiment.Full
	}
	fmt.Fprintf(stdout, "%-4s %-22s %8s %-42s %s\n", "ID", "NAME", "VARIANTS", "VARIES", "SHOWS")
	for _, e := range experiment.SuiteSpecs(sc) {
		id := strings.SplitN(e.Name, "-", 2)[0]
		variants, err := e.ExpandVariants()
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "%-4s %-22s %8d %-42s %s\n", id, e.Name, len(variants), e.Varies, e.Doc)
	}
	return 0
}

// cmdSpec runs experiment spec documents: a single-run document prints the
// run report through the exact flag-mode flow (bit-identical to the flags
// that dumped it), a variant grid runs through the experiment pipeline and
// prints its table.
func cmdSpec(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eagletree spec", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workers  = fs.Int("workers", 0, "parallel variant workers for grids (0 = GOMAXPROCS)")
		cacheDir = fs.String("state-cache", "", "persist prepared device states under this directory")
		fresh    = fs.Bool("fresh", false, "disable prepared-state reuse")
		progress = fs.Bool("progress", true, "stream live per-variant progress to stderr (grids)")
		validate = fs.Bool("validate", false, "validate the documents and exit without running")
	)
	out := addSweepOutput(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: eagletree spec [flags] FILE...")
		return 2
	}
	for _, path := range fs.Args() {
		// flag.Parse stops at the first positional, so a trailing flag would
		// silently be read as a file name.
		if strings.HasPrefix(path, "-") {
			return fail(stderr, fmt.Errorf("flags must precede FILE arguments (got %q after a file)", path))
		}
	}
	opts := experiment.Options{Workers: *workers, NoPrepareCache: *fresh}
	if *cacheDir != "" && !*fresh {
		opts.Cache = experiment.NewStateCache(*cacheDir)
	}
	for _, path := range fs.Args() {
		doc, err := spec.ReadFile(path)
		if err == nil {
			err = doc.Validate()
		}
		if err != nil {
			return fail(stderr, err)
		}
		if *validate {
			variants, err := doc.ExpandVariants()
			if err != nil {
				return fail(stderr, err)
			}
			n := len(variants)
			if n == 0 {
				n = 1
			}
			fmt.Fprintf(stdout, "%s: %s valid (%d variant(s))\n", path, doc.Name, n)
			continue
		}
		variants, err := doc.ExpandVariants()
		if err != nil {
			return fail(stderr, err)
		}
		if len(variants) > 1 {
			def, err := experiment.FromSpec(doc)
			if err != nil {
				return fail(stderr, err)
			}
			if *out.timeline {
				def.SeriesBucket = 20 * sim.Millisecond
			}
			fmt.Fprintf(stdout, "eagletree: spec %s: experiment %s (%d variants)\n\n", path, doc.Name, len(variants))
			if code := runDefinitions([]experiment.Definition{def}, opts, out, *progress, stdout, stderr); code != 0 {
				return code
			}
			continue
		}
		variant := spec.Variant{Label: "run"}
		if len(variants) == 1 {
			variant = variants[0]
		}
		header := fmt.Sprintf("eagletree: spec %s: %s / %s", path, doc.Name, variant.Label)
		if code := executeSingle(doc, variant, runtimeOpts{}, nil, header, stdout, stderr); code != 0 {
			return code
		}
	}
	return 0
}

func printGame(w io.Writer, res experiment.Results) {
	if len(res.Rows) == 0 {
		fmt.Fprintln(w, "game: no result rows to score")
		return
	}
	weights := experiment.DefaultGameWeights()
	best := res.Rows[0]
	bestScore := weights.Score(best.Report)
	for _, r := range res.Rows {
		score := weights.Score(r.Report)
		fmt.Fprintf(w, "  score %10.1f  %s\n", score, r.Label)
		if score > bestScore {
			best, bestScore = r, score
		}
	}
	fmt.Fprintf(w, "optimal combination: %s\n\n", best.Label)
}
