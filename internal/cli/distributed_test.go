package cli

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strings"
	"testing"

	"eagletree/internal/experiment"
	"eagletree/internal/fabric"
	"eagletree/internal/spec"
)

// workerChildEnv re-execs this test binary into `eagletree worker` — the
// coordinator's subprocess transport needs a real worker process on the other
// end of stdin/stdout, and the test binary itself is the only binary the test
// can rely on existing.
const workerChildEnv = "EAGLETREE_WORKER_CHILD"

// TestDistributedSubprocess drives the whole subprocess transport end to end:
// the coordinator spawns two copies of this test binary as stdio workers (via
// the env-var re-exec above), shards a small aged-device sweep across them,
// and the merged rows must be byte-identical to the sequential run. This is
// the one test where the worker lives in another process — pipes, process
// lifecycle, and the CLI worker entry point included.
func TestDistributedSubprocess(t *testing.T) {
	if os.Getenv(workerChildEnv) == "1" {
		os.Exit(Main([]string{"worker", "-serve=stdio", "-quiet"}, os.Stdout, os.Stderr))
	}
	if testing.Short() {
		t.Skip("runs full small-scale experiments in subprocesses")
	}

	var doc spec.Experiment
	for _, e := range experiment.SuiteSpecs(experiment.Small) {
		if strings.HasPrefix(e.Name, "E2-") {
			doc = e
			break
		}
	}
	if doc.Name == "" {
		t.Fatal("no E2 suite experiment")
	}

	def, err := experiment.FromSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiment.New(experiment.Options{Workers: 1}).Run(context.Background(), def)
	if err != nil {
		t.Fatal(err)
	}

	t.Setenv(workerChildEnv, "1")
	var workerLog bytes.Buffer
	got, err := fabric.Run(context.Background(), doc, fabric.Options{
		Workers:      2,
		Command:      []string{os.Args[0], "-test.run=^TestDistributedSubprocess$"},
		WorkerStderr: &workerLog,
	})
	if err != nil {
		t.Fatalf("distributed run: %v (worker stderr:\n%s)", err, workerLog.String())
	}

	dump := func(res experiment.Results) string {
		var b strings.Builder
		fmt.Fprintf(&b, "%s\n", res.Name)
		for _, r := range res.Rows {
			fmt.Fprintf(&b, "%#v\n", r)
		}
		return b.String()
	}
	if dump(got) != dump(want) {
		t.Errorf("subprocess-distributed rows diverge from sequential:\n--- distributed\n%s--- sequential\n%s",
			dump(got), dump(want))
	}
}
