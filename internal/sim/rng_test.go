package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced diverging streams")
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGZeroSeedIsUsable(t *testing.T) {
	r := NewRNG(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("seed 0 produced %d zero draws; state not spread", zeros)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(11)
	child := r.Split()
	// Drawing from the child must not change the parent's future stream
	// relative to a parent that split but never used the child.
	r2 := NewRNG(11)
	r2.Split()
	for i := 0; i < 10; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if r.Uint64() != r2.Uint64() {
			t.Fatal("child draws perturbed parent stream")
		}
	}
}

func TestZipfRange(t *testing.T) {
	r := NewRNG(13)
	z := NewZipf(r, 1000, 1.1)
	for i := 0; i < 20000; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf value %d out of [0,1000)", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(17)
	z := NewZipf(r, 10000, 1.2)
	const n = 200000
	low := 0
	for i := 0; i < n; i++ {
		if z.Next() < 100 {
			low++ // top 1% of the address space
		}
	}
	frac := float64(low) / n
	if frac < 0.5 {
		t.Fatalf("Zipf(1.2): top 1%% drew only %.1f%% of accesses, want majority", frac*100)
	}
}

func TestZipfExponentOneHandled(t *testing.T) {
	z := NewZipf(NewRNG(1), 100, 1.0)
	for i := 0; i < 1000; i++ {
		if v := z.Next(); v < 0 || v >= 100 {
			t.Fatalf("Zipf(s=1) value %d out of range", v)
		}
	}
}

func TestZipfMonotoneFrequency(t *testing.T) {
	r := NewRNG(23)
	z := NewZipf(r, 10, 1.5)
	counts := make([]int, 10)
	for i := 0; i < 300000; i++ {
		counts[z.Next()]++
	}
	// Allow sampling noise but the head must dominate the tail.
	if counts[0] <= counts[5] || counts[0] <= counts[9] {
		t.Fatalf("Zipf head not dominant: %v", counts)
	}
	if counts[1] <= counts[9] {
		t.Fatalf("Zipf second rank not above tail: %v", counts)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1.1}, {-5, 1.1}, {10, 0}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(n=%d, s=%v) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(NewRNG(1), tc.n, tc.s)
		}()
	}
}

// Property: Zipf output is always in range for arbitrary seeds and sizes.
func TestZipfRangeProperty(t *testing.T) {
	f := func(seed uint64, rawN uint16, rawS uint8) bool {
		n := int(rawN%5000) + 1
		s := 0.2 + float64(rawS%30)/10 // 0.2 .. 3.1
		z := NewZipf(NewRNG(seed), n, s)
		for i := 0; i < 200; i++ {
			v := z.Next()
			if v < 0 || v >= int64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(10)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	seen := make(map[int]bool)
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", vals)
	}
}
