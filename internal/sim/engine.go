package sim

import (
	"errors"
	"fmt"
)

// ErrNotQuiescent reports an operation that requires a drained engine —
// restoring over live events would silently drop scheduled work.
var ErrNotQuiescent = errors.New("sim: engine not quiescent")

// Event is a callback scheduled to fire at a virtual instant. Events with the
// same timestamp fire in scheduling order (FIFO), which keeps simulations
// deterministic.
//
// Events returned by Schedule/ScheduleAfter are owned by the caller until
// they fire and are never reused, so a held handle stays valid. Events
// created by ScheduleCall are engine-owned and recycled through a freelist
// after firing — that is what keeps the hot dispatch path allocation-free.
type Event struct {
	at  Time
	seq uint64

	// Exactly one of fn and afn is set. afn events carry their argument in
	// arg, so hot-path callers can use one pre-bound callback for every IO
	// instead of allocating a fresh closure per event.
	fn  func()
	afn func(any)
	arg any

	eng    *Engine
	dead   bool
	pooled bool // recycle into the engine freelist after firing
	queued bool // currently in the heap
}

// At returns the virtual instant the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents a still-pending event from firing. Cancelling an
// already-fired or already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e.dead || !e.queued {
		return
	}
	e.dead = true
	e.eng.dead++
}

// Cancelled reports whether the event was cancelled while still pending.
// An event that already fired reports false even if Cancel was called
// afterwards (such a Cancel is a no-op).
func (e *Event) Cancelled() bool { return e.dead }

// Engine is the discrete-event simulation loop. It is not safe for concurrent
// use: all EagleTree components run inside the single event loop, by design.
// Distinct engines are fully independent, so whole simulations may run in
// parallel with one engine each.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now     Time
	queue   []*Event // binary min-heap on (at, seq)
	seq     uint64
	stopped bool
	fired   uint64
	dead    int      // cancelled events still in the heap
	free    []*Event // recycled pooled events
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far. Useful for tests and
// for detecting runaway simulations.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live events scheduled but not yet fired.
// Cancelled events awaiting removal from the queue are excluded.
func (e *Engine) Pending() int { return len(e.queue) - e.dead }

// Seq returns the next event sequence number. Sequence numbers break ties
// between events scheduled for the same instant (FIFO), so device-state
// snapshots record it: a restored engine must order same-time events exactly
// as the original would have.
func (e *Engine) Seq() uint64 { return e.seq }

// Restore rewinds the engine to a snapshotted clock: virtual time now, event
// sequence counter seq, and fired counter. It requires the engine to be
// quiescent — no live events pending (cancelled events still awaiting reap
// are discarded). Restoring a busy engine would silently drop scheduled work,
// so that is an error.
func (e *Engine) Restore(now Time, seq, fired uint64) error {
	if e.Pending() != 0 {
		return fmt.Errorf("%w: restoring with %d live events pending", ErrNotQuiescent, e.Pending())
	}
	for _, ev := range e.queue {
		ev.queued = false
		e.recycle(ev)
	}
	e.queue = e.queue[:0]
	e.dead = 0
	e.now = now
	e.seq = seq
	e.fired = fired
	e.stopped = false
	return nil
}

// QueueLen returns the raw queue length, including cancelled events that
// have not been reaped yet. Pending is usually what callers want.
func (e *Engine) QueueLen() int { return len(e.queue) }

// newEvent takes an event from the freelist or allocates one.
//
//eagletree:hotpath
func (e *Engine) newEvent(at Time) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = Event{}
	} else {
		ev = &Event{}
	}
	ev.at = at
	ev.seq = e.seq
	ev.eng = e
	e.seq++
	return ev
}

// recycle returns a fired or reaped pooled event to the freelist.
//
//eagletree:hotpath
func (e *Engine) recycle(ev *Event) {
	if !ev.pooled {
		return
	}
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil // do not retain the argument past the callback
	e.free = append(e.free, ev)
}

// checkFuture panics on scheduling in the past: that is always a simulation
// bug, and silently reordering time would corrupt every metric downstream.
func (e *Engine) checkFuture(at Time) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
}

// Schedule runs fn at virtual time at and returns a cancellable handle.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	e.checkFuture(at)
	ev := &Event{at: at, seq: e.seq, fn: fn, eng: e}
	e.seq++
	e.push(ev)
	return ev
}

// ScheduleAfter runs fn after duration d from the current virtual time.
func (e *Engine) ScheduleAfter(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now.Add(d), fn)
}

// ScheduleCall runs fn(arg) at virtual time at. The backing event comes from
// a freelist and is recycled after firing, so a steady-state simulation
// schedules without allocating — callers pass one long-lived callback (for
// example a bound method stored in a struct field) and vary only arg. No
// handle is returned; ScheduleCall events cannot be cancelled.
//
//eagletree:hotpath
func (e *Engine) ScheduleCall(at Time, fn func(any), arg any) {
	e.checkFuture(at)
	ev := e.newEvent(at)
	ev.afn = fn
	ev.arg = arg
	ev.pooled = true
	e.push(ev)
}

// Stop makes Run return after the currently firing event completes.
func (e *Engine) Stop() { e.stopped = true }

// push inserts the event into the heap.
//
//eagletree:hotpath
func (e *Engine) push(ev *Event) {
	ev.queued = true
	q := append(e.queue, ev)
	// Sift up. Hand-rolled (rather than container/heap) so the hot loop pays
	// no interface dispatch.
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		p := q[parent]
		if p.at < ev.at || (p.at == ev.at && p.seq < ev.seq) {
			break
		}
		q[i] = p
		i = parent
	}
	q[i] = ev
	e.queue = q
}

// pop removes and returns the earliest event.
//
//eagletree:hotpath
func (e *Engine) pop() *Event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	q = q[:n]
	if n > 0 {
		// Sift the former tail down from the root.
		i := 0
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			child := q[l]
			if r := l + 1; r < n {
				rc := q[r]
				if rc.at < child.at || (rc.at == child.at && rc.seq < child.seq) {
					l, child = r, rc
				}
			}
			if last.at < child.at || (last.at == child.at && last.seq < child.seq) {
				break
			}
			q[i] = child
			i = l
		}
		q[i] = last
	}
	e.queue = q
	top.queued = false
	return top
}

// fire executes one event that has already been removed from the heap.
//
//eagletree:hotpath
func (e *Engine) fire(ev *Event) {
	e.now = ev.at
	e.fired++
	if ev.afn != nil {
		fn, arg := ev.afn, ev.arg
		e.recycle(ev)
		fn(arg)
		return
	}
	fn := ev.fn
	ev.fn = nil // a fired handle keeps At/Cancelled but drops the closure
	fn()
}

// Run fires events in timestamp order until the queue empties, the horizon is
// passed, or Stop is called. It returns the final virtual time. Events
// scheduled exactly at the horizon still fire; later ones remain queued.
//
//eagletree:hotpath
func (e *Engine) Run(horizon Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > horizon {
			break
		}
		next := e.pop()
		if next.dead {
			e.dead--
			e.recycle(next)
			continue
		}
		e.fire(next)
	}
	if e.now < horizon && horizon != Never && len(e.queue) == 0 {
		// The simulation went quiet before the horizon; advance the clock so
		// rate metrics (IOs per simulated second) stay meaningful. Never is a
		// sentinel, not a real instant, so RunUntilIdle leaves the clock at
		// the last event: time arithmetic after it must not overflow.
		e.now = horizon
	}
	return e.now
}

// RunUntilIdle fires events until the queue empties or Stop is called,
// with no time horizon.
func (e *Engine) RunUntilIdle() Time { return e.Run(Never) }

// RunInterruptible fires events like RunUntilIdle but polls stop every
// `every` fired events (every <= 0 reads as 4096) and abandons the loop when
// it returns true. The queue is left intact on interruption, so the caller
// may resume. It returns the final virtual time and whether the loop was
// interrupted. Until stop fires, the event order is identical to Run — an
// uninterrupted run produces exactly the state RunUntilIdle would.
//
//eagletree:hotpath
func (e *Engine) RunInterruptible(every int, stop func() bool) (Time, bool) {
	if every <= 0 {
		every = 4096
	}
	e.stopped = false
	countdown := every
	for len(e.queue) > 0 && !e.stopped {
		countdown--
		if countdown < 0 {
			if stop() {
				return e.now, true
			}
			countdown = every
		}
		next := e.pop()
		if next.dead {
			e.dead--
			e.recycle(next)
			continue
		}
		e.fire(next)
	}
	return e.now, false
}

// Step fires exactly one live event if any is pending and reports whether an
// event fired. Cancelled events are skipped silently.
//
//eagletree:hotpath
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		next := e.pop()
		if next.dead {
			e.dead--
			e.recycle(next)
			continue
		}
		e.fire(next)
		return true
	}
	return false
}
