package sim

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled to fire at a virtual instant. Events with the
// same timestamp fire in scheduling order (FIFO), which keeps simulations
// deterministic.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// At returns the virtual instant the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.dead = true }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.dead }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Engine is the discrete-event simulation loop. It is not safe for concurrent
// use: all EagleTree components run inside the single event loop, by design.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far. Useful for tests and
// for detecting runaway simulations.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events scheduled but not yet fired
// (including cancelled events that have not been reaped).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn at virtual time at. Scheduling in the past panics: that is
// always a simulation bug, and silently reordering time would corrupt every
// metric downstream.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleAfter runs fn after duration d from the current virtual time.
func (e *Engine) ScheduleAfter(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Stop makes Run return after the currently firing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run fires events in timestamp order until the queue empties, the horizon is
// passed, or Stop is called. It returns the final virtual time. Events
// scheduled exactly at the horizon still fire; later ones remain queued.
func (e *Engine) Run(horizon Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&e.queue)
		if next.dead {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
	}
	if e.now < horizon && horizon != Never && len(e.queue) == 0 {
		// The simulation went quiet before the horizon; advance the clock so
		// rate metrics (IOs per simulated second) stay meaningful. Never is a
		// sentinel, not a real instant, so RunUntilIdle leaves the clock at
		// the last event: time arithmetic after it must not overflow.
		e.now = horizon
	}
	return e.now
}

// RunUntilIdle fires events until the queue empties or Stop is called,
// with no time horizon.
func (e *Engine) RunUntilIdle() Time { return e.Run(Never) }

// Step fires exactly one live event if any is pending and reports whether an
// event fired. Cancelled events are skipped silently.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		next := heap.Pop(&e.queue).(*Event)
		if next.dead {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
		return true
	}
	return false
}
