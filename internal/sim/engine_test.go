package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{500, 100, 300, 200, 400} {
		at := at
		e.Schedule(at, func() { got = append(got, e.Now()) })
	}
	e.RunUntilIdle()
	want := []Time{100, 200, 300, 400, 500}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineSameTimestampFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(42, func() { order = append(order, i) })
	}
	e.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events fired out of order: %v", order)
		}
	}
}

func TestEngineScheduleAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(100, func() {
		e.ScheduleAfter(50, func() { at = e.Now() })
	})
	e.RunUntilIdle()
	if at != 150 {
		t.Fatalf("nested ScheduleAfter fired at %v, want 150", at)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(50, func() {})
	})
	e.RunUntilIdle()
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(100, func() { fired++ })
	e.Schedule(200, func() { fired++ })
	e.Schedule(300, func() { fired++ })
	end := e.Run(200)
	if fired != 2 {
		t.Errorf("fired %d events before horizon, want 2 (horizon-inclusive)", fired)
	}
	if end != 200 {
		t.Errorf("Run returned %v, want 200", end)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineAdvancesToHorizonWhenIdle(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	if end := e.Run(1000); end != 1000 {
		t.Fatalf("idle engine stopped clock at %v, want horizon 1000", end)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(100, func() { fired = true })
	ev.Cancel()
	e.RunUntilIdle()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++; e.Stop() })
	e.Schedule(2, func() { fired++ })
	e.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("Stop did not halt the loop: fired=%d", fired)
	}
	// A subsequent Run resumes.
	e.RunUntilIdle()
	if fired != 2 {
		t.Fatalf("engine did not resume after Stop: fired=%d", fired)
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(5, func() { fired++ })
	e.Schedule(6, func() { fired++ })
	if !e.Step() || fired != 1 {
		t.Fatalf("first Step: fired=%d", fired)
	}
	if !e.Step() || fired != 2 {
		t.Fatalf("second Step: fired=%d", fired)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEngineManyEventsStaySorted(t *testing.T) {
	e := NewEngine()
	rng := NewRNG(7)
	var last Time = -1
	ok := true
	for i := 0; i < 5000; i++ {
		e.Schedule(Time(rng.Intn(100000)), func() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
		})
	}
	e.RunUntilIdle()
	if !ok {
		t.Fatal("events fired out of time order under load")
	}
	if e.Fired() != 5000 {
		t.Fatalf("fired %d, want 5000", e.Fired())
	}
}

func TestTimeArithmetic(t *testing.T) {
	var base Time = 1000
	if got := base.Add(500); got != 1500 {
		t.Errorf("Add: got %v", got)
	}
	if got := Time(1500).Sub(base); got != 500 {
		t.Errorf("Sub: got %v", got)
	}
	if !base.Before(1500) || base.After(1500) {
		t.Error("Before/After inconsistent")
	}
	if (2 * Millisecond).Micros() != 2000 {
		t.Error("Micros conversion wrong")
	}
	if (3 * Second).Millis() != 3000 {
		t.Error("Millis conversion wrong")
	}
	if (5 * Second).Seconds() != 5 {
		t.Error("Seconds conversion wrong")
	}
}

// Property: for any batch of scheduled times, events fire in non-decreasing
// time order and all fire.
func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			e.Schedule(Time(r%1_000_000), func() { fired = append(fired, e.Now()) })
		}
		e.RunUntilIdle()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEventAtAndScheduleAfter(t *testing.T) {
	e := NewEngine()
	ev := e.ScheduleAfter(100, func() {})
	if ev.At() != 100 {
		t.Fatalf("event at %v, want 100", ev.At())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay accepted")
		}
	}()
	e.ScheduleAfter(-1, func() {})
}

func TestTimeAndDurationStrings(t *testing.T) {
	if Time(1500).String() != "1.500us" {
		t.Fatalf("time string %q", Time(1500).String())
	}
	if Duration(2500).String() != "2.500us" {
		t.Fatalf("duration string %q", Duration(2500).String())
	}
}

func TestEnginePendingExcludesCancelled(t *testing.T) {
	e := NewEngine()
	kept := e.Schedule(100, func() {})
	doomed := e.Schedule(200, func() {})
	if e.Pending() != 2 || e.QueueLen() != 2 {
		t.Fatalf("Pending=%d QueueLen=%d before cancel, want 2/2", e.Pending(), e.QueueLen())
	}
	doomed.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending=%d after cancel, want 1 (cancelled events are not pending)", e.Pending())
	}
	if e.QueueLen() != 2 {
		t.Fatalf("QueueLen=%d after cancel, want 2 (unreaped event still queued)", e.QueueLen())
	}
	doomed.Cancel() // double-cancel must not double-count
	if e.Pending() != 1 {
		t.Fatalf("Pending=%d after double cancel, want 1", e.Pending())
	}
	e.RunUntilIdle()
	if e.Pending() != 0 || e.QueueLen() != 0 {
		t.Fatalf("Pending=%d QueueLen=%d after run, want 0/0", e.Pending(), e.QueueLen())
	}
	_ = kept
}

func TestEngineScheduleCall(t *testing.T) {
	e := NewEngine()
	var got []int
	fn := func(arg any) { got = append(got, arg.(int)) }
	e.ScheduleCall(30, fn, 3)
	e.ScheduleCall(10, fn, 1)
	e.Schedule(20, func() { got = append(got, 2) })
	e.RunUntilIdle()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("ScheduleCall order/args wrong: %v", got)
	}
	if e.Fired() != 3 {
		t.Fatalf("fired %d, want 3", e.Fired())
	}
}

func TestEngineScheduleCallReusesEvents(t *testing.T) {
	e := NewEngine()
	var fired int
	fn := func(any) { fired++ }
	// Steady-state schedule/fire cycles must not grow the heap: after the
	// first batch, every event comes from the freelist.
	for i := 0; i < 3; i++ {
		e.ScheduleCall(e.Now(), fn, nil)
		e.RunUntilIdle()
	}
	allocs := testing.AllocsPerRun(100, func() {
		e.ScheduleCall(e.Now(), fn, nil)
		e.RunUntilIdle()
	})
	if allocs > 0 {
		t.Fatalf("ScheduleCall allocates %.1f objects per schedule/fire cycle, want 0", allocs)
	}
	if fired < 103 {
		t.Fatalf("fired %d events", fired)
	}
}

// BenchmarkEngineSchedule measures the hot event path: one pooled event
// scheduled and fired per iteration.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := func(any) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.ScheduleCall(e.Now(), fn, nil)
		e.Step()
	}
}

// BenchmarkEngineScheduleClosure is the allocating legacy path, for
// comparison with BenchmarkEngineSchedule.
func BenchmarkEngineScheduleClosure(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now(), func() {})
		e.Step()
	}
}
