package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{500, 100, 300, 200, 400} {
		at := at
		e.Schedule(at, func() { got = append(got, e.Now()) })
	}
	e.RunUntilIdle()
	want := []Time{100, 200, 300, 400, 500}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineSameTimestampFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(42, func() { order = append(order, i) })
	}
	e.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events fired out of order: %v", order)
		}
	}
}

func TestEngineScheduleAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(100, func() {
		e.ScheduleAfter(50, func() { at = e.Now() })
	})
	e.RunUntilIdle()
	if at != 150 {
		t.Fatalf("nested ScheduleAfter fired at %v, want 150", at)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(50, func() {})
	})
	e.RunUntilIdle()
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(100, func() { fired++ })
	e.Schedule(200, func() { fired++ })
	e.Schedule(300, func() { fired++ })
	end := e.Run(200)
	if fired != 2 {
		t.Errorf("fired %d events before horizon, want 2 (horizon-inclusive)", fired)
	}
	if end != 200 {
		t.Errorf("Run returned %v, want 200", end)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineAdvancesToHorizonWhenIdle(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	if end := e.Run(1000); end != 1000 {
		t.Fatalf("idle engine stopped clock at %v, want horizon 1000", end)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(100, func() { fired = true })
	ev.Cancel()
	e.RunUntilIdle()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++; e.Stop() })
	e.Schedule(2, func() { fired++ })
	e.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("Stop did not halt the loop: fired=%d", fired)
	}
	// A subsequent Run resumes.
	e.RunUntilIdle()
	if fired != 2 {
		t.Fatalf("engine did not resume after Stop: fired=%d", fired)
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(5, func() { fired++ })
	e.Schedule(6, func() { fired++ })
	if !e.Step() || fired != 1 {
		t.Fatalf("first Step: fired=%d", fired)
	}
	if !e.Step() || fired != 2 {
		t.Fatalf("second Step: fired=%d", fired)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEngineManyEventsStaySorted(t *testing.T) {
	e := NewEngine()
	rng := NewRNG(7)
	var last Time = -1
	ok := true
	for i := 0; i < 5000; i++ {
		e.Schedule(Time(rng.Intn(100000)), func() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
		})
	}
	e.RunUntilIdle()
	if !ok {
		t.Fatal("events fired out of time order under load")
	}
	if e.Fired() != 5000 {
		t.Fatalf("fired %d, want 5000", e.Fired())
	}
}

func TestTimeArithmetic(t *testing.T) {
	var base Time = 1000
	if got := base.Add(500); got != 1500 {
		t.Errorf("Add: got %v", got)
	}
	if got := Time(1500).Sub(base); got != 500 {
		t.Errorf("Sub: got %v", got)
	}
	if !base.Before(1500) || base.After(1500) {
		t.Error("Before/After inconsistent")
	}
	if (2 * Millisecond).Micros() != 2000 {
		t.Error("Micros conversion wrong")
	}
	if (3 * Second).Millis() != 3000 {
		t.Error("Millis conversion wrong")
	}
	if (5 * Second).Seconds() != 5 {
		t.Error("Seconds conversion wrong")
	}
}

// Property: for any batch of scheduled times, events fire in non-decreasing
// time order and all fire.
func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			e.Schedule(Time(r%1_000_000), func() { fired = append(fired, e.Now()) })
		}
		e.RunUntilIdle()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEventAtAndScheduleAfter(t *testing.T) {
	e := NewEngine()
	ev := e.ScheduleAfter(100, func() {})
	if ev.At() != 100 {
		t.Fatalf("event at %v, want 100", ev.At())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay accepted")
		}
	}()
	e.ScheduleAfter(-1, func() {})
}

func TestTimeAndDurationStrings(t *testing.T) {
	if Time(1500).String() != "1.500us" {
		t.Fatalf("time string %q", Time(1500).String())
	}
	if Duration(2500).String() != "2.500us" {
		t.Fatalf("duration string %q", Duration(2500).String())
	}
}
