package sim

// RNG is a deterministic pseudo-random source (splitmix64-seeded
// xoshiro256**). Every stochastic decision in the simulator draws from an
// RNG derived from the configuration seed, so a (config, seed) pair fully
// determines the simulation trace.
//
// The implementation is self-contained rather than delegating to math/rand so
// that traces stay stable across Go releases (math/rand's algorithms and
// seeding changed in Go 1.20).
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed across the state vector.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split derives an independent generator from r. Use it to give each
// component its own stream so that adding draws in one component does not
// perturb another component's sequence.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// State returns the generator's internal state vector, for device-state
// snapshots. Restoring it with SetState reproduces the exact draw sequence.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with a vector obtained
// from State.
func (r *RNG) SetState(s [4]uint64) { r.s = s }
