// Package sim provides the discrete-event simulation kernel that every other
// EagleTree layer runs on: a virtual clock, an event queue ordered by virtual
// time, and a deterministic random number source.
//
// The entire simulated IO stack executes inside a single event loop. That is
// a deliberate design decision inherited from the paper: with one loop and a
// seeded RNG, a configuration plus a seed fully determines the simulation
// trace, which is what makes large design-space explorations repeatable.
//
//eagletree:typederrors
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration but for virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Never is a sentinel Time later than any reachable simulation instant.
const Never Time = 1<<63 - 1

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

func (t Time) String() string { return fmt.Sprintf("%.3fus", float64(t)/1e3) }

// Micros returns the duration expressed in microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Millis returns the duration expressed in milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e6 }

// Seconds returns the duration expressed in seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

func (d Duration) String() string { return fmt.Sprintf("%.3fus", float64(d)/1e3) }
