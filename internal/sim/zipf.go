package sim

import "math"

// Zipf draws values in [0, n) following a Zipf distribution with exponent
// s > 0. Value 0 is the most frequent; workload generators map low values to
// "hot" logical addresses. The sampler uses rejection-inversion
// (Hörmann & Derflinger 1996), which needs O(1) state regardless of n, so it
// scales to address spaces of millions of pages.
type Zipf struct {
	rng         *RNG
	n           int64
	s           float64
	hIntegralX1 float64
	hIntegralN  float64
	sdiv        float64
}

// NewZipf returns a Zipf source over [0, n) with exponent s > 0. An exponent
// of exactly 1 is nudged slightly so the closed-form antiderivative applies.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf with non-positive n")
	}
	if s <= 0 {
		panic("sim: Zipf with non-positive exponent")
	}
	if s == 1 {
		s = 1.0000001
	}
	z := &Zipf{rng: rng, n: int64(n), s: s}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(float64(n) + 0.5)
	z.sdiv = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z
}

// h is the Zipf density kernel x^(-s).
func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.s * math.Log(x))
}

// hIntegral is the antiderivative of h: (x^(1-s) - 1) / (1 - s), written via
// expm1 for numerical stability near s == 1.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.s)*logX) * logX
}

// hIntegralInv inverts hIntegral.
func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * (1 - z.s)
	if t < -1 {
		t = -1 // rounding guard: keeps the argument of log1p in range
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with its limit 1 at x == 0.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 computes expm1(x)/x with its limit 1 at x == 0.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+0.25*x))
}

// Next draws one value in [0, n).
func (z *Zipf) Next() int64 {
	for {
		u := z.hIntegralN + z.rng.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.hIntegralInv(u)
		k := int64(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if float64(k)-x <= z.sdiv || u >= z.hIntegral(float64(k)+0.5)-z.h(float64(k)) {
			return k - 1
		}
	}
}
