package resultstore_test

import (
	"os"
	"path/filepath"
	"testing"

	"eagletree/internal/resultstore"
)

// BenchmarkResultStoreAppend measures the full persistence path for one
// sweep's worth of rows: columnar encode, temp-file write, atomic link. The
// produced segment is removed outside the timed region so every iteration
// appends into a store of the same (small) size, as a sweep in the wild does.
func BenchmarkResultStoreAppend(b *testing.B) {
	rows := sampleRows(64)
	st, err := resultstore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Append(rows); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		segs, err := st.Segments()
		if err != nil {
			b.Fatal(err)
		}
		for _, seg := range segs {
			if err := os.Remove(filepath.Join(st.Dir(), seg)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
}
