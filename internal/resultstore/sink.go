package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"eagletree/internal/experiment"
	"eagletree/internal/spec"
)

// Sink adapts one experiment run's event stream into store rows. It is an
// experiment.Observer: attach it to the in-process Runner's Options or to
// the fabric coordinator's Options and every completed variant's row is
// captured with full provenance — the document digest, the variant's
// canonical configuration key, its resolved seed, and the commit label.
// Sequential, parallel and distributed runs emit the same terminal events,
// so the persisted rows are identical regardless of how the sweep executed.
//
// Rows accumulate in memory (events arrive in completion order; rows are
// kept in grid order) and land in the store as one atomic segment on Flush —
// a canceled or failed sweep persists nothing unless flushed explicitly.
type Sink struct {
	store      *Store
	experiment string
	digest     string
	commit     string

	mu      sync.Mutex
	rows    []Row
	present []bool
}

// NewSink builds a sink for one run of doc, labeling every row with commit.
// The variant identities — canonical keys and resolved seeds — are computed
// up front from the document, exactly as the distributed fabric computes its
// lease keys, so a row's provenance never depends on which path executed it.
func NewSink(store *Store, doc spec.Experiment, commit string) (*Sink, error) {
	keys, err := doc.VariantKeys()
	if err != nil {
		return nil, err
	}
	variants, err := doc.ExpandVariants()
	if err != nil {
		return nil, err
	}
	if len(variants) == 0 {
		variants = []spec.Variant{{Label: "run"}}
	}
	docJSON, err := spec.Encode(doc)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(docJSON)
	s := &Sink{
		store:      store,
		experiment: doc.Name,
		digest:     hex.EncodeToString(sum[:]),
		commit:     commit,
		rows:       make([]Row, len(keys)),
		present:    make([]bool, len(keys)),
	}
	for i, v := range variants {
		cfg, err := doc.ConfigFor(v)
		if err != nil {
			return nil, err
		}
		resolved, err := cfg.Resolve()
		if err != nil {
			return nil, fmt.Errorf("resultstore: variant %q: %w", v.Label, err)
		}
		// Mirror the canonical-key normalization: an unset seed runs as 1.
		if resolved.Seed == 0 {
			resolved.Seed = 1
		}
		s.rows[i] = Row{
			Experiment: doc.Name,
			Spec:       s.digest,
			Commit:     commit,
			Seed:       resolved.Seed,
			Index:      i,
			Variant:    keys[i],
			Label:      v.Label,
			X:          v.X,
		}
	}
	return s, nil
}

// OnEvent implements experiment.Observer: successful variant completions are
// captured, everything else passes through untouched.
func (s *Sink) OnEvent(ev experiment.Event) {
	if ev.Kind != experiment.EventVariantDone || ev.Row == nil || ev.Experiment != s.experiment {
		return
	}
	if ev.Index < 0 || ev.Index >= len(s.rows) {
		return
	}
	s.mu.Lock()
	s.rows[ev.Index].Report = ev.Row.Report
	s.present[ev.Index] = true
	s.mu.Unlock()
}

// Rows returns the captured rows in grid order — only variants that
// completed successfully so far.
func (s *Sink) Rows() []Row {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Row
	for i, ok := range s.present {
		if ok {
			out = append(out, s.rows[i])
		}
	}
	return out
}

// Flush appends the captured rows to the store as one atomic segment. A sink
// with no completed rows flushes nothing.
func (s *Sink) Flush() error {
	return s.store.Append(s.Rows())
}
