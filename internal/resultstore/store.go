package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// segExt is the segment file suffix; everything else in the directory is
// ignored (editor droppings, the temp files of an in-flight append).
const segExt = ".etres"

// Store is an append-only result archive: a directory of immutable columnar
// segment files. Opens are cheap (no index to load); every Append writes one
// new segment atomically, so concurrent appenders — parallel sweeps, CI jobs
// sharing a results directory — never corrupt or interleave each other's
// rows.
type Store struct {
	dir string
}

// Open opens (creating if needed) the result store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Segments lists the store's segment files in name order — which is append
// order, since names carry a monotonic sequence number.
func (s *Store) Segments() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	var segs []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segExt) {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// Append persists rows as one new segment. The write is atomic and
// collision-free: the encoded segment lands in a temporary file first, then
// links into place under the next free sequence number — a crash leaves no
// partial segment, and two concurrent appenders allocate distinct numbers.
// Appending no rows is a no-op.
func (s *Store) Append(rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	data := EncodeSegment(rows)
	tmp, err := os.CreateTemp(s.dir, "append-*.tmp")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}

	segs, err := s.Segments()
	if err != nil {
		return err
	}
	next := 1
	if len(segs) > 0 {
		last := strings.TrimSuffix(strings.TrimPrefix(segs[len(segs)-1], "seg-"), segExt)
		if n, perr := strconv.Atoi(last); perr == nil && n >= next {
			next = n + 1
		}
	}
	// os.Link fails when the target exists, so losing a race to another
	// appender is detected, not overwritten; claim the next number instead.
	for attempt := 0; ; attempt++ {
		name := filepath.Join(s.dir, fmt.Sprintf("seg-%06d%s", next, segExt))
		err := os.Link(tmp.Name(), name)
		if err == nil {
			return nil
		}
		if !os.IsExist(err) {
			return fmt.Errorf("resultstore: %w", err)
		}
		if attempt > 1<<20 {
			return fmt.Errorf("resultstore: cannot allocate a segment number after %d attempts: %w", attempt, err)
		}
		next++
	}
}

// Rows reads every segment and returns their rows concatenated in segment
// order. A segment that fails to decode is a typed error naming the file.
func (s *Store) Rows() ([]Row, error) {
	segs, err := s.Segments()
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, seg := range segs {
		data, err := os.ReadFile(filepath.Join(s.dir, seg))
		if err != nil {
			return nil, fmt.Errorf("resultstore: %w", err)
		}
		segRows, err := DecodeSegment(data)
		if err != nil {
			return nil, fmt.Errorf("resultstore: segment %s: %w", seg, err)
		}
		rows = append(rows, segRows...)
	}
	return rows, nil
}
