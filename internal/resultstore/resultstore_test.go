package resultstore_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"eagletree/internal/core"
	"eagletree/internal/experiment"
	"eagletree/internal/resultstore"
	"eagletree/internal/sim"
	"eagletree/internal/spec"
)

// sampleRows builds n rows exercising every column kind: repeated and
// distinct strings (dictionary hits and misses), zero and large integers,
// negative-capable ints, and floats including exact-bit values.
func sampleRows(n int) []resultstore.Row {
	rows := make([]resultstore.Row, n)
	for i := range rows {
		r := &rows[i]
		r.Experiment = "E9-demo"
		r.Spec = "abc123"
		r.Commit = fmt.Sprintf("commit-%d", i%2)
		r.Seed = uint64(7 + i)
		r.Index = i
		r.Variant = fmt.Sprintf("spec1|{\"i\":%d}", i)
		r.Label = fmt.Sprintf("v%d", i%3)
		r.X = float64(i) * 0.5
		r.Report = core.Report{
			Duration:   sim.Duration(1e9 + i),
			Throughput: 1234.5 + float64(i),
			ReadLatency: core.LatencySummary{
				Count: uint64(1000 * i), Mean: sim.Duration(2000 + i),
				Std: sim.Duration(10), P99: sim.Duration(9000), Max: sim.Duration(12000),
			},
			WriteLatency: core.LatencySummary{
				Count: uint64(2000 * i), Mean: sim.Duration(5000 - i),
				Std: sim.Duration(40), P99: sim.Duration(20000), Max: sim.Duration(31000),
			},
			GCMigratedPages:    uint64(i * 17),
			GCErases:           uint64(i * 3),
			WLMigratedPages:    uint64(i),
			TransReads:         uint64(i * 100),
			TransWrites:        uint64(i * 90),
			WriteAmplification: 1.0 + float64(i)/16,
			Wear: core.WearSummary{
				MinErase: i, MaxErase: i + 9, MeanErase: float64(i) + 4.5,
				StdErase: 0.25, PastEndurance: i % 2, BadBlocks: i % 3,
			},
			Retries:        uint64(i % 5),
			Relocations:    uint64(i % 7),
			EraseFailures:  uint64(i % 2),
			GrownBadBlocks: uint64(i % 3),
			EffectiveOP:    0.07 + float64(i)/100,
			MaxPendingOS:   i + 1,
			MaxInFlight:    i + 2,
		}
	}
	return rows
}

func TestSegmentRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 13} {
		rows := sampleRows(n)
		data := resultstore.EncodeSegment(rows)
		got, err := resultstore.DecodeSegment(data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(rows, got) {
			t.Fatalf("n=%d: round-trip mismatch\n got %#v\nwant %#v", n, got[0], rows[0])
		}
		// Canonical encoding: re-encoding the decoded rows reproduces the
		// exact bytes.
		if again := resultstore.EncodeSegment(got); string(again) != string(data) {
			t.Fatalf("n=%d: re-encode differs", n)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	rows := sampleRows(8)
	a := resultstore.EncodeSegment(rows)
	b := resultstore.EncodeSegment(sampleRows(8))
	if string(a) != string(b) {
		t.Fatal("same rows encoded to different bytes")
	}
}

// reseal recomputes the trailing CRC after a payload mutation, so the test
// reaches the structural checks behind the checksum gate.
func reseal(data []byte) []byte {
	payload := data[len("EGTRES")+1 : len(data)-4]
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(payload))
	return data
}

func TestDecodeTypedErrors(t *testing.T) {
	valid := resultstore.EncodeSegment(sampleRows(3))

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x20

	badVersion := append([]byte(nil), valid...)
	badVersion[len("EGTRES")] = 0x7f

	trailing := append(append([]byte(nil), valid[:len(valid)-4]...), 0xee)
	trailing = append(trailing, valid[len(valid)-4:]...)

	// Drift one byte of the first embedded column name ("experiment") and
	// reseal: the checksum passes, the schema comparison must refuse.
	drift := append([]byte(nil), valid...)
	drift[len("EGTRES")+1+1+1] ^= 0x01 // ncols uvarint, name length, first name byte
	drift = reseal(drift)

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, resultstore.ErrNotStore},
		{"bad magic", []byte("NOTRESX\x01"), resultstore.ErrNotStore},
		{"magic only", []byte("EGTRES"), resultstore.ErrNotStore},
		{"bad version", badVersion, resultstore.ErrVersion},
		{"no checksum room", []byte("EGTRES\x01\x00"), resultstore.ErrTruncated},
		{"bit flip", flipped, resultstore.ErrCorrupt},
		{"truncated", append([]byte(nil), valid[:len(valid)-9]...), resultstore.ErrCorrupt},
		{"trailing bytes", trailing, resultstore.ErrCorrupt},
		{"schema drift", drift, resultstore.ErrVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := resultstore.DecodeSegment(tc.data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestStoreAppendRead(t *testing.T) {
	dir := t.TempDir()
	st, err := resultstore.Open(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	first := sampleRows(3)
	second := sampleRows(5)[3:]
	if err := st.Append(first); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(nil); err != nil { // no-op
		t.Fatal(err)
	}
	if err := st.Append(second); err != nil {
		t.Fatal(err)
	}
	segs, err := st.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"seg-000001.etres", "seg-000002.etres"}; !reflect.DeepEqual(segs, want) {
		t.Fatalf("segments %v, want %v", segs, want)
	}
	rows, err := st.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if want := append(append([]resultstore.Row(nil), first...), second...); !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows mismatch: got %d rows", len(rows))
	}
}

func TestStoreNamesCorruptSegment(t *testing.T) {
	st, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(sampleRows(2)); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(st.Dir(), "seg-000002.etres")
	if err := os.WriteFile(bad, []byte("EGTRES\x01garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = st.Rows()
	if !errors.Is(err, resultstore.ErrTruncated) && !errors.Is(err, resultstore.ErrCorrupt) {
		t.Fatalf("want a typed decode error, got %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "seg-000002.etres") {
		t.Fatalf("error should name the segment file: %v", err)
	}
}

// suiteDoc fetches a predefined small-scale suite document by id prefix.
func suiteDoc(t testing.TB, id string) spec.Experiment {
	t.Helper()
	for _, e := range experiment.SuiteSpecs(experiment.Small) {
		if strings.HasPrefix(e.Name, id+"-") {
			return e
		}
	}
	t.Fatalf("no suite experiment %s", id)
	return spec.Experiment{}
}

func TestSinkCapturesRowsWithProvenance(t *testing.T) {
	doc := suiteDoc(t, "E2")
	keys, err := doc.VariantKeys()
	if err != nil {
		t.Fatal(err)
	}
	st, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sink, err := resultstore.NewSink(st, doc, "deadbeef")
	if err != nil {
		t.Fatal(err)
	}

	report := core.Report{Throughput: 99.5, Duration: sim.Duration(5e9)}
	// Completions arrive out of order; a failure, a foreign experiment and an
	// out-of-range index must all be ignored.
	sink.OnEvent(experiment.Event{Kind: experiment.EventVariantDone, Experiment: doc.Name, Index: 1,
		Row: &experiment.Row{Label: "x", Report: report}})
	sink.OnEvent(experiment.Event{Kind: experiment.EventVariantDone, Experiment: doc.Name, Index: 0,
		Row: &experiment.Row{Label: "y", Report: report}})
	sink.OnEvent(experiment.Event{Kind: experiment.EventVariantDone, Experiment: doc.Name, Index: 2,
		Err: errors.New("boom")})
	sink.OnEvent(experiment.Event{Kind: experiment.EventVariantDone, Experiment: "other", Index: 3,
		Row: &experiment.Row{Report: report}})
	sink.OnEvent(experiment.Event{Kind: experiment.EventVariantDone, Experiment: doc.Name, Index: 99,
		Row: &experiment.Row{Report: report}})

	rows := sink.Rows()
	if len(rows) != 2 {
		t.Fatalf("captured %d rows, want 2", len(rows))
	}
	for i, r := range rows {
		if r.Index != i {
			t.Fatalf("row %d has index %d: rows must come back in grid order", i, r.Index)
		}
		if r.Experiment != doc.Name || r.Commit != "deadbeef" {
			t.Fatalf("row %d provenance: %+v", i, r)
		}
		if r.Variant != keys[i] {
			t.Fatalf("row %d variant key %q, want %q", i, r.Variant, keys[i])
		}
		if r.Seed == 0 {
			t.Fatalf("row %d: seed must be resolved (0 normalizes to 1)", i)
		}
		if r.Report.Throughput != 99.5 {
			t.Fatalf("row %d report not captured: %+v", i, r.Report)
		}
	}

	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	stored, err := st.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stored, rows) {
		t.Fatal("flushed rows differ from captured rows")
	}
}

func TestColumnsSchema(t *testing.T) {
	cols := resultstore.Columns()
	seen := map[string]bool{}
	row := sampleRows(1)[0]
	for _, c := range cols {
		if seen[c.Name] {
			t.Fatalf("duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		// Get/Set must be inverses on every column.
		v := c.Get(&row)
		var blank resultstore.Row
		c.Set(&blank, v)
		if got := c.Get(&blank); got != v {
			t.Fatalf("column %q: set %+v then get %+v", c.Name, v, got)
		}
	}
	thr, ok := resultstore.Column("throughput_iops")
	if !ok || thr.Better != 1 {
		t.Fatalf("throughput_iops polarity: %+v ok=%v", thr, ok)
	}
	wa, ok := resultstore.Column("write_amp")
	if !ok || wa.Better != -1 {
		t.Fatalf("write_amp polarity: %+v ok=%v", wa, ok)
	}
	if _, ok := resultstore.Column("no_such"); ok {
		t.Fatal("Column found a column that does not exist")
	}
}
