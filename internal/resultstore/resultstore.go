// Package resultstore persists experiment results as a queryable dataset:
// one row per (spec, seed, variant, commit, Report), appended to a versioned,
// CRC-protected columnar on-disk store. Reports printed by a sweep die with
// the process; rows appended here accumulate across sweeps, seeds, commits
// and machines, and the query layer (internal/query) asks them questions —
// filter, group, aggregate with confidence intervals, diff across commits.
//
// The store is a directory of immutable segment files. Every append writes
// one new segment atomically (temp file + link), so a crash mid-append never
// corrupts existing data and concurrent appenders never interleave; readers
// concatenate segments in name order. Row identity is canonical: the spec
// document digest, the variant's canonical configuration key, the seed and
// the commit label pin exactly what produced each row, so rows from a
// distributed 4-worker sweep are bit-identical to rows from the same
// sequential sweep.
//
//eagletree:canonical
//eagletree:typederrors
package resultstore

import (
	"eagletree/internal/core"
)

// Row is one persisted variant result with its full provenance.
type Row struct {
	// Experiment is the spec document's name ("E2-queue-depth").
	Experiment string
	// Spec is the sha256 hex digest of the document's canonical encoding —
	// the provenance key pinning exactly which document produced the row.
	Spec string
	// Commit labels the code under test (a commit hash, branch or tag);
	// `results diff` joins two commits on (spec, variant, seed).
	Commit string
	// Seed is the variant's resolved configuration seed; replicate rows of
	// one variant differ only here.
	Seed uint64
	// Index is the variant's position in grid order.
	Index int
	// Variant is the variant's canonical configuration key (spec.CanonKey) —
	// the same identity the distributed fabric leases by.
	Variant string
	// Label is the variant's human label ("qd=8").
	Label string
	// X is the variant's numeric sweep coordinate where one exists.
	X float64
	// Report is the variant's measured outcome.
	Report core.Report
}

// Kind is a column's value type.
type Kind int8

const (
	// KindString columns hold identity and provenance strings.
	KindString Kind = iota
	// KindInt columns hold signed integers (durations in nanoseconds,
	// counts that may legitimately be compared signed).
	KindInt
	// KindUint columns hold unsigned counters.
	KindUint
	// KindFloat columns hold IEEE-754 doubles, stored bit-exactly.
	KindFloat
)

func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindUint:
		return "uint"
	case KindFloat:
		return "float"
	default:
		return "Kind(?)"
	}
}

// Value is one cell: exactly one field is meaningful, selected by the
// column's Kind.
type Value struct {
	Str   string
	Int   int64
	Uint  uint64
	Float float64
}

// ColumnSpec declares one column of the row schema: its name, value kind,
// metric polarity, and the accessors binding it to Row fields. The schema is
// the format: segments encode columns in schema order, and decode refuses a
// segment whose embedded schema drifted from this one.
type ColumnSpec struct {
	Name string
	Kind Kind
	// Better is the metric's polarity for regression diffs: +1 when larger
	// values are better (throughput), -1 when smaller values are better
	// (latency, write amplification, failure counts), 0 for identity and
	// neutral columns.
	Better int8
	// Get reads the column's cell out of a row; Set writes it back.
	Get func(*Row) Value
	Set func(*Row, Value)
}

// at builds the Get/Set pair from one pointer accessor, so each field is
// named exactly once in the schema below.
func scol(name string, at func(*Row) *string) ColumnSpec {
	return ColumnSpec{Name: name, Kind: KindString,
		Get: func(r *Row) Value { return Value{Str: *at(r)} },
		Set: func(r *Row, v Value) { *at(r) = v.Str },
	}
}

func icol[T ~int | ~int64](name string, better int8, at func(*Row) *T) ColumnSpec {
	return ColumnSpec{Name: name, Kind: KindInt, Better: better,
		Get: func(r *Row) Value { return Value{Int: int64(*at(r))} },
		Set: func(r *Row, v Value) { *at(r) = T(v.Int) },
	}
}

func ucol(name string, better int8, at func(*Row) *uint64) ColumnSpec {
	return ColumnSpec{Name: name, Kind: KindUint, Better: better,
		Get: func(r *Row) Value { return Value{Uint: *at(r)} },
		Set: func(r *Row, v Value) { *at(r) = v.Uint },
	}
}

func fcol(name string, better int8, at func(*Row) *float64) ColumnSpec {
	return ColumnSpec{Name: name, Kind: KindFloat, Better: better,
		Get: func(r *Row) Value { return Value{Float: *at(r)} },
		Set: func(r *Row, v Value) { *at(r) = v.Float },
	}
}

// columns is the schema, built once; the order is the on-disk column order.
var columns = buildColumns()

// Columns returns the row schema in on-disk order. The returned slice is
// shared and read-only.
func Columns() []ColumnSpec { return columns }

// Column returns the named column's spec.
func Column(name string) (ColumnSpec, bool) {
	for _, c := range columns {
		if c.Name == name {
			return c, true
		}
	}
	return ColumnSpec{}, false
}

// buildColumns declares every persisted column. The snapshot-completeness
// analyzer holds this function to the codec contract: adding a field to Row,
// core.Report, core.LatencySummary or core.WearSummary without extending the
// schema (and bumping the segment version) is a vet failure, not a silent
// loss of data.
//
//eagletree:snapshot encode Row core.Report core.LatencySummary core.WearSummary
//eagletree:snapshot decode Row core.Report core.LatencySummary core.WearSummary
func buildColumns() []ColumnSpec {
	return []ColumnSpec{
		// Identity and provenance.
		scol("experiment", func(r *Row) *string { return &r.Experiment }),
		scol("spec", func(r *Row) *string { return &r.Spec }),
		scol("commit", func(r *Row) *string { return &r.Commit }),
		ucol("seed", 0, func(r *Row) *uint64 { return &r.Seed }),
		icol("index", 0, func(r *Row) *int { return &r.Index }),
		scol("label", func(r *Row) *string { return &r.Label }),
		fcol("x", 0, func(r *Row) *float64 { return &r.X }),
		scol("variant", func(r *Row) *string { return &r.Variant }),

		// Report metrics, typed exactly as measured (durations in integer
		// nanoseconds, counters unsigned, ratios as bit-exact doubles).
		icol("duration_ns", 0, func(r *Row) *int64 { return (*int64)(&r.Report.Duration) }),
		fcol("throughput_iops", +1, func(r *Row) *float64 { return &r.Report.Throughput }),

		ucol("read_count", 0, func(r *Row) *uint64 { return &r.Report.ReadLatency.Count }),
		icol("read_mean_ns", -1, func(r *Row) *int64 { return (*int64)(&r.Report.ReadLatency.Mean) }),
		icol("read_std_ns", -1, func(r *Row) *int64 { return (*int64)(&r.Report.ReadLatency.Std) }),
		icol("read_p99_ns", -1, func(r *Row) *int64 { return (*int64)(&r.Report.ReadLatency.P99) }),
		icol("read_max_ns", -1, func(r *Row) *int64 { return (*int64)(&r.Report.ReadLatency.Max) }),

		ucol("write_count", 0, func(r *Row) *uint64 { return &r.Report.WriteLatency.Count }),
		icol("write_mean_ns", -1, func(r *Row) *int64 { return (*int64)(&r.Report.WriteLatency.Mean) }),
		icol("write_std_ns", -1, func(r *Row) *int64 { return (*int64)(&r.Report.WriteLatency.Std) }),
		icol("write_p99_ns", -1, func(r *Row) *int64 { return (*int64)(&r.Report.WriteLatency.P99) }),
		icol("write_max_ns", -1, func(r *Row) *int64 { return (*int64)(&r.Report.WriteLatency.Max) }),

		ucol("gc_migrated_pages", -1, func(r *Row) *uint64 { return &r.Report.GCMigratedPages }),
		ucol("gc_erases", -1, func(r *Row) *uint64 { return &r.Report.GCErases }),
		ucol("wl_migrated_pages", -1, func(r *Row) *uint64 { return &r.Report.WLMigratedPages }),
		ucol("trans_reads", -1, func(r *Row) *uint64 { return &r.Report.TransReads }),
		ucol("trans_writes", -1, func(r *Row) *uint64 { return &r.Report.TransWrites }),
		fcol("write_amp", -1, func(r *Row) *float64 { return &r.Report.WriteAmplification }),

		icol("wear_min_erase", 0, func(r *Row) *int { return &r.Report.Wear.MinErase }),
		icol("wear_max_erase", 0, func(r *Row) *int { return &r.Report.Wear.MaxErase }),
		fcol("wear_mean_erase", 0, func(r *Row) *float64 { return &r.Report.Wear.MeanErase }),
		fcol("wear_std_erase", -1, func(r *Row) *float64 { return &r.Report.Wear.StdErase }),
		icol("wear_past_endurance", -1, func(r *Row) *int { return &r.Report.Wear.PastEndurance }),
		icol("wear_bad_blocks", -1, func(r *Row) *int { return &r.Report.Wear.BadBlocks }),

		ucol("retries", -1, func(r *Row) *uint64 { return &r.Report.Retries }),
		ucol("relocations", -1, func(r *Row) *uint64 { return &r.Report.Relocations }),
		ucol("erase_failures", -1, func(r *Row) *uint64 { return &r.Report.EraseFailures }),
		ucol("grown_bad_blocks", -1, func(r *Row) *uint64 { return &r.Report.GrownBadBlocks }),
		fcol("effective_op", +1, func(r *Row) *float64 { return &r.Report.EffectiveOP }),

		icol("max_pending_os", 0, func(r *Row) *int { return &r.Report.MaxPendingOS }),
		icol("max_in_flight", 0, func(r *Row) *int { return &r.Report.MaxInFlight }),
	}
}
