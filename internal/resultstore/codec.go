package resultstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// The segment layout follows the snapshot codec's conventions: 6 magic
// bytes, 1 version byte, a payload, and a little-endian CRC32 (IEEE) of the
// payload. The CRC is verified before any field is parsed, so corruption
// anywhere in the payload reports as ErrCorrupt rather than as a misleading
// field error.
//
// The payload is columnar: the embedded schema (column names and kinds, so
// drift between writer and reader is a typed refusal, never silent
// misalignment), the row count, then one column at a time — string columns
// as a dictionary plus per-row indices, integer columns as varints, float
// columns as bit-exact fixed64 words.
const (
	segMagic   = "EGTRES"
	segVersion = 1
)

// Errors reported by the segment codec and the store. Wrapped with detail;
// match with errors.Is.
var (
	// ErrNotStore marks input (or a directory entry) that is not a result
	// segment.
	ErrNotStore = errors.New("resultstore: not a result segment")
	// ErrVersion marks a segment written by an unknown format version or
	// with a drifted column schema.
	ErrVersion = errors.New("resultstore: unsupported segment version")
	// ErrTruncated marks input shorter than its own structure promises.
	ErrTruncated = errors.New("resultstore: truncated segment")
	// ErrCorrupt marks a payload whose checksum or structure does not match.
	ErrCorrupt = errors.New("resultstore: corrupt segment")
)

// EncodeSegment serializes rows to one immutable columnar segment.
func EncodeSegment(rows []Row) []byte {
	e := &enc{b: make([]byte, 0, 1<<12)}
	e.b = append(e.b, segMagic...)
	e.b = append(e.b, segVersion)
	start := len(e.b)

	cols := Columns()
	e.u64(uint64(len(cols)))
	for _, c := range cols {
		e.str(c.Name)
		e.b = append(e.b, byte(c.Kind))
	}
	e.u64(uint64(len(rows)))
	for _, c := range cols {
		for i := range rows {
			v := c.Get(&rows[i])
			switch c.Kind {
			case KindString:
				e.dictRef(v.Str)
			case KindInt:
				e.i64(v.Int)
			case KindUint:
				e.u64(v.Uint)
			case KindFloat:
				e.fix64(math.Float64bits(v.Float))
			}
		}
		if c.Kind == KindString {
			e.flushDict()
		}
	}

	sum := crc32.ChecksumIEEE(e.b[start:])
	e.b = binary.LittleEndian.AppendUint32(e.b, sum)
	return e.b
}

// DecodeSegment parses a segment produced by EncodeSegment, verifying magic,
// version, checksum and the embedded column schema before reconstructing any
// row. All failures are the package's typed errors.
func DecodeSegment(data []byte) ([]Row, error) {
	if len(data) < len(segMagic)+1 || string(data[:len(segMagic)]) != segMagic {
		return nil, ErrNotStore
	}
	if v := data[len(segMagic)]; v != segVersion {
		return nil, fmt.Errorf("%w: got %d, support %d", ErrVersion, v, segVersion)
	}
	if len(data) < len(segMagic)+1+4 {
		return nil, fmt.Errorf("%w: no room for checksum", ErrTruncated)
	}
	payload := data[len(segMagic)+1 : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}

	d := &dec{b: payload}
	cols := Columns()
	ncols := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	if ncols != uint64(len(cols)) {
		return nil, fmt.Errorf("%w: segment has %d columns, schema has %d", ErrVersion, ncols, len(cols))
	}
	for _, c := range cols {
		name := d.str()
		kind := d.byte()
		if d.err != nil {
			return nil, d.err
		}
		if name != c.Name || Kind(kind) != c.Kind {
			return nil, fmt.Errorf("%w: segment column %q (kind %d), schema expects %q (%s)",
				ErrVersion, name, kind, c.Name, c.Kind)
		}
	}
	nrows := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	// Bounded allocation: every row contributes at least one byte per column
	// to the payload, so a row count exceeding the remaining bytes is
	// structurally impossible — refuse before allocating.
	if nrows > uint64(len(d.b)-d.off)+1 {
		return nil, fmt.Errorf("%w: %d rows promised, %d payload bytes remain", ErrCorrupt, nrows, len(d.b)-d.off)
	}
	rows := make([]Row, nrows)
	for _, c := range cols {
		switch c.Kind {
		case KindString:
			dict := d.dict(nrows)
			for i := range rows {
				idx := d.u64()
				if d.err != nil {
					return nil, d.err
				}
				if idx >= uint64(len(dict)) {
					return nil, fmt.Errorf("%w: column %q: dictionary index %d of %d", ErrCorrupt, c.Name, idx, len(dict))
				}
				c.Set(&rows[i], Value{Str: dict[idx]})
			}
		case KindInt:
			for i := range rows {
				c.Set(&rows[i], Value{Int: d.i64()})
			}
		case KindUint:
			for i := range rows {
				c.Set(&rows[i], Value{Uint: d.u64()})
			}
		case KindFloat:
			for i := range rows {
				c.Set(&rows[i], Value{Float: math.Float64frombits(d.fix64())})
			}
		}
		if d.err != nil {
			return nil, d.err
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != d.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b)-d.off)
	}
	return rows, nil
}

// --- encoder ---

type enc struct {
	b []byte
	// String columns buffer their per-row dictionary references until the
	// column's value set is known, then flush dictionary-first.
	dictIdx map[string]uint64
	dictVal []string
	refs    []uint64
}

func (e *enc) u64(v uint64)   { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i64(v int64)    { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) fix64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) str(s string)   { e.u64(uint64(len(s))); e.b = append(e.b, s...) }

// dictRef records one string cell against the current column's dictionary.
func (e *enc) dictRef(s string) {
	if e.dictIdx == nil {
		e.dictIdx = make(map[string]uint64)
	}
	idx, ok := e.dictIdx[s]
	if !ok {
		idx = uint64(len(e.dictVal))
		e.dictIdx[s] = idx
		e.dictVal = append(e.dictVal, s)
	}
	e.refs = append(e.refs, idx)
}

// flushDict writes the current column's dictionary then its per-row
// references, and resets for the next column. Dictionary order is first
// appearance in row order — deterministic for a given row set.
func (e *enc) flushDict() {
	e.u64(uint64(len(e.dictVal)))
	for _, s := range e.dictVal {
		e.str(s)
	}
	for _, r := range e.refs {
		e.u64(r)
	}
	e.dictIdx, e.dictVal, e.refs = nil, nil, nil
}

// --- decoder ---

type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail(fmt.Errorf("%w: byte at offset %d", ErrTruncated, d.off))
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("%w: uvarint at offset %d", ErrTruncated, d.off))
		return 0
	}
	d.off += n
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("%w: varint at offset %d", ErrTruncated, d.off))
		return 0
	}
	d.off += n
	return v
}

func (d *dec) fix64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail(fmt.Errorf("%w: fixed64 at offset %d", ErrTruncated, d.off))
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(fmt.Errorf("%w: string of %d bytes, %d remain", ErrTruncated, n, len(d.b)-d.off))
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// dict reads one string column's dictionary, bounding its size by both the
// row count (a dictionary never holds more distinct values than rows) and
// the remaining payload.
func (d *dec) dict(nrows uint64) []string {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > nrows || n > uint64(len(d.b)-d.off)+1 {
		d.fail(fmt.Errorf("%w: dictionary of %d entries for %d rows", ErrCorrupt, n, nrows))
		return nil
	}
	dict := make([]string, n)
	for i := range dict {
		dict[i] = d.str()
		if d.err != nil {
			return nil
		}
	}
	return dict
}
