package resultstore_test

import (
	"errors"
	"testing"

	"eagletree/internal/resultstore"
)

// FuzzDecodeStore hammers the segment decoder with mutated and truncated
// inputs. The contract under test: DecodeSegment returns one of the codec's
// typed errors — ErrNotStore, ErrVersion, ErrTruncated, ErrCorrupt — and
// never panics, never over-allocates on hostile length fields, and any input
// it accepts re-encodes cleanly. The committed corpus under
// testdata/fuzz/FuzzDecodeStore seeds the interesting shapes: a whole valid
// segment, a truncation, a bit flip and a bare magic header.
func FuzzDecodeStore(f *testing.F) {
	valid := resultstore.EncodeSegment(sampleRows(3))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("EGTRES"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := resultstore.DecodeSegment(data)
		if err != nil {
			for _, typed := range []error{resultstore.ErrNotStore, resultstore.ErrVersion,
				resultstore.ErrTruncated, resultstore.ErrCorrupt} {
				if errors.Is(err, typed) {
					return
				}
			}
			t.Fatalf("DecodeSegment returned an untyped error: %v", err)
		}
		// The CRC gate means acceptance implies a well-formed payload; such
		// rows must survive re-encoding and decode back identically.
		again, err := resultstore.DecodeSegment(resultstore.EncodeSegment(rows))
		if err != nil {
			t.Fatalf("re-encoded accepted rows failed to decode: %v", err)
		}
		if len(again) != len(rows) {
			t.Fatalf("re-encode changed row count: %d -> %d", len(rows), len(again))
		}
	})
}
