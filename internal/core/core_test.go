package core

import (
	"strings"
	"testing"

	"eagletree/internal/controller"
	"eagletree/internal/flash"
	"eagletree/internal/iface"
	"eagletree/internal/osched"
	"eagletree/internal/sim"
	"eagletree/internal/stats"
	"eagletree/internal/workload"
)

func testConfig() Config {
	return Config{
		Controller: controller.Config{
			Geometry:      flash.Geometry{Channels: 2, LUNsPerChannel: 2, BlocksPerLUN: 32, PagesPerBlock: 16, PageSize: 4096},
			Overprovision: 0.2,
			WL:            controller.WLOff(),
		},
		OS:   osched.Config{QueueDepth: 16},
		Seed: 42,
	}
}

func TestStackEndToEnd(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := int64(s.LogicalPages())
	s.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: 16})
	s.Run()
	rep := s.Report()
	if rep.WriteLatency.Count != uint64(n) {
		t.Fatalf("completed %d writes, want %d", rep.WriteLatency.Count, n)
	}
	if rep.Throughput <= 0 {
		t.Fatal("zero throughput after a full sequential fill")
	}
}

func TestStackMeasurementBarrier(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := int64(s.LogicalPages())
	prep := s.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: 16})
	barrier := s.AddBarrier(prep)
	s.Add(&workload.RandomReader{From: 0, Space: n, Count: 100, Depth: 8}, barrier)
	s.Run()
	rep := s.Report()
	if rep.WriteLatency.Count != 0 {
		t.Fatalf("measurement window saw %d preparation writes", rep.WriteLatency.Count)
	}
	if rep.ReadLatency.Count != 100 {
		t.Fatalf("measured %d reads, want 100", rep.ReadLatency.Count)
	}
	if rep.WriteAmplification != 0 {
		t.Fatalf("WA %.2f for a read-only window, want 0", rep.WriteAmplification)
	}
}

func TestStackWAInMeasurementWindowOnly(t *testing.T) {
	cfg := testConfig()
	cfg.Controller.Overprovision = 0.25
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(s.LogicalPages())
	prep := s.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: 16})
	aged := s.Add(&workload.RandomWriter{From: 0, Space: n, Count: 2 * n, Depth: 16}, prep)
	barrier := s.AddBarrier(aged)
	s.Add(&workload.RandomWriter{From: 0, Space: n, Count: n, Depth: 16}, barrier)
	s.Run()
	rep := s.Report()
	if rep.WriteAmplification <= 1.0 {
		t.Fatalf("WA %.3f on an aged device under random overwrite, want > 1", rep.WriteAmplification)
	}
	if rep.GCMigratedPages == 0 {
		t.Fatal("no GC migrations in steady state")
	}
}

func TestStackDeterminism(t *testing.T) {
	run := func() Report {
		s, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		n := int64(s.LogicalPages())
		prep := s.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: 16})
		s.Add(&workload.ReadWriteMix{From: 0, Space: n, Count: 500, ReadFraction: 0.5, Depth: 8}, prep)
		s.Run()
		return s.Report()
	}
	a, b := run(), run()
	if a.Throughput != b.Throughput || a.ReadLatency != b.ReadLatency || a.WriteLatency != b.WriteLatency {
		t.Fatalf("reports differ across identical runs:\n%v\nvs\n%v", a, b)
	}
}

func TestStackSeedChangesTrace(t *testing.T) {
	// Uniform random writes over a fresh device complete with seed-invariant
	// timing (placement ignores the LPN), so fingerprint which LPNs got
	// written instead of comparing the report.
	run := func(seed uint64) []bool {
		cfg := testConfig()
		cfg.Seed = seed
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := int64(s.LogicalPages())
		s.Add(&workload.RandomWriter{From: 0, Space: n, Count: 400, Depth: 8})
		s.Run()
		mapped := make([]bool, n)
		for lpn := int64(0); lpn < n; lpn++ {
			_, mapped[lpn] = s.Controller.Mapper().Lookup(iface.LPN(lpn))
		}
		return mapped
	}
	a, b := run(1), run(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds wrote identical LPN sets")
	}
}

func TestStackLockedBusDropsMessages(t *testing.T) {
	cfg := testConfig()
	cfg.LockBus = true
	cfg.Controller.OpenInterface = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Add(&workload.Func{F: func(ctx *workload.Ctx) {
		if ctx.Publish(iface.PriorityHint{Thread: 0, Priority: iface.PriorityHigh}) {
			t.Error("locked bus delivered a message")
		}
	}})
	s.Run()
	if s.Bus.Dropped() != 1 {
		t.Fatalf("dropped %d messages, want 1", s.Bus.Dropped())
	}
}

func TestStackRejectsForeignOnComplete(t *testing.T) {
	cfg := testConfig()
	cfg.Controller.OnComplete = func(*iface.Request) {}
	if _, err := New(cfg); err == nil {
		t.Fatal("config with preset OnComplete accepted")
	}
}

func TestStackRunUntilHorizon(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := int64(s.LogicalPages())
	s.Add(&workload.SequentialWriter{From: 0, Count: n, Loops: 100, Depth: 4})
	horizon := sim.Time(10 * int64(sim.Millisecond))
	end := s.RunUntil(horizon)
	if end > horizon {
		t.Fatalf("ran to %v past horizon %v", end, horizon)
	}
	if s.Report().WriteLatency.Count == 0 {
		t.Fatal("nothing completed before the horizon")
	}
}

func TestReportString(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := int64(s.LogicalPages())
	s.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: 8})
	s.Run()
	out := s.Report().String()
	for _, want := range []string{"throughput", "read latency", "write latency", "wear"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestStackTraceRecordsAllStages(t *testing.T) {
	cfg := testConfig()
	cfg.TraceCap = 4096
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Add(&workload.SequentialWriter{From: 0, Count: 8, Depth: 2})
	s.Run()
	stages := map[stats.Stage]int{}
	for _, e := range s.Stats.Trace().Events() {
		stages[e.Stage]++
	}
	for _, want := range []stats.Stage{
		stats.StageSubmitted, stats.StageIssued, stats.StageDispatched, stats.StageCompleted,
	} {
		if stages[want] != 8 {
			t.Errorf("stage %v recorded %d times, want 8", want, stages[want])
		}
	}
	// Per-request stage ordering: submitted <= issued <= dispatched <= completed.
	perReq := map[uint64]map[stats.Stage]sim.Time{}
	for _, e := range s.Stats.Trace().Events() {
		if perReq[e.ReqID] == nil {
			perReq[e.ReqID] = map[stats.Stage]sim.Time{}
		}
		perReq[e.ReqID][e.Stage] = e.At
	}
	for id, m := range perReq {
		if m[stats.StageSubmitted] > m[stats.StageIssued] ||
			m[stats.StageIssued] > m[stats.StageDispatched] ||
			m[stats.StageDispatched] > m[stats.StageCompleted] {
			t.Errorf("req %d stages out of order: %v", id, m)
		}
	}
}

func TestStackDFTLConfiguration(t *testing.T) {
	cfg := testConfig()
	cfg.Controller.Mapping = controller.MapDFTL
	cfg.Controller.CMTEntries = 32
	cfg.Controller.ReservedTransBlocks = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(s.LogicalPages())
	s.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: 8})
	s.Run()
	rep := s.Report()
	if rep.TransWrites == 0 {
		t.Fatal("DFTL stack recorded no translation writes")
	}
}
