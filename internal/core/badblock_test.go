package core

import (
	"testing"

	"eagletree/internal/flash"
	"eagletree/internal/iface"
	"eagletree/internal/workload"
)

func TestBadBlocksShrinkCapacity(t *testing.T) {
	clean := testConfig()
	faulty := testConfig()
	faulty.Controller.BadBlockFraction = 0.1
	faulty.Controller.BadBlockSeed = 3

	sc, err := New(clean)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := New(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if sf.LogicalPages() >= sc.LogicalPages() {
		t.Fatalf("faulty device exports %d pages, clean %d", sf.LogicalPages(), sc.LogicalPages())
	}
}

func TestBadBlocksSurviveFullWorkload(t *testing.T) {
	cfg := testConfig()
	cfg.Controller.BadBlockFraction = 0.1
	cfg.Controller.BadBlockSeed = 5
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(s.LogicalPages())
	// Fill, overwrite randomly (forcing GC around the bad blocks), then
	// verify every LPN still readable.
	seq := s.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: 16})
	over := s.Add(&workload.RandomWriter{From: 0, Space: n, Count: 2 * n, Depth: 16}, seq)
	barrier := s.AddBarrier(over)
	s.Add(&workload.SequentialReader{From: 0, Count: n, Depth: 16}, barrier)
	s.Run()
	if !s.Runner.Done() {
		t.Fatal("workload hung on a bad-block device")
	}
	if got := s.Controller.Counters().UnmappedReads; got != 0 {
		t.Fatalf("%d LPNs lost on a bad-block device", got)
	}
	rep := s.Report()
	if rep.Wear.BadBlocks == 0 {
		t.Fatal("report shows no bad blocks despite injection")
	}
	// No bad block may ever have been programmed.
	geo := cfg.Controller.Geometry
	arr := s.Controller.Array()
	for lun := 0; lun < geo.LUNs(); lun++ {
		for blk := 0; blk < geo.BlocksPerLUN; blk++ {
			meta := arr.Block(flash.BlockID{LUN: lun, Block: blk})
			if meta.Bad && meta.WritePtr != 0 {
				t.Fatalf("bad block lun%d/blk%d was programmed", lun, blk)
			}
		}
	}
}

func TestBadBlockFractionValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Controller.BadBlockFraction = 0.9
	if _, err := New(cfg); err == nil {
		t.Fatal("90% bad blocks accepted")
	}
}

func TestBadBlocksDeterministic(t *testing.T) {
	mk := func() int {
		cfg := testConfig()
		cfg.Controller.BadBlockFraction = 0.15
		cfg.Controller.BadBlockSeed = 11
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s.LogicalPages()
	}
	if mk() != mk() {
		t.Fatal("same seed produced different bad-block maps")
	}
}

func TestEnduranceReporting(t *testing.T) {
	cfg := testConfig()
	cfg.Controller.Timing.EnduranceLimit = 2 // absurdly low: trip it fast
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(s.LogicalPages())
	s.Add(&workload.RandomWriter{From: 0, Space: n, Count: 6 * n, Depth: 16})
	s.Run()
	if s.Report().Wear.PastEndurance == 0 {
		t.Fatal("no block reported past a 2-cycle endurance limit after 6 overwrite passes")
	}
}

func TestTrimmedDeviceReadsUnmapped(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := s.Add(&workload.SequentialWriter{From: 0, Count: 64, Depth: 8})
	tr := s.Add(&workload.Trimmer{From: 0, Count: 64, Depth: 8}, w)
	s.Add(&workload.SequentialReader{From: 0, Count: 64, Depth: 8}, tr)
	s.Run()
	if got := s.Controller.Counters().UnmappedReads; got != 64 {
		t.Fatalf("UnmappedReads = %d, want 64 after trim", got)
	}
	_ = iface.LPN(0)
}
