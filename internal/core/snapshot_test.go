package core_test

import (
	"reflect"
	"testing"

	"eagletree/internal/controller"
	"eagletree/internal/core"
	"eagletree/internal/flash"
	"eagletree/internal/gc"
	"eagletree/internal/hotcold"
	"eagletree/internal/osched"
	"eagletree/internal/sched"
	"eagletree/internal/sim"
	"eagletree/internal/snapshot"
	"eagletree/internal/wl"
	"eagletree/internal/workload"
)

// pagemapCfg returns a small page-mapped configuration. A fresh value per
// call: policy, allocator and detector instances are mutable and must not be
// shared between stacks.
func pagemapCfg() core.Config {
	return core.Config{
		Controller: controller.Config{
			Geometry:      flash.Geometry{Channels: 2, LUNsPerChannel: 2, BlocksPerLUN: 48, PagesPerBlock: 16, PageSize: 4096},
			Overprovision: 0.15,
			GCGreediness:  2,
			WL:            controller.WLOff(),
		},
		OS:   osched.Config{QueueDepth: 16},
		Seed: 11,
	}
}

// richCfg exercises every stateful component the snapshot layer captures:
// DFTL with its CMT and translation ring, static+dynamic wear leveling, the
// MBF hot-data detector, a write buffer, the round-robin allocator and the
// random GC victim policy.
func richCfg() core.Config {
	wlCfg := wl.DefaultConfig()
	wlCfg.CheckInterval = 2 * sim.Millisecond
	return core.Config{
		Controller: controller.Config{
			Geometry:            flash.Geometry{Channels: 2, LUNsPerChannel: 2, BlocksPerLUN: 48, PagesPerBlock: 16, PageSize: 4096},
			Mapping:             controller.MapDFTL,
			CMTEntries:          256,
			ReservedTransBlocks: 3,
			Overprovision:       0.15,
			GCGreediness:        2,
			GCPolicy:            &gc.Random{},
			WL:                  wlCfg,
			Alloc:               &sched.RoundRobin{},
			Detector:            hotcold.NewMBF(hotcold.DefaultMBFConfig()),
			WriteBufferPages:    8,
			OpenInterface:       true,
		},
		OS:   osched.Config{QueueDepth: 16},
		Seed: 23,
	}
}

// prepare registers the fill-and-age preparation threads.
func prepare(s *core.Stack) {
	n := int64(s.LogicalPages())
	seq := s.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: 16})
	s.Add(&workload.RandomWriter{From: 0, Space: n, Count: n, Depth: 16}, seq)
}

// measured registers the measured workload threads.
func measured(s *core.Stack) {
	n := int64(s.LogicalPages())
	s.Add(&workload.ReadWriteMix{From: 0, Space: n, Count: 600, ReadFraction: 0.5, Depth: 8})
	s.Add(&workload.RandomWriter{From: 0, Space: n, Count: 300, Depth: 8})
}

// TestSnapshotContinuationMatchesDirect is the snapshot layer's core
// contract: preparing a device, snapshotting it, restoring the snapshot into
// a fresh stack and running the measured workload there must be bit-identical
// to preparing and measuring in one continuous stack. Any state the snapshot
// fails to carry — mapping tables, CMT order, free-list order, reservation
// tails, RNG streams, engine clock or sequence counter — shows up here as a
// report divergence.
func TestSnapshotContinuationMatchesDirect(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() core.Config
	}{
		{"pagemap", pagemapCfg},
		{"dftl-wl-mbf-buffer", richCfg},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Direct: prepare and measure on one stack.
			direct, err := core.New(tc.cfg())
			if err != nil {
				t.Fatal(err)
			}
			prepare(direct)
			direct.Run()
			if !direct.Runner.Done() {
				t.Fatal("direct preparation did not drain")
			}
			direct.MarkMeasurement()
			measured(direct)
			direct.Run()
			want := direct.Report()

			// Snapshot: prepare on one stack, measure on a restored one, with
			// an encode/decode round trip in between (what the state cache and
			// -save-state/-load-state actually exercise).
			prep, err := core.New(tc.cfg())
			if err != nil {
				t.Fatal(err)
			}
			prepare(prep)
			prep.Run()
			ds, err := prep.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := snapshot.Decode(snapshot.Encode(ds))
			if err != nil {
				t.Fatal(err)
			}
			restored, err := core.Restore(tc.cfg(), decoded)
			if err != nil {
				t.Fatal(err)
			}
			if got, wantNow := restored.Engine.Now(), prep.Engine.Now(); got != wantNow {
				t.Fatalf("restored clock %v, prepared stack at %v", got, wantNow)
			}
			restored.MarkMeasurement()
			measured(restored)
			restored.Run()
			if !restored.Runner.Done() {
				t.Fatal("restored run did not drain")
			}
			got := restored.Report()

			if !reflect.DeepEqual(want, got) {
				t.Fatalf("restored report differs from direct continuation:\ndirect:   %+v\nrestored: %+v", want, got)
			}
		})
	}
}

// TestSnapshotRequiresQuiescence: snapshotting a stack with undrained work
// must fail, not silently drop the pending events or threads.
func TestSnapshotRequiresQuiescence(t *testing.T) {
	s, err := core.New(pagemapCfg())
	if err != nil {
		t.Fatal(err)
	}
	s.Add(&workload.SequentialWriter{From: 0, Count: 32, Depth: 4})
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("snapshot of a stack with an unfinished thread succeeded")
	}
	s.Run()
	if _, err := s.Snapshot(); err != nil {
		t.Fatalf("snapshot of a drained stack failed: %v", err)
	}
	s.Engine.Schedule(s.Engine.Now().Add(sim.Millisecond), func() {})
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("snapshot with a pending event succeeded")
	}
}

// TestRestoreRejectsMismatch: restoring into a structurally different
// configuration must fail loudly.
func TestRestoreRejectsMismatch(t *testing.T) {
	s, err := core.New(pagemapCfg())
	if err != nil {
		t.Fatal(err)
	}
	prepare(s)
	s.Run()
	ds, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	geo := pagemapCfg()
	geo.Controller.Geometry.Channels = 4
	if _, err := core.Restore(geo, ds); err == nil {
		t.Fatal("restore into a different geometry succeeded")
	}

	dftl := pagemapCfg()
	dftl.Controller.Mapping = controller.MapDFTL
	if _, err := core.Restore(dftl, ds); err == nil {
		t.Fatal("restore of a page-map snapshot into a DFTL stack succeeded")
	}

	op := pagemapCfg()
	op.Controller.Overprovision = 0.4
	if _, err := core.Restore(op, ds); err == nil {
		t.Fatal("restore into a different logical capacity succeeded")
	}
}

// TestRestoreWithStricterGCKicks: a snapshot prepared under a lazy GC target
// restored under a much greedier one must not deadlock — the restore kick
// starts collection even though no write completion will arrive to do it.
func TestRestoreWithStricterGCKicks(t *testing.T) {
	s, err := core.New(pagemapCfg())
	if err != nil {
		t.Fatal(err)
	}
	prepare(s)
	s.Run()
	ds, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	greedy := pagemapCfg()
	greedy.Controller.GCGreediness = 4
	restored, err := core.Restore(greedy, ds)
	if err != nil {
		t.Fatal(err)
	}
	restored.MarkMeasurement()
	n := int64(restored.LogicalPages())
	restored.Add(&workload.RandomWriter{From: 0, Space: n, Count: n / 2, Depth: 8})
	restored.Run()
	if !restored.Runner.Done() {
		t.Fatalf("measured writes deadlocked under restored greediness: %d threads stuck", restored.Runner.Active())
	}
	rep := restored.Report()
	if rep.WriteLatency.Count == 0 {
		t.Fatal("no writes measured")
	}
}
