// Package core assembles the full EagleTree stack — event engine, open
// interface bus, statistics, SSD controller, OS scheduler and thread runner —
// from one configuration, and snapshots the metrics experiments report.
//
// The stack operates entirely in virtual time: Run drives the event loop
// until every registered thread finishes, and a (Config, Seed) pair fully
// determines the resulting IO trace.
//
//eagletree:canonical
//eagletree:typederrors
package core

import (
	"context"
	"errors"
	"fmt"

	"eagletree/internal/controller"
	"eagletree/internal/iface"
	"eagletree/internal/osched"
	"eagletree/internal/sim"
	"eagletree/internal/stats"
	"eagletree/internal/workload"
)

// Errors wrapped by the stack's exported API, per the typed-error contract.
var (
	// ErrConfig wraps every stack-assembly configuration failure.
	ErrConfig = errors.New("core: invalid configuration")
	// ErrNotQuiescent wraps every Snapshot precondition failure: the stack
	// still holds in-flight work that a snapshot would drop.
	ErrNotQuiescent = errors.New("core: stack not quiescent")
	// ErrSnapshotMismatch wraps every structural mismatch between a
	// snapshot and the configuration it is restored under.
	ErrSnapshotMismatch = errors.New("core: snapshot does not match configuration")
)

// Config configures every layer of the stack.
type Config struct {
	// Controller configures the SSD: geometry, timings, FTL, GC, WL and the
	// device-side scheduler. Its OnComplete field is owned by the stack.
	Controller controller.Config
	// OS configures the operating-system scheduler layer.
	OS osched.Config
	// Seed determines all workload randomness. Zero means 1.
	Seed uint64
	// SeriesBucket enables a completion time series with this bucket width.
	SeriesBucket sim.Duration
	// TraceCap enables IO tracing with this capacity (number of records).
	TraceCap int
	// LockBus puts the open-interface bus in block-device mode: every
	// message published by threads is dropped — the "red lock".
	LockBus bool
}

// Stack is one assembled simulation: an SSD under an OS under a workload.
type Stack struct {
	Engine     *sim.Engine
	Bus        *iface.Bus
	Stats      *stats.Collector
	Controller *controller.Controller
	OS         *osched.OS
	Runner     *workload.Runner

	cfg Config

	// measurement epoch baselines, captured by MarkMeasurement
	baseArray       flashCountersSnapshot
	baseController  controller.Counters
	baseReliability controller.Reliability
}

type flashCountersSnapshot struct {
	reads, writes, erases, copybacks uint64
}

// New assembles a stack. The controller's OnComplete is wired to the OS; do
// not set it in the config.
func New(cfg Config) (*Stack, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Controller.OnComplete != nil {
		return nil, fmt.Errorf("%w: Controller.OnComplete is owned by the stack", ErrConfig)
	}
	s := &Stack{
		Engine: sim.NewEngine(),
		Bus:    iface.NewBus(),
		cfg:    cfg,
	}
	s.Bus.SetLocked(cfg.LockBus)
	s.Stats = stats.NewCollector(cfg.SeriesBucket, cfg.TraceCap)

	ctlCfg := cfg.Controller
	ctlCfg.OnComplete = func(r *iface.Request) { s.OS.Completed(r) }
	ctl, err := controller.New(s.Engine, s.Bus, s.Stats, ctlCfg)
	if err != nil {
		return nil, err
	}
	s.Controller = ctl

	osCfg := cfg.OS
	osCfg.Trace = s.Stats.Trace() // nil unless TraceCap enabled tracing
	os, err := osched.New(s.Engine, ctl, osCfg)
	if err != nil {
		return nil, err
	}
	s.OS = os
	s.Runner = workload.NewRunner(s.Engine, os, s.Bus, cfg.Seed)
	return s, nil
}

// Config returns the configuration the stack was built from.
func (s *Stack) Config() Config { return s.cfg }

// LogicalPages returns the SSD's exported logical capacity in pages.
func (s *Stack) LogicalPages() int { return s.Controller.LogicalPages() }

// Add registers a workload thread, optionally dependent on other threads.
func (s *Stack) Add(t workload.Thread, deps ...*workload.Handle) *workload.Handle {
	return s.Runner.Add(t, deps...)
}

// AddBarrier registers a no-IO thread dependent on deps that marks the
// measurement epoch when it runs: statistics reset and counter baselines are
// captured, so preparation traffic does not pollute results (the paper's
// §2.3 methodology). Make measured threads depend on the returned handle.
func (s *Stack) AddBarrier(deps ...*workload.Handle) *workload.Handle {
	return s.Runner.Add(&workload.Func{F: func(ctx *workload.Ctx) {
		s.MarkMeasurement()
	}}, deps...)
}

// MarkMeasurement resets statistics and captures counter baselines; Report
// values cover only traffic after this point.
func (s *Stack) MarkMeasurement() {
	s.Stats.Reset(s.Engine.Now())
	ac := s.Controller.Array().Counters()
	s.baseArray = flashCountersSnapshot{reads: ac.Reads, writes: ac.Writes, erases: ac.Erases, copybacks: ac.Copybacks}
	s.baseController = s.Controller.Counters()
	s.baseReliability = s.Controller.Reliability()
}

// Run starts every dependency-free thread and drives the event loop until
// the simulation drains. It returns the final virtual time.
func (s *Stack) Run() sim.Time {
	s.Runner.Start()
	t := s.Engine.RunUntilIdle()
	return t
}

// RunCtx drives the loop like Run but honors context cancellation: the event
// loop polls ctx every few thousand events and abandons the simulation when
// it is canceled, returning ctx's error. A context that can never be
// canceled takes the exact Run path; an uncanceled run fires the identical
// event sequence either way, so results are bit-identical to Run.
func (s *Stack) RunCtx(ctx context.Context) (sim.Time, error) {
	if ctx.Done() == nil {
		return s.Run(), nil
	}
	if err := ctx.Err(); err != nil {
		return s.Engine.Now(), err
	}
	s.Runner.Start()
	t, interrupted := s.Engine.RunInterruptible(0, func() bool { return ctx.Err() != nil })
	if interrupted {
		return t, ctx.Err()
	}
	return t, nil
}

// RunUntil drives the loop only to the given horizon (open-ended workloads).
func (s *Stack) RunUntil(horizon sim.Time) sim.Time {
	s.Runner.Start()
	return s.Engine.Run(horizon)
}
