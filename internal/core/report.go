package core

import (
	"fmt"
	"math"
	"strings"

	"eagletree/internal/flash"
	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

// LatencySummary condenses one latency distribution for reports.
type LatencySummary struct {
	Count uint64
	Mean  sim.Duration
	Std   sim.Duration
	P99   sim.Duration
	Max   sim.Duration
}

func (l LatencySummary) String() string {
	return fmt.Sprintf("n=%-8d mean=%-12v std=%-12v p99=%-12v max=%v",
		l.Count, l.Mean, l.Std, l.P99, l.Max)
}

// WearSummary describes the erase-count distribution over data blocks — the
// wear-leveling experiments' primary metric.
type WearSummary struct {
	MinErase  int
	MaxErase  int
	MeanErase float64
	StdErase  float64
	// PastEndurance counts blocks whose erase count exceeds the chip's
	// nominal endurance limit. The simulator reports rather than retires
	// them (real controllers would).
	PastEndurance int
	// BadBlocks counts retired (factory or injected) data blocks.
	BadBlocks int
}

// Spread returns max-min, the simplest imbalance measure.
func (w WearSummary) Spread() int { return w.MaxErase - w.MinErase }

// Report is the metric snapshot of one measured run.
type Report struct {
	// Duration is virtual time elapsed since the measurement epoch.
	Duration sim.Duration
	// Throughput is application IOs completed per simulated second.
	Throughput float64

	ReadLatency  LatencySummary
	WriteLatency LatencySummary

	// Internal interference metrics.
	GCMigratedPages    uint64
	GCErases           uint64
	WLMigratedPages    uint64
	TransReads         uint64 // DFTL translation reads (measurement window)
	TransWrites        uint64
	WriteAmplification float64

	Wear WearSummary

	// Reliability accounting under fault injection (measurement window);
	// all zero when no fault model is configured.
	Retries        uint64
	Relocations    uint64
	EraseFailures  uint64
	GrownBadBlocks uint64
	// EffectiveOP is the over-provisioning fraction still standing at report
	// time: usable data pages beyond the logical capacity, as a fraction of
	// the logical capacity. Runtime block retirement shrinks it.
	EffectiveOP float64

	// OS-level queue pressure.
	MaxPendingOS int
	MaxInFlight  int
}

// Report computes the metric snapshot since the last MarkMeasurement (or
// since the start if measurement was never marked).
func (s *Stack) Report() Report {
	now := s.Engine.Now()
	r := Report{
		Duration:   now.Sub(s.Stats.Start()),
		Throughput: s.Stats.Throughput(now),
	}
	rd := s.Stats.Latency(iface.SourceApp, iface.Read)
	r.ReadLatency = LatencySummary{Count: rd.Count(), Mean: rd.Mean(), Std: rd.Std(), P99: rd.Percentile(0.99), Max: rd.Max()}
	wr := s.Stats.Latency(iface.SourceApp, iface.Write)
	r.WriteLatency = LatencySummary{Count: wr.Count(), Mean: wr.Mean(), Std: wr.Std(), P99: wr.Percentile(0.99), Max: wr.Max()}

	cc := s.Controller.Counters()
	r.GCMigratedPages = cc.GCMigratedPages - s.baseController.GCMigratedPages
	r.GCErases = cc.GCErases - s.baseController.GCErases
	r.WLMigratedPages = cc.WLMigratedPages - s.baseController.WLMigratedPages

	ac := s.Controller.Array().Counters()
	flashWrites := (ac.Writes - s.baseArray.writes) + (ac.Copybacks - s.baseArray.copybacks)
	appWrites := cc.AppWrites - s.baseController.AppWrites
	if appWrites > 0 {
		r.WriteAmplification = float64(flashWrites) / float64(appWrites)
	}

	mr := s.Stats.Latency(iface.SourceMap, iface.Read)
	mw := s.Stats.Latency(iface.SourceMap, iface.Write)
	r.TransReads = mr.Count()
	r.TransWrites = mw.Count()

	rel := s.Controller.Reliability()
	r.Retries = rel.Retries - s.baseReliability.Retries
	r.Relocations = rel.Relocations - s.baseReliability.Relocations
	r.EraseFailures = rel.EraseFailures - s.baseReliability.EraseFailures
	r.GrownBadBlocks = rel.GrownBadBlocks - s.baseReliability.GrownBadBlocks
	if logical := s.Controller.LogicalPages(); logical > 0 {
		usable := s.Controller.BlockManager().DataPages()
		r.EffectiveOP = float64(usable-logical) / float64(logical)
	}

	r.Wear = s.wearSummary()
	osStats := s.OS.Stats()
	r.MaxPendingOS = osStats.MaxPending
	r.MaxInFlight = osStats.MaxInFlight
	return r
}

func (s *Stack) wearSummary() WearSummary {
	bm := s.Controller.BlockManager()
	limit := s.cfg.Controller.Timing.EnduranceLimit
	var (
		n          int
		sum, sumSq float64
		minE, maxE int
		past, bad  int
		first      = true
	)
	geo := s.Controller.Array().Geometry()
	for lun := 0; lun < bm.LUNs(); lun++ {
		for blk := bm.ReservedTrans(); blk < geo.BlocksPerLUN; blk++ {
			if s.Controller.Array().Block(flash.BlockID{LUN: lun, Block: blk}).Bad {
				bad++
			}
		}
		bm.DataBlocks(lun, func(_ flash.BlockID, meta flash.BlockMeta) {
			ec := meta.EraseCount
			if first || ec < minE {
				minE = ec
			}
			if first || ec > maxE {
				maxE = ec
			}
			first = false
			n++
			sum += float64(ec)
			sumSq += float64(ec) * float64(ec)
			if limit > 0 && ec > limit {
				past++
			}
		})
	}
	if n == 0 {
		return WearSummary{BadBlocks: bad}
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return WearSummary{
		MinErase: minE, MaxErase: maxE, MeanErase: mean, StdErase: math.Sqrt(variance),
		PastEndurance: past, BadBlocks: bad,
	}
}

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "duration      %v\n", r.Duration)
	fmt.Fprintf(&b, "throughput    %.0f IOPS\n", r.Throughput)
	fmt.Fprintf(&b, "read latency  %v\n", r.ReadLatency)
	fmt.Fprintf(&b, "write latency %v\n", r.WriteLatency)
	fmt.Fprintf(&b, "write amp     %.3f\n", r.WriteAmplification)
	fmt.Fprintf(&b, "gc            %d pages migrated, %d erases\n", r.GCMigratedPages, r.GCErases)
	fmt.Fprintf(&b, "wl            %d pages migrated\n", r.WLMigratedPages)
	if r.TransReads+r.TransWrites > 0 {
		fmt.Fprintf(&b, "mapping       %d trans reads, %d trans writes\n", r.TransReads, r.TransWrites)
	}
	fmt.Fprintf(&b, "wear          erase counts [%d, %d] mean %.1f std %.2f\n",
		r.Wear.MinErase, r.Wear.MaxErase, r.Wear.MeanErase, r.Wear.StdErase)
	if r.Retries+r.Relocations+r.EraseFailures+r.GrownBadBlocks > 0 {
		fmt.Fprintf(&b, "reliability   %d retries, %d relocations, %d erase failures, %d grown bad, effective OP %.3f\n",
			r.Retries, r.Relocations, r.EraseFailures, r.GrownBadBlocks, r.EffectiveOP)
	}
	fmt.Fprintf(&b, "os queue      max pending %d, max in-flight %d\n", r.MaxPendingOS, r.MaxInFlight)
	return b.String()
}
