package core

import (
	"fmt"

	"eagletree/internal/snapshot"
)

// Snapshot captures the complete state of a quiescent stack — typically one
// that just finished its device-preparation workload. The stack must be
// fully drained: every thread finished, no event pending, no IO anywhere in
// the OS or controller. Snapshot fails otherwise rather than dropping
// in-flight work.
//
// Restoring the returned state into a fresh stack (see Restore) and then
// registering the same workload produces bit-identical behavior to
// continuing this stack directly.
func (s *Stack) Snapshot() (*snapshot.DeviceState, error) {
	if n := s.Engine.Pending(); n != 0 {
		return nil, fmt.Errorf("%w: snapshot with %d events pending", ErrNotQuiescent, n)
	}
	if !s.Runner.Done() {
		return nil, fmt.Errorf("%w: snapshot with %d threads active", ErrNotQuiescent, s.Runner.Active())
	}
	if n := s.OS.InFlight(); n != 0 {
		return nil, fmt.Errorf("%w: snapshot with %d IOs in flight at the SSD", ErrNotQuiescent, n)
	}
	if n := s.OS.Pending(); n != 0 {
		return nil, fmt.Errorf("%w: snapshot with %d IOs pending in the OS pool", ErrNotQuiescent, n)
	}
	ctl, err := s.Controller.State()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &snapshot.DeviceState{
		Meta: snapshot.Meta{
			Geometry:     s.cfg.Controller.Geometry,
			Mapping:      s.Controller.Mapper().Name(),
			LogicalPages: s.Controller.LogicalPages(),
			Seed:         s.cfg.Seed,
		},
		Engine: snapshot.EngineState{
			Now:   s.Engine.Now(),
			Seq:   s.Engine.Seq(),
			Fired: s.Engine.Fired(),
		},
		Controller: *ctl,
		OS:         s.OS.Stats(),
		Runner:     s.Runner.State(),
	}, nil
}

// Restore builds a stack from the configuration and overwrites its device
// state with the snapshot: flash contents and wear, mapping tables, free
// lists, counters, the virtual clock and the thread/RNG origins. The
// configuration must be structurally compatible with the one the snapshot
// was prepared under (same geometry, mapping scheme and logical capacity);
// policy-level knobs — schedulers, allocators, GC greediness, queue depth —
// may differ, which is what lets one prepared state serve a whole variant
// sweep.
//
// Threads registered on the restored stack continue the original run's
// thread-id, RNG and request-id sequences exactly, so a restored run is bit-
// identical to one that prepared the device in-process.
func Restore(cfg Config, ds *snapshot.DeviceState) (*Stack, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if got := s.cfg.Controller.Geometry; got != ds.Meta.Geometry {
		return nil, fmt.Errorf("%w: snapshot geometry %+v does not match config geometry %+v", ErrSnapshotMismatch, ds.Meta.Geometry, got)
	}
	if got := s.Controller.Mapper().Name(); got != ds.Meta.Mapping {
		return nil, fmt.Errorf("%w: snapshot maps with %q, config maps with %q", ErrSnapshotMismatch, ds.Meta.Mapping, got)
	}
	if got := s.Controller.LogicalPages(); got != ds.Meta.LogicalPages {
		return nil, fmt.Errorf("%w: snapshot exports %d logical pages, config exports %d", ErrSnapshotMismatch, ds.Meta.LogicalPages, got)
	}
	if err := s.Controller.RestoreState(&ds.Controller); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s.OS.RestoreStats(ds.OS)
	if err := s.Runner.RestoreState(ds.Runner); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := s.Engine.Restore(ds.Engine.Now, ds.Engine.Seq, ds.Engine.Fired); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// GC targets may have tightened relative to the preparing configuration;
	// re-evaluate them now that the clock is in place, so the first measured
	// write cannot stall on a floor no completion will ever raise.
	s.Controller.Kick()
	return s, nil
}
