// Package hotcold implements hot-data identification: deciding whether a
// logical page is updated frequently (hot) or rarely (cold).
//
// Three sources are supported, mirroring the paper's §2.2 list:
//
//  1. the multiple-bloom-filter detector of Park & Du (MSST 2011),
//     implemented here in full;
//  2. inference from wear leveling (pages migrated by static WL are cold) —
//     the controller applies this directly;
//  3. explicit temperature information arriving through the open interface —
//     carried on request tags.
//
//eagletree:typederrors
package hotcold

import (
	"errors"
	"fmt"

	"eagletree/internal/iface"
)

// ErrStateMismatch wraps every shape mismatch between a snapshot and the
// detector it is restored into.
var ErrStateMismatch = errors.New("hotcold: snapshot does not match detector shape")

// Detector classifies logical pages by update temperature.
type Detector interface {
	Name() string
	// RecordWrite observes one write to lpn.
	RecordWrite(lpn iface.LPN)
	// Classify returns the current temperature estimate for lpn.
	Classify(lpn iface.LPN) iface.Temperature
}

// None is the null detector: everything is TempUnknown.
type None struct{}

// Name implements Detector.
func (None) Name() string { return "none" }

// RecordWrite implements Detector.
func (None) RecordWrite(iface.LPN) {}

// Classify implements Detector.
func (None) Classify(iface.LPN) iface.Temperature { return iface.TempUnknown }

// bloom is one fixed-size bloom filter with k hash functions derived from a
// 64-bit mix.
type bloom struct {
	bits []uint64
	m    uint64 // number of bits
	k    int
}

func newBloom(mBits, k int) *bloom {
	if mBits < 64 {
		mBits = 64
	}
	return &bloom{bits: make([]uint64, (mBits+63)/64), m: uint64(mBits), k: k}
}

// mix64 is splitmix64's finalizer: a cheap, well-distributed hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (b *bloom) positions(lpn iface.LPN) (uint64, uint64) {
	h := mix64(uint64(lpn) + 0x9e3779b97f4a7c15)
	return h, mix64(h)
}

func (b *bloom) add(lpn iface.LPN) {
	h1, h2 := b.positions(lpn)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		b.bits[pos/64] |= 1 << (pos % 64)
	}
}

func (b *bloom) test(lpn iface.LPN) bool {
	h1, h2 := b.positions(lpn)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

func (b *bloom) reset() {
	for i := range b.bits {
		b.bits[i] = 0
	}
}

// MBF is the multiple-bloom-filter hot data identifier (Park & Du, MSST'11):
// V bloom filters are used round-robin; each write inserts the LPN into the
// current filter, and every DecayWindow writes the oldest filter is cleared
// and becomes current. A page's hotness is the number of filters containing
// it — recency-weighted frequency with bounded memory and automatic decay.
type MBF struct {
	cfg       MBFConfig // effective configuration after default fill-in
	filters   []*bloom
	cur       int
	window    int // writes per filter rotation
	sinceTurn int
	threshold int // filters that must match for "hot"
	writes    uint64
}

// MBFConfig tunes the detector.
type MBFConfig struct {
	Filters     int     // V: number of bloom filters
	BitsPerFilt int     // m: bits per filter
	Hashes      int     // k: hash functions
	DecayWindow int     // writes between filter rotations
	HotFraction float64 // fraction of V that must match to call a page hot
}

// DefaultMBFConfig returns the paper-ish defaults: 4 filters, 4096 bits
// each, 2 hashes, rotate every 1024 writes, hot if found in >= half the
// filters.
func DefaultMBFConfig() MBFConfig {
	return MBFConfig{Filters: 4, BitsPerFilt: 4096, Hashes: 2, DecayWindow: 1024, HotFraction: 0.5}
}

// NewMBF builds the detector. Invalid fields fall back to defaults.
func NewMBF(cfg MBFConfig) *MBF {
	def := DefaultMBFConfig()
	if cfg.Filters < 2 {
		cfg.Filters = def.Filters
	}
	if cfg.BitsPerFilt <= 0 {
		cfg.BitsPerFilt = def.BitsPerFilt
	}
	if cfg.Hashes <= 0 {
		cfg.Hashes = def.Hashes
	}
	if cfg.DecayWindow <= 0 {
		cfg.DecayWindow = def.DecayWindow
	}
	if cfg.HotFraction <= 0 || cfg.HotFraction > 1 {
		cfg.HotFraction = def.HotFraction
	}
	m := &MBF{
		cfg:       cfg,
		filters:   make([]*bloom, cfg.Filters),
		window:    cfg.DecayWindow,
		threshold: int(float64(cfg.Filters)*cfg.HotFraction + 0.5),
	}
	if m.threshold < 1 {
		m.threshold = 1
	}
	for i := range m.filters {
		m.filters[i] = newBloom(cfg.BitsPerFilt, cfg.Hashes)
	}
	return m
}

// Name implements Detector.
func (m *MBF) Name() string { return "mbf" }

// Config returns the effective configuration (defaults filled in).
func (m *MBF) Config() MBFConfig { return m.cfg }

// MBFState is the detector's serializable state for device snapshots: the
// raw filter bit vectors plus rotation bookkeeping. The shape (filter count
// and size) is configuration and must match at restore.
type MBFState struct {
	Filters   [][]uint64
	Cur       int
	SinceTurn int
	Writes    uint64
}

// State deep-copies the detector's state for a snapshot.
func (m *MBF) State() MBFState {
	st := MBFState{Cur: m.cur, SinceTurn: m.sinceTurn, Writes: m.writes}
	st.Filters = make([][]uint64, len(m.filters))
	for i, f := range m.filters {
		st.Filters[i] = append([]uint64(nil), f.bits...)
	}
	return st
}

// RestoreState overwrites the detector's state with a snapshot.
func (m *MBF) RestoreState(st MBFState) error {
	if len(st.Filters) != len(m.filters) {
		return fmt.Errorf("%w: snapshot has %d filters, detector has %d", ErrStateMismatch, len(st.Filters), len(m.filters))
	}
	for i, bits := range st.Filters {
		if len(bits) != len(m.filters[i].bits) {
			return fmt.Errorf("%w: snapshot filter %d has %d words, detector has %d", ErrStateMismatch, i, len(bits), len(m.filters[i].bits))
		}
	}
	for i, bits := range st.Filters {
		copy(m.filters[i].bits, bits)
	}
	if st.Cur < 0 || st.Cur >= len(m.filters) {
		return fmt.Errorf("%w: snapshot current filter %d out of range", ErrStateMismatch, st.Cur)
	}
	m.cur = st.Cur
	m.sinceTurn = st.SinceTurn
	m.writes = st.Writes
	return nil
}

// Writes returns how many writes the detector has observed.
func (m *MBF) Writes() uint64 { return m.writes }

// RecordWrite implements Detector.
func (m *MBF) RecordWrite(lpn iface.LPN) {
	m.writes++
	m.filters[m.cur].add(lpn)
	if m.sinceTurn++; m.sinceTurn >= m.window {
		m.sinceTurn = 0
		m.cur = (m.cur + 1) % len(m.filters)
		m.filters[m.cur].reset()
	}
}

// Hotness returns in how many filters the page currently appears.
func (m *MBF) Hotness(lpn iface.LPN) int {
	n := 0
	for _, f := range m.filters {
		if f.test(lpn) {
			n++
		}
	}
	return n
}

// Classify implements Detector: hot if the page appears in at least the
// threshold number of filters, cold otherwise. The MBF never answers
// Unknown — absence of evidence is evidence of coldness here.
func (m *MBF) Classify(lpn iface.LPN) iface.Temperature {
	if m.Hotness(lpn) >= m.threshold {
		return iface.TempHot
	}
	return iface.TempCold
}

// Oracle is a detector fed perfect knowledge, used as the upper bound in
// experiment E8 (standing in for application hints over the open interface).
type Oracle struct {
	HotBelow iface.LPN // LPNs below this are hot
}

// Name implements Detector.
func (Oracle) Name() string { return "oracle" }

// RecordWrite implements Detector.
func (Oracle) RecordWrite(iface.LPN) {}

// Classify implements Detector.
func (o Oracle) Classify(lpn iface.LPN) iface.Temperature {
	if lpn < o.HotBelow {
		return iface.TempHot
	}
	return iface.TempCold
}
