package hotcold

import (
	"testing"

	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

func TestNoneDetector(t *testing.T) {
	var d None
	d.RecordWrite(1)
	if d.Classify(1) != iface.TempUnknown {
		t.Fatal("None detector classified")
	}
	if d.Name() != "none" {
		t.Errorf("Name = %q", d.Name())
	}
}

func TestBloomBasic(t *testing.T) {
	b := newBloom(1024, 2)
	if b.test(42) {
		t.Fatal("empty filter claims membership")
	}
	b.add(42)
	if !b.test(42) {
		t.Fatal("added element not found")
	}
	b.reset()
	if b.test(42) {
		t.Fatal("reset did not clear filter")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := newBloom(8192, 3)
	for lpn := iface.LPN(0); lpn < 500; lpn++ {
		b.add(lpn)
	}
	for lpn := iface.LPN(0); lpn < 500; lpn++ {
		if !b.test(lpn) {
			t.Fatalf("false negative for %d", lpn)
		}
	}
}

func TestBloomFalsePositiveRateBounded(t *testing.T) {
	b := newBloom(16384, 2)
	for lpn := iface.LPN(0); lpn < 1000; lpn++ {
		b.add(lpn)
	}
	fp := 0
	for lpn := iface.LPN(100000); lpn < 110000; lpn++ {
		if b.test(lpn) {
			fp++
		}
	}
	// m/n ~ 16, k=2 -> theoretical fp ~ 1.4%; allow generous slack.
	if rate := float64(fp) / 10000; rate > 0.08 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestBloomTinySizeClamped(t *testing.T) {
	b := newBloom(1, 2) // clamps to 64 bits rather than dividing by zero
	b.add(7)
	if !b.test(7) {
		t.Fatal("clamped filter lost element")
	}
}

func TestMBFHotColdSeparation(t *testing.T) {
	m := NewMBF(DefaultMBFConfig())
	rng := sim.NewRNG(42)
	// 90% of writes hit LPNs 0..9 (hot), 10% hit 1000..9999 (cold).
	for i := 0; i < 20000; i++ {
		if rng.Intn(10) < 9 {
			m.RecordWrite(iface.LPN(rng.Intn(10)))
		} else {
			m.RecordWrite(iface.LPN(1000 + rng.Intn(9000)))
		}
	}
	hotRight := 0
	for lpn := iface.LPN(0); lpn < 10; lpn++ {
		if m.Classify(lpn) == iface.TempHot {
			hotRight++
		}
	}
	if hotRight < 9 {
		t.Fatalf("only %d/10 hot pages detected", hotRight)
	}
	coldRight := 0
	for lpn := iface.LPN(20000); lpn < 21000; lpn++ { // never written
		if m.Classify(lpn) == iface.TempCold {
			coldRight++
		}
	}
	if coldRight < 950 {
		t.Fatalf("only %d/1000 never-written pages classified cold", coldRight)
	}
	if m.Writes() != 20000 {
		t.Fatalf("Writes = %d", m.Writes())
	}
}

func TestMBFDecay(t *testing.T) {
	cfg := DefaultMBFConfig()
	cfg.DecayWindow = 100
	cfg.Filters = 4
	m := NewMBF(cfg)
	// Make LPN 5 hot.
	for i := 0; i < 400; i++ {
		m.RecordWrite(5)
	}
	if m.Classify(5) != iface.TempHot {
		t.Fatal("heavily written page not hot")
	}
	// Then stop writing it; other traffic rotates the filters.
	for i := 0; i < 400; i++ {
		m.RecordWrite(iface.LPN(1000 + i))
	}
	if m.Classify(5) == iface.TempHot {
		t.Fatal("page stayed hot after 4 full filter rotations")
	}
}

func TestMBFHotnessMonotonic(t *testing.T) {
	m := NewMBF(DefaultMBFConfig())
	before := m.Hotness(77)
	m.RecordWrite(77)
	if m.Hotness(77) < before {
		t.Fatal("recording a write decreased hotness")
	}
	if m.Hotness(77) < 1 {
		t.Fatal("written page has zero hotness")
	}
}

func TestMBFConfigFallbacks(t *testing.T) {
	m := NewMBF(MBFConfig{}) // all invalid -> defaults
	if m.Name() != "mbf" {
		t.Errorf("Name = %q", m.Name())
	}
	m.RecordWrite(1)
	if m.Classify(1) == iface.TempUnknown {
		t.Fatal("MBF should never answer Unknown")
	}
	// Threshold must be at least 1 even with absurd fractions.
	m2 := NewMBF(MBFConfig{Filters: 2, HotFraction: 0.01})
	if m2.threshold < 1 {
		t.Fatal("threshold below 1")
	}
}

func TestOracle(t *testing.T) {
	o := Oracle{HotBelow: 100}
	if o.Classify(50) != iface.TempHot {
		t.Error("oracle misclassified hot")
	}
	if o.Classify(100) != iface.TempCold {
		t.Error("oracle misclassified cold boundary")
	}
	if o.Name() != "oracle" {
		t.Errorf("Name = %q", o.Name())
	}
}
