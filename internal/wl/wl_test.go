package wl

import (
	"testing"

	"eagletree/internal/flash"
	"eagletree/internal/ftl"
	"eagletree/internal/sim"
)

func wlGeo() flash.Geometry {
	return flash.Geometry{Channels: 1, LUNsPerChannel: 1, BlocksPerLUN: 8, PagesPerBlock: 4, PageSize: 4096}
}

// buildWornArray produces an array where blocks 0..5 are heavily cycled and
// block 6 holds live data, is young (zero erases), and long idle.
func buildWornArray(t *testing.T) (*flash.Array, *ftl.BlockManager) {
	t.Helper()
	g := wlGeo()
	a := flash.NewArray(g, flash.TimingSLC(), flash.Features{})
	// Cycle blocks 0..5 many times.
	for cycle := 0; cycle < 10; cycle++ {
		for b := 0; b < 6; b++ {
			if _, err := a.ScheduleErase(flash.BlockID{LUN: 0, Block: b}, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Block 6: written once at time ~0, never erased since -> young + idle.
	for p := 0; p < g.PagesPerBlock; p++ {
		if _, err := a.ScheduleWrite(flash.PPA{LUN: 0, Block: 6, Page: p}, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Fill blocks 0..5 so they are victim candidates too (recently erased,
	// so they are neither young nor idle).
	for b := 0; b < 6; b++ {
		for p := 0; p < g.PagesPerBlock; p++ {
			if _, err := a.ScheduleWrite(flash.PPA{LUN: 0, Block: b, Page: p}, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	return a, ftl.NewBlockManager(a, 0, 1, false)
}

func TestStaticWLFindsYoungIdleBlock(t *testing.T) {
	a, bm := buildWornArray(t)
	cfg := DefaultConfig()
	lvl := NewLeveler(bm, cfg)
	// Far in the future relative to the erase activity around time 0.
	now := sim.Time(10 * sim.Second)
	victims := lvl.Victims(now)
	if len(victims) != 1 {
		t.Fatalf("victims = %v, want exactly block 6", victims)
	}
	if victims[0] != (flash.BlockID{LUN: 0, Block: 6}) {
		t.Fatalf("victim = %v, want lun0/blk6", victims[0])
	}
	if lvl.Scans() != 1 || lvl.Migrated() != 1 {
		t.Fatalf("Scans=%d Migrated=%d", lvl.Scans(), lvl.Migrated())
	}
	_ = a
}

func TestStaticWLDisabled(t *testing.T) {
	_, bm := buildWornArray(t)
	cfg := DefaultConfig()
	cfg.Static = false
	lvl := NewLeveler(bm, cfg)
	if v := lvl.Victims(sim.Time(10 * sim.Second)); v != nil {
		t.Fatalf("disabled static WL returned victims: %v", v)
	}
}

func TestStaticWLQuietOnFreshDevice(t *testing.T) {
	g := wlGeo()
	a := flash.NewArray(g, flash.TimingSLC(), flash.Features{})
	// A couple of written blocks, nothing cycled.
	for b := 0; b < 2; b++ {
		for p := 0; p < g.PagesPerBlock; p++ {
			if _, err := a.ScheduleWrite(flash.PPA{LUN: 0, Block: b, Page: p}, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	bm := ftl.NewBlockManager(a, 0, 1, false)
	lvl := NewLeveler(bm, DefaultConfig())
	if v := lvl.Victims(sim.Time(1 * sim.Second)); len(v) != 0 {
		t.Fatalf("fresh device produced WL victims: %v", v)
	}
}

func TestStaticWLRespectsMigrationCap(t *testing.T) {
	g := wlGeo()
	a := flash.NewArray(g, flash.TimingSLC(), flash.Features{})
	// Cycle blocks 4..7 heavily; leave 0..2 young with live data.
	for cycle := 0; cycle < 10; cycle++ {
		for b := 4; b < 8; b++ {
			if _, err := a.ScheduleErase(flash.BlockID{LUN: 0, Block: b}, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	for b := 0; b < 3; b++ {
		for p := 0; p < g.PagesPerBlock; p++ {
			if _, err := a.ScheduleWrite(flash.PPA{LUN: 0, Block: b, Page: p}, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	bm := ftl.NewBlockManager(a, 0, 1, false)
	cfg := DefaultConfig()
	cfg.MaxMigrationsPerScan = 2
	lvl := NewLeveler(bm, cfg)
	victims := lvl.Victims(sim.Time(10 * sim.Second))
	if len(victims) != 2 {
		t.Fatalf("got %d victims, want cap of 2", len(victims))
	}
}

func TestEraseSpread(t *testing.T) {
	g := wlGeo()
	a := flash.NewArray(g, flash.TimingSLC(), flash.Features{})
	for i := 0; i < 5; i++ {
		if _, err := a.ScheduleErase(flash.BlockID{LUN: 0, Block: 0}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.ScheduleErase(flash.BlockID{LUN: 0, Block: 1}, 0); err != nil {
		t.Fatal(err)
	}
	s := EraseSpread(a)
	if s.Min != 0 || s.Max != 5 || s.Spread != 5 {
		t.Fatalf("spread = %+v", s)
	}
	wantMean := 6.0 / 8.0
	if s.Mean != wantMean {
		t.Fatalf("mean = %v, want %v", s.Mean, wantMean)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if !cfg.Static || !cfg.Dynamic {
		t.Error("defaults should enable both WL modes")
	}
	if cfg.CheckInterval <= 0 || cfg.IdleFactor <= 0 || cfg.MaxMigrationsPerScan <= 0 {
		t.Error("default config has non-positive knobs")
	}
}
