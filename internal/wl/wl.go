// Package wl implements wear leveling policy: distributing erase cycles
// evenly across blocks so no block wears out prematurely.
//
// The default module mirrors the paper: it tracks (1) the ages of all blocks
// (erase counts), (2) a timestamp per block of its last erase, (3) the
// average time between erases, and (4) the current time. From these it
// identifies particularly young blocks that have not been erased for a very
// long time — they hold cold data squatting on low-wear cells — and targets
// them for static wear leveling: migrate their live pages away (the data is
// presumed cold) and release the young block for hot data.
//
// Dynamic wear leveling — steering hot data to young free blocks and cold
// data to old ones at allocation time — lives in the block manager's
// age-aware allocation; this package only carries its configuration flag.
//
//eagletree:typederrors
package wl

import (
	"eagletree/internal/flash"
	"eagletree/internal/ftl"
	"eagletree/internal/sim"
)

// Config tunes the wear-leveling module.
type Config struct {
	// Static enables periodic static wear leveling.
	Static bool
	// Dynamic enables age-aware allocation in the block manager (recorded
	// here for reports; the block manager enforces it).
	Dynamic bool
	// CheckInterval is how often the static scan runs in virtual time.
	CheckInterval sim.Duration
	// AgeSlack is how many erase cycles below the average a block must be
	// to count as "particularly young".
	AgeSlack int
	// IdleFactor is how many average erase intervals a block must have gone
	// without an erase to count as "not erased for a very long time".
	IdleFactor float64
	// MaxMigrationsPerScan bounds how many victim blocks one scan may queue,
	// keeping WL interference with application IOs bounded.
	MaxMigrationsPerScan int
}

// DefaultConfig returns the module defaults: static scan every 50ms of
// virtual time, blocks 2+ erases younger than average and idle for 4+
// average erase intervals get migrated, at most 1 migration per scan.
func DefaultConfig() Config {
	return Config{
		Static:               true,
		Dynamic:              true,
		CheckInterval:        50 * sim.Millisecond,
		AgeSlack:             2,
		IdleFactor:           4,
		MaxMigrationsPerScan: 1,
	}
}

// Leveler implements static wear-leveling victim identification.
type Leveler struct {
	cfg  Config
	bm   *ftl.BlockManager
	nLUN int

	scans     uint64
	migrated  uint64
	totalEr   uint64 // running erase count the leveler has observed
	observedA float64
}

// NewLeveler builds a leveler over the block manager's data region.
func NewLeveler(bm *ftl.BlockManager, cfg Config) *Leveler {
	return &Leveler{cfg: cfg, bm: bm, nLUN: bm.LUNs()}
}

// Config returns the active configuration.
func (l *Leveler) Config() Config { return l.cfg }

// Scans returns how many static scans have run.
func (l *Leveler) Scans() uint64 { return l.scans }

// Migrated returns how many blocks static WL has queued for migration.
func (l *Leveler) Migrated() uint64 { return l.migrated }

// LevelerState is the leveler's serializable state for device snapshots.
type LevelerState struct {
	Scans       uint64
	Migrated    uint64
	TotalErases uint64
	ObservedAvg float64
}

// State copies the leveler's counters for a snapshot.
func (l *Leveler) State() LevelerState {
	return LevelerState{Scans: l.scans, Migrated: l.migrated, TotalErases: l.totalEr, ObservedAvg: l.observedA}
}

// RestoreState overwrites the leveler's counters with a snapshot.
func (l *Leveler) RestoreState(st LevelerState) {
	l.scans = st.Scans
	l.migrated = st.Migrated
	l.totalEr = st.TotalErases
	l.observedA = st.ObservedAvg
}

// Victims scans every LUN and returns the blocks static wear leveling should
// migrate now: blocks at least AgeSlack erases younger than the mean whose
// last erase is more than IdleFactor mean-erase-intervals ago. At most
// MaxMigrationsPerScan blocks are returned per LUN, fewest-erase first.
func (l *Leveler) Victims(now sim.Time) []flash.BlockID {
	if !l.cfg.Static {
		return nil
	}
	l.scans++
	var out []flash.BlockID
	for lun := 0; lun < l.nLUN; lun++ {
		out = l.victimsForLUN(lun, now, out)
	}
	return out
}

func (l *Leveler) victimsForLUN(lun int, now sim.Time, out []flash.BlockID) []flash.BlockID {
	// First pass: erase-count statistics over every block in the LUN's data
	// region — a single walk of the erase-count column. Free blocks carry
	// wear too; counting only occupied blocks would bias the mean toward
	// whatever happens to hold data right now.
	n, sumErase := l.bm.WearStats(lun)
	if n == 0 {
		return out
	}
	meanErase := float64(sumErase) / float64(n)
	if meanErase < float64(l.cfg.AgeSlack) {
		// Too early in device life for any block to be AgeSlack below mean.
		return out
	}
	// Average erase interval: device lifetime divided by mean erases.
	avgInterval := float64(now) / (meanErase + 1)
	idleCutoff := sim.Duration(l.cfg.IdleFactor * avgInterval)

	type scored struct {
		b  flash.BlockID
		ec int
	}
	var picks []scored
	l.bm.VictimCandidates(lun, func(b flash.BlockID, meta flash.BlockMeta) {
		young := float64(meta.EraseCount) <= meanErase-float64(l.cfg.AgeSlack)
		idle := now.Sub(meta.LastErase) > idleCutoff
		if young && idle && meta.ValidPages > 0 {
			picks = append(picks, scored{b, meta.EraseCount})
		}
	})
	// Fewest erases first; stable order by block index from VictimCandidates.
	for i := 1; i < len(picks); i++ {
		for j := i; j > 0 && picks[j].ec < picks[j-1].ec; j-- {
			picks[j], picks[j-1] = picks[j-1], picks[j]
		}
	}
	max := l.cfg.MaxMigrationsPerScan
	if max <= 0 {
		max = 1
	}
	for i := 0; i < len(picks) && i < max; i++ {
		out = append(out, picks[i].b)
		l.migrated++
	}
	return out
}

// Spread summarizes wear distribution: min, max and mean erase counts plus
// the max-min spread. Experiment E4 reports it.
type Spread struct {
	Min, Max int
	Mean     float64
	Spread   int
}

// EraseSpread computes wear statistics over every non-bad block of an array.
func EraseSpread(a *flash.Array) Spread {
	counts := a.EraseCounts()
	if len(counts) == 0 {
		return Spread{}
	}
	s := Spread{Min: counts[0], Max: counts[0]}
	var sum int
	for _, c := range counts {
		if c < s.Min {
			s.Min = c
		}
		if c > s.Max {
			s.Max = c
		}
		sum += c
	}
	s.Mean = float64(sum) / float64(len(counts))
	s.Spread = s.Max - s.Min
	return s
}
