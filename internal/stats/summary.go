package stats

import "math"

// Summary condenses replicate observations of one metric — the same variant
// measured under several seeds — into the moments the result-store query
// layer reports: sample mean, sample standard deviation, and the half-width
// of the 95% confidence interval on the mean.
type Summary struct {
	// N is the replicate count.
	N int
	// Mean is the sample mean.
	Mean float64
	// Std is the sample standard deviation (Bessel-corrected; 0 when N < 2).
	Std float64
	// CI95 is the 95% confidence half-width on the mean under the Student-t
	// distribution with N-1 degrees of freedom: mean ± CI95 covers the true
	// mean with 95% confidence if replicates are independent and roughly
	// normal. 0 when N < 2 — a single seed carries no spread information.
	CI95 float64
}

// Summarize computes the replicate summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N-1))
	s.CI95 = tCrit95(s.N-1) * s.Std / math.Sqrt(float64(s.N))
	return s
}

// tCrit95 is the two-sided 95% critical value of the Student-t distribution
// with df degrees of freedom. Experiments replicate over a handful of seeds,
// so the small-df values matter: with 3 seeds (df=2) the interval is 2.2×
// wider than the normal approximation would claim. Beyond the table the
// normal limit 1.96 is within 0.5%.
func tCrit95(df int) float64 {
	table := [...]float64{
		1:  12.706,
		2:  4.303,
		3:  3.182,
		4:  2.776,
		5:  2.571,
		6:  2.447,
		7:  2.365,
		8:  2.306,
		9:  2.262,
		10: 2.228,
		11: 2.201,
		12: 2.179,
		13: 2.160,
		14: 2.145,
		15: 2.131,
		16: 2.120,
		17: 2.110,
		18: 2.101,
		19: 2.093,
		20: 2.086,
		21: 2.080,
		22: 2.074,
		23: 2.069,
		24: 2.064,
		25: 2.060,
		26: 2.056,
		27: 2.052,
		28: 2.048,
		29: 2.045,
		30: 2.042,
	}
	if df < 1 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.960
}
