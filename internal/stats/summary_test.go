package stats

import (
	"math"
	"testing"
)

func TestSummarizeMoments(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary %+v", s)
	}
	// Bessel-corrected: variance 32/7.
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std %v, want %v", s.Std, want)
	}
	// df=7 → t=2.365.
	if want := 2.365 * s.Std / math.Sqrt(8); math.Abs(s.CI95-want) > 1e-12 {
		t.Fatalf("ci95 %v, want %v", s.CI95, want)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.Std != 0 || s.CI95 != 0 {
		t.Fatalf("empty: %+v", s)
	}
	if s := Summarize([]float64{3.5}); s.N != 1 || s.Mean != 3.5 || s.Std != 0 || s.CI95 != 0 {
		t.Fatalf("single: %+v", s)
	}
	if s := Summarize([]float64{4, 4, 4}); s.Std != 0 || s.CI95 != 0 {
		t.Fatalf("constant replicates: %+v", s)
	}
}

func TestTCritSmallSamplesWiden(t *testing.T) {
	if tCrit95(1) != 12.706 || tCrit95(2) != 4.303 {
		t.Fatal("small-df critical values wrong")
	}
	for df := 1; df < 40; df++ {
		if tCrit95(df) < tCrit95(df+1) {
			t.Fatalf("tCrit95 must be nonincreasing at df=%d", df)
		}
	}
	if tCrit95(1000) != 1.960 {
		t.Fatal("large df must fall back to the normal limit")
	}
	if tCrit95(0) != 0 {
		t.Fatal("df<1 has no interval")
	}
}
