package stats

import (
	"fmt"
	"strings"

	"eagletree/internal/sim"
)

// TimeSeries buckets completions by virtual-time interval, recording per
// bucket the IO count and mean latency — the "how metrics evolved across
// time" graphs of the experimental suite. Buckets are relative to the
// series origin, so a measurement reset restarts the x axis.
type TimeSeries struct {
	bucket    sim.Duration
	origin    sim.Time
	counts    []uint64
	latSums   []float64
	preOrigin uint64
}

// NewTimeSeries creates a series with the given bucket width and origin 0.
func NewTimeSeries(bucket sim.Duration) *TimeSeries {
	return NewTimeSeriesAt(bucket, 0)
}

// NewTimeSeriesAt creates a series whose first bucket starts at origin.
func NewTimeSeriesAt(bucket sim.Duration, origin sim.Time) *TimeSeries {
	if bucket <= 0 {
		panic("stats: time series bucket must be positive")
	}
	return &TimeSeries{bucket: bucket, origin: origin}
}

// Bucket returns the bucket width.
func (ts *TimeSeries) Bucket() sim.Duration { return ts.bucket }

// Add records one completion at time t with the given latency. Completions
// before the origin — warmup IOs still in flight across a measurement reset
// — are dropped from the buckets and tallied separately, so they cannot
// pollute the first measured bucket's count and mean latency.
func (ts *TimeSeries) Add(t sim.Time, latency sim.Duration) {
	rel := int64(t - ts.origin)
	if rel < 0 {
		ts.preOrigin++
		return
	}
	idx := int(rel / int64(ts.bucket))
	for len(ts.counts) <= idx {
		ts.counts = append(ts.counts, 0)
		ts.latSums = append(ts.latSums, 0)
	}
	ts.counts[idx]++
	ts.latSums[idx] += float64(latency)
}

// Len returns the number of buckets so far.
func (ts *TimeSeries) Len() int { return len(ts.counts) }

// PreOrigin returns how many completions arrived before the series origin
// and were therefore excluded from the buckets.
func (ts *TimeSeries) PreOrigin() uint64 { return ts.preOrigin }

// Count returns the completions in bucket i.
func (ts *TimeSeries) Count(i int) uint64 { return ts.counts[i] }

// MeanLatency returns the mean latency of bucket i, or 0 if empty.
func (ts *TimeSeries) MeanLatency(i int) sim.Duration {
	if i >= len(ts.counts) || ts.counts[i] == 0 {
		return 0
	}
	return sim.Duration(ts.latSums[i] / float64(ts.counts[i]))
}

// sparklineWidth caps rendered sparklines; longer series are downsampled by
// merging adjacent buckets so charts stay terminal-sized.
const sparklineWidth = 100

// Sparkline renders the per-bucket counts as a unicode mini-chart, the
// text-mode stand-in for the demonstration GUI's live graphs. Series longer
// than 100 buckets are downsampled.
func (ts *TimeSeries) Sparkline() string {
	counts := ts.counts
	if len(counts) == 0 {
		return ""
	}
	if len(counts) > sparklineWidth {
		merged := make([]uint64, sparklineWidth)
		for i, c := range counts {
			merged[i*sparklineWidth/len(counts)] += c
		}
		counts = merged
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var max uint64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return strings.Repeat("▁", len(counts))
	}
	var b strings.Builder
	for _, c := range counts {
		idx := int(uint64(len(levels)-1) * c / max)
		b.WriteRune(levels[idx])
	}
	return b.String()
}

func (ts *TimeSeries) String() string {
	return fmt.Sprintf("timeseries{%d buckets of %v}", len(ts.counts), ts.bucket)
}
