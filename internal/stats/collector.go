package stats

import (
	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

// Class indexes a (source, type) pair densely for per-class distributions.
type Class int

// nTypes covers Read, Write, Trim, Erase.
const nTypes = iface.NumTypes

// nClasses is the number of (source, type) combinations tracked.
const nClasses = iface.NumSources * nTypes

// ClassOf returns the dense class index of a request.
func ClassOf(r *iface.Request) Class {
	return Class(int(r.Source)*nTypes + int(r.Type))
}

// Collector accumulates per-class latency and queue-wait distributions plus
// a completion time series. Reset at the measurement boundary so preparation
// traffic (device aging) does not pollute results — the paper's §2.3
// methodology.
type Collector struct {
	start     sim.Time
	latency   [nClasses]Dist
	queueWait [nClasses]Dist
	perThread map[int]*ThreadStats // thread id -> app latency, opt-in
	sinks     []*ThreadStats       // dense by thread id: the completion fast path
	epoch     uint64               // moves whenever sink pointers may change
	series    *TimeSeries
	trace     *Trace
	completed uint64
}

// denseSinkLimit bounds the dense sink slice; threads with larger ids fall
// back to the map. Real workloads number threads from zero.
const denseSinkLimit = 4096

// ThreadStats is one watched thread's latency, broken down by request type —
// the paper's "statistics gathering objects attached to an individual
// thread".
type ThreadStats struct {
	byType [nTypes]Dist
}

// ByType returns the thread's latency distribution for one request type.
func (t *ThreadStats) ByType(rt iface.ReqType) *Dist { return &t.byType[rt] }

// Merged returns the thread's latency over all request types.
func (t *ThreadStats) Merged() Dist {
	var d Dist
	for i := range t.byType {
		d.Merge(&t.byType[i])
	}
	return d
}

// NewCollector returns a collector with a time series of the given bucket
// width (0 disables the series) and an optional trace capacity (0 disables
// tracing).
func NewCollector(bucket sim.Duration, traceCap int) *Collector {
	// epoch starts above zero so a zero-valued cached epoch never validates.
	c := &Collector{perThread: make(map[int]*ThreadStats), epoch: 1}
	if bucket > 0 {
		c.series = NewTimeSeries(bucket)
	}
	if traceCap > 0 {
		c.trace = NewTrace(traceCap)
	}
	return c
}

// Reset discards everything accumulated and restarts the clock at now.
// Thread watch registrations survive (with fresh distributions): a thread
// watched before the measurement barrier stays watched after it.
func (c *Collector) Reset(now sim.Time) {
	bucket := sim.Duration(0)
	if c.series != nil {
		bucket = c.series.Bucket()
	}
	traceCap := 0
	if c.trace != nil {
		traceCap = c.trace.Cap()
	}
	watched := c.perThread
	epoch := c.epoch
	*c = *NewCollector(bucket, traceCap)
	c.epoch = epoch + 1 // invalidate cached sink pointers, monotonically
	c.start = now
	if c.series != nil {
		// Restart the x axis at the measurement epoch.
		c.series = NewTimeSeriesAt(bucket, now)
	}
	for id := range watched { //lint:ordered writes land in a keyed map
		c.perThread[id] = &ThreadStats{}
		c.growSink(id)
	}
}

// Start returns the measurement epoch.
func (c *Collector) Start() sim.Time { return c.start }

// Trace returns the IO trace, or nil if tracing is off.
func (c *Collector) Trace() *Trace { return c.trace }

// Series returns the completion time series, or nil if disabled.
func (c *Collector) Series() *TimeSeries { return c.series }

// WatchThread opts a thread into per-thread latency collection — the
// paper's "statistics gathering objects attached to an individual thread".
func (c *Collector) WatchThread(id int) {
	if _, ok := c.perThread[id]; !ok {
		c.perThread[id] = &ThreadStats{}
		c.growSink(id)
		c.epoch++
	}
}

// growSink mirrors a watch registration into the dense sink slice.
func (c *Collector) growSink(id int) {
	if id < 0 || id >= denseSinkLimit {
		return
	}
	for len(c.sinks) <= id {
		c.sinks = append(c.sinks, nil)
	}
	c.sinks[id] = c.perThread[id]
}

// SinkEpoch returns a token that moves whenever previously returned thread
// sinks may be stale. Callers caching a ThreadSink must revalidate when it
// moves.
func (c *Collector) SinkEpoch() uint64 { return c.epoch }

// ThreadSink returns the watched thread's completion sink, or nil when the
// thread is not watched. The result stays valid while SinkEpoch stands
// still, letting completion paths cache it in per-request state instead of
// paying a map lookup per completion.
func (c *Collector) ThreadSink(id int) *ThreadStats {
	if uint(id) < uint(len(c.sinks)) {
		return c.sinks[id]
	}
	if id < 0 || id >= denseSinkLimit {
		return c.perThread[id]
	}
	return nil
}

// ThreadLatency returns the watched thread's merged latency distribution,
// or nil if the thread is not watched.
func (c *Collector) ThreadLatency(id int) *Dist {
	ts, ok := c.perThread[id]
	if !ok {
		return nil
	}
	d := ts.Merged()
	return &d
}

// ThreadStats returns the watched thread's per-type statistics, or nil.
func (c *Collector) ThreadStats(id int) *ThreadStats { return c.perThread[id] }

// RecordCompletion ingests a finished request's timestamps.
func (c *Collector) RecordCompletion(r *iface.Request) {
	var ts *ThreadStats
	if r.Source == iface.SourceApp {
		ts = c.ThreadSink(r.Thread)
	}
	c.RecordCompletionTo(r, ts)
}

// RecordCompletionTo is RecordCompletion with the thread sink resolved by
// the caller — the hoisted completion path: the controller caches the sink
// in pooled request state at submit (validated against SinkEpoch), so the
// per-completion thread lookup disappears. ts is ignored for non-application
// requests and may be nil for unwatched threads.
func (c *Collector) RecordCompletionTo(r *iface.Request, ts *ThreadStats) {
	cl := ClassOf(r)
	lat := r.Latency()
	c.latency[cl].Add(lat)
	c.queueWait[cl].Add(r.QueueWait())
	c.completed++
	if ts != nil && r.Source == iface.SourceApp {
		ts.byType[r.Type].Add(lat)
	}
	if c.series != nil {
		c.series.Add(r.Completed, lat)
	}
	if c.trace != nil {
		c.trace.Record(r.Completed, r.ID, StageCompleted, r)
	}
}

// Latency returns the latency distribution for one source and type.
func (c *Collector) Latency(src iface.Source, t iface.ReqType) *Dist {
	return &c.latency[int(src)*nTypes+int(t)]
}

// QueueWait returns the queue-wait distribution for one source and type.
func (c *Collector) QueueWait(src iface.Source, t iface.ReqType) *Dist {
	return &c.queueWait[int(src)*nTypes+int(t)]
}

// AppLatency returns the merged application read+write latency distribution.
func (c *Collector) AppLatency() Dist {
	var d Dist
	d.Merge(c.Latency(iface.SourceApp, iface.Read))
	d.Merge(c.Latency(iface.SourceApp, iface.Write))
	return d
}

// Completed returns how many requests have finished since the last reset.
func (c *Collector) Completed() uint64 { return c.completed }

// AppCompleted returns finished application reads+writes+trims.
func (c *Collector) AppCompleted() uint64 {
	var n uint64
	for t := 0; t < nTypes; t++ {
		n += c.latency[int(iface.SourceApp)*nTypes+t].Count()
	}
	return n
}

// Throughput returns application IOs per simulated second between the
// measurement epoch and now.
func (c *Collector) Throughput(now sim.Time) float64 {
	elapsed := now.Sub(c.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(c.AppCompleted()) / elapsed
}
