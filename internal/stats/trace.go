package stats

import (
	"fmt"
	"strings"

	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

// Stage marks where in the stack a trace event happened.
type Stage int

const (
	StageSubmitted    Stage = iota // thread -> OS
	StageIssued                    // OS -> SSD
	StageDispatched                // SSD scheduler -> flash array
	StageCompleted                 // result delivered
	StageGCStart                   // collection began on a LUN
	StageGCEnd                     // collection finished (victim erased)
	StageWLStart                   // static wear-leveling migration began
	StageProgramFault              // injected program failure; the write refires
	StageEraseFault                // injected erase failure; the block retired
)

func (s Stage) String() string {
	switch s {
	case StageSubmitted:
		return "submitted"
	case StageIssued:
		return "issued"
	case StageDispatched:
		return "dispatched"
	case StageCompleted:
		return "completed"
	case StageGCStart:
		return "gc-start"
	case StageGCEnd:
		return "gc-end"
	case StageWLStart:
		return "wl-start"
	case StageProgramFault:
		return "program-fault"
	case StageEraseFault:
		return "erase-fault"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Event is one trace record: enough to reconstruct exactly how an IO was
// handled throughout the simulator components.
type Event struct {
	At    sim.Time
	ReqID uint64
	Stage Stage
	Type  iface.ReqType
	Src   iface.Source
	LPN   iface.LPN
}

// Trace is a bounded ring of events; once full, the oldest are overwritten.
// Massive visual traces come from dumping it.
type Trace struct {
	events  []Event
	next    int
	wrapped bool
	total   uint64
}

// NewTrace allocates a trace holding up to capacity events.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		panic("stats: trace capacity must be positive")
	}
	return &Trace{events: make([]Event, capacity)}
}

// Cap returns the ring capacity.
func (t *Trace) Cap() int { return len(t.events) }

// Total returns how many events were recorded overall, including ones the
// ring has since overwritten.
func (t *Trace) Total() uint64 { return t.total }

// Record appends an event derived from a request, or a bare event when r is
// nil (GC/WL markers).
func (t *Trace) Record(at sim.Time, reqID uint64, stage Stage, r *iface.Request) {
	e := Event{At: at, ReqID: reqID, Stage: stage}
	if r != nil {
		e.Type = r.Type
		e.Src = r.Source
		e.LPN = r.LPN
	}
	t.events[t.next] = e
	t.next++
	t.total++
	if t.next == len(t.events) {
		t.next = 0
		t.wrapped = true
	}
}

// Events returns the retained events in chronological order.
func (t *Trace) Events() []Event {
	if !t.wrapped {
		out := make([]Event, t.next)
		copy(out, t.events[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Dump renders the retained events, one per line.
func (t *Trace) Dump() string {
	var b strings.Builder
	for _, e := range t.Events() {
		fmt.Fprintf(&b, "%12v req%-6d %-10v %v %v lpn=%d\n", e.At, e.ReqID, e.Stage, e.Src, e.Type, e.LPN)
	}
	return b.String()
}
