// Package stats collects the performance metrics EagleTree experiments
// report: throughput, latency and latency variability per IO source and
// type, time series of how metrics evolve across a run, wear and write
// amplification summaries, and a bounded trace of how every IO moved through
// the simulator's components.
//
//eagletree:canonical
//eagletree:typederrors
package stats

import (
	"fmt"
	"math"
	"math/bits"

	"eagletree/internal/sim"
)

// nBuckets covers latencies up to 2^63 ns in power-of-two buckets.
const nBuckets = 64

// Dist is a streaming distribution of durations: exact moments (count, mean,
// variance via sum of squares, min, max) plus a log2-bucket histogram for
// approximate percentiles. The zero value is ready to use.
type Dist struct {
	count   uint64
	sum     float64
	sumSq   float64
	min     sim.Duration
	max     sim.Duration
	buckets [nBuckets]uint64
}

// Add records one sample. Negative durations are clamped to zero: they can
// only come from timestamping bugs and must not corrupt variance.
func (d *Dist) Add(v sim.Duration) {
	if v < 0 {
		v = 0
	}
	if d.count == 0 || v < d.min {
		d.min = v
	}
	if v > d.max {
		d.max = v
	}
	d.count++
	f := float64(v)
	d.sum += f
	d.sumSq += f * f
	d.buckets[bits.Len64(uint64(v))]++
}

// Count returns the number of samples.
func (d *Dist) Count() uint64 { return d.count }

// Min returns the smallest sample, or 0 if empty.
func (d *Dist) Min() sim.Duration { return d.min }

// Max returns the largest sample.
func (d *Dist) Max() sim.Duration { return d.max }

// Mean returns the arithmetic mean, or 0 if empty.
func (d *Dist) Mean() sim.Duration {
	if d.count == 0 {
		return 0
	}
	return sim.Duration(d.sum / float64(d.count))
}

// Std returns the population standard deviation — the "latency variability"
// metric of the demonstration's game.
func (d *Dist) Std() sim.Duration {
	if d.count == 0 {
		return 0
	}
	n := float64(d.count)
	mean := d.sum / n
	variance := d.sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // floating-point cancellation guard
	}
	return sim.Duration(math.Sqrt(variance))
}

// Percentile returns an approximation of the p-quantile (0 < p <= 1) from
// the log2 histogram: the geometric midpoint of the bucket holding the
// quantile. Accurate to within a factor of sqrt(2), which is plenty to rank
// policies by tail latency.
func (d *Dist) Percentile(p float64) sim.Duration {
	if d.count == 0 {
		return 0
	}
	if p <= 0 {
		return d.min
	}
	if p >= 1 {
		return d.max
	}
	// Ceiling rank: the p-quantile is the smallest sample with at least
	// ceil(p*n) samples at or below it. Flooring here would resolve e.g.
	// p=0.999 over 100 samples to rank 99 of 100 — one bucket low at small
	// counts, exactly where tail percentiles are decided. The epsilon keeps
	// float artifacts (0.07*100 = 7.000000000000001) from bumping an exact
	// product to the next rank.
	target := uint64(math.Ceil(p*float64(d.count) - 1e-9))
	if target == 0 {
		target = 1
	}
	if target > d.count {
		target = d.count
	}
	var cum uint64
	for i, c := range d.buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return 0
			}
			lo := uint64(1) << (i - 1)
			est := sim.Duration(float64(lo) * math.Sqrt2)
			if est > d.max {
				est = d.max // the histogram can only overshoot the true value
			}
			if est < d.min {
				est = d.min
			}
			return est
		}
	}
	return d.max
}

// Merge folds other into d.
func (d *Dist) Merge(other *Dist) {
	if other.count == 0 {
		return
	}
	if d.count == 0 || other.min < d.min {
		d.min = other.min
	}
	if other.max > d.max {
		d.max = other.max
	}
	d.count += other.count
	d.sum += other.sum
	d.sumSq += other.sumSq
	for i := range d.buckets {
		d.buckets[i] += other.buckets[i]
	}
}

func (d *Dist) String() string {
	return fmt.Sprintf("n=%d mean=%v std=%v p99=%v max=%v",
		d.count, d.Mean(), d.Std(), d.Percentile(0.99), d.max)
}
