package stats

import (
	"testing"

	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

func completed(thread int, t iface.ReqType, lat sim.Duration) *iface.Request {
	return &iface.Request{
		Type: t, Thread: thread, Source: iface.SourceApp,
		Submitted: 0, Issued: 0, Dispatched: 0, Completed: sim.Time(lat),
	}
}

func TestThreadStatsPerType(t *testing.T) {
	c := NewCollector(0, 0)
	c.WatchThread(3)
	c.RecordCompletion(completed(3, iface.Read, 100))
	c.RecordCompletion(completed(3, iface.Read, 200))
	c.RecordCompletion(completed(3, iface.Write, 1000))
	c.RecordCompletion(completed(9, iface.Read, 7)) // unwatched thread

	ts := c.ThreadStats(3)
	if ts == nil {
		t.Fatal("watched thread has no stats")
	}
	if got := ts.ByType(iface.Read).Count(); got != 2 {
		t.Fatalf("read count %d, want 2", got)
	}
	if got := ts.ByType(iface.Write).Mean(); got != 1000 {
		t.Fatalf("write mean %v, want 1000", got)
	}
	merged := c.ThreadLatency(3)
	if merged.Count() != 3 {
		t.Fatalf("merged count %d, want 3", merged.Count())
	}
	if c.ThreadStats(9) != nil {
		t.Fatal("unwatched thread has stats")
	}
	if c.ThreadLatency(9) != nil {
		t.Fatal("unwatched thread has merged latency")
	}
}

func TestThreadStatsSurviveReset(t *testing.T) {
	c := NewCollector(0, 0)
	c.WatchThread(1)
	c.RecordCompletion(completed(1, iface.Read, 50))
	c.Reset(1000)
	ts := c.ThreadStats(1)
	if ts == nil {
		t.Fatal("watch registration lost on reset")
	}
	if ts.ByType(iface.Read).Count() != 0 {
		t.Fatal("pre-reset samples survived the reset")
	}
	c.RecordCompletion(completed(1, iface.Read, 60))
	if ts := c.ThreadStats(1); ts.ByType(iface.Read).Count() != 1 {
		t.Fatal("post-reset recording broken")
	}
}
