package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

func TestDistMoments(t *testing.T) {
	var d Dist
	for _, v := range []sim.Duration{10, 20, 30, 40} {
		d.Add(v)
	}
	if d.Count() != 4 {
		t.Fatalf("Count = %d", d.Count())
	}
	if d.Mean() != 25 {
		t.Errorf("Mean = %v, want 25", d.Mean())
	}
	if d.Min() != 10 || d.Max() != 40 {
		t.Errorf("Min/Max = %v/%v", d.Min(), d.Max())
	}
	// Population std of {10,20,30,40} = sqrt(125) ~ 11.18
	want := sim.Duration(math.Sqrt(125))
	if diff := d.Std() - want; diff < -1 || diff > 1 {
		t.Errorf("Std = %v, want ~%v", d.Std(), want)
	}
}

func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.Mean() != 0 || d.Std() != 0 || d.Percentile(0.5) != 0 {
		t.Error("empty distribution not all-zero")
	}
}

func TestDistNegativeClamped(t *testing.T) {
	var d Dist
	d.Add(-5)
	if d.Min() != 0 || d.Mean() != 0 {
		t.Error("negative sample not clamped")
	}
}

func TestDistPercentileApproximation(t *testing.T) {
	var d Dist
	for i := 1; i <= 1000; i++ {
		d.Add(sim.Duration(i * 1000)) // 1us .. 1ms spread
	}
	p50 := d.Percentile(0.5)
	// True median 500us; log2 buckets are accurate within sqrt(2)x plus
	// bucket granularity — accept [250us, 1ms].
	if p50 < 250_000 || p50 > 1_000_000 {
		t.Errorf("p50 = %v, want within 2x of 500us", p50)
	}
	if d.Percentile(0) != d.Min() || d.Percentile(1) != d.Max() {
		t.Error("percentile extremes wrong")
	}
	if d.Percentile(0.99) < p50 {
		t.Error("p99 below p50")
	}
}

// TestDistPercentileCeilingRank is the regression test for the floored
// quantile rank: with 100 samples, p=0.999 must resolve to rank 100 (the
// maximum), not rank 99 — flooring made tail percentiles land one bucket
// low at small counts.
func TestDistPercentileCeilingRank(t *testing.T) {
	var d Dist
	for i := 0; i < 99; i++ {
		d.Add(1000) // ~1us
	}
	d.Add(1 << 30) // one ~1s outlier: the true p99.9 sample
	if got := d.Percentile(0.999); got < 1_000_000 {
		t.Fatalf("p99.9 = %v, floored rank missed the tail bucket", got)
	}
	// The max must bound every percentile, including the top one.
	if got := d.Percentile(0.999); got > d.Max() {
		t.Fatalf("p99.9 = %v above max %v", got, d.Max())
	}
	// Sanity at the other end: a tiny p still returns the low bucket.
	if got := d.Percentile(0.5); got > 2000 {
		t.Fatalf("p50 = %v, want ~1us", got)
	}
}

// TestDistPercentileExactRankBoundary guards the ceiling against float
// artifacts: 0.07*100 evaluates to 7.000000000000001, which must still
// resolve to rank 7, not 8.
func TestDistPercentileExactRankBoundary(t *testing.T) {
	var d Dist
	for i := 0; i < 7; i++ {
		d.Add(10) // ranks 1..7: low bucket
	}
	for i := 0; i < 93; i++ {
		d.Add(1_000_000) // ranks 8..100: high bucket
	}
	if got := d.Percentile(0.07); got > 1000 {
		t.Fatalf("p7 = %v, float ceil overshot into the high bucket", got)
	}
}

func TestDistPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		var d Dist
		for _, v := range raw {
			d.Add(sim.Duration(v))
		}
		last := sim.Duration(-1)
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			v := d.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDistMerge(t *testing.T) {
	var a, b Dist
	a.Add(10)
	a.Add(20)
	b.Add(30)
	b.Add(40)
	a.Merge(&b)
	if a.Count() != 4 || a.Mean() != 25 || a.Max() != 40 || a.Min() != 10 {
		t.Fatalf("merged: %v", a.String())
	}
	var empty Dist
	a.Merge(&empty) // must be a no-op
	if a.Count() != 4 {
		t.Fatal("merging empty changed count")
	}
}

func completedReq(id uint64, src iface.Source, typ iface.ReqType, submitted, completed sim.Time) *iface.Request {
	return &iface.Request{
		ID: id, Source: src, Type: typ,
		Submitted: submitted, Dispatched: submitted + 10, Completed: completed,
	}
}

func TestCollectorPerClass(t *testing.T) {
	c := NewCollector(0, 0)
	c.RecordCompletion(completedReq(1, iface.SourceApp, iface.Read, 0, 100))
	c.RecordCompletion(completedReq(2, iface.SourceApp, iface.Write, 0, 300))
	c.RecordCompletion(completedReq(3, iface.SourceGC, iface.Write, 0, 500))

	if n := c.Latency(iface.SourceApp, iface.Read).Count(); n != 1 {
		t.Errorf("app reads = %d", n)
	}
	if n := c.Latency(iface.SourceGC, iface.Write).Count(); n != 1 {
		t.Errorf("gc writes = %d", n)
	}
	if c.AppCompleted() != 2 {
		t.Errorf("AppCompleted = %d", c.AppCompleted())
	}
	if c.Completed() != 3 {
		t.Errorf("Completed = %d", c.Completed())
	}
	app := c.AppLatency()
	if app.Count() != 2 || app.Mean() != 200 {
		t.Errorf("AppLatency = %v", app.String())
	}
}

func TestCollectorThroughput(t *testing.T) {
	c := NewCollector(0, 0)
	c.Reset(0)
	for i := uint64(0); i < 1000; i++ {
		c.RecordCompletion(completedReq(i, iface.SourceApp, iface.Read, 0, 100))
	}
	// 1000 IOs in 0.5 simulated seconds = 2000 IOPS.
	got := c.Throughput(sim.Time(500 * sim.Millisecond))
	if math.Abs(got-2000) > 1 {
		t.Fatalf("Throughput = %v, want 2000", got)
	}
	if c.Throughput(0) != 0 {
		t.Fatal("zero-elapsed throughput should be 0")
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector(sim.Millisecond, 16)
	c.WatchThread(7)
	c.RecordCompletion(completedReq(1, iface.SourceApp, iface.Read, 0, 100))
	c.Reset(1000)
	if c.Completed() != 0 || c.AppCompleted() != 0 {
		t.Fatal("reset kept samples")
	}
	if c.Start() != 1000 {
		t.Fatalf("Start = %v", c.Start())
	}
	if c.Series() == nil || c.Trace() == nil {
		t.Fatal("reset dropped series/trace configuration")
	}
}

func TestCollectorPerThread(t *testing.T) {
	c := NewCollector(0, 0)
	c.WatchThread(3)
	r := completedReq(1, iface.SourceApp, iface.Write, 0, 50)
	r.Thread = 3
	c.RecordCompletion(r)
	other := completedReq(2, iface.SourceApp, iface.Write, 0, 50)
	other.Thread = 9 // unwatched
	c.RecordCompletion(other)
	if d := c.ThreadLatency(3); d == nil || d.Count() != 1 {
		t.Fatal("watched thread not collected")
	}
	if c.ThreadLatency(9) != nil {
		t.Fatal("unwatched thread collected")
	}
	// GC IOs never count toward a thread.
	g := completedReq(3, iface.SourceGC, iface.Write, 0, 50)
	g.Thread = 3
	c.RecordCompletion(g)
	if c.ThreadLatency(3).Count() != 1 {
		t.Fatal("internal IO leaked into thread stats")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(100)
	ts.Add(50, 10)
	ts.Add(99, 30)
	ts.Add(250, 40)
	if ts.Len() != 3 {
		t.Fatalf("Len = %d", ts.Len())
	}
	if ts.Count(0) != 2 || ts.Count(1) != 0 || ts.Count(2) != 1 {
		t.Fatalf("counts = %d %d %d", ts.Count(0), ts.Count(1), ts.Count(2))
	}
	if ts.MeanLatency(0) != 20 {
		t.Fatalf("bucket 0 mean = %v", ts.MeanLatency(0))
	}
	if ts.MeanLatency(1) != 0 {
		t.Fatal("empty bucket mean not 0")
	}
	if ts.MeanLatency(99) != 0 {
		t.Fatal("out-of-range bucket mean not 0")
	}
	spark := ts.Sparkline()
	if len([]rune(spark)) != 3 {
		t.Fatalf("sparkline %q length", spark)
	}
}

func TestTimeSeriesPanicsOnBadBucket(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bucket accepted")
		}
	}()
	NewTimeSeries(0)
}

func TestTraceRing(t *testing.T) {
	tr := NewTrace(3)
	for i := uint64(1); i <= 5; i++ {
		tr.Record(sim.Time(i), i, StageCompleted, &iface.Request{ID: i, LPN: iface.LPN(i)})
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	// Oldest retained should be req 3.
	if evs[0].ReqID != 3 || evs[2].ReqID != 5 {
		t.Fatalf("ring order: %+v", evs)
	}
	if tr.Total() != 5 {
		t.Fatalf("Total = %d", tr.Total())
	}
	dump := tr.Dump()
	if !strings.Contains(dump, "req3") || strings.Contains(dump, "req2") {
		t.Fatalf("dump wrong:\n%s", dump)
	}
}

func TestTraceUnwrapped(t *testing.T) {
	tr := NewTrace(10)
	tr.Record(1, 1, StageGCStart, nil)
	tr.Record(2, 1, StageGCEnd, nil)
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Stage != StageGCStart {
		t.Fatalf("events: %+v", evs)
	}
}

func TestStageStrings(t *testing.T) {
	for s := StageSubmitted; s <= StageWLStart; s++ {
		if strings.HasPrefix(s.String(), "Stage(") {
			t.Errorf("stage %d unnamed", s)
		}
	}
}

func TestTimeSeriesOrigin(t *testing.T) {
	ts := NewTimeSeriesAt(100, 1000)
	ts.Add(1000, 5) // first bucket
	ts.Add(1150, 5) // second bucket
	ts.Add(500, 5)  // before origin: dropped, tallied separately
	if ts.Len() != 2 {
		t.Fatalf("len %d, want 2", ts.Len())
	}
	if ts.Count(0) != 1 || ts.Count(1) != 1 {
		t.Fatalf("counts %d/%d, want 1/1", ts.Count(0), ts.Count(1))
	}
	if ts.PreOrigin() != 1 {
		t.Fatalf("preOrigin %d, want 1", ts.PreOrigin())
	}
}

// TestTimeSeriesDropsPreOriginCompletions is the regression test for the
// warmup-pollution bug: after a measurement reset, in-flight warmup IOs
// complete before the new origin and used to be clamped into bucket 0,
// inflating its count and corrupting its mean latency.
func TestTimeSeriesDropsPreOriginCompletions(t *testing.T) {
	ts := NewTimeSeriesAt(100, 1000)
	ts.Add(900, 1_000_000) // warmup straggler with a huge latency
	ts.Add(1010, 40)
	ts.Add(1020, 60)
	if ts.Count(0) != 2 {
		t.Fatalf("bucket 0 count %d, want 2 (straggler leaked in)", ts.Count(0))
	}
	if got := ts.MeanLatency(0); got != 50 {
		t.Fatalf("bucket 0 mean %v, want 50 (straggler polluted the mean)", got)
	}
	if ts.PreOrigin() != 1 {
		t.Fatalf("preOrigin %d, want 1", ts.PreOrigin())
	}
}

func TestSparklineDownsamples(t *testing.T) {
	ts := NewTimeSeries(1)
	for i := 0; i < 1000; i++ {
		ts.Add(sim.Time(i), 1)
	}
	line := ts.Sparkline()
	if n := len([]rune(line)); n > 100 {
		t.Fatalf("sparkline %d runes, want <= 100", n)
	}
}

func TestCollectorResetRestartsSeries(t *testing.T) {
	c := NewCollector(100, 0)
	c.RecordCompletion(&iface.Request{Source: iface.SourceApp, Completed: 50})
	c.Reset(10_000)
	c.RecordCompletion(&iface.Request{Source: iface.SourceApp, Completed: 10_050})
	if c.Series().Len() != 1 {
		t.Fatalf("series has %d buckets after reset, want 1 (origin rebased)", c.Series().Len())
	}
}
