// Package flash models the SSD hardware layer: the flash memory array, its
// geometry (channels × LUNs × blocks × pages), per-operation timings for SLC
// and MLC chips, and the occupancy of the shared buses (channels) and logical
// units (LUNs).
//
// Following the ONFI terminology the paper adopts, the LUN is the minimum
// granularity of parallelism: packages, chips and dies are abstracted away.
// The package is passive — it validates state transitions and computes when
// an operation can start and finish given current resource occupancy — while
// all decisions (which IO, which LUN, when) belong to the controller layer.
//
//eagletree:typederrors
package flash

import "fmt"

// Geometry describes the physical shape of the simulated SSD.
type Geometry struct {
	Channels       int // independent buses to the controller
	LUNsPerChannel int // parallel units wired to each channel
	BlocksPerLUN   int // erase blocks per LUN
	PagesPerBlock  int // program pages per erase block
	PageSize       int // bytes per page, data transfer granularity
}

// Validate reports an error if any dimension is non-positive.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0:
		return fmt.Errorf("%w: Channels = %d, must be positive", ErrConfig, g.Channels)
	case g.LUNsPerChannel <= 0:
		return fmt.Errorf("%w: LUNsPerChannel = %d, must be positive", ErrConfig, g.LUNsPerChannel)
	case g.BlocksPerLUN <= 0:
		return fmt.Errorf("%w: BlocksPerLUN = %d, must be positive", ErrConfig, g.BlocksPerLUN)
	case g.PagesPerBlock <= 0:
		return fmt.Errorf("%w: PagesPerBlock = %d, must be positive", ErrConfig, g.PagesPerBlock)
	case g.PageSize <= 0:
		return fmt.Errorf("%w: PageSize = %d, must be positive", ErrConfig, g.PageSize)
	}
	return nil
}

// LUNs returns the total number of LUNs in the array.
func (g Geometry) LUNs() int { return g.Channels * g.LUNsPerChannel }

// Blocks returns the total number of erase blocks in the array.
func (g Geometry) Blocks() int { return g.LUNs() * g.BlocksPerLUN }

// Pages returns the total number of physical pages in the array.
func (g Geometry) Pages() int { return g.Blocks() * g.PagesPerBlock }

// Bytes returns the raw capacity of the array in bytes.
func (g Geometry) Bytes() int64 { return int64(g.Pages()) * int64(g.PageSize) }

// PagesPerLUN returns the number of physical pages per LUN.
func (g Geometry) PagesPerLUN() int { return g.BlocksPerLUN * g.PagesPerBlock }

// ChannelOf returns the channel a LUN is wired to.
func (g Geometry) ChannelOf(lun int) int { return lun / g.LUNsPerChannel }

// PPA identifies one physical page by LUN-relative coordinates.
// LUN indexes the whole array (channel = LUN / LUNsPerChannel).
type PPA struct {
	LUN   int
	Block int // block index within the LUN
	Page  int // page index within the block
}

func (p PPA) String() string {
	return fmt.Sprintf("lun%d/blk%d/pg%d", p.LUN, p.Block, p.Page)
}

// Index linearizes the PPA to a dense array index under geometry g.
func (g Geometry) Index(p PPA) int {
	return (p.LUN*g.BlocksPerLUN+p.Block)*g.PagesPerBlock + p.Page
}

// PPAOf is the inverse of Index.
func (g Geometry) PPAOf(index int) PPA {
	page := index % g.PagesPerBlock
	index /= g.PagesPerBlock
	block := index % g.BlocksPerLUN
	lun := index / g.BlocksPerLUN
	return PPA{LUN: lun, Block: block, Page: page}
}

// BlockID identifies an erase block across the whole array.
type BlockID struct {
	LUN   int
	Block int
}

func (b BlockID) String() string { return fmt.Sprintf("lun%d/blk%d", b.LUN, b.Block) }

// BlockIndex linearizes a BlockID to a dense index under geometry g.
func (g Geometry) BlockIndex(b BlockID) int { return b.LUN*g.BlocksPerLUN + b.Block }

// BlockOf returns the block containing the page.
func (p PPA) BlockOf() BlockID { return BlockID{LUN: p.LUN, Block: p.Block} }

// Contains reports whether the PPA is within the geometry's bounds.
func (g Geometry) Contains(p PPA) bool {
	return p.LUN >= 0 && p.LUN < g.LUNs() &&
		p.Block >= 0 && p.Block < g.BlocksPerLUN &&
		p.Page >= 0 && p.Page < g.PagesPerBlock
}
