package flash

import (
	"errors"
	"testing"

	"eagletree/internal/sim"
)

func newTestArray(feat Features) *Array {
	return NewArray(testGeo(), TimingSLC(), feat)
}

func TestArrayWriteReadInvalidateCycle(t *testing.T) {
	a := newTestArray(Features{})
	p := PPA{LUN: 0, Block: 0, Page: 0}

	if _, err := a.ScheduleRead(p, 0); !errors.Is(err, ErrNotValid) {
		t.Fatalf("read of free page: err = %v, want ErrNotValid", err)
	}
	if _, err := a.ScheduleWrite(p, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if a.PageState(p) != PageValid {
		t.Fatalf("page state after write = %v", a.PageState(p))
	}
	if _, err := a.ScheduleRead(p, 0); err != nil {
		t.Fatalf("read after write: %v", err)
	}
	if err := a.Invalidate(p); err != nil {
		t.Fatalf("invalidate: %v", err)
	}
	if a.PageState(p) != PageInvalid {
		t.Fatalf("page state after invalidate = %v", a.PageState(p))
	}
	if err := a.Invalidate(p); !errors.Is(err, ErrAlreadyStale) {
		t.Fatalf("double invalidate: err = %v, want ErrAlreadyStale", err)
	}
	if _, err := a.ScheduleRead(p, 0); !errors.Is(err, ErrNotValid) {
		t.Fatalf("read of stale page: err = %v, want ErrNotValid", err)
	}
}

func TestArraySequentialProgramOrder(t *testing.T) {
	a := newTestArray(Features{})
	if _, err := a.ScheduleWrite(PPA{LUN: 0, Block: 0, Page: 1}, 0); !errors.Is(err, ErrProgramOrder) {
		t.Fatalf("out-of-order program: err = %v, want ErrProgramOrder", err)
	}
	for pg := 0; pg < testGeo().PagesPerBlock; pg++ {
		if _, err := a.ScheduleWrite(PPA{LUN: 0, Block: 0, Page: pg}, 0); err != nil {
			t.Fatalf("in-order program page %d: %v", pg, err)
		}
	}
	// Block full: next write must fail with program-order (WritePtr past end).
	if _, err := a.ScheduleWrite(PPA{LUN: 0, Block: 0, Page: 0}, 0); err == nil {
		t.Fatal("overwrite of full block accepted")
	}
}

func TestArrayEraseRequiresNoLivePages(t *testing.T) {
	a := newTestArray(Features{})
	b := BlockID{LUN: 0, Block: 0}
	p := PPA{LUN: 0, Block: 0, Page: 0}
	if _, err := a.ScheduleWrite(p, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ScheduleErase(b, 0); !errors.Is(err, ErrEraseLivePage) {
		t.Fatalf("erase with live page: err = %v, want ErrEraseLivePage", err)
	}
	if err := a.Invalidate(p); err != nil {
		t.Fatal(err)
	}
	sched, err := a.ScheduleErase(b, 0)
	if err != nil {
		t.Fatalf("erase: %v", err)
	}
	meta := a.Block(b)
	if meta.EraseCount != 1 {
		t.Errorf("EraseCount = %d, want 1", meta.EraseCount)
	}
	if meta.LastErase != sched.Done {
		t.Errorf("LastErase = %v, want %v", meta.LastErase, sched.Done)
	}
	if meta.WritePtr != 0 || meta.ValidPages != 0 {
		t.Errorf("erase did not reset block: %+v", meta)
	}
	if a.PageState(p) != PageFree {
		t.Errorf("page state after erase = %v", a.PageState(p))
	}
	// Reprogrammable from page 0 again.
	if _, err := a.ScheduleWrite(p, sched.Done); err != nil {
		t.Fatalf("write after erase: %v", err)
	}
}

func TestArrayFreeBlockAccounting(t *testing.T) {
	g := testGeo()
	a := newTestArray(Features{})
	if a.FreeBlocks(0) != g.BlocksPerLUN {
		t.Fatalf("fresh LUN free blocks = %d, want %d", a.FreeBlocks(0), g.BlocksPerLUN)
	}
	p := PPA{LUN: 0, Block: 3, Page: 0}
	if _, err := a.ScheduleWrite(p, 0); err != nil {
		t.Fatal(err)
	}
	if a.FreeBlocks(0) != g.BlocksPerLUN-1 {
		t.Fatalf("free blocks after first write = %d, want %d", a.FreeBlocks(0), g.BlocksPerLUN-1)
	}
	// Second write to the same block must not decrement again.
	if _, err := a.ScheduleWrite(PPA{LUN: 0, Block: 3, Page: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if a.FreeBlocks(0) != g.BlocksPerLUN-1 {
		t.Fatalf("free blocks after second write = %d", a.FreeBlocks(0))
	}
	for pg := 0; pg < 2; pg++ {
		if err := a.Invalidate(PPA{LUN: 0, Block: 3, Page: pg}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.ScheduleErase(BlockID{LUN: 0, Block: 3}, 0); err != nil {
		t.Fatal(err)
	}
	if a.FreeBlocks(0) != g.BlocksPerLUN {
		t.Fatalf("free blocks after erase = %d, want %d", a.FreeBlocks(0), g.BlocksPerLUN)
	}
}

func TestArrayMarkBad(t *testing.T) {
	a := newTestArray(Features{})
	b := BlockID{LUN: 1, Block: 0}
	before := a.FreeBlocks(1)
	a.MarkBad(b)
	if a.FreeBlocks(1) != before-1 {
		t.Fatalf("free blocks after MarkBad = %d, want %d", a.FreeBlocks(1), before-1)
	}
	a.MarkBad(b) // idempotent
	if a.FreeBlocks(1) != before-1 {
		t.Fatal("MarkBad not idempotent")
	}
	if _, err := a.ScheduleWrite(PPA{LUN: 1, Block: 0, Page: 0}, 0); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("write to bad block: err = %v, want ErrBadBlock", err)
	}
	if _, err := a.ScheduleErase(b, 0); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("erase of bad block: err = %v, want ErrBadBlock", err)
	}
}

func TestArrayReadTimingNoInterleave(t *testing.T) {
	a := newTestArray(Features{})
	tm := a.Timing()
	p := PPA{LUN: 0, Block: 0, Page: 0}
	wSched, err := a.ScheduleWrite(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantWrite := tm.Cmd + tm.Transfer + tm.PageWrite
	if wSched.Done.Sub(wSched.Start) != wantWrite {
		t.Errorf("write service time = %v, want %v", wSched.Done.Sub(wSched.Start), wantWrite)
	}
	rSched, err := a.ScheduleRead(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rSched.Start != wSched.Done {
		t.Errorf("read start = %v, want to queue behind write end %v", rSched.Start, wSched.Done)
	}
	wantRead := tm.Cmd + tm.PageRead + tm.Transfer
	if rSched.Done.Sub(rSched.Start) != wantRead {
		t.Errorf("read service time = %v, want %v", rSched.Done.Sub(rSched.Start), wantRead)
	}
}

func TestArrayInterleavingOverlapsSameChannel(t *testing.T) {
	// Two LUNs on one channel. Without interleaving the second op waits for
	// the whole first op; with interleaving it only waits for the bus phases.
	g := Geometry{Channels: 1, LUNsPerChannel: 2, BlocksPerLUN: 4, PagesPerBlock: 4, PageSize: 4096}

	plain := NewArray(g, TimingSLC(), Features{})
	w1, _ := plain.ScheduleWrite(PPA{LUN: 0, Block: 0, Page: 0}, 0)
	w2, _ := plain.ScheduleWrite(PPA{LUN: 1, Block: 0, Page: 0}, 0)
	if w2.Start != w1.Done {
		t.Fatalf("no-interleave: second write starts %v, want %v", w2.Start, w1.Done)
	}

	il := NewArray(g, TimingSLC(), Features{Interleaving: true})
	i1, _ := il.ScheduleWrite(PPA{LUN: 0, Block: 0, Page: 0}, 0)
	i2, _ := il.ScheduleWrite(PPA{LUN: 1, Block: 0, Page: 0}, 0)
	tm := il.Timing()
	busPhase := tm.Cmd + tm.Transfer
	if i2.Start != i1.Start.Add(busPhase) {
		t.Fatalf("interleave: second write starts %v, want %v (after bus phase)", i2.Start, i1.Start.Add(busPhase))
	}
	if i2.Done >= i1.Done.Add(sim.Duration(busPhase)+tm.PageWrite) {
		t.Fatal("interleaving produced no overlap")
	}
}

func TestArrayDifferentChannelsFullyParallel(t *testing.T) {
	g := Geometry{Channels: 2, LUNsPerChannel: 1, BlocksPerLUN: 4, PagesPerBlock: 4, PageSize: 4096}
	a := NewArray(g, TimingSLC(), Features{})
	w1, _ := a.ScheduleWrite(PPA{LUN: 0, Block: 0, Page: 0}, 0)
	w2, _ := a.ScheduleWrite(PPA{LUN: 1, Block: 0, Page: 0}, 0)
	if w1.Start != 0 || w2.Start != 0 {
		t.Fatalf("cross-channel writes did not start together: %v %v", w1.Start, w2.Start)
	}
	if w1.Done != w2.Done {
		t.Fatalf("identical ops on free channels should finish together: %v %v", w1.Done, w2.Done)
	}
}

func TestArrayCopyback(t *testing.T) {
	a := newTestArray(Features{Copyback: true})
	src := PPA{LUN: 0, Block: 0, Page: 0}
	dst := PPA{LUN: 0, Block: 1, Page: 0}
	if _, err := a.ScheduleWrite(src, 0); err != nil {
		t.Fatal(err)
	}
	sched, err := a.ScheduleCopyback(src, dst, 0)
	if err != nil {
		t.Fatalf("copyback: %v", err)
	}
	tm := a.Timing()
	want := tm.Cmd + tm.PageRead + tm.PageWrite
	if sched.Done.Sub(sched.Start) != want {
		t.Errorf("copyback service time = %v, want %v (no data transfer)", sched.Done.Sub(sched.Start), want)
	}
	if a.PageState(dst) != PageValid {
		t.Error("copyback destination not valid")
	}
	if a.PageState(src) != PageValid {
		t.Error("copyback source should stay valid until caller invalidates")
	}
	if a.Counters().Copybacks != 1 {
		t.Errorf("copyback counter = %d", a.Counters().Copybacks)
	}
}

func TestArrayCopybackConstraints(t *testing.T) {
	a := newTestArray(Features{}) // no copyback support
	src := PPA{LUN: 0, Block: 0, Page: 0}
	if _, err := a.ScheduleWrite(src, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ScheduleCopyback(src, PPA{LUN: 0, Block: 1, Page: 0}, 0); !errors.Is(err, ErrCopybackOff) {
		t.Fatalf("copyback without feature: err = %v, want ErrCopybackOff", err)
	}

	b := newTestArray(Features{Copyback: true})
	if _, err := b.ScheduleWrite(src, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ScheduleCopyback(src, PPA{LUN: 1, Block: 0, Page: 0}, 0); !errors.Is(err, ErrCrossLUN) {
		t.Fatalf("cross-LUN copyback: err = %v, want ErrCrossLUN", err)
	}
	if _, err := b.ScheduleCopyback(src, PPA{LUN: 0, Block: 1, Page: 1}, 0); !errors.Is(err, ErrProgramOrder) {
		t.Fatalf("out-of-order copyback dst: err = %v, want ErrProgramOrder", err)
	}
}

func TestArrayBoundsChecks(t *testing.T) {
	a := newTestArray(Features{})
	if _, err := a.ScheduleRead(PPA{LUN: 99, Block: 0, Page: 0}, 0); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("read OOB: %v", err)
	}
	if _, err := a.ScheduleWrite(PPA{LUN: 0, Block: 99, Page: 0}, 0); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("write OOB: %v", err)
	}
	if _, err := a.ScheduleErase(BlockID{LUN: 0, Block: 99}, 0); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("erase OOB: %v", err)
	}
	if err := a.Invalidate(PPA{LUN: -1}); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("invalidate OOB: %v", err)
	}
}

func TestArrayCounters(t *testing.T) {
	a := newTestArray(Features{})
	p := PPA{LUN: 0, Block: 0, Page: 0}
	a.ScheduleWrite(p, 0)
	a.ScheduleRead(p, 0)
	a.ScheduleRead(p, 0)
	a.Invalidate(p)
	a.ScheduleErase(BlockID{LUN: 0, Block: 0}, 0)
	c := a.Counters()
	if c.Writes != 1 || c.Reads != 2 || c.Erases != 1 || c.Copybacks != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestArrayPruneKeepsSemantics(t *testing.T) {
	a := newTestArray(Features{Interleaving: true})
	var last sim.Time
	for pg := 0; pg < 4; pg++ {
		s, err := a.ScheduleWrite(PPA{LUN: 0, Block: 0, Page: pg}, last)
		if err != nil {
			t.Fatal(err)
		}
		last = s.Done
	}
	a.Prune(last)
	if a.LUNFreeAt(0) != 0 {
		t.Fatalf("after full prune LUNFreeAt = %v, want 0 (empty)", a.LUNFreeAt(0))
	}
	// Scheduling after prune still works and starts no earlier than asked.
	s, err := a.ScheduleWrite(PPA{LUN: 0, Block: 1, Page: 0}, last)
	if err != nil {
		t.Fatal(err)
	}
	if s.Start < last {
		t.Fatalf("post-prune op started at %v before request %v", s.Start, last)
	}
}
