package flash

import "eagletree/internal/sim"

// resource tracks the busy intervals of one exclusive hardware resource
// (a channel or a LUN). Reservations are half-open intervals [start, end).
//
// Two reservation disciplines are supported:
//
//   - reserveTail: the operation queues behind everything already booked.
//     This models a channel without interleaving, which is held for whole
//     operations, and LUNs, which execute one operation at a time.
//   - reserveEarliest: the operation slots into the earliest gap large
//     enough, at or after the requested time. This models an interleaved
//     channel, where command and data phases of different operations share
//     the bus between each other's chip-internal phases.
type resource struct {
	intervals []interval // sorted by start, non-overlapping
}

type interval struct {
	start, end sim.Time
}

// freeAt returns the end of the last reservation, i.e. the first instant with
// nothing booked after it.
//
//eagletree:hotpath
func (r *resource) freeAt() sim.Time {
	if len(r.intervals) == 0 {
		return 0
	}
	return r.intervals[len(r.intervals)-1].end
}

// reserveTail books [max(at, tail), +d) behind all existing reservations and
// returns the start time.
//
//eagletree:hotpath
func (r *resource) reserveTail(at sim.Time, d sim.Duration) sim.Time {
	start := at
	if tail := r.freeAt(); tail > start {
		start = tail
	}
	r.intervals = append(r.intervals, interval{start, start.Add(d)})
	return start
}

// reserveEarliest books d time units in the earliest gap beginning at or
// after at, and returns the start time.
//
//eagletree:hotpath
func (r *resource) reserveEarliest(at sim.Time, d sim.Duration) sim.Time {
	// Find the first gap [gapStart, gapEnd) with gapEnd-gapStart >= d and
	// gapStart >= at (clamping gap starts up to at).
	prevEnd := sim.Time(0)
	for i, iv := range r.intervals {
		gapStart := prevEnd
		if gapStart < at {
			gapStart = at
		}
		if iv.start >= gapStart && iv.start.Sub(gapStart) >= d {
			r.insert(i, interval{gapStart, gapStart.Add(d)})
			return gapStart
		}
		prevEnd = iv.end
	}
	start := prevEnd
	if start < at {
		start = at
	}
	r.intervals = append(r.intervals, interval{start, start.Add(d)})
	return start
}

//eagletree:hotpath
func (r *resource) insert(i int, iv interval) {
	r.intervals = append(r.intervals, interval{})
	copy(r.intervals[i+1:], r.intervals[i:])
	r.intervals[i] = iv
}

// prune discards reservations that ended at or before now. The controller
// calls it periodically so interval lists stay short.
func (r *resource) prune(now sim.Time) {
	keep := 0
	for _, iv := range r.intervals {
		if iv.end > now {
			r.intervals[keep] = iv
			keep++
		}
	}
	r.intervals = r.intervals[:keep]
}

// busyAt reports whether the resource has a reservation covering t.
//
//eagletree:hotpath
func (r *resource) busyAt(t sim.Time) bool {
	for _, iv := range r.intervals {
		if iv.start <= t && t < iv.end {
			return true
		}
		if iv.start > t {
			break
		}
	}
	return false
}
