package flash

import (
	"testing"
	"testing/quick"
)

func testGeo() Geometry {
	return Geometry{Channels: 2, LUNsPerChannel: 2, BlocksPerLUN: 8, PagesPerBlock: 4, PageSize: 4096}
}

func TestGeometryTotals(t *testing.T) {
	g := testGeo()
	if g.LUNs() != 4 {
		t.Errorf("LUNs = %d, want 4", g.LUNs())
	}
	if g.Blocks() != 32 {
		t.Errorf("Blocks = %d, want 32", g.Blocks())
	}
	if g.Pages() != 128 {
		t.Errorf("Pages = %d, want 128", g.Pages())
	}
	if g.Bytes() != 128*4096 {
		t.Errorf("Bytes = %d, want %d", g.Bytes(), 128*4096)
	}
	if g.PagesPerLUN() != 32 {
		t.Errorf("PagesPerLUN = %d, want 32", g.PagesPerLUN())
	}
}

func TestGeometryValidate(t *testing.T) {
	if err := testGeo().Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := []Geometry{
		{Channels: 0, LUNsPerChannel: 1, BlocksPerLUN: 1, PagesPerBlock: 1, PageSize: 1},
		{Channels: 1, LUNsPerChannel: 0, BlocksPerLUN: 1, PagesPerBlock: 1, PageSize: 1},
		{Channels: 1, LUNsPerChannel: 1, BlocksPerLUN: 0, PagesPerBlock: 1, PageSize: 1},
		{Channels: 1, LUNsPerChannel: 1, BlocksPerLUN: 1, PagesPerBlock: 0, PageSize: 1},
		{Channels: 1, LUNsPerChannel: 1, BlocksPerLUN: 1, PagesPerBlock: 1, PageSize: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid geometry accepted", i)
		}
	}
}

func TestGeometryChannelOf(t *testing.T) {
	g := testGeo() // 2 LUNs per channel
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 1}
	for lun, want := range cases {
		if got := g.ChannelOf(lun); got != want {
			t.Errorf("ChannelOf(%d) = %d, want %d", lun, got, want)
		}
	}
}

func TestGeometryIndexRoundTrip(t *testing.T) {
	g := testGeo()
	seen := make(map[int]bool)
	for lun := 0; lun < g.LUNs(); lun++ {
		for b := 0; b < g.BlocksPerLUN; b++ {
			for p := 0; p < g.PagesPerBlock; p++ {
				ppa := PPA{LUN: lun, Block: b, Page: p}
				idx := g.Index(ppa)
				if idx < 0 || idx >= g.Pages() {
					t.Fatalf("Index(%v) = %d out of range", ppa, idx)
				}
				if seen[idx] {
					t.Fatalf("Index(%v) = %d collides", ppa, idx)
				}
				seen[idx] = true
				if back := g.PPAOf(idx); back != ppa {
					t.Fatalf("PPAOf(Index(%v)) = %v", ppa, back)
				}
			}
		}
	}
}

func TestGeometryIndexRoundTripProperty(t *testing.T) {
	f := func(c, l, b, p uint8) bool {
		g := Geometry{
			Channels:       int(c%4) + 1,
			LUNsPerChannel: int(l%4) + 1,
			BlocksPerLUN:   int(b%16) + 1,
			PagesPerBlock:  int(p%16) + 1,
			PageSize:       4096,
		}
		for idx := 0; idx < g.Pages(); idx++ {
			if g.Index(g.PPAOf(idx)) != idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryContains(t *testing.T) {
	g := testGeo()
	if !g.Contains(PPA{LUN: 3, Block: 7, Page: 3}) {
		t.Error("last page reported out of bounds")
	}
	for _, p := range []PPA{
		{LUN: 4, Block: 0, Page: 0},
		{LUN: 0, Block: 8, Page: 0},
		{LUN: 0, Block: 0, Page: 4},
		{LUN: -1, Block: 0, Page: 0},
	} {
		if g.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestTimingValidate(t *testing.T) {
	for _, tm := range []Timing{TimingSLC(), TimingMLC()} {
		if err := tm.Validate(); err != nil {
			t.Errorf("preset %v rejected: %v", tm.Cell, err)
		}
	}
	bad := TimingSLC()
	bad.PageWrite = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero PageWrite accepted")
	}
}

func TestTimingPresetsOrdering(t *testing.T) {
	slc, mlc := TimingSLC(), TimingMLC()
	if mlc.PageWrite <= slc.PageWrite {
		t.Error("MLC program should be slower than SLC")
	}
	if mlc.EnduranceLimit >= slc.EnduranceLimit {
		t.Error("MLC endurance should be below SLC")
	}
	if slc.Cell.String() != "SLC" || mlc.Cell.String() != "MLC" {
		t.Error("CellType String() wrong")
	}
}
