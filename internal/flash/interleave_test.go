package flash

import (
	"testing"

	"eagletree/internal/sim"
)

func ilvArray(t *testing.T, feat Features) *Array {
	t.Helper()
	geo := Geometry{Channels: 1, LUNsPerChannel: 2, BlocksPerLUN: 4, PagesPerBlock: 4, PageSize: 4096}
	return NewArray(geo, TimingSLC(), feat)
}

// Two writes to different LUNs on one channel: without interleaving the
// second serializes behind the first's full duration; with interleaving only
// the bus phases serialize and the programs overlap.
func TestInterleavingOverlapsPrograms(t *testing.T) {
	tm := TimingSLC()
	full := tm.Cmd + tm.Transfer + tm.PageWrite

	plain := ilvArray(t, Features{})
	s1, err := plain.ScheduleWrite(PPA{LUN: 0, Block: 0, Page: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := plain.ScheduleWrite(PPA{LUN: 1, Block: 0, Page: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Done != sim.Time(0).Add(full) || s2.Done != sim.Time(0).Add(2*full) {
		t.Fatalf("plain channel: done at %v and %v, want %v and %v", s1.Done, s2.Done, full, 2*full)
	}

	ilv := ilvArray(t, Features{Interleaving: true})
	i1, err := ilv.ScheduleWrite(PPA{LUN: 0, Block: 0, Page: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := ilv.ScheduleWrite(PPA{LUN: 1, Block: 0, Page: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if i1.Done != sim.Time(0).Add(full) {
		t.Fatalf("interleaved first write done at %v, want %v", i1.Done, full)
	}
	wantSecond := sim.Time(0).Add(tm.Cmd + tm.Transfer + full)
	if i2.Done != wantSecond {
		t.Fatalf("interleaved second write done at %v, want %v (bus wait only)", i2.Done, wantSecond)
	}
	if i2.Done >= s2.Done {
		t.Fatal("interleaving did not beat the plain channel")
	}
}

// A read can slot its data transfer into the channel while another LUN's
// program holds only that LUN.
func TestInterleavingReadDuringProgram(t *testing.T) {
	tm := TimingSLC()
	a := ilvArray(t, Features{Interleaving: true})
	// Park a long program on LUN 0.
	if _, err := a.ScheduleWrite(PPA{LUN: 0, Block: 0, Page: 0}, 0); err != nil {
		t.Fatal(err)
	}
	// Make a readable page on LUN 1 (write completes first in virtual time,
	// but scheduling order is what matters for reservations).
	if _, err := a.ScheduleWrite(PPA{LUN: 1, Block: 0, Page: 0}, 0); err != nil {
		t.Fatal(err)
	}
	rd, err := a.ScheduleRead(PPA{LUN: 1, Block: 0, Page: 0}, a.LUNFreeAt(1))
	if err != nil {
		t.Fatal(err)
	}
	// The read must not wait for LUN 0's program to release the channel:
	// it finishes well before a full serialization would allow.
	serialized := sim.Time(0).Add(2*(tm.Cmd+tm.Transfer+tm.PageWrite) + tm.Cmd + tm.PageRead + tm.Transfer)
	if rd.Done >= serialized {
		t.Fatalf("read done at %v, not better than full serialization %v", rd.Done, serialized)
	}
}

func TestInterleavingErasePath(t *testing.T) {
	a := ilvArray(t, Features{Interleaving: true})
	if _, err := a.ScheduleWrite(PPA{LUN: 0, Block: 0, Page: 0}, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Invalidate(PPA{LUN: 0, Block: 0, Page: 0}); err != nil {
		t.Fatal(err)
	}
	sched, err := a.ScheduleErase(BlockID{LUN: 0, Block: 0}, a.LUNFreeAt(0))
	if err != nil {
		t.Fatal(err)
	}
	if sched.Done <= sched.Start {
		t.Fatal("erase has no duration")
	}
	if a.FreeBlocks(0) != 4 {
		t.Fatalf("free blocks %d after erase, want 4", a.FreeBlocks(0))
	}
}

func TestInterleavingCopybackPath(t *testing.T) {
	a := ilvArray(t, Features{Interleaving: true, Copyback: true})
	if _, err := a.ScheduleWrite(PPA{LUN: 0, Block: 0, Page: 0}, 0); err != nil {
		t.Fatal(err)
	}
	cb, err := a.ScheduleCopyback(PPA{LUN: 0, Block: 0, Page: 0}, PPA{LUN: 0, Block: 1, Page: 0}, a.LUNFreeAt(0))
	if err != nil {
		t.Fatal(err)
	}
	tm := TimingSLC()
	if got := cb.Done.Sub(cb.Start); got != tm.Cmd+tm.PageRead+tm.PageWrite {
		t.Fatalf("copyback duration %v, want cmd+read+write", got)
	}
	if a.Counters().Copybacks != 1 {
		t.Fatalf("copyback counter %d", a.Counters().Copybacks)
	}
}

func TestScheduleLatencyHelper(t *testing.T) {
	s := Schedule{Start: 100, Done: 400}
	if s.Latency(50) != 350 {
		t.Fatalf("latency %v, want 350", s.Latency(50))
	}
}

func TestArrayAccessors(t *testing.T) {
	a := ilvArray(t, Features{Copyback: true})
	if a.Geometry().LUNs() != 2 {
		t.Fatal("geometry accessor wrong")
	}
	if !a.Features().Copyback {
		t.Fatal("features accessor wrong")
	}
	if a.ChannelFreeAt(0) != 0 {
		t.Fatal("fresh channel not free at 0")
	}
	if a.LUNBusy(0, 0) {
		t.Fatal("fresh LUN busy")
	}
	if _, err := a.ScheduleWrite(PPA{LUN: 0, Block: 0, Page: 0}, 0); err != nil {
		t.Fatal(err)
	}
	if !a.LUNBusy(0, 1) {
		t.Fatal("LUN not busy mid-write")
	}
	if len(a.EraseCounts()) != a.Geometry().Blocks() {
		t.Fatal("erase counts length wrong")
	}
	if a.ValidPagesIn(BlockID{LUN: 0, Block: 0}) != 1 {
		t.Fatal("valid pages in block wrong")
	}
}

func TestTimingValidateRejectsEachField(t *testing.T) {
	base := TimingSLC()
	muts := []func(*Timing){
		func(t *Timing) { t.Cmd = 0 },
		func(t *Timing) { t.Transfer = 0 },
		func(t *Timing) { t.PageRead = 0 },
		func(t *Timing) { t.PageWrite = 0 },
		func(t *Timing) { t.BlockErase = 0 },
		func(t *Timing) { t.EnduranceLimit = 0 },
	}
	for i, mut := range muts {
		tm := base
		mut(&tm)
		if err := tm.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if SLC.String() != "SLC" || MLC.String() != "MLC" || CellType(9).String() == "" {
		t.Error("cell type strings wrong")
	}
}

func TestBlockMetaHelpers(t *testing.T) {
	m := BlockMeta{WritePtr: 4, ValidPages: 1}
	if !m.Full(4) || m.Full(5) {
		t.Error("Full wrong")
	}
	if m.InvalidPages() != 3 {
		t.Errorf("InvalidPages = %d", m.InvalidPages())
	}
	if (BlockMeta{Bad: true}).Free() {
		t.Error("bad block counted free")
	}
	for _, s := range []PageState{PageFree, PageValid, PageInvalid, PageState(7)} {
		if s.String() == "" {
			t.Error("empty page state string")
		}
	}
}
