package flash

import (
	"fmt"

	"eagletree/internal/fault"
	"eagletree/internal/sim"
)

// FaultOp identifies which flash operation a FaultError hit.
type FaultOp uint8

const (
	// FaultProgram is a failed page program (write or copyback).
	FaultProgram FaultOp = iota
	// FaultErase is a failed block erase.
	FaultErase
)

func (o FaultOp) String() string {
	if o == FaultErase {
		return "erase"
	}
	return "program"
}

// FaultError reports an operation failed by the configured fault model. The
// operation's time was consumed (the returned Schedule is valid) and the
// array state reflects the failure: a failed program burns its page (the
// write pointer advances past an unusable page), a failed erase leaves the
// block dirty, and Grown reports that the block was retired. The caller —
// the controller — owns recovery: relocating the write, skipping the victim,
// migrating survivors off a grown-bad block.
type FaultError struct {
	Op    FaultOp
	Block BlockID
	// Grown reports the block was marked bad as part of the failure.
	Grown bool
}

func (e *FaultError) Error() string {
	if e.Grown {
		return fmt.Sprintf("flash: injected %v failure on %v (block grown bad)", e.Op, e.Block)
	}
	return fmt.Sprintf("flash: injected %v failure on %v", e.Op, e.Block)
}

// SetInjector installs a fault model consulted on every program and erase
// targeting blocks at or above firstBlock (the data region; the translation
// ring's reserved blocks are exempt, matching the factory bad-block model's
// confinement). A nil model disables injection with no per-operation cost.
func (a *Array) SetInjector(m fault.Model, firstBlock int) {
	a.injector = m
	a.injectFrom = firstBlock
}

// injectProgram consults the fault model for a program on block bi's next
// page. It returns nil when the operation proceeds; otherwise it applies the
// failure to array state — the page is burned (invalid, never valid), the
// write pointer advances, and a grown-bad outcome retires the block — and
// returns the typed error. The schedule's time was already reserved: a
// failed program costs what a successful one does. Callers have already
// ruled out a bad block.
//
//eagletree:hotpath
func (a *Array) injectProgram(p PPA, bi int, done sim.Time) *FaultError {
	if a.injector == nil || p.Block < a.injectFrom {
		return nil
	}
	oc := a.injector.Program(int(a.eraseCount[bi]), done)
	if oc == fault.OK {
		return nil
	}
	if a.writePtr[bi] == 0 { // free: the burn makes it a programmed bucket member
		a.freePerLUN[p.LUN]--
		a.bucketAdd(p.LUN, p.Block, int(a.validPages[bi]))
	}
	a.pages[a.geo.Index(p)] = PageInvalid
	a.writePtr[bi]++
	a.counters.Writes++
	ferr := &FaultError{Op: FaultProgram, Block: p.BlockOf(), Grown: oc == fault.GrownBad}
	if ferr.Grown {
		a.MarkBad(p.BlockOf())
	}
	return ferr
}

// injectErase consults the fault model for an erase of b. On failure the
// attempt still wears the cells (the erase count advances) but the pages
// stay programmed, and the block is retired — a failed erase is how blocks
// grow bad in the field.
//
//eagletree:hotpath
func (a *Array) injectErase(b BlockID, bi int, done sim.Time) *FaultError {
	if a.injector == nil || b.Block < a.injectFrom {
		return nil
	}
	if a.injector.Erase(int(a.eraseCount[bi]), done) == fault.OK {
		return nil
	}
	a.eraseCount[bi]++
	a.counters.Erases++
	a.MarkBad(b)
	return &FaultError{Op: FaultErase, Block: b, Grown: true}
}
