package flash

import (
	"fmt"

	"eagletree/internal/sim"
)

// CellType distinguishes flash cell technologies, which differ mainly in
// program/erase latency and endurance.
type CellType int

const (
	SLC CellType = iota // single-level cell: fast, high endurance
	MLC                 // multi-level cell: denser, slower writes, lower endurance
)

func (c CellType) String() string {
	switch c {
	case SLC:
		return "SLC"
	case MLC:
		return "MLC"
	default:
		return fmt.Sprintf("CellType(%d)", int(c))
	}
}

// Timing holds the basic flash chip timings the paper lists: sending a
// command, transferring one page of data on a channel, and the chip-internal
// read (sense), write (program) and erase operations.
type Timing struct {
	Cell       CellType
	Cmd        sim.Duration // command/address cycle on the channel
	Transfer   sim.Duration // one full page of data on the channel
	PageRead   sim.Duration // array sense time (tR)
	PageWrite  sim.Duration // array program time (tPROG)
	BlockErase sim.Duration // block erase time (tBERS)

	// EnduranceLimit is the nominal program/erase cycle budget per block,
	// used by wear statistics; the simulator does not destroy blocks that
	// pass it, it reports them.
	EnduranceLimit int
}

// Validate reports an error if any latency is non-positive.
func (t Timing) Validate() error {
	switch {
	case t.Cmd <= 0:
		return fmt.Errorf("%w: Cmd latency %v, must be positive", ErrConfig, t.Cmd)
	case t.Transfer <= 0:
		return fmt.Errorf("%w: Transfer latency %v, must be positive", ErrConfig, t.Transfer)
	case t.PageRead <= 0:
		return fmt.Errorf("%w: PageRead latency %v, must be positive", ErrConfig, t.PageRead)
	case t.PageWrite <= 0:
		return fmt.Errorf("%w: PageWrite latency %v, must be positive", ErrConfig, t.PageWrite)
	case t.BlockErase <= 0:
		return fmt.Errorf("%w: BlockErase latency %v, must be positive", ErrConfig, t.BlockErase)
	case t.EnduranceLimit <= 0:
		return fmt.Errorf("%w: EnduranceLimit %d, must be positive", ErrConfig, t.EnduranceLimit)
	}
	return nil
}

// TimingSLC returns timings typical of ONFI-class SLC datasheets
// (tR 25us, tPROG 200us, tBERS 1.5ms, ~400MB/s channel → ~10us per 4KiB page).
func TimingSLC() Timing {
	return Timing{
		Cell:           SLC,
		Cmd:            200 * sim.Nanosecond,
		Transfer:       10 * sim.Microsecond,
		PageRead:       25 * sim.Microsecond,
		PageWrite:      200 * sim.Microsecond,
		BlockErase:     1500 * sim.Microsecond,
		EnduranceLimit: 100_000,
	}
}

// TimingMLC returns timings typical of MLC datasheets
// (tR 50us, tPROG 900us, tBERS 3ms).
func TimingMLC() Timing {
	return Timing{
		Cell:           MLC,
		Cmd:            200 * sim.Nanosecond,
		Transfer:       10 * sim.Microsecond,
		PageRead:       50 * sim.Microsecond,
		PageWrite:      900 * sim.Microsecond,
		BlockErase:     3000 * sim.Microsecond,
		EnduranceLimit: 5_000,
	}
}

// Features describes the advanced command set of the simulated chips.
type Features struct {
	// Copyback allows a page to be moved within a LUN through the chip's
	// internal page register, avoiding both channel transfers.
	Copyback bool
	// Interleaving allows the channel to serve other LUNs while one LUN is
	// busy sensing, programming or erasing. Without it the channel is held
	// for the full duration of each operation.
	Interleaving bool
}
