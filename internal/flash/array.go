package flash

import (
	"fmt"

	"eagletree/internal/fault"
	"eagletree/internal/sim"
)

// Schedule reports when a flash operation starts and completes, as computed
// against current channel and LUN occupancy. Start is when the first bus
// cycle happens; Done is when the operation's result is available (data
// transferred for reads, programmed for writes, erased for erases).
type Schedule struct {
	Start sim.Time
	Done  sim.Time
}

// Latency returns the span from request to completion, given the time the
// operation was requested.
func (s Schedule) Latency(requested sim.Time) sim.Duration { return s.Done.Sub(requested) }

// Counters aggregates raw hardware operation counts, the denominator for
// write amplification and wear statistics.
type Counters struct {
	Reads     uint64
	Writes    uint64
	Erases    uint64
	Copybacks uint64
}

// Array is the flash memory array: page and block state plus channel and LUN
// occupancy. It enforces NAND constraints (sequential programming within a
// block, no overwrite without erase) and computes operation timing, but makes
// no policy decisions.
//
// Block metadata is stored as struct-of-arrays columns indexed by BlockIndex
// rather than a []BlockMeta slice: GC victim selection and wear-leveling
// scans walk one column end to end, and a column of int32s keeps an entire
// full-scale LUN's worth of state within a few cache lines.
type Array struct {
	geo    Geometry
	timing Timing
	feat   Features

	pages []PageState

	// Per-block metadata columns, indexed by Geometry.BlockIndex. These are
	// the SoA decomposition of BlockMeta; Block() reassembles the struct for
	// callers that want the AoS view.
	eraseCount []int32
	lastErase  []sim.Time
	validPages []int32
	writePtr   []int32
	bad        []bool

	// buckets indexes programmed, non-bad blocks by (LUN, valid-page count):
	// row (lun*(pagesPerBlock+1) + v) holds a bWords-word bitset of block
	// indexes within the LUN whose ValidPages == v. Membership invariant: a
	// block is in exactly one bucket of its LUN iff WritePtr > 0 && !Bad.
	// Greedy victim selection reads the lowest non-empty eligible bucket in
	// O(pagesPerBlock · words) instead of scanning every block's metadata.
	buckets []uint64
	bWords  int

	channels []resource
	luns     []resource

	freePerLUN []int // count of free (fully erased, non-bad) blocks per LUN
	counters   Counters

	// injector, when non-nil, is consulted on every program and erase of
	// blocks >= injectFrom (the data region). See SetInjector.
	injector   fault.Model
	injectFrom int
}

// NewArray builds an array with all pages free. It panics on invalid
// geometry or timing: configurations are validated once at the public API
// boundary and an invalid one here is a bug.
func NewArray(geo Geometry, timing Timing, feat Features) *Array {
	if err := geo.Validate(); err != nil {
		panic(err)
	}
	if err := timing.Validate(); err != nil {
		panic(err)
	}
	nb := geo.Blocks()
	bWords := (geo.BlocksPerLUN + 63) / 64
	a := &Array{
		geo:        geo,
		timing:     timing,
		feat:       feat,
		pages:      make([]PageState, geo.Pages()),
		eraseCount: make([]int32, nb),
		lastErase:  make([]sim.Time, nb),
		validPages: make([]int32, nb),
		writePtr:   make([]int32, nb),
		bad:        make([]bool, nb),
		buckets:    make([]uint64, geo.LUNs()*(geo.PagesPerBlock+1)*bWords),
		bWords:     bWords,
		channels:   make([]resource, geo.Channels),
		luns:       make([]resource, geo.LUNs()),
		freePerLUN: make([]int, geo.LUNs()),
	}
	for i := range a.freePerLUN {
		a.freePerLUN[i] = geo.BlocksPerLUN
	}
	return a
}

// Geometry returns the array's shape.
func (a *Array) Geometry() Geometry { return a.geo }

// Timing returns the chip timing parameters.
func (a *Array) Timing() Timing { return a.timing }

// Features returns the advanced command support flags.
func (a *Array) Features() Features { return a.feat }

// Counters returns cumulative operation counts.
func (a *Array) Counters() Counters { return a.counters }

// PageState returns the state of one physical page.
func (a *Array) PageState(p PPA) PageState { return a.pages[a.geo.Index(p)] }

// Block returns a copy of the block's metadata, assembled from the columns.
func (a *Array) Block(b BlockID) BlockMeta {
	i := a.geo.BlockIndex(b)
	return BlockMeta{
		EraseCount: int(a.eraseCount[i]),
		LastErase:  a.lastErase[i],
		ValidPages: int(a.validPages[i]),
		WritePtr:   int(a.writePtr[i]),
		Bad:        a.bad[i],
	}
}

// FreeBlocks returns the number of fully erased, non-bad blocks in a LUN.
func (a *Array) FreeBlocks(lun int) int { return a.freePerLUN[lun] }

// LUNFreeAt returns the first instant the LUN has no reservation after it.
func (a *Array) LUNFreeAt(lun int) sim.Time { return a.luns[lun].freeAt() }

// ChannelFreeAt returns the first instant the channel has no reservation
// after it.
func (a *Array) ChannelFreeAt(ch int) sim.Time { return a.channels[ch].freeAt() }

// LUNBusy reports whether the LUN has a reservation covering now.
func (a *Array) LUNBusy(lun int, now sim.Time) bool { return a.luns[lun].busyAt(now) }

// Prune discards resource reservations that ended at or before now.
//
//eagletree:hotpath
func (a *Array) Prune(now sim.Time) {
	for i := range a.channels {
		a.channels[i].prune(now)
	}
	for i := range a.luns {
		a.luns[i].prune(now)
	}
}

func (a *Array) checkBounds(p PPA) error {
	if !a.geo.Contains(p) {
		return fmt.Errorf("%w: %v", ErrOutOfBounds, p)
	}
	return nil
}

// bucketRow returns the offset of the (lun, valid-count) bucket's bitset.
//
//eagletree:hotpath
func (a *Array) bucketRow(lun, valid int) int {
	return (lun*(a.geo.PagesPerBlock+1) + valid) * a.bWords
}

// bucketAdd inserts a LUN-local block index into the bucket for valid count v.
//
//eagletree:hotpath
func (a *Array) bucketAdd(lun, blk, v int) {
	a.buckets[a.bucketRow(lun, v)+blk>>6] |= 1 << (uint(blk) & 63)
}

// bucketDel removes a LUN-local block index from the bucket for valid count v.
//
//eagletree:hotpath
func (a *Array) bucketDel(lun, blk, v int) {
	a.buckets[a.bucketRow(lun, v)+blk>>6] &^= 1 << (uint(blk) & 63)
}

// Cold error constructors for the annotated schedule paths. Constraint
// violations are controller bugs that panic upstream; formatting the message
// allocates, so it stays out of the hot bodies.
func errPPA(sentinel error, what string, p PPA) error {
	if what == "" {
		return fmt.Errorf("%w: %v", sentinel, p)
	}
	return fmt.Errorf("%w: %s %v", sentinel, what, p)
}

func errBlock(sentinel error, what string, b BlockID) error {
	if what == "" {
		return fmt.Errorf("%w: %v", sentinel, b)
	}
	return fmt.Errorf("%w: %s %v", sentinel, what, b)
}

func errReadState(p PPA, st PageState) error {
	return fmt.Errorf("%w: read %v (%v)", ErrNotValid, p, st)
}

func errProgramOrder(what string, p PPA, next int) error {
	return fmt.Errorf("%w: %s %v, next programmable page is %d", ErrProgramOrder, what, p, next)
}

func errEraseLive(b BlockID, live int) error {
	return fmt.Errorf("%w: erase %v with %d live pages", ErrEraseLivePage, b, live)
}

func errCrossLUN(src, dst PPA) error {
	return fmt.Errorf("%w: %v -> %v", ErrCrossLUN, src, dst)
}

// ScheduleRead books a page read at or after `at` and returns its schedule.
// The page must hold valid data.
//
// Phases: command on the channel, sense inside the LUN, data transfer back on
// the channel. With interleaving the channel is free for other LUNs during
// the sense window; without it the channel is held end to end.
//
//eagletree:hotpath
func (a *Array) ScheduleRead(p PPA, at sim.Time) (Schedule, error) {
	if err := a.checkBounds(p); err != nil {
		return Schedule{}, err
	}
	if a.pages[a.geo.Index(p)] != PageValid {
		return Schedule{}, errReadState(p, a.pages[a.geo.Index(p)])
	}
	ch := &a.channels[a.geo.ChannelOf(p.LUN)]
	lun := &a.luns[p.LUN]
	t := a.timing
	var sched Schedule
	if a.feat.Interleaving {
		earliest := at
		if f := lun.freeAt(); f > earliest {
			earliest = f
		}
		cmdStart := ch.reserveEarliest(earliest, t.Cmd)
		senseEnd := cmdStart.Add(t.Cmd + t.PageRead)
		xferStart := ch.reserveEarliest(senseEnd, t.Transfer)
		done := xferStart.Add(t.Transfer)
		// The LUN holds the page register from command until data-out ends.
		lun.reserveTail(cmdStart, done.Sub(cmdStart))
		sched = Schedule{Start: cmdStart, Done: done}
	} else {
		total := t.Cmd + t.PageRead + t.Transfer
		start := at
		if f := ch.freeAt(); f > start {
			start = f
		}
		if f := lun.freeAt(); f > start {
			start = f
		}
		ch.reserveTail(start, total)
		lun.reserveTail(start, total)
		sched = Schedule{Start: start, Done: start.Add(total)}
	}
	a.counters.Reads++
	return sched, nil
}

// ScheduleWrite books a page program at or after `at`. NAND constraints are
// enforced: the page must be the block's next programmable page, the page
// must be free, and the block must not be bad. On success the page becomes
// valid immediately in simulator state (the single-threaded event loop makes
// issue-time state transitions safe).
//
//eagletree:hotpath
func (a *Array) ScheduleWrite(p PPA, at sim.Time) (Schedule, error) {
	if err := a.checkBounds(p); err != nil {
		return Schedule{}, err
	}
	bi := a.geo.BlockIndex(p.BlockOf())
	switch {
	case a.bad[bi]:
		return Schedule{}, errPPA(ErrBadBlock, "write", p)
	case p.Page != int(a.writePtr[bi]):
		return Schedule{}, errProgramOrder("write", p, int(a.writePtr[bi]))
	case a.pages[a.geo.Index(p)] != PageFree:
		return Schedule{}, errPPA(ErrNotFree, "write", p)
	}

	ch := &a.channels[a.geo.ChannelOf(p.LUN)]
	lun := &a.luns[p.LUN]
	t := a.timing
	var sched Schedule
	if a.feat.Interleaving {
		earliest := at
		if f := lun.freeAt(); f > earliest {
			earliest = f
		}
		xferStart := ch.reserveEarliest(earliest, t.Cmd+t.Transfer)
		done := xferStart.Add(t.Cmd + t.Transfer + t.PageWrite)
		lun.reserveTail(xferStart, done.Sub(xferStart))
		sched = Schedule{Start: xferStart, Done: done}
	} else {
		total := t.Cmd + t.Transfer + t.PageWrite
		start := at
		if f := ch.freeAt(); f > start {
			start = f
		}
		if f := lun.freeAt(); f > start {
			start = f
		}
		ch.reserveTail(start, total)
		lun.reserveTail(start, total)
		sched = Schedule{Start: start, Done: start.Add(total)}
	}

	if ferr := a.injectProgram(p, bi, sched.Done); ferr != nil {
		return sched, ferr
	}
	v := int(a.validPages[bi])
	if a.writePtr[bi] == 0 { // free: bad was ruled out above
		a.freePerLUN[p.LUN]--
	} else {
		a.bucketDel(p.LUN, p.Block, v)
	}
	a.bucketAdd(p.LUN, p.Block, v+1)
	a.pages[a.geo.Index(p)] = PageValid
	a.writePtr[bi]++
	a.validPages[bi]++
	a.counters.Writes++
	return sched, nil
}

// ScheduleErase books a block erase at or after `at`. Erasing a block that
// still holds valid pages is refused: the GC layer must migrate live data
// first, and silently destroying it would hide GC bugs.
//
//eagletree:hotpath
func (a *Array) ScheduleErase(b BlockID, at sim.Time) (Schedule, error) {
	if !a.geo.Contains(PPA{LUN: b.LUN, Block: b.Block}) {
		return Schedule{}, errBlock(ErrOutOfBounds, "", b)
	}
	bi := a.geo.BlockIndex(b)
	if a.bad[bi] {
		return Schedule{}, errBlock(ErrBadBlock, "erase", b)
	}
	if a.validPages[bi] > 0 {
		return Schedule{}, errEraseLive(b, int(a.validPages[bi]))
	}

	ch := &a.channels[a.geo.ChannelOf(b.LUN)]
	lun := &a.luns[b.LUN]
	t := a.timing
	var sched Schedule
	if a.feat.Interleaving {
		earliest := at
		if f := lun.freeAt(); f > earliest {
			earliest = f
		}
		cmdStart := ch.reserveEarliest(earliest, t.Cmd)
		done := cmdStart.Add(t.Cmd + t.BlockErase)
		lun.reserveTail(cmdStart, done.Sub(cmdStart))
		sched = Schedule{Start: cmdStart, Done: done}
	} else {
		total := t.Cmd + t.BlockErase
		start := at
		if f := ch.freeAt(); f > start {
			start = f
		}
		if f := lun.freeAt(); f > start {
			start = f
		}
		ch.reserveTail(start, total)
		lun.reserveTail(start, total)
		sched = Schedule{Start: start, Done: start.Add(total)}
	}

	if ferr := a.injectErase(b, bi, sched.Done); ferr != nil {
		return sched, ferr
	}
	wasFree := a.writePtr[bi] == 0 // bad was ruled out above
	base := a.geo.Index(PPA{LUN: b.LUN, Block: b.Block, Page: 0})
	for i := 0; i < a.geo.PagesPerBlock; i++ {
		a.pages[base+i] = PageFree
	}
	if !wasFree {
		a.bucketDel(b.LUN, b.Block, 0) // live pages were ruled out above
	}
	a.writePtr[bi] = 0
	a.validPages[bi] = 0
	a.eraseCount[bi]++
	a.lastErase[bi] = sched.Done
	if !wasFree {
		a.freePerLUN[b.LUN]++
	}
	a.counters.Erases++
	return sched, nil
}

// ScheduleCopyback books an intra-LUN page move through the chip's internal
// page register: one sense plus one program, with only a command cycle on the
// channel and no data transfer. The destination must satisfy the same NAND
// constraints as a write; the source stays valid until the caller invalidates
// it (GC erases the whole source block afterwards).
//
//eagletree:hotpath
func (a *Array) ScheduleCopyback(src, dst PPA, at sim.Time) (Schedule, error) {
	if !a.feat.Copyback {
		return Schedule{}, ErrCopybackOff
	}
	if err := a.checkBounds(src); err != nil {
		return Schedule{}, err
	}
	if err := a.checkBounds(dst); err != nil {
		return Schedule{}, err
	}
	if src.LUN != dst.LUN {
		return Schedule{}, errCrossLUN(src, dst)
	}
	if a.pages[a.geo.Index(src)] != PageValid {
		return Schedule{}, errPPA(ErrNotValid, "copyback from", src)
	}
	bi := a.geo.BlockIndex(dst.BlockOf())
	switch {
	case a.bad[bi]:
		return Schedule{}, errPPA(ErrBadBlock, "copyback to", dst)
	case dst.Page != int(a.writePtr[bi]):
		return Schedule{}, errProgramOrder("copyback to", dst, int(a.writePtr[bi]))
	case a.pages[a.geo.Index(dst)] != PageFree:
		return Schedule{}, errPPA(ErrNotFree, "copyback to", dst)
	}

	ch := &a.channels[a.geo.ChannelOf(src.LUN)]
	lun := &a.luns[src.LUN]
	t := a.timing
	opLen := t.PageRead + t.PageWrite
	var sched Schedule
	if a.feat.Interleaving {
		earliest := at
		if f := lun.freeAt(); f > earliest {
			earliest = f
		}
		cmdStart := ch.reserveEarliest(earliest, t.Cmd)
		done := cmdStart.Add(t.Cmd + opLen)
		lun.reserveTail(cmdStart, done.Sub(cmdStart))
		sched = Schedule{Start: cmdStart, Done: done}
	} else {
		total := t.Cmd + opLen
		start := at
		if f := ch.freeAt(); f > start {
			start = f
		}
		if f := lun.freeAt(); f > start {
			start = f
		}
		ch.reserveTail(start, total)
		lun.reserveTail(start, total)
		sched = Schedule{Start: start, Done: start.Add(total)}
	}

	if ferr := a.injectProgram(dst, bi, sched.Done); ferr != nil {
		a.counters.Writes-- // injectProgram charged a write; this was a copyback
		a.counters.Copybacks++
		return sched, ferr
	}
	v := int(a.validPages[bi])
	if a.writePtr[bi] == 0 { // free: bad was ruled out above
		a.freePerLUN[dst.LUN]--
	} else {
		a.bucketDel(dst.LUN, dst.Block, v)
	}
	a.bucketAdd(dst.LUN, dst.Block, v+1)
	a.pages[a.geo.Index(dst)] = PageValid
	a.writePtr[bi]++
	a.validPages[bi]++
	a.counters.Copybacks++
	return sched, nil
}

// Invalidate marks a valid page stale (an overwrite left a before-image).
//
//eagletree:hotpath
func (a *Array) Invalidate(p PPA) error {
	if err := a.checkBounds(p); err != nil {
		return err
	}
	idx := a.geo.Index(p)
	switch a.pages[idx] {
	case PageValid:
		a.pages[idx] = PageInvalid
		bi := a.geo.BlockIndex(p.BlockOf())
		v := int(a.validPages[bi])
		a.validPages[bi]--
		if !a.bad[bi] { // retired blocks are not bucket members
			a.bucketDel(p.LUN, p.Block, v)
			a.bucketAdd(p.LUN, p.Block, v-1)
		}
		return nil
	case PageInvalid:
		return errPPA(ErrAlreadyStale, "", p)
	default:
		return errPPA(ErrNotValid, "invalidate", p)
	}
}

// MarkBad retires a block. A free block leaves the free pool; a bad block is
// never erased, written or counted free again.
//
//eagletree:hotpath
func (a *Array) MarkBad(b BlockID) {
	bi := a.geo.BlockIndex(b)
	if a.bad[bi] {
		return
	}
	if a.writePtr[bi] == 0 {
		a.freePerLUN[b.LUN]--
	} else {
		a.bucketDel(b.LUN, b.Block, int(a.validPages[bi]))
	}
	a.bad[bi] = true
}

// EraseCounts returns every block's erase count, indexed by BlockIndex.
// Wear-leveling statistics and experiment reports consume this.
func (a *Array) EraseCounts() []int {
	out := make([]int, len(a.eraseCount))
	for i, ec := range a.eraseCount {
		out[i] = int(ec)
	}
	return out
}

// ValidPagesIn returns the live-page count of a block (GC victim selection).
func (a *Array) ValidPagesIn(b BlockID) int {
	return int(a.validPages[a.geo.BlockIndex(b)])
}
