package flash

import (
	"errors"
	"fmt"

	"eagletree/internal/sim"
)

// PageState tracks the lifecycle of one physical page.
type PageState uint8

const (
	// PageFree means erased and programmable.
	PageFree PageState = iota
	// PageValid holds live data some logical page maps to.
	PageValid
	// PageInvalid holds a stale before-image awaiting garbage collection.
	PageInvalid
)

func (s PageState) String() string {
	switch s {
	case PageFree:
		return "free"
	case PageValid:
		return "valid"
	case PageInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("PageState(%d)", uint8(s))
	}
}

// BlockMeta is the per-erase-block bookkeeping the controller layers consult:
// garbage collection needs ValidPages, wear leveling needs EraseCount and
// LastErase, bad-block management needs Bad.
type BlockMeta struct {
	EraseCount int      // program/erase cycles so far (the block's "age")
	LastErase  sim.Time // when the block was last erased
	ValidPages int      // live pages in the block
	WritePtr   int      // next programmable page index (NAND programs in order)
	Bad        bool     // retired block, never used again
}

// Free reports whether the block is fully erased and unused.
func (b BlockMeta) Free() bool { return !b.Bad && b.WritePtr == 0 }

// Full reports whether every page has been programmed.
func (b BlockMeta) Full(pagesPerBlock int) bool { return b.WritePtr >= pagesPerBlock }

// InvalidPages returns the count of stale pages given the geometry.
func (b BlockMeta) InvalidPages() int { return b.WritePtr - b.ValidPages }

// Interval is one booked busy span of a channel or LUN, exported for
// device-state snapshots. Reservations are half-open: [Start, End).
type Interval struct {
	Start, End sim.Time
}

// ResourceState is the reservation list of one channel or LUN.
type ResourceState struct {
	Intervals []Interval
}

// ArrayState is the complete serializable state of a flash array: every
// page's lifecycle state, every block's metadata, operation counters, free
// counts and the channel/LUN reservation lists. Together with the geometry,
// timing and feature configuration (which live in the owning Config, not
// here) it fully determines all future array behavior.
type ArrayState struct {
	Pages      []PageState
	Blocks     []BlockMeta
	FreePerLUN []int
	Counters   Counters
	Channels   []ResourceState
	LUNs       []ResourceState
}

// State deep-copies the array's mutable state for a snapshot. The block
// columns are reassembled into the AoS []BlockMeta so the snapshot encoding
// is independent of the in-memory layout.
func (a *Array) State() ArrayState {
	blocks := make([]BlockMeta, len(a.eraseCount))
	for i := range blocks {
		blocks[i] = BlockMeta{
			EraseCount: int(a.eraseCount[i]),
			LastErase:  a.lastErase[i],
			ValidPages: int(a.validPages[i]),
			WritePtr:   int(a.writePtr[i]),
			Bad:        a.bad[i],
		}
	}
	st := ArrayState{
		Pages:      append([]PageState(nil), a.pages...),
		Blocks:     blocks,
		FreePerLUN: append([]int(nil), a.freePerLUN...),
		Counters:   a.counters,
		Channels:   make([]ResourceState, len(a.channels)),
		LUNs:       make([]ResourceState, len(a.luns)),
	}
	for i := range a.channels {
		st.Channels[i] = ResourceState{Intervals: copyIntervals(a.channels[i].intervals)}
	}
	for i := range a.luns {
		st.LUNs[i] = ResourceState{Intervals: copyIntervals(a.luns[i].intervals)}
	}
	return st
}

func copyIntervals(ivs []interval) []Interval {
	out := make([]Interval, len(ivs))
	for i, iv := range ivs {
		out[i] = Interval{Start: iv.start, End: iv.end}
	}
	return out
}

// RestoreState overwrites the array's mutable state with a snapshot. The
// snapshot must match the array's geometry; a shape mismatch is an error and
// leaves the array unchanged.
func (a *Array) RestoreState(st ArrayState) error {
	switch {
	case len(st.Pages) != len(a.pages):
		return fmt.Errorf("%w: snapshot has %d pages, array has %d", ErrStateMismatch, len(st.Pages), len(a.pages))
	case len(st.Blocks) != len(a.eraseCount):
		return fmt.Errorf("%w: snapshot has %d blocks, array has %d", ErrStateMismatch, len(st.Blocks), len(a.eraseCount))
	case len(st.FreePerLUN) != len(a.freePerLUN):
		return fmt.Errorf("%w: snapshot has %d LUN free counts, array has %d", ErrStateMismatch, len(st.FreePerLUN), len(a.freePerLUN))
	case len(st.Channels) != len(a.channels):
		return fmt.Errorf("%w: snapshot has %d channels, array has %d", ErrStateMismatch, len(st.Channels), len(a.channels))
	case len(st.LUNs) != len(a.luns):
		return fmt.Errorf("%w: snapshot has %d LUNs, array has %d", ErrStateMismatch, len(st.LUNs), len(a.luns))
	}
	copy(a.pages, st.Pages)
	for i, b := range st.Blocks {
		a.eraseCount[i] = int32(b.EraseCount)
		a.lastErase[i] = b.LastErase
		a.validPages[i] = int32(b.ValidPages)
		a.writePtr[i] = int32(b.WritePtr)
		a.bad[i] = b.Bad
	}
	a.rebuildBuckets()
	copy(a.freePerLUN, st.FreePerLUN)
	a.counters = st.Counters
	for i := range a.channels {
		a.channels[i].intervals = restoreIntervals(st.Channels[i].Intervals)
	}
	for i := range a.luns {
		a.luns[i].intervals = restoreIntervals(st.LUNs[i].Intervals)
	}
	return nil
}

func restoreIntervals(ivs []Interval) []interval {
	out := make([]interval, len(ivs))
	for i, iv := range ivs {
		out[i] = interval{start: iv.Start, end: iv.End}
	}
	return out
}

// Errors returned by Array state transitions. All are programming errors in
// the FTL or GC layer, not recoverable runtime conditions, but they are
// returned (not panicked) so tests can assert on them.
// Errors returned by configuration validation and snapshot restore.
var (
	// ErrConfig wraps every Geometry/Timing validation failure.
	ErrConfig = errors.New("flash: invalid configuration")
	// ErrStateMismatch wraps every shape mismatch between a snapshot and
	// the array it is restored into.
	ErrStateMismatch = errors.New("flash: snapshot does not match array shape")
)

var (
	ErrOutOfBounds   = errors.New("flash: address out of bounds")
	ErrNotValid      = errors.New("flash: page does not hold valid data")
	ErrNotFree       = errors.New("flash: page is not free")
	ErrProgramOrder  = errors.New("flash: pages must be programmed sequentially within a block")
	ErrBadBlock      = errors.New("flash: block is marked bad")
	ErrCopybackOff   = errors.New("flash: copyback not supported by this chip")
	ErrCrossLUN      = errors.New("flash: copyback source and destination must share a LUN")
	ErrAlreadyStale  = errors.New("flash: page already invalid")
	ErrEraseLivePage = errors.New("flash: erasing block that still holds valid pages")
)
