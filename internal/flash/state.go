package flash

import (
	"errors"
	"fmt"

	"eagletree/internal/sim"
)

// PageState tracks the lifecycle of one physical page.
type PageState uint8

const (
	// PageFree means erased and programmable.
	PageFree PageState = iota
	// PageValid holds live data some logical page maps to.
	PageValid
	// PageInvalid holds a stale before-image awaiting garbage collection.
	PageInvalid
)

func (s PageState) String() string {
	switch s {
	case PageFree:
		return "free"
	case PageValid:
		return "valid"
	case PageInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("PageState(%d)", uint8(s))
	}
}

// BlockMeta is the per-erase-block bookkeeping the controller layers consult:
// garbage collection needs ValidPages, wear leveling needs EraseCount and
// LastErase, bad-block management needs Bad.
type BlockMeta struct {
	EraseCount int      // program/erase cycles so far (the block's "age")
	LastErase  sim.Time // when the block was last erased
	ValidPages int      // live pages in the block
	WritePtr   int      // next programmable page index (NAND programs in order)
	Bad        bool     // retired block, never used again
}

// Free reports whether the block is fully erased and unused.
func (b BlockMeta) Free() bool { return !b.Bad && b.WritePtr == 0 }

// Full reports whether every page has been programmed.
func (b BlockMeta) Full(pagesPerBlock int) bool { return b.WritePtr >= pagesPerBlock }

// InvalidPages returns the count of stale pages given the geometry.
func (b BlockMeta) InvalidPages() int { return b.WritePtr - b.ValidPages }

// Errors returned by Array state transitions. All are programming errors in
// the FTL or GC layer, not recoverable runtime conditions, but they are
// returned (not panicked) so tests can assert on them.
var (
	ErrOutOfBounds   = errors.New("flash: address out of bounds")
	ErrNotValid      = errors.New("flash: page does not hold valid data")
	ErrNotFree       = errors.New("flash: page is not free")
	ErrProgramOrder  = errors.New("flash: pages must be programmed sequentially within a block")
	ErrBadBlock      = errors.New("flash: block is marked bad")
	ErrCopybackOff   = errors.New("flash: copyback not supported by this chip")
	ErrCrossLUN      = errors.New("flash: copyback source and destination must share a LUN")
	ErrAlreadyStale  = errors.New("flash: page already invalid")
	ErrEraseLivePage = errors.New("flash: erasing block that still holds valid pages")
)
