package flash

import (
	"testing"

	"eagletree/internal/sim"
)

func TestResourceTailSerializes(t *testing.T) {
	var r resource
	s1 := r.reserveTail(0, 100)
	s2 := r.reserveTail(0, 100)
	s3 := r.reserveTail(50, 100)
	if s1 != 0 || s2 != 100 || s3 != 200 {
		t.Fatalf("tail starts = %v %v %v, want 0 100 200", s1, s2, s3)
	}
	if r.freeAt() != 300 {
		t.Fatalf("freeAt = %v, want 300", r.freeAt())
	}
}

func TestResourceTailRespectsRequestTime(t *testing.T) {
	var r resource
	if s := r.reserveTail(500, 10); s != 500 {
		t.Fatalf("idle tail reservation started at %v, want 500", s)
	}
}

func TestResourceEarliestFillsGap(t *testing.T) {
	var r resource
	r.reserveTail(0, 100)   // [0,100)
	r.reserveTail(300, 100) // [300,400)
	s := r.reserveEarliest(0, 50)
	if s != 100 {
		t.Fatalf("gap reservation started at %v, want 100", s)
	}
	// The gap [150,300) still has 150 units; a 200-unit op must go after 400.
	s2 := r.reserveEarliest(0, 200)
	if s2 != 400 {
		t.Fatalf("oversized op started at %v, want 400", s2)
	}
}

func TestResourceEarliestHonorsAt(t *testing.T) {
	var r resource
	r.reserveTail(0, 100)   // [0,100)
	r.reserveTail(200, 100) // [200,300)
	// Gap [100,200) exists, but the op cannot start before 150.
	s := r.reserveEarliest(150, 50)
	if s != 150 {
		t.Fatalf("clamped gap reservation started at %v, want 150", s)
	}
}

func TestResourceEarliestKeepsSortedNonOverlapping(t *testing.T) {
	var r resource
	rng := sim.NewRNG(99)
	for i := 0; i < 500; i++ {
		at := sim.Time(rng.Intn(10000))
		d := sim.Duration(rng.Intn(50) + 1)
		if rng.Intn(2) == 0 {
			r.reserveEarliest(at, d)
		} else {
			r.reserveTail(at, d)
		}
	}
	for i := 1; i < len(r.intervals); i++ {
		prev, cur := r.intervals[i-1], r.intervals[i]
		if cur.start < prev.end {
			t.Fatalf("intervals overlap or unsorted at %d: %v then %v", i, prev, cur)
		}
	}
}

func TestResourcePrune(t *testing.T) {
	var r resource
	r.reserveTail(0, 100)
	r.reserveTail(0, 100)
	r.reserveTail(0, 100)
	r.prune(150)
	if len(r.intervals) != 2 {
		t.Fatalf("after prune(150): %d intervals, want 2", len(r.intervals))
	}
	if r.freeAt() != 300 {
		t.Fatalf("prune changed tail: freeAt = %v", r.freeAt())
	}
}

func TestResourceBusyAt(t *testing.T) {
	var r resource
	r.reserveTail(100, 50) // [100,150)
	cases := map[sim.Time]bool{99: false, 100: true, 149: true, 150: false}
	for at, want := range cases {
		if got := r.busyAt(at); got != want {
			t.Errorf("busyAt(%v) = %v, want %v", at, got, want)
		}
	}
}
