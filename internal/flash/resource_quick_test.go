package flash

import (
	"testing"
	"testing/quick"

	"eagletree/internal/sim"
)

// TestResourceReservationsNeverOverlap: whatever mix of tail and earliest
// reservations is thrown at a resource, its committed intervals never
// overlap and every reservation starts at or after its requested time.
func TestResourceReservationsNeverOverlap(t *testing.T) {
	f := func(ops []struct {
		At       uint16
		Dur      uint8
		Earliest bool
	}) bool {
		var r resource
		for _, op := range ops {
			at := sim.Time(op.At)
			d := sim.Duration(op.Dur) + 1
			var start sim.Time
			if op.Earliest {
				start = r.reserveEarliest(at, d)
			} else {
				start = r.reserveTail(at, d)
			}
			if start < at {
				t.Logf("reservation at %v started %v, before requested", at, start)
				return false
			}
		}
		// Sort-free overlap check: intervals must be pairwise disjoint.
		for i := 0; i < len(r.intervals); i++ {
			for j := i + 1; j < len(r.intervals); j++ {
				a, b := r.intervals[i], r.intervals[j]
				if a.start < b.end && b.start < a.end {
					t.Logf("overlap %v-%v with %v-%v", a.start, a.end, b.start, b.end)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestResourceEarliestIsSorted: reserveEarliest must keep the interval list
// sorted by start time (its gap search depends on it).
func TestResourceEarliestIsSorted(t *testing.T) {
	f := func(ops []struct {
		At  uint16
		Dur uint8
	}) bool {
		var r resource
		for _, op := range ops {
			r.reserveEarliest(sim.Time(op.At), sim.Duration(op.Dur)+1)
		}
		for i := 1; i < len(r.intervals); i++ {
			if r.intervals[i-1].start > r.intervals[i].start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestResourcePrunePreservesFuture: pruning at any instant drops only
// intervals that ended at or before it.
func TestResourcePrunePreservesFuture(t *testing.T) {
	f := func(ops []struct {
		At  uint16
		Dur uint8
	}, cut uint16) bool {
		var r resource
		for _, op := range ops {
			r.reserveTail(sim.Time(op.At), sim.Duration(op.Dur)+1)
		}
		var want int
		for _, iv := range r.intervals {
			if iv.end > sim.Time(cut) {
				want++
			}
		}
		r.prune(sim.Time(cut))
		if len(r.intervals) != want {
			return false
		}
		for _, iv := range r.intervals {
			if iv.end <= sim.Time(cut) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBusyAtMatchesIntervals: busyAt answers exactly "is t inside some
// reservation".
func TestBusyAtMatchesIntervals(t *testing.T) {
	f := func(ops []struct {
		At  uint16
		Dur uint8
	}, probe uint16) bool {
		var r resource
		for _, op := range ops {
			r.reserveTail(sim.Time(op.At), sim.Duration(op.Dur)+1)
		}
		tp := sim.Time(probe)
		want := false
		for _, iv := range r.intervals {
			if iv.start <= tp && tp < iv.end {
				want = true
			}
		}
		return r.busyAt(tp) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
