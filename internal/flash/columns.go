package flash

import (
	"math/bits"

	"eagletree/internal/sim"
)

// BlockColumns is a read-only struct-of-arrays view over the per-block
// metadata, indexed by Geometry.BlockIndex (a LUN's blocks are contiguous:
// [lun*BlocksPerLUN, (lun+1)*BlocksPerLUN)). Scan layers — GC victim
// selection, wear leveling, allocator bookkeeping — iterate one column end
// to end instead of striding over BlockMeta structs; the slices alias live
// array state and must not be written or retained across events.
type BlockColumns struct {
	EraseCount []int32
	LastErase  []sim.Time
	ValidPages []int32
	WritePtr   []int32
	Bad        []bool
}

// Columns returns the struct-of-arrays view of the block metadata.
func (a *Array) Columns() BlockColumns {
	return BlockColumns{
		EraseCount: a.eraseCount,
		LastErase:  a.lastErase,
		ValidPages: a.validPages,
		WritePtr:   a.writePtr,
		Bad:        a.bad,
	}
}

// BucketWords returns the number of uint64 words in one per-LUN block
// bitset — the length callers of MinValidBlock size their eligibility
// masks to.
func (a *Array) BucketWords() int { return a.bWords }

// MinValidBlock returns the eligible block of the LUN with the fewest valid
// pages, considering only valid counts strictly below maxValid. eligible is
// a BucketWords()-long bitset of LUN-local block indexes (bit b of word b/64
// set ⇔ block b may be picked). Ties break toward the lowest block index —
// the same order a linear scan that keeps the first strictly-smaller
// candidate produces. The bool result is false when no eligible block has a
// valid count below maxValid.
//
// Cost is O(maxValid · BucketWords()) words touched, independent of how many
// blocks the LUN holds — this is the bucketed min-tracker that replaces the
// full-device Greedy victim scan.
//
//eagletree:hotpath
func (a *Array) MinValidBlock(lun int, eligible []uint64, maxValid int) (blk, valid int, ok bool) {
	base := a.bucketRow(lun, 0)
	for v := 0; v < maxValid; v++ {
		row := base + v*a.bWords
		for w := 0; w < a.bWords; w++ {
			if m := a.buckets[row+w] & eligible[w]; m != 0 {
				return w*64 + bits.TrailingZeros64(m), v, true
			}
		}
	}
	return 0, 0, false
}

// rebuildBuckets recomputes the (LUN, valid-count) bucket bitsets from the
// block columns after a snapshot restore. Membership invariant: a block is
// bucketed iff it is programmed (WritePtr > 0) and not retired.
func (a *Array) rebuildBuckets() {
	for i := range a.buckets {
		a.buckets[i] = 0
	}
	for lun := 0; lun < a.geo.LUNs(); lun++ {
		base := lun * a.geo.BlocksPerLUN
		for b := 0; b < a.geo.BlocksPerLUN; b++ {
			if a.writePtr[base+b] > 0 && !a.bad[base+b] {
				a.bucketAdd(lun, b, int(a.validPages[base+b]))
			}
		}
	}
}
