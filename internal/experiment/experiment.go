// Package experiment implements EagleTree's experimental suite API: an
// experiment template takes a parameter or policy, a strategy for varying it
// (the variant list), and a workload definition; the Runner executes one full
// simulation per variant and collects comparable metric rows — tables, CSV
// and text charts standing in for the GUI's graphs.
//
// Device preparation is first-class: when a definition has a Prepare hook,
// measured threads automatically depend on a barrier behind the preparation
// threads, and statistics cover only the measured window (§2.3's repeatable
// methodology).
//
// Execution is context-aware and observable: New(opts).Run(ctx, def) honors
// cancellation mid-sweep (partial Results carry the completed row prefix
// alongside a typed ErrCanceled) and streams typed events — variant
// lifecycle, snapshot-cache provenance, timings — to an optional Observer.
//
//eagletree:canonical
//eagletree:typederrors
package experiment

import (
	"eagletree/internal/core"
	"eagletree/internal/sim"
	"eagletree/internal/workload"
)

// Variant is one setting of the varied parameter or policy.
type Variant struct {
	// Label names the variant in tables ("channels=4", "policy=fifo").
	Label string
	// X is the variant's numeric value where one exists (sweep position);
	// charts use it as the x coordinate.
	X float64
	// Mutate applies the variant to the base configuration.
	Mutate func(*core.Config)
	// Prep, when non-nil, overrides the definition's Prep for this variant —
	// used when preparation itself is what varies (fresh vs aged device,
	// experiment E11). Point it at a zero PrepareSpec to disable preparation.
	Prep *PrepareSpec
	// Prepare, when non-nil, overrides the definition's preparation with a
	// custom hook for this variant. Custom hooks run in the legacy in-stack
	// barrier flow and are never snapshot-cached.
	Prepare func(s *core.Stack) []*workload.Handle
	// Workload, when non-nil, overrides the definition's Workload for this
	// variant — used when the workload itself carries the varied behavior
	// (oracle temperature tags, experiment E8).
	Workload func(s *core.Stack, after *workload.Handle)
}

// Definition is an experiment template.
type Definition struct {
	// Name identifies the experiment in reports.
	Name string
	// Base returns the configuration shared by all variants.
	Base func() core.Config
	// Variants is the parameter sweep; each produces one result row.
	Variants []Variant
	// Prep declaratively describes device preparation (sequential fill plus
	// random aging). Declared preparation runs in the prepare-once-restore-
	// many flow: the runner prepares each distinct (preparation config, spec,
	// seed) combination once, snapshots the drained stack, and restores the
	// state per variant instead of re-aging the device.
	Prep PrepareSpec
	// Prepare is the custom-hook alternative to Prep: it registers arbitrary
	// device-preparation threads (run before the measurement barrier) and
	// returns their handles. Custom hooks run per variant in the legacy
	// in-stack flow with no snapshot sharing; prefer Prep. Ignored when Prep
	// is set.
	Prepare func(s *core.Stack) []*workload.Handle
	// Workload registers the measured threads. Each must depend on after
	// (nil when there is no preparation phase).
	Workload func(s *core.Stack, after *workload.Handle)
	// SeriesBucket, when positive, records a completion time series with
	// this bucket width per variant; Timelines renders them ("graphs
	// showing how metrics evolved across time").
	SeriesBucket sim.Duration
}

// Row is one variant's outcome.
type Row struct {
	Label  string
	X      float64
	Report core.Report
	// Timeline is the completion-rate sparkline over the measured window
	// (empty unless the definition set SeriesBucket).
	Timeline string
}

// Results collects every variant's outcome for rendering.
type Results struct {
	Name string
	Rows []Row
}

// Options tunes how an experiment executes; the zero value is the default:
// GOMAXPROCS workers and a private in-memory snapshot cache, so declared
// preparation runs once per distinct state within the call.
type Options struct {
	// Workers bounds variant parallelism; <= 0 means GOMAXPROCS, 1 is the
	// plain sequential loop.
	Workers int
	// Cache, when non-nil, supplies a shared (possibly disk-backed) snapshot
	// cache — repeated sweeps then skip preparation entirely.
	Cache *StateCache
	// NoPrepareCache disables snapshot reuse: every variant prepares its own
	// device state from scratch. This is the fresh baseline the determinism
	// tests and the CI state-cache check compare restored runs against.
	NoPrepareCache bool
	// Observer, when non-nil, receives the run's event stream: variant
	// lifecycle, snapshot-cache provenance and timings. Calls are serialized
	// but arrive from worker goroutines in completion order.
	Observer Observer
}

// prepFor resolves the variant's effective preparation: a declarative spec,
// or a custom hook (legacy flow), never both.
func (def Definition) prepFor(v Variant) (PrepareSpec, func(*core.Stack) []*workload.Handle) {
	if v.Prep != nil {
		return *v.Prep, nil
	}
	if v.Prepare != nil {
		return PrepareSpec{}, v.Prepare
	}
	if !def.Prep.None() {
		return def.Prep, nil
	}
	return PrepareSpec{}, def.Prepare
}

func rowFrom(v Variant, stack *core.Stack) (Row, error) {
	row := Row{Label: v.Label, X: v.X, Report: stack.Report()}
	if ts := stack.Stats.Series(); ts != nil {
		row.Timeline = ts.Sparkline()
	}
	return row, nil
}

// Metric extracts one scalar from a report, for charts and CSV columns.
type Metric struct {
	Name string
	F    func(core.Report) float64
}

// Standard metrics experiments chart.
var (
	MetricThroughput = Metric{"throughput_iops", func(r core.Report) float64 { return r.Throughput }}
	MetricReadMean   = Metric{"read_mean_us", func(r core.Report) float64 { return r.ReadLatency.Mean.Micros() }}
	MetricWriteMean  = Metric{"write_mean_us", func(r core.Report) float64 { return r.WriteLatency.Mean.Micros() }}
	MetricReadP99    = Metric{"read_p99_us", func(r core.Report) float64 { return r.ReadLatency.P99.Micros() }}
	MetricWriteP99   = Metric{"write_p99_us", func(r core.Report) float64 { return r.WriteLatency.P99.Micros() }}
	MetricReadStd    = Metric{"read_std_us", func(r core.Report) float64 { return r.ReadLatency.Std.Micros() }}
	MetricWriteStd   = Metric{"write_std_us", func(r core.Report) float64 { return r.WriteLatency.Std.Micros() }}
	MetricWA         = Metric{"write_amp", func(r core.Report) float64 { return r.WriteAmplification }}
	MetricGCPages    = Metric{"gc_pages", func(r core.Report) float64 { return float64(r.GCMigratedPages) }}
	MetricWearSpread = Metric{"wear_spread", func(r core.Report) float64 { return float64(r.Wear.Spread()) }}
)
