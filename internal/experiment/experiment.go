// Package experiment implements EagleTree's experimental suite API: an
// experiment template takes a parameter or policy, a strategy for varying it
// (the variant list), and a workload definition; it runs one full simulation
// per variant and collects comparable metric rows — tables, CSV and text
// charts standing in for the GUI's graphs.
//
// Device preparation is first-class: when a definition has a Prepare hook,
// measured threads automatically depend on a barrier behind the preparation
// threads, and statistics cover only the measured window (§2.3's repeatable
// methodology).
package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"eagletree/internal/core"
	"eagletree/internal/sim"
	"eagletree/internal/workload"
)

// Variant is one setting of the varied parameter or policy.
type Variant struct {
	// Label names the variant in tables ("channels=4", "policy=fifo").
	Label string
	// X is the variant's numeric value where one exists (sweep position);
	// charts use it as the x coordinate.
	X float64
	// Mutate applies the variant to the base configuration.
	Mutate func(*core.Config)
	// Prepare, when non-nil, overrides the definition's Prepare for this
	// variant — used when preparation itself is what varies (fresh vs aged
	// device, experiment E11).
	Prepare func(s *core.Stack) []*workload.Handle
	// Workload, when non-nil, overrides the definition's Workload for this
	// variant — used when the workload itself carries the varied behavior
	// (oracle temperature tags, experiment E8).
	Workload func(s *core.Stack, after *workload.Handle)
}

// Definition is an experiment template.
type Definition struct {
	// Name identifies the experiment in reports.
	Name string
	// Base returns the configuration shared by all variants.
	Base func() core.Config
	// Variants is the parameter sweep; each produces one result row.
	Variants []Variant
	// Prepare, if non-nil, registers device-preparation threads (aging) and
	// returns their handles; measurement starts only after they finish.
	Prepare func(s *core.Stack) []*workload.Handle
	// Workload registers the measured threads. Each must depend on after
	// (nil when there is no preparation phase).
	Workload func(s *core.Stack, after *workload.Handle)
	// SeriesBucket, when positive, records a completion time series with
	// this bucket width per variant; Timelines renders them ("graphs
	// showing how metrics evolved across time").
	SeriesBucket sim.Duration
}

// Row is one variant's outcome.
type Row struct {
	Label  string
	X      float64
	Report core.Report
	// Timeline is the completion-rate sparkline over the measured window
	// (empty unless the definition set SeriesBucket).
	Timeline string
}

// Results collects every variant's outcome for rendering.
type Results struct {
	Name string
	Rows []Row
}

// Run executes the experiment: one independent simulation per variant,
// fanned out over up to GOMAXPROCS workers. Every variant stack is fully
// isolated (own engine, own RNG), so the result rows are identical — bit for
// bit — to a sequential run; only wall-clock time changes.
func Run(def Definition) (Results, error) { return RunWorkers(def, 0) }

// RunWorkers runs the experiment on at most workers goroutines; workers <= 0
// means GOMAXPROCS and workers == 1 degenerates to the plain sequential
// loop. Variant order in the results is always definition order.
func RunWorkers(def Definition, workers int) (Results, error) {
	res := Results{Name: def.Name}
	if len(def.Variants) == 0 {
		return res, fmt.Errorf("experiment %q: no variants", def.Name)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(def.Variants) {
		workers = len(def.Variants)
	}
	rows := make([]Row, len(def.Variants))
	errs := make([]error, len(def.Variants))
	if workers == 1 {
		for i, v := range def.Variants {
			rows[i], errs[i] = runVariant(def, v)
			if errs[i] != nil {
				break // sequential semantics: stop at the first failure
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(def.Variants) {
						return
					}
					rows[i], errs[i] = runVariant(def, def.Variants[i])
				}
			}()
		}
		wg.Wait()
	}
	// Assemble in definition order, reporting the earliest failure exactly as
	// the sequential loop would: rows before it, nothing after.
	for i := range def.Variants {
		if errs[i] != nil {
			return res, errs[i]
		}
		res.Rows = append(res.Rows, rows[i])
	}
	return res, nil
}

// runVariant builds and drives one variant's stack to completion.
func runVariant(def Definition, v Variant) (Row, error) {
	cfg := def.Base()
	if def.SeriesBucket > 0 {
		cfg.SeriesBucket = def.SeriesBucket
	}
	if v.Mutate != nil {
		v.Mutate(&cfg)
	}
	stack, err := core.New(cfg)
	if err != nil {
		return Row{}, fmt.Errorf("experiment %q variant %q: %w", def.Name, v.Label, err)
	}
	prepare := def.Prepare
	if v.Prepare != nil {
		prepare = v.Prepare
	}
	var barrier *workload.Handle
	if prepare != nil {
		prep := prepare(stack)
		barrier = stack.AddBarrier(prep...)
	}
	wload := def.Workload
	if v.Workload != nil {
		wload = v.Workload
	}
	wload(stack, barrier)
	stack.Run()
	if !stack.Runner.Done() {
		return Row{}, fmt.Errorf("experiment %q variant %q: %d threads never finished (workload deadlock)",
			def.Name, v.Label, stack.Runner.Active())
	}
	row := Row{Label: v.Label, X: v.X, Report: stack.Report()}
	if ts := stack.Stats.Series(); ts != nil {
		row.Timeline = ts.Sparkline()
	}
	return row, nil
}

// Metric extracts one scalar from a report, for charts and CSV columns.
type Metric struct {
	Name string
	F    func(core.Report) float64
}

// Standard metrics experiments chart.
var (
	MetricThroughput = Metric{"throughput_iops", func(r core.Report) float64 { return r.Throughput }}
	MetricReadMean   = Metric{"read_mean_us", func(r core.Report) float64 { return r.ReadLatency.Mean.Micros() }}
	MetricWriteMean  = Metric{"write_mean_us", func(r core.Report) float64 { return r.WriteLatency.Mean.Micros() }}
	MetricReadP99    = Metric{"read_p99_us", func(r core.Report) float64 { return r.ReadLatency.P99.Micros() }}
	MetricWriteP99   = Metric{"write_p99_us", func(r core.Report) float64 { return r.WriteLatency.P99.Micros() }}
	MetricReadStd    = Metric{"read_std_us", func(r core.Report) float64 { return r.ReadLatency.Std.Micros() }}
	MetricWriteStd   = Metric{"write_std_us", func(r core.Report) float64 { return r.WriteLatency.Std.Micros() }}
	MetricWA         = Metric{"write_amp", func(r core.Report) float64 { return r.WriteAmplification }}
	MetricGCPages    = Metric{"gc_pages", func(r core.Report) float64 { return float64(r.GCMigratedPages) }}
	MetricWearSpread = Metric{"wear_spread", func(r core.Report) float64 { return float64(r.Wear.Spread()) }}
)
