// Package experiment implements EagleTree's experimental suite API: an
// experiment template takes a parameter or policy, a strategy for varying it
// (the variant list), and a workload definition; it runs one full simulation
// per variant and collects comparable metric rows — tables, CSV and text
// charts standing in for the GUI's graphs.
//
// Device preparation is first-class: when a definition has a Prepare hook,
// measured threads automatically depend on a barrier behind the preparation
// threads, and statistics cover only the measured window (§2.3's repeatable
// methodology).
package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"eagletree/internal/core"
	"eagletree/internal/sim"
	"eagletree/internal/snapshot"
	"eagletree/internal/workload"
)

// Variant is one setting of the varied parameter or policy.
type Variant struct {
	// Label names the variant in tables ("channels=4", "policy=fifo").
	Label string
	// X is the variant's numeric value where one exists (sweep position);
	// charts use it as the x coordinate.
	X float64
	// Mutate applies the variant to the base configuration.
	Mutate func(*core.Config)
	// Prep, when non-nil, overrides the definition's Prep for this variant —
	// used when preparation itself is what varies (fresh vs aged device,
	// experiment E11). Point it at a zero PrepareSpec to disable preparation.
	Prep *PrepareSpec
	// Prepare, when non-nil, overrides the definition's preparation with a
	// custom hook for this variant. Custom hooks run in the legacy in-stack
	// barrier flow and are never snapshot-cached.
	Prepare func(s *core.Stack) []*workload.Handle
	// Workload, when non-nil, overrides the definition's Workload for this
	// variant — used when the workload itself carries the varied behavior
	// (oracle temperature tags, experiment E8).
	Workload func(s *core.Stack, after *workload.Handle)
}

// Definition is an experiment template.
type Definition struct {
	// Name identifies the experiment in reports.
	Name string
	// Base returns the configuration shared by all variants.
	Base func() core.Config
	// Variants is the parameter sweep; each produces one result row.
	Variants []Variant
	// Prep declaratively describes device preparation (sequential fill plus
	// random aging). Declared preparation runs in the prepare-once-restore-
	// many flow: the runner prepares each distinct (preparation config, spec,
	// seed) combination once, snapshots the drained stack, and restores the
	// state per variant instead of re-aging the device.
	Prep PrepareSpec
	// Prepare is the custom-hook alternative to Prep: it registers arbitrary
	// device-preparation threads (run before the measurement barrier) and
	// returns their handles. Custom hooks run per variant in the legacy
	// in-stack flow with no snapshot sharing; prefer Prep. Ignored when Prep
	// is set.
	Prepare func(s *core.Stack) []*workload.Handle
	// Workload registers the measured threads. Each must depend on after
	// (nil when there is no preparation phase).
	Workload func(s *core.Stack, after *workload.Handle)
	// SeriesBucket, when positive, records a completion time series with
	// this bucket width per variant; Timelines renders them ("graphs
	// showing how metrics evolved across time").
	SeriesBucket sim.Duration
}

// Row is one variant's outcome.
type Row struct {
	Label  string
	X      float64
	Report core.Report
	// Timeline is the completion-rate sparkline over the measured window
	// (empty unless the definition set SeriesBucket).
	Timeline string
}

// Results collects every variant's outcome for rendering.
type Results struct {
	Name string
	Rows []Row
}

// Options tunes how an experiment executes; the zero value is the default:
// GOMAXPROCS workers and a private in-memory snapshot cache, so declared
// preparation runs once per distinct state within the call.
type Options struct {
	// Workers bounds variant parallelism; <= 0 means GOMAXPROCS, 1 is the
	// plain sequential loop.
	Workers int
	// Cache, when non-nil, supplies a shared (possibly disk-backed) snapshot
	// cache — repeated sweeps then skip preparation entirely.
	Cache *StateCache
	// NoPrepareCache disables snapshot reuse: every variant prepares its own
	// device state from scratch. This is the fresh baseline the determinism
	// tests and the CI state-cache check compare restored runs against.
	NoPrepareCache bool
}

// Run executes the experiment: one independent simulation per variant,
// fanned out over up to GOMAXPROCS workers. Every variant stack is fully
// isolated (own engine, own RNG), so the result rows are identical — bit for
// bit — to a sequential run; only wall-clock time changes.
func Run(def Definition) (Results, error) { return RunOpts(def, Options{}) }

// RunWorkers runs the experiment on at most workers goroutines. Variant
// order in the results is always definition order.
func RunWorkers(def Definition, workers int) (Results, error) {
	return RunOpts(def, Options{Workers: workers})
}

// RunOpts runs the experiment with explicit execution options.
func RunOpts(def Definition, opts Options) (Results, error) {
	res := Results{Name: def.Name}
	if len(def.Variants) == 0 {
		return res, fmt.Errorf("experiment %q: no variants", def.Name)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(def.Variants) {
		workers = len(def.Variants)
	}
	cache := opts.Cache
	if opts.NoPrepareCache {
		cache = nil
	} else if cache == nil {
		cache = NewStateCache("")
	}
	rows := make([]Row, len(def.Variants))
	errs := make([]error, len(def.Variants))
	if workers == 1 {
		for i, v := range def.Variants {
			rows[i], errs[i] = runVariant(def, v, cache)
			if errs[i] != nil {
				break // sequential semantics: stop at the first failure
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(def.Variants) {
						return
					}
					rows[i], errs[i] = runVariant(def, def.Variants[i], cache)
				}
			}()
		}
		wg.Wait()
	}
	// Assemble in definition order, reporting the earliest failure exactly as
	// the sequential loop would: rows before it, nothing after.
	for i := range def.Variants {
		if errs[i] != nil {
			return res, errs[i]
		}
		res.Rows = append(res.Rows, rows[i])
	}
	return res, nil
}

// runVariant builds and drives one variant's stack to completion.
//
// Variants with declared preparation run in two phases: the preparation
// workload runs to a full drain on a stack built from the normalized
// preparation config (shared across variants and cached as an encoded
// snapshot), then the measured workload runs on a stack restored from that
// snapshot under the variant's full config. Restoration carries the engine
// clock, RNG lineage and thread/request id sequences, so a cache hit and a
// fresh preparation produce bit-identical rows.
func runVariant(def Definition, v Variant, cache *StateCache) (Row, error) {
	cfg := def.Base()
	if def.SeriesBucket > 0 {
		cfg.SeriesBucket = def.SeriesBucket
	}
	if v.Mutate != nil {
		v.Mutate(&cfg)
	}
	spec, custom := def.prepFor(v)
	if custom != nil {
		return runVariantLegacy(def, v, cfg, custom)
	}
	var stack *core.Stack
	if spec.None() {
		st, err := core.New(cfg)
		if err != nil {
			return Row{}, fmt.Errorf("experiment %q variant %q: %w", def.Name, v.Label, err)
		}
		stack = st
	} else {
		data, err := preparedState(def, cfg, spec, cache)
		if err != nil {
			return Row{}, fmt.Errorf("experiment %q variant %q: %w", def.Name, v.Label, err)
		}
		// Decode per variant: restoration must never mutate the cached state.
		ds, err := snapshot.Decode(data)
		if err != nil {
			return Row{}, fmt.Errorf("experiment %q variant %q: %w", def.Name, v.Label, err)
		}
		st, err := core.Restore(cfg, ds)
		if err != nil {
			return Row{}, fmt.Errorf("experiment %q variant %q: %w", def.Name, v.Label, err)
		}
		st.MarkMeasurement()
		stack = st
	}
	return finishVariant(def, v, stack)
}

// prepFor resolves the variant's effective preparation: a declarative spec,
// or a custom hook (legacy flow), never both.
func (def Definition) prepFor(v Variant) (PrepareSpec, func(*core.Stack) []*workload.Handle) {
	if v.Prep != nil {
		return *v.Prep, nil
	}
	if v.Prepare != nil {
		return PrepareSpec{}, v.Prepare
	}
	if !def.Prep.None() {
		return def.Prep, nil
	}
	return PrepareSpec{}, def.Prepare
}

// preparedState returns the encoded snapshot of the prepared device for the
// variant's configuration, building it (once per distinct key when a cache
// is present) by running the preparation workload to a full drain.
func preparedState(def Definition, cfg core.Config, spec PrepareSpec, cache *StateCache) ([]byte, error) {
	pcfg := prepConfig(cfg, def.Base())
	build := func() ([]byte, error) {
		st, err := core.New(pcfg)
		if err != nil {
			return nil, err
		}
		spec.register(st)
		st.Run()
		if !st.Runner.Done() {
			return nil, fmt.Errorf("preparation deadlocked with %d threads active", st.Runner.Active())
		}
		ds, err := st.Snapshot()
		if err != nil {
			return nil, err
		}
		return snapshot.Encode(ds), nil
	}
	if cache == nil {
		return build()
	}
	key, err := prepKey(pcfg, spec)
	if err != nil {
		return nil, err
	}
	return cache.Get(key, build)
}

// runVariantLegacy drives a custom-Prepare variant the pre-snapshot way:
// preparation and measurement share one stack, separated by a measurement
// barrier thread.
func runVariantLegacy(def Definition, v Variant, cfg core.Config, prepare func(*core.Stack) []*workload.Handle) (Row, error) {
	stack, err := core.New(cfg)
	if err != nil {
		return Row{}, fmt.Errorf("experiment %q variant %q: %w", def.Name, v.Label, err)
	}
	prep := prepare(stack)
	barrier := stack.AddBarrier(prep...)
	wload := def.Workload
	if v.Workload != nil {
		wload = v.Workload
	}
	wload(stack, barrier)
	stack.Run()
	if !stack.Runner.Done() {
		return Row{}, fmt.Errorf("experiment %q variant %q: %d threads never finished (workload deadlock)",
			def.Name, v.Label, stack.Runner.Active())
	}
	return rowFrom(v, stack)
}

// finishVariant registers the measured workload on a ready stack (fresh or
// restored) and drives it to completion.
func finishVariant(def Definition, v Variant, stack *core.Stack) (Row, error) {
	wload := def.Workload
	if v.Workload != nil {
		wload = v.Workload
	}
	wload(stack, nil)
	stack.Run()
	if !stack.Runner.Done() {
		return Row{}, fmt.Errorf("experiment %q variant %q: %d threads never finished (workload deadlock)",
			def.Name, v.Label, stack.Runner.Active())
	}
	return rowFrom(v, stack)
}

func rowFrom(v Variant, stack *core.Stack) (Row, error) {
	row := Row{Label: v.Label, X: v.X, Report: stack.Report()}
	if ts := stack.Stats.Series(); ts != nil {
		row.Timeline = ts.Sparkline()
	}
	return row, nil
}

// Metric extracts one scalar from a report, for charts and CSV columns.
type Metric struct {
	Name string
	F    func(core.Report) float64
}

// Standard metrics experiments chart.
var (
	MetricThroughput = Metric{"throughput_iops", func(r core.Report) float64 { return r.Throughput }}
	MetricReadMean   = Metric{"read_mean_us", func(r core.Report) float64 { return r.ReadLatency.Mean.Micros() }}
	MetricWriteMean  = Metric{"write_mean_us", func(r core.Report) float64 { return r.WriteLatency.Mean.Micros() }}
	MetricReadP99    = Metric{"read_p99_us", func(r core.Report) float64 { return r.ReadLatency.P99.Micros() }}
	MetricWriteP99   = Metric{"write_p99_us", func(r core.Report) float64 { return r.WriteLatency.P99.Micros() }}
	MetricReadStd    = Metric{"read_std_us", func(r core.Report) float64 { return r.ReadLatency.Std.Micros() }}
	MetricWriteStd   = Metric{"write_std_us", func(r core.Report) float64 { return r.WriteLatency.Std.Micros() }}
	MetricWA         = Metric{"write_amp", func(r core.Report) float64 { return r.WriteAmplification }}
	MetricGCPages    = Metric{"gc_pages", func(r core.Report) float64 { return float64(r.GCMigratedPages) }}
	MetricWearSpread = Metric{"wear_spread", func(r core.Report) float64 { return float64(r.Wear.Spread()) }}
)
