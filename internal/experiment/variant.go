package experiment

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrVariantIndex reports a RunVariant lease index outside the definition's
// grid — coordinator and worker disagree about the document.
var ErrVariantIndex = errors.New("experiment: variant index out of range")

// RunVariant executes exactly one variant of the definition — the
// lease-granular entry a distributed sweep hands to worker processes. The
// variant gets a fully isolated stack built from the definition's base
// configuration, so its Row is bit-identical to the same variant's row inside
// a sequential Run; a coordinator merging rows by index therefore reproduces
// the sequential Results exactly, whatever the leases' execution order.
//
// The runner's cache, observer and NoPrepareCache options apply as in Run:
// declared preparation is fetched from (or built into) the cache, and the
// variant's lifecycle events — one EventVariantQueued, cache provenance, one
// terminal variant event — stream to the observer. No EventExperimentDone is
// emitted: the sweep, not the lease, owns the terminal event.
//
// A canceled variant returns a *CanceledError wrapping ErrCanceled; a
// panicking variant returns its *VariantError, exactly as Run would have
// recorded it.
func (r *Runner) RunVariant(ctx context.Context, def Definition, index int) (Row, error) {
	if index < 0 || index >= len(def.Variants) {
		return Row{}, fmt.Errorf("experiment %q: %w: %d not in [0,%d)",
			def.Name, ErrVariantIndex, index, len(def.Variants))
	}
	cache := r.opts.Cache
	if r.opts.NoPrepareCache {
		cache = nil
	} else if cache == nil {
		cache = NewStateCache("")
	}
	rs := &runState{
		def:      def,
		cache:    cache,
		observer: r.opts.Observer,
		started:  time.Now(), //lint:wallclock run wall-time telemetry, never canonical
		rows:     make([]Row, len(def.Variants)),
		errs:     make([]error, len(def.Variants)),
		canceled: make([]bool, len(def.Variants)),
	}
	v := def.Variants[index]
	rs.emit(Event{Kind: EventVariantQueued, Experiment: def.Name,
		Variant: v.Label, Index: index, Variants: len(def.Variants)})
	if !rs.runOne(ctx, index, v) {
		cause := context.Cause(ctx)
		if cause == nil {
			cause = context.Canceled
		}
		return Row{}, &CanceledError{Experiment: def.Name, Completed: 0,
			Total: len(def.Variants), Cause: cause}
	}
	return rs.rows[index], rs.errs[index]
}
