package experiment

import (
	"fmt"

	"eagletree/internal/core"
	"eagletree/internal/spec"
	"eagletree/internal/workload"
)

// PrepareSpec declares device preparation — the uFLIP-style sequential fill
// and random aging nearly every experiment pays before measuring. Declaring
// it (instead of hiding it in a closure) is what lets the runner key a
// snapshot cache on it: every variant sharing a preparation-relevant
// configuration restores the same prepared state instead of re-aging the
// device, which at full scale dominates sweep wall clock.
type PrepareSpec struct {
	// FillDepth is the IO depth of the sequential fill pass over the whole
	// logical space. Zero disables preparation entirely.
	FillDepth int
	// AgePasses is how many random-overwrite passes over the logical space
	// follow the fill (0 = fill only).
	AgePasses int64
	// AgeDepth is the IO depth of the aging passes; zero means FillDepth.
	AgeDepth int
}

// None reports whether the spec declares no preparation at all.
func (p PrepareSpec) None() bool { return p.FillDepth <= 0 }

// key identifies the spec in snapshot-cache keys.
func (p PrepareSpec) key() string {
	if p.None() {
		return "none"
	}
	return fmt.Sprintf("fill(d=%d)+age(passes=%d,d=%d)", p.FillDepth, p.AgePasses, p.ageDepth())
}

func (p PrepareSpec) ageDepth() int {
	if p.AgeDepth > 0 {
		return p.AgeDepth
	}
	return p.FillDepth
}

// register adds the preparation threads to a stack and returns the handle
// of the last one (the thread a measurement barrier should depend on).
func (p PrepareSpec) register(s *core.Stack) *workload.Handle {
	n := int64(s.LogicalPages())
	seq := s.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: p.FillDepth})
	if p.AgePasses > 0 {
		return s.Add(&workload.RandomWriter{From: 0, Space: n, Count: p.AgePasses * n, Depth: p.ageDepth()}, seq)
	}
	return seq
}

// prepConfig derives the configuration preparation runs under from the
// variant's full configuration: every structural and data-path knob is kept
// (geometry, timings, mapping scheme, overprovisioning, GC victim policy,
// wear leveling, detector, write buffer, bad blocks — they shape the aged
// state), while measurement-only knobs are pinned to the definition's base so
// variants sweeping them share one prepared state. Scheduling policy, write
// allocator, GC greediness, open-interface mode and the OS layer are
// measurement knobs: preparing under the base values and restoring under the
// variant's is exactly the "identical starting state, one variable changed"
// methodology §2.3 asks for.
func prepConfig(cfg, base core.Config) core.Config {
	p := cfg
	p.Controller.Policy = base.Controller.Policy
	p.Controller.Alloc = base.Controller.Alloc
	p.Controller.GCGreediness = base.Controller.GCGreediness
	p.Controller.OpenInterface = base.Controller.OpenInterface
	p.OS = base.OS
	p.OS.Trace = nil
	p.OS.Capture = nil
	p.LockBus = base.LockBus
	p.SeriesBucket = 0
	p.TraceCap = 0
	return p
}

// prepKey builds the snapshot-cache key for one (preparation config, spec,
// seed) combination. The configuration is rendered through the component
// registry's canonical encoding (spec.CanonKey): deterministic across
// processes, covering every knob of every registered component — including
// ones configured through unexported state, which the old reflective printer
// silently collapsed. A configuration holding an unregistered component
// type is an error, never a colliding key; register the component (or run
// with Options.NoPrepareCache) to proceed.
func prepKey(pcfg core.Config, spc PrepareSpec) (string, error) {
	canon, err := spec.CanonKey(pcfg)
	if err != nil {
		return "", fmt.Errorf("experiment: snapshot cache key (register the component with spec.Register, or disable the prepare cache): %w", err)
	}
	return "prep2|" + spc.key() + "|" + canon, nil
}
