package experiment

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"eagletree/internal/core"
	"eagletree/internal/hotcold"
	"eagletree/internal/workload"
)

// PrepareSpec declares device preparation — the uFLIP-style sequential fill
// and random aging nearly every experiment pays before measuring. Declaring
// it (instead of hiding it in a closure) is what lets the runner key a
// snapshot cache on it: every variant sharing a preparation-relevant
// configuration restores the same prepared state instead of re-aging the
// device, which at full scale dominates sweep wall clock.
type PrepareSpec struct {
	// FillDepth is the IO depth of the sequential fill pass over the whole
	// logical space. Zero disables preparation entirely.
	FillDepth int
	// AgePasses is how many random-overwrite passes over the logical space
	// follow the fill (0 = fill only).
	AgePasses int64
	// AgeDepth is the IO depth of the aging passes; zero means FillDepth.
	AgeDepth int
}

// None reports whether the spec declares no preparation at all.
func (p PrepareSpec) None() bool { return p.FillDepth <= 0 }

// key identifies the spec in snapshot-cache keys.
func (p PrepareSpec) key() string {
	if p.None() {
		return "none"
	}
	return fmt.Sprintf("fill(d=%d)+age(passes=%d,d=%d)", p.FillDepth, p.AgePasses, p.ageDepth())
}

func (p PrepareSpec) ageDepth() int {
	if p.AgeDepth > 0 {
		return p.AgeDepth
	}
	return p.FillDepth
}

// register adds the preparation threads to a stack.
func (p PrepareSpec) register(s *core.Stack) {
	n := int64(s.LogicalPages())
	seq := s.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: p.FillDepth})
	if p.AgePasses > 0 {
		s.Add(&workload.RandomWriter{From: 0, Space: n, Count: p.AgePasses * n, Depth: p.ageDepth()}, seq)
	}
}

// prepConfig derives the configuration preparation runs under from the
// variant's full configuration: every structural and data-path knob is kept
// (geometry, timings, mapping scheme, overprovisioning, GC victim policy,
// wear leveling, detector, write buffer, bad blocks — they shape the aged
// state), while measurement-only knobs are pinned to the definition's base so
// variants sweeping them share one prepared state. Scheduling policy, write
// allocator, GC greediness, open-interface mode and the OS layer are
// measurement knobs: preparing under the base values and restoring under the
// variant's is exactly the "identical starting state, one variable changed"
// methodology §2.3 asks for.
func prepConfig(cfg, base core.Config) core.Config {
	p := cfg
	p.Controller.Policy = base.Controller.Policy
	p.Controller.Alloc = base.Controller.Alloc
	p.Controller.GCGreediness = base.Controller.GCGreediness
	p.Controller.OpenInterface = base.Controller.OpenInterface
	p.OS = base.OS
	p.OS.Trace = nil
	p.OS.Capture = nil
	p.LockBus = base.LockBus
	p.SeriesBucket = 0
	p.TraceCap = 0
	return p
}

// prepKey builds the snapshot-cache key for one (preparation config, spec,
// seed) combination. The configuration is rendered by a canonical reflective
// printer: deterministic across processes (no pointer addresses), covering
// every exported field so two configurations that could age differently never
// collide.
func prepKey(pcfg core.Config, spec PrepareSpec) string {
	var b strings.Builder
	b.WriteString("prep1|")
	b.WriteString(spec.key())
	fmt.Fprintf(&b, "|seed=%d|", pcfg.Seed)
	writeCanon(&b, reflect.ValueOf(pcfg))
	return b.String()
}

// writeCanon renders a value deterministically: exported fields only, nested
// pointers and interfaces followed by dynamic type (never printed as
// addresses), functions collapsed to a marker. Components whose behavior is
// configured through unexported state are special-cased.
func writeCanon(b *strings.Builder, v reflect.Value) {
	switch v.Kind() {
	case reflect.Invalid:
		b.WriteString("nil")
	case reflect.Ptr, reflect.Interface:
		if v.IsNil() {
			b.WriteString("nil")
			return
		}
		if m, ok := v.Interface().(*hotcold.MBF); ok {
			fmt.Fprintf(b, "mbf%+v", m.Config())
			return
		}
		if v.Kind() == reflect.Interface {
			b.WriteString(v.Elem().Type().String())
			b.WriteString(":")
		}
		writeCanon(b, v.Elem())
	case reflect.Struct:
		t := v.Type()
		b.WriteString(t.String())
		b.WriteString("{")
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			b.WriteString(t.Field(i).Name)
			b.WriteString(":")
			writeCanon(b, v.Field(i))
			b.WriteString(",")
		}
		b.WriteString("}")
	case reflect.Slice, reflect.Array:
		b.WriteString("[")
		for i := 0; i < v.Len(); i++ {
			writeCanon(b, v.Index(i))
			b.WriteString(",")
		}
		b.WriteString("]")
	case reflect.Map:
		keys := make([]string, 0, v.Len())
		elems := make(map[string]reflect.Value, v.Len())
		for _, k := range v.MapKeys() {
			ks := fmt.Sprintf("%v", k)
			keys = append(keys, ks)
			elems[ks] = v.MapIndex(k)
		}
		sort.Strings(keys)
		b.WriteString("map{")
		for _, k := range keys {
			b.WriteString(k)
			b.WriteString(":")
			writeCanon(b, elems[k])
			b.WriteString(",")
		}
		b.WriteString("}")
	case reflect.Func, reflect.Chan, reflect.UnsafePointer:
		b.WriteString("fn")
	default:
		fmt.Fprintf(b, "%v", v)
	}
}
