package experiment

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"eagletree/internal/controller"
	"eagletree/internal/core"
	"eagletree/internal/fault"
)

// TestE14FaultySweepDeterministic: the reliability experiment — every variant
// injecting faults and relocating around retired blocks — produces
// bit-identical rows under the sequential and the parallel runner, with the
// snapshot cache on and off. This is the test the CI race step runs with -race:
// fault injection sits on the controller's hot path, so any shared mutable
// state between concurrently sweeping variants would surface here.
func TestE14FaultySweepDeterministic(t *testing.T) {
	def := E14Reliability(Small)
	want, err := New(Options{Workers: 1}).Run(context.Background(), def)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Workers: 4},
		{Workers: 4, NoPrepareCache: true},
	} {
		got, err := New(opts).Run(context.Background(), def)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("opts %+v: faulty sweep results differ from the sequential reference", opts)
		}
	}

	// The sweep must actually exercise the degradation paths: the fault-free
	// baseline reports zero reliability activity, the faulted variants
	// report injections and a shrunken effective over-provisioning.
	base := want.Rows[0].Report
	if base.Retries+base.Relocations+base.EraseFailures+base.GrownBadBlocks != 0 {
		t.Fatalf("fault=none variant reports reliability activity: %+v", base)
	}
	for _, row := range want.Rows[1:] {
		r := row.Report
		if r.Retries == 0 || r.GrownBadBlocks == 0 {
			t.Fatalf("variant %q reports no injections (retries=%d grown=%d)", row.Label, r.Retries, r.GrownBadBlocks)
		}
		if r.EffectiveOP >= base.EffectiveOP {
			t.Fatalf("variant %q effective OP %.3f did not shrink from baseline %.3f",
				row.Label, r.EffectiveOP, base.EffectiveOP)
		}
	}
}

// TestWornOutDeviceSurfacesTypedError: a fault rate brutal enough to exhaust
// the free pool must end the run with the controller's typed ErrDeviceWornOut
// — never a hang and never only the generic workload-deadlock message.
func TestWornOutDeviceSurfacesTypedError(t *testing.T) {
	def := E14Reliability(Small)
	def.Variants = []Variant{{
		Label: "wornout",
		Mutate: func(c *core.Config) {
			// 2% of erases fail and every program failure grows the block bad:
			// retirement outruns the over-provisioning slack within the sweep.
			c.Controller.Fault = fault.NewRandom(0.002, 0.02, 1, 11)
		},
	}}
	_, err := New(Options{Workers: 1}).Run(context.Background(), def)
	if err == nil {
		t.Fatal("worn-out run returned no error")
	}
	if !errors.Is(err, controller.ErrDeviceWornOut) {
		t.Fatalf("err = %v, want to wrap controller.ErrDeviceWornOut", err)
	}
}
