package experiment

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"eagletree/internal/core"
	"eagletree/internal/workload"
)

// collectObserver records every event, concurrency-safely (the runner
// serializes OnEvent, but tests also read after Run returns).
type collectObserver struct {
	mu     sync.Mutex
	events []Event
}

func (c *collectObserver) OnEvent(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
}

func (c *collectObserver) all() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// TestRunnerMatchesRunWorkers: the Runner under a background context must
// reproduce the deprecated wrappers bit for bit — sequential and parallel,
// across the whole E1–E13 suite. One shared snapshot cache keeps the three
// passes from re-aging devices.
func TestRunnerMatchesRunWorkers(t *testing.T) {
	cache := NewStateCache("")
	for _, def := range Suite(Small) {
		def := def
		t.Run(def.Name, func(t *testing.T) {
			want, err := RunWorkers(def, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				got, err := New(Options{Workers: workers, Cache: cache}).Run(context.Background(), def)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%d-worker Runner results differ from RunWorkers(def, 1)", workers)
				}
			}
		})
	}
}

// TestRunnerEventCoverage: an uncancelled run emits exactly one
// VariantQueued and one VariantDone per variant, prepare provenance for
// every declared-preparation variant, and one terminal ExperimentDone —
// under both the sequential and the parallel runner.
func TestRunnerEventCoverage(t *testing.T) {
	def := E3GCGreediness(Small) // declared prep: first variant misses, rest hit
	for _, workers := range []int{1, 3} {
		obs := &collectObserver{}
		if _, err := New(Options{Workers: workers, Observer: obs}).Run(context.Background(), def); err != nil {
			t.Fatal(err)
		}
		events := obs.all()
		queued := make(map[int]int)
		done := make(map[int]int)
		prepared := make(map[int]int)
		var misses, terminal int
		for _, ev := range events {
			switch ev.Kind {
			case EventVariantQueued:
				queued[ev.Index]++
			case EventVariantDone:
				done[ev.Index]++
				if ev.Err != nil {
					t.Fatalf("variant %d reported error: %v", ev.Index, ev.Err)
				}
				if ev.Row == nil || ev.Row.Label != def.Variants[ev.Index].Label {
					t.Fatalf("variant %d done event carries wrong row: %+v", ev.Index, ev.Row)
				}
			case EventVariantCanceled:
				t.Fatalf("uncancelled run emitted cancellation for variant %d", ev.Index)
			case EventPrepareHit, EventPrepareMiss:
				prepared[ev.Index]++
				if ev.CacheKey == "" {
					t.Fatalf("prepare event without cache provenance: %+v", ev)
				}
				if ev.Kind == EventPrepareMiss {
					misses++
				}
			case EventExperimentDone:
				terminal++
				if ev.Err != nil {
					t.Fatalf("terminal event reported error: %v", ev.Err)
				}
			}
		}
		for i := range def.Variants {
			if queued[i] != 1 || done[i] != 1 || prepared[i] != 1 {
				t.Fatalf("workers=%d variant %d: queued %d, done %d, prepared %d; want 1 each",
					workers, i, queued[i], done[i], prepared[i])
			}
		}
		if misses != 1 {
			t.Fatalf("workers=%d: %d prepare misses, want exactly 1 (variants share one aged state)", workers, misses)
		}
		if terminal != 1 {
			t.Fatalf("workers=%d: %d terminal events, want 1", workers, terminal)
		}
		if events[len(events)-1].Kind != EventExperimentDone {
			t.Fatalf("workers=%d: last event is %v, want experiment-done", workers, events[len(events)-1].Kind)
		}
	}
}

// TestRunnerCancelPrefixDeterministic cancels a sweep at a fixed event — the
// k-th variant completion — and asserts the partial Results are exactly the
// uncancelled run's leading rows, bit for bit, for both the sequential and
// the parallel runner, and that the error is the typed ErrCanceled.
func TestRunnerCancelPrefixDeterministic(t *testing.T) {
	def := E3GCGreediness(Small)
	full, err := RunWorkers(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2} {
		ctx, cancel := context.WithCancel(context.Background())
		var doneSeen int
		obs := ObserverFunc(func(ev Event) {
			if ev.Kind == EventVariantDone {
				doneSeen++
				if doneSeen == 2 {
					cancel()
				}
			}
		})
		res, err := New(Options{Workers: workers, Observer: obs}).Run(ctx, def)
		cancel()
		if err == nil {
			t.Fatalf("workers=%d: canceled run returned no error", workers)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: error %v is not ErrCanceled", workers, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: error %v does not wrap context.Canceled", workers, err)
		}
		var ce *CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: error %T is not *CanceledError", workers, err)
		}
		if ce.Completed != len(res.Rows) || ce.Total != len(def.Variants) {
			t.Fatalf("workers=%d: CanceledError says %d/%d, results hold %d rows",
				workers, ce.Completed, ce.Total, len(res.Rows))
		}
		if len(res.Rows) >= len(full.Rows) {
			t.Fatalf("workers=%d: cancellation completed all %d variants", workers, len(res.Rows))
		}
		if !reflect.DeepEqual(res.Rows, full.Rows[:len(res.Rows)]) {
			t.Fatalf("workers=%d: partial rows differ from the uncancelled prefix:\npartial: %+v\nfull:    %+v",
				workers, res.Rows, full.Rows[:len(res.Rows)])
		}
	}
}

// TestRunnerCancelEventCoverage: a canceled run still accounts for every
// variant exactly once — each gets VariantQueued plus either VariantDone or
// VariantCanceled — and the terminal event carries the cancellation error.
func TestRunnerCancelEventCoverage(t *testing.T) {
	def := E3GCGreediness(Small)
	for _, workers := range []int{1, 2} {
		ctx, cancel := context.WithCancel(context.Background())
		obs := &collectObserver{}
		firstDone := false
		chained := ObserverFunc(func(ev Event) {
			obs.OnEvent(ev)
			if ev.Kind == EventVariantDone && !firstDone {
				firstDone = true
				cancel()
			}
		})
		_, err := New(Options{Workers: workers, Observer: chained}).Run(ctx, def)
		cancel()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
		queued := make(map[int]int)
		terminalPerVariant := make(map[int]int)
		var experimentDone int
		var sawCanceled bool
		for _, ev := range obs.all() {
			switch ev.Kind {
			case EventVariantQueued:
				queued[ev.Index]++
			case EventVariantDone:
				terminalPerVariant[ev.Index]++
			case EventVariantCanceled:
				terminalPerVariant[ev.Index]++
				sawCanceled = true
			case EventExperimentDone:
				experimentDone++
				if !errors.Is(ev.Err, ErrCanceled) {
					t.Fatalf("workers=%d: terminal event err = %v, want ErrCanceled", workers, ev.Err)
				}
			}
		}
		for i := range def.Variants {
			if queued[i] != 1 {
				t.Fatalf("workers=%d variant %d queued %d times", workers, i, queued[i])
			}
			if terminalPerVariant[i] != 1 {
				t.Fatalf("workers=%d variant %d got %d terminal events, want exactly 1",
					workers, i, terminalPerVariant[i])
			}
		}
		if !sawCanceled {
			t.Fatalf("workers=%d: cancellation produced no variant-canceled events", workers)
		}
		if experimentDone != 1 {
			t.Fatalf("workers=%d: %d experiment-done events", workers, experimentDone)
		}
	}
}

// TestRunnerPanicIsolation: a variant whose preparation hook panics must not
// tear down the sweep. The panic becomes a typed *VariantError with the
// recovered value and a stack trace, the variant emits EventVariantFailed,
// and — under the sequential runner just like the parallel one — the
// remaining variants still run to completion.
func TestRunnerPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 2} {
		def := E3GCGreediness(Small)
		def.Variants = append([]Variant(nil), def.Variants[:3]...)
		def.Variants[1].Prepare = func(s *core.Stack) []*workload.Handle {
			panic("prepare exploded")
		}
		obs := &collectObserver{}
		res, err := New(Options{Workers: workers, Observer: obs}).Run(context.Background(), def)
		var ve *VariantError
		if !errors.As(err, &ve) {
			t.Fatalf("workers=%d: err = %v (%T), want *VariantError", workers, err, err)
		}
		if ve.Index != 1 || ve.Variant != def.Variants[1].Label || ve.Experiment != def.Name {
			t.Fatalf("workers=%d: VariantError identifies %q/%q #%d", workers, ve.Experiment, ve.Variant, ve.Index)
		}
		if ve.Panic != "prepare exploded" || len(ve.Stack) == 0 {
			t.Fatalf("workers=%d: VariantError carries panic %v with %d stack bytes", workers, ve.Panic, len(ve.Stack))
		}
		if len(res.Rows) != 1 {
			t.Fatalf("workers=%d: %d result rows, want the 1-row prefix before the crash", workers, len(res.Rows))
		}
		terminal := make(map[int]EventKind)
		for _, ev := range obs.all() {
			switch ev.Kind {
			case EventVariantDone, EventVariantFailed, EventVariantCanceled:
				if prev, dup := terminal[ev.Index]; dup {
					t.Fatalf("workers=%d: variant %d got two terminal events (%v, %v)", workers, ev.Index, prev, ev.Kind)
				}
				terminal[ev.Index] = ev.Kind
			}
		}
		want := []EventKind{EventVariantDone, EventVariantFailed, EventVariantDone}
		for i, k := range want {
			if terminal[i] != k {
				t.Fatalf("workers=%d: variant %d terminal event %v, want %v (crash must not cancel the rest)",
					workers, i, terminal[i], k)
			}
		}
	}
}

// TestRunnerDeadlineMidVariant: a context that expires while a simulation is
// in flight must abort it (the event loop polls), not hang until the drain.
func TestRunnerDeadlineMidVariant(t *testing.T) {
	def := E3GCGreediness(Small)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: nothing may run at all
	res, err := New(Options{Workers: 1}).Run(ctx, def)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("pre-canceled run produced %d rows", len(res.Rows))
	}
	var ce *CanceledError
	if !errors.As(err, &ce) || ce.Completed != 0 {
		t.Fatalf("pre-canceled run reported %+v", err)
	}
}
