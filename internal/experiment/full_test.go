package experiment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"eagletree/internal/core"
	"eagletree/internal/spec"
)

// Full-scale golden files live under specs/full/: the pinned -scale full
// spec documents plus the two-seed report dump the CI full-scale job diffs.
const fullSpecDir = "../../specs/full"

func fullSpecPath(i int) string {
	return filepath.Join(fullSpecDir, fmt.Sprintf("e%d.json", i+1))
}

// TestGoldenSpecFilesFull pins the checked-in specs/full/e*.json files to
// the byte-exact encodings of the full-scale suite definitions, exactly as
// TestGoldenSpecFiles does for the small-scale documents. Regenerate with
//
//	go test ./internal/experiment -run TestGoldenSpecFilesFull -args -update-specs
func TestGoldenSpecFilesFull(t *testing.T) {
	specs := SuiteSpecs(Full)
	for i, e := range specs {
		want, err := spec.Encode(e)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		path := fullSpecPath(i)
		if *updateSpecs {
			if err := os.MkdirAll(fullSpecDir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, want, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v — regenerate with -args -update-specs", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s is stale for %s — regenerate with -args -update-specs", path, e.Name)
		}
		doc, err := spec.Decode(got)
		if err != nil {
			t.Fatalf("%s does not decode: %v", path, err)
		}
		if err := doc.Validate(); err != nil {
			t.Fatalf("%s does not validate: %v", path, err)
		}
	}
}

// fullGoldenDump renders every full-scale suite report for the two golden
// seeds in the same line format TestDumpGolden uses: one %#v per variant,
// bit-exact, so any behavioral drift — scheduling, GC, wear leveling,
// latency accounting — shows up as a text diff.
func fullGoldenDump(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, seed := range []uint64{7, 12345} {
		for _, def := range Suite(Full) {
			def := def
			base := def.Base
			def.Base = func() core.Config {
				cfg := base()
				cfg.Seed = seed
				return cfg
			}
			res, err := Run(def)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range res.Rows {
				fmt.Fprintf(&buf, "seed=%d %s %s %#v\n", seed, res.Name, row.Label, row.Report)
			}
		}
	}
	return buf.Bytes()
}

// TestFullScaleGolden is the full-scale bit-identity gate: the complete
// E1–E14 suite at -scale full, seeds 7 and 12345, must reproduce the
// committed specs/full/golden.txt byte for byte. The CI full-scale job runs
// it on every change; data-layer rework that alters any simulated outcome
// fails here before a human ever reads a chart. Regenerate with
//
//	go test ./internal/experiment -run TestFullScaleGolden -args -update-specs
func TestFullScaleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole suite at full scale twice; skipped with -short")
	}
	path := filepath.Join(fullSpecDir, "golden.txt")
	got := fullGoldenDump(t)
	if *updateSpecs {
		if err := os.MkdirAll(fullSpecDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v — regenerate with -args -update-specs", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("full-scale suite reports drifted from %s — if the change is intended, regenerate with -args -update-specs and explain the drift in the PR", path)
	}
}

// TestFullScaleSnapshotRestoreDeterministic extends the small-scale
// snapshot acceptance gate to -scale full: a device restored from a saved
// snapshot must behave bit-identically to a freshly prepared one at the
// sizes the paper's experiments actually use — on the sequential runner and
// the parallel one alike. Full-scale states exercise the large-array
// save/restore paths (SoA column encode/decode, free-pool reconstruction)
// that small-scale tests cannot reach.
func TestFullScaleSnapshotRestoreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("prepares a full-scale device three times; skipped with -short")
	}
	def := E11Aging(Full) // fresh-vs-aged preparation: the snapshot-heaviest definition
	fresh, err := RunOpts(def, Options{Workers: 1, NoPrepareCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		cached, err := RunOpts(def, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fresh, cached) {
			t.Fatalf("%d-worker snapshot-restored results differ from fresh preparation at full scale:\nfresh:  %+v\ncached: %+v",
				workers, fresh, cached)
		}
	}
}
