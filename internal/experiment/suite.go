// The predefined experimental suite, E1–E14, expressed as declarative spec
// documents (internal/spec) rather than compiled closures: each definition
// below is pure data — a base configuration of named components, a
// preparation declaration, a workload thread list and a variant grid —
// resolved through the component registry into a runnable Definition. The
// golden files under specs/ are the byte-exact JSON encodings of these
// values, so anything the suite runs a user can run (and edit) from a file.
package experiment

import (
	"fmt"

	"eagletree/internal/core"
	"eagletree/internal/spec"
	"eagletree/internal/trace"
	"eagletree/internal/workload"
)

// Scale sizes the predefined experiments. Small finishes in tens of
// milliseconds per variant (benchmarks, CI); Full is the paper-credible
// size the sweep tool uses.
type Scale int

const (
	// Small is bench/CI scale.
	Small Scale = iota
	// Full is report scale.
	Full
)

// factor returns the workload multiplier for the scale; spec expressions
// see it as the variable f.
func (s Scale) factor() int64 {
	if s == Full {
		return 8
	}
	return 1
}

// baseSpec is the shared starting point of every predefined experiment: a
// 2×2-LUN SLC SSD small enough to reach steady state quickly. Every
// component slot is spelled out by name, so the encoded documents are
// self-describing.
func baseSpec(s Scale) spec.Config {
	blocks := 64
	if s == Full {
		blocks = 128
	}
	return spec.Config{
		Geometry:      spec.Geometry{Channels: 2, LUNsPerChannel: 2, BlocksPerLUN: blocks, PagesPerBlock: 32, PageSize: 4096},
		Timing:        spec.NamedRef("slc"),
		Mapping:       spec.NamedRef("pagemap"),
		Overprovision: 0.15,
		GC:            spec.GCSpec{Policy: spec.NamedRef("greedy"), Greediness: 2},
		WL:            spec.NamedRef("off"),
		Policy:        spec.NamedRef("fifo"),
		Alloc:         spec.NamedRef("leastloaded"),
		Detector:      spec.NamedRef("none"),
		OS:            spec.OSSpec{Policy: spec.NamedRef("fifo"), QueueDepth: 32},
		Seed:          7,
	}
}

// Preparation declarations shared by the suite. Declaring preparation (not
// open-coding fill/age threads) is what lets the runner key the snapshot
// cache: every variant — and every experiment — sharing a
// preparation-relevant configuration restores one prepared state.
var (
	// prepFill writes the logical space once, sequentially.
	prepFill = spec.Prep{FillDepth: 32}
	// prepFillAge additionally overwrites the space randomly once
	// (uFLIP-style aging into steady state).
	prepFillAge = spec.Prep{FillDepth: 32, AgePasses: 1}
	// prepFillAge2 ages harder: two random overwrite passes (E11's aged
	// device).
	prepFillAge2 = spec.Prep{FillDepth: 32, AgePasses: 2}
	// prepNone disables preparation where a variant needs a fresh device.
	prepNone = spec.Prep{}
)

func prepOf(p spec.Prep) *spec.Prep { q := p; return &q }

// mustFromSpec resolves suite data; the suite registers only components the
// registry holds, so failure is a programming error caught by any test that
// touches the suite.
func mustFromSpec(e spec.Experiment) Definition {
	def, err := FromSpec(e)
	if err != nil {
		panic(fmt.Sprintf("experiment: suite spec %q: %v", e.Name, err))
	}
	return def
}

// E1ParallelismSpec sweeps the array shape — channels and LUNs per channel —
// under a parallel random-write load (Figure 1's hardware design space).
// Expected shape: throughput scales with channels×LUNs until the channel
// saturates; more LUNs per channel help less than more channels.
func E1ParallelismSpec(s Scale) spec.Experiment {
	shape := func(ch, luns int) spec.Variant {
		return spec.Variant{
			Label: fmt.Sprintf("ch=%d,luns/ch=%d", ch, luns),
			X:     float64(ch * luns),
			Set: map[string]any{
				"geometry.channels":         ch,
				"geometry.luns_per_channel": luns,
			},
		}
	}
	return spec.Experiment{
		Name:   "E1-parallelism",
		Doc:    "hardware design space (Fig. 1): throughput scales with channels×LUNs until the channel saturates",
		Varies: "geometry: channels × LUNs/channel",
		Factor: s.factor(),
		Base:   baseSpec(s),
		Workload: []spec.Thread{
			{Type: "randwrite", Params: map[string]any{"from": 0, "space": "n", "count": "2000*f", "depth": 64}},
		},
		Variants: []spec.Variant{
			shape(1, 1), shape(1, 2), shape(1, 4),
			shape(2, 2), shape(2, 4),
			shape(4, 2), shape(4, 4),
			shape(8, 4),
		},
	}
}

// E2SchedPolicySpec compares SSD scheduling policies under a mixed
// read/write load on an aged device (§3: "prioritizing between application
// reads and writes is not always easy"). Expected shape: reads-first cuts
// read latency but inflates write latency and vice versa; deadline bounds
// the tails.
func E2SchedPolicySpec(s Scale) spec.Experiment {
	policy := func(label string, ref spec.Ref) spec.Variant {
		return spec.Variant{Label: label, Set: map[string]any{"policy": ref}}
	}
	return spec.Experiment{
		Name:   "E2-sched-policy",
		Doc:    "SSD scheduling policy trade-offs on an aged device (§3)",
		Varies: "policy: fifo | reads-first | writes-first | deadline",
		Factor: s.factor(),
		Base:   baseSpec(s),
		Prep:   prepOf(prepFillAge),
		Workload: []spec.Thread{
			{Type: "randread", Params: map[string]any{"from": 0, "space": "n", "count": "1500*f", "depth": 16}},
			{Type: "randwrite", Params: map[string]any{"from": 0, "space": "n", "count": "1500*f", "depth": 16}},
		},
		Variants: []spec.Variant{
			policy("fifo", spec.NamedRef("fifo")),
			policy("reads-first", spec.ParamRef("priority", map[string]any{"prefer": "reads"})),
			policy("writes-first", spec.ParamRef("priority", map[string]any{"prefer": "writes"})),
			policy("deadline", spec.ParamRef("deadline", map[string]any{
				"read_deadline":  "2ms",
				"write_deadline": "20ms",
			})),
		},
	}
}

// E3GCGreedinessSpec sweeps the GC greediness parameter (free blocks per LUN
// target) under steady-state random overwrite (§2.2). Expected shape: lazier
// GC (smaller greediness) lowers write amplification but stretches the write
// tail; greedier GC smooths latency at more migrations.
func E3GCGreedinessSpec(s Scale) spec.Experiment {
	level := func(g int) spec.Variant {
		return spec.Variant{
			Label: fmt.Sprintf("greediness=%d", g),
			X:     float64(g),
			Set:   map[string]any{"gc.greediness": g},
		}
	}
	return spec.Experiment{
		Name:   "E3-gc-greediness",
		Doc:    "GC greediness: write amplification vs write-tail latency (§2.2)",
		Varies: "gc.greediness: 1 | 2 | 4 | 8",
		Factor: s.factor(),
		Base:   baseSpec(s),
		Prep:   prepOf(prepFillAge),
		Workload: []spec.Thread{
			{Type: "randwrite", Params: map[string]any{"from": 0, "space": "n", "count": "2*n", "depth": 32}},
		},
		Variants: []spec.Variant{level(1), level(2), level(4), level(8)},
	}
}

// E4WearLevelingSpec compares WL modes under a skewed (hot/cold) overwrite
// load (§2.2). Expected shape: wear leveling narrows the erase-count spread
// at a small throughput cost; static+dynamic narrows it most.
func E4WearLevelingSpec(s Scale) spec.Experiment {
	mode := func(name string) spec.Variant {
		return spec.Variant{
			Label: "wl=" + name,
			Set: map[string]any{
				"wl": spec.ParamRef(name, map[string]any{"check_interval": "5ms"}),
			},
		}
	}
	return spec.Experiment{
		Name:   "E4-wear-leveling",
		Doc:    "wear-leveling modes under skewed overwrite: erase-count spread vs throughput (§2.2)",
		Varies: "wl: off | static | dynamic | full",
		Factor: s.factor(),
		Base:   baseSpec(s),
		Prep:   prepOf(prepFill),
		Workload: []spec.Thread{
			{Type: "zipf", Params: map[string]any{"from": 0, "space": "n", "count": "4*n*f/2", "exponent": 1.2, "depth": 32}},
		},
		Variants: []spec.Variant{
			mode("off"), mode("static"), mode("dynamic"),
			{Label: "wl=static+dynamic", Set: map[string]any{
				"wl": spec.ParamRef("full", map[string]any{"check_interval": "5ms"}),
			}},
		},
	}
}

// E5MappingSpec compares the RAM page map against DFTL across CMT sizes
// under random IO over the whole space (§2.2). Expected shape: DFTL
// approaches the page map as the CMT grows; small CMTs pay translation reads
// and dirty eviction writes on most accesses.
func E5MappingSpec(s Scale) spec.Experiment {
	dftl := func(cmt int) spec.Variant {
		return spec.Variant{
			Label: fmt.Sprintf("dftl,cmt=%d", cmt),
			X:     float64(cmt),
			Set: map[string]any{
				"mapping": spec.ParamRef("dftl", map[string]any{"cmt": cmt, "trans_blocks": 4}),
			},
		}
	}
	return spec.Experiment{
		Name:   "E5-mapping",
		Doc:    "page map vs demand-cached DFTL across CMT sizes (§2.2)",
		Varies: "mapping: pagemap | dftl(cmt)",
		Factor: s.factor(),
		Base:   baseSpec(s),
		Prep:   prepOf(prepFill),
		Workload: []spec.Thread{
			{Type: "mix", Params: map[string]any{"from": 0, "space": "n", "count": "1500*f", "read_fraction": 0.5, "depth": 16}},
		},
		Variants: []spec.Variant{
			{Label: "pagemap", X: 0},
			dftl(128), dftl(512), dftl(2048), dftl(8192),
		},
	}
}

// E6PriorityTagSpec measures what the open interface's priority tag buys a
// latency-critical reader competing with a background writer (§2.2
// "Priorities"). Expected shape: with tags honored, tagged reads jump the
// queue and their latency collapses; block-device mode treats them like
// everything else.
func E6PriorityTagSpec(s Scale) spec.Experiment {
	base := baseSpec(s)
	base.Policy = spec.ParamRef("priority", map[string]any{"use_tags": true})
	return spec.Experiment{
		Name:   "E6-priority-tag",
		Doc:    "open-interface priority tags: tagged reads jump the queue (§2.2)",
		Varies: "open_interface: block-device | open",
		Factor: s.factor(),
		Base:   base,
		Prep:   prepOf(prepFillAge),
		Workload: []spec.Thread{
			{Type: "randwrite", Params: map[string]any{"from": 0, "space": "n", "count": "3200*f", "depth": 32}},
			{Type: "randread", Params: map[string]any{"from": 0, "space": "n", "count": "800*f", "depth": 4, "priority": 1}},
		},
		Variants: []spec.Variant{
			{Label: "block-device", Set: map[string]any{"open_interface": false}},
			{Label: "open-interface", Set: map[string]any{"open_interface": true}},
		},
	}
}

// E7UpdateLocalitySpec measures the update-locality hint (§2.2): a
// file-system workload whose files are overwritten and deleted as units.
// Expected shape: with locality tags each file's pages share physical
// blocks, so deletions and overwrites invalidate whole blocks and GC
// migrates less (lower WA).
//
// Four concurrent file systems interleave their writes at the SSD: without
// locality tags the shared write frontier mixes files from different threads
// into the same physical blocks, so when a file dies its block survives with
// live remnants. File size is centered on one erase block — the case where a
// tagged file dies as a whole block but an untagged one straddles. The extra
// physical headroom exists because locality streams pin one open block each
// per LUN, which must not consume the whole GC slack.
func E7UpdateLocalitySpec(s Scale) spec.Experiment {
	base := baseSpec(s)
	base.OpenInterface = true
	base.Geometry.BlocksPerLUN += 32
	return spec.Experiment{
		Name:   "E7-update-locality",
		Doc:    "update-locality hints: files die as whole blocks, GC migrates less (§2.2)",
		Varies: "locality tags: untagged | tagged",
		Factor: s.factor(),
		Base:   base,
		Workload: []spec.Thread{
			{Type: "fs", Repeat: 4, Params: map[string]any{
				"from":            "i*(n*3/4/4)",
				"space":           "n*3/4/4",
				"ops":             "2000*f",
				"depth":           8,
				"mean_file_pages": "ppb",
				"tag_locality":    true,
			}},
		},
		Variants: []spec.Variant{
			{Label: "untagged", Set: map[string]any{"lock_bus": true, "open_interface": false}},
			{Label: "locality-tags"},
		},
	}
}

// E8TemperatureSpec compares temperature sources for hot/cold stream
// separation (§2.2 "Temperatures" + the bloom-filter detector): none, the
// multi-bloom detector, and oracle tags through the open interface. Expected
// shape: any separation lowers WA under skew; oracle ≥ detector ≥ none.
func E8TemperatureSpec(s Scale) spec.Experiment {
	zipf := func(oracle bool) spec.Thread {
		return spec.Thread{Type: "zipf", Params: map[string]any{
			"from": 0, "space": "n", "count": "3*n*f", "exponent": 1.2, "depth": 32,
			"tag_temperature": oracle, "hot_fraction": 0.2, "scramble": true,
		}}
	}
	base := baseSpec(s)
	base.OpenInterface = true
	return spec.Experiment{
		Name:     "E8-temperature",
		Doc:      "hot/cold separation sources: none vs bloom detector vs oracle tags (§2.2)",
		Varies:   "detector: none | mbf | oracle tags",
		Factor:   s.factor(),
		Base:     base,
		Prep:     prepOf(prepFill),
		Workload: []spec.Thread{zipf(false)},
		Variants: []spec.Variant{
			{Label: "none"},
			{Label: "bloom-detector", Set: map[string]any{"detector": spec.NamedRef("mbf")}},
			{Label: "oracle-tags", Workload: []spec.Thread{zipf(true)}},
		},
	}
}

// E9QueueDepthSpec sweeps the OS queue depth under random reads on a full
// device (§2.1 "How many outstanding IOs should be submitted to the SSD?").
// Expected shape: throughput climbs with depth until every LUN stays busy,
// then plateaus while latency keeps growing — the classic knee. The thread
// runs closed-loop at the swept depth (the expression qd), so the variant
// controls the offered concurrency end to end.
func E9QueueDepthSpec(s Scale) spec.Experiment {
	depth := func(d int) spec.Variant {
		return spec.Variant{
			Label: fmt.Sprintf("depth=%d", d),
			X:     float64(d),
			Set:   map[string]any{"os.queue_depth": d},
		}
	}
	return spec.Experiment{
		Name:   "E9-queue-depth",
		Doc:    "OS queue depth: the throughput/latency knee (§2.1)",
		Varies: "os.queue_depth: 1 … 64",
		Factor: s.factor(),
		Base:   baseSpec(s),
		Prep:   prepOf(prepFill),
		Workload: []spec.Thread{
			{Type: "randread", Params: map[string]any{"from": 0, "space": "n", "count": "2000*f", "depth": "qd"}},
		},
		Variants: []spec.Variant{
			depth(1), depth(2), depth(4), depth(8), depth(16), depth(32), depth(64),
		},
	}
}

// E10AdvancedCmdsSpec toggles the advanced chip commands under GC-heavy
// overwrite (§2.2 "aggressiveness of interleaving and copy-back"). Expected
// shape: copyback accelerates GC by skipping channel transfers; interleaving
// overlaps transfers with array operations; both combine.
func E10AdvancedCmdsSpec(s Scale) spec.Experiment {
	feat := func(label string, copyback, interleave bool) spec.Variant {
		return spec.Variant{Label: label, Set: map[string]any{
			"features.copyback":     copyback,
			"features.interleaving": interleave,
			"gc.copyback":           copyback,
		}}
	}
	return spec.Experiment{
		Name:   "E10-advanced-cmds",
		Doc:    "advanced chip commands: copyback and interleaving under GC pressure (§2.2)",
		Varies: "features: copyback × interleaving",
		Factor: s.factor(),
		Base:   baseSpec(s),
		Prep:   prepOf(prepFillAge),
		Workload: []spec.Thread{
			{Type: "randwrite", Params: map[string]any{"from": 0, "space": "n", "count": "2*n", "depth": 32}},
		},
		Variants: []spec.Variant{
			feat("baseline", false, false),
			feat("copyback", true, false),
			feat("interleaving", false, true),
			feat("copyback+interleaving", true, true),
		},
	}
}

// E11AgingSpec contrasts a fresh device with an aged one under the same
// random write burst (§2.3's device-preparation methodology, after uFLIP).
// Expected shape: the aged device is markedly slower and shows WA > 1 —
// which is why experiments must prepare the device before measuring.
func E11AgingSpec(s Scale) spec.Experiment {
	return spec.Experiment{
		Name:   "E11-aging",
		Doc:    "device preparation matters: fresh vs aged under one write burst (§2.3)",
		Varies: "preparation: none | fill+age",
		Factor: s.factor(),
		Base:   baseSpec(s),
		Workload: []spec.Thread{
			{Type: "randwrite", Params: map[string]any{"from": 0, "space": "n", "count": "n/2", "depth": 32}},
		},
		Variants: []spec.Variant{
			{Label: "fresh", Prep: prepOf(prepNone)},
			{Label: "aged", Prep: prepOf(prepFillAge2)},
		},
	}
}

// E12GameSpec exhaustively searches a subset of the SSD scheduling design
// space — read/write preference × internal-IO ordering — for the combination
// maximizing the game score on a fixed mixed workload (§3's game). Expected
// shape: the optimum is a non-obvious combination; single-axis intuition
// ("always prioritize reads", "always defer GC") loses.
// The E12 sweep is a grid document: the preference and internal-order axes
// cross-product into the 9 combinations at expansion time instead of being
// listed by hand. The first axis swaps in the priority policy with its
// preference; the second overrides that component's internal parameter
// through a "slot.param" path, so the axes stay independent dimensions.
func E12GameSpec(s Scale) spec.Experiment {
	var prefer, internal []spec.Variant
	for _, pf := range []string{"none", "reads", "writes"} {
		prefer = append(prefer, spec.Variant{
			Label: "prefer=" + pf,
			Set: map[string]any{
				"policy": spec.ParamRef("priority", map[string]any{"prefer": pf}),
			},
		})
	}
	for _, in := range []string{"equal", "last", "first"} {
		internal = append(internal, spec.Variant{
			Label: "internal=" + in,
			Set:   map[string]any{"policy.internal": in},
		})
	}
	return spec.Experiment{
		Name:   "E12-game",
		Doc:    "the scheduling game (§3): search preference × internal-IO order for the best composite score",
		Varies: "policy: prefer × internal (9 combinations)",
		Factor: s.factor(),
		Base:   baseSpec(s),
		Prep:   prepOf(prepFillAge),
		Workload: []spec.Thread{
			{Type: "mix", Params: map[string]any{"from": 0, "space": "n", "count": "1000*f", "read_fraction": 0.6, "depth": 24}},
		},
		Grid: []spec.Axis{
			{Name: "prefer", Variants: prefer},
			{Name: "internal", Variants: internal},
		},
	}
}

// E13TraceReplaySpec closes the loop on the trace subsystem: the aged
// file-system workload is captured once (the e13replay thread type memoizes
// it per scale), then the identical IO stream is replayed across scheduler
// and GC variants and across replay modes (§2.3's repeatability methodology
// applied to real streams instead of synthetic generators). Expected shape:
// closed-loop variants reproduce the E2/E3 policy trade-offs on a realistic
// stream; open-loop at the captured rate shows queueing when a variant falls
// behind; time-scale 0.5 doubles the offered rate and stresses the tail.
func E13TraceReplaySpec(s Scale) spec.Experiment {
	device := "small"
	if s == Full {
		device = "full"
	}
	replay := func(mode string, scale float64) []spec.Thread {
		return []spec.Thread{{Type: "e13replay", Params: map[string]any{
			"mode": mode, "time_scale": scale, "depth": 16, "scale": device,
		}}}
	}
	policy := func(label string, ref spec.Ref) spec.Variant {
		return spec.Variant{Label: label, Set: map[string]any{"policy": ref}}
	}
	return spec.Experiment{
		Name:     "E13-trace-replay",
		Doc:      "trace capture & replay: one aged-FS stream across policies and pacing modes (§2.3)",
		Varies:   "policy / gc.greediness / replay mode",
		Factor:   s.factor(),
		Base:     baseSpec(s),
		Prep:     prepOf(prepFillAge),
		Workload: replay("closed", 1),
		Variants: []spec.Variant{
			{Label: "closed,fifo"},
			policy("closed,reads-first", spec.ParamRef("priority", map[string]any{"prefer": "reads"})),
			policy("closed,writes-first", spec.ParamRef("priority", map[string]any{"prefer": "writes"})),
			{Label: "closed,gc-greediness=1", Set: map[string]any{"gc.greediness": 1}},
			{Label: "closed,gc-greediness=8", Set: map[string]any{"gc.greediness": 8}},
			{Label: "open,1x", Workload: replay("open", 1)},
			{Label: "open,0.5x", Workload: replay("open", 0.5)},
			{Label: "dependent", Workload: replay("dependent", 1)},
		},
	}
}

// E14ReliabilitySpec sweeps the grown-bad-block growth rate under
// steady-state random overwrite on an aged device: the fault model fails a
// fraction of erases (retiring the victim block) and a smaller fraction of
// programs (the write refires elsewhere; one in ten failing blocks grows
// bad). Expected shape: throughput degrades gently and write amplification
// rises as retirement eats the over-provisioning slack — effective OP in the
// report falls with the rate while the device keeps serving IO.
func E14ReliabilitySpec(s Scale) spec.Experiment {
	rate := func(ef float64) spec.Variant {
		return spec.Variant{
			Label: fmt.Sprintf("erase_fail=%g", ef),
			X:     ef,
			Set: map[string]any{
				"fault": spec.ParamRef("random", map[string]any{
					"program_fail": 0.0005,
					"erase_fail":   ef,
					"grown_bad":    0.1,
					"seed":         11,
				}),
			},
		}
	}
	return spec.Experiment{
		Name:   "E14-reliability",
		Doc:    "graceful degradation under grown bad blocks: throughput and effective OP vs failure rate",
		Varies: "fault: none | random(erase_fail)",
		Factor: s.factor(),
		Base:   baseSpec(s),
		Prep:   prepOf(prepFillAge),
		Workload: []spec.Thread{
			{Type: "randwrite", Params: map[string]any{"from": 0, "space": "n", "count": "2*n", "depth": 32}},
		},
		Variants: []spec.Variant{
			{Label: "fault=none", X: 0},
			rate(0.001), rate(0.002), rate(0.003),
		},
	}
}

// Compiled accessors, resolving the spec data above. They keep the
// historical API: tests and callers get runnable Definitions.

// E1Parallelism resolves E1ParallelismSpec.
func E1Parallelism(s Scale) Definition { return mustFromSpec(E1ParallelismSpec(s)) }

// E2SchedPolicy resolves E2SchedPolicySpec.
func E2SchedPolicy(s Scale) Definition { return mustFromSpec(E2SchedPolicySpec(s)) }

// E3GCGreediness resolves E3GCGreedinessSpec.
func E3GCGreediness(s Scale) Definition { return mustFromSpec(E3GCGreedinessSpec(s)) }

// E4WearLeveling resolves E4WearLevelingSpec.
func E4WearLeveling(s Scale) Definition { return mustFromSpec(E4WearLevelingSpec(s)) }

// E5Mapping resolves E5MappingSpec.
func E5Mapping(s Scale) Definition { return mustFromSpec(E5MappingSpec(s)) }

// E6PriorityTag resolves E6PriorityTagSpec.
func E6PriorityTag(s Scale) Definition { return mustFromSpec(E6PriorityTagSpec(s)) }

// E7UpdateLocality resolves E7UpdateLocalitySpec.
func E7UpdateLocality(s Scale) Definition { return mustFromSpec(E7UpdateLocalitySpec(s)) }

// E8Temperature resolves E8TemperatureSpec.
func E8Temperature(s Scale) Definition { return mustFromSpec(E8TemperatureSpec(s)) }

// E9QueueDepth resolves E9QueueDepthSpec.
func E9QueueDepth(s Scale) Definition { return mustFromSpec(E9QueueDepthSpec(s)) }

// E10AdvancedCmds resolves E10AdvancedCmdsSpec.
func E10AdvancedCmds(s Scale) Definition { return mustFromSpec(E10AdvancedCmdsSpec(s)) }

// E11Aging resolves E11AgingSpec.
func E11Aging(s Scale) Definition { return mustFromSpec(E11AgingSpec(s)) }

// E12Game resolves E12GameSpec.
func E12Game(s Scale) Definition { return mustFromSpec(E12GameSpec(s)) }

// E13TraceReplay resolves E13TraceReplaySpec.
func E13TraceReplay(s Scale) Definition { return mustFromSpec(E13TraceReplaySpec(s)) }

// E14Reliability resolves E14ReliabilitySpec.
func E14Reliability(s Scale) Definition { return mustFromSpec(E14ReliabilitySpec(s)) }

// SuiteSpecs returns every predefined experiment as spec data at the given
// scale, in paper order. Encode any element to get its portable document —
// the checked-in specs/*.json files are exactly that.
func SuiteSpecs(s Scale) []spec.Experiment {
	return []spec.Experiment{
		E1ParallelismSpec(s), E2SchedPolicySpec(s), E3GCGreedinessSpec(s), E4WearLevelingSpec(s),
		E5MappingSpec(s), E6PriorityTagSpec(s), E7UpdateLocalitySpec(s), E8TemperatureSpec(s),
		E9QueueDepthSpec(s), E10AdvancedCmdsSpec(s), E11AgingSpec(s), E12GameSpec(s),
		E13TraceReplaySpec(s), E14ReliabilitySpec(s),
	}
}

// Suite returns every predefined experiment at the given scale, in paper
// order, resolved through the component registry.
func Suite(s Scale) []Definition {
	specs := SuiteSpecs(s)
	defs := make([]Definition, len(specs))
	for i, e := range specs {
		defs[i] = mustFromSpec(e)
	}
	return defs
}

// GameWeights scores the demonstration game: maximize throughput while
// balancing mean latency and latency variability between IO types (§3).
type GameWeights struct {
	// LatencyPenalty scales the mean of read and write latency (per µs).
	LatencyPenalty float64
	// BalancePenalty scales the |read - write| mean latency gap (per µs).
	BalancePenalty float64
	// VariabilityPenalty scales the summed latency std (per µs).
	VariabilityPenalty float64
}

// DefaultGameWeights returns the scoring the demo uses. Penalties are per
// millisecond of latency, gap and variability respectively.
func DefaultGameWeights() GameWeights {
	return GameWeights{LatencyPenalty: 0.1, BalancePenalty: 0.3, VariabilityPenalty: 0.1}
}

// Score computes the game's composite objective for one run: throughput
// discounted by mean latency, by the read/write latency imbalance, and by
// latency variability. Higher is better; the score stays positive, so it
// reads as "effective IOPS".
func (w GameWeights) Score(r core.Report) float64 {
	rm, wm := r.ReadLatency.Mean.Millis(), r.WriteLatency.Mean.Millis()
	gap := rm - wm
	if gap < 0 {
		gap = -gap
	}
	penalty := w.LatencyPenalty*(rm+wm) +
		w.BalancePenalty*gap +
		w.VariabilityPenalty*(r.ReadLatency.Std.Millis()+r.WriteLatency.Std.Millis())
	return r.Throughput / (1 + penalty)
}

// CaptureE13Trace records the E13 reference workload: a file-system churn on
// an aged device, captured at the OS scheduler layer after the measurement
// barrier. The result is fully determined by the scale, so every caller gets
// the identical trace.
func CaptureE13Trace(s Scale) *trace.Trace {
	cap := trace.NewCapture()
	cap.Stop() // stay silent through device preparation
	cfg, err := baseSpec(s).Resolve()
	if err != nil {
		panic(fmt.Sprintf("experiment: E13 capture config: %v", err))
	}
	cfg.OS.Capture = cap
	st, err := core.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiment: E13 capture stack: %v", err))
	}
	n := int64(st.LogicalPages())
	seq := st.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: 32})
	age := st.Add(&workload.RandomWriter{From: 0, Space: n, Count: n, Depth: 32}, seq)
	barrier := st.AddBarrier(age)
	arm := st.Add(&workload.Func{F: func(ctx *workload.Ctx) { cap.Start(ctx.Now()) }}, barrier)
	ppb := cfg.Controller.Geometry.PagesPerBlock
	st.Add(&workload.FileSystem{
		From: 0, Space: n * 3 / 4, Ops: 1200 * s.factor(), Depth: 8,
		MeanFilePages: ppb,
	}, arm)
	st.Run()
	return cap.Trace()
}
