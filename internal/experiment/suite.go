package experiment

import (
	"fmt"
	"sync"

	"eagletree/internal/controller"
	"eagletree/internal/core"
	"eagletree/internal/flash"
	"eagletree/internal/hotcold"
	"eagletree/internal/iface"
	"eagletree/internal/osched"
	"eagletree/internal/sched"
	"eagletree/internal/sim"
	"eagletree/internal/trace"
	"eagletree/internal/wl"
	"eagletree/internal/workload"
)

// Scale sizes the predefined experiments. Small finishes in tens of
// milliseconds per variant (benchmarks, CI); Full is the paper-credible
// size the sweep tool uses.
type Scale int

const (
	// Small is bench/CI scale.
	Small Scale = iota
	// Full is report scale.
	Full
)

// factor returns the workload multiplier for the scale.
func (s Scale) factor() int64 {
	if s == Full {
		return 8
	}
	return 1
}

// baseConfig is the shared starting point of every predefined experiment: a
// 2×2-LUN SLC SSD small enough to reach steady state quickly.
func baseConfig(s Scale) core.Config {
	geo := flash.Geometry{Channels: 2, LUNsPerChannel: 2, BlocksPerLUN: 64, PagesPerBlock: 32, PageSize: 4096}
	if s == Full {
		geo.BlocksPerLUN = 128
	}
	return core.Config{
		Controller: controller.Config{
			Geometry:      geo,
			Timing:        flash.TimingSLC(),
			Overprovision: 0.15,
			GCGreediness:  2,
			WL:            controller.WLOff(),
		},
		OS:   osched.Config{QueueDepth: 32},
		Seed: 7,
	}
}

// Preparation specs shared by the suite. Declaring them (rather than
// open-coding fill/age threads per definition) lets the runner key the
// snapshot cache on the spec, so every variant — and every experiment —
// sharing a preparation-relevant configuration restores one prepared state.
var (
	// prepFill writes the logical space once, sequentially.
	prepFill = PrepareSpec{FillDepth: 32}
	// prepFillAge additionally overwrites the space randomly once
	// (uFLIP-style aging into steady state).
	prepFillAge = PrepareSpec{FillDepth: 32, AgePasses: 1}
	// prepFillAge2 ages harder: two random overwrite passes (E11's aged
	// device).
	prepFillAge2 = PrepareSpec{FillDepth: 32, AgePasses: 2}
	// prepNone disables preparation where a variant needs a fresh device.
	prepNone = PrepareSpec{}
)

// E1Parallelism sweeps the array shape — channels and LUNs per channel —
// under a parallel random-write load (Figure 1's hardware design space).
// Expected shape: throughput scales with channels×LUNs until the channel
// saturates; more LUNs per channel help less than more channels.
func E1Parallelism(s Scale) Definition {
	shape := func(ch, luns int) Variant {
		return Variant{
			Label: fmt.Sprintf("ch=%d,luns/ch=%d", ch, luns),
			X:     float64(ch * luns),
			Mutate: func(c *core.Config) {
				c.Controller.Geometry.Channels = ch
				c.Controller.Geometry.LUNsPerChannel = luns
			},
		}
	}
	return Definition{
		Name: "E1-parallelism",
		Base: func() core.Config { return baseConfig(s) },
		Variants: []Variant{
			shape(1, 1), shape(1, 2), shape(1, 4),
			shape(2, 2), shape(2, 4),
			shape(4, 2), shape(4, 4),
			shape(8, 4),
		},
		Workload: func(st *core.Stack, after *workload.Handle) {
			count := 2000 * s.factor()
			space := int64(st.LogicalPages())
			st.Add(&workload.RandomWriter{From: 0, Space: space, Count: count, Depth: 64})
		},
	}
}

// E2SchedPolicy compares SSD scheduling policies under a mixed read/write
// load on an aged device (§3: "prioritizing between application reads and
// writes is not always easy"). Expected shape: reads-first cuts read latency
// but inflates write latency and vice versa; deadline bounds the tails.
func E2SchedPolicy(s Scale) Definition {
	policy := func(label string, p func() sched.Policy) Variant {
		return Variant{Label: label, Mutate: func(c *core.Config) { c.Controller.Policy = p() }}
	}
	return Definition{
		Name: "E2-sched-policy",
		Base: func() core.Config { return baseConfig(s) },
		Variants: []Variant{
			policy("fifo", func() sched.Policy { return &sched.FIFO{} }),
			policy("reads-first", func() sched.Policy { return &sched.Priority{Prefer: sched.PreferReads} }),
			policy("writes-first", func() sched.Policy { return &sched.Priority{Prefer: sched.PreferWrites} }),
			policy("deadline", func() sched.Policy {
				return &sched.Deadline{
					ReadDeadline:  2 * sim.Millisecond,
					WriteDeadline: 20 * sim.Millisecond,
				}
			}),
		},
		Prep: prepFillAge,
		Workload: func(st *core.Stack, after *workload.Handle) {
			n := int64(st.LogicalPages())
			count := 1500 * s.factor()
			st.Add(&workload.RandomReader{From: 0, Space: n, Count: count, Depth: 16}, after)
			st.Add(&workload.RandomWriter{From: 0, Space: n, Count: count, Depth: 16}, after)
		},
	}
}

// E3GCGreediness sweeps the GC greediness parameter (free blocks per LUN
// target) under steady-state random overwrite (§2.2). Expected shape: lazier
// GC (smaller greediness) lowers write amplification but stretches the write
// tail; greedier GC smooths latency at more migrations.
func E3GCGreediness(s Scale) Definition {
	level := func(g int) Variant {
		return Variant{
			Label:  fmt.Sprintf("greediness=%d", g),
			X:      float64(g),
			Mutate: func(c *core.Config) { c.Controller.GCGreediness = g },
		}
	}
	return Definition{
		Name: "E3-gc-greediness",
		Base: func() core.Config { return baseConfig(s) },
		Variants: []Variant{
			level(1), level(2), level(4), level(8),
		},
		Prep: prepFillAge,
		Workload: func(st *core.Stack, after *workload.Handle) {
			n := int64(st.LogicalPages())
			st.Add(&workload.RandomWriter{From: 0, Space: n, Count: 2 * n, Depth: 32}, after)
		},
	}
}

// E4WearLeveling compares WL modes under a skewed (hot/cold) overwrite load
// (§2.2). Expected shape: wear leveling narrows the erase-count spread at a
// small throughput cost; static+dynamic narrows it most.
func E4WearLeveling(s Scale) Definition {
	mode := func(label string, static, dynamic bool) Variant {
		return Variant{Label: label, Mutate: func(c *core.Config) {
			cfg := wl.DefaultConfig()
			cfg.Static = static
			cfg.Dynamic = dynamic
			cfg.CheckInterval = 5 * sim.Millisecond
			c.Controller.WL = cfg
		}}
	}
	return Definition{
		Name: "E4-wear-leveling",
		Base: func() core.Config { return baseConfig(s) },
		Variants: []Variant{
			mode("wl=off", false, false),
			mode("wl=static", true, false),
			mode("wl=dynamic", false, true),
			mode("wl=static+dynamic", true, true),
		},
		Prep: prepFill,
		Workload: func(st *core.Stack, after *workload.Handle) {
			n := int64(st.LogicalPages())
			st.Add(&workload.ZipfWriter{From: 0, Space: n, Count: 4 * n * s.factor() / 2, Exponent: 1.2, Depth: 32}, after)
		},
	}
}

// E5Mapping compares the RAM page map against DFTL across CMT sizes under
// random IO over the whole space (§2.2). Expected shape: DFTL approaches the
// page map as the CMT grows; small CMTs pay translation reads and dirty
// eviction writes on most accesses.
func E5Mapping(s Scale) Definition {
	dftl := func(cmt int) Variant {
		return Variant{
			Label: fmt.Sprintf("dftl,cmt=%d", cmt),
			X:     float64(cmt),
			Mutate: func(c *core.Config) {
				c.Controller.Mapping = controller.MapDFTL
				c.Controller.CMTEntries = cmt
				c.Controller.ReservedTransBlocks = 4
			},
		}
	}
	return Definition{
		Name: "E5-mapping",
		Base: func() core.Config { return baseConfig(s) },
		Variants: []Variant{
			{Label: "pagemap", X: 0},
			dftl(128), dftl(512), dftl(2048), dftl(8192),
		},
		Prep: prepFill,
		Workload: func(st *core.Stack, after *workload.Handle) {
			n := int64(st.LogicalPages())
			count := 1500 * s.factor()
			st.Add(&workload.ReadWriteMix{From: 0, Space: n, Count: count, ReadFraction: 0.5, Depth: 16}, after)
		},
	}
}

// E6PriorityTag measures what the open interface's priority tag buys a
// latency-critical reader competing with a background writer (§2.2
// "Priorities"). Expected shape: with tags honored, tagged reads jump the
// queue and their latency collapses; block-device mode treats them like
// everything else.
func E6PriorityTag(s Scale) Definition {
	return Definition{
		Name: "E6-priority-tag",
		Base: func() core.Config {
			cfg := baseConfig(s)
			cfg.Controller.Policy = &sched.Priority{UseTags: true}
			return cfg
		},
		Variants: []Variant{
			{Label: "block-device", Mutate: func(c *core.Config) { c.Controller.OpenInterface = false }},
			{Label: "open-interface", Mutate: func(c *core.Config) { c.Controller.OpenInterface = true }},
		},
		Prep: prepFillAge,
		Workload: func(st *core.Stack, after *workload.Handle) {
			n := int64(st.LogicalPages())
			count := 800 * s.factor()
			st.Add(&workload.RandomWriter{From: 0, Space: n, Count: 4 * count, Depth: 32}, after)
			st.Add(&workload.RandomReader{From: 0, Space: n, Count: count, Depth: 4,
				Tags: iface.Tags{Priority: iface.PriorityHigh}}, after)
		},
	}
}

// E7UpdateLocality measures the update-locality hint (§2.2): a file-system
// workload whose files are overwritten and deleted as units. Expected shape:
// with locality tags each file's pages share physical blocks, so deletions
// and overwrites invalidate whole blocks and GC migrates less (lower WA).
func E7UpdateLocality(s Scale) Definition {
	return Definition{
		Name: "E7-update-locality",
		Base: func() core.Config {
			cfg := baseConfig(s)
			cfg.Controller.OpenInterface = true
			// Extra physical headroom: locality streams pin one open block
			// each per LUN, which must not consume the whole GC slack.
			cfg.Controller.Geometry.BlocksPerLUN += 32
			return cfg
		},
		Variants: []Variant{
			{Label: "untagged", Mutate: func(c *core.Config) { c.LockBus = true; c.Controller.OpenInterface = false }},
			{Label: "locality-tags"},
		},
		Workload: func(st *core.Stack, after *workload.Handle) {
			// Four concurrent file systems whose writes interleave at the
			// SSD: without locality tags the shared write frontier mixes
			// files from different threads into the same physical blocks, so
			// when a file dies its block survives with live remnants. File
			// size is centered on one erase block — the case where a tagged
			// file dies as a whole block but an untagged one straddles.
			n := int64(st.LogicalPages())
			const threads = 4
			region := n * 3 / 4 / threads
			ops := 2000 * s.factor()
			ppb := st.Config().Controller.Geometry.PagesPerBlock
			for i := int64(0); i < threads; i++ {
				st.Add(&workload.FileSystem{
					From: iface.LPN(i * region), Space: region, Ops: ops, Depth: 8,
					MeanFilePages: ppb, TagLocality: true,
				}, after)
			}
		},
	}
}

// E8Temperature compares temperature sources for hot/cold stream separation
// (§2.2 "Temperatures" + the bloom-filter detector): none, the multi-bloom
// detector, and oracle tags through the open interface. Expected shape: any
// separation lowers WA under skew; oracle ≥ detector ≥ none.
func E8Temperature(s Scale) Definition {
	zipf := func(oracle bool) func(*core.Stack, *workload.Handle) {
		return func(st *core.Stack, after *workload.Handle) {
			n := int64(st.LogicalPages())
			st.Add(&workload.ZipfWriter{
				From: 0, Space: n, Count: 3 * n * s.factor(), Exponent: 1.2, Depth: 32,
				TagTemperature: oracle, HotFraction: 0.2, Scramble: true,
			}, after)
		}
	}
	return Definition{
		Name: "E8-temperature",
		Base: func() core.Config {
			cfg := baseConfig(s)
			cfg.Controller.OpenInterface = true
			return cfg
		},
		Variants: []Variant{
			{Label: "none"},
			{Label: "bloom-detector", Mutate: func(c *core.Config) {
				c.Controller.Detector = hotcold.NewMBF(hotcold.DefaultMBFConfig())
			}},
			{Label: "oracle-tags", Workload: zipf(true)},
		},
		Prep:     prepFill,
		Workload: zipf(false),
	}
}

// E9QueueDepth sweeps the OS queue depth under random reads on a full device
// (§2.1 "How many outstanding IOs should be submitted to the SSD?").
// Expected shape: throughput climbs with depth until every LUN stays busy,
// then plateaus while latency keeps growing — the classic knee.
func E9QueueDepth(s Scale) Definition {
	depth := func(d int) Variant {
		return Variant{
			Label:  fmt.Sprintf("depth=%d", d),
			X:      float64(d),
			Mutate: func(c *core.Config) { c.OS.QueueDepth = d },
		}
	}
	return Definition{
		Name: "E9-queue-depth",
		Base: func() core.Config { return baseConfig(s) },
		Variants: []Variant{
			depth(1), depth(2), depth(4), depth(8), depth(16), depth(32), depth(64),
		},
		Prep: prepFill,
		Workload: func(st *core.Stack, after *workload.Handle) {
			n := int64(st.LogicalPages())
			count := 2000 * s.factor()
			// Closed loop at the swept depth: the thread keeps exactly as
			// many IOs outstanding as the OS may pass to the SSD, so the
			// variant controls the offered concurrency end to end.
			st.Add(&workload.RandomReader{From: 0, Space: n, Count: count,
				Depth: st.Config().OS.QueueDepth}, after)
		},
	}
}

// E10AdvancedCmds toggles the advanced chip commands under GC-heavy
// overwrite (§2.2 "aggressiveness of interleaving and copy-back").
// Expected shape: copyback accelerates GC by skipping channel transfers;
// interleaving overlaps transfers with array operations; both combine.
func E10AdvancedCmds(s Scale) Definition {
	feat := func(label string, copyback, interleave bool) Variant {
		return Variant{Label: label, Mutate: func(c *core.Config) {
			c.Controller.Features = flash.Features{Copyback: copyback, Interleaving: interleave}
			c.Controller.GCCopyback = copyback
		}}
	}
	return Definition{
		Name: "E10-advanced-cmds",
		Base: func() core.Config { return baseConfig(s) },
		Variants: []Variant{
			feat("baseline", false, false),
			feat("copyback", true, false),
			feat("interleaving", false, true),
			feat("copyback+interleaving", true, true),
		},
		Prep: prepFillAge,
		Workload: func(st *core.Stack, after *workload.Handle) {
			n := int64(st.LogicalPages())
			st.Add(&workload.RandomWriter{From: 0, Space: n, Count: 2 * n, Depth: 32}, after)
		},
	}
}

// E11Aging contrasts a fresh device with an aged one under the same random
// write burst (§2.3's device-preparation methodology, after uFLIP).
// Expected shape: the aged device is markedly slower and shows WA > 1 —
// which is why experiments must prepare the device before measuring.
func E11Aging(s Scale) Definition {
	return Definition{
		Name: "E11-aging",
		Base: func() core.Config { return baseConfig(s) },
		Variants: []Variant{
			{
				Label: "fresh",
				Prep:  &prepNone,
			},
			{
				Label: "aged",
				Prep:  &prepFillAge2,
			},
		},
		Workload: func(st *core.Stack, after *workload.Handle) {
			n := int64(st.LogicalPages())
			st.Add(&workload.RandomWriter{From: 0, Space: n, Count: n / 2, Depth: 32}, after)
		},
	}
}

// GameWeights scores the demonstration game: maximize throughput while
// balancing mean latency and latency variability between IO types (§3).
type GameWeights struct {
	// LatencyPenalty scales the mean of read and write latency (per µs).
	LatencyPenalty float64
	// BalancePenalty scales the |read - write| mean latency gap (per µs).
	BalancePenalty float64
	// VariabilityPenalty scales the summed latency std (per µs).
	VariabilityPenalty float64
}

// DefaultGameWeights returns the scoring the demo uses. Penalties are per
// millisecond of latency, gap and variability respectively.
func DefaultGameWeights() GameWeights {
	return GameWeights{LatencyPenalty: 0.1, BalancePenalty: 0.3, VariabilityPenalty: 0.1}
}

// Score computes the game's composite objective for one run: throughput
// discounted by mean latency, by the read/write latency imbalance, and by
// latency variability. Higher is better; the score stays positive, so it
// reads as "effective IOPS".
func (w GameWeights) Score(r core.Report) float64 {
	rm, wm := r.ReadLatency.Mean.Millis(), r.WriteLatency.Mean.Millis()
	gap := rm - wm
	if gap < 0 {
		gap = -gap
	}
	penalty := w.LatencyPenalty*(rm+wm) +
		w.BalancePenalty*gap +
		w.VariabilityPenalty*(r.ReadLatency.Std.Millis()+r.WriteLatency.Std.Millis())
	return r.Throughput / (1 + penalty)
}

// E12Game exhaustively searches a subset of the SSD scheduling design space
// — read/write preference × internal-IO ordering — for the combination
// maximizing the game score on a fixed mixed workload (§3's game).
// Expected shape: the optimum is a non-obvious combination; single-axis
// intuition ("always prioritize reads", "always defer GC") loses.
func E12Game(s Scale) Definition {
	combos := []Variant{}
	prefs := []struct {
		name string
		p    sched.Preference
	}{{"none", sched.PreferNone}, {"reads", sched.PreferReads}, {"writes", sched.PreferWrites}}
	internals := []struct {
		name string
		o    sched.InternalOrder
	}{{"equal", sched.InternalEqual}, {"last", sched.InternalLast}, {"first", sched.InternalFirst}}
	for _, pf := range prefs {
		for _, in := range internals {
			pf, in := pf, in
			combos = append(combos, Variant{
				Label: "prefer=" + pf.name + ",internal=" + in.name,
				Mutate: func(c *core.Config) {
					c.Controller.Policy = &sched.Priority{Prefer: pf.p, Internal: in.o}
				},
			})
		}
	}
	return Definition{
		Name:     "E12-game",
		Base:     func() core.Config { return baseConfig(s) },
		Variants: combos,
		Prep:     prepFillAge,
		Workload: func(st *core.Stack, after *workload.Handle) {
			n := int64(st.LogicalPages())
			count := 1000 * s.factor()
			st.Add(&workload.ReadWriteMix{From: 0, Space: n, Count: count, ReadFraction: 0.6, Depth: 24}, after)
		},
	}
}

// CaptureE13Trace records the E13 reference workload: a file-system churn on
// an aged device, captured at the OS scheduler layer after the measurement
// barrier. The result is fully determined by the scale, so every caller gets
// the identical trace.
func CaptureE13Trace(s Scale) *trace.Trace {
	cap := trace.NewCapture()
	cap.Stop() // stay silent through device preparation
	cfg := baseConfig(s)
	cfg.OS.Capture = cap
	st, err := core.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiment: E13 capture stack: %v", err))
	}
	n := int64(st.LogicalPages())
	seq := st.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: 32})
	age := st.Add(&workload.RandomWriter{From: 0, Space: n, Count: n, Depth: 32}, seq)
	barrier := st.AddBarrier(age)
	arm := st.Add(&workload.Func{F: func(ctx *workload.Ctx) { cap.Start(ctx.Now()) }}, barrier)
	ppb := cfg.Controller.Geometry.PagesPerBlock
	st.Add(&workload.FileSystem{
		From: 0, Space: n * 3 / 4, Ops: 1200 * s.factor(), Depth: 8,
		MeanFilePages: ppb,
	}, arm)
	st.Run()
	return cap.Trace()
}

// E13TraceReplay closes the loop on the trace subsystem: the aged
// file-system workload above is captured once, then the identical IO stream
// is replayed across scheduler and GC variants and across replay modes
// (§2.3's repeatability methodology applied to real streams instead of
// synthetic generators). Expected shape: closed-loop variants reproduce the
// E2/E3 policy trade-offs on a realistic stream; open-loop at the captured
// rate shows queueing when a variant falls behind; time-scale 0.5 doubles
// the offered rate and stresses the tail.
func E13TraceReplay(s Scale) Definition {
	// The capture simulation runs lazily, once, on first variant execution:
	// Suite() is also called just to list or select experiments, and must
	// not pay for an aged-device run it never replays.
	var once sync.Once
	var tr *trace.Trace
	captured := func() *trace.Trace {
		once.Do(func() { tr = CaptureE13Trace(s) })
		return tr
	}
	// Each variant builds its own Replay value; the captured trace itself is
	// shared read-only, so parallel variant workers never interfere.
	replay := func(mode workload.ReplayMode, scale float64) func(*core.Stack, *workload.Handle) {
		return func(st *core.Stack, after *workload.Handle) {
			st.Add(&workload.Replay{Trace: captured(), Mode: mode, TimeScale: scale, Depth: 16}, after)
		}
	}
	policy := func(p func() sched.Policy) func(*core.Config) {
		return func(c *core.Config) { c.Controller.Policy = p() }
	}
	return Definition{
		Name: "E13-trace-replay",
		Base: func() core.Config { return baseConfig(s) },
		Variants: []Variant{
			{Label: "closed,fifo"},
			{Label: "closed,reads-first",
				Mutate: policy(func() sched.Policy { return &sched.Priority{Prefer: sched.PreferReads} })},
			{Label: "closed,writes-first",
				Mutate: policy(func() sched.Policy { return &sched.Priority{Prefer: sched.PreferWrites} })},
			{Label: "closed,gc-greediness=1",
				Mutate: func(c *core.Config) { c.Controller.GCGreediness = 1 }},
			{Label: "closed,gc-greediness=8",
				Mutate: func(c *core.Config) { c.Controller.GCGreediness = 8 }},
			{Label: "open,1x", Workload: replay(workload.ReplayOpenLoop, 1)},
			{Label: "open,0.5x", Workload: replay(workload.ReplayOpenLoop, 0.5)},
			{Label: "dependent", Workload: replay(workload.ReplayDependent, 1)},
		},
		Prep:     prepFillAge,
		Workload: replay(workload.ReplayClosedLoop, 1),
	}
}

// Suite returns every predefined experiment at the given scale, in paper
// order.
func Suite(s Scale) []Definition {
	return []Definition{
		E1Parallelism(s), E2SchedPolicy(s), E3GCGreediness(s), E4WearLeveling(s),
		E5Mapping(s), E6PriorityTag(s), E7UpdateLocality(s), E8Temperature(s),
		E9QueueDepth(s), E10AdvancedCmds(s), E11Aging(s), E12Game(s),
		E13TraceReplay(s),
	}
}
