package experiment

import (
	"reflect"
	"strings"
	"testing"

	"eagletree/internal/controller"
	"eagletree/internal/core"
	"eagletree/internal/flash"
	"eagletree/internal/osched"
	"eagletree/internal/workload"
)

func smallBase() core.Config {
	return core.Config{
		Controller: controller.Config{
			Geometry:      flash.Geometry{Channels: 1, LUNsPerChannel: 2, BlocksPerLUN: 32, PagesPerBlock: 16, PageSize: 4096},
			Overprovision: 0.2,
			WL:            controller.WLOff(),
		},
		OS:   osched.Config{QueueDepth: 8},
		Seed: 3,
	}
}

func sweepChannels() Definition {
	return Definition{
		Name: "channels",
		Base: smallBase,
		Variants: []Variant{
			{Label: "channels=1", X: 1, Mutate: func(c *core.Config) { c.Controller.Geometry.Channels = 1 }},
			{Label: "channels=4", X: 4, Mutate: func(c *core.Config) { c.Controller.Geometry.Channels = 4 }},
		},
		Workload: func(s *core.Stack, after *workload.Handle) {
			n := int64(s.LogicalPages())
			count := int64(400)
			if count > n {
				count = n
			}
			s.Add(&workload.SequentialWriter{From: 0, Count: count, Depth: 16})
		},
	}
}

func TestRunSweep(t *testing.T) {
	res, err := Run(sweepChannels())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	t1 := res.Rows[0].Report.Throughput
	t4 := res.Rows[1].Report.Throughput
	if t4 <= t1 {
		t.Fatalf("4 channels (%f IOPS) not faster than 1 (%f IOPS)", t4, t1)
	}
}

func TestRunWithPreparation(t *testing.T) {
	def := Definition{
		Name: "prep",
		Base: smallBase,
		Variants: []Variant{
			{Label: "only", X: 0},
		},
		Prepare: func(s *core.Stack) []*workload.Handle {
			n := int64(s.LogicalPages())
			return []*workload.Handle{s.Add(&workload.SequentialWriter{From: 0, Count: n, Depth: 8})}
		},
		Workload: func(s *core.Stack, after *workload.Handle) {
			s.Add(&workload.RandomReader{From: 0, Space: int64(s.LogicalPages()), Count: 50, Depth: 4}, after)
		},
	}
	res, err := Run(def)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Rows[0].Report
	if rep.WriteLatency.Count != 0 {
		t.Fatalf("measurement saw %d prep writes", rep.WriteLatency.Count)
	}
	if rep.ReadLatency.Count != 50 {
		t.Fatalf("measured %d reads, want 50", rep.ReadLatency.Count)
	}
}

func TestRunRejectsEmptyVariants(t *testing.T) {
	if _, err := Run(Definition{Name: "empty", Base: smallBase}); err == nil {
		t.Fatal("empty variant list accepted")
	}
}

func TestTableAndCSVAndChart(t *testing.T) {
	res, err := Run(sweepChannels())
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table()
	if !strings.Contains(table, "channels=4") || !strings.Contains(table, "throughput_iops") {
		t.Fatalf("table missing content:\n%s", table)
	}
	csv := res.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want header + 2 rows:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "variant,x,throughput_iops") {
		t.Fatalf("csv header wrong: %s", lines[0])
	}
	chart := res.Chart(MetricThroughput, 30)
	if !strings.Contains(chart, "█") {
		t.Fatalf("chart has no bars:\n%s", chart)
	}
}

func TestBestWorst(t *testing.T) {
	res, err := Run(sweepChannels())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best(MetricThroughput).Label != "channels=4" {
		t.Fatalf("best throughput variant %q", res.Best(MetricThroughput).Label)
	}
	if res.Worst(MetricThroughput).Label != "channels=1" {
		t.Fatalf("worst throughput variant %q", res.Worst(MetricThroughput).Label)
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape(`a,b`); got != `"a,b"` {
		t.Errorf("csvEscape(a,b) = %s", got)
	}
	if got := csvEscape(`a"b`); got != `"a""b"` {
		t.Errorf("csvEscape quote = %s", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Errorf("csvEscape(plain) = %s", got)
	}
}

// TestRunWorkersDeterministic asserts the parallel runner's contract: for
// any worker count, result rows are identical — bit for bit — to the
// sequential loop, across seeds.
func TestRunWorkersDeterministic(t *testing.T) {
	for _, seed := range []uint64{3, 99} {
		def := sweepChannels()
		base := def.Base
		def.Base = func() core.Config {
			cfg := base()
			cfg.Seed = seed
			return cfg
		}
		seq, err := RunWorkers(def, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			par, err := RunWorkers(def, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("seed %d: %d-worker results differ from sequential:\nseq: %+v\npar: %+v",
					seed, workers, seq, par)
			}
		}
	}
}

// TestRunWorkersDeterministicE13 extends TestRunWorkersDeterministic to the
// trace-replay experiment: one captured trace replayed across variants must
// produce bit-identical per-variant Reports sequential vs parallel, across
// closed-loop, open-loop and dependent modes alike.
func TestRunWorkersDeterministicE13(t *testing.T) {
	def := E13TraceReplay(Small)
	seq, err := RunWorkers(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		par, err := RunWorkers(def, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("%d-worker E13 results differ from sequential:\nseq: %+v\npar: %+v",
				workers, seq, par)
		}
	}
}

// TestRunWorkersErrorMatchesSequential asserts the parallel runner reports
// the earliest failing variant with the rows before it, like the sequential
// loop.
func TestRunWorkersErrorMatchesSequential(t *testing.T) {
	def := sweepChannels()
	def.Variants = append(def.Variants[:1:1], Variant{
		Label:  "broken",
		Mutate: func(c *core.Config) { c.Controller.Geometry.Channels = -1 },
	}, def.Variants[1])
	seq, errSeq := RunWorkers(def, 1)
	par, errPar := RunWorkers(def, 3)
	if errSeq == nil || errPar == nil {
		t.Fatal("broken variant did not fail")
	}
	if errSeq.Error() != errPar.Error() {
		t.Fatalf("error mismatch:\nseq: %v\npar: %v", errSeq, errPar)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("partial results mismatch:\nseq: %+v\npar: %+v", seq, par)
	}
}
