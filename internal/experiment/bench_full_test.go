package experiment

import "testing"

// End-to-end full-scale benchmarks: each iteration runs one complete
// -scale full experiment — preparation, every variant, report generation —
// with no shared prepared-state cache, so ns/op is the honest wall-clock
// cost a user pays for `eagletree sweep -run eN -scale full`. benchgate
// gates them in the CI full-scale job against BENCH_BASELINE.json budgets;
// they are the regression tripwire for the data-layer restructure (SoA
// flash columns, constant-cost victim search, classed dispatch).
//
// The three guarded experiments cover the distinct full-scale cost shapes:
// E4 is GC/wear-leveling bound (victim selection and migration dominate),
// E8 is stream/temperature bound (write-readiness classing dominates), and
// E13 replays the aged-file-system trace (mixed read path with mapping
// churn).

func benchFullExperiment(b *testing.B, def Definition) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunOpts(def, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullScaleE4(b *testing.B)  { benchFullExperiment(b, E4WearLeveling(Full)) }
func BenchmarkFullScaleE8(b *testing.B)  { benchFullExperiment(b, E8Temperature(Full)) }
func BenchmarkFullScaleE13(b *testing.B) { benchFullExperiment(b, E13TraceReplay(Full)) }
