package experiment

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"eagletree/internal/core"
)

// TestSnapshotRestoreDeterministic is the acceptance gate for the snapshot
// flow: for E11 (fresh vs aged preparation) and E13 (trace replay over an
// aged device), per-variant Reports from snapshot-restored devices must be
// bit-identical to freshly prepared runs — on the sequential path and on the
// RunWorkers parallel path alike. NoPrepareCache re-runs preparation for
// every variant; the cached runs restore one shared snapshot per distinct
// prepared state.
func TestSnapshotRestoreDeterministic(t *testing.T) {
	for _, def := range []Definition{E11Aging(Small), E13TraceReplay(Small)} {
		def := def
		t.Run(def.Name, func(t *testing.T) {
			fresh, err := RunOpts(def, Options{Workers: 1, NoPrepareCache: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				cached, err := RunOpts(def, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(fresh, cached) {
					t.Fatalf("%d-worker cached results differ from fresh preparation:\nfresh:  %+v\ncached: %+v",
						workers, fresh, cached)
				}
			}
		})
	}
}

// TestStateCacheSharesPreparation: variants of one experiment that share a
// preparation-relevant configuration must build exactly one snapshot.
func TestStateCacheSharesPreparation(t *testing.T) {
	def := E3GCGreediness(Small) // four greediness variants, one aged state
	cache := NewStateCache("")
	builds := 0
	countingGet := func(key string, build func() ([]byte, error)) ([]byte, error) {
		return cache.Get(key, func() ([]byte, error) {
			builds++
			return build()
		})
	}
	for _, v := range def.Variants {
		cfg := def.Base()
		if v.Mutate != nil {
			v.Mutate(&cfg)
		}
		prep, custom := def.prepFor(v)
		if custom != nil || prep.None() {
			t.Fatalf("variant %q does not use declared preparation", v.Label)
		}
		pcfg := prepConfig(cfg, def.Base())
		key, err := prepKey(pcfg, prep)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := countingGet(key, func() ([]byte, error) {
			return buildPrepared(context.Background(), pcfg, prep)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if builds != 1 {
		t.Fatalf("4 greediness variants built %d prepared states, want 1 shared", builds)
	}
}

// TestStateCacheDisk: a disk-backed cache persists snapshots across cache
// instances, and silently rebuilds entries that were corrupted on disk.
func TestStateCacheDisk(t *testing.T) {
	dir := t.TempDir()
	key := "test-key"
	builds := 0
	build := func() ([]byte, error) {
		builds++
		def := E11Aging(Small)
		cfg := def.Base()
		return buildPrepared(context.Background(), prepConfig(cfg, def.Base()), prepFromSpec(prepFillAge2))
	}

	c1 := NewStateCache(dir)
	first, err := c1.Get(key, build)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewStateCache(dir)
	second, err := c2.Get(key, build)
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Fatalf("disk cache rebuilt: %d builds, want 1", builds)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("disk cache returned different bytes")
	}

	// Corrupt every cached file; a fresh cache must rebuild, not trust it.
	files, err := filepath.Glob(filepath.Join(dir, "*.state"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no cache files written (err=%v)", err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(f, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c3 := NewStateCache(dir)
	third, err := c3.Get(key, build)
	if err != nil {
		t.Fatal(err)
	}
	if builds != 2 {
		t.Fatalf("corrupt cache entry was trusted: %d builds, want 2", builds)
	}
	if !reflect.DeepEqual(first, third) {
		t.Fatal("rebuilt bytes differ from original build")
	}
}

// TestPrepKeyDistinguishesConfigs: preparation-relevant knobs must change
// the cache key; measurement-only knobs must not.
func TestPrepKeyDistinguishesConfigs(t *testing.T) {
	def := E3GCGreediness(Small)
	base := def.Base()
	keyOf := func(mut func(*core.Config)) string {
		cfg := def.Base()
		if mut != nil {
			mut(&cfg)
		}
		key, err := prepKey(prepConfig(cfg, base), prepFromSpec(prepFillAge))
		if err != nil {
			t.Fatal(err)
		}
		return key
	}
	ref := keyOf(nil)
	if keyOf(func(c *core.Config) { c.Controller.GCGreediness = 8 }) != ref {
		t.Fatal("greediness (a measurement knob) changed the prep key")
	}
	if keyOf(func(c *core.Config) { c.OS.QueueDepth = 4 }) != ref {
		t.Fatal("OS queue depth (a measurement knob) changed the prep key")
	}
	if keyOf(func(c *core.Config) { c.Controller.Geometry.BlocksPerLUN = 128 }) == ref {
		t.Fatal("geometry change did not change the prep key")
	}
	if keyOf(func(c *core.Config) { c.Seed = 99 }) == ref {
		t.Fatal("seed change did not change the prep key")
	}
	if keyOf(func(c *core.Config) { c.Controller.Overprovision = 0.3 }) == ref {
		t.Fatal("overprovision change did not change the prep key")
	}
	fillKey, err := prepKey(prepConfig(def.Base(), base), prepFromSpec(prepFill))
	if err != nil {
		t.Fatal(err)
	}
	if fillKey == ref {
		t.Fatal("prep spec change did not change the prep key")
	}
}
