package experiment

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"eagletree/internal/core"
	"eagletree/internal/spec"
)

type coreConfig = core.Config

var updateSpecs = flag.Bool("update-specs", false, "rewrite the golden spec files under specs/")

const specDir = "../../specs"

func specPath(i int) string {
	return filepath.Join(specDir, fmt.Sprintf("e%d.json", i+1))
}

// TestGoldenSpecFiles pins the checked-in specs/e*.json files to the
// byte-exact encodings of the suite's data definitions: the documents a
// user edits are provably the documents the suite runs. Regenerate with
//
//	go test ./internal/experiment -run TestGoldenSpecFiles -args -update-specs
func TestGoldenSpecFiles(t *testing.T) {
	specs := SuiteSpecs(Small)
	for i, e := range specs {
		want, err := spec.Encode(e)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		path := specPath(i)
		if *updateSpecs {
			if err := os.WriteFile(path, want, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v — regenerate with -args -update-specs", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s is stale for %s — regenerate with -args -update-specs", path, e.Name)
		}
		doc, err := spec.Decode(got)
		if err != nil {
			t.Fatalf("%s does not decode: %v", path, err)
		}
		if err := doc.Validate(); err != nil {
			t.Fatalf("%s does not validate: %v", path, err)
		}
	}
}

// TestSpecSuiteMatchesCompiled is the acceptance gate for the declarative
// layer: for every E1–E13, running the checked-in spec file must produce
// Reports bit-identical to the compiled-in definition — and must hit the
// very same snapshot-cache entries (no re-preparation on the spec path).
// E11 and E13 additionally run on the parallel runner.
func TestSpecSuiteMatchesCompiled(t *testing.T) {
	if testing.Short() {
		t.Skip("re-runs the whole suite from spec files; skipped with -short (the race CI leg)")
	}
	cache := NewStateCache("")
	compiled := Suite(Small)
	for i, def := range compiled {
		def := def
		i := i
		t.Run(def.Name, func(t *testing.T) {
			data, err := os.ReadFile(specPath(i))
			if err != nil {
				t.Fatalf("%v — regenerate with -args -update-specs", err)
			}
			doc, err := spec.Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			fromFile, err := FromSpec(doc)
			if err != nil {
				t.Fatal(err)
			}
			want, err := RunOpts(def, Options{Workers: 1, Cache: cache})
			if err != nil {
				t.Fatal(err)
			}
			entries := cache.Len()
			got, err := RunOpts(fromFile, Options{Workers: 1, Cache: cache})
			if err != nil {
				t.Fatal(err)
			}
			if cache.Len() != entries {
				t.Errorf("spec-driven run built %d new prepared states; the compiled path's cache entries should have been hits",
					cache.Len()-entries)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("spec-driven results differ from compiled-in:\ncompiled: %+v\nspec:     %+v", want, got)
			}
			if def.Name == "E11-aging" || def.Name == "E13-trace-replay" {
				par, err := RunOpts(fromFile, Options{Workers: 4, Cache: cache})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, par) {
					t.Fatalf("parallel spec-driven results differ from compiled-in")
				}
			}
		})
	}
}

// TestSpecRepeatIndexDoesNotLeak: a thread's repeat expression must see a
// fresh i, not the previous thread's last replica index (regression: env.I
// leaked across thread entries, so repeat:"i+1" after a repeat:3 thread
// registered three replicas instead of one).
func TestSpecRepeatIndexDoesNotLeak(t *testing.T) {
	e := spec.Experiment{
		Name: "repeat-leak",
		Base: E11AgingSpec(Small).Base,
		Workload: []spec.Thread{
			{Type: "randwrite", Repeat: 3, Params: map[string]any{"from": 0, "space": "n", "count": 10, "depth": 4}},
			{Type: "randread", Repeat: "i+1", Params: map[string]any{"from": 0, "space": "n", "count": 10, "depth": 4}},
		},
	}
	cfg, err := e.Base.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterRun(e, spec.Variant{}, st); err != nil {
		t.Fatal(err)
	}
	if got := st.Runner.Active(); got != 4 {
		t.Fatalf("registered %d threads, want 4 (3 writers + 1 reader; i must reset per thread)", got)
	}
}

// TestFromSpecComposesWithBaseOverrides: wrapping a spec-compiled
// definition's Base (the golden-dump test does this to sweep seeds) must
// compose with variant overrides — the variant mutates the wrapped
// configuration instead of rebuilding the document's base.
func TestFromSpecComposesWithBaseOverrides(t *testing.T) {
	def := E3GCGreediness(Small)
	base := def.Base
	def.Base = func() (cfg coreConfig) {
		cfg = base()
		cfg.Seed = 12345
		return cfg
	}
	for _, v := range def.Variants {
		cfg := def.Base()
		if v.Mutate != nil {
			v.Mutate(&cfg)
		}
		if cfg.Seed != 12345 {
			t.Fatalf("variant %q reset the seed to %d", v.Label, cfg.Seed)
		}
	}
}
