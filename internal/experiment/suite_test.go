package experiment

import (
	"testing"
)

// TestSuiteDefinitionsRun executes every predefined experiment at small
// scale and sanity-checks that each produced a full row set with completed
// IO. Shape assertions (who wins) live in the root bench harness and in
// EXPERIMENTS.md; this test guards that the definitions stay runnable.
func TestSuiteDefinitionsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every suite definition; skipped with -short (the race CI leg)")
	}
	for _, def := range Suite(Small) {
		def := def
		t.Run(def.Name, func(t *testing.T) {
			res, err := Run(def)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != len(def.Variants) {
				t.Fatalf("%d rows for %d variants", len(res.Rows), len(def.Variants))
			}
			for _, row := range res.Rows {
				n := row.Report.ReadLatency.Count + row.Report.WriteLatency.Count
				if n == 0 {
					t.Errorf("variant %q measured zero IOs", row.Label)
				}
				if row.Report.Throughput <= 0 {
					t.Errorf("variant %q throughput %.2f", row.Label, row.Report.Throughput)
				}
			}
		})
	}
}

func TestE1ParallelismShape(t *testing.T) {
	res, err := Run(E1Parallelism(Small))
	if err != nil {
		t.Fatal(err)
	}
	// More LUNs must help: the 16-LUN shape beats the 1-LUN shape clearly.
	first := res.Rows[0].Report.Throughput // ch=1,luns=1
	big := res.Rows[6].Report.Throughput   // ch=4,luns=4
	if big < 4*first {
		t.Fatalf("16 LUNs (%.0f IOPS) < 4x 1 LUN (%.0f IOPS): parallelism broken", big, first)
	}
}

func TestE2PolicyTradeoffShape(t *testing.T) {
	res, err := Run(E2SchedPolicy(Small))
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]Row{}
	for _, r := range res.Rows {
		byLabel[r.Label] = r
	}
	fifo, rf := byLabel["fifo"], byLabel["reads-first"]
	if rf.Report.ReadLatency.Mean >= fifo.Report.ReadLatency.Mean {
		t.Fatalf("reads-first read mean %v >= fifo %v", rf.Report.ReadLatency.Mean, fifo.Report.ReadLatency.Mean)
	}
	if rf.Report.WriteLatency.Mean <= fifo.Report.WriteLatency.Mean {
		t.Fatalf("reads-first write mean %v <= fifo %v: no price paid", rf.Report.WriteLatency.Mean, fifo.Report.WriteLatency.Mean)
	}
}

func TestE9QueueDepthShape(t *testing.T) {
	res, err := Run(E9QueueDepth(Small))
	if err != nil {
		t.Fatal(err)
	}
	d1 := res.Rows[0].Report
	d64 := res.Rows[len(res.Rows)-1].Report
	if d64.Throughput <= d1.Throughput {
		t.Fatalf("depth 64 throughput %.0f <= depth 1 %.0f", d64.Throughput, d1.Throughput)
	}
	if d64.ReadLatency.Mean <= d1.ReadLatency.Mean {
		t.Fatalf("depth 64 latency %v <= depth 1 %v: queueing delay missing", d64.ReadLatency.Mean, d1.ReadLatency.Mean)
	}
}

func TestE11AgingShape(t *testing.T) {
	res, err := Run(E11Aging(Small))
	if err != nil {
		t.Fatal(err)
	}
	fresh, aged := res.Rows[0].Report, res.Rows[1].Report
	if aged.Throughput >= fresh.Throughput {
		t.Fatalf("aged device (%.0f IOPS) not slower than fresh (%.0f IOPS)", aged.Throughput, fresh.Throughput)
	}
	if aged.WriteAmplification <= 1.0 {
		t.Fatalf("aged WA %.2f, want > 1", aged.WriteAmplification)
	}
}

func TestGameScoreOrdersRuns(t *testing.T) {
	res, err := Run(E12Game(Small))
	if err != nil {
		t.Fatal(err)
	}
	w := DefaultGameWeights()
	best, worst := res.Rows[0], res.Rows[0]
	for _, r := range res.Rows[1:] {
		if w.Score(r.Report) > w.Score(best.Report) {
			best = r
		}
		if w.Score(r.Report) < w.Score(worst.Report) {
			worst = r
		}
	}
	if best.Label == worst.Label {
		t.Fatal("game score cannot distinguish any scheduling combination")
	}
	if w.Score(best.Report) <= w.Score(worst.Report) {
		t.Fatal("score ordering inconsistent")
	}
}
