package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sync"

	"eagletree/internal/snapshot"
)

// StateCache deduplicates device preparation: one entry per distinct
// (preparation config, spec, seed) key, holding the encoded snapshot of the
// prepared stack. It is safe for concurrent use and deduplicates concurrent
// builds of the same key, so the parallel variant runner prepares each
// distinct state exactly once.
//
// With a directory attached the cache persists across processes: repeated
// sweeps over the same design space skip preparation entirely. Entries that
// fail to decode (truncated or corrupted files) are rebuilt and overwritten,
// never trusted.
type StateCache struct {
	dir string

	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	data []byte
	err  error
}

// NewStateCache returns a cache, disk-backed under dir when dir is non-empty
// (created on first save), memory-only otherwise.
func NewStateCache(dir string) *StateCache {
	return &StateCache{dir: dir, entries: make(map[string]*cacheEntry)}
}

// Len returns how many distinct keys the cache holds — the number of
// prepared device states built or loaded so far. Tests use it to prove two
// run paths hit the same entries.
func (c *StateCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Get returns the encoded snapshot for key, building (and memoizing) it on
// first use. Concurrent callers of the same key share one build.
func (c *StateCache) Get(key string, build func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		if data := c.loadDisk(key); data != nil {
			e.data = data
			return
		}
		e.data, e.err = build()
		if e.err == nil {
			c.saveDisk(key, e.data)
		}
	})
	return e.data, e.err
}

// path maps a key to a stable filename; keys are long canonical
// configuration strings, so they are hashed rather than sanitized.
func (c *StateCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:16])+".state")
}

// loadDisk returns the stored bytes for key, or nil when the cache is
// memory-only, the file is missing, or its content does not decode — a
// corrupt cache entry silently falls back to rebuilding.
func (c *StateCache) loadDisk(key string) []byte {
	if c.dir == "" {
		return nil
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil
	}
	if _, err := snapshot.Decode(data); err != nil {
		return nil
	}
	return data
}

// saveDisk persists an entry, best-effort: an unwritable cache directory
// costs future runs the reuse but never fails the current one.
func (c *StateCache) saveDisk(key string, data []byte) {
	if c.dir == "" {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	_ = snapshot.WriteRawFile(c.path(key), data)
}
