package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sync"

	"eagletree/internal/snapshot"
)

// StateCache deduplicates device preparation: one entry per distinct
// (preparation config, spec, seed) key, holding the encoded snapshot of the
// prepared stack. It is safe for concurrent use and deduplicates concurrent
// builds of the same key, so the parallel variant runner prepares each
// distinct state exactly once.
//
// With a directory attached the cache persists across processes: repeated
// sweeps over the same design space skip preparation entirely. Entries that
// fail to decode (truncated or corrupted files) are rebuilt and overwritten,
// never trusted.
type StateCache struct {
	dir string

	// remoteFetch, when set, is consulted between the disk store and a local
	// build: a distributed-sweep worker points it at its coordinator, so one
	// process's preparation serves every worker's variants. publish mirrors a
	// locally built state back to that remote store, best-effort.
	remoteFetch func(key string) ([]byte, error)
	publish     func(key string, data []byte)

	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	ready chan struct{} // closed once data/err are set
	data  []byte
	err   error
}

// NewStateCache returns a cache, disk-backed under dir when dir is non-empty
// (created on first save), memory-only otherwise.
func NewStateCache(dir string) *StateCache {
	return &StateCache{dir: dir, entries: make(map[string]*cacheEntry)}
}

// Len returns how many distinct keys the cache holds — the number of
// prepared device states built or loaded so far. Tests use it to prove two
// run paths hit the same entries.
func (c *StateCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Get returns the encoded snapshot for key, building (and memoizing) it on
// first use. Concurrent callers of the same key share one build.
func (c *StateCache) Get(key string, build func() ([]byte, error)) ([]byte, error) {
	data, _, err := c.Fetch(key, build)
	return data, err
}

// Fetch is Get with cache provenance: hit reports whether this call was
// served without running build — by an entry another caller already built
// (or is building; waiters share its result) or by the disk store. Failed
// builds are not memoized: the entry is removed once its waiters are
// released, so a later Fetch of the same key (a canceled preparation, say)
// builds again.
func (c *StateCache) Fetch(key string, build func() ([]byte, error)) (data []byte, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		return e.data, true, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	if data := c.loadDisk(key); data != nil {
		e.data = data
		close(e.ready)
		return data, true, nil
	}
	if c.remoteFetch != nil {
		// A remote miss and a remote failure both fall through to the local
		// build: the remote store is an accelerator, never a dependency.
		if data, err := c.remoteFetch(key); err == nil && data != nil {
			e.data = data
			c.saveDisk(key, data)
			close(e.ready)
			return data, true, nil
		}
	}
	e.data, e.err = build()
	if e.err == nil {
		c.saveDisk(key, e.data)
		if c.publish != nil {
			c.publish(key, e.data)
		}
	}
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return e.data, false, e.err
}

// SetRemote attaches a secondary store consulted between the disk cache and
// a local build. fetch returns the encoded snapshot for a key, or (nil, nil)
// on a remote miss; publish (optional) is handed every locally built state.
// Set it before the cache is shared across goroutines — the fields are not
// synchronized.
func (c *StateCache) SetRemote(fetch func(key string) ([]byte, error), publish func(key string, data []byte)) {
	c.remoteFetch = fetch
	c.publish = publish
}

// Peek returns the encoded snapshot for key if it is already present in
// memory or on disk, without building and without consulting the remote
// store. A key whose build is in flight counts as present: Peek waits for it,
// so a coordinator serving concurrent workers never races a local build.
func (c *StateCache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		return e.data, e.err == nil
	}
	c.mu.Unlock()
	data := c.loadDisk(key)
	if data == nil {
		return nil, false
	}
	c.Put(key, data)
	return data, true
}

// Put inserts an already-encoded snapshot — one received over a transport,
// say. An existing entry (even an in-flight build) wins: the first state
// bound to a key stays bound to it. The caller is responsible for having
// verified the payload (snapshot.Verify); Put stores bytes, not trust.
func (c *StateCache) Put(key string, data []byte) {
	c.mu.Lock()
	if _, ok := c.entries[key]; ok {
		c.mu.Unlock()
		return
	}
	e := &cacheEntry{ready: make(chan struct{}), data: data}
	close(e.ready)
	c.entries[key] = e
	c.mu.Unlock()
	c.saveDisk(key, data)
}

// path maps a key to a stable filename; keys are long canonical
// configuration strings, so they are hashed rather than sanitized.
func (c *StateCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:16])+".state")
}

// loadDisk returns the stored bytes for key, or nil when the cache is
// memory-only, the file is missing, or its content does not decode — a
// corrupt cache entry silently falls back to rebuilding.
func (c *StateCache) loadDisk(key string) []byte {
	if c.dir == "" {
		return nil
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil
	}
	if _, err := snapshot.Decode(data); err != nil {
		return nil
	}
	return data
}

// saveDisk persists an entry, best-effort: an unwritable cache directory
// costs future runs the reuse but never fails the current one.
func (c *StateCache) saveDisk(key string, data []byte) {
	if c.dir == "" {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	_ = snapshot.WriteRawFile(c.path(key), data)
}
