package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"eagletree/internal/core"
	"eagletree/internal/snapshot"
	"eagletree/internal/workload"
)

// ErrCanceled reports a run cut short by its context. Errors returned for
// canceled runs are *CanceledError values wrapping it, so callers test with
// errors.Is(err, ErrCanceled) and inspect details with errors.As.
var ErrCanceled = errors.New("experiment: run canceled")

// ErrNoVariants reports a definition with nothing to run.
var ErrNoVariants = errors.New("experiment: definition has no variants")

// ErrUnknownEventKind reports an event-kind value or name outside the
// declared set — a stream produced by a newer binary, usually.
var ErrUnknownEventKind = errors.New("experiment: unknown event kind")

// CanceledError is the typed error of a canceled run: the partial Results
// returned alongside it hold the first Completed variants' rows — a prefix,
// in definition order, bit-identical to the same prefix of an uncancelled
// run. It wraps both ErrCanceled and the context's own error.
type CanceledError struct {
	// Experiment is the definition's name.
	Experiment string
	// Completed is how many leading variants finished (the partial row count).
	Completed int
	// Total is the definition's variant count.
	Total int
	// Cause is the context's error (context.Canceled or DeadlineExceeded).
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("experiment %q: canceled after %d of %d variants: %v",
		e.Experiment, e.Completed, e.Total, e.Cause)
}

// Unwrap exposes both the package sentinel and the context cause.
func (e *CanceledError) Unwrap() []error { return []error{ErrCanceled, e.Cause} }

// VariantError is a variant whose execution panicked — a crashing workload
// hook, a bug in a component under test. The runner recovers the panic,
// isolates it to the variant, and completes the rest of the sweep; a
// *VariantError then stands in for the variant's row. Panic holds the
// recovered value and Stack the goroutine stack at the point of the panic.
type VariantError struct {
	// Experiment is the definition's name.
	Experiment string
	// Variant is the failed variant's label.
	Variant string
	// Index is the variant's position in definition order.
	Index int
	// Panic is the recovered panic value.
	Panic any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *VariantError) Error() string {
	return fmt.Sprintf("experiment %q variant %q: panic: %v", e.Experiment, e.Variant, e.Panic)
}

// EventKind discriminates runner events.
type EventKind int

const (
	// EventVariantQueued is emitted once per variant when the run admits it,
	// in definition order, before any variant executes.
	EventVariantQueued EventKind = iota
	// EventPrepareHit reports that the variant's declared preparation was
	// served from the snapshot cache (memory or disk).
	EventPrepareHit
	// EventPrepareMiss reports that the variant's declared preparation had to
	// age a device from scratch (the result is cached for later variants).
	EventPrepareMiss
	// EventVariantDone reports one variant's completion; Row carries its
	// result (nil when the variant failed — Err holds why).
	EventVariantDone
	// EventVariantCanceled reports a variant that produced no row: aborted
	// mid-simulation or never started, because the context was canceled or an
	// earlier variant's failure stopped the sequential loop.
	EventVariantCanceled
	// EventVariantFailed reports a variant whose execution panicked; Err holds
	// the *VariantError with the recovered value and stack. The sweep isolates
	// the crash and keeps running the remaining variants.
	EventVariantFailed
	// EventExperimentDone is the terminal event: the whole run finished,
	// failed (Err holds the earliest failure) or was canceled.
	EventExperimentDone
)

func (k EventKind) String() string {
	switch k {
	case EventVariantQueued:
		return "variant-queued"
	case EventPrepareHit:
		return "prepare-hit"
	case EventPrepareMiss:
		return "prepare-miss"
	case EventVariantDone:
		return "variant-done"
	case EventVariantCanceled:
		return "variant-canceled"
	case EventVariantFailed:
		return "variant-failed"
	case EventExperimentDone:
		return "experiment-done"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// MarshalText serializes the kind by name, so event streams crossing a
// process boundary (the distributed sweep fabric's NDJSON wire) stay readable
// and stable even if the iota order ever changes.
func (k EventKind) MarshalText() ([]byte, error) {
	s := k.String()
	if _, err := ParseEventKind(s); err != nil {
		return nil, fmt.Errorf("cannot marshal %s: %w", s, ErrUnknownEventKind)
	}
	return []byte(s), nil
}

// UnmarshalText parses a kind name produced by MarshalText.
func (k *EventKind) UnmarshalText(text []byte) error {
	kind, err := ParseEventKind(string(text))
	if err != nil {
		return err
	}
	*k = kind
	return nil
}

// ParseEventKind maps an event-kind name back to its value.
func ParseEventKind(s string) (EventKind, error) {
	for k := EventVariantQueued; k <= EventExperimentDone; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownEventKind, s)
}

// Event is one observation of a running experiment. Events stream to the
// Options.Observer as the run executes: every variant gets exactly one
// EventVariantQueued and exactly one of EventVariantDone, EventVariantFailed
// or EventVariantCanceled, declared preparation gets one EventPrepareHit or
// EventPrepareMiss per variant, and the run closes with one
// EventExperimentDone.
type Event struct {
	Kind EventKind
	// Experiment is the definition's name.
	Experiment string
	// Variant is the variant's label ("" for EventExperimentDone).
	Variant string
	// Index is the variant's position in definition order (-1 for
	// EventExperimentDone).
	Index int
	// Variants is the definition's total variant count.
	Variants int
	// CacheKey is the snapshot-cache key (prepare events only) — the cache
	// provenance of the variant's starting device state.
	CacheKey string
	// Wall is real time spent: the preparation fetch/build for prepare
	// events, the variant's execution for EventVariantDone, the whole run for
	// EventExperimentDone.
	Wall time.Duration
	// Err is the variant's failure (EventVariantDone) or the run's terminal
	// error (EventExperimentDone); nil on success.
	Err error
	// Row is the completed row (EventVariantDone on success only). It is a
	// private copy; observers may retain it.
	Row *Row
}

// Observer receives runner events. OnEvent is called serially — never
// concurrently — but from worker goroutines, in completion order; events for
// one variant are ordered, events of different variants interleave under the
// parallel runner.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(ev Event) { f(ev) }

// MultiObserver fans one event stream out to every given observer, in order;
// nils are skipped. It keeps the runner's serialization guarantee — each
// observer sees the same serial stream.
func MultiObserver(obs ...Observer) Observer {
	live := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiObserver(live)
}

type multiObserver []Observer

func (m multiObserver) OnEvent(ev Event) {
	for _, o := range m {
		o.OnEvent(ev)
	}
}

// ChanObserver returns an Observer that sends every event to ch (blocking —
// size the channel or drain it promptly; a stalled receiver stalls the run).
// The runner never closes ch: close it after Run returns.
func ChanObserver(ch chan<- Event) Observer {
	return ObserverFunc(func(ev Event) { ch <- ev })
}

// Runner executes experiments: one independent simulation per variant,
// fanned out over a bounded worker pool, with context cancellation and an
// event stream. The zero-value Options give sequential-identical results on
// GOMAXPROCS workers with a private snapshot cache.
type Runner struct {
	opts Options
}

// New returns a Runner with the given options.
func New(opts Options) *Runner { return &Runner{opts: opts} }

// Run executes the experiment under ctx: one independent simulation per
// variant, results in definition order, bit-identical to a sequential run
// regardless of worker count.
//
// Cancellation is honored mid-sweep: unstarted variants are skipped,
// in-flight simulations abandon within a few thousand events, and workers
// drain deterministically. The returned Results then carry the completed
// prefix of rows — identical, bit for bit, to the same prefix of an
// uncancelled run — alongside a *CanceledError wrapping ErrCanceled.
func (r *Runner) Run(ctx context.Context, def Definition) (Results, error) {
	res := Results{Name: def.Name}
	if len(def.Variants) == 0 {
		return res, fmt.Errorf("%w: %q", ErrNoVariants, def.Name)
	}
	workers := r.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(def.Variants) {
		workers = len(def.Variants)
	}
	cache := r.opts.Cache
	if r.opts.NoPrepareCache {
		cache = nil
	} else if cache == nil {
		cache = NewStateCache("")
	}
	run := &runState{
		def:      def,
		cache:    cache,
		observer: r.opts.Observer,
		started:  time.Now(), //lint:wallclock run wall-time telemetry, never canonical
		rows:     make([]Row, len(def.Variants)),
		errs:     make([]error, len(def.Variants)),
		canceled: make([]bool, len(def.Variants)),
	}
	for i, v := range def.Variants {
		run.emit(Event{Kind: EventVariantQueued, Experiment: def.Name,
			Variant: v.Label, Index: i, Variants: len(def.Variants)})
	}

	if workers == 1 {
		run.sequential(ctx)
	} else {
		run.parallel(ctx, workers)
	}

	// Assemble in definition order, stopping at the first variant that
	// produced no row: rows before it, nothing after. A failure reports the
	// variant's error exactly as the sequential loop always has; a
	// cancellation reports a *CanceledError with the completed prefix.
	var err error
	for i := range def.Variants {
		if run.canceled[i] {
			cause := context.Cause(ctx)
			if cause == nil {
				cause = context.Canceled
			}
			err = &CanceledError{Experiment: def.Name, Completed: len(res.Rows),
				Total: len(def.Variants), Cause: cause}
			break
		}
		if run.errs[i] != nil {
			err = run.errs[i]
			break
		}
		res.Rows = append(res.Rows, run.rows[i])
	}
	run.emit(Event{Kind: EventExperimentDone, Experiment: def.Name, Index: -1,
		Variants: len(def.Variants), Wall: time.Since(run.started), Err: err})
	return res, err
}

// runState is one Run invocation's bookkeeping, shared by its workers.
type runState struct {
	def      Definition
	cache    *StateCache
	observer Observer
	started  time.Time

	rows     []Row
	errs     []error
	canceled []bool

	emitMu sync.Mutex

	// decoded shares one decoded snapshot per cache key across variants
	// (see decodeShared).
	decMu   sync.Mutex
	decoded map[string]*snapshot.DeviceState
}

// decodeShared decodes an encoded snapshot once per cache key and hands the
// same decoded state to every variant that restores from it. Sharing is
// safe — concurrently, too — because restoration never mutates the decoded
// state: every RestoreState implementation copies out of it into the
// stack's own storage. A full-scale prepared device decodes to a
// multi-megabyte state; paying that once per prepared device instead of
// once per variant is the lazy-restore half of the snapshot fast path.
// Keyless states (cacheless reference runs) decode privately.
func (rs *runState) decodeShared(key string, data []byte) (*snapshot.DeviceState, error) {
	if key == "" {
		return snapshot.Decode(data)
	}
	rs.decMu.Lock()
	defer rs.decMu.Unlock()
	if ds, ok := rs.decoded[key]; ok {
		return ds, nil
	}
	ds, err := snapshot.Decode(data)
	if err != nil {
		return nil, err
	}
	if rs.decoded == nil {
		rs.decoded = make(map[string]*snapshot.DeviceState)
	}
	rs.decoded[key] = ds
	return ds, nil
}

// emit delivers one event to the observer, serialized across workers.
func (rs *runState) emit(ev Event) {
	if rs.observer == nil {
		return
	}
	rs.emitMu.Lock()
	defer rs.emitMu.Unlock()
	rs.observer.OnEvent(ev)
}

// sequential runs variants one by one, stopping at the first failure or
// cancellation; the remaining variants are marked canceled. A panicking
// variant (*VariantError) is the exception: the crash is isolated and the
// loop keeps sweeping, matching the parallel runner's semantics.
func (rs *runState) sequential(ctx context.Context) {
	for i, v := range rs.def.Variants {
		if ctx.Err() != nil {
			rs.cancelFrom(i)
			return
		}
		if !rs.runOne(ctx, i, v) {
			rs.cancelFrom(i + 1)
			return
		}
		if err := rs.errs[i]; err != nil {
			var ve *VariantError
			if !errors.As(err, &ve) {
				rs.cancelFrom(i + 1)
				return
			}
		}
	}
}

// cancelFrom marks every variant from i on as canceled.
func (rs *runState) cancelFrom(i int) {
	for ; i < len(rs.def.Variants); i++ {
		rs.markCanceled(i)
	}
}

// parallel fans variants over the worker pool. Workers keep claiming after
// another variant fails (matching the historical parallel semantics — the
// earliest failure is still what Run reports) but stop simulating once the
// context is canceled, marking every remaining claim canceled instead.
func (rs *runState) parallel(ctx context.Context, workers int) {
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(rs.def.Variants) {
					return
				}
				if ctx.Err() != nil {
					rs.markCanceled(i)
					continue
				}
				rs.runOne(ctx, i, rs.def.Variants[i])
			}
		}()
	}
	wg.Wait()
}

// runOne executes variant i, records its outcome and emits its terminal
// event. It reports false when the variant was canceled mid-run.
func (rs *runState) runOne(ctx context.Context, i int, v Variant) bool {
	start := time.Now() //lint:wallclock per-variant wall-time telemetry
	row, err := rs.runVariantSafe(ctx, i, v)
	if err != nil && wasCanceled(err) {
		rs.markCanceled(i)
		return false
	}
	rs.rows[i], rs.errs[i] = row, err
	ev := Event{Kind: EventVariantDone, Experiment: rs.def.Name, Variant: v.Label,
		Index: i, Variants: len(rs.def.Variants), Wall: time.Since(start), Err: err}
	var ve *VariantError
	if errors.As(err, &ve) {
		ev.Kind = EventVariantFailed
	}
	if err == nil {
		r := row
		ev.Row = &r
	}
	rs.emit(ev)
	return true
}

// runVariantSafe executes runVariant with panic isolation: a panicking
// variant — a crashing preparation hook, a bug in a component under test —
// becomes a *VariantError instead of tearing down the whole sweep (and,
// under the parallel runner, the process).
func (rs *runState) runVariantSafe(ctx context.Context, i int, v Variant) (row Row, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &VariantError{Experiment: rs.def.Name, Variant: v.Label, Index: i,
				Panic: p, Stack: debug.Stack()}
		}
	}()
	return rs.runVariant(ctx, i, v)
}

// markCanceled records and reports a variant that will produce no row.
func (rs *runState) markCanceled(i int) {
	rs.canceled[i] = true
	rs.emit(Event{Kind: EventVariantCanceled, Experiment: rs.def.Name,
		Variant: rs.def.Variants[i].Label, Index: i, Variants: len(rs.def.Variants)})
}

// wasCanceled distinguishes a context-abandoned simulation from a failure.
func wasCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Run executes the experiment with default options: one independent
// simulation per variant, fanned out over up to GOMAXPROCS workers. Every
// variant stack is fully isolated (own engine, own RNG), so the result rows
// are identical — bit for bit — to a sequential run; only wall-clock time
// changes.
//
// Deprecated: use New(Options{}).Run(ctx, def), which adds cancellation and
// event streaming. This wrapper runs under context.Background.
func Run(def Definition) (Results, error) { return RunOpts(def, Options{}) }

// RunWorkers runs the experiment on at most workers goroutines. Variant
// order in the results is always definition order.
//
// Deprecated: use New(Options{Workers: workers}).Run(ctx, def).
func RunWorkers(def Definition, workers int) (Results, error) {
	return RunOpts(def, Options{Workers: workers})
}

// RunOpts runs the experiment with explicit execution options.
//
// Deprecated: use New(opts).Run(ctx, def).
func RunOpts(def Definition, opts Options) (Results, error) {
	return New(opts).Run(context.Background(), def)
}

// runVariant builds and drives one variant's stack to completion.
//
// Variants with declared preparation run in two phases: the preparation
// workload runs to a full drain on a stack built from the normalized
// preparation config (shared across variants and cached as an encoded
// snapshot), then the measured workload runs on a stack restored from that
// snapshot under the variant's full config. Restoration carries the engine
// clock, RNG lineage and thread/request id sequences, so a cache hit and a
// fresh preparation produce bit-identical rows.
func (rs *runState) runVariant(ctx context.Context, i int, v Variant) (Row, error) {
	def := rs.def
	cfg := def.Base()
	if def.SeriesBucket > 0 {
		cfg.SeriesBucket = def.SeriesBucket
	}
	if v.Mutate != nil {
		v.Mutate(&cfg)
	}
	spec, custom := def.prepFor(v)
	if custom != nil {
		return rs.runVariantLegacy(ctx, v, cfg, custom)
	}
	var stack *core.Stack
	if spec.None() {
		st, err := core.New(cfg)
		if err != nil {
			return Row{}, fmt.Errorf("experiment %q variant %q: %w", def.Name, v.Label, err)
		}
		stack = st
	} else {
		data, key, err := rs.preparedState(ctx, i, v, cfg, spec)
		if err != nil {
			if wasCanceled(err) {
				return Row{}, err
			}
			return Row{}, fmt.Errorf("experiment %q variant %q: %w", def.Name, v.Label, err)
		}
		// One decode per prepared state; restoration never mutates it.
		ds, err := rs.decodeShared(key, data)
		if err != nil {
			return Row{}, fmt.Errorf("experiment %q variant %q: %w", def.Name, v.Label, err)
		}
		st, err := core.Restore(cfg, ds)
		if err != nil {
			return Row{}, fmt.Errorf("experiment %q variant %q: %w", def.Name, v.Label, err)
		}
		st.MarkMeasurement()
		stack = st
	}
	return rs.finishVariant(ctx, v, stack)
}

// preparedState returns the encoded snapshot of the prepared device for the
// variant's configuration and its cache key ("" when no cache is in play),
// building it (once per distinct key when a cache is present) by running
// the preparation workload to a full drain, and emits the cache-provenance
// event.
func (rs *runState) preparedState(ctx context.Context, i int, v Variant, cfg core.Config, spec PrepareSpec) ([]byte, string, error) {
	def := rs.def
	pcfg := prepConfig(cfg, def.Base())
	if rs.cache == nil {
		data, err := buildPrepared(ctx, pcfg, spec)
		return data, "", err
	}
	key, err := prepKey(pcfg, spec)
	if err != nil {
		return nil, "", err
	}
	start := time.Now() //lint:wallclock cache-fetch wall-time telemetry
	data, hit, err := rs.cache.Fetch(key, func() ([]byte, error) {
		return buildPrepared(ctx, pcfg, spec)
	})
	if err == nil {
		kind := EventPrepareMiss
		if hit {
			kind = EventPrepareHit
		}
		rs.emit(Event{Kind: kind, Experiment: def.Name, Variant: v.Label, Index: i,
			Variants: len(def.Variants), CacheKey: key, Wall: time.Since(start)})
	}
	return data, key, err
}

// buildPrepared ages a fresh device under the preparation config to a full
// drain and returns its encoded snapshot.
func buildPrepared(ctx context.Context, pcfg core.Config, spec PrepareSpec) ([]byte, error) {
	st, err := core.New(pcfg)
	if err != nil {
		return nil, err
	}
	spec.register(st)
	if _, err := st.RunCtx(ctx); err != nil {
		return nil, err
	}
	if !st.Runner.Done() {
		if herr := st.Controller.Health(); herr != nil {
			return nil, fmt.Errorf("preparation stalled with %d threads active: %w", st.Runner.Active(), herr)
		}
		return nil, fmt.Errorf("preparation deadlocked with %d threads active", st.Runner.Active())
	}
	ds, err := st.Snapshot()
	if err != nil {
		return nil, err
	}
	return snapshot.Encode(ds), nil
}

// runVariantLegacy drives a custom-Prepare variant the pre-snapshot way:
// preparation and measurement share one stack, separated by a measurement
// barrier thread. Custom preparation is opaque to the snapshot cache, so no
// prepare event is emitted.
func (rs *runState) runVariantLegacy(ctx context.Context, v Variant, cfg core.Config, prepare func(*core.Stack) []*workload.Handle) (Row, error) {
	def := rs.def
	stack, err := core.New(cfg)
	if err != nil {
		return Row{}, fmt.Errorf("experiment %q variant %q: %w", def.Name, v.Label, err)
	}
	prep := prepare(stack)
	barrier := stack.AddBarrier(prep...)
	wload := def.Workload
	if v.Workload != nil {
		wload = v.Workload
	}
	wload(stack, barrier)
	return rs.driveToCompletion(ctx, v, stack)
}

// finishVariant registers the measured workload on a ready stack (fresh or
// restored) and drives it to completion.
func (rs *runState) finishVariant(ctx context.Context, v Variant, stack *core.Stack) (Row, error) {
	wload := rs.def.Workload
	if v.Workload != nil {
		wload = v.Workload
	}
	wload(stack, nil)
	return rs.driveToCompletion(ctx, v, stack)
}

// driveToCompletion runs the stack's event loop to a drain (or a context
// abort) and extracts the variant's row. A drained engine with live threads
// is diagnosed through the controller's health check first: a device whose
// free pool was exhausted by block retirement surfaces as a typed
// ErrDeviceWornOut rather than a generic deadlock.
func (rs *runState) driveToCompletion(ctx context.Context, v Variant, stack *core.Stack) (Row, error) {
	if _, err := stack.RunCtx(ctx); err != nil {
		return Row{}, err
	}
	if !stack.Runner.Done() {
		if herr := stack.Controller.Health(); herr != nil {
			return Row{}, fmt.Errorf("experiment %q variant %q: %d threads never finished: %w",
				rs.def.Name, v.Label, stack.Runner.Active(), herr)
		}
		return Row{}, fmt.Errorf("experiment %q variant %q: %d threads never finished (workload deadlock)",
			rs.def.Name, v.Label, stack.Runner.Active())
	}
	return rowFrom(v, stack)
}
