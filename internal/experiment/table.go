package experiment

import (
	"fmt"
	"strings"
)

// Table renders the results as an aligned ASCII table with the standard
// metric columns — the text-mode counterpart of the GUI's numeric panel.
func (r Results) Table() string {
	cols := []Metric{
		MetricThroughput, MetricReadMean, MetricWriteMean,
		MetricReadP99, MetricWriteP99, MetricReadStd, MetricWriteStd, MetricWA,
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Name)
	fmt.Fprintf(&b, "%-24s", "variant")
	for _, c := range cols {
		fmt.Fprintf(&b, "%16s", c.Name)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s", row.Label)
		for _, c := range cols {
			fmt.Fprintf(&b, "%16.2f", c.F(row.Report))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the results with every standard metric, one row per variant.
func (r Results) CSV() string {
	cols := []Metric{
		MetricThroughput, MetricReadMean, MetricWriteMean,
		MetricReadP99, MetricWriteP99, MetricReadStd, MetricWriteStd,
		MetricWA, MetricGCPages, MetricWearSpread,
	}
	var b strings.Builder
	b.WriteString("variant,x")
	for _, c := range cols {
		b.WriteByte(',')
		b.WriteString(c.Name)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%g", csvEscape(row.Label), row.X)
		for _, c := range cols {
			fmt.Fprintf(&b, ",%g", c.F(row.Report))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Chart renders one metric as a horizontal text bar chart over the variants
// — the text-mode stand-in for the suite's performance-vs-parameter graphs.
func (r Results) Chart(m Metric, width int) string {
	if width <= 0 {
		width = 50
	}
	var max float64
	for _, row := range r.Rows {
		if v := m.F(row.Report); v > max {
			max = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.Name, m.Name)
	for _, row := range r.Rows {
		v := m.F(row.Report)
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "%-24s |%-*s| %.2f\n", row.Label, width, strings.Repeat("█", n), v)
	}
	return b.String()
}

// Timelines renders each variant's completion-rate sparkline — the suite's
// metrics-over-time graphs. Empty when the definition recorded no series.
func (r Results) Timelines() string {
	var b strings.Builder
	for _, row := range r.Rows {
		if row.Timeline == "" {
			continue
		}
		fmt.Fprintf(&b, "%-24s %s\n", row.Label, row.Timeline)
	}
	if b.Len() == 0 {
		return ""
	}
	return fmt.Sprintf("%s — completions over time\n%s", r.Name, b.String())
}

// Best returns the row maximizing the metric (ties: first).
func (r Results) Best(m Metric) Row {
	best := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if m.F(row.Report) > m.F(best.Report) {
			best = row
		}
	}
	return best
}

// Worst returns the row minimizing the metric (ties: first).
func (r Results) Worst(m Metric) Row {
	worst := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if m.F(row.Report) < m.F(worst.Report) {
			worst = row
		}
	}
	return worst
}
