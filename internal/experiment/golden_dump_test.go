package experiment

import (
	"fmt"
	"os"
	"testing"

	"eagletree/internal/core"
)

// TestDumpGolden serializes every Small-scale suite report for two seeds so
// that hot-path rework can be checked for bit-identical results. Run with
// EAGLETREE_GOLDEN=/path/to/file to produce the dump; skipped otherwise.
func TestDumpGolden(t *testing.T) {
	path := os.Getenv("EAGLETREE_GOLDEN")
	if path == "" {
		t.Skip("set EAGLETREE_GOLDEN to dump")
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, seed := range []uint64{7, 12345} {
		for _, def := range Suite(Small) {
			def := def
			base := def.Base
			def.Base = func() core.Config {
				cfg := base()
				cfg.Seed = seed
				return cfg
			}
			res, err := Run(def)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range res.Rows {
				fmt.Fprintf(f, "seed=%d %s %s %#v\n", seed, res.Name, row.Label, row.Report)
			}
		}
	}
}
