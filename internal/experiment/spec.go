package experiment

import (
	"fmt"
	"sync"

	"eagletree/internal/core"
	"eagletree/internal/spec"
	"eagletree/internal/trace"
	"eagletree/internal/workload"
)

// FromSpec compiles a declarative experiment document into a runnable
// Definition. The document is validated eagerly — unknown components,
// unknown fields, bad parameters and malformed expressions all surface here
// as the spec package's typed errors, before any simulation runs.
//
// The compiled definition resolves components freshly on every Base/Mutate
// call (policies and detectors are stateful), so spec-driven runs share
// nothing across variants — exactly like hand-written definitions — and the
// parallel runner stays bit-identical to the sequential one.
func FromSpec(e spec.Experiment) (Definition, error) {
	if err := e.Validate(); err != nil {
		return Definition{}, err
	}
	def := Definition{
		Name:         e.Name,
		SeriesBucket: e.SeriesBucket.D(),
		Base: func() core.Config {
			cfg, err := e.Base.Resolve()
			if err != nil {
				// Validate resolved this exact document already; failure here
				// means the registry changed under a live definition.
				panic(fmt.Sprintf("experiment: spec %q base resolution failed after validation: %v", e.Name, err))
			}
			return cfg
		},
	}
	if e.Prep != nil {
		def.Prep = prepFromSpec(*e.Prep)
	}
	if len(e.Workload) > 0 {
		def.Workload = specWorkload(e.Name, e.Factor, e.Workload)
	}
	variants, err := e.ExpandVariants()
	if err != nil {
		return Definition{}, err
	}
	if len(variants) == 0 {
		variants = []spec.Variant{{Label: "run"}}
	}
	for _, v := range variants {
		v := v
		variant := Variant{Label: v.Label, X: v.X}
		if len(v.Set) > 0 {
			// Validate the override set against the document's own base once,
			// eagerly; at run time the same overrides are applied to whatever
			// configuration the runner hands in.
			if vspec, err := e.ConfigFor(v); err != nil {
				return Definition{}, err
			} else if _, err := vspec.Resolve(); err != nil {
				return Definition{}, fmt.Errorf("spec: variant %q: %w", v.Label, err)
			}
			set := v.Set
			variant.Mutate = func(c *core.Config) {
				// Mutate the configuration it is given, not the document's
				// base: callers may wrap Definition.Base to override knobs
				// (a different seed, say) and the variant's deltas must
				// compose with that. Describing the live config through the
				// registry and re-resolving it is behavior-preserving for
				// everything a spec can express; runtime-only hooks are
				// carried across by hand.
				cs, err := spec.FromConfig(*c)
				if err != nil {
					panic(fmt.Sprintf("experiment: spec %q variant %q: describe base: %v", e.Name, v.Label, err))
				}
				if err := cs.Apply(set); err != nil {
					panic(fmt.Sprintf("experiment: spec %q variant %q: %v", e.Name, v.Label, err))
				}
				cfg, err := cs.Resolve()
				if err != nil {
					panic(fmt.Sprintf("experiment: spec %q variant %q resolution failed after validation: %v", e.Name, v.Label, err))
				}
				cfg.OS.Trace = c.OS.Trace
				cfg.OS.Capture = c.OS.Capture
				cfg.Controller.OnComplete = c.Controller.OnComplete
				*c = cfg
			}
		}
		if v.Prep != nil {
			ps := prepFromSpec(*v.Prep)
			variant.Prep = &ps
		}
		if len(v.Workload) > 0 {
			variant.Workload = specWorkload(e.Name, e.Factor, v.Workload)
		}
		def.Variants = append(def.Variants, variant)
	}
	return def, nil
}

func prepFromSpec(p spec.Prep) PrepareSpec {
	return PrepareSpec{FillDepth: p.FillDepth, AgePasses: p.AgePasses, AgeDepth: p.AgeDepth}
}

// specOf mirrors PrepareSpec back into its document form.
func (p PrepareSpec) specOf() spec.Prep {
	return spec.Prep{FillDepth: p.FillDepth, AgePasses: p.AgePasses, AgeDepth: p.AgeDepth}
}

// addSpecThreads registers a spec thread list on a stack, each thread
// dependent on after. Expressions resolve against the live stack (n, ppb,
// qd) and the experiment's scale factor; a repeated thread sees its replica
// index as i. This one loop serves both the prepare-once experiment flow
// and the CLIs' single-run barrier flow, so the two cannot drift.
func addSpecThreads(st *core.Stack, after *workload.Handle, threads []spec.Thread, factor int64) error {
	cfg := st.Config()
	env := spec.Env{
		N:   int64(st.LogicalPages()),
		PPB: int64(cfg.Controller.Geometry.PagesPerBlock),
		QD:  int64(cfg.OS.QueueDepth),
		F:   factor,
	}
	if env.QD == 0 {
		env.QD = 32 // the OS layer's runtime default
	}
	for _, t := range threads {
		env.I = 0 // i is per-thread; a prior thread's replica count must not leak
		reps, err := t.RepeatCount(env)
		if err != nil {
			return fmt.Errorf("thread %q repeat: %w", t.Type, err)
		}
		for i := 0; i < reps; i++ {
			env.I = int64(i)
			thr, err := spec.MakeThread(t, env)
			if err != nil {
				return fmt.Errorf("thread %q: %w", t.Type, err)
			}
			st.Add(thr, after)
		}
	}
	return nil
}

// specWorkload compiles a thread list into a workload registration hook.
func specWorkload(name string, factor int64, threads []spec.Thread) func(*core.Stack, *workload.Handle) {
	return func(st *core.Stack, after *workload.Handle) {
		if err := addSpecThreads(st, after, threads, factor); err != nil {
			panic(fmt.Sprintf("experiment: spec %q: %v", name, err))
		}
	}
}

// RegisterRun registers a single-run spec (the base configuration with one
// variant's preparation and workload) onto a live stack in the legacy
// in-stack barrier flow: preparation threads, a measurement barrier, then
// the measured threads. It is the CLI path for running one spec document on
// a stack the caller built — the thread registration order matches the
// flag-driven CLI exactly, so a dumped spec reproduces its run bit for bit.
func RegisterRun(e spec.Experiment, v spec.Variant, st *core.Stack) error {
	return RegisterRunHook(e, v, st, nil)
}

// RegisterRunHook is RegisterRun with a measurement-boundary hook: when
// non-nil, hook is called with the preparation barrier's handle (nil when
// the spec declares no preparation) and its return value becomes the
// dependency of the measured threads. The CLI uses it to insert a
// capture-arming thread exactly at the boundary, preserving the historical
// thread-id sequence of flag-driven recorded runs.
func RegisterRunHook(e spec.Experiment, v spec.Variant, st *core.Stack, hook func(barrier *workload.Handle) *workload.Handle) error {
	prep := e.Prep
	if v.Prep != nil {
		prep = v.Prep
	}
	var barrier *workload.Handle
	if prep != nil {
		if ps := prepFromSpec(*prep); !ps.None() {
			barrier = st.AddBarrier(ps.register(st))
		}
	}
	if hook != nil {
		barrier = hook(barrier)
	}
	threads := e.Workload
	if len(v.Workload) > 0 {
		threads = v.Workload
	}
	return addSpecThreads(st, barrier, threads, e.Factor)
}

// e13Traces memoizes the captured E13 reference trace per scale: the capture
// simulation is deterministic, so every definition — compiled-in or
// spec-driven, sequential or parallel — replays the identical stream while
// paying for at most one capture run per process.
var (
	e13Mu     sync.Mutex
	e13Traces = map[Scale]*trace.Trace{}
)

func e13Trace(s Scale) *trace.Trace {
	e13Mu.Lock()
	defer e13Mu.Unlock()
	if tr, ok := e13Traces[s]; ok {
		return tr
	}
	tr := CaptureE13Trace(s)
	e13Traces[s] = tr
	return tr
}

func init() {
	// The E13 reference workload is a first-class thread type, so the
	// trace-replay experiment is expressible as pure spec data. It lives here
	// rather than in the spec package because producing the trace means
	// running the capture simulation, which only the experiment layer knows.
	spec.Register(spec.Component{
		Kind: spec.KindThread, Name: "e13replay",
		Doc: "replay the captured E13 aged-file-system reference trace",
		Params: []spec.Param{
			{Name: "mode", Type: spec.TString, Doc: "closed | open | dependent"},
			{Name: "time_scale", Type: spec.TFloat, Doc: "trace time stretch for open/dependent (0 = 1)"},
			{Name: "depth", Type: spec.TExpr, Doc: "IOs in flight (closed loop)"},
			{Name: "scale", Type: spec.TString, Doc: "which captured reference device the trace comes from: small | full (default small)"},
		},
		Make: func(p *spec.Params) (any, error) {
			mode, err := workload.ParseReplayMode(p.Enum("mode", "closed", "closed", "open", "dependent"))
			if err != nil {
				return nil, err
			}
			// The capture device is an explicit parameter, not inferred from
			// the document's factor: the full-scale trace addresses twice the
			// logical space, so silently coupling it to f would make a
			// factor-edited document replay out-of-range LPNs.
			sc := Small
			if p.Enum("scale", "small", "small", "full") == "full" {
				sc = Full
			}
			return &workload.Replay{
				Trace:     e13Trace(sc),
				Mode:      mode,
				TimeScale: p.Float("time_scale", 0),
				Depth:     int(p.Int64("depth", 32)),
			}, nil
		},
	})
}
