package fault

import (
	"testing"

	"eagletree/internal/sim"
)

// TestRandomDeterministic: identical seeds draw identical outcome sequences;
// distinct seeds diverge. The injector sits on every program/erase, so any
// hidden global state here would break the simulator's replayability.
func TestRandomDeterministic(t *testing.T) {
	draw := func(m Model) []Outcome {
		var out []Outcome
		for i := 0; i < 2000; i++ {
			out = append(out, m.Program(i/32, sim.Time(i)))
			if i%32 == 0 {
				out = append(out, m.Erase(i/32, sim.Time(i)))
			}
		}
		return out
	}
	a := draw(NewRandom(0.01, 0.02, 0.5, 42))
	b := draw(NewRandom(0.01, 0.02, 0.5, 42))
	c := draw(NewRandom(0.01, 0.02, 0.5, 43))
	if len(a) != len(b) {
		t.Fatalf("draw lengths differ: %d vs %d", len(a), len(b))
	}
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different outcome sequences")
	}
	if !diff {
		t.Fatal("different seeds produced identical outcome sequences (suspicious for 2000 draws at 1-2% rates)")
	}
}

// TestRandomStateRoundTrip: restoring a captured State resumes the exact
// outcome sequence — the property snapshot restore leans on.
func TestRandomStateRoundTrip(t *testing.T) {
	m := NewRandom(0.05, 0.05, 0.5, 7)
	for i := 0; i < 500; i++ {
		m.Program(3, 0)
	}
	st := m.State()
	var want []Outcome
	for i := 0; i < 500; i++ {
		want = append(want, m.Program(3, 0))
	}
	m2 := NewRandom(0.05, 0.05, 0.5, 7)
	m2.RestoreState(st)
	for i, w := range want {
		if got := m2.Program(3, 0); got != w {
			t.Fatalf("draw %d after restore: %v, want %v", i, got, w)
		}
	}
}

// TestWearoutCurve: failure probability is zero below any wear, rises with
// the erase count, and past the endurance bound erases always fail and
// program failures escalate to grown-bad.
func TestWearoutCurve(t *testing.T) {
	m := NewWearout(100, 4, 1, 9)
	for i := 0; i < 1000; i++ {
		if o := m.Program(0, 0); o != OK {
			t.Fatalf("fresh block drew %v", o)
		}
		if o := m.Erase(0, 0); o != OK {
			t.Fatalf("fresh block erase drew %v", o)
		}
	}
	var mid int
	for i := 0; i < 1000; i++ {
		if m.Erase(90, 0) != OK {
			mid++
		}
	}
	if mid == 0 || mid == 1000 {
		t.Fatalf("near-endurance erase failed %d/1000 times, want a fractional rate", mid)
	}
	for i := 0; i < 100; i++ {
		if o := m.Erase(200, 0); o != EraseFail {
			t.Fatalf("past-endurance erase drew %v", o)
		}
		if o := m.Program(200, 0); o != GrownBad {
			t.Fatalf("past-endurance program drew %v, want GrownBad", o)
		}
	}
}

// TestAtOneShot: the deterministic schedule model fires exactly once, at its
// threshold, on the declared operation.
func TestAtOneShot(t *testing.T) {
	m := &At{AtEraseCount: 5, Grown: true}
	if o := m.Program(4, 0); o != OK {
		t.Fatalf("below threshold drew %v", o)
	}
	if o := m.Erase(9, 0); o != OK {
		t.Fatal("program-op model fired on an erase")
	}
	if o := m.Program(5, 0); o != GrownBad {
		t.Fatalf("at threshold drew %v, want GrownBad", o)
	}
	if o := m.Program(9, 0); o != OK {
		t.Fatalf("second trigger drew %v, want OK (one-shot)", o)
	}

	e := &At{AtTime: sim.Time(100), OnErase: true}
	if o := e.Erase(0, 99); o != OK {
		t.Fatalf("before time threshold drew %v", o)
	}
	if o := e.Erase(0, 100); o != EraseFail {
		t.Fatalf("at time threshold drew %v, want EraseFail", o)
	}
	st := e.State()
	if !st.Fired {
		t.Fatal("fired one-shot state not captured")
	}
	e2 := &At{AtTime: sim.Time(100), OnErase: true}
	e2.RestoreState(st)
	if o := e2.Erase(0, 200); o != OK {
		t.Fatalf("restored fired model drew %v, want OK", o)
	}
}
