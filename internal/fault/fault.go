// Package fault implements seeded, deterministic injection of flash
// program/erase failures and grown bad blocks.
//
// A Model is consulted by the flash array on every program and erase in the
// data region, after NAND constraint checks pass, and decides whether the
// operation fails. All randomness is drawn from a private RNG seeded from the
// model's configuration, so a (config, seed) pair fully determines the fault
// sequence — the same property the rest of the simulator guarantees. The
// RNG state (and the one-shot trigger flag of scheduled models) serializes
// into device snapshots, so prepare-once-restore-many stays bit-identical
// even when faults fired during preparation.
//
// The graceful-degradation policy — relocating failed writes, retiring
// blocks, shrinking free pools — lives above, in the controller; a Model
// only answers "does this operation fail, and does it take the block with
// it".
//
//eagletree:typederrors
package fault

import (
	"math"

	"eagletree/internal/sim"
)

// Outcome is a model's verdict for one flash operation.
type Outcome uint8

const (
	// OK lets the operation proceed normally.
	OK Outcome = iota
	// ProgramFail fails a program: the target page is burned (unusable, not
	// valid) and the write must be relocated; the block survives.
	ProgramFail
	// EraseFail fails an erase: the block is retired (grown bad). Its pages
	// hold no live data — GC migrates before erasing — so retirement loses
	// nothing.
	EraseFail
	// GrownBad fails a program and retires the block: the page is burned and
	// the block is marked bad. Live pages already written to it must be
	// migrated off by the controller.
	GrownBad
)

func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case ProgramFail:
		return "program-fail"
	case EraseFail:
		return "erase-fail"
	case GrownBad:
		return "grown-bad"
	default:
		return "Outcome(?)"
	}
}

// State is a model's serializable runtime state: the RNG vector (zero for
// deterministic-schedule models) and the one-shot trigger flag.
type State struct {
	RNG   [4]uint64
	Fired bool
}

// Model decides, per program/erase operation, whether it fails. eraseCount
// is the target block's erase count before the operation; at is the virtual
// time the operation completes. Implementations must be deterministic given
// their configuration and call sequence.
type Model interface {
	// Program is consulted before a page program (write or copyback) commits.
	// It returns OK, ProgramFail or GrownBad.
	Program(eraseCount int, at sim.Time) Outcome
	// Erase is consulted before a block erase commits. It returns OK or
	// EraseFail.
	Erase(eraseCount int, at sim.Time) Outcome
	// State snapshots the model's runtime state.
	State() State
	// RestoreState overwrites the model's runtime state with a snapshot.
	RestoreState(State)
}

// Random fails operations with fixed per-op probabilities — the simplest
// aging model: every program fails with probability PFail (escalating to a
// grown-bad retirement with conditional probability PGrown), every erase
// fails — retiring the block — with probability EFail.
type Random struct {
	// PFail is the per-program failure probability.
	PFail float64
	// EFail is the per-erase failure probability (a failed erase retires the
	// block).
	EFail float64
	// PGrown is the conditional probability that a failed program retires
	// the block instead of just burning the page.
	PGrown float64
	// Seed seeds the model's private RNG.
	Seed uint64

	rng *sim.RNG
}

// NewRandom builds a Random model with its RNG seeded from seed.
func NewRandom(pfail, efail, pgrown float64, seed uint64) *Random {
	return &Random{PFail: pfail, EFail: efail, PGrown: pgrown, Seed: seed, rng: sim.NewRNG(seed)}
}

// Program implements Model.
func (m *Random) Program(eraseCount int, at sim.Time) Outcome {
	if m.rng.Float64() >= m.PFail {
		return OK
	}
	if m.rng.Float64() < m.PGrown {
		return GrownBad
	}
	return ProgramFail
}

// Erase implements Model.
func (m *Random) Erase(eraseCount int, at sim.Time) Outcome {
	if m.rng.Float64() < m.EFail {
		return EraseFail
	}
	return OK
}

// State implements Model.
func (m *Random) State() State { return State{RNG: m.rng.State()} }

// RestoreState implements Model.
func (m *Random) RestoreState(s State) { m.rng.SetState(s.RNG) }

// Wearout fails operations with a probability that grows with the block's
// erase count — an endurance-derived curve keyed on the same scale as the
// timing set's endurance_limit parameter. The erase failure probability is
// min(1, (eraseCount/Endurance)^Shape); programs fail with ProgramFactor
// times that, escalating to a grown-bad retirement once the block is past
// its endurance limit.
type Wearout struct {
	// Endurance is the erase-count knee of the wear-out curve; set it to the
	// timing set's endurance_limit to align reports.
	Endurance int
	// Shape is the curve exponent: higher values concentrate failures closer
	// to the endurance limit.
	Shape float64
	// ProgramFactor scales the program-failure probability relative to the
	// erase-failure probability at the same wear.
	ProgramFactor float64
	// Seed seeds the model's private RNG.
	Seed uint64

	rng *sim.RNG
}

// NewWearout builds a Wearout model with its RNG seeded from seed.
func NewWearout(endurance int, shape, programFactor float64, seed uint64) *Wearout {
	return &Wearout{Endurance: endurance, Shape: shape, ProgramFactor: programFactor,
		Seed: seed, rng: sim.NewRNG(seed)}
}

// p returns the erase-failure probability at the given wear.
func (m *Wearout) p(eraseCount int) float64 {
	if m.Endurance <= 0 {
		return 0
	}
	p := math.Pow(float64(eraseCount)/float64(m.Endurance), m.Shape)
	if p > 1 {
		return 1
	}
	return p
}

// Program implements Model.
func (m *Wearout) Program(eraseCount int, at sim.Time) Outcome {
	if m.rng.Float64() >= m.ProgramFactor*m.p(eraseCount) {
		return OK
	}
	if eraseCount >= m.Endurance {
		return GrownBad
	}
	return ProgramFail
}

// Erase implements Model.
func (m *Wearout) Erase(eraseCount int, at sim.Time) Outcome {
	if m.rng.Float64() < m.p(eraseCount) {
		return EraseFail
	}
	return OK
}

// State implements Model.
func (m *Wearout) State() State { return State{RNG: m.rng.State()} }

// RestoreState implements Model.
func (m *Wearout) RestoreState(s State) { m.rng.SetState(s.RNG) }

// At fires exactly one fault at a deterministic point — the first qualifying
// operation whose block erase count reaches AtEraseCount, or whose
// completion time reaches AtTime — for reproducible single-fault
// experiments. Zero thresholds are inactive; with both set, either reached
// first triggers.
type At struct {
	// AtEraseCount triggers on the first qualifying operation whose block
	// has at least this erase count (0 = off).
	AtEraseCount int
	// AtTime triggers on the first qualifying operation completing at or
	// after this virtual time (0 = off).
	AtTime sim.Time
	// OnErase selects which operation kind the fault targets: true for the
	// erase path, false for the program path.
	OnErase bool
	// Grown escalates a triggered program failure to a grown-bad retirement.
	// Erase failures always retire the block.
	Grown bool

	fired bool
}

// triggered reports whether an operation at this wear and time trips the
// one-shot fault.
func (m *At) triggered(eraseCount int, at sim.Time) bool {
	if m.fired {
		return false
	}
	if m.AtEraseCount <= 0 && m.AtTime <= 0 {
		return false
	}
	if m.AtEraseCount > 0 && eraseCount >= m.AtEraseCount {
		return true
	}
	return m.AtTime > 0 && at >= m.AtTime
}

// Program implements Model.
func (m *At) Program(eraseCount int, at sim.Time) Outcome {
	if m.OnErase || !m.triggered(eraseCount, at) {
		return OK
	}
	m.fired = true
	if m.Grown {
		return GrownBad
	}
	return ProgramFail
}

// Erase implements Model.
func (m *At) Erase(eraseCount int, at sim.Time) Outcome {
	if !m.OnErase || !m.triggered(eraseCount, at) {
		return OK
	}
	m.fired = true
	return EraseFail
}

// State implements Model.
func (m *At) State() State { return State{Fired: m.fired} }

// RestoreState implements Model.
func (m *At) RestoreState(s State) { m.fired = s.Fired }
