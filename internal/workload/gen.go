package workload

import (
	"eagletree/internal/iface"
	"eagletree/internal/sim"
)

// pump paces a generator at a fixed IO depth: it keeps up to depth IOs in
// flight, issuing one replacement per completion, and finishes the thread
// when the generator runs dry and the last IO drains.
type pump struct {
	depth int
	dry   bool
}

func (p *pump) start(ctx *Ctx, emit func(*Ctx) bool) {
	d := p.depth
	if d <= 0 {
		d = 1
	}
	for i := 0; i < d; i++ {
		if !emit(ctx) {
			p.dry = true
			break
		}
	}
	p.settle(ctx)
}

func (p *pump) completed(ctx *Ctx, emit func(*Ctx) bool) {
	if !p.dry && !emit(ctx) {
		p.dry = true
	}
	p.settle(ctx)
}

func (p *pump) settle(ctx *Ctx) {
	if p.dry && ctx.InFlight() == 0 {
		ctx.Finish()
	}
}

// SequentialWriter writes the LPN range [From, From+Count) in ascending
// order, Loops times over (at least once), keeping Depth IOs in flight. It
// is the canonical device-preparation thread: one sequential pass over the
// whole logical space brings the SSD to a well-defined state.
type SequentialWriter struct {
	From  iface.LPN
	Count int64
	Loops int
	Depth int
	Tags  iface.Tags

	pump pump
	pos  int64
}

// Init implements Thread.
func (w *SequentialWriter) Init(ctx *Ctx) {
	w.pump.depth = w.Depth
	w.pump.start(ctx, w.emit)
}

// OnComplete implements Thread.
func (w *SequentialWriter) OnComplete(ctx *Ctx, _ *iface.Request) { w.pump.completed(ctx, w.emit) }

func (w *SequentialWriter) emit(ctx *Ctx) bool {
	loops := w.Loops
	if loops < 1 {
		loops = 1
	}
	if w.pos >= w.Count*int64(loops) {
		return false
	}
	ctx.Submit(iface.Write, w.From+iface.LPN(w.pos%w.Count), w.Tags)
	w.pos++
	return true
}

// SequentialReader reads the LPN range [From, From+Count) in ascending
// order, Loops times over, keeping Depth IOs in flight.
type SequentialReader struct {
	From  iface.LPN
	Count int64
	Loops int
	Depth int
	Tags  iface.Tags

	pump pump
	pos  int64
}

// Init implements Thread.
func (r *SequentialReader) Init(ctx *Ctx) {
	r.pump.depth = r.Depth
	r.pump.start(ctx, r.emit)
}

// OnComplete implements Thread.
func (r *SequentialReader) OnComplete(ctx *Ctx, _ *iface.Request) { r.pump.completed(ctx, r.emit) }

func (r *SequentialReader) emit(ctx *Ctx) bool {
	loops := r.Loops
	if loops < 1 {
		loops = 1
	}
	if r.pos >= r.Count*int64(loops) {
		return false
	}
	ctx.Submit(iface.Read, r.From+iface.LPN(r.pos%r.Count), r.Tags)
	r.pos++
	return true
}

// RandomWriter issues Count writes uniformly distributed over the LPN range
// [From, From+Space), keeping Depth IOs in flight — the paper's random
// preparation/aging thread and the standard overwrite stress workload.
type RandomWriter struct {
	From  iface.LPN
	Space int64
	Count int64
	Depth int
	Tags  iface.Tags

	pump pump
	done int64
}

// Init implements Thread.
func (w *RandomWriter) Init(ctx *Ctx) {
	w.pump.depth = w.Depth
	w.pump.start(ctx, w.emit)
}

// OnComplete implements Thread.
func (w *RandomWriter) OnComplete(ctx *Ctx, _ *iface.Request) { w.pump.completed(ctx, w.emit) }

func (w *RandomWriter) emit(ctx *Ctx) bool {
	if w.done >= w.Count {
		return false
	}
	w.done++
	lpn := w.From + iface.LPN(ctx.RNG().Int63()%w.Space)
	ctx.Submit(iface.Write, lpn, w.Tags)
	return true
}

// RandomReader issues Count reads uniformly distributed over the LPN range
// [From, From+Space), keeping Depth IOs in flight.
type RandomReader struct {
	From  iface.LPN
	Space int64
	Count int64
	Depth int
	Tags  iface.Tags

	pump pump
	done int64
}

// Init implements Thread.
func (r *RandomReader) Init(ctx *Ctx) {
	r.pump.depth = r.Depth
	r.pump.start(ctx, r.emit)
}

// OnComplete implements Thread.
func (r *RandomReader) OnComplete(ctx *Ctx, _ *iface.Request) { r.pump.completed(ctx, r.emit) }

func (r *RandomReader) emit(ctx *Ctx) bool {
	if r.done >= r.Count {
		return false
	}
	r.done++
	lpn := r.From + iface.LPN(ctx.RNG().Int63()%r.Space)
	ctx.Submit(iface.Read, lpn, r.Tags)
	return true
}

// ZipfWriter issues Count writes over [From, From+Space) with Zipf-skewed
// popularity: rank 0 (LPN From) is hottest. It is the hot/cold workload the
// temperature-detection and wear-leveling experiments use.
type ZipfWriter struct {
	From     iface.LPN
	Space    int64
	Count    int64
	Exponent float64 // Zipf exponent; 0 means 1.1 (strongly skewed)
	Depth    int
	Tags     iface.Tags

	// TagTemperature publishes oracle temperature tags: writes to the
	// hottest HotFraction of the space carry TempHot, the rest TempCold.
	// This is the open-interface "Temperatures" extension.
	TagTemperature bool
	HotFraction    float64 // 0 means 0.2

	// Scramble maps popularity ranks onto LPNs through a deterministic
	// permutation, scattering the hot set over the whole address space the
	// way real workloads do. Without it rank == offset, so hot pages are
	// contiguous — and any sequential fill has already segregated them
	// physically, hiding what temperature separation buys.
	Scramble bool

	pump pump
	zipf *sim.Zipf
	perm []int
	done int64
}

// Init implements Thread.
func (w *ZipfWriter) Init(ctx *Ctx) {
	exp := w.Exponent
	if exp == 0 {
		exp = 1.1
	}
	w.zipf = sim.NewZipf(ctx.RNG(), int(w.Space), exp)
	if w.Scramble {
		w.perm = ctx.RNG().Perm(int(w.Space))
	}
	w.pump.depth = w.Depth
	w.pump.start(ctx, w.emit)
}

// OnComplete implements Thread.
func (w *ZipfWriter) OnComplete(ctx *Ctx, _ *iface.Request) { w.pump.completed(ctx, w.emit) }

func (w *ZipfWriter) emit(ctx *Ctx) bool {
	if w.done >= w.Count {
		return false
	}
	w.done++
	rank := w.zipf.Next()
	tags := w.Tags
	if w.TagTemperature {
		hot := w.HotFraction
		if hot == 0 {
			hot = 0.2
		}
		if float64(rank) < hot*float64(w.Space) {
			tags.Temperature = iface.TempHot
		} else {
			tags.Temperature = iface.TempCold
		}
	}
	off := rank
	if w.perm != nil {
		off = int64(w.perm[rank])
	}
	ctx.Submit(iface.Write, w.From+iface.LPN(off), tags)
	return true
}

// ReadWriteMix issues Count IOs over [From, From+Space), each a read with
// probability ReadFraction and a write otherwise, uniformly addressed. It is
// the mixed workload of the scheduling experiments.
type ReadWriteMix struct {
	From         iface.LPN
	Space        int64
	Count        int64
	ReadFraction float64
	Depth        int
	ReadTags     iface.Tags
	WriteTags    iface.Tags

	pump pump
	done int64
}

// Init implements Thread.
func (m *ReadWriteMix) Init(ctx *Ctx) {
	m.pump.depth = m.Depth
	m.pump.start(ctx, m.emit)
}

// OnComplete implements Thread.
func (m *ReadWriteMix) OnComplete(ctx *Ctx, _ *iface.Request) { m.pump.completed(ctx, m.emit) }

func (m *ReadWriteMix) emit(ctx *Ctx) bool {
	if m.done >= m.Count {
		return false
	}
	m.done++
	lpn := m.From + iface.LPN(ctx.RNG().Int63()%m.Space)
	if ctx.RNG().Float64() < m.ReadFraction {
		ctx.Submit(iface.Read, lpn, m.ReadTags)
	} else {
		ctx.Submit(iface.Write, lpn, m.WriteTags)
	}
	return true
}

// Trimmer trims the LPN range [From, From+Count) sequentially.
type Trimmer struct {
	From  iface.LPN
	Count int64
	Depth int

	pump pump
	pos  int64
}

// Init implements Thread.
func (t *Trimmer) Init(ctx *Ctx) {
	t.pump.depth = t.Depth
	t.pump.start(ctx, t.emit)
}

// OnComplete implements Thread.
func (t *Trimmer) OnComplete(ctx *Ctx, _ *iface.Request) { t.pump.completed(ctx, t.emit) }

func (t *Trimmer) emit(ctx *Ctx) bool {
	if t.pos >= t.Count {
		return false
	}
	ctx.Trim(t.From + iface.LPN(t.pos))
	t.pos++
	return true
}
