package workload

import (
	"eagletree/internal/iface"
)

// ExternalSort follows the IO pattern of a two-phase external merge sort
// over InputPages pages of input at [From, From+InputPages), using the
// scratch area at [ScratchFrom, ScratchFrom+InputPages).
//
// Run formation reads the input sequentially in memory-sized chunks of
// RunPages and writes each sorted run to scratch. The merge phase then reads
// one page at a time from each run in round-robin (the block-granular
// approximation of a multi-way merge's consumption order) and writes the
// output sequentially back over the input area.
type ExternalSort struct {
	From        iface.LPN
	InputPages  int64
	ScratchFrom iface.LPN
	// RunPages is the in-memory chunk size. Zero means 64.
	RunPages int64
	Depth    int

	phase   int // 0: run formation, 1: merge, 2: done
	pending []pendingIO
	runPos  int64 // run formation progress (input pages consumed)
	merged  int64 // merge progress (pages written out)
	heads   []int64
}

func (e *ExternalSort) defaults() {
	if e.RunPages == 0 {
		e.RunPages = 64
	}
}

// Init implements Thread.
func (e *ExternalSort) Init(ctx *Ctx) {
	e.defaults()
	d := e.Depth
	if d <= 0 {
		d = 1
	}
	for i := 0; i < d; i++ {
		if !e.emit(ctx) {
			break
		}
	}
	e.settle(ctx)
}

// OnComplete implements Thread.
func (e *ExternalSort) OnComplete(ctx *Ctx, _ *iface.Request) {
	e.emit(ctx)
	e.settle(ctx)
}

func (e *ExternalSort) settle(ctx *Ctx) {
	if e.phase == 2 && len(e.pending) == 0 && ctx.InFlight() == 0 {
		ctx.Finish()
	}
}

func (e *ExternalSort) emit(ctx *Ctx) bool {
	for len(e.pending) == 0 {
		if !e.plan() {
			return false
		}
	}
	io := e.pending[0]
	e.pending = e.pending[1:]
	ctx.Submit(io.t, io.lpn, io.tags)
	return true
}

// plan queues the next batch of IOs, returning false when the sort is done.
func (e *ExternalSort) plan() bool {
	switch e.phase {
	case 0:
		if e.runPos >= e.InputPages {
			e.phase = 1
			nRuns := (e.InputPages + e.RunPages - 1) / e.RunPages
			e.heads = make([]int64, nRuns)
			for i := range e.heads {
				e.heads[i] = int64(i) * e.RunPages
			}
			return e.plan()
		}
		// One chunk: read RunPages in, write the sorted run out.
		n := e.RunPages
		if e.runPos+n > e.InputPages {
			n = e.InputPages - e.runPos
		}
		for i := int64(0); i < n; i++ {
			e.pending = append(e.pending, pendingIO{t: iface.Read, lpn: e.From + iface.LPN(e.runPos+i)})
		}
		for i := int64(0); i < n; i++ {
			e.pending = append(e.pending, pendingIO{t: iface.Write, lpn: e.ScratchFrom + iface.LPN(e.runPos+i)})
		}
		e.runPos += n
		return true
	case 1:
		if e.merged >= e.InputPages {
			e.phase = 2
			return false
		}
		// Round-robin one page from each non-exhausted run, then write the
		// same number of output pages.
		var batch int64
		for i := range e.heads {
			limit := int64(i)*e.RunPages + e.RunPages
			if limit > e.InputPages {
				limit = e.InputPages
			}
			if e.heads[i] < limit {
				e.pending = append(e.pending, pendingIO{t: iface.Read, lpn: e.ScratchFrom + iface.LPN(e.heads[i])})
				e.heads[i]++
				batch++
			}
		}
		for i := int64(0); i < batch; i++ {
			e.pending = append(e.pending, pendingIO{t: iface.Write, lpn: e.From + iface.LPN(e.merged+i)})
		}
		e.merged += batch
		return batch > 0
	default:
		return false
	}
}
