package workload

import (
	"eagletree/internal/iface"
)

// LSMInsert follows the IO pattern of LSM-tree insertions — the workload the
// paper's abstract names. Every insert appends one page to the write-ahead
// log (a circular region); every MemtablePages inserts the memtable flushes
// as one sorted run written sequentially to level 0; every Fanout flushes
// the level-0 runs are compacted: read them all back, write the merged run
// to level 1, and trim the dead level-0 runs.
//
// The layout carves the region [From, From+Space) into WAL, level-0 and
// level-1 areas. Compactions interleave with foreground inserts exactly like
// a real LSM engine's background work, making this thread a natural probe of
// how internal SSD operations (GC) stack with application-internal ones
// (compaction).
type LSMInsert struct {
	From  iface.LPN
	Space int64
	// Inserts is the total number of inserted pages.
	Inserts int64
	// MemtablePages is the flush threshold (run size). Zero means 64.
	MemtablePages int64
	// Fanout is how many level-0 runs trigger a compaction. Zero means 4.
	Fanout int
	Depth  int

	// TagPriority marks WAL appends high-priority through the open
	// interface: commit latency matters, background IO does not.
	TagPriority bool

	pump     pump
	inserted int64
	walPos   int64
	l0Runs   []int64 // start offsets (within L0 area) of live runs
	l0Next   int64   // bump pointer within the L0 area
	l1Next   int64   // bump pointer within the L1 area
	pending  []pendingIO
}

func (l *LSMInsert) walSize() int64 { return l.Space / 8 }
func (l *LSMInsert) l0Size() int64  { return l.Space / 4 }

func (l *LSMInsert) defaults() {
	if l.MemtablePages == 0 {
		l.MemtablePages = 64
	}
	if l.Fanout == 0 {
		l.Fanout = 4
	}
}

// Init implements Thread.
func (l *LSMInsert) Init(ctx *Ctx) {
	l.defaults()
	l.pump.depth = l.Depth
	l.pump.start(ctx, l.emit)
}

// OnComplete implements Thread.
func (l *LSMInsert) OnComplete(ctx *Ctx, _ *iface.Request) { l.pump.completed(ctx, l.emit) }

func (l *LSMInsert) emit(ctx *Ctx) bool {
	for len(l.pending) == 0 {
		if l.inserted >= l.Inserts {
			return false
		}
		l.planInsert()
	}
	io := l.pending[0]
	l.pending = l.pending[1:]
	ctx.Submit(io.t, io.lpn, io.tags)
	return true
}

// planInsert queues the IOs for one insert: the WAL append, plus any flush
// and compaction it triggers.
func (l *LSMInsert) planInsert() {
	l.inserted++
	var walTags iface.Tags
	if l.TagPriority {
		walTags.Priority = iface.PriorityHigh
	}
	l.pending = append(l.pending, pendingIO{
		t:    iface.Write,
		lpn:  l.From + iface.LPN(l.walPos%l.walSize()),
		tags: walTags,
	})
	l.walPos++
	if l.inserted%l.MemtablePages == 0 {
		l.planFlush()
	}
}

// planFlush writes one run sequentially into the level-0 area and triggers
// compaction at the fanout threshold.
func (l *LSMInsert) planFlush() {
	if l.l0Next+l.MemtablePages > l.l0Size() {
		l.l0Next = 0
	}
	base := l.From + iface.LPN(l.walSize()+l.l0Next)
	for i := int64(0); i < l.MemtablePages; i++ {
		l.pending = append(l.pending, pendingIO{t: iface.Write, lpn: base + iface.LPN(i)})
	}
	l.l0Runs = append(l.l0Runs, l.l0Next)
	l.l0Next += l.MemtablePages
	if len(l.l0Runs) >= l.Fanout {
		l.planCompaction()
	}
}

// planCompaction reads every level-0 run, writes the merged run to level 1,
// and trims the dead level-0 pages.
func (l *LSMInsert) planCompaction() {
	l0Base := l.From + iface.LPN(l.walSize())
	l1Base := l.From + iface.LPN(l.walSize()+l.l0Size())
	l1Size := l.Space - l.walSize() - l.l0Size()

	merged := int64(len(l.l0Runs)) * l.MemtablePages
	for _, run := range l.l0Runs {
		for i := int64(0); i < l.MemtablePages; i++ {
			l.pending = append(l.pending, pendingIO{t: iface.Read, lpn: l0Base + iface.LPN(run+i)})
		}
	}
	if l.l1Next+merged > l1Size {
		l.l1Next = 0
	}
	for i := int64(0); i < merged; i++ {
		l.pending = append(l.pending, pendingIO{t: iface.Write, lpn: l1Base + iface.LPN(l.l1Next+i)})
	}
	l.l1Next += merged
	for _, run := range l.l0Runs {
		for i := int64(0); i < l.MemtablePages; i++ {
			l.pending = append(l.pending, pendingIO{t: iface.Trim, lpn: l0Base + iface.LPN(run+i)})
		}
	}
	l.l0Runs = l.l0Runs[:0]
}
