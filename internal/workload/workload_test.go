package workload

import (
	"testing"

	"eagletree/internal/iface"
	"eagletree/internal/osched"
	"eagletree/internal/sim"
)

// memDevice is an instant-ish fake SSD: every request completes after a
// fixed latency, and the device records everything it saw.
type memDevice struct {
	eng     *sim.Engine
	latency sim.Duration
	done    func(*iface.Request)

	reads, writes, trims int
	byType               map[iface.ReqType][]iface.LPN
}

func (d *memDevice) Submit(r *iface.Request) {
	if d.byType == nil {
		d.byType = make(map[iface.ReqType][]iface.LPN)
	}
	switch r.Type {
	case iface.Read:
		d.reads++
	case iface.Write:
		d.writes++
	case iface.Trim:
		d.trims++
	}
	d.byType[r.Type] = append(d.byType[r.Type], r.LPN)
	at := d.eng.Now().Add(d.latency)
	d.eng.Schedule(at, func() {
		r.Completed = at
		d.done(r)
	})
}

type wlRig struct {
	eng    *sim.Engine
	dev    *memDevice
	os     *osched.OS
	bus    *iface.Bus
	runner *Runner
}

func newWLRig(t *testing.T, depth int) *wlRig {
	t.Helper()
	r := &wlRig{eng: sim.NewEngine(), bus: iface.NewBus()}
	r.dev = &memDevice{eng: r.eng, latency: 50 * sim.Microsecond}
	os, err := osched.New(r.eng, r.dev, osched.Config{QueueDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	r.dev.done = os.Completed
	r.os = os
	r.runner = NewRunner(r.eng, os, r.bus, 1)
	return r
}

func (r *wlRig) run(t *testing.T) {
	t.Helper()
	r.runner.Start()
	r.eng.RunUntilIdle()
	if !r.runner.Done() {
		t.Fatalf("%d threads never finished", r.runner.Active())
	}
}

func TestSequentialWriterCoversRangeInOrder(t *testing.T) {
	r := newWLRig(t, 8)
	r.runner.Add(&SequentialWriter{From: 10, Count: 20, Depth: 4})
	r.run(t)
	if r.dev.writes != 20 {
		t.Fatalf("wrote %d pages, want 20", r.dev.writes)
	}
	for i, lpn := range r.dev.byType[iface.Write] {
		if lpn != iface.LPN(10+i) {
			t.Fatalf("write %d hit lpn %d, want %d", i, lpn, 10+i)
		}
	}
}

func TestSequentialWriterLoops(t *testing.T) {
	r := newWLRig(t, 4)
	r.runner.Add(&SequentialWriter{From: 0, Count: 5, Loops: 3, Depth: 2})
	r.run(t)
	if r.dev.writes != 15 {
		t.Fatalf("wrote %d pages, want 15 (5 x 3 loops)", r.dev.writes)
	}
}

func TestSequentialReaderCoversRange(t *testing.T) {
	r := newWLRig(t, 8)
	r.runner.Add(&SequentialReader{From: 0, Count: 12, Depth: 3})
	r.run(t)
	if r.dev.reads != 12 {
		t.Fatalf("read %d pages, want 12", r.dev.reads)
	}
}

func TestRandomWriterStaysInSpace(t *testing.T) {
	r := newWLRig(t, 8)
	r.runner.Add(&RandomWriter{From: 100, Space: 50, Count: 200, Depth: 8})
	r.run(t)
	if r.dev.writes != 200 {
		t.Fatalf("wrote %d, want 200", r.dev.writes)
	}
	for _, lpn := range r.dev.byType[iface.Write] {
		if lpn < 100 || lpn >= 150 {
			t.Fatalf("write outside [100,150): %d", lpn)
		}
	}
}

func TestRandomReaderStaysInSpace(t *testing.T) {
	r := newWLRig(t, 8)
	r.runner.Add(&RandomReader{From: 0, Space: 64, Count: 100, Depth: 8})
	r.run(t)
	if r.dev.reads != 100 {
		t.Fatalf("read %d, want 100", r.dev.reads)
	}
	for _, lpn := range r.dev.byType[iface.Read] {
		if lpn < 0 || lpn >= 64 {
			t.Fatalf("read outside space: %d", lpn)
		}
	}
}

func TestZipfWriterIsSkewed(t *testing.T) {
	r := newWLRig(t, 8)
	r.runner.Add(&ZipfWriter{From: 0, Space: 1000, Count: 2000, Exponent: 1.2, Depth: 8})
	r.run(t)
	if r.dev.writes != 2000 {
		t.Fatalf("wrote %d, want 2000", r.dev.writes)
	}
	// The hottest 10% of the space must absorb well over 10% of writes.
	hot := 0
	for _, lpn := range r.dev.byType[iface.Write] {
		if lpn < 100 {
			hot++
		}
	}
	if hot < 800 {
		t.Fatalf("hottest 10%% got %d of 2000 writes; zipf skew missing", hot)
	}
}

// tagCountingDevice counts request temperatures.
type tagCountingDevice struct {
	memDevice
	hot, cold int
}

func (d *tagCountingDevice) Submit(r *iface.Request) {
	switch r.Tags.Temperature {
	case iface.TempHot:
		d.hot++
	case iface.TempCold:
		d.cold++
	}
	d.memDevice.Submit(r)
}

func TestZipfWriterTemperatureTagging(t *testing.T) {
	eng := sim.NewEngine()
	dev := &tagCountingDevice{memDevice: memDevice{eng: eng, latency: 10 * sim.Microsecond}}
	os, err := osched.New(eng, dev, osched.Config{QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	dev.done = os.Completed
	runner := NewRunner(eng, os, iface.NewBus(), 7)
	runner.Add(&ZipfWriter{From: 0, Space: 100, Count: 500, Depth: 4,
		TagTemperature: true, HotFraction: 0.2})
	runner.Start()
	eng.RunUntilIdle()
	if dev.hot+dev.cold != 500 {
		t.Fatalf("tagged %d+%d of 500 writes", dev.hot, dev.cold)
	}
	if dev.hot <= dev.cold {
		t.Fatalf("hot=%d cold=%d: zipf should concentrate writes on the hot fraction", dev.hot, dev.cold)
	}
}

func TestReadWriteMixRatio(t *testing.T) {
	r := newWLRig(t, 8)
	r.runner.Add(&ReadWriteMix{From: 0, Space: 100, Count: 1000, ReadFraction: 0.7, Depth: 8})
	r.run(t)
	if r.dev.reads+r.dev.writes != 1000 {
		t.Fatalf("%d+%d IOs, want 1000", r.dev.reads, r.dev.writes)
	}
	frac := float64(r.dev.reads) / 1000
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("read fraction %.2f, want ~0.7", frac)
	}
}

func TestTrimmerTrims(t *testing.T) {
	r := newWLRig(t, 4)
	r.runner.Add(&Trimmer{From: 5, Count: 10, Depth: 2})
	r.run(t)
	if r.dev.trims != 10 {
		t.Fatalf("trimmed %d, want 10", r.dev.trims)
	}
}

func TestDependenciesOrderThreads(t *testing.T) {
	r := newWLRig(t, 4)
	// Writer must fully finish before the reader starts: every read must be
	// submitted after the last write completes.
	w := r.runner.Add(&SequentialWriter{From: 0, Count: 10, Depth: 4})
	r.runner.Add(&SequentialReader{From: 0, Count: 10, Depth: 4}, w)
	r.run(t)
	if r.dev.writes != 10 || r.dev.reads != 10 {
		t.Fatalf("writes=%d reads=%d", r.dev.writes, r.dev.reads)
	}
	// Device records arrival order: all writes must precede all reads.
	order := append([]iface.LPN{}, r.dev.byType[iface.Write]...)
	_ = order
	// Stronger check: thread 1 (reader) saw its first submission only after
	// thread 0 finished — verified by osched stats being sequential; the
	// reads arrived after the writes because the device log for writes was
	// complete before any read. memDevice appends per type, so compare via
	// counts at first read instead:
	if !w.Done() {
		t.Fatal("dependency handle not marked done")
	}
}

// orderDevice records the global arrival order of request types.
type orderDevice struct {
	memDevice
	arrival []iface.ReqType
}

func (d *orderDevice) Submit(r *iface.Request) {
	d.arrival = append(d.arrival, r.Type)
	d.memDevice.Submit(r)
}

func TestDependencyStrictOrdering(t *testing.T) {
	eng := sim.NewEngine()
	dev := &orderDevice{memDevice: memDevice{eng: eng, latency: 10 * sim.Microsecond}}
	os, err := osched.New(eng, dev, osched.Config{QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	dev.done = os.Completed
	runner := NewRunner(eng, os, iface.NewBus(), 1)
	w := runner.Add(&SequentialWriter{From: 0, Count: 10, Depth: 4})
	runner.Add(&SequentialReader{From: 0, Count: 10, Depth: 4}, w)
	runner.Start()
	eng.RunUntilIdle()
	lastWrite, firstRead := -1, -1
	for i, t2 := range dev.arrival {
		if t2 == iface.Write {
			lastWrite = i
		}
		if t2 == iface.Read && firstRead == -1 {
			firstRead = i
		}
	}
	if firstRead < lastWrite {
		t.Fatalf("read arrived at %d before last write at %d: dependency violated", firstRead, lastWrite)
	}
}

func TestDiamondDependencies(t *testing.T) {
	r := newWLRig(t, 8)
	a := r.runner.Add(&SequentialWriter{From: 0, Count: 4, Depth: 2})
	b := r.runner.Add(&SequentialWriter{From: 10, Count: 4, Depth: 2}, a)
	c := r.runner.Add(&SequentialWriter{From: 20, Count: 4, Depth: 2}, a)
	r.runner.Add(&SequentialReader{From: 0, Count: 4, Depth: 2}, b, c)
	r.run(t)
	if r.dev.writes != 12 || r.dev.reads != 4 {
		t.Fatalf("writes=%d reads=%d", r.dev.writes, r.dev.reads)
	}
}

func TestOnAllDoneFires(t *testing.T) {
	r := newWLRig(t, 4)
	fired := false
	r.runner.OnAllDone = func() { fired = true }
	r.runner.Add(&SequentialWriter{From: 0, Count: 4, Depth: 2})
	r.run(t)
	if !fired {
		t.Fatal("OnAllDone never fired")
	}
}

func TestEmptyThreadFinishesImmediately(t *testing.T) {
	r := newWLRig(t, 4)
	r.runner.Add(&SequentialWriter{From: 0, Count: 0, Depth: 2})
	r.run(t)
	if !r.runner.Done() {
		t.Fatal("zero-IO thread hung the runner")
	}
}

func TestFileSystemLifecycle(t *testing.T) {
	r := newWLRig(t, 8)
	fs := &FileSystem{From: 0, Space: 4096, Ops: 200, Depth: 8, MeanFilePages: 8}
	r.runner.Add(fs)
	r.run(t)
	if r.dev.writes == 0 {
		t.Fatal("file system never wrote")
	}
	if r.dev.reads == 0 {
		t.Fatal("file system never read (overwrites do read-modify-write)")
	}
	if r.dev.trims == 0 {
		t.Fatal("file system never deleted a file")
	}
	for _, lpn := range r.dev.byType[iface.Write] {
		if lpn < 0 || lpn >= 4096 {
			t.Fatalf("write outside fs space: %d", lpn)
		}
	}
}

func TestFileSystemLocalityHints(t *testing.T) {
	r := newWLRig(t, 8)
	var hints int
	r.bus.Subscribe("locality", func(iface.Message) { hints++ })
	r.runner.Add(&FileSystem{From: 0, Space: 4096, Ops: 50, Depth: 4, TagLocality: true})
	r.run(t)
	if hints == 0 {
		t.Fatal("no locality hints published")
	}
}

func TestGraceJoinIOCounts(t *testing.T) {
	r := newWLRig(t, 8)
	g := &GraceJoin{
		RFrom: 0, RPages: 64,
		SFrom: 100, SPages: 128,
		PartFrom: 300, Partitions: 4, Depth: 8,
	}
	r.runner.Add(g)
	r.run(t)
	// Partitioning reads R+S and writes R+S; probe reads R+S again.
	wantReads := int(64 + 128 + 64 + 128)
	if r.dev.reads != wantReads {
		t.Fatalf("reads=%d, want %d", r.dev.reads, wantReads)
	}
	if r.dev.writes != 64+128 {
		t.Fatalf("writes=%d, want %d", r.dev.writes, 64+128)
	}
}

func TestGraceJoinPhaseOrdering(t *testing.T) {
	eng := sim.NewEngine()
	dev := &orderDevice{memDevice: memDevice{eng: eng, latency: 10 * sim.Microsecond}}
	os, err := osched.New(eng, dev, osched.Config{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	dev.done = os.Completed
	runner := NewRunner(eng, os, iface.NewBus(), 1)
	runner.Add(&GraceJoin{RFrom: 0, RPages: 16, SFrom: 50, SPages: 16, PartFrom: 100, Partitions: 2, Depth: 4})
	runner.Start()
	eng.RunUntilIdle()
	// After the last write, only probe reads may follow.
	lastWrite := -1
	for i, t2 := range dev.arrival {
		if t2 == iface.Write {
			lastWrite = i
		}
	}
	for i := lastWrite + 1; i < len(dev.arrival); i++ {
		if dev.arrival[i] != iface.Read {
			t.Fatalf("non-read after final partition write at %d", i)
		}
	}
	if lastWrite == -1 || lastWrite == len(dev.arrival)-1 {
		t.Fatal("no probe phase observed")
	}
}

func TestLSMInsertCompactionHappens(t *testing.T) {
	r := newWLRig(t, 8)
	lsm := &LSMInsert{From: 0, Space: 8192, Inserts: 1024, MemtablePages: 32, Fanout: 4, Depth: 8}
	r.runner.Add(lsm)
	r.run(t)
	// 1024 WAL writes + 32 flushes x 32 pages + compactions.
	if r.dev.writes <= 1024+1024 {
		t.Fatalf("writes=%d: compaction writes missing (WAL+flush alone = 2048)", r.dev.writes)
	}
	if r.dev.reads == 0 {
		t.Fatal("no compaction reads")
	}
	if r.dev.trims == 0 {
		t.Fatal("compaction never trimmed dead runs")
	}
}

func TestLSMPriorityTags(t *testing.T) {
	eng := sim.NewEngine()
	dev := &prioCountingDevice{memDevice: memDevice{eng: eng, latency: 10 * sim.Microsecond}}
	os, err := osched.New(eng, dev, osched.Config{QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	dev.done = os.Completed
	runner := NewRunner(eng, os, iface.NewBus(), 1)
	runner.Add(&LSMInsert{From: 0, Space: 4096, Inserts: 128, MemtablePages: 32, Depth: 4, TagPriority: true})
	runner.Start()
	eng.RunUntilIdle()
	if dev.high != 128 {
		t.Fatalf("high-priority writes=%d, want 128 WAL appends", dev.high)
	}
}

type prioCountingDevice struct {
	memDevice
	high int
}

func (d *prioCountingDevice) Submit(r *iface.Request) {
	if r.Tags.Priority == iface.PriorityHigh {
		d.high++
	}
	d.memDevice.Submit(r)
}

func TestExternalSortIOCounts(t *testing.T) {
	r := newWLRig(t, 8)
	r.runner.Add(&ExternalSort{From: 0, InputPages: 256, ScratchFrom: 1000, RunPages: 64, Depth: 8})
	r.run(t)
	// Run formation: 256 reads + 256 writes. Merge: 256 reads + 256 writes.
	if r.dev.reads != 512 {
		t.Fatalf("reads=%d, want 512", r.dev.reads)
	}
	if r.dev.writes != 512 {
		t.Fatalf("writes=%d, want 512", r.dev.writes)
	}
}

func TestExternalSortUnevenLastRun(t *testing.T) {
	r := newWLRig(t, 4)
	r.runner.Add(&ExternalSort{From: 0, InputPages: 100, ScratchFrom: 500, RunPages: 32, Depth: 4})
	r.run(t)
	if r.dev.reads != 200 || r.dev.writes != 200 {
		t.Fatalf("reads=%d writes=%d, want 200/200", r.dev.reads, r.dev.writes)
	}
}

func TestDeterministicWorkloads(t *testing.T) {
	trace := func() []iface.LPN {
		r := newWLRig(t, 8)
		r.runner.Add(&RandomWriter{From: 0, Space: 500, Count: 300, Depth: 8})
		r.runner.Add(&ZipfWriter{From: 500, Space: 500, Count: 300, Depth: 8})
		r.run(t)
		return r.dev.byType[iface.Write]
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("traces differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
