package workload

import (
	"testing"
	"testing/quick"
)

// TestFSAllocatorConservation: under any alloc/release sequence, free spans
// stay sorted, coalesced, in-bounds, and account (with live extents) for
// exactly the whole space.
func TestFSAllocatorConservation(t *testing.T) {
	const space = 1 << 12
	f := func(ops []struct {
		Alloc bool
		Size  uint8
		Pick  uint8
	}) bool {
		fs := &FileSystem{Space: space}
		fs.free = []span{{from: 0, pages: space}}
		type live struct{ from, pages int64 }
		var lives []live

		for _, op := range ops {
			if op.Alloc {
				size := int64(op.Size) + 1
				from, ok := fs.alloc(size)
				if ok {
					lives = append(lives, live{from, size})
				}
			} else if len(lives) > 0 {
				i := int(op.Pick) % len(lives)
				fs.release(lives[i].from, lives[i].pages)
				lives = append(lives[:i], lives[i+1:]...)
			}
		}

		// Invariant 1: sorted, coalesced, in bounds.
		var freeTotal int64
		for i, sp := range fs.free {
			if sp.pages <= 0 || sp.from < 0 || sp.from+sp.pages > space {
				t.Logf("bad span %+v", sp)
				return false
			}
			if i > 0 {
				prev := fs.free[i-1]
				if prev.from+prev.pages >= sp.from {
					t.Logf("uncoalesced or unsorted: %+v then %+v", prev, sp)
					return false
				}
			}
			freeTotal += sp.pages
		}
		// Invariant 2: conservation.
		var liveTotal int64
		for _, l := range lives {
			liveTotal += l.pages
		}
		if freeTotal+liveTotal != space {
			t.Logf("free %d + live %d != %d", freeTotal, liveTotal, space)
			return false
		}
		// Invariant 3: live extents are disjoint from free spans.
		for _, l := range lives {
			for _, sp := range fs.free {
				if l.from < sp.from+sp.pages && sp.from < l.from+l.pages {
					t.Logf("live %+v overlaps free %+v", l, sp)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestFSAllocatorFirstFit: allocation returns the lowest-addressed fit.
func TestFSAllocatorFirstFit(t *testing.T) {
	fs := &FileSystem{Space: 100}
	fs.free = []span{{from: 0, pages: 100}}
	a, _ := fs.alloc(10) // [0,10)
	b, _ := fs.alloc(10) // [10,20)
	c, _ := fs.alloc(10) // [20,30)
	_ = c
	fs.release(a, 10)
	fs.release(b, 10) // coalesces to [0,20)
	if got := len(fs.free); got != 2 {
		t.Fatalf("free spans = %d, want 2 ([0,20) and tail)", got)
	}
	d, ok := fs.alloc(15)
	if !ok || d != 0 {
		t.Fatalf("first fit returned %d, want 0", d)
	}
}
