package workload

import "eagletree/internal/iface"

// Func is a thread defined by plain functions: F runs at Init (and may issue
// IOs), and OnDone, if set, handles completions. A Func that issues nothing
// finishes immediately, which makes it the natural barrier between
// preparation and measurement: register it dependent on the preparation
// threads and reset statistics inside F.
type Func struct {
	F      func(ctx *Ctx)
	OnDone func(ctx *Ctx, r *iface.Request)
}

// Init implements Thread.
func (f *Func) Init(ctx *Ctx) {
	if f.F != nil {
		f.F(ctx)
	}
}

// OnComplete implements Thread.
func (f *Func) OnComplete(ctx *Ctx, r *iface.Request) {
	if f.OnDone != nil {
		f.OnDone(ctx, r)
		return
	}
	if ctx.InFlight() == 0 {
		ctx.Finish()
	}
}
