package workload

import (
	"eagletree/internal/iface"
)

// GraceJoin follows the IO pattern of a Grace hash join between relation R
// at [RFrom, RFrom+RPages) and relation S at [SFrom, SFrom+SPages), with the
// partition area at [PartFrom, PartFrom+RPages+SPages).
//
// Phase 1 (partition R): read R sequentially; every read completion hashes
// the tuple block to one of Partitions output buckets and writes it there.
// Phase 2 (partition S): the same over S. Phase 3 (probe): for each
// partition, read the R bucket then the S bucket sequentially.
//
// Each phase keeps Depth reads in flight, and partition writes ride on read
// completions — so deeper queues expose more of the SSD's parallelism, which
// is exactly the application-level question the paper poses ("how can an
// algorithm leverage SSD internal parallelism?").
type GraceJoin struct {
	RFrom, SFrom iface.LPN
	RPages       int64
	SPages       int64
	PartFrom     iface.LPN
	Partitions   int
	Depth        int

	phase    int // 0: partition R, 1: partition S, 2: probe, 3: done
	readPos  int64
	bucketW  []int64 // written pages per bucket
	bucketR  int     // probe: current bucket
	probePos int64   // probe: page within current bucket region
	inPhase  int     // IOs in flight belonging to the current phase
}

// Init implements Thread.
func (g *GraceJoin) Init(ctx *Ctx) {
	if g.Partitions <= 0 {
		g.Partitions = 4
	}
	g.bucketW = make([]int64, g.Partitions)
	g.refill(ctx)
}

// OnComplete implements Thread.
func (g *GraceJoin) OnComplete(ctx *Ctx, r *iface.Request) {
	if r.Type == iface.Read && g.phase < 2 {
		// A partition-phase read completed: write its block to a bucket.
		// The write inherits the read's in-phase slot.
		bucket := int(uint64(r.LPN) % uint64(g.Partitions))
		g.bucketW[bucket]++
		g.inPhase--
		g.writeBucket(ctx, bucket)
		return
	}
	// A partition write or a probe read completed.
	g.inPhase--
	g.refill(ctx)
	if g.phase == 3 && ctx.InFlight() == 0 {
		ctx.Finish()
	}
}

// refill tops the current phase back up to the configured depth — in
// particular re-priming full depth after a phase transition, so the probe
// phase runs as parallel as the partitioning phases.
func (g *GraceJoin) refill(ctx *Ctx) {
	d := g.Depth
	if d <= 0 {
		d = 1
	}
	for g.inPhase < d {
		if !g.emitRead(ctx) {
			break
		}
	}
}

// bucketBase returns the partition area offset of one bucket. Each bucket
// gets a contiguous region of ceil((RPages+SPages)/Partitions) pages, so the
// partition area must be at least Partitions times that; consecutive-LPN
// hashing keeps buckets within one page of even.
func (g *GraceJoin) bucketBase(bucket int) iface.LPN {
	per := (g.RPages + g.SPages + int64(g.Partitions) - 1) / int64(g.Partitions)
	return g.PartFrom + iface.LPN(int64(bucket)*per)
}

func (g *GraceJoin) writeBucket(ctx *Ctx, bucket int) {
	off := g.bucketW[bucket] - 1
	ctx.Write(g.bucketBase(bucket) + iface.LPN(off))
	g.inPhase++
}

// emitRead issues the next read of the current phase, advancing phases as
// they exhaust. It returns false when the join is complete.
func (g *GraceJoin) emitRead(ctx *Ctx) bool {
	for {
		switch g.phase {
		case 0:
			if g.readPos < g.RPages {
				ctx.Read(g.RFrom + iface.LPN(g.readPos))
				g.readPos++
				g.inPhase++
				return true
			}
			if g.inPhase > 0 {
				return false // drain phase 0 writes before S
			}
			g.phase, g.readPos = 1, 0
		case 1:
			if g.readPos < g.SPages {
				ctx.Read(g.SFrom + iface.LPN(g.readPos))
				g.readPos++
				g.inPhase++
				return true
			}
			if g.inPhase > 0 {
				return false
			}
			g.phase = 2
			g.bucketR, g.probePos = 0, 0
		case 2:
			for g.bucketR < g.Partitions && g.probePos >= g.bucketW[g.bucketR] {
				g.bucketR++
				g.probePos = 0
			}
			if g.bucketR >= g.Partitions {
				g.phase = 3
				return false
			}
			ctx.Read(g.bucketBase(g.bucketR) + iface.LPN(g.probePos))
			g.probePos++
			g.inPhase++
			return true
		default:
			return false
		}
	}
}
