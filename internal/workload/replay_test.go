package workload

import (
	"reflect"
	"testing"

	"eagletree/internal/iface"
	"eagletree/internal/osched"
	"eagletree/internal/sim"
	"eagletree/internal/trace"
)

// newReplayRig is newWLRig plus a capture on the OS layer, so tests can
// observe the replayed arrival process with timestamps.
func newReplayRig(t *testing.T, depth int) (*wlRig, *trace.Capture) {
	t.Helper()
	cap := trace.NewCapture()
	r := &wlRig{eng: sim.NewEngine(), bus: iface.NewBus()}
	r.dev = &memDevice{eng: r.eng, latency: 50 * sim.Microsecond}
	os, err := osched.New(r.eng, r.dev, osched.Config{QueueDepth: depth, Capture: cap})
	if err != nil {
		t.Fatal(err)
	}
	r.dev.done = os.Completed
	r.os = os
	r.runner = NewRunner(r.eng, os, r.bus, 1)
	return r, cap
}

func stepTrace(n int, gap sim.Duration) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		op := iface.Write
		if i%3 == 0 {
			op = iface.Read
		}
		tr.Records = append(tr.Records, trace.Record{
			At: sim.Time(i) * sim.Time(gap), Thread: 1, Op: op,
			LPN: iface.LPN(i * 7 % 64), Size: 1,
		})
	}
	return tr
}

func TestReplayClosedLoopPreservesOrder(t *testing.T) {
	tr := stepTrace(40, sim.Millisecond)
	r := newWLRig(t, 32)
	r.runner.Add(&Replay{Trace: tr, Mode: ReplayClosedLoop, Depth: 4})
	r.run(t)

	var wantReads, wantWrites []iface.LPN
	for _, rec := range tr.Records {
		if rec.Op == iface.Read {
			wantReads = append(wantReads, rec.LPN)
		} else {
			wantWrites = append(wantWrites, rec.LPN)
		}
	}
	if !reflect.DeepEqual(r.dev.byType[iface.Read], wantReads) {
		t.Fatalf("reads out of order:\ngot  %v\nwant %v", r.dev.byType[iface.Read], wantReads)
	}
	if !reflect.DeepEqual(r.dev.byType[iface.Write], wantWrites) {
		t.Fatalf("writes out of order:\ngot  %v\nwant %v", r.dev.byType[iface.Write], wantWrites)
	}
	// Closed-loop ignores the 1ms trace gaps: 40 IOs at depth 4 and 50us
	// device latency drain in ~40/4 * 50us, far under the trace's 39ms span.
	if end := r.eng.Now(); end > sim.Time(5*sim.Millisecond) {
		t.Fatalf("closed-loop replay took %v, should ignore trace pacing", end)
	}
}

func TestReplayOpenLoopIsTimestampFaithful(t *testing.T) {
	const gap = 200 * sim.Microsecond
	tr := stepTrace(20, gap)
	for _, scale := range []float64{1, 2} {
		r, cap := newReplayRig(t, 32)
		r.runner.Add(&Replay{Trace: tr, Mode: ReplayOpenLoop, TimeScale: scale})
		r.run(t)
		got := cap.Trace()
		if got.Len() != tr.Len() {
			t.Fatalf("scale %v: replayed %d IOs, want %d", scale, got.Len(), tr.Len())
		}
		for i, rec := range got.Records {
			want := sim.Time(float64(tr.Records[i].At) * scale)
			if rec.At != want {
				t.Fatalf("scale %v: record %d submitted at %v, want %v", scale, i, rec.At, want)
			}
		}
	}
}

func TestReplayDependentSerializes(t *testing.T) {
	const gap = 300 * sim.Microsecond
	tr := stepTrace(10, gap)
	r, cap := newReplayRig(t, 32)
	r.runner.Add(&Replay{Trace: tr, Mode: ReplayDependent})
	r.run(t)

	got := cap.Trace()
	if got.Len() != tr.Len() {
		t.Fatalf("replayed %d IOs, want %d", got.Len(), tr.Len())
	}
	// Each IO waits for its predecessor's completion (50us device latency)
	// plus the trace's 300us inter-arrival think time, so successive
	// submissions must be at least gap apart and strictly serialized.
	for i := 1; i < got.Len(); i++ {
		if d := got.Records[i].At.Sub(got.Records[i-1].At); d < sim.Duration(gap) {
			t.Fatalf("records %d..%d only %v apart, want >= %v (think time)", i-1, i, d, gap)
		}
	}
	if r.os.Stats().MaxInFlight != 1 {
		t.Fatalf("dependent replay had %d IOs in flight, want 1", r.os.Stats().MaxInFlight)
	}
}

func TestReplayExpandsMultiPageRecords(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{
		{At: 0, Op: iface.Write, LPN: 10, Size: 3},
		{At: 0, Op: iface.Read, LPN: 40, Size: 2},
	}}
	for _, mode := range []ReplayMode{ReplayClosedLoop, ReplayOpenLoop, ReplayDependent} {
		r := newWLRig(t, 8)
		r.runner.Add(&Replay{Trace: tr, Mode: mode, Depth: 2})
		r.run(t)
		if !reflect.DeepEqual(r.dev.byType[iface.Write], []iface.LPN{10, 11, 12}) {
			t.Fatalf("%v: writes %v, want [10 11 12]", mode, r.dev.byType[iface.Write])
		}
		if !reflect.DeepEqual(r.dev.byType[iface.Read], []iface.LPN{40, 41}) {
			t.Fatalf("%v: reads %v, want [40 41]", mode, r.dev.byType[iface.Read])
		}
	}
}

func TestReplayAppliesRecordedTags(t *testing.T) {
	want := iface.Tags{Priority: iface.PriorityHigh, Locality: 9, Temperature: iface.TempHot}
	tr := &trace.Trace{Records: []trace.Record{{At: 0, Op: iface.Write, LPN: 1, Size: 1, Tags: want}}}
	r, cap := newReplayRig(t, 8)
	r.runner.Add(&Replay{Trace: tr})
	r.run(t)
	if got := cap.Trace().Records[0].Tags; got != want {
		t.Fatalf("replayed tags %+v, want %+v", got, want)
	}
}

// TestReplayDefaultDepth pins the documented closed-loop default: Depth 0
// means 32, not the pump's depth-1 fallback.
func TestReplayDefaultDepth(t *testing.T) {
	r := newWLRig(t, 64)
	r.runner.Add(&Replay{Trace: stepTrace(200, sim.Microsecond)})
	r.run(t)
	if got := r.os.Stats().MaxInFlight; got != 32 {
		t.Fatalf("default-depth replay peaked at %d in flight, want 32", got)
	}
}

func TestReplayEmptyTraceFinishes(t *testing.T) {
	for _, mode := range []ReplayMode{ReplayClosedLoop, ReplayOpenLoop, ReplayDependent} {
		r := newWLRig(t, 8)
		r.runner.Add(&Replay{Trace: &trace.Trace{}, Mode: mode})
		r.run(t) // run fails the test if the thread never finishes
	}
}

// TestCaptureReplayRoundTrip is the subsystem's core promise: capturing a
// synthetic workload and replaying the trace closed-loop reproduces the
// exact same IO stream at the device.
func TestCaptureReplayRoundTrip(t *testing.T) {
	orig, cap := newReplayRig(t, 16)
	orig.runner.Add(&RandomWriter{From: 0, Space: 128, Count: 300, Depth: 8})
	orig.runner.Add(&RandomReader{From: 0, Space: 128, Count: 200, Depth: 4})
	orig.run(t)
	tr := cap.Trace()
	if tr.Len() != 500 {
		t.Fatalf("captured %d records, want 500", tr.Len())
	}

	rep := newWLRig(t, 16)
	rep.runner.Add(&Replay{Trace: tr, Mode: ReplayClosedLoop, Depth: 16})
	rep.run(t)
	if !reflect.DeepEqual(orig.dev.byType, rep.dev.byType) {
		t.Fatal("replayed device stream differs from the captured run")
	}
}

// TestReplayDeterministic replays one trace twice in every mode and demands
// bit-identical device streams and end times.
func TestReplayDeterministic(t *testing.T) {
	tr := stepTrace(100, 80*sim.Microsecond)
	for _, mode := range []ReplayMode{ReplayClosedLoop, ReplayOpenLoop, ReplayDependent} {
		a := newWLRig(t, 16)
		a.runner.Add(&Replay{Trace: tr, Mode: mode, Depth: 8, TimeScale: 1.5})
		a.run(t)
		b := newWLRig(t, 16)
		b.runner.Add(&Replay{Trace: tr, Mode: mode, Depth: 8, TimeScale: 1.5})
		b.run(t)
		if !reflect.DeepEqual(a.dev.byType, b.dev.byType) || a.eng.Now() != b.eng.Now() {
			t.Fatalf("%v: two replays of the same trace diverged", mode)
		}
	}
}

func TestCtxScheduleKeepsThreadAlive(t *testing.T) {
	r := newWLRig(t, 8)
	var fired sim.Time
	r.runner.Add(&Func{F: func(ctx *Ctx) {
		ctx.Schedule(3*sim.Millisecond, func(ctx *Ctx) {
			fired = ctx.Now()
			ctx.Finish()
		})
	}})
	r.run(t)
	if fired != sim.Time(3*sim.Millisecond) {
		t.Fatalf("timer fired at %v, want 3ms", fired)
	}
}

func TestCtxScheduleAutoFinishes(t *testing.T) {
	r := newWLRig(t, 8)
	ran := false
	// The timer body neither issues IOs nor calls Finish: the runner must
	// treat the idle thread as finished instead of hanging.
	r.runner.Add(&Func{F: func(ctx *Ctx) {
		ctx.Schedule(sim.Millisecond, func(*Ctx) { ran = true })
	}})
	r.run(t)
	if !ran {
		t.Fatal("timer never fired")
	}
}

func TestParseReplayMode(t *testing.T) {
	for in, want := range map[string]ReplayMode{
		"closed": ReplayClosedLoop, "closed-loop": ReplayClosedLoop,
		"open": ReplayOpenLoop, "open-loop": ReplayOpenLoop,
		"dependent": ReplayDependent, "as-dependent": ReplayDependent,
	} {
		got, err := ParseReplayMode(in)
		if err != nil || got != want {
			t.Errorf("ParseReplayMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseReplayMode("warp"); err == nil {
		t.Error("bad mode accepted")
	}
}
