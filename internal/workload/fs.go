package workload

import (
	"sort"

	"eagletree/internal/iface"
)

// FileSystem simulates the IO behavior of a file system over the logical
// address space [From, From+Space): files are created as extents of
// consecutive LPNs taken from a first-fit free-space allocator, overwritten
// in place at random offsets, and deleted (trimming their extents back to
// free space). The operation mix follows the configured weights; the paper
// names a file-system-model thread as one of its built-in workloads.
//
// Because extents are reused after deletion and file lifetimes vary, pages
// of long-lived and short-lived files end up physically mixed whenever
// several FileSystem threads (or one thread's interleaved operations) share
// the SSD's write frontier — precisely the fragmentation that update-locality
// hints exist to prevent.
type FileSystem struct {
	From  iface.LPN
	Space int64
	Ops   int64 // total file operations to perform
	Depth int

	// MeanFilePages is the average file size in pages (uniform around this;
	// at least 1). Zero means 16.
	MeanFilePages int
	// CreateWeight, OverwriteWeight, DeleteWeight bias the op mix; all zero
	// means 4/4/1 (a file set that grows to capacity and then churns).
	CreateWeight, OverwriteWeight, DeleteWeight int

	// TagLocality publishes update-locality hints: each file is its own
	// locality group, so the SSD co-locates a file's pages (the paper's
	// "Update-locality" open-interface extension).
	TagLocality bool

	pump    pump
	files   []extent // live files
	free    []span   // free extents, sorted by from, coalesced
	opsDone int64
	pending []pendingIO // IO plan for the current operation
	group   int         // next locality group id
}

type extent struct {
	from  iface.LPN
	pages int64
	group int
}

type span struct {
	from  int64 // offset within the FS space
	pages int64
}

type pendingIO struct {
	t    iface.ReqType
	lpn  iface.LPN
	tags iface.Tags
}

// Init implements Thread.
func (f *FileSystem) Init(ctx *Ctx) {
	if f.MeanFilePages == 0 {
		f.MeanFilePages = 16
	}
	if f.CreateWeight == 0 && f.OverwriteWeight == 0 && f.DeleteWeight == 0 {
		f.CreateWeight, f.OverwriteWeight, f.DeleteWeight = 4, 4, 1
	}
	f.free = []span{{from: 0, pages: f.Space}}
	// Locality groups are file identities; namespace them by thread so
	// concurrent FileSystem instances never share a group.
	f.group = (ctx.ID() + 1) << 20
	f.pump.depth = f.Depth
	f.pump.start(ctx, f.emit)
}

// OnComplete implements Thread.
func (f *FileSystem) OnComplete(ctx *Ctx, _ *iface.Request) { f.pump.completed(ctx, f.emit) }

// emit issues the next IO of the current operation, planning a new operation
// when the current one is exhausted.
func (f *FileSystem) emit(ctx *Ctx) bool {
	for len(f.pending) == 0 {
		if f.opsDone >= f.Ops {
			return false
		}
		f.opsDone++
		f.planOp(ctx)
	}
	io := f.pending[0]
	f.pending = f.pending[1:]
	ctx.Submit(io.t, io.lpn, io.tags)
	return true
}

func (f *FileSystem) planOp(ctx *Ctx) {
	rng := ctx.RNG()
	total := f.CreateWeight + f.OverwriteWeight + f.DeleteWeight
	roll := rng.Intn(total)
	switch {
	case roll < f.CreateWeight || len(f.files) == 0:
		f.planCreate(ctx)
	case roll < f.CreateWeight+f.OverwriteWeight:
		f.planOverwrite(ctx)
	default:
		f.planDelete(ctx)
	}
}

// alloc takes a first-fit extent from free space.
func (f *FileSystem) alloc(pages int64) (int64, bool) {
	for i := range f.free {
		if f.free[i].pages >= pages {
			from := f.free[i].from
			f.free[i].from += pages
			f.free[i].pages -= pages
			if f.free[i].pages == 0 {
				f.free = append(f.free[:i], f.free[i+1:]...)
			}
			return from, true
		}
	}
	return 0, false
}

// release returns an extent to free space, coalescing neighbors.
func (f *FileSystem) release(from, pages int64) {
	i := sort.Search(len(f.free), func(i int) bool { return f.free[i].from >= from })
	f.free = append(f.free, span{})
	copy(f.free[i+1:], f.free[i:])
	f.free[i] = span{from: from, pages: pages}
	// Coalesce with the successor, then the predecessor.
	if i+1 < len(f.free) && f.free[i].from+f.free[i].pages == f.free[i+1].from {
		f.free[i].pages += f.free[i+1].pages
		f.free = append(f.free[:i+1], f.free[i+2:]...)
	}
	if i > 0 && f.free[i-1].from+f.free[i-1].pages == f.free[i].from {
		f.free[i-1].pages += f.free[i].pages
		f.free = append(f.free[:i], f.free[i+1:]...)
	}
}

func (f *FileSystem) planCreate(ctx *Ctx) {
	rng := ctx.RNG()
	pages := int64(1 + rng.Intn(2*f.MeanFilePages-1)) // mean ~= MeanFilePages
	if pages > f.Space {
		pages = f.Space
	}
	from, ok := f.alloc(pages)
	if !ok {
		// Space exhausted (or too fragmented): the file system is full, so
		// this create becomes a delete — exactly what keeps a full FS
		// hovering at capacity and the SSD in churn.
		if len(f.files) > 0 {
			f.planDelete(ctx)
		}
		return
	}
	ext := extent{from: f.From + iface.LPN(from), pages: pages, group: f.group}
	f.group++

	var tags iface.Tags
	if f.TagLocality {
		lpns := make([]iface.LPN, pages)
		for i := range lpns {
			lpns[i] = ext.from + iface.LPN(i)
		}
		ctx.Publish(iface.LocalityHint{Group: ext.group, Pages: lpns})
		tags.Locality = ext.group
	}
	for i := int64(0); i < pages; i++ {
		f.pending = append(f.pending, pendingIO{t: iface.Write, lpn: ext.from + iface.LPN(i), tags: tags})
	}
	f.files = append(f.files, ext)
}

func (f *FileSystem) planOverwrite(ctx *Ctx) {
	rng := ctx.RNG()
	ext := f.files[rng.Intn(len(f.files))]
	// Overwrite a random run of up to 4 pages within the file (read-modify-
	// write: metadata read, then the data writes).
	off := int64(rng.Intn(int(ext.pages)))
	n := int64(1 + rng.Intn(4))
	if off+n > ext.pages {
		n = ext.pages - off
	}
	var tags iface.Tags
	if f.TagLocality {
		tags.Locality = ext.group
	}
	f.pending = append(f.pending, pendingIO{t: iface.Read, lpn: ext.from + iface.LPN(off)})
	for i := int64(0); i < n; i++ {
		f.pending = append(f.pending, pendingIO{t: iface.Write, lpn: ext.from + iface.LPN(off+i), tags: tags})
	}
}

func (f *FileSystem) planDelete(ctx *Ctx) {
	rng := ctx.RNG()
	idx := rng.Intn(len(f.files))
	ext := f.files[idx]
	f.files = append(f.files[:idx], f.files[idx+1:]...)
	f.release(int64(ext.from-f.From), ext.pages)
	for i := int64(0); i < ext.pages; i++ {
		f.pending = append(f.pending, pendingIO{t: iface.Trim, lpn: ext.from + iface.LPN(i)})
	}
}

// LiveFiles returns the current number of live files (for tests).
func (f *FileSystem) LiveFiles() int { return len(f.files) }

// FreeExtents returns the current number of free-space extents (for tests).
func (f *FileSystem) FreeExtents() int { return len(f.free) }
