// Package workload is the application layer of the simulated IO stack: a
// programming framework giving users absolute control over the workload.
//
// A Thread provides two methods, Init and OnComplete — the paper's init() and
// call_back() — and may issue any number of IOs from either. The Runner owns
// thread lifecycle: threads can depend on other threads, so device
// preparation (writing the whole logical space sequentially and/or randomly
// before measuring, as uFLIP prescribes) is expressed as dependencies, and
// measurement starts only when preparation finishes.
//
//eagletree:typederrors
package workload

import (
	"errors"
	"fmt"

	"eagletree/internal/iface"
	"eagletree/internal/osched"
	"eagletree/internal/sim"
)

// Errors wrapped by the workload package's exported API.
var (
	// ErrConfig wraps every invalid thread or replay configuration.
	ErrConfig = errors.New("workload: invalid configuration")
	// ErrStateMismatch wraps every snapshot-restore precondition failure.
	ErrStateMismatch = errors.New("workload: snapshot does not match runner state")
)

// Thread is one simulated concurrent application. Init is called by the OS
// when the thread starts; OnComplete is triggered every time an IO
// originating from the thread completes. Within both, the thread may issue
// any number of new IOs through the Ctx.
type Thread interface {
	Init(ctx *Ctx)
	OnComplete(ctx *Ctx, r *iface.Request)
}

// Ctx is a thread's window onto the stack: it issues IOs to the OS,
// publishes open-interface messages, draws deterministic randomness, and
// declares the thread finished.
type Ctx struct {
	runner *Runner
	entry  *entry
	rng    *sim.RNG
}

// ID returns the thread's identifier (stamped on every request it issues).
func (c *Ctx) ID() int { return c.entry.id }

// Now returns the current virtual time.
func (c *Ctx) Now() sim.Time { return c.runner.eng.Now() }

// RNG returns the thread's private deterministic random source.
func (c *Ctx) RNG() *sim.RNG { return c.rng }

// InFlight returns how many of this thread's IOs are not yet completed.
func (c *Ctx) InFlight() int { return c.entry.inFlight }

// Issued returns how many IOs the thread has submitted so far.
func (c *Ctx) Issued() uint64 { return c.entry.issued }

// Submit issues one IO with explicit tags and returns the request.
func (c *Ctx) Submit(t iface.ReqType, lpn iface.LPN, tags iface.Tags) *iface.Request {
	if c.entry.finished {
		panic(fmt.Sprintf("workload: thread %d submitted an IO after finishing", c.entry.id))
	}
	c.runner.nextID++
	r := &iface.Request{
		ID:        c.runner.nextID,
		Type:      t,
		LPN:       lpn,
		Source:    iface.SourceApp,
		Thread:    c.entry.id,
		Tags:      tags,
		Submitted: c.runner.eng.Now(),
	}
	c.entry.inFlight++
	c.entry.issued++
	c.runner.os.Submit(r)
	return r
}

// Read issues an untagged read.
func (c *Ctx) Read(lpn iface.LPN) *iface.Request { return c.Submit(iface.Read, lpn, iface.Tags{}) }

// Write issues an untagged write.
func (c *Ctx) Write(lpn iface.LPN) *iface.Request { return c.Submit(iface.Write, lpn, iface.Tags{}) }

// Trim issues a deallocation hint.
func (c *Ctx) Trim(lpn iface.LPN) *iface.Request { return c.Submit(iface.Trim, lpn, iface.Tags{}) }

// Publish sends a message on the open-interface bus. It reports false when
// the bus is locked (block-device mode) or nothing subscribed.
func (c *Ctx) Publish(m iface.Message) bool { return c.runner.bus.Publish(m) }

// Schedule runs fn after d of virtual time — the timer facility open-loop
// workloads (trace replay, think times, periodic bursts) pace themselves
// with. A pending timer keeps the thread alive like an in-flight IO does;
// timers armed by a thread that has since finished are discarded.
func (c *Ctx) Schedule(d sim.Duration, fn func(*Ctx)) {
	if c.entry.finished {
		panic(fmt.Sprintf("workload: thread %d scheduled a timer after finishing", c.entry.id))
	}
	if d < 0 {
		d = 0
	}
	c.entry.timers++
	c.runner.eng.Schedule(c.runner.eng.Now().Add(d), func() {
		c.entry.timers--
		if c.entry.finished {
			return
		}
		fn(c)
		// Same rule as launch: a thread with nothing in flight, no timers
		// pending and no finish request can never be woken again — treat it
		// as finished rather than hanging its dependents.
		if c.entry.inFlight == 0 && c.entry.timers == 0 && !c.entry.finishReq {
			c.Finish()
		}
	})
}

// Finish declares the thread done. Pending IOs still complete (and still
// reach OnComplete); once the last one drains, dependent threads start.
// Finishing twice is a no-op.
func (c *Ctx) Finish() {
	if c.entry.finishReq {
		return
	}
	c.entry.finishReq = true
	c.runner.maybeFinalize(c.entry)
}

// Handle names a registered thread, primarily for expressing dependencies.
type Handle struct {
	entry *entry
}

// ID returns the thread id the handle refers to.
func (h *Handle) ID() int { return h.entry.id }

// Done reports whether the thread has finished and drained.
func (h *Handle) Done() bool { return h.entry.finished }

type entry struct {
	id         int
	t          Thread
	ctx        *Ctx
	deps       int // unfinished dependencies
	dependents []*entry
	started    bool
	finishReq  bool
	finished   bool
	inFlight   int
	timers     int // armed Ctx.Schedule timers not yet fired
	issued     uint64
}

// Runner owns the thread layer: registration, dependency-ordered startup,
// and completion routing from the OS back to threads.
type Runner struct {
	eng    *sim.Engine
	os     *osched.OS
	bus    *iface.Bus
	rng    *sim.RNG
	nextID uint64
	idBase int // thread ids start here (continuation of a snapshotted run)

	entries []*entry
	active  int

	// OnAllDone, if set, fires when the last registered thread finishes.
	OnAllDone func()
}

// NewRunner builds a thread runner over the OS layer. The seed determines
// every thread's private RNG, so (workload, seed) fully fixes the IO trace.
func NewRunner(eng *sim.Engine, os *osched.OS, bus *iface.Bus, seed uint64) *Runner {
	return &Runner{eng: eng, os: os, bus: bus, rng: sim.NewRNG(seed)}
}

// Add registers a thread that starts when every dependency has finished
// (immediately at Start when none are given). Nil handles are ignored, so a
// possibly-absent barrier can be passed through unconditionally.
func (r *Runner) Add(t Thread, deps ...*Handle) *Handle {
	e := &entry{id: r.idBase + len(r.entries), t: t}
	e.ctx = &Ctx{runner: r, entry: e, rng: r.rng.Split()}
	for _, d := range deps {
		if d == nil || d.entry.finished {
			continue
		}
		e.deps++
		d.entry.dependents = append(d.entry.dependents, e)
	}
	r.entries = append(r.entries, e)
	r.active++
	return &Handle{entry: e}
}

// Start launches every dependency-free thread. Call once, before running the
// engine.
func (r *Runner) Start() {
	for _, e := range r.entries {
		if e.deps == 0 && !e.started {
			r.launch(e)
		}
	}
}

// Active returns how many registered threads have not finished.
func (r *Runner) Active() int { return r.active }

// RunnerState is the runner's serializable state for device snapshots: the
// RNG origin every future thread's private stream derives from, the request
// id counter, and where thread ids continue. Thread objects themselves are
// not serialized — snapshots are taken when every thread has finished.
type RunnerState struct {
	RNG          [4]uint64
	NextReqID    uint64
	NextThreadID int
}

// State captures the runner's continuation state. It is only meaningful when
// every registered thread has finished (Done reports true).
func (r *Runner) State() RunnerState {
	return RunnerState{
		RNG:          r.rng.State(),
		NextReqID:    r.nextID,
		NextThreadID: r.idBase + len(r.entries),
	}
}

// RestoreState primes a fresh runner to continue a snapshotted run: threads
// added from here on get the same ids, private RNG streams and request ids
// they would have gotten had the original runner kept going.
func (r *Runner) RestoreState(st RunnerState) error {
	if len(r.entries) > 0 {
		return fmt.Errorf("%w: restoring a runner that already has %d threads", ErrStateMismatch, len(r.entries))
	}
	r.rng.SetState(st.RNG)
	r.nextID = st.NextReqID
	r.idBase = st.NextThreadID
	return nil
}

// Done reports whether every registered thread has finished.
func (r *Runner) Done() bool { return r.active == 0 }

func (r *Runner) launch(e *entry) {
	e.started = true
	r.os.SetCallback(e.id, func(req *iface.Request) { r.deliver(e, req) })
	// Init runs inside the event loop so threads observe a consistent clock
	// and so Start can be called before the engine runs.
	r.eng.Schedule(r.eng.Now(), func() {
		e.t.Init(e.ctx)
		// A thread that issues nothing from Init, arms no timer and never
		// calls Finish would hang its dependents; treat "no IOs, no timers,
		// no finish request" as finished, matching an empty init() body.
		if e.inFlight == 0 && e.timers == 0 && !e.finishReq {
			e.ctx.Finish()
		}
	})
}

func (r *Runner) deliver(e *entry, req *iface.Request) {
	e.inFlight--
	if !e.finished {
		e.t.OnComplete(e.ctx, req)
	}
	r.maybeFinalize(e)
}

func (r *Runner) maybeFinalize(e *entry) {
	if !e.finishReq || e.finished || e.inFlight > 0 {
		return
	}
	e.finished = true
	r.active--
	r.os.RemoveCallback(e.id)
	for _, dep := range e.dependents {
		dep.deps--
		if dep.deps == 0 && !dep.started {
			r.launch(dep)
		}
	}
	if r.active == 0 && r.OnAllDone != nil {
		r.OnAllDone()
	}
}
