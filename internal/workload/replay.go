package workload

import (
	"fmt"

	"eagletree/internal/iface"
	"eagletree/internal/sim"
	"eagletree/internal/trace"
)

// ReplayMode selects how a Replay thread paces a trace through the stack.
type ReplayMode int

const (
	// ReplayClosedLoop ignores trace timestamps and keeps Depth IOs in
	// flight, issuing in trace order as fast as the device allows — the mode
	// for A/B-ing design variants on an identical IO stream.
	ReplayClosedLoop ReplayMode = iota
	// ReplayOpenLoop issues each record at its trace timestamp (stretched by
	// TimeScale), regardless of completions: the arrival process is faithful
	// and queues grow when the device falls behind.
	ReplayOpenLoop
	// ReplayDependent serializes the trace: each record is issued only after
	// its predecessor completes, preserving issue order strictly and the
	// trace's inter-arrival gaps as think time (stretched by TimeScale).
	ReplayDependent
)

func (m ReplayMode) String() string {
	switch m {
	case ReplayClosedLoop:
		return "closed"
	case ReplayOpenLoop:
		return "open"
	case ReplayDependent:
		return "dependent"
	default:
		return fmt.Sprintf("ReplayMode(%d)", int(m))
	}
}

// ParseReplayMode maps the command-line spellings onto modes.
func ParseReplayMode(s string) (ReplayMode, error) {
	switch s {
	case "closed", "closed-loop":
		return ReplayClosedLoop, nil
	case "open", "open-loop":
		return ReplayOpenLoop, nil
	case "dependent", "as-dependent":
		return ReplayDependent, nil
	default:
		return 0, fmt.Errorf("%w: unknown replay mode %q (closed | open | dependent)", ErrConfig, s)
	}
}

// Replay is a thread that replays a captured or converted block trace
// through the stack. The trace is read-only: one Trace can back any number
// of concurrent Replay threads (e.g. parallel experiment variants), but each
// variant needs its own Replay value. Multi-page records are expanded into
// consecutive single-page IOs; recorded tags are reapplied verbatim.
type Replay struct {
	// Trace is the stream to replay. Replay never mutates it.
	Trace *trace.Trace
	// Mode paces the stream; the zero value is ReplayClosedLoop.
	Mode ReplayMode
	// TimeScale stretches trace time in open-loop and dependent modes:
	// 2 halves the arrival rate, 0.5 doubles it. Zero means 1 (faithful).
	TimeScale float64
	// Depth bounds in-flight IOs in closed-loop mode. Zero means 32.
	Depth int

	pump    pump // closed-loop pacing
	pos     int  // next record
	pageOff int  // next page within the current record
	start   sim.Time
	tickFn  func(*Ctx) // bound once: open-loop timer body
	nextFn  func(*Ctx) // bound once: dependent-mode think-time body
}

// Init implements Thread.
func (r *Replay) Init(ctx *Ctx) {
	r.start = ctx.Now()
	if r.Trace == nil || r.Trace.Len() == 0 {
		ctx.Finish()
		return
	}
	switch r.Mode {
	case ReplayOpenLoop:
		r.tickFn = r.tick
		r.scheduleNext(ctx)
	case ReplayDependent:
		r.nextFn = r.submitCurrent
		ctx.Schedule(sim.Duration(r.scaled(r.Trace.Records[0].At)), r.nextFn)
	default:
		r.pump.depth = r.Depth
		if r.pump.depth == 0 {
			r.pump.depth = 32
		}
		r.pump.start(ctx, r.emit)
	}
}

// OnComplete implements Thread.
func (r *Replay) OnComplete(ctx *Ctx, _ *iface.Request) {
	switch r.Mode {
	case ReplayOpenLoop:
		r.maybeDone(ctx)
	case ReplayDependent:
		if ctx.InFlight() > 0 {
			return // a multi-page record is still draining
		}
		r.pos++
		r.pageOff = 0
		if r.pos >= r.Trace.Len() {
			ctx.Finish()
			return
		}
		gap := r.scaled(r.Trace.Records[r.pos].At) - r.scaled(r.Trace.Records[r.pos-1].At)
		ctx.Schedule(sim.Duration(gap), r.nextFn)
	default:
		r.pump.completed(ctx, r.emit)
	}
}

// scaled maps a trace timestamp onto replay time.
func (r *Replay) scaled(t sim.Time) sim.Time {
	scale := r.TimeScale
	if scale == 0 {
		scale = 1
	}
	return sim.Time(float64(t) * scale)
}

// emit issues the next page of the stream (closed-loop pacing).
func (r *Replay) emit(ctx *Ctx) bool {
	if r.pos >= r.Trace.Len() {
		return false
	}
	rec := r.Trace.Records[r.pos]
	ctx.Submit(rec.Op, rec.LPN+iface.LPN(r.pageOff), rec.Tags)
	r.pageOff++
	if r.pageOff >= rec.Size {
		r.pos++
		r.pageOff = 0
	}
	return true
}

// submitCurrent issues every page of the current record (dependent mode).
func (r *Replay) submitCurrent(ctx *Ctx) {
	rec := r.Trace.Records[r.pos]
	for p := 0; p < rec.Size; p++ {
		ctx.Submit(rec.Op, rec.LPN+iface.LPN(p), rec.Tags)
	}
}

// scheduleNext arms the open-loop timer for the next record's due time.
func (r *Replay) scheduleNext(ctx *Ctx) {
	if r.pos >= r.Trace.Len() {
		r.maybeDone(ctx)
		return
	}
	due := r.start.Add(sim.Duration(r.scaled(r.Trace.Records[r.pos].At)))
	ctx.Schedule(due.Sub(ctx.Now()), r.tickFn)
}

// tick submits every record that has come due, then re-arms the timer.
func (r *Replay) tick(ctx *Ctx) {
	for r.pos < r.Trace.Len() {
		rec := r.Trace.Records[r.pos]
		if r.start.Add(sim.Duration(r.scaled(rec.At))).After(ctx.Now()) {
			break
		}
		for p := 0; p < rec.Size; p++ {
			ctx.Submit(rec.Op, rec.LPN+iface.LPN(p), rec.Tags)
		}
		r.pos++
	}
	r.scheduleNext(ctx)
}

// maybeDone finishes the open-loop replay once the stream is exhausted and
// the last IO has drained.
func (r *Replay) maybeDone(ctx *Ctx) {
	if r.pos >= r.Trace.Len() && ctx.InFlight() == 0 {
		ctx.Finish()
	}
}
