package controller

import (
	"eagletree/internal/flash"
	"eagletree/internal/iface"
	"eagletree/internal/stats"
)

// maybeGC starts a collection run on the LUN if free space has fallen to the
// greediness floor and no run already owns the LUN.
func (c *Controller) maybeGC(lun int) {
	if c.gcActive[lun] || !c.gc.ShouldCollect(lun) {
		return
	}
	victim, ok := c.gc.SelectVictim(lun, c.eng.Now())
	if !ok {
		return
	}
	c.startRun(victim, false)
}

// startRun begins migrating a victim block's live pages (GC or static WL).
func (c *Controller) startRun(victim flash.BlockID, isWL bool) {
	c.beginRun(&gcRun{victim: victim, isWL: isWL})
}

// startCondemnRun begins relocating the survivors of a grown-bad block. The
// run reuses the GC migration machinery but terminates without an erase: a
// retired block is never reclaimed.
func (c *Controller) startCondemnRun(victim flash.BlockID) {
	c.beginRun(&gcRun{victim: victim, condemn: true})
}

// beginRun walks the run's victim and queues a migration pair per live page.
func (c *Controller) beginRun(run *gcRun) {
	victim, isWL := run.victim, run.isWL
	c.gcActive[victim.LUN] = true
	if tr := c.stats.Trace(); tr != nil && !run.condemn {
		stage := stats.StageGCStart
		if isWL {
			stage = stats.StageWLStart
		}
		tr.Record(c.eng.Now(), 0, stage, nil)
	}

	geo := c.array.Geometry()
	src := iface.SourceGC
	readKind, writeKind := opGCRead, opGCWrite
	if isWL {
		src = iface.SourceWL
		readKind, writeKind = opWLRead, opWLWrite
	}
	useCopyback := !isWL && c.cfg.GCCopyback && c.cfg.Features.Copyback

	for page := 0; page < geo.PagesPerBlock; page++ {
		ppa := flash.PPA{LUN: victim.LUN, Block: victim.Block, Page: page}
		if c.array.PageState(ppa) != flash.PageValid {
			continue
		}
		lpn, ok := c.mapper.LPNAt(ppa)
		if !ok {
			// A valid data-region page must be mapped; anything else is a
			// bookkeeping bug worth failing loudly over.
			panic("controller: valid page with no reverse mapping in " + ppa.String())
		}
		run.pending++
		if useCopyback {
			st := c.newState(opGCCopyback)
			st.src, st.run = ppa, run
			c.cfg.Policy.Push(c.newInternal(iface.Write, src, lpn, st))
			continue
		}
		rst := c.newState(readKind)
		rst.src, rst.run = ppa, run
		read := c.newInternal(iface.Read, src, lpn, rst)
		wst := c.newState(writeKind)
		wst.src, wst.run = ppa, run
		wst.blocked = true
		write := c.newInternal(iface.Write, src, lpn, wst)
		rst.next = append(rst.next, write)
		c.cfg.Policy.Push(read)
		c.cfg.Policy.PushBlocked(write)
	}
	if run.pending == 0 {
		c.checkRunDone(run)
	}
	c.scheduleDispatch()
}

// checkRunDone issues the victim erase once every migration pair finished —
// or, for a condemned-block relocation, ends the run without one.
func (c *Controller) checkRunDone(run *gcRun) {
	if run.pending != 0 || run.erased {
		return
	}
	if run.condemn {
		run.erased = true // terminal: a retired block is never erased
		c.finishRun(run)
		return
	}
	c.issueErase(run)
}

func (c *Controller) issueErase(run *gcRun) {
	run.erased = true
	src := iface.SourceGC
	if run.isWL {
		src = iface.SourceWL
	}
	st := c.newState(opGCErase)
	st.run = run
	st.src = flash.PPA{LUN: run.victim.LUN, Block: run.victim.Block}
	c.cfg.Policy.Push(c.newInternal(iface.Erase, src, 0, st))
	c.scheduleDispatch()
}

// finishErase returns the reclaimed block to the free pool and re-arms GC.
// When the erase was failed by injection the block stays retired: nothing is
// released and the run just ends.
func (c *Controller) finishErase(run *gcRun) {
	if !run.failed {
		c.bm.Release(run.victim)
		c.writeEpoch++ // a freed block may flip write readiness
		if !run.isWL {
			c.counters.GCErases++
		}
	}
	c.finishRun(run)
}

// finishRun closes out a GC, WL, or relocation run and re-arms whatever work
// the LUN still owes: queued condemned-block relocations first, then GC.
func (c *Controller) finishRun(run *gcRun) {
	c.gcActive[run.victim.LUN] = false
	if tr := c.stats.Trace(); tr != nil && !run.isWL && !run.condemn {
		tr.Record(c.eng.Now(), 0, stats.StageGCEnd, nil)
	}
	c.drainCondemned(run.victim.LUN)
	if !c.gcActive[run.victim.LUN] {
		c.maybeGC(run.victim.LUN)
	}
}

// drainCondemned starts relocation runs for condemned blocks on the LUN, one
// at a time, whenever no GC/WL run owns the LUN. Blocks condemned while a
// run is active queue until it completes.
func (c *Controller) drainCondemned(lun int) {
	for !c.gcActive[lun] {
		b, ok := c.takeCondemned(lun)
		if !ok {
			return
		}
		if c.array.ValidPagesIn(b) == 0 {
			continue // everything on it died or moved while it waited
		}
		c.startCondemnRun(b)
	}
}

func (c *Controller) takeCondemned(lun int) (flash.BlockID, bool) {
	for i, b := range c.condemned {
		if b.LUN == lun {
			c.condemned = append(c.condemned[:i], c.condemned[i+1:]...)
			return b, true
		}
	}
	return flash.BlockID{}, false
}

// scheduleWLScan arms the periodic static wear-leveling scan. The scan
// disarms itself when the device goes quiet (no completions since the last
// scan) so simulations can drain; any later submission re-arms it.
func (c *Controller) scheduleWLScan() {
	if c.wlScanArmed || !c.cfg.WL.Static {
		return
	}
	c.wlScanArmed = true
	c.wlScanEv = c.eng.ScheduleAfter(c.cfg.WL.CheckInterval, func() {
		c.wlScanArmed = false
		if c.opsSinceScan == 0 {
			return // quiet device: stop scanning until traffic resumes
		}
		c.opsSinceScan = 0
		c.wlScan()
		c.scheduleWLScan()
	})
}

// wlScan migrates the victims static wear leveling identified.
func (c *Controller) wlScan() {
	for _, victim := range c.lvl.Victims(c.eng.Now()) {
		if c.gcActive[victim.LUN] {
			continue // one run per LUN at a time
		}
		c.startRun(victim, true)
	}
}
