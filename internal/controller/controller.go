// Package controller implements the SSD controller: it orchestrates the
// mapping scheme, garbage collection, wear leveling and IO scheduling over
// the flash array, exposes the device interface the OS submits to, and
// optionally honors open-interface hints (priorities, update-locality,
// temperatures).
//
// Everything the controller does flows through one scheduler queue: external
// reads and writes, GC migrations, wear-leveling migrations, DFTL
// translation traffic, and erases. That single queue is what lets EagleTree
// study how internal operations interfere with application IOs.
//
//eagletree:typederrors
package controller

import (
	"errors"
	"fmt"

	"unsafe"

	"eagletree/internal/fault"
	"eagletree/internal/flash"
	"eagletree/internal/ftl"
	"eagletree/internal/gc"
	"eagletree/internal/hotcold"
	"eagletree/internal/iface"
	"eagletree/internal/sched"
	"eagletree/internal/sim"
	"eagletree/internal/stats"
	"eagletree/internal/wl"
)

// WLOff returns a wear-leveling configuration with both static and dynamic
// modes disabled — the baseline for wear experiments.
func WLOff() wl.Config {
	cfg := wl.DefaultConfig()
	cfg.Static = false
	cfg.Dynamic = false
	return cfg
}

// MappingScheme selects the FTL mapping implementation.
type MappingScheme int

const (
	// MapPageRAM keeps the full page map in controller RAM.
	MapPageRAM MappingScheme = iota
	// MapDFTL caches mappings on demand; the full table lives on flash.
	MapDFTL
)

func (m MappingScheme) String() string {
	if m == MapDFTL {
		return "dftl"
	}
	return "pagemap"
}

// Config assembles a controller. Zero fields get sane defaults from
// (*Config).withDefaults; Validate rejects inconsistent combinations.
type Config struct {
	Geometry flash.Geometry
	Timing   flash.Timing
	Features flash.Features

	// Mapping selects the FTL scheme; DFTL additionally needs CMTEntries
	// and ReservedTransBlocks (per LUN).
	Mapping             MappingScheme
	CMTEntries          int
	ReservedTransBlocks int

	// Overprovision is the fraction of data-region pages withheld from the
	// logical address space (0.05 .. 0.5 typical).
	Overprovision float64

	// GCPolicy selects victims; GCGreediness is the free-blocks-per-LUN
	// target that triggers collection.
	GCPolicy     gc.VictimPolicy
	GCGreediness int
	// GCCopyback migrates GC pages with copyback when the chip supports it.
	GCCopyback bool

	// WL configures wear leveling; WL.Dynamic also flips the block manager
	// into age-aware allocation.
	WL wl.Config

	// Policy orders the controller's single IO queue; Alloc places writes.
	Policy sched.Policy
	Alloc  sched.Allocator

	// Detector classifies written pages hot/cold for stream separation.
	Detector hotcold.Detector
	// OpenInterface honors request tags and bus hints; when false the
	// controller behaves as a plain block device (the locked GUI mode).
	OpenInterface bool

	// WriteBuffer enables a battery-backed-RAM write buffer of the given
	// page capacity (0 disables it).
	WriteBufferPages int
	// WriteBufferLatency is the RAM store latency seen by buffered writes.
	WriteBufferLatency sim.Duration

	// RAMBytes and SafeRAMBytes are memory-manager budgets; zero means
	// unconstrained.
	RAMBytes     int64
	SafeRAMBytes int64

	// BadBlockFraction retires this fraction of data-region blocks at
	// manufacture time (factory bad blocks), deterministically from
	// BadBlockSeed. Retired blocks never hold data; the usable
	// overprovisioning shrinks accordingly.
	BadBlockFraction float64
	BadBlockSeed     uint64

	// Fault, when non-nil, injects program/erase failures and grown bad
	// blocks at runtime, confined to the data region like factory bad
	// blocks. The controller owns recovery: failed writes relocate to a new
	// frontier, failed-erase victims retire, and live pages migrate off
	// blocks that grow bad under them. Nil disables injection at zero cost.
	Fault fault.Model

	// OnComplete delivers finished application requests to the OS layer.
	OnComplete func(*iface.Request)
}

func (c *Config) withDefaults() {
	if c.Timing.Cmd == 0 {
		c.Timing = flash.TimingSLC()
	}
	if c.GCPolicy == nil {
		c.GCPolicy = gc.Greedy{}
	}
	if c.GCGreediness == 0 {
		c.GCGreediness = 2
	}
	if c.Policy == nil {
		c.Policy = &sched.FIFO{}
	}
	if c.Alloc == nil {
		c.Alloc = sched.LeastLoaded{}
	}
	if c.Detector == nil {
		c.Detector = hotcold.None{}
	}
	if c.Mapping == MapDFTL {
		if c.CMTEntries == 0 {
			c.CMTEntries = 4096
		}
		if c.ReservedTransBlocks == 0 {
			c.ReservedTransBlocks = 2
		}
	}
	if c.WriteBufferPages > 0 && c.WriteBufferLatency == 0 {
		c.WriteBufferLatency = 5 * sim.Microsecond
	}
	if c.WL.CheckInterval == 0 {
		c.WL.CheckInterval = wl.DefaultConfig().CheckInterval
	}
	if c.Overprovision == 0 {
		c.Overprovision = 0.1
	}
}

// Validate reports configuration errors after defaults are applied.
func (c *Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.Overprovision < 0.01 || c.Overprovision > 0.9 {
		return fmt.Errorf("%w: overprovision %.2f outside [0.01, 0.9]", ErrConfig, c.Overprovision)
	}
	if c.GCGreediness < 1 {
		return fmt.Errorf("%w: GC greediness %d, must be >= 1", ErrConfig, c.GCGreediness)
	}
	if c.Mapping == MapDFTL && c.ReservedTransBlocks < 2 {
		return fmt.Errorf("%w: DFTL needs >= 2 reserved translation blocks per LUN, got %d", ErrConfig, c.ReservedTransBlocks)
	}
	if c.Mapping == MapDFTL && c.ReservedTransBlocks >= c.Geometry.BlocksPerLUN/2 {
		return fmt.Errorf("%w: %d translation blocks per LUN leaves too little data region", ErrConfig, c.ReservedTransBlocks)
	}
	if c.GCCopyback && !c.Features.Copyback {
		return fmt.Errorf("%w: GCCopyback requires the copyback chip feature", ErrConfig)
	}
	if c.BadBlockFraction < 0 || c.BadBlockFraction > 0.5 {
		return fmt.Errorf("%w: bad-block fraction %.2f outside [0, 0.5]", ErrConfig, c.BadBlockFraction)
	}
	return nil
}

// opKind is what an internal queue entry actually does on the array.
type opKind int

const (
	opData opKind = iota
	opTransRead
	opTransWrite
	opTransErase
	opGCRead
	opGCWrite
	opGCCopyback
	opGCErase
	opWLRead
	opWLWrite
)

// reqState is the controller-private state of a queued request. It lives in
// the request's opaque Ctl slot — not in a lookup table — so the dispatch hot
// path reaches it with one pointer load. States are pooled: finish returns
// them to the controller's freelist and Submit/newInternal reuse them.
type reqState struct {
	kind     opKind
	blocked  bool // waiting on a predecessor in a dependency chain
	accessd  bool // mapper.Access already performed
	errored  bool // completed without touching flash (unmapped read)
	buffered bool // write absorbed by the battery-backed buffer
	refire   bool // program failed by injection; re-queue instead of finishing
	busyLUN  int  // LUN whose inflight slot this request holds; -1 when none

	// Readiness caches, validated against the controller epochs. canRun is
	// invoked once per queued request per dispatch scan, so it must not
	// repeat mapping lookups or temperature classification whose inputs
	// cannot have changed since the last scan.
	ppaEpoch    uint64 // mapEpoch when ppa/mapped were cached
	mapped      bool
	ppa         flash.PPA
	streamEpoch uint64 // tempEpoch when stream was cached
	stream      ftl.Stream
	waitClass   int32 // dispatch wait-class this request is parked under; -1 when none
	waitRead    bool  // parked read indexed in readWait for retarget wake-ups

	// Completion bookkeeping hoisted out of the per-completion path: the
	// watched-thread sink is resolved once at submit and revalidated with
	// one epoch compare in finish, instead of a map lookup per completion.
	tsink      *stats.ThreadStats
	tsinkEpoch uint64 // stats.SinkEpoch when tsink was cached

	next  []*iface.Request // unblocked when this request completes
	trans ftl.TransOp      // payload for opTrans*
	src   flash.PPA        // explicit source page (GC/WL migrations)
	run   *gcRun           // owning GC/WL run, if any
}

// writeMemoEntry caches "some idle LUN can allocate for this stream" per
// write stream, valid for one writeEpoch.
type writeMemoEntry struct {
	epoch uint64
	ok    bool
}

// gcRun tracks one in-flight collection or wear-leveling migration.
type gcRun struct {
	victim    flash.BlockID
	pending   int  // migration pairs not yet finished
	erased    bool // erase issued (or run reached its terminal state)
	isWL      bool
	condemn   bool // relocation off a grown-bad block; never erased
	failed    bool // the victim erase was failed by injection; block retired
	collector *Controller
}

// Counters aggregates controller-level totals for reports.
type Counters struct {
	AppReads        uint64
	AppWrites       uint64
	AppTrims        uint64
	UnmappedReads   uint64
	GCMigratedPages uint64
	GCErases        uint64
	WLMigratedPages uint64
	BufferedWrites  uint64
	BufferStalls    uint64
}

// Reliability aggregates fault-injection recovery totals. It is a separate
// struct from Counters so the frozen snapshot encoding of Counters stays
// untouched; reports print it only when faults actually fired.
type Reliability struct {
	// Retries counts writes re-issued after an injected program failure
	// burned their page.
	Retries uint64
	// Relocations counts live pages migrated off blocks that grew bad under
	// an in-flight write frontier.
	Relocations uint64
	// EraseFailures counts injected erase failures; each retires its block.
	EraseFailures uint64
	// GrownBadBlocks counts blocks retired mid-run by the fault model, from
	// both grown-bad program failures and erase failures.
	GrownBadBlocks uint64
}

// ErrDeviceWornOut reports that runtime block retirement has exhausted a
// LUN's free pool: queued writes can never be placed and the device has
// reached end of life. Experiments surface it instead of a generic stall.
var ErrDeviceWornOut = errors.New("device worn out: block retirement exhausted the free pool")

// Errors wrapped by the controller's exported API, per the typed-error
// contract: callers match with errors.Is rather than message text.
var (
	// ErrConfig wraps every Config.Validate failure.
	ErrConfig = errors.New("controller: invalid configuration")
	// ErrMemoryBudget wraps every rejected memory reservation.
	ErrMemoryBudget = errors.New("controller: memory reservation rejected")
	// ErrStateMismatch wraps every mismatch between a snapshot and the
	// configuration it is restored into.
	ErrStateMismatch = errors.New("controller: snapshot does not match configuration")
	// ErrSnapshotUnsupported marks mappers that cannot snapshot.
	ErrSnapshotUnsupported = errors.New("controller: mapper does not support snapshots")
)

// Controller is the simulated SSD. Create with New; drive it by Submit-ing
// requests and running the shared engine.
type Controller struct {
	cfg    Config
	eng    *sim.Engine
	array  *flash.Array
	bm     *ftl.BlockManager
	mapper ftl.Mapper
	gc     *gc.Collector
	lvl    *wl.Leveler
	bus    *iface.Bus
	stats  *stats.Collector
	mem    *MemoryManager

	inflight     []bool // one operation per LUN at a time
	gcActive     []bool // per LUN: a GC/WL run owns the LUN's migration budget
	nextID       uint64
	dispPend     bool
	counters     Counters
	reliability  Reliability
	condemned    []flash.BlockID // grown-bad blocks awaiting survivor relocation
	logical      int             // exported logical pages
	completions  uint64
	opsSinceScan uint64
	wlScanArmed  bool
	wlScanEv     *sim.Event       // armed static-WL scan timer (cancelled on restore)
	deferred     []*iface.Request // writes an allocator refused; retried after the next completion
	lastTrans    *iface.Request   // tail of the most recently planned translation chain

	// Hot-path machinery: pooled request states, a scratch allocator view,
	// and callbacks bound once so per-IO scheduling allocates nothing.
	statePool    []*reqState
	reqPool      []*iface.Request // recycled controller-internal requests
	views        []sched.LUNView
	detectorLive bool // detector state can change classifications (not hotcold.None)
	canRunFn     func(*iface.Request) bool
	dispatchFn   func(any)
	ioDoneFn     func(any)
	flushFn      func(any)

	// Readiness epochs. Every mutation of a readiness input bumps the
	// matching epoch, so cached canRun inputs are reused exactly while
	// nothing they depend on has changed — dispatch order is identical to
	// recomputing from scratch, without the per-scan map and LUN traffic.
	mapEpoch   uint64           // mapper.Map/Unmap calls
	tempEpoch  uint64           // temperature hints, WL-cold set, detector state
	writeEpoch uint64           // inflight toggles and block alloc/release
	writeMemo  []writeMemoEntry // per-stream write readiness, one writeEpoch long

	// Classed-dispatch machinery. A request that cannot run is almost
	// always waiting on exactly one thing: its target LUN going idle
	// (reads, GC/WL/translation ops) or a write stream regaining
	// allocatable space (application writes). The controller exposes that
	// structure to class-aware policies as sched.Gate: Evaluate names the
	// wait-class of a failed request, and ClassToken hands out a token per
	// class that changes only when the class's blocking condition may have
	// cleared — lunEpoch[L] for LUN classes (bumped when L's in-flight
	// operation completes), writeEpoch+tempEpoch for stream classes. The
	// policy parks whole classes off the scan path and re-examines only
	// class heads whose token moved, so dispatch cost no longer grows with
	// the number of queued-but-unrunnable requests.
	//
	// readWait indexes parked reads by LPN: a remap or unmap of a waiting
	// read's page can change (or clear) its target LUN without that LUN
	// ever completing work, so the mapping mutation itself wakes the read.
	classed  sched.ClassedPolicy
	lunEpoch []uint64
	readWait map[iface.LPN][]*iface.Request

	// Open-interface state fed by bus hints.
	threadPrio map[int]iface.Priority
	locality   map[iface.LPN]int
	tempHints  map[iface.LPN]iface.Temperature
	wlCold     map[iface.LPN]struct{} // pages last moved by static WL

	buffer *writeBuffer
}

// New builds the controller and its substrates on the given engine and bus.
func New(eng *sim.Engine, bus *iface.Bus, col *stats.Collector, cfg Config) (*Controller, error) {
	cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	array := flash.NewArray(cfg.Geometry, cfg.Timing, cfg.Features)
	reserved := 0
	if cfg.Mapping == MapDFTL {
		reserved = cfg.ReservedTransBlocks
	}
	if cfg.BadBlockFraction > 0 {
		// Factory bad blocks, confined to the data region: the translation
		// ring assumes its reserved blocks are usable.
		rng := sim.NewRNG(cfg.BadBlockSeed + 1)
		for lun := 0; lun < cfg.Geometry.LUNs(); lun++ {
			for blk := reserved; blk < cfg.Geometry.BlocksPerLUN; blk++ {
				if rng.Float64() < cfg.BadBlockFraction {
					array.MarkBad(flash.BlockID{LUN: lun, Block: blk})
				}
			}
		}
	}
	if cfg.Fault != nil {
		// Runtime faults share the factory bad-block confinement: the
		// translation ring's reserved blocks stay exempt.
		array.SetInjector(cfg.Fault, reserved)
	}
	bm := ftl.NewBlockManager(array, reserved, cfg.GCGreediness, cfg.WL.Dynamic)
	logical := int(float64(bm.DataPages()) * (1 - cfg.Overprovision))
	var mapper ftl.Mapper
	switch cfg.Mapping {
	case MapDFTL:
		mapper = ftl.NewDFTL(cfg.Geometry, logical, cfg.CMTEntries, cfg.ReservedTransBlocks)
	default:
		mapper = ftl.NewPageMap(cfg.Geometry, logical)
	}

	c := &Controller{
		cfg:        cfg,
		eng:        eng,
		array:      array,
		bm:         bm,
		mapper:     mapper,
		gc:         gc.NewCollector(bm, cfg.GCPolicy, cfg.GCGreediness),
		lvl:        wl.NewLeveler(bm, cfg.WL),
		bus:        bus,
		stats:      col,
		inflight:   make([]bool, cfg.Geometry.LUNs()),
		gcActive:   make([]bool, cfg.Geometry.LUNs()),
		logical:    logical,
		threadPrio: make(map[int]iface.Priority),
		locality:   make(map[iface.LPN]int),
		tempHints:  make(map[iface.LPN]iface.Temperature),
		wlCold:     make(map[iface.LPN]struct{}),

		views:      make([]sched.LUNView, cfg.Geometry.LUNs()),
		writeMemo:  make([]writeMemoEntry, ftl.NumStreams),
		mapEpoch:   1,
		tempEpoch:  1,
		writeEpoch: 1,
		lunEpoch:   make([]uint64, cfg.Geometry.LUNs()),
		readWait:   make(map[iface.LPN][]*iface.Request),
	}
	if cp, ok := cfg.Policy.(sched.ClassedPolicy); ok {
		c.classed = cp
	}
	if _, none := cfg.Detector.(hotcold.None); !none {
		c.detectorLive = true
	}
	c.canRunFn = c.canRun
	c.dispatchFn = func(any) { c.dispPend = false; c.dispatch() }
	c.ioDoneFn = c.ioDone
	c.flushFn = c.flushDone
	c.mem = NewMemoryManager(cfg.RAMBytes, cfg.SafeRAMBytes)
	if err := c.mem.Reserve("mapping", mapper.RAMBytes(), false); err != nil {
		return nil, err
	}
	if cfg.WriteBufferPages > 0 {
		c.buffer = newWriteBuffer(cfg.WriteBufferPages)
		bufBytes := int64(cfg.WriteBufferPages) * int64(cfg.Geometry.PageSize)
		if err := c.mem.Reserve("write-buffer", bufBytes, true); err != nil {
			return nil, err
		}
	}
	c.subscribe()
	if cfg.WL.Static {
		c.scheduleWLScan()
	}
	return c, nil
}

// LogicalPages returns the exported logical capacity in pages.
func (c *Controller) LogicalPages() int { return c.logical }

// Array exposes the flash array for statistics and tests.
func (c *Controller) Array() *flash.Array { return c.array }

// Mapper exposes the mapping scheme for statistics and tests.
func (c *Controller) Mapper() ftl.Mapper { return c.mapper }

// BlockManager exposes space accounting for statistics and tests.
func (c *Controller) BlockManager() *ftl.BlockManager { return c.bm }

// Counters returns controller-level totals.
func (c *Controller) Counters() Counters { return c.counters }

// Reliability returns fault-injection recovery totals.
func (c *Controller) Reliability() Reliability { return c.reliability }

// Health explains a stalled controller. When the engine drains with requests
// still queued, deferred, or a migration run stuck, a worn-out verdict means
// runtime retirement emptied a free pool out from under the write path. It
// returns nil when the controller holds no stuck work.
func (c *Controller) Health() error {
	stuck := c.cfg.Policy.Len() > 0 || len(c.deferred) > 0 || len(c.condemned) > 0
	for _, active := range c.gcActive {
		if active {
			stuck = true
		}
	}
	if !stuck {
		return nil
	}
	for lun := range c.inflight {
		if c.bm.FreeCount(lun) == 0 {
			return ErrDeviceWornOut
		}
	}
	return nil
}

// Memory returns the memory manager's accounting.
func (c *Controller) Memory() *MemoryManager { return c.mem }

// GCCollector exposes the garbage collector for reports.
func (c *Controller) GCCollector() *gc.Collector { return c.gc }

// Leveler exposes the wear leveler for reports.
func (c *Controller) Leveler() *wl.Leveler { return c.lvl }

// QueueLen returns the number of requests waiting in the scheduler queue.
func (c *Controller) QueueLen() int { return c.cfg.Policy.Len() }

// WriteAmplification returns flash page writes (data + GC + WL + mapping)
// divided by application page writes. It is the paper's measure of GC and
// metadata overhead.
func (c *Controller) WriteAmplification() float64 {
	if c.counters.AppWrites == 0 {
		return 0
	}
	flashWrites := c.array.Counters().Writes + c.array.Counters().Copybacks
	return float64(flashWrites) / float64(c.counters.AppWrites)
}

// subscribe wires the open-interface hints. A locked bus never delivers, so
// block-device mode needs no special casing here.
func (c *Controller) subscribe() {
	c.bus.Subscribe("priority", func(m iface.Message) {
		h := m.(iface.PriorityHint)
		c.threadPrio[h.Thread] = h.Priority
	})
	c.bus.Subscribe("locality", func(m iface.Message) {
		h := m.(iface.LocalityHint)
		for _, lpn := range h.Pages {
			c.locality[lpn] = h.Group
		}
	})
	c.bus.Subscribe("temperature", func(m iface.Message) {
		h := m.(iface.TemperatureHint)
		for lpn := h.From; lpn < h.To; lpn++ {
			c.tempHints[lpn] = h.Temperature
		}
		c.tempEpoch++
	})
}

// Submit accepts a request from the OS layer. It implements the osched
// Device interface.
func (c *Controller) Submit(r *iface.Request) {
	if r.Issued == 0 {
		r.Issued = c.eng.Now()
	}
	if !c.cfg.OpenInterface {
		r.Tags = iface.Tags{} // block-device mode: hints do not exist
	} else {
		c.applyHints(r)
		if r.Tags.Temperature != iface.TempUnknown {
			// Remember per-page temperature: GC consults it when choosing a
			// migration stream long after the tagged write completed. Cached
			// streams stay valid unless the hint actually changes.
			if old, ok := c.tempHints[r.LPN]; !ok || old != r.Tags.Temperature {
				c.tempHints[r.LPN] = r.Tags.Temperature
				c.tempEpoch++
			}
		}
	}
	if r.Source == iface.SourceApp {
		switch r.Type {
		case iface.Read:
			c.counters.AppReads++
		case iface.Write:
			c.counters.AppWrites++
		case iface.Trim:
			c.counters.AppTrims++
		}
	}
	c.scheduleWLScan() // re-arm the static WL scan if it went quiet
	st := c.newState(opData)
	if r.Source == iface.SourceApp {
		st.tsink = c.stats.ThreadSink(r.Thread)
		st.tsinkEpoch = c.stats.SinkEpoch()
	}
	attach(r, st)
	if r.Type == iface.Write && r.Source == iface.SourceApp && c.buffer != nil {
		c.counters.BufferedWrites++
		c.bufferWrite(r)
		return
	}
	c.cfg.Policy.Push(r)
	c.scheduleDispatch()
}

// applyHints folds previously received bus hints into the request's tags,
// without overriding anything the OS set explicitly on this request.
func (c *Controller) applyHints(r *iface.Request) {
	if r.Tags.Priority == iface.PriorityNormal {
		if p, ok := c.threadPrio[r.Thread]; ok {
			r.Tags.Priority = p
		}
	}
	if r.Tags.Locality == 0 {
		if g, ok := c.locality[r.LPN]; ok {
			r.Tags.Locality = g
		}
	}
	if r.Tags.Temperature == iface.TempUnknown {
		if tmp, ok := c.tempHints[r.LPN]; ok {
			r.Tags.Temperature = tmp
		}
	}
}

// newState takes a request state from the pool (or allocates one) and
// initializes it for the given operation kind.
//
//eagletree:hotpath
func (c *Controller) newState(kind opKind) *reqState {
	var st *reqState
	if n := len(c.statePool); n > 0 {
		st = c.statePool[n-1]
		c.statePool = c.statePool[:n-1]
		next := st.next[:0]
		*st = reqState{next: next}
	} else {
		st = &reqState{}
	}
	st.kind = kind
	st.busyLUN = -1
	st.waitClass = -1
	return st
}

// freeState returns a state to the pool. The caller must have detached it
// from its request (r.Ctl = nil) first.
//
//eagletree:hotpath
func (c *Controller) freeState(st *reqState) {
	for i := range st.next {
		st.next[i] = nil // do not retain completed requests
	}
	st.run = nil
	c.statePool = append(c.statePool, st)
}

// stateOf returns the controller state attached to a request, or nil.
//
//eagletree:hotpath
func stateOf(r *iface.Request) *reqState {
	return (*reqState)(r.Ctl)
}

// attach binds a state to a request.
//
//eagletree:hotpath
func attach(r *iface.Request, st *reqState) {
	r.Ctl = unsafe.Pointer(st)
}

// scheduleDispatch coalesces dispatch work to the tail of the current event.
//
//eagletree:hotpath
func (c *Controller) scheduleDispatch() {
	if c.dispPend {
		return
	}
	c.dispPend = true
	c.eng.ScheduleCall(c.eng.Now(), c.dispatchFn, nil)
}

// dispatch drains the policy queue as far as hardware and space allow.
// Class-aware policies get the classed gate — they park whole wait-classes
// off the scan path; everything else gets the plain linear canRun scan.
//
//eagletree:hotpath
func (c *Controller) dispatch() {
	if cp := c.classed; cp != nil {
		now := c.eng.Now()
		for {
			r := cp.PopClassed(now, c)
			if r == nil {
				return
			}
			c.execute(r)
		}
	}
	for {
		r := c.cfg.Policy.Pop(c.eng.Now(), c.canRunFn)
		if r == nil {
			return
		}
		c.execute(r)
	}
}

// lookup returns the request's current physical page, caching the mapper
// lookup until the next mapping mutation.
//
//eagletree:hotpath
func (c *Controller) lookup(r *iface.Request, st *reqState) (flash.PPA, bool) {
	if st.ppaEpoch != c.mapEpoch {
		st.ppa, st.mapped = c.mapper.Lookup(r.LPN)
		st.ppaEpoch = c.mapEpoch
	}
	return st.ppa, st.mapped
}

// canRunWrite reports whether some idle LUN could take a write on the
// stream. The scan result is memoized per stream for the current writeEpoch:
// with many writes queued, one dispatch scan pays the LUN loop once per
// stream instead of once per request.
//
//eagletree:hotpath
func (c *Controller) canRunWrite(stream ftl.Stream) bool {
	// writeMemo is sized ftl.NumStreams and LocalityStream clamps groups
	// into range, so the index cannot overflow.
	m := &c.writeMemo[stream]
	if m.epoch == c.writeEpoch {
		return m.ok
	}
	ok := false
	for lun := range c.inflight {
		if !c.inflight[lun] && c.bm.CanAlloc(lun, stream) {
			ok = true
			break
		}
	}
	*m = writeMemoEntry{epoch: c.writeEpoch, ok: ok}
	return ok
}

// canRun reports whether a request could be dispatched right now. It is the
// plain-scan gate for policies without wait-class support.
//
//eagletree:hotpath
func (c *Controller) canRun(r *iface.Request) bool {
	st := stateOf(r)
	if st == nil || st.blocked {
		return false
	}
	return c.canRunNow(r, st)
}

// canRunNow derives readiness from current controller state.
//
//eagletree:hotpath
func (c *Controller) canRunNow(r *iface.Request, st *reqState) bool {
	switch st.kind {
	case opTransRead, opTransWrite:
		return !c.inflight[st.trans.PPA.LUN]
	case opTransErase:
		return !c.inflight[st.trans.Block.LUN]
	case opGCRead, opWLRead, opGCCopyback:
		return !c.inflight[st.src.LUN]
	case opGCWrite, opWLWrite:
		// Migration writes stay on the victim's LUN: the read already
		// landed there and cross-LUN migration would need a channel hop the
		// paper's GC does not model.
		return !c.inflight[st.src.LUN] && c.bm.CanAlloc(st.src.LUN, c.streamOf(r, st))
	case opGCErase:
		return !c.inflight[st.src.LUN]
	}
	switch r.Type {
	case iface.Read:
		ppa, ok := c.lookup(r, st)
		if !ok {
			return true // completes immediately as an unmapped read
		}
		return !c.inflight[ppa.LUN]
	case iface.Write:
		return c.canRunWrite(c.streamOf(r, st))
	default: // Trim
		return true
	}
}

// Evaluate implements sched.Gate. It answers exactly like canRun and, on
// failure, names the wait-class the request should park under: the target
// LUN's index for LUN-bound operations, LUNs+stream for application writes
// whose stream has no allocatable idle LUN, or -1 when the failure is not
// class-wide (migration writes, which wait on two conditions at once).
//
// Parking is sound because a class's blocking condition is shared by every
// member: a LUN class waits on inflight[L], which only ioDone clears (and
// that bumps lunEpoch[L]); a stream class waits on canRunWrite(s), which is
// constant while writeEpoch stands still, under streams that are constant
// while tempEpoch stands still. Reads are additionally indexed in readWait:
// a mapping change can retarget a parked read without either token moving,
// so remap/unmap wake the affected LPN's waiters directly.
//
//eagletree:hotpath
func (c *Controller) Evaluate(r *iface.Request) (bool, int) {
	st := stateOf(r)
	if st == nil || st.blocked {
		return false, -1
	}
	switch st.kind {
	case opTransRead, opTransWrite:
		if lun := st.trans.PPA.LUN; c.inflight[lun] {
			return false, lun
		}
		return true, -1
	case opTransErase:
		if lun := st.trans.Block.LUN; c.inflight[lun] {
			return false, lun
		}
		return true, -1
	case opGCRead, opWLRead, opGCCopyback, opGCErase:
		if lun := st.src.LUN; c.inflight[lun] {
			return false, lun
		}
		return true, -1
	case opGCWrite, opWLWrite:
		return !c.inflight[st.src.LUN] && c.bm.CanAlloc(st.src.LUN, c.streamOf(r, st)), -1
	}
	switch r.Type {
	case iface.Read:
		ppa, mapped := c.lookup(r, st)
		if !mapped || !c.inflight[ppa.LUN] {
			if st.waitRead {
				c.readWaitDel(r, st)
			}
			return true, -1
		}
		if !st.waitRead {
			st.waitRead = true
			st.waitClass = int32(ppa.LUN)
			c.readWait[r.LPN] = append(c.readWait[r.LPN], r)
		}
		return false, ppa.LUN
	case iface.Write:
		s := c.streamOf(r, st)
		if c.canRunWrite(s) {
			return true, -1
		}
		if c.detectorLive {
			// A live detector reclassifies streams on every recorded write;
			// parked writes would be flushed for re-classification just as
			// often, so parking buys nothing — keep them on the scan path.
			return false, -1
		}
		return false, len(c.inflight) + int(s)
	default: // Trim
		return true, -1
	}
}

// ClassToken implements sched.Gate: the wake token for a wait-class. LUN
// classes move when the LUN's in-flight operation completes; stream classes
// move when write capacity (writeEpoch) or stream assignment (tempEpoch)
// may have changed. Both summands are monotonic, so the sum changes exactly
// when either input does.
//
//eagletree:hotpath
func (c *Controller) ClassToken(class int) uint64 {
	if class < len(c.lunEpoch) {
		return c.lunEpoch[class]
	}
	return c.writeEpoch + c.tempEpoch
}

// ClassStable implements sched.Gate: the membership-validity token. LUN
// classes never go stale — an operation's target LUN is fixed for its
// queued lifetime (reads that get remapped are woken individually through
// readWait). Stream classes go stale when stream assignment inputs change:
// temperature hints, the WL-cold set, or detector state, all tracked by
// tempEpoch.
//
//eagletree:hotpath
func (c *Controller) ClassStable(class int) uint64 {
	if class < len(c.lunEpoch) {
		return 0
	}
	return c.tempEpoch
}

// wakeRead releases every parked read waiting on the LPN back into the scan
// path: the mapping just changed, so the read's target LUN (or its very
// mappedness) is no longer what it parked under.
//
//eagletree:hotpath
func (c *Controller) wakeRead(lpn iface.LPN) {
	if len(c.readWait) == 0 {
		return
	}
	lst, ok := c.readWait[lpn]
	if !ok {
		return
	}
	delete(c.readWait, lpn)
	for i, r := range lst {
		lst[i] = nil
		st := stateOf(r)
		if st == nil {
			continue
		}
		st.waitRead = false
		if c.classed != nil {
			c.classed.WakeRequest(r, int(st.waitClass))
		}
		st.waitClass = -1
	}
}

// readWaitDel removes a read that is about to dispatch from the readWait
// index.
//
//eagletree:hotpath
func (c *Controller) readWaitDel(r *iface.Request, st *reqState) {
	st.waitRead = false
	st.waitClass = -1
	lst := c.readWait[r.LPN]
	for i := range lst {
		if lst[i] == r {
			lst[i] = lst[len(lst)-1]
			lst[len(lst)-1] = nil
			lst = lst[:len(lst)-1]
			break
		}
	}
	if len(lst) == 0 {
		delete(c.readWait, r.LPN)
	} else {
		c.readWait[r.LPN] = lst
	}
}
