package controller

import (
	"fmt"
	"sort"

	"eagletree/internal/fault"
	"eagletree/internal/flash"
	"eagletree/internal/ftl"
	"eagletree/internal/gc"
	"eagletree/internal/hotcold"
	"eagletree/internal/iface"
	"eagletree/internal/sched"
	"eagletree/internal/sim"
	"eagletree/internal/wl"
)

// State is the controller's complete serializable state at a quiescent
// point: no IO in flight, no GC or WL run active, an empty scheduler queue,
// and a drained write buffer. It covers the flash array, the FTL mapping
// tables (page map or DFTL including CMT contents), the block manager's
// allocation state, GC and wear-leveling counters, open-interface hint
// tables, and the stateful extras (MBF detector, random GC victim RNG,
// round-robin allocator position) when the configuration uses them.
//
// Scheduler and OS policy queues are empty at every snapshot point, so
// policy transients other than the ones named above intentionally reset at
// restore — like controller RAM on a power cycle, while everything the
// device would persist (flash contents, mapping tables, wear) survives.
type State struct {
	Counters     Counters
	NextID       uint64
	Completions  uint64
	OpsSinceScan uint64
	Reliability  Reliability

	Array        flash.ArrayState
	BlockManager ftl.BlockManagerState

	// Exactly one of PageMap and DFTL is set, matching Config.Mapping.
	PageMap *ftl.PageMapState
	DFTL    *ftl.DFTLState

	GC gc.CollectorState
	WL wl.LevelerState

	// Open-interface hint tables, sorted by key for stable serialization.
	ThreadPrio []ThreadPrioEntry
	Locality   []LocalityEntry
	TempHints  []TempHintEntry
	WLCold     []iface.LPN

	// Optional stateful-component extras; nil when the configuration does
	// not use the component.
	Detector     *hotcold.MBFState
	GCRandomRNG  *[4]uint64
	AllocRRState *int
	Fault        *fault.State
}

// ThreadPrioEntry is one priority hint received over the bus.
type ThreadPrioEntry struct {
	Thread int
	Prio   iface.Priority
}

// LocalityEntry is one update-locality binding received over the bus.
type LocalityEntry struct {
	LPN   iface.LPN
	Group int
}

// TempHintEntry is one remembered per-page temperature.
type TempHintEntry struct {
	LPN  iface.LPN
	Temp iface.Temperature
}

// checkQuiescent verifies the controller holds no transient work: snapshots
// of a mid-flight controller would silently drop scheduled flash operations.
func (c *Controller) checkQuiescent() error {
	for lun, busy := range c.inflight {
		if busy {
			return fmt.Errorf("controller: LUN %d has an operation in flight", lun)
		}
	}
	for lun, active := range c.gcActive {
		if active {
			return fmt.Errorf("controller: LUN %d has a GC/WL run active", lun)
		}
	}
	if n := c.cfg.Policy.Len(); n != 0 {
		return fmt.Errorf("controller: scheduler queue holds %d requests", n)
	}
	if len(c.deferred) != 0 {
		return fmt.Errorf("controller: %d writes deferred", len(c.deferred))
	}
	if c.lastTrans != nil {
		return fmt.Errorf("controller: translation chain in flight")
	}
	if len(c.condemned) != 0 {
		return fmt.Errorf("controller: %d condemned blocks awaiting relocation", len(c.condemned))
	}
	if c.buffer != nil && (c.buffer.used != 0 || len(c.buffer.waiting) != 0) {
		return fmt.Errorf("controller: write buffer holds %d pages, %d writes stalled",
			c.buffer.used, len(c.buffer.waiting))
	}
	return nil
}

// State captures the controller's complete state. It fails unless the
// controller is quiescent (drive the engine until idle first).
func (c *Controller) State() (*State, error) {
	if err := c.checkQuiescent(); err != nil {
		return nil, err
	}
	st := &State{
		Counters:     c.counters,
		NextID:       c.nextID,
		Completions:  c.completions,
		OpsSinceScan: c.opsSinceScan,
		Reliability:  c.reliability,
		Array:        c.array.State(),
		BlockManager: c.bm.State(),
		GC:           c.gc.State(),
		WL:           c.lvl.State(),
	}
	switch m := c.mapper.(type) {
	case *ftl.DFTL:
		ds := m.State()
		st.DFTL = &ds
	case *ftl.PageMap:
		ps := m.State()
		st.PageMap = &ps
	default:
		return nil, fmt.Errorf("%w (mapper %q)", ErrSnapshotUnsupported, c.mapper.Name())
	}
	for th, p := range c.threadPrio {
		st.ThreadPrio = append(st.ThreadPrio, ThreadPrioEntry{Thread: th, Prio: p})
	}
	sort.Slice(st.ThreadPrio, func(i, j int) bool { return st.ThreadPrio[i].Thread < st.ThreadPrio[j].Thread })
	for lpn, g := range c.locality {
		st.Locality = append(st.Locality, LocalityEntry{LPN: lpn, Group: g})
	}
	sort.Slice(st.Locality, func(i, j int) bool { return st.Locality[i].LPN < st.Locality[j].LPN })
	for lpn, t := range c.tempHints {
		st.TempHints = append(st.TempHints, TempHintEntry{LPN: lpn, Temp: t})
	}
	sort.Slice(st.TempHints, func(i, j int) bool { return st.TempHints[i].LPN < st.TempHints[j].LPN })
	for lpn := range c.wlCold {
		st.WLCold = append(st.WLCold, lpn)
	}
	sort.Slice(st.WLCold, func(i, j int) bool { return st.WLCold[i] < st.WLCold[j] })

	if mbf, ok := c.cfg.Detector.(*hotcold.MBF); ok {
		ms := mbf.State()
		st.Detector = &ms
	}
	if r, ok := c.cfg.GCPolicy.(*gc.Random); ok && r.RNG != nil {
		s := r.RNG.State()
		st.GCRandomRNG = &s
	}
	if rr, ok := c.cfg.Alloc.(*sched.RoundRobin); ok {
		pos := rr.Pos()
		st.AllocRRState = &pos
	}
	if c.cfg.Fault != nil {
		fs := c.cfg.Fault.State()
		st.Fault = &fs
	}
	return st, nil
}

// RestoreState overwrites a freshly built controller with a snapshot. The
// controller's configuration must be structurally compatible with the one
// the snapshot was taken under: same geometry, same mapping scheme (and a
// CMT at least as large), same translation reservation. Policy-level knobs
// (scheduler, allocator, GC greediness, queue depth) may differ — that is
// the point of prepare-once-restore-many sweeps. Call Kick afterwards, once
// the engine clock has been restored, so GC reacts to any configuration
// change (for example a raised greediness target).
func (c *Controller) RestoreState(st *State) error {
	if err := c.checkQuiescent(); err != nil {
		return fmt.Errorf("restore target not quiescent: %w", err)
	}
	switch m := c.mapper.(type) {
	case *ftl.DFTL:
		if st.DFTL == nil {
			return fmt.Errorf("%w: snapshot has no DFTL state but config maps with DFTL", ErrStateMismatch)
		}
		if err := m.RestoreState(*st.DFTL); err != nil {
			return err
		}
	case *ftl.PageMap:
		if st.PageMap == nil {
			return fmt.Errorf("%w: snapshot has no page-map state but config maps with a page map", ErrStateMismatch)
		}
		if err := m.RestoreState(*st.PageMap); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w (mapper %q)", ErrSnapshotUnsupported, c.mapper.Name())
	}
	if err := c.array.RestoreState(st.Array); err != nil {
		return err
	}
	if err := c.bm.RestoreState(st.BlockManager); err != nil {
		return err
	}
	if err := c.gc.RestoreState(st.GC); err != nil {
		return err
	}
	c.lvl.RestoreState(st.WL)
	c.counters = st.Counters
	c.reliability = st.Reliability
	c.nextID = st.NextID
	c.completions = st.Completions
	c.opsSinceScan = st.OpsSinceScan

	c.threadPrio = make(map[int]iface.Priority, len(st.ThreadPrio))
	for _, e := range st.ThreadPrio {
		c.threadPrio[e.Thread] = e.Prio
	}
	c.locality = make(map[iface.LPN]int, len(st.Locality))
	for _, e := range st.Locality {
		c.locality[e.LPN] = e.Group
	}
	c.tempHints = make(map[iface.LPN]iface.Temperature, len(st.TempHints))
	for _, e := range st.TempHints {
		c.tempHints[e.LPN] = e.Temp
	}
	c.wlCold = make(map[iface.LPN]struct{}, len(st.WLCold))
	for _, lpn := range st.WLCold {
		c.wlCold[lpn] = struct{}{}
	}

	if mbf, ok := c.cfg.Detector.(*hotcold.MBF); ok {
		if st.Detector == nil {
			return fmt.Errorf("%w: config uses the MBF detector but snapshot has no detector state", ErrStateMismatch)
		}
		if err := mbf.RestoreState(*st.Detector); err != nil {
			return err
		}
	}
	if r, ok := c.cfg.GCPolicy.(*gc.Random); ok && st.GCRandomRNG != nil {
		if r.RNG == nil {
			r.RNG = sim.NewRNG(0)
		}
		r.RNG.SetState(*st.GCRandomRNG)
	}
	if rr, ok := c.cfg.Alloc.(*sched.RoundRobin); ok && st.AllocRRState != nil {
		rr.SetPos(*st.AllocRRState)
	}
	if c.cfg.Fault != nil && st.Fault != nil {
		c.cfg.Fault.RestoreState(*st.Fault)
	}

	// The construction-time static-WL scan arm belongs to the pre-restore
	// clock; drop it. The first post-restore submission re-arms the scan,
	// exactly as it would after the device went quiet.
	if c.wlScanArmed {
		c.wlScanEv.Cancel()
		c.wlScanEv = nil
		c.wlScanArmed = false
	}
	// Invalidate every readiness cache: restored state has no relation to
	// whatever epochs the fresh controller handed out before restore.
	c.mapEpoch++
	c.tempEpoch++
	c.writeEpoch++
	for i := range c.writeMemo {
		c.writeMemo[i] = writeMemoEntry{}
	}
	return nil
}

// Kick re-evaluates GC triggers on every LUN against the *current*
// configuration. After restoring a snapshot prepared under a lazier GC
// target, free space may already sit at or below the new greediness floor
// with no write completion ever coming to start collection — without the
// kick the first measured write could deadlock.
func (c *Controller) Kick() {
	for lun := range c.gcActive {
		c.maybeGC(lun)
	}
}
