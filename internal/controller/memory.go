package controller

import (
	"fmt"
	"sort"
	"strings"
)

// MemoryManager tracks how the controller's RAM and battery-backed (safe)
// RAM budgets are spent: mapping tables, the cached mapping table, IO
// buffers. Budgets of zero mean unconstrained (accounting only).
type MemoryManager struct {
	ramBudget  int64
	safeBudget int64
	uses       map[string]memUse
}

type memUse struct {
	bytes int64
	safe  bool
}

// NewMemoryManager creates a manager with the given budgets in bytes.
func NewMemoryManager(ramBudget, safeBudget int64) *MemoryManager {
	return &MemoryManager{ramBudget: ramBudget, safeBudget: safeBudget, uses: make(map[string]memUse)}
}

// Reserve books bytes under a named purpose, in safe RAM when safe is true.
// It fails when a non-zero budget would be exceeded.
func (m *MemoryManager) Reserve(name string, bytes int64, safe bool) error {
	if bytes < 0 {
		return fmt.Errorf("%w: negative reservation %d for %q", ErrMemoryBudget, bytes, name)
	}
	budget, used := m.ramBudget, m.RAMUsed()
	if safe {
		budget, used = m.safeBudget, m.SafeUsed()
	}
	if old, ok := m.uses[name]; ok && old.safe == safe {
		used -= old.bytes
	}
	if budget > 0 && used+bytes > budget {
		kind := "RAM"
		if safe {
			kind = "safe RAM"
		}
		return fmt.Errorf("%w: %q needs %d bytes of %s, only %d of %d free",
			ErrMemoryBudget, name, bytes, kind, budget-used, budget)
	}
	m.uses[name] = memUse{bytes: bytes, safe: safe}
	return nil
}

// RAMUsed returns bytes booked against plain RAM.
func (m *MemoryManager) RAMUsed() int64 {
	var sum int64
	for _, u := range m.uses {
		if !u.safe {
			sum += u.bytes
		}
	}
	return sum
}

// SafeUsed returns bytes booked against battery-backed RAM.
func (m *MemoryManager) SafeUsed() int64 {
	var sum int64
	for _, u := range m.uses {
		if u.safe {
			sum += u.bytes
		}
	}
	return sum
}

// Report renders the reservations, stable-sorted by name.
func (m *MemoryManager) Report() string {
	names := make([]string, 0, len(m.uses))
	for name := range m.uses {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		u := m.uses[name]
		kind := "ram"
		if u.safe {
			kind = "safe-ram"
		}
		fmt.Fprintf(&b, "%-16s %10d bytes  %s\n", name, u.bytes, kind)
	}
	fmt.Fprintf(&b, "%-16s %10d bytes  ram (budget %d)\n", "total", m.RAMUsed(), m.ramBudget)
	fmt.Fprintf(&b, "%-16s %10d bytes  safe-ram (budget %d)\n", "total", m.SafeUsed(), m.safeBudget)
	return b.String()
}
