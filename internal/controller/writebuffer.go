package controller

import "eagletree/internal/iface"

// writeBuffer models the battery-backed-RAM write buffer module the paper
// suggests as a controller extension: application writes are absorbed at RAM
// latency and flushed to flash in the background. When the buffer is full,
// writes stall until a flush frees a slot — the backpressure a real bounded
// buffer exhibits.
type writeBuffer struct {
	capacity int
	used     int
	waiting  []*iface.Request // writes stalled on a full buffer
}

func newWriteBuffer(capacity int) *writeBuffer {
	return &writeBuffer{capacity: capacity}
}

// bufferWrite absorbs (or stalls) an application write.
func (c *Controller) bufferWrite(r *iface.Request) {
	if c.buffer.used >= c.buffer.capacity {
		c.counters.BufferStalls++
		c.buffer.waiting = append(c.buffer.waiting, r)
		return
	}
	c.absorb(r)
}

// absorb completes the write at RAM latency and enqueues the background
// flush that performs the actual flash program.
func (c *Controller) absorb(r *iface.Request) {
	c.buffer.used++
	now := c.eng.Now()
	r.Dispatched = now

	// The flush inherits the data's identity (LPN, tags, thread) so stream
	// separation and mapping behave exactly as for an unbuffered write, but
	// it is invisible to per-request statistics: the application-visible
	// latency is the RAM store, already recorded on r.
	fst := c.newState(opData)
	fst.buffered = true
	flush := c.newInternal(iface.Write, iface.SourceApp, r.LPN, fst)
	flush.Thread = r.Thread
	flush.Tags = r.Tags

	c.eng.ScheduleCall(now.Add(c.cfg.WriteBufferLatency), c.flushFn, r)
	c.cfg.Policy.Push(flush)
	c.scheduleDispatch()
}

// flushDone is the engine callback completing a buffered write at RAM
// latency: the application sees the store finish while the background flush
// still heads for flash.
func (c *Controller) flushDone(arg any) {
	r := arg.(*iface.Request)
	r.Completed = c.eng.Now()
	c.stats.RecordCompletion(r)
	if st := stateOf(r); st != nil {
		r.Ctl = nil
		c.freeState(st)
	}
	if c.cfg.OnComplete != nil {
		c.cfg.OnComplete(r)
	}
}

// onFlushDone frees a buffer slot and admits a stalled write, if any.
func (c *Controller) onFlushDone() {
	c.buffer.used--
	if len(c.buffer.waiting) > 0 {
		next := c.buffer.waiting[0]
		c.buffer.waiting = c.buffer.waiting[1:]
		c.absorb(next)
	}
}
