package controller

import (
	"errors"
	"fmt"
	"unsafe"

	"eagletree/internal/flash"
	"eagletree/internal/ftl"
	"eagletree/internal/iface"
	"eagletree/internal/sched"
	"eagletree/internal/sim"
	"eagletree/internal/stats"
)

// pruneEvery bounds reservation-list growth: after this many completions the
// flash array drops intervals that ended in the past.
const pruneEvery = 2048

// streamOf returns the block-manager write stream the request fills, cached
// on the request state until the next temperature-affecting mutation.
//
//eagletree:hotpath
func (c *Controller) streamOf(r *iface.Request, st *reqState) ftl.Stream {
	if st.streamEpoch != c.tempEpoch {
		st.stream = c.computeStream(r, st)
		st.streamEpoch = c.tempEpoch
	}
	return st.stream
}

// computeStream maps a request onto the block-manager write stream it fills.
//
//eagletree:hotpath
func (c *Controller) computeStream(r *iface.Request, st *reqState) ftl.Stream {
	switch st.kind {
	case opGCWrite, opGCCopyback:
		// Temperature-aware GC: migrating live pages back into a shared GC
		// block would re-mix hot and cold data that the write path carefully
		// separated, so known-temperature pages keep their class. The GC
		// variants are internal streams (reserve access), preventing a
		// migration/allocation deadlock.
		switch c.tempOf(r.LPN) {
		case iface.TempHot:
			return ftl.StreamGCHot
		case iface.TempCold:
			return ftl.StreamGCCold
		}
		return ftl.StreamGC
	case opWLWrite:
		return ftl.StreamWL
	case opTransWrite:
		return ftl.StreamDefault // translation pages live in their own region
	}
	if r.Tags.Locality != 0 {
		return ftl.LocalityStream(r.Tags.Locality)
	}
	temp := r.Tags.Temperature
	if temp == iface.TempUnknown {
		temp = c.tempOf(r.LPN)
	}
	switch temp {
	case iface.TempHot:
		return ftl.StreamHot
	case iface.TempCold:
		return ftl.StreamCold
	default:
		return ftl.StreamDefault
	}
}

// tempOf estimates a page's temperature from the three sources the paper
// lists, in confidence order: explicit open-interface information, the
// static-WL cold inference, then the hot-data detector.
//
//eagletree:hotpath
func (c *Controller) tempOf(lpn iface.LPN) iface.Temperature {
	if t, ok := c.tempHints[lpn]; ok {
		return t
	}
	if _, ok := c.wlCold[lpn]; ok {
		// Inference source (1) of the paper: pages migrated by static
		// wear leveling are cold until the application touches them.
		return iface.TempCold
	}
	return c.cfg.Detector.Classify(lpn)
}

// alloc allocates a physical page and invalidates the write-readiness memo:
// the allocation may have consumed a LUN's last available block or opened a
// fresh frontier.
//
//eagletree:hotpath
func (c *Controller) alloc(lun int, stream ftl.Stream) (flash.PPA, error) {
	c.writeEpoch++
	return c.bm.Alloc(lun, stream)
}

// remap updates the forward mapping and invalidates cached lookups. A read
// parked on the page's old LUN may now target a different (possibly idle)
// LUN, so any parked waiter is woken for re-evaluation.
//
//eagletree:hotpath
func (c *Controller) remap(lpn iface.LPN, ppa flash.PPA) (flash.PPA, bool) {
	c.mapEpoch++
	c.wakeRead(lpn)
	return c.mapper.Map(lpn, ppa)
}

// unmap drops the forward mapping and invalidates cached lookups. A queued
// read of the LPN becomes immediately runnable as an unmapped read, so any
// parked waiter is woken.
//
//eagletree:hotpath
func (c *Controller) unmap(lpn iface.LPN) (flash.PPA, bool) {
	c.mapEpoch++
	c.wakeRead(lpn)
	return c.mapper.Unmap(lpn)
}

// newInternal creates a controller-generated request carrying the state,
// reusing a recycled request when possible.
//
//eagletree:hotpath
func (c *Controller) newInternal(t iface.ReqType, src iface.Source, lpn iface.LPN, st *reqState) *iface.Request {
	c.nextID++
	var r *iface.Request
	if n := len(c.reqPool); n > 0 {
		r = c.reqPool[n-1]
		c.reqPool = c.reqPool[:n-1]
	} else {
		r = &iface.Request{}
	}
	*r = iface.Request{
		ID:        1<<63 | c.nextID, // high bit marks internal IDs in traces
		Type:      t,
		LPN:       lpn,
		Source:    src,
		Submitted: c.eng.Now(),
		Issued:    c.eng.Now(),
		Ctl:       unsafe.Pointer(st),
	}
	return r
}

// recycleRequest returns a finished controller-owned request to the pool.
// Callers must only pass requests that are invisible outside the controller
// — internal sources (GC/WL/Map) and buffered-write flushes — whose
// completions are delivered nowhere. Traces are pointer-free (they copy
// value fields), so reuse is safe even while recording.
//
//eagletree:hotpath
func (c *Controller) recycleRequest(r *iface.Request) {
	if c.lastTrans == r {
		// A finished chain tail imposes no ordering on future chains; the
		// nil check in enqueueTransChain would have skipped it anyway.
		c.lastTrans = nil
	}
	c.reqPool = append(c.reqPool, r)
}

// ensureAccess runs the mapping scheme's Access step once per request. When
// the scheme needs translation IOs first, they are enqueued as a dependency
// chain ahead of r (which is re-queued blocked) and ensureAccess reports
// false: the caller must stop and wait for the chain.
//
//eagletree:hotpath
func (c *Controller) ensureAccess(r *iface.Request, st *reqState, write bool) bool {
	if st.accessd {
		return true
	}
	st.accessd = true
	ops := c.mapper.Access(r.LPN, write)
	if len(ops) == 0 {
		return true
	}
	c.enqueueTransChain(ops, r)
	return false
}

// enqueueTransChain pushes the translation ops as SourceMap requests that
// execute strictly in order, then unblock final.
//
// Chains are additionally serialized against each other: the head of this
// chain waits for the tail of the previously planned one. The mapping scheme
// plans physical addresses, stale pointers and ring erases at Access time, so
// translation ops are only correct when executed in global plan order — and a
// real controller serializes its metadata engine the same way.
//
//eagletree:hotpath
func (c *Controller) enqueueTransChain(ops []ftl.TransOp, final *iface.Request) {
	prev := (*iface.Request)(nil)
	for i, op := range ops {
		var t iface.ReqType
		var kind opKind
		switch op.Kind {
		case ftl.TransRead:
			t, kind = iface.Read, opTransRead
		case ftl.TransWrite:
			t, kind = iface.Write, opTransWrite
		default:
			t, kind = iface.Erase, opTransErase
		}
		st := c.newState(kind)
		st.trans = op
		st.blocked = i > 0
		req := c.newInternal(t, iface.SourceMap, final.LPN, st)
		if i == 0 {
			if lt := c.lastTrans; lt != nil {
				if ls := stateOf(lt); ls != nil {
					st.blocked = true
					ls.next = append(ls.next, req)
				}
			}
		}
		if prev != nil {
			ps := stateOf(prev)
			ps.next = append(ps.next, req)
		}
		prev = req
		if st.blocked {
			c.cfg.Policy.PushBlocked(req)
		} else {
			c.cfg.Policy.Push(req)
		}
	}
	c.lastTrans = prev
	fs := stateOf(final)
	fs.blocked = true
	stateOf(prev).next = append(stateOf(prev).next, final)
	c.cfg.Policy.PushBlocked(final)
}

// execute dispatches one popped request to the flash array (or completes it
// directly when no flash work is needed).
//
//eagletree:hotpath
func (c *Controller) execute(r *iface.Request) {
	now := c.eng.Now()
	r.Dispatched = now
	if tr := c.stats.Trace(); tr != nil {
		tr.Record(now, r.ID, stats.StageDispatched, r)
	}
	st := stateOf(r)
	switch st.kind {
	case opTransRead:
		sched, err := c.array.ScheduleRead(st.trans.PPA, now)
		c.must(err, r)
		c.busyUntil(st.trans.PPA.LUN, sched.Done, r, st)
	case opTransWrite:
		sched, err := c.array.ScheduleWrite(st.trans.PPA, now)
		c.must(err, r)
		if st.trans.HasStale {
			c.must(c.array.Invalidate(st.trans.Stale), r)
		}
		c.busyUntil(st.trans.PPA.LUN, sched.Done, r, st)
	case opTransErase:
		sched, err := c.array.ScheduleErase(st.trans.Block, now)
		c.must(err, r)
		c.busyUntil(st.trans.Block.LUN, sched.Done, r, st)
	case opGCRead, opWLRead:
		c.executeMigrationRead(r, st)
	case opGCWrite, opWLWrite:
		c.executeMigrationWrite(r, st)
	case opGCCopyback:
		c.executeCopyback(r, st)
	case opGCErase:
		sched, err := c.array.ScheduleErase(st.run.victim, now)
		if ferr := faultOf(err); ferr != nil {
			c.onEraseFault(ferr, r, st)
		} else {
			c.must(err, r)
		}
		c.busyUntil(st.run.victim.LUN, sched.Done, r, st)
	default:
		c.executeData(r, st)
	}
}

//eagletree:hotpath
func (c *Controller) executeData(r *iface.Request, st *reqState) {
	now := c.eng.Now()
	switch r.Type {
	case iface.Read:
		ppa, ok := c.lookup(r, st)
		if !ok {
			// Reading a never-written page: nothing on flash. Complete after
			// the command-handling latency only, as a real device returning
			// zeroes without touching a chip.
			c.counters.UnmappedReads++
			st.errored = true
			c.eng.ScheduleCall(now.Add(c.cfg.Timing.Cmd), c.ioDoneFn, r)
			return
		}
		if !c.ensureAccess(r, st, false) {
			return // waiting on translation chain
		}
		sched, err := c.array.ScheduleRead(ppa, now)
		c.must(err, r)
		c.busyUntil(ppa.LUN, sched.Done, r, st)
	case iface.Write:
		if !c.ensureAccess(r, st, true) {
			return
		}
		stream := c.streamOf(r, st)
		views := c.lunViews(stream)
		lun, ok := c.cfg.Alloc.PickLUN(r, views)
		if !ok {
			// canRun said yes but the allocator refused (e.g. striped
			// placement with a busy home LUN). Defer until a completion
			// changes the picture; re-popping immediately would livelock.
			st.blocked = true
			c.deferred = append(c.deferred, r)
			c.cfg.Policy.PushBlocked(r)
			return
		}
		ppa, err := c.alloc(lun, stream)
		c.must(err, r)
		sched, err := c.array.ScheduleWrite(ppa, now)
		if ferr := faultOf(err); ferr != nil {
			// The page burned but the old mapping is intact; refire the
			// write after the failed program's latency elapses.
			c.onProgramFault(ferr, r, st)
			c.busyUntil(lun, sched.Done, r, st)
			return
		}
		c.must(err, r)
		if old, had := c.remap(r.LPN, ppa); had {
			c.must(c.array.Invalidate(old), r)
		}
		if r.Source == iface.SourceApp {
			if _, had := c.wlCold[r.LPN]; had {
				delete(c.wlCold, r.LPN) // the page proved itself non-cold
				c.tempEpoch++
			}
			c.cfg.Detector.RecordWrite(r.LPN)
			if c.detectorLive {
				// Only a live detector can change a future classification;
				// the default hotcold.None never does, so cached streams
				// stay valid across app writes.
				c.tempEpoch++
			}
		}
		c.busyUntil(lun, sched.Done, r, st)
	case iface.Trim:
		if old, had := c.unmap(r.LPN); had {
			c.must(c.array.Invalidate(old), r)
		}
		c.finish(r, now)
	default:
		c.badRequestType(r)
	}
}

// badRequestType is the cold tail of executeData: building the error message
// allocates, so it stays out of the annotated hot path.
func (c *Controller) badRequestType(r *iface.Request) {
	c.must(fmt.Errorf("controller: unexpected external request type %v", r.Type), r)
}

// lunViews snapshots per-LUN state for the write allocator. The slice is a
// reused scratch buffer, valid only until the next call.
//
//eagletree:hotpath
func (c *Controller) lunViews(stream ftl.Stream) []sched.LUNView {
	views := c.views
	for lun := range views {
		views[lun] = sched.LUNView{
			Busy:     c.inflight[lun],
			FreeAt:   c.array.LUNFreeAt(lun),
			CanAlloc: c.bm.CanAlloc(lun, stream),
		}
	}
	return views
}

// faultOf extracts an injected-fault error — a recoverable outcome the
// controller handles — from a schedule error. Anything else stays fatal.
func faultOf(err error) *flash.FaultError {
	if err == nil {
		return nil
	}
	var ferr *flash.FaultError
	if errors.As(err, &ferr) {
		return ferr
	}
	return nil
}

// onProgramFault records an injected program failure and arms the request to
// refire: the burned page stays behind (invalid, counted against the block)
// and ioDone re-queues the write, which allocates a fresh page — on a new
// frontier when the block retired with the failure.
func (c *Controller) onProgramFault(ferr *flash.FaultError, r *iface.Request, st *reqState) {
	c.reliability.Retries++
	st.refire = true
	if tr := c.stats.Trace(); tr != nil {
		tr.Record(c.eng.Now(), r.ID, stats.StageProgramFault, r)
	}
	if ferr.Grown {
		c.retireBlock(ferr.Block)
	}
}

// onEraseFault records an injected erase failure on a GC/WL victim. The
// block retired (all its pages were already migrated, so nothing is lost);
// the run completes without releasing it back to the free pool.
func (c *Controller) onEraseFault(ferr *flash.FaultError, r *iface.Request, st *reqState) {
	c.reliability.EraseFailures++
	c.reliability.GrownBadBlocks++
	st.run.failed = true
	c.bm.Condemn(ferr.Block) // victims are off the manager's books; no-op by design
	c.writeEpoch++
	if tr := c.stats.Trace(); tr != nil {
		tr.Record(c.eng.Now(), r.ID, stats.StageEraseFault, r)
	}
}

// retireBlock handles a block grown bad mid-run: the allocation books close
// (open frontier dropped, free-pool entry removed — the pool shrinks for
// good) and any live pages still on it queue for relocation.
func (c *Controller) retireBlock(b flash.BlockID) {
	c.reliability.GrownBadBlocks++
	c.bm.Condemn(b)
	c.writeEpoch++ // the pool shrank; write readiness may have changed
	if c.array.ValidPagesIn(b) > 0 {
		c.condemned = append(c.condemned, b)
		c.drainCondemned(b.LUN)
	}
}

// must panics on errors that can only be controller bugs (NAND constraint
// violations, allocation failures after canRun approved). Failing loudly
// here is deliberate: continuing would silently corrupt every metric the
// simulator exists to produce.
func (c *Controller) must(err error, r *iface.Request) {
	if err != nil {
		panic(fmt.Sprintf("controller: dispatching %v: %v", r, err))
	}
}

// busyUntil marks the LUN occupied and schedules the request's completion.
//
//eagletree:hotpath
func (c *Controller) busyUntil(lun int, done sim.Time, r *iface.Request, st *reqState) {
	c.inflight[lun] = true
	c.writeEpoch++
	st.busyLUN = lun
	c.eng.ScheduleCall(done, c.ioDoneFn, r)
}

// ioDone is the engine callback for every flash completion: it releases the
// LUN the request occupied (if any) and finishes the request. Bound once in
// New so per-IO scheduling carries only the request pointer.
//
//eagletree:hotpath
func (c *Controller) ioDone(arg any) {
	r := arg.(*iface.Request)
	st := stateOf(r)
	if st.busyLUN >= 0 {
		c.inflight[st.busyLUN] = false
		c.writeEpoch++
		c.lunEpoch[st.busyLUN]++ // the idle LUN wakes its parked wait-class
		st.busyLUN = -1
	}
	if st.refire {
		// An injected program failure burned this write's page. Re-queue it:
		// the next dispatch allocates a fresh page for the same LPN, and the
		// mapping still points at the old data until the retry lands.
		st.refire = false
		c.cfg.Policy.Push(r)
		c.scheduleDispatch()
		return
	}
	c.finish(r, c.eng.Now())
}

// finish completes a request: stamps it, records statistics, unblocks any
// dependency chain successor, notifies GC/WL bookkeeping, delivers external
// completions to the OS, re-arms dispatch, and recycles the request state.
//
//eagletree:hotpath
func (c *Controller) finish(r *iface.Request, at sim.Time) {
	st := stateOf(r)
	r.Completed = at
	if !st.buffered {
		if st.tsinkEpoch == c.stats.SinkEpoch() {
			c.stats.RecordCompletionTo(r, st.tsink)
		} else {
			c.stats.RecordCompletion(r)
		}
	}
	c.unblockSuccessors(st)
	// Detach before any callback below: OnComplete may synchronously submit
	// new IOs, possibly reusing this very request object.
	r.Ctl = nil

	switch st.kind {
	case opGCWrite, opGCCopyback:
		if st.run.condemn {
			c.reliability.Relocations++
		} else {
			c.counters.GCMigratedPages++
		}
		st.run.pending--
		c.checkRunDone(st.run)
	case opWLWrite:
		c.counters.WLMigratedPages++
		st.run.pending--
		c.checkRunDone(st.run)
	case opGCErase:
		c.finishErase(st.run)
	case opData:
		if r.Type == iface.Write {
			lun := -1
			if ppa, ok := c.mapper.Lookup(r.LPN); ok {
				lun = ppa.LUN
			}
			if lun >= 0 {
				c.maybeGC(lun)
			}
		}
		if r.Source == iface.SourceApp && c.cfg.OnComplete != nil && !st.buffered {
			c.cfg.OnComplete(r)
		}
		if st.buffered {
			c.onFlushDone()
		}
	}

	if len(c.deferred) > 0 {
		for _, d := range c.deferred {
			if ds := stateOf(d); ds != nil {
				ds.blocked = false
				c.cfg.Policy.Unblock(d)
			}
		}
		c.deferred = c.deferred[:0]
	}
	c.opsSinceScan++
	if c.completions++; c.completions%pruneEvery == 0 {
		c.array.Prune(c.eng.Now())
	}
	c.scheduleDispatch()
	ownReq := st.buffered || r.Source != iface.SourceApp
	c.freeState(st)
	if ownReq {
		c.recycleRequest(r)
	}
}

// unblockSuccessors releases every dependency-chain successor of a request
// that is completing or being skipped, making them visible to dispatch again.
//
//eagletree:hotpath
func (c *Controller) unblockSuccessors(st *reqState) {
	for _, succ := range st.next {
		if ss := stateOf(succ); ss != nil {
			ss.blocked = false
			c.cfg.Policy.Unblock(succ)
		}
	}
}

// skipMigration accounts for a migration pair whose page died (the
// application overwrote it) before the pair ran. Successors' own liveness
// re-check will skip them the same way; accounting happens on the write
// half only.
//
//eagletree:hotpath
func (c *Controller) skipMigration(r *iface.Request, st *reqState) {
	c.unblockSuccessors(st)
	r.Ctl = nil
	if st.kind == opGCWrite || st.kind == opWLWrite || st.kind == opGCCopyback {
		st.run.pending--
		c.checkRunDone(st.run)
	}
	c.scheduleDispatch()
	c.freeState(st)
	c.recycleRequest(r) // migration requests are always internal
}

//eagletree:hotpath
func (c *Controller) executeMigrationRead(r *iface.Request, st *reqState) {
	if cur, ok := c.mapper.Lookup(r.LPN); !ok || cur != st.src {
		c.skipMigration(r, st)
		return
	}
	sched, err := c.array.ScheduleRead(st.src, c.eng.Now())
	c.must(err, r)
	c.busyUntil(st.src.LUN, sched.Done, r, st)
}

//eagletree:hotpath
func (c *Controller) executeMigrationWrite(r *iface.Request, st *reqState) {
	if cur, ok := c.mapper.Lookup(r.LPN); !ok || cur != st.src {
		c.skipMigration(r, st)
		return
	}
	if !c.ensureAccess(r, st, true) {
		return
	}
	stream := c.streamOf(r, st)
	ppa, err := c.alloc(st.src.LUN, stream)
	c.must(err, r)
	sched, err := c.array.ScheduleWrite(ppa, c.eng.Now())
	if ferr := faultOf(err); ferr != nil {
		c.onProgramFault(ferr, r, st)
		c.busyUntil(st.src.LUN, sched.Done, r, st)
		return
	}
	c.must(err, r)
	if old, had := c.remap(r.LPN, ppa); had {
		c.must(c.array.Invalidate(old), r)
	}
	if st.kind == opWLWrite {
		c.wlCold[r.LPN] = struct{}{}
		c.tempEpoch++
	}
	c.busyUntil(st.src.LUN, sched.Done, r, st)
}

//eagletree:hotpath
func (c *Controller) executeCopyback(r *iface.Request, st *reqState) {
	if cur, ok := c.mapper.Lookup(r.LPN); !ok || cur != st.src {
		c.skipMigration(r, st)
		return
	}
	if !c.ensureAccess(r, st, true) {
		return
	}
	dst, err := c.alloc(st.src.LUN, ftl.StreamGC)
	c.must(err, r)
	sched, err := c.array.ScheduleCopyback(st.src, dst, c.eng.Now())
	if ferr := faultOf(err); ferr != nil {
		c.onProgramFault(ferr, r, st)
		c.busyUntil(st.src.LUN, sched.Done, r, st)
		return
	}
	c.must(err, r)
	if old, had := c.remap(r.LPN, dst); had {
		c.must(c.array.Invalidate(old), r)
	}
	c.busyUntil(st.src.LUN, sched.Done, r, st)
}
