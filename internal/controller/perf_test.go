package controller

import (
	"testing"

	"eagletree/internal/flash"
	"eagletree/internal/iface"
	"eagletree/internal/sim"
	"eagletree/internal/stats"
)

// perfRig builds a controller with a pre-filled logical space, outside any
// testing.T so benchmarks and alloc guards share it.
func perfRig(tb testing.TB) *rig {
	tb.Helper()
	r := &rig{eng: sim.NewEngine(), bus: iface.NewBus(), col: stats.NewCollector(0, 0)}
	cfg := Config{
		Geometry:      flash.Geometry{Channels: 2, LUNsPerChannel: 2, BlocksPerLUN: 64, PagesPerBlock: 32, PageSize: 4096},
		Timing:        flash.TimingSLC(),
		Overprovision: 0.2,
		GCGreediness:  2,
		WL:            WLOff(),
	}
	ctl, err := New(r.eng, r.bus, r.col, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	r.ctl = ctl
	// Fill the logical space so reads hit mapped pages and overwrites
	// exercise invalidation and, at the floor, garbage collection.
	for lpn := 0; lpn < ctl.LogicalPages(); lpn++ {
		r.id++
		ctl.Submit(&iface.Request{ID: r.id, Type: iface.Write, LPN: iface.LPN(lpn), Source: iface.SourceApp})
		if lpn%64 == 63 {
			r.eng.RunUntilIdle()
		}
	}
	r.eng.RunUntilIdle()
	return r
}

// TestDispatchAllocsPerIO guards the hot-path allocation budget: at most one
// heap allocation per IO end to end through Submit, dispatch, flash
// scheduling and completion — and that one belongs to whoever constructs the
// request. Here requests are recycled, so the dispatch machinery itself must
// run allocation-free apart from amortized container growth.
func TestDispatchAllocsPerIO(t *testing.T) {
	r := perfRig(t)
	const batch = 256
	reqs := make([]*iface.Request, batch)
	for i := range reqs {
		reqs[i] = &iface.Request{}
	}
	rng := sim.NewRNG(42)
	space := int64(r.ctl.LogicalPages())
	runBatch := func() {
		for i, req := range reqs {
			r.id++
			typ := iface.Read
			if i%2 == 0 {
				typ = iface.Write
			}
			*req = iface.Request{ID: r.id, Type: typ, LPN: iface.LPN(rng.Int63() % space), Source: iface.SourceApp}
			r.ctl.Submit(req)
			if i%32 == 31 {
				r.eng.RunUntilIdle()
			}
		}
		r.eng.RunUntilIdle()
	}
	runBatch() // warm pools: states, events, queue and stats capacity
	runBatch()
	allocs := testing.AllocsPerRun(10, runBatch)
	perIO := allocs / batch
	if perIO > 1.0 {
		t.Fatalf("dispatch path allocates %.2f objects per IO, budget is 1", perIO)
	}
	t.Logf("dispatch path: %.3f allocs per IO (budget 1)", perIO)
}

// BenchmarkControllerDispatch measures the full per-IO dispatch cost on a
// steady-state device: submit, readiness scan, flash scheduling, completion
// and GC bookkeeping, at a queue depth of 32.
func BenchmarkControllerDispatch(b *testing.B) {
	r := perfRig(b)
	rng := sim.NewRNG(7)
	space := int64(r.ctl.LogicalPages())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.id++
		typ := iface.Read
		if i%2 == 0 {
			typ = iface.Write
		}
		r.ctl.Submit(&iface.Request{ID: r.id, Type: typ, LPN: iface.LPN(rng.Int63() % space), Source: iface.SourceApp})
		if i%32 == 31 {
			r.eng.RunUntilIdle()
		}
	}
	r.eng.RunUntilIdle()
}
