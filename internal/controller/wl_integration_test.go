package controller

import (
	"testing"

	"eagletree/internal/flash"
	"eagletree/internal/iface"
	"eagletree/internal/sim"
	"eagletree/internal/wl"
)

// wlRig builds a controller with static wear leveling armed aggressively.
func wlRig(t *testing.T, mutate func(*Config)) *rig {
	t.Helper()
	return newRig(t, func(cfg *Config) {
		w := wl.DefaultConfig()
		w.Static = true
		w.Dynamic = false
		w.CheckInterval = 2 * sim.Millisecond
		w.AgeSlack = 2
		w.IdleFactor = 2
		w.MaxMigrationsPerScan = 2
		cfg.WL = w
		if mutate != nil {
			mutate(cfg)
		}
	})
}

// hammerHotKeepCold writes a cold region once, then overwrites a small hot
// region many times: the recipe that leaves young, idle, cold blocks for
// static WL to find.
func hammerHotKeepCold(r *rig, passes int) {
	n := r.ctl.LogicalPages()
	coldEnd := iface.LPN(n / 2)
	for lpn := iface.LPN(0); lpn < coldEnd; lpn++ {
		r.submit(iface.Write, lpn)
		if lpn%16 == 15 {
			r.run()
		}
	}
	r.run()
	hot := iface.LPN(n / 8)
	for p := 0; p < passes; p++ {
		for lpn := coldEnd; lpn < coldEnd+hot; lpn++ {
			r.submit(iface.Write, lpn)
			if lpn%16 == 15 {
				r.run()
			}
		}
		r.run()
	}
}

func TestStaticWLMigratesColdBlocks(t *testing.T) {
	r := wlRig(t, nil)
	hammerHotKeepCold(r, 30)
	if got := r.ctl.Counters().WLMigratedPages; got == 0 {
		t.Fatal("static wear leveling never migrated a page despite hot/cold skew")
	}
	if r.ctl.Leveler().Scans() == 0 {
		t.Fatal("static WL scan never ran")
	}
}

func TestStaticWLNarrowsWear(t *testing.T) {
	spread := func(static bool) int {
		r := wlRig(t, func(cfg *Config) { cfg.WL.Static = static })
		hammerHotKeepCold(r, 30)
		minE, maxE := 1<<30, -1
		bm := r.ctl.BlockManager()
		for lun := 0; lun < bm.LUNs(); lun++ {
			bm.DataBlocks(lun, func(_ flash.BlockID, meta flash.BlockMeta) {
				if meta.EraseCount < minE {
					minE = meta.EraseCount
				}
				if meta.EraseCount > maxE {
					maxE = meta.EraseCount
				}
			})
		}
		return maxE - minE
	}
	with, without := spread(true), spread(false)
	if with >= without {
		t.Fatalf("static WL spread %d not below WL-off spread %d", with, without)
	}
}

func TestStaticWLScanGoesQuietWhenIdle(t *testing.T) {
	r := wlRig(t, nil)
	r.submit(iface.Write, 1)
	r.run()
	// The run drained: the scan must have disarmed itself (engine idle),
	// otherwise RunUntilIdle above would never have returned. A further
	// submission must re-arm it.
	scans := r.ctl.Leveler().Scans()
	r.submit(iface.Write, 2)
	r.run()
	if r.ctl.Leveler().Scans() < scans {
		t.Fatal("scan counter went backwards")
	}
	if r.eng.Pending() != 0 {
		t.Fatalf("%d events still pending after idle: WL scan leaks events", r.eng.Pending())
	}
}

func TestWLMigratedPagesInferredCold(t *testing.T) {
	r := wlRig(t, nil)
	hammerHotKeepCold(r, 30)
	if len(r.ctl.wlCold) == 0 {
		t.Fatal("no pages recorded as WL-inferred cold after static migrations")
	}
	// Touching an inferred-cold page clears the inference (the page proved
	// itself non-cold).
	var lpn iface.LPN
	for l := range r.ctl.wlCold {
		lpn = l
		break
	}
	r.submit(iface.Write, lpn)
	r.run()
	if _, still := r.ctl.wlCold[lpn]; still {
		t.Fatal("application write did not clear the WL-cold inference")
	}
}

func TestControllerAccessors(t *testing.T) {
	r := wlRig(t, nil)
	if r.ctl.GCCollector() == nil || r.ctl.Leveler() == nil {
		t.Fatal("nil subsystem accessors")
	}
	if r.ctl.QueueLen() != 0 {
		t.Fatalf("fresh controller queue length %d", r.ctl.QueueLen())
	}
	if MapPageRAM.String() != "pagemap" || MapDFTL.String() != "dftl" {
		t.Error("mapping scheme strings wrong")
	}
	if rep := r.ctl.Memory().Report(); rep == "" {
		t.Error("empty memory report")
	}
}
