package controller

import (
	"testing"

	"eagletree/internal/flash"
	"eagletree/internal/gc"
	"eagletree/internal/iface"
	"eagletree/internal/sched"
	"eagletree/internal/sim"
	"eagletree/internal/stats"
)

// rig bundles a controller with its engine and completion capture.
type rig struct {
	eng  *sim.Engine
	bus  *iface.Bus
	col  *stats.Collector
	ctl  *Controller
	done []*iface.Request
	id   uint64
}

func smallGeo() flash.Geometry {
	return flash.Geometry{Channels: 2, LUNsPerChannel: 2, BlocksPerLUN: 16, PagesPerBlock: 8, PageSize: 4096}
}

func newRig(t *testing.T, mutate func(*Config)) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine(), bus: iface.NewBus(), col: stats.NewCollector(0, 0)}
	cfg := Config{
		Geometry:      smallGeo(),
		Timing:        flash.TimingSLC(),
		Overprovision: 0.25,
		GCGreediness:  2,
		WL:            WLOff(),
	}
	cfg.OnComplete = func(req *iface.Request) { r.done = append(r.done, req) }
	if mutate != nil {
		mutate(&cfg)
	}
	ctl, err := New(r.eng, r.bus, r.col, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.ctl = ctl
	return r
}

func (r *rig) submit(t iface.ReqType, lpn iface.LPN) *iface.Request {
	r.id++
	req := &iface.Request{ID: r.id, Type: t, LPN: lpn, Source: iface.SourceApp, Submitted: r.eng.Now()}
	r.ctl.Submit(req)
	return req
}

func (r *rig) run() { r.eng.RunUntilIdle() }

func TestControllerWriteThenRead(t *testing.T) {
	r := newRig(t, nil)
	w := r.submit(iface.Write, 5)
	r.run()
	rd := r.submit(iface.Read, 5)
	r.run()
	if len(r.done) != 2 {
		t.Fatalf("completed %d requests, want 2", len(r.done))
	}
	if w.Completed == 0 || rd.Completed == 0 {
		t.Fatal("requests missing completion stamps")
	}
	tm := flash.TimingSLC()
	wantW := tm.Cmd + tm.Transfer + tm.PageWrite
	if w.Latency() != wantW {
		t.Errorf("write latency %v, want %v on an idle device", w.Latency(), wantW)
	}
	wantR := tm.Cmd + tm.PageRead + tm.Transfer
	if rd.Latency() != wantR {
		t.Errorf("read latency %v, want %v on an idle device", rd.Latency(), wantR)
	}
}

func TestControllerUnmappedRead(t *testing.T) {
	r := newRig(t, nil)
	rd := r.submit(iface.Read, 99)
	r.run()
	if rd.Completed == 0 {
		t.Fatal("unmapped read never completed")
	}
	if r.ctl.Counters().UnmappedReads != 1 {
		t.Fatalf("UnmappedReads = %d", r.ctl.Counters().UnmappedReads)
	}
	if got := r.ctl.Array().Counters().Reads; got != 0 {
		t.Fatalf("unmapped read touched flash %d times", got)
	}
}

func TestControllerOverwriteInvalidatesOldPage(t *testing.T) {
	r := newRig(t, nil)
	r.submit(iface.Write, 7)
	r.run()
	first, _ := r.ctl.Mapper().Lookup(7)
	r.submit(iface.Write, 7)
	r.run()
	second, _ := r.ctl.Mapper().Lookup(7)
	if first == second {
		t.Fatal("overwrite did not relocate the page")
	}
	if st := r.ctl.Array().PageState(first); st != flash.PageInvalid {
		t.Fatalf("old page state %v, want invalid", st)
	}
	if st := r.ctl.Array().PageState(second); st != flash.PageValid {
		t.Fatalf("new page state %v, want valid", st)
	}
}

func TestControllerTrim(t *testing.T) {
	r := newRig(t, nil)
	r.submit(iface.Write, 3)
	r.run()
	old, _ := r.ctl.Mapper().Lookup(3)
	r.submit(iface.Trim, 3)
	r.run()
	if _, ok := r.ctl.Mapper().Lookup(3); ok {
		t.Fatal("trimmed LPN still mapped")
	}
	if st := r.ctl.Array().PageState(old); st != flash.PageInvalid {
		t.Fatalf("trimmed page state %v", st)
	}
	if r.ctl.Counters().AppTrims != 1 {
		t.Fatalf("AppTrims = %d", r.ctl.Counters().AppTrims)
	}
}

func TestControllerParallelWritesSpreadOverLUNs(t *testing.T) {
	r := newRig(t, nil)
	for i := 0; i < 8; i++ {
		r.submit(iface.Write, iface.LPN(i))
	}
	start := r.eng.Now()
	r.run()
	elapsed := r.eng.Now().Sub(start)
	tm := flash.TimingSLC()
	oneWrite := tm.Cmd + tm.Transfer + tm.PageWrite
	// 8 writes over 4 LUNs on 2 channels: must beat full serialization by a
	// wide margin (serial would be 8x oneWrite).
	if elapsed >= 5*oneWrite {
		t.Fatalf("8 writes took %v; parallelism broken (one write = %v)", elapsed, oneWrite)
	}
	luns := map[int]bool{}
	for lpn := iface.LPN(0); lpn < 8; lpn++ {
		ppa, ok := r.ctl.Mapper().Lookup(lpn)
		if !ok {
			t.Fatalf("lpn %d unmapped after write", lpn)
		}
		luns[ppa.LUN] = true
	}
	if len(luns) != 4 {
		t.Fatalf("writes landed on %d LUNs, want all 4", len(luns))
	}
}

// fillDevice writes the logical space sequentially once, then overwrites it
// randomly (uFLIP-style preparation): random overwrites fragment the blocks
// so GC victims hold live pages and migrations actually happen.
func fillDevice(t *testing.T, r *rig, passes int) {
	t.Helper()
	n := r.ctl.LogicalPages()
	for lpn := 0; lpn < n; lpn++ {
		r.submit(iface.Write, iface.LPN(lpn))
		// Keep the queue bounded like a real OS would.
		if lpn%16 == 15 {
			r.run()
		}
	}
	r.run()
	rng := sim.NewRNG(42)
	for p := 1; p < passes; p++ {
		for i := 0; i < n; i++ {
			r.submit(iface.Write, iface.LPN(rng.Intn(n)))
			if i%16 == 15 {
				r.run()
			}
		}
		r.run()
	}
}

func TestControllerGCSteadyState(t *testing.T) {
	r := newRig(t, nil)
	fillDevice(t, r, 3)
	c := r.ctl.Counters()
	if c.GCErases == 0 {
		t.Fatal("no GC ran despite 3 overwrite passes at 25% overprovision")
	}
	if c.GCMigratedPages == 0 {
		t.Fatal("GC never migrated a live page")
	}
	wa := r.ctl.WriteAmplification()
	if wa <= 1.0 {
		t.Fatalf("write amplification %v, must exceed 1 under GC", wa)
	}
	if wa > 5 {
		t.Fatalf("write amplification %v implausibly high for uniform traffic", wa)
	}
	// Free space invariant: every LUN ends at or above... the floor may be
	// transiently crossed mid-run, but after the queue drains GC must have
	// restored at least one free block everywhere.
	for lun := 0; lun < smallGeo().LUNs(); lun++ {
		if free := r.ctl.BlockManager().FreeCount(lun); free < 1 {
			t.Fatalf("LUN %d finished with %d free blocks", lun, free)
		}
	}
}

func TestControllerGCNeverLosesData(t *testing.T) {
	r := newRig(t, nil)
	n := r.ctl.LogicalPages()
	// Three full overwrite passes, then verify every LPN still readable.
	fillDevice(t, r, 3)
	r.done = r.done[:0]
	for lpn := 0; lpn < n; lpn++ {
		r.submit(iface.Read, iface.LPN(lpn))
		if lpn%32 == 31 {
			r.run()
		}
	}
	r.run()
	if len(r.done) != n {
		t.Fatalf("%d of %d reads completed", len(r.done), n)
	}
	if r.ctl.Counters().UnmappedReads != 0 {
		t.Fatalf("%d LPNs lost their mapping during GC", r.ctl.Counters().UnmappedReads)
	}
}

func TestControllerGCCopyback(t *testing.T) {
	r := newRig(t, func(cfg *Config) {
		cfg.Features = flash.Features{Copyback: true}
		cfg.GCCopyback = true
	})
	fillDevice(t, r, 3)
	if cb := r.ctl.Array().Counters().Copybacks; cb == 0 {
		t.Fatal("copyback GC never used copyback")
	}
	if r.ctl.Counters().GCMigratedPages == 0 {
		t.Fatal("no pages migrated")
	}
}

func TestControllerDFTLEndToEnd(t *testing.T) {
	r := newRig(t, func(cfg *Config) {
		cfg.Mapping = MapDFTL
		cfg.CMTEntries = 64
		cfg.ReservedTransBlocks = 3
	})
	n := r.ctl.LogicalPages()
	for lpn := 0; lpn < n; lpn++ {
		r.submit(iface.Write, iface.LPN(lpn))
		if lpn%16 == 15 {
			r.run()
		}
	}
	r.run()
	r.done = r.done[:0]
	for lpn := 0; lpn < n; lpn += 7 {
		r.submit(iface.Read, iface.LPN(lpn))
	}
	r.run()
	if r.ctl.Counters().UnmappedReads != 0 {
		t.Fatal("DFTL lost mappings")
	}
	// Translation traffic must have hit flash: the CMT (64 entries) is far
	// smaller than the logical space.
	mapLat := r.col.Latency(iface.SourceMap, iface.Write)
	if mapLat.Count() == 0 {
		t.Fatal("no translation writes recorded despite tiny CMT")
	}
}

func TestControllerOpenInterfaceStripsTagsWhenLocked(t *testing.T) {
	r := newRig(t, nil) // OpenInterface false
	req := &iface.Request{ID: 1, Type: iface.Write, LPN: 1, Source: iface.SourceApp,
		Tags: iface.Tags{Priority: iface.PriorityHigh, Locality: 3, Temperature: iface.TempHot}}
	r.ctl.Submit(req)
	r.run()
	if req.Tags != (iface.Tags{}) {
		t.Fatalf("block-device mode kept tags: %+v", req.Tags)
	}
}

func TestControllerBusHintsApplied(t *testing.T) {
	r := newRig(t, func(cfg *Config) { cfg.OpenInterface = true })
	r.bus.Publish(iface.PriorityHint{Thread: 4, Priority: iface.PriorityHigh})
	r.bus.Publish(iface.TemperatureHint{From: 10, To: 20, Temperature: iface.TempHot})
	r.bus.Publish(iface.LocalityHint{Group: 2, Pages: []iface.LPN{30, 31}})

	req := &iface.Request{ID: 1, Type: iface.Write, LPN: 15, Thread: 4, Source: iface.SourceApp}
	r.ctl.Submit(req)
	r.run()
	if req.Tags.Priority != iface.PriorityHigh {
		t.Error("priority hint not applied")
	}
	if req.Tags.Temperature != iface.TempHot {
		t.Error("temperature hint not applied")
	}
	req2 := &iface.Request{ID: 2, Type: iface.Write, LPN: 30, Thread: 9, Source: iface.SourceApp}
	r.ctl.Submit(req2)
	r.run()
	if req2.Tags.Locality != 2 {
		t.Error("locality hint not applied")
	}
}

func TestControllerLocalityGroupsShareBlocks(t *testing.T) {
	r := newRig(t, func(cfg *Config) { cfg.OpenInterface = true })
	// Two groups of 8 pages each, written interleaved. With locality tags
	// each group must land in its own block.
	for i := 0; i < 8; i++ {
		a := &iface.Request{ID: uint64(100 + i), Type: iface.Write, LPN: iface.LPN(i),
			Source: iface.SourceApp, Tags: iface.Tags{Locality: 1}}
		b := &iface.Request{ID: uint64(200 + i), Type: iface.Write, LPN: iface.LPN(100 + i),
			Source: iface.SourceApp, Tags: iface.Tags{Locality: 2}}
		r.ctl.Submit(a)
		r.ctl.Submit(b)
		r.run()
	}
	blocksOf := func(base iface.LPN) map[flash.BlockID]bool {
		set := map[flash.BlockID]bool{}
		for i := iface.LPN(0); i < 8; i++ {
			ppa, ok := r.ctl.Mapper().Lookup(base + i)
			if !ok {
				t.Fatalf("lpn %d unmapped", base+i)
			}
			set[ppa.BlockOf()] = true
		}
		return set
	}
	g1, g2 := blocksOf(0), blocksOf(100)
	for b := range g1 {
		if g2[b] {
			t.Fatalf("locality groups share block %v", b)
		}
	}
}

func TestControllerWriteBuffer(t *testing.T) {
	r := newRig(t, func(cfg *Config) {
		cfg.WriteBufferPages = 4
		cfg.WriteBufferLatency = 5 * sim.Microsecond
	})
	w := r.submit(iface.Write, 1)
	r.run()
	if w.Latency() != 5*sim.Microsecond {
		t.Fatalf("buffered write latency %v, want 5us RAM latency", w.Latency())
	}
	// The flash write still happened in the background.
	if r.ctl.Array().Counters().Writes != 1 {
		t.Fatalf("flash writes = %d, want 1 flush", r.ctl.Array().Counters().Writes)
	}
	if _, ok := r.ctl.Mapper().Lookup(1); !ok {
		t.Fatal("flush did not map the page")
	}
	if r.ctl.Counters().BufferedWrites != 1 {
		t.Fatalf("BufferedWrites = %d", r.ctl.Counters().BufferedWrites)
	}
}

func TestControllerWriteBufferBackpressure(t *testing.T) {
	r := newRig(t, func(cfg *Config) {
		cfg.WriteBufferPages = 2
	})
	for i := 0; i < 20; i++ {
		r.submit(iface.Write, iface.LPN(i))
	}
	r.run()
	c := r.ctl.Counters()
	if c.BufferStalls == 0 {
		t.Fatal("20 writes through a 2-page buffer never stalled")
	}
	if got := r.ctl.Array().Counters().Writes; got != 20 {
		t.Fatalf("flash flushes = %d, want 20", got)
	}
	if len(r.done) != 20 {
		t.Fatalf("completions = %d, want 20", len(r.done))
	}
}

func TestControllerSchedulingPolicyHonored(t *testing.T) {
	// With reads-first priority, a read submitted after a burst of writes
	// should complete before most of the writes.
	runWith := func(policy sched.Policy) (readDone sim.Time, lastWrite sim.Time) {
		r := newRig(t, func(cfg *Config) { cfg.Policy = policy })
		r.submit(iface.Write, 0)
		r.run() // map LPN 0 so the read hits flash
		var writes []*iface.Request
		for i := 1; i <= 16; i++ {
			writes = append(writes, r.submit(iface.Write, iface.LPN(i)))
		}
		rd := r.submit(iface.Read, 0)
		r.run()
		for _, w := range writes {
			if w.Completed > lastWrite {
				lastWrite = w.Completed
			}
		}
		return rd.Completed, lastWrite
	}
	fifoRead, _ := runWith(&sched.FIFO{})
	prioRead, _ := runWith(&sched.Priority{Prefer: sched.PreferReads})
	if prioRead >= fifoRead {
		t.Fatalf("reads-first read at %v, FIFO read at %v; priority had no effect", prioRead, fifoRead)
	}
}

func TestControllerMemoryAccounting(t *testing.T) {
	r := newRig(t, nil)
	if r.ctl.Memory().RAMUsed() <= 0 {
		t.Fatal("mapping RAM not accounted")
	}
	// A page map for this geometry needs ~4B x logical + 8B x physical.
	_, err := New(sim.NewEngine(), iface.NewBus(), stats.NewCollector(0, 0), Config{
		Geometry: smallGeo(), RAMBytes: 16, WL: WLOff(),
		Overprovision: 0.25, GCGreediness: 2,
	})
	if err == nil {
		t.Fatal("16-byte RAM budget accepted a full page map")
	}
}

func TestControllerConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Overprovision = 0.001 },
		func(c *Config) { c.Mapping = MapDFTL; c.ReservedTransBlocks = 1 },
		func(c *Config) { c.Mapping = MapDFTL; c.ReservedTransBlocks = 8 }, // half of 16 blocks/LUN
		func(c *Config) { c.GCCopyback = true },                            // without chip feature
	}
	for i, mut := range bad {
		cfg := Config{Geometry: smallGeo(), Overprovision: 0.25, GCGreediness: 2, WL: WLOff()}
		mut(&cfg)
		if _, err := New(sim.NewEngine(), iface.NewBus(), stats.NewCollector(0, 0), cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestControllerDeterminism(t *testing.T) {
	trace := func() []sim.Time {
		r := newRig(t, func(cfg *Config) { cfg.GCPolicy = gc.Greedy{} })
		var times []sim.Time
		n := r.ctl.LogicalPages()
		rng := sim.NewRNG(77)
		for i := 0; i < 2*n; i++ {
			req := r.submit(iface.Write, iface.LPN(rng.Intn(n)))
			if i%8 == 7 {
				r.run()
			}
			_ = req
		}
		r.run()
		for _, d := range r.done {
			times = append(times, d.Completed)
		}
		return times
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("runs completed %d vs %d requests", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("completion %d at %v vs %v: simulation not deterministic", i, a[i], b[i])
		}
	}
}
