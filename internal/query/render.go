package query

import (
	"strings"

	"eagletree/internal/resultstore"
)

// Text renders the table as an aligned monospace grid: a header row, a rule,
// then one line per row. String cells are left-aligned, numeric cells
// right-aligned. The output is a pure function of the table.
func (t *Table) Text() string {
	widths := make([]int, len(t.cols))
	for i := range t.cols {
		widths[i] = len(t.cols[i].name)
		for r := 0; r < t.cols[i].len(); r++ {
			if n := len(t.cols[i].cell(r)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	writeCell := func(i int, s string, leftAlign bool) {
		if i > 0 {
			b.WriteString("  ")
		}
		pad := widths[i] - len(s)
		if !leftAlign {
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteString(s)
		if leftAlign && i < len(t.cols)-1 {
			b.WriteString(strings.Repeat(" ", pad))
		}
	}
	for i := range t.cols {
		writeCell(i, t.cols[i].name, t.cols[i].kind == resultstore.KindString)
	}
	b.WriteByte('\n')
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for r := 0; r < t.Len(); r++ {
		for i := range t.cols {
			writeCell(i, t.cols[i].cell(r), t.cols[i].kind == resultstore.KindString)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV: header then rows, cells quoted
// only when they contain a comma, quote or newline.
func (t *Table) CSV() string {
	var b strings.Builder
	for i := range t.cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvCell(t.cols[i].name))
	}
	b.WriteByte('\n')
	for r := 0; r < t.Len(); r++ {
		for i := range t.cols {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvCell(t.cols[i].cell(r)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvCell(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
}
