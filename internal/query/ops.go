package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"eagletree/internal/resultstore"
	"eagletree/internal/stats"
)

// Predicate is one parsed filter clause: column, operator, literal.
type Predicate struct {
	Col string
	Op  string
	Val string
}

// filterOps lists the comparison operators, two-character operators first so
// parsing never splits ">=" into ">" and "=".
var filterOps = []string{"!=", ">=", "<=", "=", "<", ">", "~"}

// ParsePredicate parses one "column OP literal" clause. Spaces around the
// operator are optional; the literal runs to the end of the clause.
func ParsePredicate(expr string) (Predicate, error) {
	for _, op := range filterOps {
		i := strings.Index(expr, op)
		if i <= 0 {
			continue
		}
		col := strings.TrimSpace(expr[:i])
		val := strings.TrimSpace(expr[i+len(op):])
		if col == "" {
			break
		}
		return Predicate{Col: col, Op: op, Val: val}, nil
	}
	return Predicate{}, fmt.Errorf("%w: %q (want column OP value with OP one of %s)",
		ErrPredicate, expr, strings.Join(filterOps, " "))
}

// Filter returns the rows of t satisfying every predicate, in order.
// String columns support = != ~ (substring); numeric columns support
// = != < <= > >=.
func (t *Table) Filter(preds []Predicate) (*Table, error) {
	type compiled struct {
		c  *column
		op string
		// exactly one literal representation is valid, chosen by column kind
		s string
		i int64
		u uint64
		f float64
	}
	comp := make([]compiled, len(preds))
	for k, p := range preds {
		c, err := t.col(p.Col)
		if err != nil {
			return nil, err
		}
		cp := compiled{c: c, op: p.Op, s: p.Val}
		switch c.kind {
		case resultstore.KindString:
			switch p.Op {
			case "=", "!=", "~":
			default:
				return nil, fmt.Errorf("%w: operator %q does not apply to string column %q", ErrPredicate, p.Op, p.Col)
			}
		case resultstore.KindInt:
			cp.i, err = strconv.ParseInt(p.Val, 10, 64)
		case resultstore.KindUint:
			cp.u, err = strconv.ParseUint(p.Val, 10, 64)
		case resultstore.KindFloat:
			cp.f, err = strconv.ParseFloat(p.Val, 64)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %q is not a valid literal for %s column %q", ErrPredicate, p.Val, c.kind, p.Col)
		}
		if c.kind != resultstore.KindString && p.Op == "~" {
			return nil, fmt.Errorf("%w: operator ~ applies only to string columns, not %s %q", ErrPredicate, c.kind, p.Col)
		}
		comp[k] = cp
	}

	var idx []int
	for r := 0; r < t.Len(); r++ {
		keep := true
		for _, cp := range comp {
			var ord int // sign of cell - literal, for numeric kinds
			var ok bool
			switch cp.c.kind {
			case resultstore.KindString:
				cell := cp.c.strs[r]
				switch cp.op {
				case "=":
					ok = cell == cp.s
				case "!=":
					ok = cell != cp.s
				case "~":
					ok = strings.Contains(cell, cp.s)
				}
				if !ok {
					keep = false
				}
				continue
			case resultstore.KindInt:
				ord = cmpOrd(cp.c.ints[r], cp.i)
			case resultstore.KindUint:
				ord = cmpOrd(cp.c.uints[r], cp.u)
			case resultstore.KindFloat:
				ord = cmpOrd(cp.c.floats[r], cp.f)
			}
			switch cp.op {
			case "=":
				ok = ord == 0
			case "!=":
				ok = ord != 0
			case "<":
				ok = ord < 0
			case "<=":
				ok = ord <= 0
			case ">":
				ok = ord > 0
			case ">=":
				ok = ord >= 0
			}
			if !ok {
				keep = false
			}
		}
		if keep {
			idx = append(idx, r)
		}
	}
	return t.take(idx), nil
}

func cmpOrd[T int64 | uint64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Project returns a table holding only the named columns, in the given order.
func (t *Table) Project(names []string) (*Table, error) {
	out := &Table{cols: make([]column, 0, len(names))}
	for _, name := range names {
		c, err := t.col(name)
		if err != nil {
			return nil, err
		}
		out.cols = append(out.cols, *c)
	}
	return out, nil
}

// Sort returns the rows of t stably ordered by the named columns, earliest
// name most significant. Prefix a name with "-" for descending order.
func (t *Table) Sort(names []string) (*Table, error) {
	type key struct {
		c    *column
		desc bool
	}
	keys := make([]key, len(names))
	for i, name := range names {
		desc := strings.HasPrefix(name, "-")
		c, err := t.col(strings.TrimPrefix(name, "-"))
		if err != nil {
			return nil, err
		}
		keys[i] = key{c: c, desc: desc}
	}
	idx := make([]int, t.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := idx[a], idx[b]
		for _, k := range keys {
			var ord int
			switch k.c.kind {
			case resultstore.KindString:
				ord = strings.Compare(k.c.strs[ra], k.c.strs[rb])
			case resultstore.KindInt:
				ord = cmpOrd(k.c.ints[ra], k.c.ints[rb])
			case resultstore.KindUint:
				ord = cmpOrd(k.c.uints[ra], k.c.uints[rb])
			case resultstore.KindFloat:
				ord = cmpOrd(k.c.floats[ra], k.c.floats[rb])
			}
			if ord == 0 {
				continue
			}
			if k.desc {
				return ord > 0
			}
			return ord < 0
		}
		return false
	})
	return t.take(idx), nil
}

// Agg is one aggregate request: a function applied to a column within each
// group.
type Agg struct {
	Fn  string
	Col string
}

// ParseAgg parses "fn(col)" or the bare "count".
func ParseAgg(expr string) (Agg, error) {
	if expr == "count" {
		return Agg{Fn: "count"}, nil
	}
	open := strings.Index(expr, "(")
	if open <= 0 || !strings.HasSuffix(expr, ")") {
		return Agg{}, fmt.Errorf("%w: %q (want fn(column), fn one of count mean std ci95 min max sum)", ErrAggregate, expr)
	}
	return Agg{Fn: expr[:open], Col: expr[open+1 : len(expr)-1]}, nil
}

// GroupBy partitions rows by the named key columns and computes the given
// aggregates within each group. Groups appear in first-appearance row order,
// so a pre-sorted table yields sorted groups and a grid-ordered table yields
// grid-ordered groups. The result holds the key columns followed by one
// column per aggregate, named "fn(col)"; count is a uint column, everything
// else is float.
func (t *Table) GroupBy(keyNames []string, aggs []Agg) (*Table, error) {
	keyCols := make([]*column, len(keyNames))
	for i, name := range keyNames {
		c, err := t.col(name)
		if err != nil {
			return nil, err
		}
		keyCols[i] = c
	}
	aggCols := make([]*column, len(aggs))
	for i, a := range aggs {
		switch a.Fn {
		case "count":
			continue
		case "mean", "std", "ci95", "min", "max", "sum":
		default:
			return nil, fmt.Errorf("%w: unknown function %q", ErrAggregate, a.Fn)
		}
		c, err := t.col(a.Col)
		if err != nil {
			return nil, err
		}
		if c.kind == resultstore.KindString {
			return nil, fmt.Errorf("%w: %s(%s) aggregates a string column", ErrAggregate, a.Fn, a.Col)
		}
		aggCols[i] = c
	}

	// Group membership by composite key, groups in first-appearance order.
	groupOf := make(map[string]int)
	var members [][]int
	var firstRow []int
	var keyBuf []byte
	for r := 0; r < t.Len(); r++ {
		keyBuf = keyBuf[:0]
		for _, c := range keyCols {
			cell := c.cell(r)
			keyBuf = binaryLenPrefix(keyBuf, cell)
		}
		g, ok := groupOf[string(keyBuf)]
		if !ok {
			g = len(members)
			groupOf[string(keyBuf)] = g
			members = append(members, nil)
			firstRow = append(firstRow, r)
		}
		members[g] = append(members[g], r)
	}

	out := &Table{cols: make([]column, 0, len(keyCols)+len(aggs))}
	for i, c := range keyCols {
		kc := column{name: keyNames[i], kind: c.kind, better: c.better}
		for _, r := range firstRow {
			kc.append(c.value(r))
		}
		out.cols = append(out.cols, kc)
	}
	for i, a := range aggs {
		name := a.Fn
		if a.Col != "" {
			name = a.Fn + "(" + a.Col + ")"
		}
		if a.Fn == "count" {
			c := column{name: name, kind: resultstore.KindUint}
			for _, rows := range members {
				c.uints = append(c.uints, uint64(len(rows)))
			}
			out.cols = append(out.cols, c)
			continue
		}
		src := aggCols[i]
		c := column{name: name, kind: resultstore.KindFloat, better: src.better}
		for _, rows := range members {
			xs := make([]float64, len(rows))
			for j, r := range rows {
				xs[j] = src.float(r)
			}
			c.floats = append(c.floats, aggregate(a.Fn, xs))
		}
		out.cols = append(out.cols, c)
	}
	return out, nil
}

func aggregate(fn string, xs []float64) float64 {
	switch fn {
	case "mean":
		return stats.Summarize(xs).Mean
	case "std":
		return stats.Summarize(xs).Std
	case "ci95":
		return stats.Summarize(xs).CI95
	case "sum":
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	case "min":
		m := xs[0]
		for _, x := range xs[1:] {
			if x < m {
				m = x
			}
		}
		return m
	default: // max
		m := xs[0]
		for _, x := range xs[1:] {
			if x > m {
				m = x
			}
		}
		return m
	}
}

// binaryLenPrefix appends s length-prefixed, so composite keys never collide
// across cell boundaries ("a"+"bc" vs "ab"+"c").
func binaryLenPrefix(b []byte, s string) []byte {
	b = strconv.AppendInt(b, int64(len(s)), 10)
	b = append(b, ':')
	return append(b, s...)
}

// Join inner-joins t with other on the named key columns, which must exist
// with identical kinds in both tables. The result holds the key columns, then
// t's remaining columns, then other's remaining columns; a name present on
// both sides gets the given suffixes. Output order is t's row order, ties
// within a key following other's row order — deterministic for deterministic
// inputs.
func (t *Table) Join(other *Table, on []string, suffixL, suffixR string) (*Table, error) {
	lk := make([]*column, len(on))
	rk := make([]*column, len(on))
	for i, name := range on {
		lc, err := t.col(name)
		if err != nil {
			return nil, err
		}
		rc, err := other.col(name)
		if err != nil {
			return nil, err
		}
		if lc.kind != rc.kind {
			return nil, fmt.Errorf("%w: key %q is %s on the left, %s on the right", ErrJoin, name, lc.kind, rc.kind)
		}
		lk[i], rk[i] = lc, rc
	}
	isKey := func(name string) bool {
		for _, k := range on {
			if k == name {
				return true
			}
		}
		return false
	}

	// Index the right side: composite key -> row indices in order.
	rIdx := make(map[string][]int)
	var keyBuf []byte
	for r := 0; r < other.Len(); r++ {
		keyBuf = keyBuf[:0]
		for _, c := range rk {
			keyBuf = binaryLenPrefix(keyBuf, c.cell(r))
		}
		rIdx[string(keyBuf)] = append(rIdx[string(keyBuf)], r)
	}

	var lRows, rRows []int
	for r := 0; r < t.Len(); r++ {
		keyBuf = keyBuf[:0]
		for _, c := range lk {
			keyBuf = binaryLenPrefix(keyBuf, c.cell(r))
		}
		for _, rr := range rIdx[string(keyBuf)] {
			lRows = append(lRows, r)
			rRows = append(rRows, rr)
		}
	}

	out := &Table{}
	appendSide := func(src *Table, rows []int, suffix string, keysToo bool) {
		for i := range src.cols {
			c := &src.cols[i]
			if isKey(c.name) != keysToo {
				continue
			}
			name := c.name
			if !keysToo && collides(t, other, name, on) {
				name += suffix
			}
			nc := column{name: name, kind: c.kind, better: c.better}
			for _, r := range rows {
				nc.append(c.value(r))
			}
			out.cols = append(out.cols, nc)
		}
	}
	appendSide(t, lRows, suffixL, true)
	appendSide(t, lRows, suffixL, false)
	appendSide(other, rRows, suffixR, false)
	return out, nil
}

// collides reports whether a non-key column name exists on both sides.
func collides(l, r *Table, name string, on []string) bool {
	for _, k := range on {
		if k == name {
			return false
		}
	}
	_, lerr := l.col(name)
	_, rerr := r.col(name)
	return lerr == nil && rerr == nil
}
