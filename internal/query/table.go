// Package query is a small relational layer over the result store: tables
// of typed columns with filter, project, sort, group/aggregate and join —
// enough algebra to ask a corpus of persisted sweep rows real questions
// (which variant won across seeds, with what confidence; what changed
// between two commits) without hauling in a database.
//
// Everything is deterministic by construction: operations preserve or define
// row order explicitly, group order is first appearance, aggregate math runs
// in row order, and rendering is pure formatting — the same table always
// renders to the same bytes, across runs, machines and worker counts.
//
//eagletree:canonical
//eagletree:typederrors
package query

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"eagletree/internal/resultstore"
)

// Errors reported by the query layer. Wrapped with detail; match with
// errors.Is.
var (
	// ErrColumn marks a reference to a column the table does not have.
	ErrColumn = errors.New("query: unknown column")
	// ErrPredicate marks a filter expression that does not parse or cannot
	// apply to its column's kind.
	ErrPredicate = errors.New("query: bad predicate")
	// ErrAggregate marks an unknown aggregate function or one applied to a
	// non-numeric column.
	ErrAggregate = errors.New("query: bad aggregate")
	// ErrJoin marks a join whose key columns disagree between the tables.
	ErrJoin = errors.New("query: bad join")
)

// column is one typed column; exactly one value slice is populated,
// selected by kind.
type column struct {
	name   string
	kind   resultstore.Kind
	better int8
	strs   []string
	ints   []int64
	uints  []uint64
	floats []float64
}

func (c *column) len() int {
	switch c.kind {
	case resultstore.KindString:
		return len(c.strs)
	case resultstore.KindInt:
		return len(c.ints)
	case resultstore.KindUint:
		return len(c.uints)
	default:
		return len(c.floats)
	}
}

func (c *column) value(i int) resultstore.Value {
	switch c.kind {
	case resultstore.KindString:
		return resultstore.Value{Str: c.strs[i]}
	case resultstore.KindInt:
		return resultstore.Value{Int: c.ints[i]}
	case resultstore.KindUint:
		return resultstore.Value{Uint: c.uints[i]}
	default:
		return resultstore.Value{Float: c.floats[i]}
	}
}

func (c *column) append(v resultstore.Value) {
	switch c.kind {
	case resultstore.KindString:
		c.strs = append(c.strs, v.Str)
	case resultstore.KindInt:
		c.ints = append(c.ints, v.Int)
	case resultstore.KindUint:
		c.uints = append(c.uints, v.Uint)
	default:
		c.floats = append(c.floats, v.Float)
	}
}

// cell renders one value as its canonical text: strings verbatim, integers
// in decimal, floats in shortest round-trip form.
func (c *column) cell(i int) string {
	switch c.kind {
	case resultstore.KindString:
		return c.strs[i]
	case resultstore.KindInt:
		return strconv.FormatInt(c.ints[i], 10)
	case resultstore.KindUint:
		return strconv.FormatUint(c.uints[i], 10)
	default:
		return strconv.FormatFloat(c.floats[i], 'g', -1, 64)
	}
}

// float returns the cell as a float64 for aggregation; counters up to 2^53
// convert exactly.
func (c *column) float(i int) float64 {
	switch c.kind {
	case resultstore.KindString:
		return 0
	case resultstore.KindInt:
		return float64(c.ints[i])
	case resultstore.KindUint:
		return float64(c.uints[i])
	default:
		return c.floats[i]
	}
}

// Table is an ordered set of rows over named typed columns.
type Table struct {
	cols []column
}

// Len returns the row count.
func (t *Table) Len() int {
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].len()
}

// Names returns the column names in table order.
func (t *Table) Names() []string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.name
	}
	return names
}

// col finds a column by name.
func (t *Table) col(name string) (*column, error) {
	for i := range t.cols {
		if t.cols[i].name == name {
			return &t.cols[i], nil
		}
	}
	return nil, fmt.Errorf("%w: %q (have %s)", ErrColumn, name, strings.Join(t.Names(), ", "))
}

// FromRows builds a table over the full result-store schema, one table row
// per store row, preserving row order.
func FromRows(rows []resultstore.Row) *Table {
	specs := resultstore.Columns()
	t := &Table{cols: make([]column, len(specs))}
	for i, cs := range specs {
		t.cols[i] = column{name: cs.Name, kind: cs.Kind, better: cs.Better}
		for r := range rows {
			t.cols[i].append(cs.Get(&rows[r]))
		}
	}
	return t
}

// take builds a new table holding the given row indices of t, in order.
func (t *Table) take(idx []int) *Table {
	out := &Table{cols: make([]column, len(t.cols))}
	for i := range t.cols {
		src := &t.cols[i]
		dst := &out.cols[i]
		dst.name, dst.kind, dst.better = src.name, src.kind, src.better
		for _, r := range idx {
			dst.append(src.value(r))
		}
	}
	return out
}
