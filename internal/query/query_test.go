package query_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"eagletree/internal/core"
	"eagletree/internal/query"
	"eagletree/internal/resultstore"
	"eagletree/internal/sim"
)

// corpus builds a small two-commit, two-seed store corpus: experiment "E"
// with two variants (fast, slow), where commit "new" improves fast's
// throughput and regresses slow's write latency consistently across seeds.
func corpus() []resultstore.Row {
	var rows []resultstore.Row
	for _, commit := range []string{"old", "new"} {
		for _, seed := range []uint64{7, 12345} {
			for idx, label := range []string{"fast", "slow"} {
				r := resultstore.Row{
					Experiment: "E",
					Spec:       "feedface",
					Commit:     commit,
					Seed:       seed,
					Index:      idx,
					Variant:    fmt.Sprintf("spec1|{\"v\":%q}", label),
					Label:      label,
					X:          float64(idx),
				}
				r.Report = core.Report{
					Duration:   sim.Duration(1e9),
					Throughput: 1000 + 10*float64(idx) + 0.001*float64(seed),
					WriteLatency: core.LatencySummary{
						Count: 5000, Mean: sim.Duration(4000 + 100*idx),
					},
					WriteAmplification: 1.5,
				}
				if commit == "new" {
					if label == "fast" {
						r.Report.Throughput += 50 // improvement
					} else {
						r.Report.WriteLatency.Mean += 900 // regression
					}
				}
				rows = append(rows, r)
			}
		}
	}
	return rows
}

func TestFilterProjectSort(t *testing.T) {
	tab := query.FromRows(corpus())
	if tab.Len() != 8 {
		t.Fatalf("table has %d rows, want 8", tab.Len())
	}

	preds := []query.Predicate{
		mustPred(t, "commit = new"),
		mustPred(t, "label~fa"),
		mustPred(t, "seed >= 100"),
	}
	got, err := tab.Filter(preds)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("filter kept %d rows, want 1", got.Len())
	}

	proj, err := got.Project([]string{"label", "throughput_iops"})
	if err != nil {
		t.Fatal(err)
	}
	if names := proj.Names(); len(names) != 2 || names[0] != "label" || names[1] != "throughput_iops" {
		t.Fatalf("projected columns %v", names)
	}

	// Sort descending by seed, then check stability of equal keys.
	sorted, err := tab.Sort([]string{"-seed", "label"})
	if err != nil {
		t.Fatal(err)
	}
	csv := sorted.CSV()
	first := strings.Split(strings.Split(csv, "\n")[1], ",")
	if first[3] != "12345" { // seed column
		t.Fatalf("descending seed sort put %q first", first[3])
	}
}

func mustPred(t *testing.T, expr string) query.Predicate {
	t.Helper()
	p, err := query.ParsePredicate(expr)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFilterErrors(t *testing.T) {
	tab := query.FromRows(corpus())
	cases := []struct {
		expr string
		want error
	}{
		{"nope = 1", query.ErrColumn},
		{"seed ~ 12", query.ErrPredicate},
		{"label > x", query.ErrPredicate},
		{"seed = abc", query.ErrPredicate},
		{"garbage", query.ErrPredicate},
	}
	for _, tc := range cases {
		p, err := query.ParsePredicate(tc.expr)
		if err == nil {
			_, err = tab.Filter([]query.Predicate{p})
		}
		if !errors.Is(err, tc.want) {
			t.Fatalf("%q: got %v, want %v", tc.expr, err, tc.want)
		}
	}
}

func TestGroupByAggregates(t *testing.T) {
	tab := query.FromRows(corpus())
	aggs := []query.Agg{
		{Fn: "count"},
		{Fn: "mean", Col: "throughput_iops"},
		{Fn: "ci95", Col: "throughput_iops"},
		{Fn: "min", Col: "seed"},
		{Fn: "max", Col: "seed"},
		{Fn: "sum", Col: "write_count"},
	}
	g, err := tab.GroupBy([]string{"commit", "label"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Fatalf("grouped to %d rows, want 4", g.Len())
	}
	// Groups follow first appearance: corpus iterates old/new outermost.
	lines := strings.Split(strings.TrimRight(g.CSV(), "\n"), "\n")
	if lines[0] != "commit,label,count,mean(throughput_iops),ci95(throughput_iops),min(seed),max(seed),sum(write_count)" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "old,fast,2,") {
		t.Fatalf("first group %q, want old,fast", lines[1])
	}
	if !strings.Contains(lines[1], ",7,12345,10000") {
		t.Fatalf("aggregates wrong: %q", lines[1])
	}

	if _, err := tab.GroupBy([]string{"commit"}, []query.Agg{{Fn: "mode", Col: "seed"}}); !errors.Is(err, query.ErrAggregate) {
		t.Fatalf("unknown aggregate: %v", err)
	}
	if _, err := tab.GroupBy([]string{"commit"}, []query.Agg{{Fn: "mean", Col: "label"}}); !errors.Is(err, query.ErrAggregate) {
		t.Fatalf("string aggregate: %v", err)
	}
}

func TestParseAgg(t *testing.T) {
	a, err := query.ParseAgg("mean(write_amp)")
	if err != nil || a.Fn != "mean" || a.Col != "write_amp" {
		t.Fatalf("got %+v, %v", a, err)
	}
	if _, err := query.ParseAgg("mean write_amp"); !errors.Is(err, query.ErrAggregate) {
		t.Fatalf("want ErrAggregate, got %v", err)
	}
}

func TestJoin(t *testing.T) {
	rows := corpus()
	var oldRows, newRows []resultstore.Row
	for _, r := range rows {
		if r.Commit == "old" {
			oldRows = append(oldRows, r)
		} else {
			newRows = append(newRows, r)
		}
	}
	l := query.FromRows(oldRows)
	r := query.FromRows(newRows)
	j, err := l.Join(r, []string{"experiment", "label", "seed"}, "_a", "_b")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 4 {
		t.Fatalf("join produced %d rows, want 4", j.Len())
	}
	// Non-key columns present on both sides must be suffixed.
	names := strings.Join(j.Names(), ",")
	if !strings.Contains(names, "throughput_iops_a") || !strings.Contains(names, "throughput_iops_b") {
		t.Fatalf("suffixed columns missing: %s", names)
	}

	if _, err := l.Join(r, []string{"nope"}, "_a", "_b"); !errors.Is(err, query.ErrColumn) {
		t.Fatalf("join on unknown column: %v", err)
	}
}

func TestTextRenderStable(t *testing.T) {
	tab := query.FromRows(corpus())
	proj, err := tab.Project([]string{"commit", "label", "seed", "write_amp"})
	if err != nil {
		t.Fatal(err)
	}
	a := proj.Text()
	b := proj.Text()
	if a != b {
		t.Fatal("Text is not deterministic")
	}
	lines := strings.Split(strings.TrimRight(a, "\n"), "\n")
	if len(lines) != 2+8 {
		t.Fatalf("rendered %d lines, want 10:\n%s", len(lines), a)
	}
	for _, ln := range lines {
		if strings.HasSuffix(ln, " ") {
			t.Fatalf("trailing whitespace in %q", ln)
		}
	}
}

func TestDiffFlagsRegressionsWithPolarity(t *testing.T) {
	rows := corpus()
	tbl, sum, err := query.Diff(rows, "old", "new",
		[]string{"throughput_iops", "write_mean_ns", "write_amp"})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Comparisons != 6 {
		t.Fatalf("comparisons %d, want 6 (2 variants × 3 metrics)", sum.Comparisons)
	}
	if sum.Regressions != 1 || sum.Improvements != 1 {
		t.Fatalf("summary %+v, want 1 regression 1 improvement", sum)
	}
	csv := tbl.CSV()
	if !strings.Contains(csv, "E,slow,write_mean_ns,2,4100,5000,900,") || !strings.Contains(csv, "REGRESSED") {
		t.Fatalf("missing regression row:\n%s", csv)
	}
	if !strings.Contains(csv, "improved") {
		t.Fatalf("missing improvement row:\n%s", csv)
	}
	// Unchanged metric on both variants.
	if got := strings.Count(csv, ",=\n"); got != 4 {
		t.Fatalf("unchanged rows %d, want 4:\n%s", got, csv)
	}
}

func TestDiffSameDataReportsZeroRegressions(t *testing.T) {
	// Duplicate the "old" side under a second commit name: identical data
	// must diff clean.
	rows := corpus()
	var both []resultstore.Row
	for _, r := range rows {
		if r.Commit != "old" {
			continue
		}
		both = append(both, r)
		r2 := r
		r2.Commit = "replay"
		both = append(both, r2)
	}
	_, sum, err := query.Diff(both, "old", "replay",
		[]string{"throughput_iops", "write_mean_ns", "write_amp"})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Regressions != 0 || sum.Improvements != 0 || sum.Unchanged != sum.Comparisons {
		t.Fatalf("identical data must be all-unchanged: %+v", sum)
	}
	if !strings.Contains(sum.String(), "0 regressions") {
		t.Fatalf("summary line: %s", sum)
	}
}

func TestDiffSingleSeedDeltaCounts(t *testing.T) {
	// One seed only: the simulator is deterministic, so a nonzero delta is a
	// real change and must count even without replication.
	var rows []resultstore.Row
	for _, commit := range []string{"a", "b"} {
		r := resultstore.Row{Experiment: "E", Commit: commit, Seed: 1, Index: 0,
			Variant: "spec1|{}", Label: "run"}
		r.Report.Throughput = 100
		if commit == "b" {
			r.Report.Throughput = 90
		}
		rows = append(rows, r)
	}
	tbl, sum, err := query.Diff(rows, "a", "b", []string{"throughput_iops"})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Regressions != 1 {
		t.Fatalf("single-seed drop must count as regression: %+v", sum)
	}
	if !strings.Contains(tbl.CSV(), "worse") {
		t.Fatalf("verdict should be single-seed 'worse':\n%s", tbl.CSV())
	}
}

func TestDiffErrors(t *testing.T) {
	rows := corpus()
	if _, _, err := query.Diff(rows, "x", "x", []string{"write_amp"}); !errors.Is(err, query.ErrJoin) {
		t.Fatalf("same sides: %v", err)
	}
	if _, _, err := query.Diff(rows, "old", "new", []string{"nope"}); !errors.Is(err, query.ErrColumn) {
		t.Fatalf("unknown metric: %v", err)
	}
	if _, _, err := query.Diff(rows, "old", "new", []string{"label"}); !errors.Is(err, query.ErrAggregate) {
		t.Fatalf("string metric: %v", err)
	}
	// Unpaired variants (side present only once) are counted, not compared.
	_, sum, err := query.Diff(rows, "old", "ghost", []string{"write_amp"})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Comparisons != 0 || sum.Unpaired != 2 {
		t.Fatalf("ghost side: %+v", sum)
	}
}
