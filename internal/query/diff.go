package query

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"eagletree/internal/resultstore"
	"eagletree/internal/stats"
)

// DiffSummary totals a regression diff: how many (variant, metric) pairs were
// compared and how they fell.
type DiffSummary struct {
	// Comparisons is the number of (variant, metric) pairs with at least one
	// shared seed on both sides.
	Comparisons int
	// Regressions counts pairs that moved in the metric's worse direction —
	// significantly under replication, or at all under a single seed (the
	// simulator is deterministic, so any single-seed delta is a real
	// behavioral change, not noise).
	Regressions int
	// Improvements counts pairs that moved in the better direction, by the
	// same standard.
	Improvements int
	// Unchanged counts pairs whose every paired delta is exactly zero.
	Unchanged int
	// Unpaired counts variants present on only one side, or with no seed in
	// common — nothing to compare.
	Unpaired int
}

// Diff compares two stored sweeps: side A is every row whose commit column
// equals a, side B likewise for b. Rows pair on (experiment, variant index,
// label, seed); paired rows group per variant, and each metric's
// per-seed deltas (B − A) are tested against their own 95% confidence
// interval. The verdict column reads:
//
//	=          every paired delta is exactly zero
//	~          nonzero but within the replication noise band
//	REGRESSED  significant move in the metric's worse direction
//	improved   significant move in the better direction
//	shifted    significant move on a metric with no better direction
//	worse      single-seed nonzero delta in the worse direction
//	better     single-seed nonzero delta in the better direction
//	Δ          single-seed nonzero delta, no better direction
//
// Output rows are ordered by (experiment, variant index, metric order as
// given) — byte-stable for a given store and argument list. When a pairs the
// same variant+seed more than once on a side, the latest-appended row wins.
func Diff(rows []resultstore.Row, a, b string, metrics []string) (*Table, DiffSummary, error) {
	var sum DiffSummary
	if a == b {
		return nil, sum, fmt.Errorf("%w: diff sides are both %q", ErrJoin, a)
	}
	specs := make([]resultstore.ColumnSpec, len(metrics))
	for i, m := range metrics {
		cs, ok := resultstore.Column(m)
		if !ok {
			return nil, sum, fmt.Errorf("%w: no metric %q", ErrColumn, m)
		}
		if cs.Kind == resultstore.KindString {
			return nil, sum, fmt.Errorf("%w: %q is not a numeric metric", ErrAggregate, m)
		}
		specs[i] = cs
	}

	// One group per variant position; within it, one row per side per seed.
	// The variant's canonical config key embeds its seed, so the key itself
	// cannot be the group identity — replicates of one variant under several
	// seeds must land in one group to pair up. (experiment, index, label)
	// names the grid position; seeds pair inside it.
	type group struct {
		experiment string
		index      int
		label      string
		sideA      map[uint64]resultstore.Row
		sideB      map[uint64]resultstore.Row
	}
	groupOf := make(map[string]*group)
	var groups []*group
	for _, r := range rows {
		if r.Commit != a && r.Commit != b {
			continue
		}
		key := r.Experiment + "\x00" + strconv.Itoa(r.Index) + "\x00" + r.Label
		g, ok := groupOf[key]
		if !ok {
			g = &group{
				experiment: r.Experiment,
				index:      r.Index,
				label:      r.Label,
				sideA:      make(map[uint64]resultstore.Row),
				sideB:      make(map[uint64]resultstore.Row),
			}
			groupOf[key] = g
			groups = append(groups, g)
		}
		if r.Commit == a {
			g.sideA[r.Seed] = r
		} else {
			g.sideB[r.Seed] = r
		}
	}
	sort.SliceStable(groups, func(i, j int) bool {
		gi, gj := groups[i], groups[j]
		if gi.experiment != gj.experiment {
			return gi.experiment < gj.experiment
		}
		if gi.index != gj.index {
			return gi.index < gj.index
		}
		return gi.label < gj.label
	})

	out := &Table{cols: []column{
		{name: "experiment", kind: resultstore.KindString},
		{name: "label", kind: resultstore.KindString},
		{name: "metric", kind: resultstore.KindString},
		{name: "seeds", kind: resultstore.KindUint},
		{name: "a", kind: resultstore.KindFloat},
		{name: "b", kind: resultstore.KindFloat},
		{name: "delta", kind: resultstore.KindFloat},
		{name: "pct", kind: resultstore.KindFloat},
		{name: "verdict", kind: resultstore.KindString},
	}}
	emit := func(g *group, metric string, n int, ma, mb, delta, pct float64, verdict string) {
		out.cols[0].strs = append(out.cols[0].strs, g.experiment)
		out.cols[1].strs = append(out.cols[1].strs, g.label)
		out.cols[2].strs = append(out.cols[2].strs, metric)
		out.cols[3].uints = append(out.cols[3].uints, uint64(n))
		out.cols[4].floats = append(out.cols[4].floats, ma)
		out.cols[5].floats = append(out.cols[5].floats, mb)
		out.cols[6].floats = append(out.cols[6].floats, delta)
		out.cols[7].floats = append(out.cols[7].floats, pct)
		out.cols[8].strs = append(out.cols[8].strs, verdict)
	}

	toFloat := func(cs resultstore.ColumnSpec, r resultstore.Row) float64 {
		v := cs.Get(&r)
		switch cs.Kind {
		case resultstore.KindInt:
			return float64(v.Int)
		case resultstore.KindUint:
			return float64(v.Uint)
		default:
			return v.Float
		}
	}

	for _, g := range groups {
		var seeds []uint64
		for s := range g.sideA { //lint:ordered seeds are sorted immediately below
			if _, ok := g.sideB[s]; ok {
				seeds = append(seeds, s)
			}
		}
		if len(seeds) == 0 {
			sum.Unpaired++
			continue
		}
		sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })

		for _, cs := range specs {
			xa := make([]float64, len(seeds))
			xb := make([]float64, len(seeds))
			deltas := make([]float64, len(seeds))
			allZero := true
			for i, s := range seeds {
				xa[i] = toFloat(cs, g.sideA[s])
				xb[i] = toFloat(cs, g.sideB[s])
				deltas[i] = xb[i] - xa[i]
				if deltas[i] != 0 {
					allZero = false
				}
			}
			ma := stats.Summarize(xa).Mean
			mb := stats.Summarize(xb).Mean
			ds := stats.Summarize(deltas)
			pct := 0.0
			if ma != 0 {
				pct = 100 * ds.Mean / math.Abs(ma)
			}
			sum.Comparisons++

			verdict := "="
			switch {
			case allZero:
				sum.Unchanged++
			case len(seeds) >= 2 && math.Abs(ds.Mean) > ds.CI95:
				switch {
				case float64(cs.Better)*ds.Mean > 0:
					verdict = "improved"
					sum.Improvements++
				case float64(cs.Better)*ds.Mean < 0:
					verdict = "REGRESSED"
					sum.Regressions++
				default:
					verdict = "shifted"
				}
			case len(seeds) >= 2:
				verdict = "~"
			default:
				switch {
				case float64(cs.Better)*ds.Mean > 0:
					verdict = "better"
					sum.Improvements++
				case float64(cs.Better)*ds.Mean < 0:
					verdict = "worse"
					sum.Regressions++
				default:
					verdict = "Δ"
				}
			}
			emit(g, cs.Name, len(seeds), ma, mb, ds.Mean, pct, verdict)
		}
	}
	return out, sum, nil
}

// String renders the summary as the one-line trailer the CLI prints under a
// diff table.
func (s DiffSummary) String() string {
	return fmt.Sprintf("%d comparisons: %d regressions, %d improvements, %d unchanged, %d within noise, %d unpaired",
		s.Comparisons, s.Regressions, s.Improvements, s.Unchanged,
		s.Comparisons-s.Regressions-s.Improvements-s.Unchanged, s.Unpaired)
}
