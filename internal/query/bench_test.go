package query_test

import (
	"fmt"
	"testing"

	"eagletree/internal/core"
	"eagletree/internal/query"
	"eagletree/internal/resultstore"
)

// BenchmarkQueryGroupBy measures the hot analytical path: grouping a
// several-thousand-row corpus by variant and computing replicate statistics.
func BenchmarkQueryGroupBy(b *testing.B) {
	rows := make([]resultstore.Row, 0, 4096)
	for i := 0; i < 4096; i++ {
		rows = append(rows, resultstore.Row{
			Experiment: fmt.Sprintf("E%d", i%4),
			Commit:     "bench",
			Seed:       uint64(i % 16),
			Index:      i % 64,
			Variant:    fmt.Sprintf("spec1|{\"v\":%d}", i%64),
			Label:      fmt.Sprintf("v%d", i%64),
			Report:     core.Report{Throughput: float64(i), WriteAmplification: 1 + float64(i%7)/10},
		})
	}
	tab := query.FromRows(rows)
	aggs := []query.Agg{
		{Fn: "count"},
		{Fn: "mean", Col: "throughput_iops"},
		{Fn: "ci95", Col: "throughput_iops"},
		{Fn: "mean", Col: "write_amp"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.GroupBy([]string{"experiment", "label"}, aggs); err != nil {
			b.Fatal(err)
		}
	}
}
