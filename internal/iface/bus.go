package iface

// Message is anything exchanged on the open interface beyond plain block
// requests. Users of the framework define new message types by implementing
// Kind; the paper's examples (priorities, update-locality, temperatures) ship
// as concrete types below.
type Message interface {
	Kind() string
}

// Bus is the extensible messaging framework connecting the OS and the SSD as
// peers. Components subscribe to message kinds; publishing delivers
// synchronously, in subscription order, inside the simulation event loop.
//
// A locked bus (block-device mode) drops every message: that is the "red
// lock" of the demonstration GUI.
type Bus struct {
	handlers map[string][]func(Message)
	locked   bool
	dropped  uint64
}

// NewBus returns an open (unlocked) bus.
func NewBus() *Bus {
	return &Bus{handlers: make(map[string][]func(Message))}
}

// SetLocked switches between block-device mode (true: all messages dropped)
// and open-interface mode.
func (b *Bus) SetLocked(locked bool) { b.locked = locked }

// Locked reports whether the bus is in block-device mode.
func (b *Bus) Locked() bool { return b.locked }

// Dropped returns how many messages were discarded while locked.
func (b *Bus) Dropped() uint64 { return b.dropped }

// Subscribe registers a handler for one message kind.
func (b *Bus) Subscribe(kind string, h func(Message)) {
	b.handlers[kind] = append(b.handlers[kind], h)
}

// Publish delivers the message to every subscriber of its kind and reports
// whether it was delivered to at least one handler.
func (b *Bus) Publish(m Message) bool {
	if b.locked {
		b.dropped++
		return false
	}
	hs := b.handlers[m.Kind()]
	for _, h := range hs {
		h(m)
	}
	return len(hs) > 0
}

// TemperatureHint tells the SSD the expected update frequency of an LPN
// range (paper: "the OS can inform the SSD whether the page being written is
// likely to be updated soon").
type TemperatureHint struct {
	From, To    LPN // half-open range [From, To)
	Temperature Temperature
}

// Kind implements Message.
func (TemperatureHint) Kind() string { return "temperature" }

// LocalityHint tells the SSD that a set of pages shares update-locality
// (paper: "the SSD can then write these pages so as to minimize subsequent
// garbage-collection").
type LocalityHint struct {
	Group int
	Pages []LPN
}

// Kind implements Message.
func (LocalityHint) Kind() string { return "locality" }

// PriorityHint assigns a scheduling priority to all future IOs of a thread
// (paper: "the OS can communicate to the SSD the priority of an IO").
type PriorityHint struct {
	Thread   int
	Priority Priority
}

// Kind implements Message.
func (PriorityHint) Kind() string { return "priority" }
