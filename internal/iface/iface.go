// Package iface defines the communication interface between the operating
// system layer and the SSD: IO requests, completions, and — departing from
// the traditional block-device contract as the paper proposes — an extensible
// messaging framework over which the OS and SSD converse as peers.
//
// In block-device mode the SSD only sees request type, address and size.
// With the open interface unlocked, requests carry Tags (priority,
// update-locality group, data temperature) and arbitrary further messages can
// be exchanged on the Bus.
//
//eagletree:typederrors
package iface

import (
	"fmt"
	"unsafe"

	"eagletree/internal/sim"
)

// LPN is a logical page number: the address unit of the block interface.
type LPN int64

// ReqType enumerates the request kinds the block interface carries.
type ReqType int

const (
	Read ReqType = iota
	Write
	Trim // deallocation hint: the LPN's contents may be discarded
	// Erase never crosses the block interface; the controller generates
	// erase requests internally so the SSD scheduler can order them against
	// reads and writes, as the paper's scheduling framework requires.
	Erase
)

// NumTypes is the count of distinct ReqType values, for dense per-type
// statistics arrays.
const NumTypes = 4

func (t ReqType) String() string {
	switch t {
	case Read:
		return "read"
	case Write:
		return "write"
	case Trim:
		return "trim"
	case Erase:
		return "erase"
	default:
		return fmt.Sprintf("ReqType(%d)", int(t))
	}
}

// Source identifies who generated an IO inside the stack. External requests
// come from application threads; the SSD controller additionally generates
// internal IOs for garbage collection, wear leveling and mapping metadata.
type Source int

const (
	SourceApp Source = iota
	SourceGC
	SourceWL
	SourceMap // FTL translation-page traffic (DFTL)
)

func (s Source) String() string {
	switch s {
	case SourceApp:
		return "app"
	case SourceGC:
		return "gc"
	case SourceWL:
		return "wl"
	case SourceMap:
		return "map"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// NumSources is the count of distinct Source values, for dense per-source
// statistics arrays.
const NumSources = 4

// Priority is the scheduling weight a request carries through the open
// interface. The zero value is PriorityNormal so that an untagged request —
// which is all block-device mode ever delivers — needs no special casing.
type Priority int

const (
	PriorityLow    Priority = -1
	PriorityNormal Priority = 0
	PriorityHigh   Priority = 1
)

func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// Temperature is the expected update frequency of a page's data. The SSD can
// learn it (hot-data detection), infer it (wear-leveling migrations are
// cold), or be told through the open interface.
type Temperature int

const (
	TempUnknown Temperature = iota
	TempCold
	TempHot
)

func (t Temperature) String() string {
	switch t {
	case TempUnknown:
		return "unknown"
	case TempCold:
		return "cold"
	case TempHot:
		return "hot"
	default:
		return fmt.Sprintf("Temperature(%d)", int(t))
	}
}

// Tags is the open-interface metadata a request may carry. The zero value
// means "no hints", which is exactly what block-device mode delivers.
type Tags struct {
	Priority Priority
	// Locality groups pages that share update-locality: pages in one group
	// tend to be overwritten together, so co-locating them in the same
	// physical blocks minimizes subsequent garbage collection. Zero means
	// ungrouped.
	Locality int
	// Temperature tells the SSD whether the page is likely to be updated
	// soon (hot) or to stay untouched (cold).
	Temperature Temperature
}

// Request is one IO traveling from a thread through the OS to the SSD.
type Request struct {
	ID     uint64
	Type   ReqType
	LPN    LPN
	Source Source
	Thread int // dispatching thread, for per-thread statistics and OS policy
	Tags   Tags

	// Timestamps stamped as the request moves through the stack.
	Submitted  sim.Time // thread handed it to the OS
	Issued     sim.Time // OS dispatched it to the SSD
	Dispatched sim.Time // SSD scheduler sent it to the flash array
	Completed  sim.Time // result available

	// Ctl is an opaque per-request slot owned by the device controller: it
	// attaches its scheduling state here so the dispatch hot path needs no
	// request-keyed lookup table and no interface type assertion — the
	// readiness check runs once per queued request per dispatch scan, which
	// makes this one of the hottest loads in the simulator. Layers other
	// than the device must neither read nor write it. It is nil before
	// submission and after completion.
	Ctl unsafe.Pointer
}

func (r *Request) String() string {
	return fmt.Sprintf("req%d{%v lpn=%d src=%v thr=%d}", r.ID, r.Type, r.LPN, r.Source, r.Thread)
}

// QueueWait returns how long the request waited between OS submission and
// flash dispatch.
func (r *Request) QueueWait() sim.Duration { return r.Dispatched.Sub(r.Submitted) }

// Latency returns the full submission-to-completion latency.
func (r *Request) Latency() sim.Duration { return r.Completed.Sub(r.Submitted) }
