package iface

import (
	"strings"
	"testing"
)

func TestRequestTimestamps(t *testing.T) {
	r := &Request{ID: 1, Type: Write, LPN: 42}
	r.Submitted = 100
	r.Dispatched = 250
	r.Completed = 700
	if r.QueueWait() != 150 {
		t.Errorf("QueueWait = %v, want 150", r.QueueWait())
	}
	if r.Latency() != 600 {
		t.Errorf("Latency = %v, want 600", r.Latency())
	}
}

func TestStringers(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || Trim.String() != "trim" {
		t.Error("ReqType strings wrong")
	}
	if SourceApp.String() != "app" || SourceGC.String() != "gc" ||
		SourceWL.String() != "wl" || SourceMap.String() != "map" {
		t.Error("Source strings wrong")
	}
	if PriorityHigh.String() != "high" || PriorityLow.String() != "low" {
		t.Error("Priority strings wrong")
	}
	if TempHot.String() != "hot" || TempCold.String() != "cold" || TempUnknown.String() != "unknown" {
		t.Error("Temperature strings wrong")
	}
	r := &Request{ID: 7, Type: Read, LPN: 9, Source: SourceGC, Thread: 2}
	if s := r.String(); !strings.Contains(s, "req7") || !strings.Contains(s, "gc") {
		t.Errorf("Request.String() = %q", s)
	}
}

func TestNumSourcesCoversAll(t *testing.T) {
	for s := Source(0); s < NumSources; s++ {
		if strings.HasPrefix(s.String(), "Source(") {
			t.Errorf("Source %d has no name; NumSources stale?", s)
		}
	}
}

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus()
	var got []Temperature
	b.Subscribe("temperature", func(m Message) {
		got = append(got, m.(TemperatureHint).Temperature)
	})
	if !b.Publish(TemperatureHint{From: 0, To: 10, Temperature: TempHot}) {
		t.Fatal("Publish with subscriber returned false")
	}
	if len(got) != 1 || got[0] != TempHot {
		t.Fatalf("handler got %v", got)
	}
}

func TestBusMultipleSubscribersInOrder(t *testing.T) {
	b := NewBus()
	var order []int
	b.Subscribe("locality", func(Message) { order = append(order, 1) })
	b.Subscribe("locality", func(Message) { order = append(order, 2) })
	b.Publish(LocalityHint{Group: 1})
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("delivery order %v", order)
	}
}

func TestBusUnknownKind(t *testing.T) {
	b := NewBus()
	if b.Publish(PriorityHint{Thread: 1, Priority: PriorityHigh}) {
		t.Fatal("Publish with no subscriber returned true")
	}
}

func TestBusLocked(t *testing.T) {
	b := NewBus()
	called := false
	b.Subscribe("priority", func(Message) { called = true })
	b.SetLocked(true)
	if b.Publish(PriorityHint{}) {
		t.Fatal("locked bus delivered a message")
	}
	if called {
		t.Fatal("locked bus invoked a handler")
	}
	if b.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", b.Dropped())
	}
	b.SetLocked(false)
	if !b.Publish(PriorityHint{}) || !called {
		t.Fatal("unlocking did not restore delivery")
	}
}

func TestMessageKinds(t *testing.T) {
	if (TemperatureHint{}).Kind() != "temperature" ||
		(LocalityHint{}).Kind() != "locality" ||
		(PriorityHint{}).Kind() != "priority" {
		t.Error("message kinds wrong")
	}
}

func TestAllStringMethods(t *testing.T) {
	for _, rt := range []ReqType{Read, Write, Trim, Erase, ReqType(99)} {
		if rt.String() == "" {
			t.Errorf("empty string for ReqType %d", int(rt))
		}
	}
	for _, s := range []Source{SourceApp, SourceGC, SourceWL, SourceMap, Source(99)} {
		if s.String() == "" {
			t.Errorf("empty string for Source %d", int(s))
		}
	}
	for _, p := range []Priority{PriorityLow, PriorityNormal, PriorityHigh, Priority(99)} {
		if p.String() == "" {
			t.Errorf("empty string for Priority %d", int(p))
		}
	}
	for _, tm := range []Temperature{TempUnknown, TempCold, TempHot, Temperature(99)} {
		if tm.String() == "" {
			t.Errorf("empty string for Temperature %d", int(tm))
		}
	}
}

func TestBusLockedAccessor(t *testing.T) {
	b := NewBus()
	if b.Locked() {
		t.Fatal("fresh bus locked")
	}
	b.SetLocked(true)
	if !b.Locked() {
		t.Fatal("SetLocked(true) not reflected")
	}
}
