package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// TypedErr enforces the typed-error contract at package boundaries: in
// packages marked `//eagletree:typederrors`, exported functions and methods
// must not return bare errors.New or fmt.Errorf values. Callers match errors
// with errors.Is/errors.As against the package's sentinels (ErrTruncated,
// ErrDeviceWornOut, ...) and typed errors (*VariantError, *FaultError, ...),
// which only works when every escaping error wraps one.
//
// fmt.Errorf with a %w verb is the contract, not a violation: it decorates a
// typed error with context. Unexported helpers are free to build raw errors
// — they are wrapped before they escape — and package-level sentinel
// declarations (var ErrX = errors.New(...)) are the contract's foundation.
//
// The check is syntactic on return statements: an error laundered through a
// local variable can evade it, but the analyzer is a tripwire for the common
// case, not a proof system.
var TypedErr = &Analyzer{
	Name: "typederr",
	Doc:  "exported functions in typed-error packages must not return bare errors.New/fmt.Errorf values",
	Run:  runTypedErr,
}

func runTypedErr(pass *Pass) {
	if !packageMarked(pass.Files, markerTypedErrors) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if recv := receiverTypeName(fd); recv != "" && !token.IsExported(recv) {
				continue // methods on unexported types are not API boundaries
			}
			checkTypedErrFunc(pass, fd)
		}
	}
}

// receiverTypeName returns the name of a method's receiver type, or "".
func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkTypedErrFunc walks the function body, skipping nested function
// literals (their returns leave the closure, not the exported API).
func checkTypedErrFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				checkBareError(pass, fd.Name.Name, res)
			}
		}
		return true
	})
}

// checkBareError flags a returned expression that is a direct untyped error
// constructor call.
func checkBareError(pass *Pass, fn string, expr ast.Expr) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	obj := funcObj(pass.Info, call)
	if obj == nil {
		return
	}
	switch {
	case isPkgFunc(obj, "errors", "New"):
		pass.Reportf(expr.Pos(), "exported %s returns a bare errors.New value: declare a sentinel or typed error and wrap it (typed-error contract)", fn)
	case isPkgFunc(obj, "fmt", "Errorf"):
		if len(call.Args) > 0 {
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if strings.Contains(lit.Value, "%w") {
					return // wrapping a typed error is the contract
				}
			}
		}
		pass.Reportf(expr.Pos(), "exported %s returns a bare fmt.Errorf value: wrap a sentinel or typed error with %%w (typed-error contract)", fn)
	}
}
