// Package lint implements EagleTree's project-specific static analyzers:
// compile-time enforcement of the three load-bearing invariants the runtime
// test suite can only probe one seed at a time — deterministic canonical
// output, allocation-free dispatch hot paths, and snapshot codecs that cover
// every serialized field.
//
// The suite is modeled on golang.org/x/tools/go/analysis but is built on the
// standard library only (go/ast, go/types, go/importer), because the module
// vendors no external dependencies. Each analyzer inspects one type-checked
// package at a time and reports findings with positions; the cmd/eagletreevet
// multichecker runs the suite standalone over package patterns or as a
// `go vet -vettool` backend.
//
// # Annotations
//
// The analyzers are opt-in per package or per function, driven by source
// annotations rather than hard-coded path lists, so the contracts live next
// to the code they constrain:
//
//   - `//eagletree:canonical` in any file of a package marks the package as
//     producing canonical (byte-reproducible) output. The nondeterminism
//     analyzer then forbids time.Now, the global math/rand source, and
//     unannotated iteration over maps.
//   - `//lint:ordered <why>` on (or immediately above) a map-range statement
//     in a canonical package records that the iteration order provably does
//     not reach the output (for example, keys are collected and sorted, or
//     writes land in a keyed map).
//   - `//lint:wallclock <why>` likewise suppresses a time.Now finding for
//     wall-clock telemetry that never feeds canonical bytes.
//   - `//eagletree:typederrors` marks a package whose exported API has a
//     typed-error contract: exported functions must not return bare
//     errors.New or fmt.Errorf values (fmt.Errorf that wraps with %w is
//     fine — wrapping a typed sentinel is the contract).
//   - `//eagletree:hotpath` on a function forbids allocating constructs in
//     its body: map/slice literals, make, closures, fmt calls, and interface
//     conversions that box non-pointer-shaped values.
//   - `//eagletree:snapshot encode|decode T1 T2[-SkipField] ...` on a
//     function declares it a codec path for the named struct types; every
//     field of each type must be touched by both an encode- and a
//     decode-annotated function.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. It mirrors the x/tools
// analysis.Analyzer shape so the checks could migrate to the real framework
// if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package via the Pass and reports findings.
	Run func(*Pass)
}

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the pinned diagnostic format consumed by CI logs:
// file:line:col: message [analyzer].
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suite returns the full EagleTree analyzer suite in stable order.
func Suite() []*Analyzer {
	return []*Analyzer{
		Nondeterminism,
		HotPath,
		SnapshotComplete,
		TypedErr,
	}
}

// Run applies the analyzers to one type-checked package and returns the
// findings sorted by position.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	// The contracts bind production code; test files use maps, wall clocks
	// and ad-hoc errors freely. go vet also feeds the suite test variants of
	// each package, so the filter lives here rather than in the loader.
	prod := make([]*ast.File, 0, len(files))
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			prod = append(prod, f)
		}
	}
	files = prod

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// --- annotation plumbing ---

// Package-level markers.
const (
	markerCanonical   = "//eagletree:canonical"
	markerTypedErrors = "//eagletree:typederrors"
)

// Function-level directives.
const (
	directiveHotPath  = "//eagletree:hotpath"
	directiveSnapshot = "//eagletree:snapshot"
)

// Line-level suppressions.
const (
	suppressOrdered   = "//lint:ordered"
	suppressWallclock = "//lint:wallclock"
)

// packageMarked reports whether any file of the package carries the marker
// comment (a line equal to the marker, optionally followed by explanation
// after a space).
func packageMarked(files []*ast.File, marker string) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if directiveIs(c.Text, marker) {
					return true
				}
			}
		}
	}
	return false
}

// directiveIs reports whether the comment text is the given directive,
// either exactly or followed by whitespace and free text.
func directiveIs(text, directive string) bool {
	if !strings.HasPrefix(text, directive) {
		return false
	}
	rest := text[len(directive):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// funcDirective scans a function's doc comment for the directive and returns
// the text after it. ok distinguishes a bare directive from an absent one.
func funcDirective(fd *ast.FuncDecl, directive string) (args []string, ok bool) {
	if fd.Doc == nil {
		return nil, false
	}
	for _, c := range fd.Doc.List {
		if directiveIs(c.Text, directive) {
			return strings.Fields(c.Text[len(directive):]), true
		}
	}
	return nil, false
}

// funcDirectives returns the argument list of every occurrence of the
// directive in the function's doc comment (snapshot codecs may declare
// several lines).
func funcDirectives(fd *ast.FuncDecl, directive string) [][]string {
	if fd.Doc == nil {
		return nil
	}
	var out [][]string
	for _, c := range fd.Doc.List {
		if directiveIs(c.Text, directive) {
			out = append(out, strings.Fields(c.Text[len(directive):]))
		}
	}
	return out
}

// suppressions indexes line-level suppression comments for one file: the set
// of lines on which each suppression directive is written.
type suppressions map[string]map[int]bool

// fileSuppressions collects //lint: suppression comments by line.
func fileSuppressions(fset *token.FileSet, f *ast.File) suppressions {
	s := suppressions{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, directive := range []string{suppressOrdered, suppressWallclock} {
				if directiveIs(c.Text, directive) {
					if s[directive] == nil {
						s[directive] = map[int]bool{}
					}
					s[directive][fset.Position(c.Pos()).Line] = true
				}
			}
		}
	}
	return s
}

// allows reports whether the node starting at pos is covered by a
// suppression: the directive sits on the node's own line or the line
// immediately above it.
func (s suppressions) allows(fset *token.FileSet, pos token.Pos, directive string) bool {
	lines := s[directive]
	if lines == nil {
		return false
	}
	line := fset.Position(pos).Line
	return lines[line] || lines[line-1]
}

// funcObj resolves a called expression to the types.Func it invokes, or nil.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function path.name.
func isPkgFunc(obj *types.Func, path, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == path && obj.Name() == name && obj.Type().(*types.Signature).Recv() == nil
}
