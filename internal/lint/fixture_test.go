package lint

import (
	"bufio"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness mirrors x/tools analysistest: each testdata package is
// loaded through the real go-list pipeline, the analyzers under test run over
// it, and the diagnostics are matched one-to-one against `// want "substr"`
// comments in the fixture source. Unmatched wants and unexpected diagnostics
// both fail, so fixtures pin negatives (suppressed or allowed sites must stay
// silent) as well as positives.

func TestNondeterminismFixture(t *testing.T)   { testFixture(t, "nondet", Nondeterminism) }
func TestHotPathFixture(t *testing.T)          { testFixture(t, "hotpath", HotPath) }
func TestSnapshotCompleteFixture(t *testing.T) { testFixture(t, "snapfix", SnapshotComplete) }
func TestTypedErrFixture(t *testing.T)         { testFixture(t, "typederr", TypedErr) }

// TestSuiteFixtures runs the full suite over every fixture at once: analyzers
// gated on package markers must stay silent on fixtures marked for another
// contract.
func TestSuiteFixtures(t *testing.T) {
	for _, pkg := range []string{"nondet", "hotpath", "snapfix", "typederr"} {
		testFixture(t, pkg, Suite()...)
	}
}

// TestDiagnosticFormat pins the file:line:col output format CI greps for.
func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "a.go", Line: 3, Column: 7},
		Analyzer: "hotpath",
		Message:  "hot path f allocates: make",
	}
	if got, want := d.String(), "a.go:3:7: hot path f allocates: make [hotpath]"; got != want {
		t.Fatalf("Diagnostic.String() = %q, want %q", got, want)
	}
}

type expectation struct {
	file string // base name
	line int
	sub  string // message substring
}

func testFixture(t *testing.T, pkg string, analyzers ...*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	diags, err := Check("", []string{"./" + filepath.ToSlash(dir)}, analyzers)
	if err != nil {
		t.Fatalf("Check(%s): %v", pkg, err)
	}
	wants := parseWants(t, dir)
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || filepath.Base(d.Pos.Filename) != w.file || d.Pos.Line != w.line {
				continue
			}
			if strings.Contains(d.Message, w.sub) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", pkg, w.file, w.line, w.sub)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("%s: unexpected diagnostic: %s", pkg, d)
		}
	}
}

var wantRE = regexp.MustCompile(`//\s*want\s+(".*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// parseWants collects the `// want "substr" ["substr" ...]` expectations of
// every fixture file in dir.
func parseWants(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, q := range quotedRE.FindAllString(m[1], -1) {
				sub, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want string %s: %v", e.Name(), line, q, err)
				}
				wants = append(wants, expectation{file: e.Name(), line: line, sub: sub})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no want expectations", dir)
	}
	return wants
}
